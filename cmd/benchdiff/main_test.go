package main

import "testing"

func TestParseArgs(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want cliArgs
		err  bool
	}{
		{
			name: "flags after positionals (documented invocation)",
			argv: []string{"BENCH_baseline.json", "BENCH_ci.json", "-tolerance", "25%"},
			want: cliArgs{oldPath: "BENCH_baseline.json", newPath: "BENCH_ci.json", tolerance: 0.25, metricTolerance: -1, minMS: 10},
		},
		{
			name: "flags before positionals",
			argv: []string{"-tolerance", "0.10", "-min-ms", "5", "a.json", "b.json"},
			want: cliArgs{oldPath: "a.json", newPath: "b.json", tolerance: 0.10, metricTolerance: -1, minMS: 5},
		},
		{
			name: "metric tolerance separate",
			argv: []string{"a.json", "b.json", "-metric-tolerance", "50%"},
			want: cliArgs{oldPath: "a.json", newPath: "b.json", tolerance: 0.25, metricTolerance: 0.5, minMS: 10},
		},
		{
			name: "defaults",
			argv: []string{"a.json", "b.json"},
			want: cliArgs{oldPath: "a.json", newPath: "b.json", tolerance: 0.25, metricTolerance: -1, minMS: 10},
		},
		{
			name: "metrics-only identity gate",
			argv: []string{"a.json", "b.json", "-metrics-only", "-metric-tolerance", "0%"},
			want: cliArgs{oldPath: "a.json", newPath: "b.json", tolerance: 0.25, metricTolerance: 0, minMS: 10, metricsOnly: true},
		},
		{
			name: "scope report takes one file",
			argv: []string{"-scope", "BENCH_sharded.json"},
			want: cliArgs{oldPath: "BENCH_sharded.json", tolerance: 0.25, metricTolerance: -1, minMS: 10, scope: true},
		},
		{name: "scope with two files", argv: []string{"-scope", "a.json", "b.json"}, err: true},
		{name: "one file", argv: []string{"a.json"}, err: true},
		{name: "three files", argv: []string{"a", "b", "c"}, err: true},
		{name: "unknown flag", argv: []string{"a.json", "b.json", "-bogus"}, err: true},
		{name: "missing value", argv: []string{"a.json", "b.json", "-tolerance"}, err: true},
		{name: "bad tolerance", argv: []string{"a.json", "b.json", "-tolerance", "wide"}, err: true},
		{name: "help", argv: []string{"-h"}, err: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := parseArgs(c.argv)
			if (err != nil) != c.err {
				t.Fatalf("parseArgs(%v) err = %v, want err=%v", c.argv, err, c.err)
			}
			if err != nil {
				return
			}
			if *got != c.want {
				t.Fatalf("parseArgs(%v) = %+v, want %+v", c.argv, *got, c.want)
			}
		})
	}
}
