// Command benchdiff compares two BENCH_*.json records (written by
// paperbench -bench-json) and exits nonzero when the new record regresses
// past tolerance: per-experiment wall time, total wall time, throughput, or
// any watched simulated metric (scheduler switches, misses, traffic, stall
// cycles). CI's bench-gate job runs it against the blessed baseline.
//
// Usage:
//
//	benchdiff OLD.json NEW.json [-tolerance 25%] [-metric-tolerance 10%] [-min-ms 10] [-metrics-only]
//
// Flags may appear before or after the two file arguments.
package main

import (
	"fmt"
	"os"
	"strconv"

	"zsim/internal/benchrec"
)

const usage = `usage: benchdiff OLD.json NEW.json [flags]

Compares two BENCH_*.json records and exits 1 on regression.

  -tolerance T         allowed slowdown for timings/throughput (default 25%)
  -metric-tolerance T  allowed drift for watched simulated metrics (default: -tolerance)
  -min-ms MS           per-experiment floor: entries with a baseline below
                       MS ms are informational only (default 10)
  -metrics-only        compare only the watched simulated metrics; timings and
                       throughput are informational, and metric drift in either
                       direction past -metric-tolerance fails (the identity gate
                       for runs that legitimately differ in wall time, e.g.
                       serial vs -kernel-shards)
  -scope               takes ONE record instead of two and prints its
                       machine.scope.* local/global dispatch table (the
                       sharded CI job's local-dispatch-fraction artifact);
                       exits 1 if the record has no scope counters

T accepts "25%" or a fraction like "0.25".
`

// cliArgs is the parsed command line. The standard flag package stops at
// the first positional argument, but the documented invocation puts the two
// files first, so arguments are scanned by hand.
type cliArgs struct {
	oldPath, newPath string
	tolerance        float64
	metricTolerance  float64
	minMS            float64
	metricsOnly      bool
	scope            bool
}

func parseArgs(argv []string) (*cliArgs, error) {
	a := &cliArgs{tolerance: 0.25, metricTolerance: -1, minMS: 10}
	var files []string
	for i := 0; i < len(argv); i++ {
		arg := argv[i]
		flagVal := func() (string, error) {
			if i+1 >= len(argv) {
				return "", fmt.Errorf("flag %s needs a value", arg)
			}
			i++
			return argv[i], nil
		}
		switch arg {
		case "-tolerance", "--tolerance":
			v, err := flagVal()
			if err != nil {
				return nil, err
			}
			t, err := benchrec.ParseTolerance(v)
			if err != nil {
				return nil, err
			}
			a.tolerance = t
		case "-metric-tolerance", "--metric-tolerance":
			v, err := flagVal()
			if err != nil {
				return nil, err
			}
			t, err := benchrec.ParseTolerance(v)
			if err != nil {
				return nil, err
			}
			a.metricTolerance = t
		case "-metrics-only", "--metrics-only":
			a.metricsOnly = true
		case "-scope", "--scope":
			a.scope = true
		case "-min-ms", "--min-ms":
			v, err := flagVal()
			if err != nil {
				return nil, err
			}
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("bad -min-ms %q", v)
			}
			a.minMS = ms
		case "-h", "--help", "-help":
			return nil, errHelp
		default:
			if len(arg) > 1 && arg[0] == '-' {
				return nil, fmt.Errorf("unknown flag %s", arg)
			}
			files = append(files, arg)
		}
	}
	if a.scope {
		if len(files) != 1 {
			return nil, fmt.Errorf("-scope needs exactly one record file, got %d", len(files))
		}
		a.oldPath = files[0]
		return a, nil
	}
	if len(files) != 2 {
		return nil, fmt.Errorf("need exactly two record files, got %d", len(files))
	}
	a.oldPath, a.newPath = files[0], files[1]
	return a, nil
}

var errHelp = fmt.Errorf("help requested")

func main() {
	a, err := parseArgs(os.Args[1:])
	if err != nil {
		if err == errHelp {
			fmt.Print(usage)
			return
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n%s", err, usage)
		os.Exit(2)
	}

	old, err := benchrec.Load(a.oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if a.scope {
		report := benchrec.ScopeReport(old)
		if report == "" {
			fmt.Fprintf(os.Stderr, "benchdiff: %s carries no machine.scope.* counters (serial record, or metrics not captured)\n", a.oldPath)
			os.Exit(1)
		}
		fmt.Print(report)
		return
	}
	cur, err := benchrec.Load(a.newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	opts := benchrec.Options{
		Tolerance:   a.tolerance,
		MinWallMS:   a.minMS,
		MetricsOnly: a.metricsOnly,
	}
	if a.metricTolerance >= 0 {
		opts.MetricTolerance = a.metricTolerance
	}
	deltas, regressed := benchrec.Diff(old, cur, opts)

	fmt.Printf("benchdiff %s -> %s (tolerance %.0f%%, min %gms)\n\n",
		a.oldPath, a.newPath, a.tolerance*100, a.minMS)
	fmt.Print(benchrec.Format(deltas, opts))
	if regressed {
		fmt.Println("\nREGRESSION: at least one quantity crossed tolerance (marked '!').")
		os.Exit(1)
	}
	fmt.Println("\nOK: no regression past tolerance.")
}
