// Command zsimd is the simulation-as-a-service daemon: it serves the /v1
// JSON API (submit experiment/benchmark/litmus jobs, poll status, fetch
// results, cancel, health/metrics) with a bounded job queue on the runner
// worker pool and a content-addressed result store, so identical cells
// are served from cache instead of re-simulated.
//
// Usage:
//
//	zsimd -addr :8437
//	zsimd -addr :8437 -store /var/lib/zsimd   # persistent result store
//	zsimd -queue 64 -workers 4 -parallel 8    # capacity knobs
//
// Submit with curl:
//
//	curl -s localhost:8437/v1/jobs -d '{"cells":[{"type":"experiment","experiment":"E7"}]}'
//	curl -s localhost:8437/v1/jobs/j000001
//	curl -s localhost:8437/v1/jobs/j000001/result
//	curl -s localhost:8437/v1/health
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"zsim"
	"zsim/internal/zsimd"
)

func main() {
	var (
		addr     = flag.String("addr", ":8437", "listen address")
		queue    = flag.Int("queue", 16, "bounded job queue depth (submissions past it get 503)")
		workers  = flag.Int("workers", 2, "jobs executed concurrently")
		parallel = flag.Int("parallel", runtime.NumCPU(), "max simulation cells run concurrently across all jobs (runner pool bound)")
		storeDir = flag.String("store", "", "directory for the persistent content-addressed result store (empty = in-memory)")
		withMet  = flag.Bool("metrics", true, "collect per-run metrics (served at /v1/health)")
	)
	flag.Parse()

	zsim.SetParallelism(*parallel)
	zsim.EnableMetrics(*withMet)

	cfg := zsimd.Config{QueueDepth: *queue, Workers: *workers}
	if *storeDir != "" {
		st, err := zsimd.NewDirStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		cfg.Store = st
	}
	srv := zsimd.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "zsimd: serving on %s (queue=%d workers=%d parallel=%d store=%s)\n",
		*addr, *queue, *workers, *parallel, storeDesc(*storeDir))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "zsimd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "zsimd: shutdown:", err)
		}
		srv.Close()
	}
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zsimd:", err)
	os.Exit(1)
}
