// Command paperbench regenerates the paper's evaluation: every figure and
// table, the ablation sweeps behind its architectural-implications
// discussion, and a machine-checked verdict on the paper's qualitative
// claims.
//
// Usage:
//
//	paperbench                      # everything at small scale
//	paperbench -scale paper         # the paper's problem sizes (slow)
//	paperbench -fig 2               # just Figure 2 (Cholesky)
//	paperbench -table 1             # just Table 1
//	paperbench -list                # the experiment index (E1..E20)
//	paperbench -exp E15             # one experiment
//	paperbench -claims              # machine-check the paper's claims
//	paperbench -svg DIR             # also write figures as SVG
//	paperbench -csv | -md           # CSV or markdown tables
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"zsim"
	"zsim/internal/benchrec"
	"zsim/internal/prof"
)

func main() {
	var (
		scale    = flag.String("scale", "small", "problem scale: small | paper")
		procs    = flag.Int("procs", 16, "number of processors")
		fig      = flag.Int("fig", 0, "regenerate only this figure (2-5)")
		table    = flag.Int("table", 0, "regenerate only this table (1)")
		csv      = flag.Bool("csv", false, "emit tables as CSV")
		md       = flag.Bool("md", false, "emit tables as markdown")
		svgDir   = flag.String("svg", "", "also write each figure as an SVG into this directory")
		expID    = flag.String("exp", "", "run a single experiment by ID (E1..E20, S1..S4)")
		scaling  = flag.String("scaling-procs", "", "comma-separated machine sizes for the S-family scalability experiments (empty = 64,256,1024)")
		list     = flag.Bool("list", false, "list the experiment index and exit")
		claims   = flag.Bool("claims", false, "machine-check the paper's claims and print the verdicts")
		matrix   = flag.Bool("matrix", false, "print the overhead%% matrix: every app on every system")
		conf     = flag.Bool("conformance", false, "run every app on every system with the conformance checker")
		parallel = flag.Int("parallel", runtime.NumCPU(), "max simulations run concurrently (1 = serial; output is identical at any setting)")
		shards   = flag.Int("kernel-shards", 0, "shard the simulation kernel by home node with conservative lookahead (0 = serial; results are identical at any setting)")
		benchOut = flag.String("bench-json", "", "with the full regeneration: write a machine-readable timing/throughput record (BENCH_*.json) to this path")
		withMet  = flag.Bool("metrics", false, "collect and print the global metrics snapshot (implied by -bench-json)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (post-GC snapshot) to this file on exit")
	)
	flag.Parse()

	scalingProcs, err := parseProcsList(*scaling)
	check(err)

	stopProf, err := prof.Start(*cpuProf, *memProf)
	check(err)
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench: profile:", err)
		}
	}()

	if *withMet || *benchOut != "" {
		zsim.EnableMetrics(true)
		zsim.ResetGlobalMetrics()
	}

	zsim.SetParallelism(*parallel)
	sc := zsim.Scale(*scale)
	params := zsim.DefaultParams(*procs)
	if *shards > 0 {
		params.KernelShards = *shards
		check(params.Validate())
	}
	emitTable := func(t *zsim.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Print(t.Markdown())
		default:
			fmt.Print(t.Render())
		}
		fmt.Println()
	}
	emitArtifact := func(id string, art interface {
		Render() string
		Markdown() string
	}) {
		if *md {
			fmt.Print(art.Markdown())
		} else {
			fmt.Print(art.Render())
		}
		fmt.Println()
		if f, ok := art.(*zsim.Figure); ok && *svgDir != "" {
			path := filepath.Join(*svgDir, fmt.Sprintf("%s.svg", id))
			check(os.WriteFile(path, []byte(f.SVG()), 0o644))
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	runClaims := func() bool {
		t, allOK, err := zsim.EvaluateClaims(sc, params)
		check(err)
		emitTable(t)
		return allOK
	}

	switch {
	case *conf:
		t, pass, err := zsim.ConformanceSweep(sc, params)
		check(err)
		emitTable(t)
		if !pass {
			os.Exit(1)
		}
	case *matrix:
		t, err := zsim.SummaryMatrix(sc, params)
		check(err)
		emitTable(t)
	case *claims:
		if !runClaims() {
			os.Exit(1)
		}
	case *list:
		for _, e := range zsim.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		for _, e := range zsim.ScalingExperiments(scalingProcs) {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *expID != "":
		e, err := zsim.FindExperimentScaled(*expID, scalingProcs)
		check(err)
		expStart := time.Now()
		art, err := e.Run(sc, params)
		check(err)
		emitArtifact(e.ID, art)
		if *benchOut != "" {
			rec := benchrec.Record{
				Scale:        *scale,
				Procs:        *procs,
				Parallel:     *parallel,
				KernelShards: *shards,
				GOMAXPROCS:   runtime.GOMAXPROCS(0),
				NumCPU:       runtime.NumCPU(),
				Experiments: []benchrec.Entry{
					{ID: e.ID, Title: e.Title, WallMS: msSince(expStart)},
				},
			}
			rec.TotalWallMS = rec.Experiments[0].WallMS
			if c, ok := art.(interface{ CurveData() benchrec.Curve }); ok {
				rec.Curves = append(rec.Curves, c.CurveData())
			}
			if zsim.MetricsEnabled() {
				snap := zsim.GlobalMetrics()
				rec.Metrics = &snap
			}
			rec.Timestamp = time.Now().UTC().Format(time.RFC3339)
			check(rec.Write(*benchOut))
			fmt.Printf("wrote %s (%s, %.0f ms)\n", *benchOut, e.ID, rec.TotalWallMS)
		}
	case *fig != 0:
		f, err := zsim.PaperFigure(*fig, sc, params)
		check(err)
		emitArtifact(fmt.Sprintf("figure%d", *fig), f)
	case *table == 1:
		t, _, err := zsim.PaperTable1(sc, params)
		check(err)
		emitTable(t)
	default:
		// The complete regeneration: every indexed experiment, then the
		// machine-checked claim verdicts. With -bench-json, each phase is
		// timed and the throughput record written for the perf trajectory.
		rec := benchrec.Record{
			Scale:        *scale,
			Procs:        *procs,
			Parallel:     *parallel,
			KernelShards: *shards,
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			NumCPU:       runtime.NumCPU(),
		}
		start := time.Now()
		for _, e := range zsim.Experiments() {
			fmt.Printf("--- %s: %s ---\n", e.ID, e.Title)
			expStart := time.Now()
			art, err := e.Run(sc, params)
			check(err)
			rec.Experiments = append(rec.Experiments, benchrec.Entry{
				ID: e.ID, Title: e.Title, WallMS: msSince(expStart),
			})
			emitArtifact(e.ID, art)
		}
		claimsStart := time.Now()
		ok := runClaims()
		rec.ClaimsWallMS = msSince(claimsStart)
		rec.TotalWallMS = msSince(start)
		if rec.TotalWallMS > 0 {
			rec.ExperimentsPerSec = float64(len(rec.Experiments)) / (rec.TotalWallMS / 1000)
		}
		if zsim.MetricsEnabled() {
			snap := zsim.GlobalMetrics()
			rec.Metrics = &snap
			fmt.Println("--- metrics ---")
			fmt.Print(snap.String())
		}
		if *benchOut != "" {
			rec.Timestamp = time.Now().UTC().Format(time.RFC3339)
			check(rec.Write(*benchOut))
			fmt.Printf("wrote %s (%d experiments, %.0f ms total, %.2f experiments/s at -parallel %d)\n",
				*benchOut, len(rec.Experiments), rec.TotalWallMS, rec.ExperimentsPerSec, *parallel)
		}
		if !ok {
			os.Exit(1)
		}
	}
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }

// parseProcsList parses a comma-separated machine-size list ("64,256"); an
// empty string selects the workload package's defaults (nil).
func parseProcsList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -scaling-procs entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}
