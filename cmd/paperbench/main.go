// Command paperbench regenerates the paper's evaluation: every figure and
// table, the ablation sweeps behind its architectural-implications
// discussion, and a machine-checked verdict on the paper's qualitative
// claims.
//
// Usage:
//
//	paperbench                      # everything at small scale
//	paperbench -scale paper         # the paper's problem sizes (slow)
//	paperbench -fig 2               # just Figure 2 (Cholesky)
//	paperbench -table 1             # just Table 1
//	paperbench -list                # the experiment index (E1..E20)
//	paperbench -exp E15             # one experiment
//	paperbench -claims              # machine-check the paper's claims
//	paperbench -svg DIR             # also write figures as SVG
//	paperbench -csv | -md           # CSV or markdown tables
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zsim"
)

func main() {
	var (
		scale  = flag.String("scale", "small", "problem scale: small | paper")
		procs  = flag.Int("procs", 16, "number of processors")
		fig    = flag.Int("fig", 0, "regenerate only this figure (2-5)")
		table  = flag.Int("table", 0, "regenerate only this table (1)")
		csv    = flag.Bool("csv", false, "emit tables as CSV")
		md     = flag.Bool("md", false, "emit tables as markdown")
		svgDir = flag.String("svg", "", "also write each figure as an SVG into this directory")
		expID  = flag.String("exp", "", "run a single experiment by ID (E1..E20)")
		list   = flag.Bool("list", false, "list the experiment index and exit")
		claims = flag.Bool("claims", false, "machine-check the paper's claims and print the verdicts")
		matrix = flag.Bool("matrix", false, "print the overhead%% matrix: every app on every system")
		conf   = flag.Bool("conformance", false, "run every app on every system with the conformance checker")
	)
	flag.Parse()

	sc := zsim.Scale(*scale)
	params := zsim.DefaultParams(*procs)
	emitTable := func(t *zsim.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Print(t.Markdown())
		default:
			fmt.Print(t.Render())
		}
		fmt.Println()
	}
	emitArtifact := func(id string, art interface {
		Render() string
		Markdown() string
	}) {
		if *md {
			fmt.Print(art.Markdown())
		} else {
			fmt.Print(art.Render())
		}
		fmt.Println()
		if f, ok := art.(*zsim.Figure); ok && *svgDir != "" {
			path := filepath.Join(*svgDir, fmt.Sprintf("%s.svg", id))
			check(os.WriteFile(path, []byte(f.SVG()), 0o644))
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	runClaims := func() bool {
		t, allOK, err := zsim.EvaluateClaims(sc, params)
		check(err)
		emitTable(t)
		return allOK
	}

	switch {
	case *conf:
		t, pass, err := zsim.ConformanceSweep(sc, params)
		check(err)
		emitTable(t)
		if !pass {
			os.Exit(1)
		}
	case *matrix:
		t, err := zsim.SummaryMatrix(sc, params)
		check(err)
		emitTable(t)
	case *claims:
		if !runClaims() {
			os.Exit(1)
		}
	case *list:
		for _, e := range zsim.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *expID != "":
		e, err := zsim.FindExperiment(*expID)
		check(err)
		art, err := e.Run(sc, params)
		check(err)
		emitArtifact(e.ID, art)
	case *fig != 0:
		f, err := zsim.PaperFigure(*fig, sc, params)
		check(err)
		emitArtifact(fmt.Sprintf("figure%d", *fig), f)
	case *table == 1:
		t, _, err := zsim.PaperTable1(sc, params)
		check(err)
		emitTable(t)
	default:
		// The complete regeneration: every indexed experiment, then the
		// machine-checked claim verdicts.
		for _, e := range zsim.Experiments() {
			fmt.Printf("--- %s: %s ---\n", e.ID, e.Title)
			art, err := e.Run(sc, params)
			check(err)
			emitArtifact(e.ID, art)
		}
		if !runClaims() {
			os.Exit(1)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}
