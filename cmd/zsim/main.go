// Command zsim runs one of the paper's benchmark applications on one
// simulated memory system and prints the execution-time breakdown.
//
// Usage:
//
//	zsim -app is -system rcinv -procs 16 -scale small
//	zsim -app cholesky -system zmc -scale paper
//	zsim -app nbody -all            # all five figure systems
//	zsim -litmus                    # litmus suite on every memory system
//	zsim -app is -system rcinv -check   # run with the conformance checker
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"zsim"
	"zsim/internal/prof"
)

func main() {
	var (
		app      = flag.String("app", "is", "application: cholesky | is | maxflow | nbody | sor")
		system   = flag.String("system", "rcinv", "memory system: zmc | pram | scinv | rcinv | rcupd | rccomp | rcadapt")
		procs    = flag.Int("procs", 16, "number of processors")
		scale    = flag.String("scale", "small", "problem scale: small | paper")
		all      = flag.Bool("all", false, "run the five figure systems and print the comparison")
		verbose  = flag.Bool("v", false, "print per-processor breakdowns")
		traceN   = flag.Int("trace", 0, "record the last N events and print the hottest cache lines")
		topo     = flag.String("topology", "mesh", "interconnect: mesh | torus | hypercube | xbar | bus")
		threads  = flag.Int("threads", 1, "hardware threads per node (procs must be divisible)")
		pfile    = flag.String("params", "", "JSON parameter file (overrides the other machine flags)")
		asJSON   = flag.Bool("json", false, "emit the result as JSON instead of text")
		expID    = flag.String("exp", "", "run one indexed experiment (E1..E20, S1..S4) and exit")
		scaling  = flag.String("scaling-procs", "", "comma-separated machine sizes for the S-family scalability experiments (empty = 64,256,1024)")
		litmus   = flag.Bool("litmus", false, "run the litmus suite on every memory system and exit")
		chkFlag  = flag.Bool("check", false, "attach the memory-consistency conformance checker")
		parallel = flag.Int("parallel", runtime.NumCPU(), "max simulations run concurrently for -all and -litmus (1 = serial; output is identical at any setting)")
		shards   = flag.Int("kernel-shards", 0, "shard the simulation kernel by home node with conservative lookahead (0 = serial; results are identical at any setting)")
		withMet  = flag.Bool("metrics", false, "collect per-run metrics and print the snapshot after the run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (post-GC snapshot) to this file on exit")
	)
	flag.Parse()
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "zsim: profile:", err)
		}
	}()
	zsim.SetParallelism(*parallel)
	if *withMet {
		zsim.EnableMetrics(true)
		zsim.ResetGlobalMetrics()
	}

	var params zsim.Params
	if *pfile != "" {
		data, err := os.ReadFile(*pfile)
		if err != nil {
			fatal(err)
		}
		params, err = zsim.ParamsFromJSON(data)
		if err != nil {
			fatal(err)
		}
	} else {
		params = zsim.DefaultMTParams(*procs, *threads)
		params.Topology = *topo
	}
	if *shards > 0 {
		params.KernelShards = *shards
	}
	if err := params.Validate(); err != nil {
		fatal(err)
	}
	sc := zsim.Scale(*scale)

	printMetrics := func() {
		if *withMet {
			fmt.Println("\nmetrics:")
			fmt.Print(zsim.GlobalMetrics().String())
		}
	}

	if *expID != "" {
		var sprocs []int
		for _, f := range strings.Split(*scaling, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			n, err := strconv.Atoi(f)
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad -scaling-procs entry %q", f))
			}
			sprocs = append(sprocs, n)
		}
		e, err := zsim.FindExperimentScaled(*expID, sprocs)
		if err != nil {
			fatal(err)
		}
		art, err := e.Run(sc, params)
		if err != nil {
			fatal(err)
		}
		fmt.Print(art.Render())
		printMetrics()
		return
	}

	if *litmus {
		rs, err := zsim.RunLitmusSuite(zsim.Kinds(), params)
		if err != nil {
			fatal(err)
		}
		fmt.Print(zsim.LitmusReport(rs))
		printMetrics()
		if !zsim.LitmusOk(rs) {
			os.Exit(1)
		}
		return
	}

	if *all {
		fig := &zsim.Figure{Title: fmt.Sprintf("%s (%s scale, %d processors)", *app, sc, *procs)}
		kinds := zsim.FigureKinds()
		results, err := zsim.RunGrid(len(kinds), func(i int) (*zsim.Result, error) {
			return zsim.RunBenchmark(*app, sc, kinds[i], params)
		})
		if err != nil {
			fatal(err)
		}
		fig.Results = results
		fmt.Print(fig.Render())
		printMetrics()
		return
	}

	bench, err := zsim.NewBenchmark(*app, sc)
	if err != nil {
		fatal(err)
	}
	m, err := zsim.NewMachine(zsim.Kind(*system), params)
	if err != nil {
		fatal(err)
	}
	var rec *zsim.Trace
	if *traceN > 0 {
		rec = m.EnableTrace(*traceN)
	}
	var chk *zsim.Checker
	if *chkFlag {
		chk = m.EnableCheck()
	}
	res, err := zsim.RunAppOn(bench, m)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		data, err := res.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Printf("application:   %s (%s scale)\n", res.App, sc)
	fmt.Printf("memory system: %s, %d processors\n", res.System, params.Procs)
	fmt.Printf("execution:     %d cycles\n", res.ExecTime)
	fmt.Printf("read stall:    %d cycles\n", res.TotalReadStall())
	fmt.Printf("write stall:   %d cycles\n", res.TotalWriteStall())
	fmt.Printf("buffer flush:  %d cycles\n", res.TotalBufferFlush())
	fmt.Printf("sync wait:     %d cycles (inherent)\n", res.TotalSyncWait())
	fmt.Printf("overhead:      %.2f%% of aggregate execution time\n", res.OverheadPct())
	fmt.Printf("traffic:       %d messages, %d bytes\n", res.Counters.Messages, res.Counters.Bytes)
	if rec != nil {
		fmt.Printf("\nhottest cache lines (of the last %d traced events):\n", *traceN)
		for _, h := range rec.HotLines(params.LineSize, 10) {
			fmt.Println("  " + h.String())
		}
	}
	if *verbose {
		fmt.Println("\nper-processor breakdown (cycles):")
		fmt.Printf("%4s %12s %12s %12s %12s %12s\n", "proc", "compute", "read-stall", "write-stall", "buf-flush", "sync-wait")
		for i, p := range res.Procs {
			fmt.Printf("%4d %12d %12d %12d %12d %12d\n", i, p.Compute, p.ReadStall, p.WriteStall, p.BufferFlush, p.SyncWait)
		}
	}
	printMetrics()
	if chk != nil {
		events, reads, writes, audits := chk.Stats()
		fmt.Printf("\nconformance:   %d events validated (%d reads, %d writes, %d audits)\n", events, reads, writes, audits)
		if chk.Ok() {
			fmt.Println("conformance:   ok")
		} else {
			for _, v := range chk.Violations() {
				fmt.Println("conformance:   VIOLATION:", v)
			}
			fatal(chk.Err())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zsim:", err)
	os.Exit(1)
}
