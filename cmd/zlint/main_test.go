package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestJSONFindingFieldOrder pins the -json contract: encoding/json emits
// struct fields in declaration order, so the output must read file, line,
// col, analyzer, message — consumers diff it textually, not just
// structurally, and a field reorder would break those diffs silently.
func TestJSONFindingFieldOrder(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	err := enc.Encode([]jsonFinding{{
		File: "internal/sim/sim.go", Line: 3, Col: 7,
		Analyzer: "walltime", Message: "m",
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "internal/sim/sim.go",
    "line": 3,
    "col": 7,
    "analyzer": "walltime",
    "message": "m"
  }
]
`
	if buf.String() != want {
		t.Errorf("-json encoding:\n%s\nwant:\n%s", buf.String(), want)
	}
}
