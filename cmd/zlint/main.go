// Command zlint runs the project-native static-analysis suite that
// enforces the simulator's determinism and concurrency invariants:
//
//	zlint ./...                    lint every package in the module
//	zlint ./internal/sim           lint one package
//	zlint -list                    describe the analyzers and exit
//	zlint -json ./...              findings as a JSON array
//	zlint -confine-report ./...    print the confinement report (CONFINEMENT.md)
//
// Findings are printed one per line as "file:line: analyzer: message" and
// the exit status is nonzero when any unsuppressed finding remains. A
// finding is suppressed with a trailing or preceding comment
//
//	//zlint:ignore <analyzer> <reason>
//
// where the reason is mandatory and the suppression must actually match a
// finding — malformed and unused suppressions are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zsim/internal/lint"
)

// jsonFinding fixes the field order of -json output: encoding/json emits
// struct fields in declaration order, so consumers can diff the output
// textually as well as structurally.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array (stable field order, one object per finding)")
	confineReport := flag.Bool("confine-report", false, "print the whole-program confinement report instead of findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: zlint [-list] [-json] [-confine-report] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			scope := "all packages"
			if a.ZoneOnly {
				scope = "deterministic zone"
			}
			fmt.Printf("%-10s %-18s %s\n", a.Name, "("+scope+")", a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	pkgs, err := lint.NewLoader().Load(root, patterns)
	if err != nil {
		fatal(err)
	}

	if *confineReport {
		res := lint.ConfineRun(pkgs, lint.DefaultConfineConfig())
		if !res.Ran {
			fatal(fmt.Errorf("confine-report needs the whole program loaded; run with ./..."))
		}
		fmt.Print(res.Report.Render())
		return
	}

	findings := lint.Run(pkgs)
	for i := range findings {
		// Report module-relative paths so the output is stable across
		// checkouts and clickable from the repo root.
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			findings[i].Pos.Filename = rel
		}
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "zlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zlint:", err)
	os.Exit(2)
}
