// Command zlint runs the project-native static-analysis suite that
// enforces the simulator's determinism and concurrency invariants:
//
//	zlint ./...            lint every package in the module
//	zlint ./internal/sim   lint one package
//	zlint -list            describe the analyzers and exit
//
// Findings are printed one per line as "file:line: analyzer: message" and
// the exit status is nonzero when any unsuppressed finding remains. A
// finding is suppressed with a trailing or preceding comment
//
//	//zlint:ignore <analyzer> <reason>
//
// where the reason is mandatory and the suppression must actually match a
// finding — malformed and unused suppressions are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zsim/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: zlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers {
			scope := "all packages"
			if a.ZoneOnly {
				scope = "deterministic zone"
			}
			fmt.Printf("%-10s %-18s %s\n", a.Name, "("+scope+")", a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	pkgs, err := lint.NewLoader().Load(root, patterns)
	if err != nil {
		fatal(err)
	}

	findings := lint.Run(pkgs)
	for _, f := range findings {
		// Report module-relative paths so the output is stable across
		// checkouts and clickable from the repo root.
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "zlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zlint:", err)
	os.Exit(2)
}
