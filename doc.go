// Package zsim reproduces "The Quest for a Zero Overhead Shared Memory
// Parallel Machine" (Shah, Singla, Ramachandran; ICPP 1995): an
// execution-driven shared-memory multiprocessor simulator whose reference
// point is the z-machine — a realistic ideal machine that charges an
// application only for the communication inherent in its producer-consumer
// data flow.
//
// The package exposes three layers:
//
//   - Benchmarks. RunBenchmark and the Figure/Table helpers execute the
//     paper's four applications (Cholesky, Barnes-Hut, Integer Sort,
//     Maxflow) on any of the seven memory systems and regenerate every
//     figure and table of the paper's evaluation.
//
//   - Custom applications. NewMachine + the Env trap API (shared arrays,
//     locks, barriers, flags) let callers write their own parallel programs
//     and measure how far a memory system's behaviour is from the
//     zero-overhead ideal. See examples/customapp.
//
//   - Raw memory systems. The Kinds constants name the systems: ZMachine,
//     PRAM, SCInv, RCInv, RCUpd, RCComp, RCAdapt.
//
// A minimal session:
//
//	res, err := zsim.RunBenchmark("is", zsim.ScaleSmall, zsim.RCInv, zsim.DefaultParams(16))
//	if err != nil { ... }
//	fmt.Printf("overhead: %.1f%%\n", res.OverheadPct())
//
// All simulation is deterministic: the same configuration always produces
// the same cycle counts.
package zsim
