# Tier-1 gate: everything `make check` runs must stay green.
GO ?= go

.PHONY: all build test race vet lint litmus conformance bench bench-all benchdiff profile zsimd check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The project-native static-analysis suite (cmd/zlint): maprange, walltime,
# globalmut, atomicmix, errdrop, confine. See DESIGN.md "Determinism rules"
# and "State confinement". Any unsuppressed finding exits nonzero; suppress
# with `//zlint:ignore <analyzer> <reason>` (the reason is mandatory).
# The second step regenerates the whole-program confinement report and
# diffs it against the committed CONFINEMENT.md: widening any protocol
# field's sharing (or deleting a //zlint:confine annotation) fails lint
# until the report is consciously re-blessed with
# `go run ./cmd/zlint -confine-report ./... > CONFINEMENT.md`.
lint:
	$(GO) run ./cmd/zlint ./...
	$(GO) run ./cmd/zlint -confine-report ./... | diff -u CONFINEMENT.md -

test:
	$(GO) test ./...

# The dynamic backstop for the static globalmut/atomicmix analyzers: the
# race detector over the short test suite.
race:
	$(GO) test -race -short ./...

# The litmus suite: every litmus program on every memory system with the
# conformance checker attached; nonzero exit on any non-conformance.
litmus:
	$(GO) run ./cmd/zsim -litmus

# Every application on every memory system under the conformance checker.
conformance:
	$(GO) run ./cmd/paperbench -conformance

# The perf-trajectory benchmarks: the kernel hot loop (fast-path Sync cost
# vs the channel-handoff worst case) and the grid benchmarks (litmus suite
# and full figure matrix at increasing worker-pool bounds), then the full
# regeneration's timing/throughput record.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineHotLoop|BenchmarkSyncRoundtrip' -benchmem ./internal/sim
	$(GO) test -run '^$$' -bench 'BenchmarkLitmusSuite|BenchmarkFigureGrid' -benchmem .
	$(GO) run ./cmd/paperbench -bench-json BENCH_baseline.json > /dev/null

# Every benchmark in the repository (slow).
bench-all:
	$(GO) test -bench . -benchmem

# Profile the small-scale sweep serially (so the CPU profile reflects the
# simulation hot path, not worker-pool scheduling). Inspect with
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/paperbench -scale small -parallel 1 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof"

# The regression gate CI runs: regenerate a fresh record and compare it
# against the blessed baseline. To bless a new baseline after a deliberate
# perf change, run `make bench` and commit BENCH_baseline.json.
benchdiff:
	$(GO) run ./cmd/paperbench -bench-json BENCH_ci.json > /dev/null
	$(GO) run ./cmd/benchdiff BENCH_baseline.json BENCH_ci.json -tolerance 25%

# The zsimd integration harness: API-only daemon tests (cache-hit byte
# identity, fault injection, queue saturation, cancellation) under the
# race detector. Also part of `make race` via ./...; kept addressable so
# daemon changes can be gated in isolation.
zsimd:
	$(GO) test ./internal/zsimdtest/... -race -short

check: vet lint build test race litmus conformance zsimd
