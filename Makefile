# Tier-1 gate: everything `make check` runs must stay green.
GO ?= go

.PHONY: all build test race vet litmus conformance bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The litmus suite: every litmus program on every memory system with the
# conformance checker attached; nonzero exit on any non-conformance.
litmus:
	$(GO) run ./cmd/zsim -litmus

# Every application on every memory system under the conformance checker.
conformance:
	$(GO) run ./cmd/paperbench -conformance

bench:
	$(GO) test -bench . -benchmem

check: vet build race litmus
