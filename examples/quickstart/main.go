// Quickstart: write a tiny parallel program against the zsim public API and
// see how far a real memory system's behaviour is from the zero-overhead
// ideal.
//
// The program is a pipeline: each processor repeatedly consumes the value
// its left neighbour produced in the previous iteration (double-buffered,
// with a barrier between iterations — data-race free, as the paper
// requires). On the z-machine the producer-to-consumer propagation hides
// entirely under the compute; on RCinv every consume pays a coherence miss.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"zsim"
)

// ring is a neighbour pipeline application.
type ring struct {
	buf   [2]zsim.F64 // double buffer: read buf[it%2], write buf[1-it%2]
	bar   *zsim.Barrier
	iters int
}

func (r *ring) Name() string { return "ring" }

func (r *ring) Setup(m *zsim.Machine) {
	r.iters = 64
	r.buf[0] = zsim.NewF64(m, m.NumProcs())
	r.buf[1] = zsim.NewF64(m, m.NumProcs())
	r.bar = zsim.NewBarrier(m)
	for i := 0; i < m.NumProcs(); i++ {
		m.PokeF64(r.buf[0].At(i), float64(i))
	}
}

func (r *ring) Body(e *zsim.Env) {
	left := (e.ID() + e.NumProcs() - 1) % e.NumProcs()
	for it := 0; it < r.iters; it++ {
		v := r.buf[it%2].Get(e, left) // consume the left neighbour's value
		e.Compute(500)                // ... compute on it ...
		r.buf[1-it%2].Set(e, e.ID(), v+1)
		r.bar.Wait(e)
	}
}

func (r *ring) Verify(m *zsim.Machine) error {
	// Each value travels one hop per iteration, gaining 1 per hop.
	p := r.buf[0].Len()
	final := r.buf[r.iters%2]
	for i := 0; i < p; i++ {
		want := float64((i-r.iters%p+p)%p + r.iters)
		if got := m.PeekF64(final.At(i)); got != want {
			return fmt.Errorf("cell %d = %g, want %g", i, got, want)
		}
	}
	return nil
}

func main() {
	params := zsim.DefaultParams(16)
	fmt.Println("ring pipeline, 16 processors, 64 iterations")
	fmt.Printf("%-8s %12s %12s %12s %12s %10s\n",
		"system", "exec-cycles", "read-stall", "write-stall", "buf-flush", "overhead")
	for _, kind := range []zsim.Kind{zsim.ZMachine, zsim.RCInv, zsim.RCUpd} {
		res, err := zsim.RunApp(&ring{}, kind, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12d %12d %12d %12d %9.2f%%\n",
			kind, res.ExecTime, res.TotalReadStall(), res.TotalWriteStall(),
			res.TotalBufferFlush(), res.OverheadPct())
	}
	fmt.Println("\nThe z-machine row is the application's inherent cost: everything")
	fmt.Println("above it on the other rows is overhead added by the memory system.")
}
