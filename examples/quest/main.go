// Quest: the paper's argument, end to end, on one workload.
//
// Step 1 measures the z-machine — the realistic ideal whose read stall is
// the application's inherent communication cost. Step 2 measures a real
// memory system (RCinv) and decomposes everything above the ideal into the
// three overhead classes. Steps 3-5 then apply the paper's §6 architectural
// implications one at a time and watch the overhead shrink toward zero:
// an adaptive protocol (lower traffic), prefetching (cold misses), and
// finally the §6 proposal itself — decoupling data flow from
// synchronization (rcsync), which eliminates buffer flush by construction.
//
// Run with: go run ./examples/quest
package main

import (
	"fmt"
	"log"

	"zsim"
)

func measure(label string, kind zsim.Kind, tweak func(*zsim.Params)) *zsim.Result {
	params := zsim.DefaultParams(16)
	if tweak != nil {
		tweak(&params)
	}
	res, err := zsim.RunBenchmark("cholesky", zsim.ScaleSmall, kind, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %12d %10.2f%% %12d %12d %12d\n",
		label, res.ExecTime, res.OverheadPct(),
		res.TotalReadStall(), res.TotalWriteStall(), res.TotalBufferFlush())
	return res
}

func main() {
	fmt.Println("The quest for a zero overhead machine, on Cholesky (16 processors):")
	fmt.Println()
	fmt.Printf("%-34s %12s %10s %12s %12s %12s\n",
		"step", "exec-cycles", "overhead", "read-stall", "write-stall", "buf-flush")

	ideal := measure("1. the ideal (z-machine)", zsim.ZMachine, nil)
	base := measure("2. a real system (rcinv)", zsim.RCInv, nil)
	measure("3. + adaptive protocol (rcadapt)", zsim.RCAdapt, nil)
	measure("4. + prefetching (rcinv, degree 4)", zsim.RCInv, func(p *zsim.Params) {
		p.PrefetchDegree = 4
	})
	final := measure("5. + decoupled sync (rcsync, pf 4)", zsim.RCSync, func(p *zsim.Params) {
		p.PrefetchDegree = 4
	})

	fmt.Println()
	removed := 100 * (base.OverheadPct() - final.OverheadPct()) / base.OverheadPct()
	fmt.Printf("The ideal shows %.2f%% overhead; the unimproved real system %.2f%%.\n",
		ideal.OverheadPct(), base.OverheadPct())
	fmt.Printf("The paper's §6 mechanisms remove %.0f%% of that overhead — buffer flush\n", removed)
	fmt.Println("goes to exactly zero (the rcsync construction), and what remains is the")
	fmt.Println("read stall the paper leaves to smarter data-flow mechanisms.")
}
