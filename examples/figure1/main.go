// Figure1: reproduce the paper's Figure 1 — the timeline that defines
// inherent communication cost versus overhead.
//
// In the paper's figure, processor P1 writes a value at t1; P2 reads it
// almost immediately (at t2, before the propagation latency L has elapsed)
// and pays the *inherent* communication cost t3−t2; P0 reads much later (at
// t6), so on the ideal machine its cost is zero — the communication hid
// under computation. On a real memory system P0 still pays (t7−t6): pure
// overhead.
//
// This example stages exactly that access pattern and prints the stalls
// observed on the z-machine and on RCinv.
//
// Run with: go run ./examples/figure1
package main

import (
	"fmt"
	"log"

	"zsim"
)

// figure1 stages the three-processor timeline.
type figure1 struct {
	x     zsim.F64     // the datum P1 produces
	ready *zsim.Flag   // control-flow synchronization (the "Synch" of the figure)
	stall [3]zsim.Time // observed read stalls: [P0, P1(unused), P2]
}

func (f *figure1) Name() string { return "figure1" }

func (f *figure1) Setup(m *zsim.Machine) {
	f.x = zsim.NewF64(m, 1)
	f.ready = zsim.NewFlag(m)
}

func (f *figure1) Body(e *zsim.Env) {
	switch e.ID() {
	case 1: // the producer: write at t1, then proceed immediately
		e.Compute(1000) // t1 = 1000
		f.x.Set(e, 0, 3.14)
		f.ready.Set(e)
	case 2: // the eager consumer: read right after the write (t2 ≈ t1)
		f.ready.Wait(e)
		before := e.Clock()
		_ = f.x.Get(e, 0)
		f.stall[2] = e.Clock() - before
	case 0: // the patient consumer: read long after the write (t6 >> t1+L)
		f.ready.Wait(e)
		e.Compute(5000) // plenty of overlapped computation
		before := e.Clock()
		_ = f.x.Get(e, 0)
		f.stall[0] = e.Clock() - before
	}
}

func (f *figure1) Verify(m *zsim.Machine) error {
	if got := m.PeekF64(f.x.At(0)); got != 3.14 {
		return fmt.Errorf("datum lost: %g", got)
	}
	return nil
}

func main() {
	fmt.Println("The paper's Figure 1: inherent communication cost vs overhead")
	fmt.Println()
	fmt.Printf("%-8s %28s %28s\n", "system", "P2 (reads immediately)", "P0 (reads much later)")
	for _, kind := range []zsim.Kind{zsim.ZMachine, zsim.RCInv} {
		app := &figure1{}
		if _, err := zsim.RunApp(app, kind, zsim.DefaultParams(16)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %22d cycles %22d cycles\n", kind, app.stall[2], app.stall[0])
	}
	fmt.Println(`
Reading the rows:
 - z-machine: P2's stall is the INHERENT cost (t3-t2 in the figure): it
   asked for the datum before the wire could deliver it. P0's stall is
   zero: the same communication happened, but it hid under computation.
 - rcinv: both consumers stall. P2's stall above the z-machine's and ALL
   of P0's stall are OVERHEAD (t7-t6): the invalidation protocol only
   starts moving data when the consumer asks.`)
}
