// Customapp: a complete domain application written against the zsim public
// API — a red-black Gauss-Seidel solver for the 2-D Poisson equation on a
// grid partitioned into horizontal strips. Each sweep updates one color
// with a barrier between colors, so neighbouring strips exchange only their
// boundary rows: a classic static nearest-neighbour sharing pattern.
//
// The example shows (a) how to build an application with shared arrays,
// barriers, and an explicit compute cost model, and (b) how the paper's
// overhead decomposition localizes where a memory system loses time on it.
//
// Run with: go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"math"

	"zsim"
)

// redblack solves ∇²u = f on an n×n interior grid with u=0 boundaries.
type redblack struct {
	n      int // interior grid dimension
	sweeps int
	u      zsim.F64 // (n+2)×(n+2), row-major
	f      zsim.F64
	bar    *zsim.Barrier
}

func (rb *redblack) Name() string { return "redblack" }

func (rb *redblack) idx(r, c int) int { return r*(rb.n+2) + c }

func (rb *redblack) Setup(m *zsim.Machine) {
	rb.n = 24
	rb.sweeps = 10
	size := (rb.n + 2) * (rb.n + 2)
	rb.u = zsim.NewF64(m, size)
	rb.f = zsim.NewF64(m, size)
	rb.bar = zsim.NewBarrier(m)
	for r := 1; r <= rb.n; r++ {
		for c := 1; c <= rb.n; c++ {
			m.PokeF64(rb.f.At(rb.idx(r, c)), 1.0)
		}
	}
}

func (rb *redblack) Body(e *zsim.Env) {
	// Horizontal strip of rows per processor.
	per := (rb.n + e.NumProcs() - 1) / e.NumProcs()
	lo := e.ID()*per + 1
	hi := lo + per - 1
	if hi > rb.n {
		hi = rb.n
	}
	h2 := 1.0 / float64((rb.n+1)*(rb.n+1))
	for s := 0; s < rb.sweeps; s++ {
		for color := 0; color < 2; color++ {
			for r := lo; r <= hi; r++ {
				for c := 1 + (r+color)%2; c <= rb.n; c += 2 {
					up := rb.u.Get(e, rb.idx(r-1, c))
					down := rb.u.Get(e, rb.idx(r+1, c))
					left := rb.u.Get(e, rb.idx(r, c-1))
					right := rb.u.Get(e, rb.idx(r, c+1))
					fv := rb.f.Get(e, rb.idx(r, c))
					rb.u.Set(e, rb.idx(r, c), 0.25*(up+down+left+right-h2*fv))
					e.Compute(6 * 4) // 6 flops
				}
			}
			rb.bar.Wait(e)
		}
	}
}

func (rb *redblack) Verify(m *zsim.Machine) error {
	// The iterate must match a sequential red-black solver exactly (the
	// update order within a color does not affect the result: each color
	// reads only the other color).
	n := rb.n
	u := make([]float64, (n+2)*(n+2))
	f := make([]float64, (n+2)*(n+2))
	for i := range f {
		f[i] = m.PeekF64(rb.f.At(i))
	}
	h2 := 1.0 / float64((n+1)*(n+1))
	id := func(r, c int) int { return r*(n+2) + c }
	for s := 0; s < rb.sweeps; s++ {
		for color := 0; color < 2; color++ {
			for r := 1; r <= n; r++ {
				for c := 1 + (r+color)%2; c <= n; c += 2 {
					u[id(r, c)] = 0.25 * (u[id(r-1, c)] + u[id(r+1, c)] + u[id(r, c-1)] + u[id(r, c+1)] - h2*f[id(r, c)])
				}
			}
		}
	}
	for i := range u {
		got := m.PeekF64(rb.u.At(i))
		if math.Abs(got-u[i]) > 1e-12 {
			return fmt.Errorf("cell %d = %g, reference %g", i, got, u[i])
		}
	}
	return nil
}

func main() {
	params := zsim.DefaultParams(16)
	fmt.Println("red-black Gauss-Seidel, 24x24 interior grid, 10 sweeps, 16 processors")
	fmt.Printf("%-8s %12s %12s %12s %12s %10s\n",
		"system", "exec-cycles", "read-stall", "write-stall", "buf-flush", "overhead")
	for _, kind := range zsim.FigureKinds() {
		res, err := zsim.RunApp(&redblack{}, kind, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12d %12d %12d %12d %9.2f%%\n",
			kind, res.ExecTime, res.TotalReadStall(), res.TotalWriteStall(),
			res.TotalBufferFlush(), res.OverheadPct())
	}
	fmt.Println("\nNearest-neighbour sharing is stable, so the update-family systems")
	fmt.Println("(rcupd/rcadapt/rccomp) eliminate most of the read stall rcinv pays on")
	fmt.Println("boundary rows every sweep — but buy it with write stall and buffer")
	fmt.Println("flush from the update fan-out, the exact trade-off of the paper's §5.")
}
