// Overheads: regenerate one of the paper's per-application figures — the
// same workload on the z-machine and the four RC memory systems, with the
// execution time decomposed into the three overhead classes.
//
// Run with:
//
//	go run ./examples/overheads                  # IS (Figure 3), small scale
//	go run ./examples/overheads -app nbody       # Barnes-Hut (Figure 5)
//	go run ./examples/overheads -scale paper     # the paper's problem sizes
package main

import (
	"flag"
	"fmt"
	"log"

	"zsim"
)

func main() {
	app := flag.String("app", "is", "application: cholesky | is | maxflow | nbody")
	scale := flag.String("scale", "small", "problem scale: small | paper")
	procs := flag.Int("procs", 16, "processors")
	flag.Parse()

	params := zsim.DefaultParams(*procs)
	fig := &zsim.Figure{Title: fmt.Sprintf("%s on %d processors (%s scale)", *app, *procs, *scale)}
	for _, kind := range zsim.FigureKinds() {
		res, err := zsim.RunBenchmark(*app, zsim.Scale(*scale), kind, params)
		if err != nil {
			log.Fatal(err)
		}
		fig.Results = append(fig.Results, res)
		fmt.Printf("ran %-8s exec=%-10d overhead=%5.2f%%\n", kind, res.ExecTime, res.OverheadPct())
	}
	fmt.Println()
	fmt.Print(fig.Render())
}
