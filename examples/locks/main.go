// Locks: how synchronization *implementation* interacts with the memory
// system. The paper treats process coordination as an inherent cost with
// hardware support; this example contrasts that (the queue Lock, whose wait
// is SyncWait) with a software test-and-test-and-set SpinLock built from
// ordinary shared accesses — whose spinning traffic the coherence protocol
// must carry, and which therefore behaves very differently under
// invalidate- and update-based systems. It also contrasts the centralized
// barrier with a combining-tree barrier on a larger machine.
//
// Run with: go run ./examples/locks
package main

import (
	"fmt"
	"log"

	"zsim"
)

// critical is a lock-protected counter workload: every processor increments
// a shared counter n times under the chosen lock.
func critical(kind zsim.Kind, spin bool, iters int) (*zsim.Result, error) {
	m, err := zsim.NewMachine(kind, zsim.DefaultParams(16))
	if err != nil {
		return nil, err
	}
	cell := zsim.NewI64(m, 1)
	var acquire, release func(e *zsim.Env)
	if spin {
		l := zsim.NewSpinLock(m, 16)
		acquire, release = l.Acquire, l.Release
	} else {
		l := zsim.NewLock(m)
		acquire, release = l.Acquire, l.Release
	}
	res := m.Run("critical", func(e *zsim.Env) {
		for i := 0; i < iters; i++ {
			acquire(e)
			cell.Add(e, 0, 1)
			e.Compute(30)
			release(e)
			e.Compute(20)
		}
	})
	if got := int64(m.PeekU64(cell.At(0))); got != int64(16*iters) {
		return nil, fmt.Errorf("lost updates: counter = %d, want %d", got, 16*iters)
	}
	return res, nil
}

// barriers times r rounds of barrier-only synchronization on p processors.
func barriers(p int, tree bool, rounds int) (zsim.Time, error) {
	m, err := zsim.NewMachine(zsim.PRAM, zsim.DefaultParams(p))
	if err != nil {
		return 0, err
	}
	var wait func(e *zsim.Env)
	if tree {
		wait = zsim.NewTreeBarrier(m).Wait
	} else {
		wait = zsim.NewBarrier(m).Wait
	}
	res := m.Run("barriers", func(e *zsim.Env) {
		for i := 0; i < rounds; i++ {
			wait(e)
		}
	})
	return res.ExecTime, nil
}

func main() {
	fmt.Println("lock-protected counter, 16 processors x 8 increments")
	fmt.Printf("%-8s %-9s %12s %12s %12s %12s\n",
		"system", "lock", "exec-cycles", "read-stall", "write-stall", "sync-wait")
	for _, kind := range []zsim.Kind{zsim.RCInv, zsim.RCUpd, zsim.RCAdapt} {
		for _, spin := range []bool{false, true} {
			name := "queue"
			if spin {
				name = "spin-t&s"
			}
			res, err := critical(kind, spin, 8)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-9s %12d %12d %12d %12d\n",
				kind, name, res.ExecTime, res.TotalReadStall(), res.TotalWriteStall(), res.TotalSyncWait())
		}
	}
	fmt.Println("\nThe queue lock's cost is process coordination (sync wait, inherent);")
	fmt.Println("the spin lock turns the same coordination into coherence traffic the")
	fmt.Println("protocol must carry — read stall under invalidation, update fan-out")
	fmt.Println("under update protocols.")

	fmt.Println("\nbarrier-only rounds (PRAM memory, 8 rounds):")
	fmt.Printf("%-6s %14s %14s\n", "procs", "central", "tree")
	for _, p := range []int{16, 64} {
		c, err := barriers(p, false, 8)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := barriers(p, true, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %14d %14d\n", p, c, tr)
	}
	fmt.Println("\nThe centralized barrier serializes P messages at node 0; the")
	fmt.Println("combining tree's critical path is logarithmic.")
}
