// Sweep: the paper's §6 architectural-implications analysis as runnable
// parameter sweeps — how write stall responds to store-buffer depth, how
// all overheads respond to network speed, how the competitive threshold
// trades read stall against update traffic, and what finite caches
// (§7 open issues) add on top of the paper's infinite-cache assumption.
//
// Run with: go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"zsim"
)

func main() {
	params := zsim.DefaultParams(16)
	emit := func(t *zsim.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Render())
	}

	// §6: "Write stall time is dependent on two parameters: the store
	// buffer size and the relative speed of the network."
	emit(zsim.StoreBufferSweep("is", zsim.ScaleSmall, zsim.RCInv, params, []int{1, 2, 4, 8, 16}))
	emit(zsim.NetworkSweep("maxflow", zsim.ScaleSmall, zsim.RCUpd, params, []float64{0.4, 0.8, 1.6, 3.2}))

	// §4: the competitive protocol's threshold.
	emit(zsim.ThresholdSweep("nbody", zsim.ScaleSmall, params, []int{1, 2, 4, 8}))

	// §7 open issue: the effect of finite caches.
	emit(zsim.FiniteCacheSweep("nbody", zsim.ScaleSmall, zsim.RCInv, params, []int{16, 64, 256}))

	// §6: prefetching for cold-miss-dominated applications.
	emit(zsim.PrefetchSweep("cholesky", zsim.ScaleSmall, params, []int{0, 1, 2, 4}))

	// What "most studies" use as their reference, versus this paper's RC.
	emit(zsim.SCvsRC(zsim.ScaleSmall, params))

	// §7 open issue: multithreading as latency tolerance — fixed nodes,
	// more hardware threads per node attacking the same total work.
	emit(zsim.MultithreadSweep("maxflow", zsim.ScaleSmall, zsim.RCInv, 4, []int{1, 2, 4}))
}
