package zsim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestManyCoreShardedIdentity is the >64-processor bit-identity fence
// behind the lifted processor cap (CI's many-core job runs it under
// -race -short): at 256 processors on the 16×16 mesh, at 256 on the
// hierarchical topology, and at 1024 on the 32×32 mesh, the sharded kernel
// must produce exactly the serial engine's Result and trace stream. The
// multi-word presence sets make these machines representable at all; this
// test pins that they simulate identically under intra-run parallelism.
func TestManyCoreShardedIdentity(t *testing.T) {
	cases := []struct {
		app   string
		kind  Kind
		procs int
		topo  string
	}{
		{"maxflow", RCInv, 256, "mesh"},
		{"cholesky", RCUpd, 256, "mesh"},
		{"maxflow", RCInv, 256, "hier"},
		{"maxflow", RCInv, 1024, "mesh"},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/%s/p%d/%s", c.app, c.kind, c.procs, c.topo), func(t *testing.T) {
			t.Parallel()
			serial := DefaultParams(c.procs)
			serial.Topology = c.topo
			r0, total0, ev0, err := runTraced(c.app, c.kind, serial)
			if err != nil {
				t.Fatal(err)
			}
			sharded := serial
			sharded.KernelShards = 4
			r1, total1, ev1, err := runTraced(c.app, c.kind, sharded)
			if err != nil {
				t.Fatalf("shards=4: %v", err)
			}
			if !reflect.DeepEqual(r0, r1) {
				t.Errorf("Result diverged from serial at %d procs:\n%s\nvs\n%s", c.procs, r0, r1)
			}
			if total0 != total1 {
				t.Errorf("event totals diverged: serial %d vs sharded %d", total0, total1)
			}
			if !reflect.DeepEqual(ev0, ev1) {
				t.Errorf("trace streams diverged (window of last %d events)", traceCap)
			}
		})
	}
}

// TestManyCoreDirectoryWideSharers drives a directory entry past the old
// single-word presence-set ceiling on a real machine: a 256-processor
// all-read pattern must record every processor as a sharer and a writer's
// invalidation must reach all of them.
func TestManyCoreDirectoryWideSharers(t *testing.T) {
	const procs = 256
	app := &wideShareApp{}
	res, err := RunApp(app, RCInv, DefaultParams(procs))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("no cycles simulated")
	}
	if res.Counters.Invalidations < procs-1 {
		t.Errorf("writer invalidated %d sharers, want at least %d (presence set truncated?)",
			res.Counters.Invalidations, procs-1)
	}
}

// wideShareApp: every processor reads one shared line (populating 256
// presence bits), then processor 0 writes it (invalidating all of them).
type wideShareApp struct {
	x   F64
	bar *Barrier
}

func (a *wideShareApp) Name() string { return "wide-share" }

func (a *wideShareApp) Setup(m *Machine) {
	a.x = NewF64(m, 1)
	a.bar = NewBarrier(m)
}

func (a *wideShareApp) Body(e *Env) {
	a.x.Get(e, 0)
	a.bar.Wait(e)
	if e.ID() == 0 {
		a.x.Set(e, 0, 1)
	}
	a.bar.Wait(e)
	a.x.Get(e, 0)
}

func (a *wideShareApp) Verify(m *Machine) error { return nil }
