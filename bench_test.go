package zsim

// One benchmark per table and figure of the paper's evaluation section,
// plus ablation benches for the design parameters discussed in §6/§7.
//
// Benchmarks execute complete simulations at the reduced ("small") scale so
// `go test -bench=.` finishes in minutes; `cmd/paperbench -scale paper`
// regenerates the artifacts at the paper's exact problem sizes.
// Reported custom metrics carry the figures' headline numbers: the
// per-system overhead percentage (the number printed on top of each bar in
// Figures 2-5) and, for Table 1, the z-machine's observed cost.

import (
	"fmt"
	"os"
	"runtime"
	"testing"
)

func benchScale() Scale {
	if os.Getenv("ZSIM_PAPER_SCALE") != "" {
		return ScalePaper
	}
	return ScaleSmall
}

// benchFigure regenerates one figure per iteration and reports each
// system's overhead percentage as a metric.
func benchFigure(b *testing.B, n int) {
	b.Helper()
	b.ReportAllocs()
	params := DefaultParams(16)
	var fig *Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = PaperFigure(n, benchScale(), params)
		if err != nil {
			b.Fatal(err)
		}
	}
	var cycles Time
	for _, r := range fig.Results {
		b.ReportMetric(r.OverheadPct(), string(r.System)+"_ovh_%")
		cycles += r.ExecTime
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkFig2Cholesky regenerates Figure 2: Cholesky on the five systems.
func BenchmarkFig2Cholesky(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFig3IS regenerates Figure 3: Integer Sort on the five systems.
func BenchmarkFig3IS(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFig4Maxflow regenerates Figure 4: Maxflow on the five systems.
func BenchmarkFig4Maxflow(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFig5BarnesHut regenerates Figure 5: Barnes-Hut on the five
// systems.
func BenchmarkFig5BarnesHut(b *testing.B) { benchFigure(b, 5) }

// BenchmarkTable1ZMachine regenerates Table 1: inherent communication and
// observed costs on the z-machine for all four applications.
func BenchmarkTable1ZMachine(b *testing.B) {
	b.ReportAllocs()
	params := DefaultParams(16)
	var results []*Result
	for i := 0; i < b.N; i++ {
		var err error
		_, results, err = PaperTable1(benchScale(), params)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(float64(r.Counters.Writes), r.App+"_writes")
		b.ReportMetric(float64(r.TotalReadStall()), r.App+"_observed_cycles")
	}
}

// BenchmarkZvsPRAM regenerates the §5 headline comparison: z-machine
// execution time vs PRAM, per application (the ratios should be ≈1).
func BenchmarkZvsPRAM(b *testing.B) {
	b.ReportAllocs()
	params := DefaultParams(16)
	for i := 0; i < b.N; i++ {
		for _, app := range Benchmarks() {
			z, err := RunBenchmark(app, benchScale(), ZMachine, params)
			if err != nil {
				b.Fatal(err)
			}
			p, err := RunBenchmark(app, benchScale(), PRAM, params)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(z.ExecTime)/float64(p.ExecTime), app+"_z/pram")
			}
		}
	}
}

// BenchmarkSCvsRC contrasts the sequentially consistent baseline with
// release consistency (extra experiment E12).
func BenchmarkSCvsRC(b *testing.B) {
	b.ReportAllocs()
	params := DefaultParams(16)
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"is", "maxflow"} {
			sc, err := RunBenchmark(app, benchScale(), SCInv, params)
			if err != nil {
				b.Fatal(err)
			}
			rc, err := RunBenchmark(app, benchScale(), RCInv, params)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(sc.ExecTime)/float64(rc.ExecTime), app+"_sc/rc")
			}
		}
	}
}

// BenchmarkAblationStoreBuffer sweeps the store buffer depth on IS/RCinv
// (§6: write stall vs buffer size).
func BenchmarkAblationStoreBuffer(b *testing.B) {
	for _, entries := range []int{1, 2, 4, 8, 16} {
		entries := entries
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.StoreBufEntries = entries
			var r *Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunBenchmark("is", benchScale(), RCInv, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.TotalWriteStall()), "write_stall_cycles")
			b.ReportMetric(float64(r.TotalBufferFlush()), "flush_cycles")
		})
	}
}

// BenchmarkAblationNetwork sweeps the link bandwidth on Maxflow/RCupd
// (§6: overheads vs relative network speed).
func BenchmarkAblationNetwork(b *testing.B) {
	for _, cpb := range []float64{0.4, 0.8, 1.6, 3.2} {
		cpb := cpb
		b.Run(fmt.Sprintf("cyc_per_byte=%.1f", cpb), func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.LinkCyclesPerByte = cpb
			var r *Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunBenchmark("maxflow", benchScale(), RCUpd, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.OverheadPct(), "overhead_%")
			b.ReportMetric(float64(r.ExecTime), "exec_cycles")
		})
	}
}

// BenchmarkAblationThreshold sweeps RCcomp's competitive threshold on
// Barnes-Hut.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, th := range []int{1, 2, 4, 8} {
		th := th
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.CompThreshold = th
			var r *Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunBenchmark("nbody", benchScale(), RCComp, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.TotalReadStall()), "read_stall_cycles")
			b.ReportMetric(float64(r.Counters.SelfInvalidations), "self_inval")
		})
	}
}

// BenchmarkAblationFiniteCache contrasts the paper's infinite caches with
// finite ones on Barnes-Hut/RCinv (§7 open issue; the tree is re-traversed
// per body, so capacity misses actually appear — Cholesky streams and is
// capacity-insensitive).
func BenchmarkAblationFiniteCache(b *testing.B) {
	run := func(b *testing.B, params Params) {
		b.ReportAllocs()
		var r *Result
		for i := 0; i < b.N; i++ {
			var err error
			r, err = RunBenchmark("nbody", benchScale(), RCInv, params)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(r.Counters.ReadMisses), "read_misses")
		b.ReportMetric(float64(r.TotalReadStall()), "read_stall_cycles")
	}
	b.Run("infinite", func(b *testing.B) { run(b, DefaultParams(16)) })
	for _, lines := range []int{16, 64, 256} {
		lines := lines
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.FiniteCache = true
			params.CacheLines = lines
			params.CacheAssoc = 4
			run(b, params)
		})
	}
}

// BenchmarkAblationPrefetch sweeps the sequential prefetch degree on
// Cholesky/RCinv (§6: prefetching against cold misses).
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, d := range []int{0, 1, 2, 4} {
		d := d
		b.Run(fmt.Sprintf("degree=%d", d), func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.PrefetchDegree = d
			var r *Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunBenchmark("cholesky", benchScale(), RCInv, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.TotalReadStall()), "read_stall_cycles")
			b.ReportMetric(float64(r.Counters.Prefetches), "prefetches")
		})
	}
}

// BenchmarkAblationMultithread sweeps hardware threads per node on
// Maxflow/RCinv with the node count fixed (§7 open issue: multithreading
// as latency tolerance).
func BenchmarkAblationMultithread(b *testing.B) {
	for _, th := range []int{1, 2, 4} {
		th := th
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultMTParams(4*th, th)
			var r *Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunBenchmark("maxflow", benchScale(), RCInv, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.ExecTime), "exec_cycles")
			b.ReportMetric(float64(r.TotalCoreWait()), "core_wait_cycles")
		})
	}
}

// BenchmarkAblationTopology sweeps the interconnect topology on
// Maxflow/RCinv (SPASM's "choice of network topologies").
func BenchmarkAblationTopology(b *testing.B) {
	for _, topo := range []string{"mesh", "torus", "hypercube", "xbar", "bus"} {
		topo := topo
		b.Run(topo, func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.Topology = topo
			var r *Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunBenchmark("maxflow", benchScale(), RCInv, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.ExecTime), "exec_cycles")
			b.ReportMetric(r.OverheadPct(), "overhead_%")
		})
	}
}

// BenchmarkRCSyncProposal regenerates E15: the paper's §6 decoupling
// proposal (rcsync) against rcinv on every application.
func BenchmarkRCSyncProposal(b *testing.B) {
	b.ReportAllocs()
	params := DefaultParams(16)
	for i := 0; i < b.N; i++ {
		for _, app := range Benchmarks() {
			inv, err := RunBenchmark(app, benchScale(), RCInv, params)
			if err != nil {
				b.Fatal(err)
			}
			sy, err := RunBenchmark(app, benchScale(), RCSync, params)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(inv.ExecTime)/float64(sy.ExecTime), app+"_speedup")
			}
		}
	}
}

// BenchmarkAblationOrdering regenerates E17: Cholesky under the natural
// band ordering vs nested dissection.
func BenchmarkAblationOrdering(b *testing.B) {
	b.ReportAllocs()
	params := DefaultParams(16)
	for i := 0; i < b.N; i++ {
		t, err := OrderingSweep(benchScale(), RCInv, params)
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
}

// BenchmarkAblationDirPointers regenerates E18: full-map vs Dir-i
// directories on Barnes-Hut/RCinv.
func BenchmarkAblationDirPointers(b *testing.B) {
	for _, ptrs := range []int{0, 2, 8} {
		ptrs := ptrs
		name := fmt.Sprintf("dir=%d", ptrs)
		if ptrs == 0 {
			name = "dir=full"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.DirPointers = ptrs
			var r *Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunBenchmark("nbody", benchScale(), RCInv, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Counters.PointerEvictions), "ptr_evictions")
			b.ReportMetric(float64(r.ExecTime), "exec_cycles")
		})
	}
}

// BenchmarkAblationLineSize regenerates E19: the coherence unit on
// IS/RCinv.
func BenchmarkAblationLineSize(b *testing.B) {
	for _, ls := range []int{8, 32, 128} {
		ls := ls
		b.Run(fmt.Sprintf("line=%d", ls), func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.LineSize = ls
			var r *Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = RunBenchmark("is", benchScale(), RCInv, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Counters.ReadMisses), "read_misses")
			b.ReportMetric(float64(r.ExecTime), "exec_cycles")
		})
	}
}

// BenchmarkCheckerOverhead measures the cost of running with the
// conformance checker attached against the plain run (acceptance budget:
// ≤2× slowdown). The checked/unchecked wall-time ratio is reported as a
// metric; compare with
//
//	go test -bench 'CheckerOverhead' -benchtime 5x
func BenchmarkCheckerOverhead(b *testing.B) {
	params := DefaultParams(16)
	run := func(b *testing.B, checked bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			app, err := NewBenchmark("is", benchScale())
			if err != nil {
				b.Fatal(err)
			}
			m, err := NewMachine(RCInv, params)
			if err != nil {
				b.Fatal(err)
			}
			if checked {
				m.EnableCheck()
			}
			if _, err := RunAppOn(app, m); err != nil {
				b.Fatal(err)
			}
			if checked {
				if err := m.Checker().Err(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("unchecked", func(b *testing.B) { run(b, false) })
	b.Run("checked", func(b *testing.B) { run(b, true) })
}

// BenchmarkMetricsOverhead measures the cost of running with metric
// recording enabled against the plain run (acceptance budget: ≤1.1×
// slowdown — the hot path only pays one atomic load per observation point
// plus the end-of-run harvest). Compare with
//
//	go test -bench 'MetricsOverhead' -benchtime 20x
func BenchmarkMetricsOverhead(b *testing.B) {
	params := DefaultParams(16)
	run := func(b *testing.B, enabled bool) {
		b.ReportAllocs()
		prev := EnableMetrics(enabled)
		defer func() {
			EnableMetrics(prev)
			ResetGlobalMetrics()
		}()
		for i := 0; i < b.N; i++ {
			if _, err := RunBenchmark("is", benchScale(), RCInv, params); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

// parallelLevels returns the worker bounds the grid benchmarks compare:
// serial, the 2x-speedup acceptance point, and every host core.
func parallelLevels() []int {
	levels := []int{1, 4}
	if n := runtime.NumCPU(); n > 4 {
		levels = append(levels, n)
	}
	return levels
}

// withParallelism runs f with the harness worker bound set to n, restoring
// the previous bound afterwards.
func withParallelism(n int, f func()) {
	prev := SetParallelism(n)
	defer SetParallelism(prev)
	f()
}

// BenchmarkLitmusSuite runs the full litmus suite (every test on every
// memory system, checker attached) at increasing worker-pool bounds; the
// sub-benchmark wall clocks expose the parallel runner's speedup (≥2x at
// parallel=4 on a ≥4-core host; output is identical at every setting).
func BenchmarkLitmusSuite(b *testing.B) {
	params := DefaultParams(4)
	for _, par := range parallelLevels() {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			withParallelism(par, func() {
				for i := 0; i < b.N; i++ {
					rs, err := RunLitmusSuite(Kinds(), params)
					if err != nil {
						b.Fatal(err)
					}
					if !LitmusOk(rs) {
						b.Fatalf("litmus suite not conformant:\n%s", LitmusReport(rs))
					}
				}
			})
		})
	}
}

// BenchmarkFigureGrid runs the paper's whole figure matrix — every figure
// application on every figure memory system, 20 independent simulations —
// through the worker pool at increasing bounds. This is the experiment
// grid the parallel runner was built for: cells are deterministic and
// independent, so wall clock should shrink near-linearly with cores while
// the assembled figures stay byte-identical.
func BenchmarkFigureGrid(b *testing.B) {
	params := DefaultParams(16)
	apps := Benchmarks()
	kinds := FigureKinds()
	n := len(apps) * len(kinds)
	for _, par := range parallelLevels() {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			withParallelism(par, func() {
				for i := 0; i < b.N; i++ {
					results, err := RunGrid(n, func(c int) (*Result, error) {
						return RunBenchmark(apps[c/len(kinds)], benchScale(), kinds[c%len(kinds)], params)
					})
					if err != nil {
						b.Fatal(err)
					}
					if len(results) != n {
						b.Fatalf("grid returned %d results, want %d", len(results), n)
					}
				}
			})
		})
	}
}

// BenchmarkAblationOracle regenerates E20: the z-machine's broadcast
// counter vs the perfect per-consumer oracle.
func BenchmarkAblationOracle(b *testing.B) {
	for _, mode := range []string{"broadcast", "perfect"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			params := DefaultParams(16)
			params.ZOracle = mode
			var total Time
			for i := 0; i < b.N; i++ {
				total = 0
				for _, app := range Benchmarks() {
					r, err := RunBenchmark(app, benchScale(), ZMachine, params)
					if err != nil {
						b.Fatal(err)
					}
					total += r.TotalReadStall()
				}
			}
			b.ReportMetric(float64(total), "inherent_stall_cycles")
		})
	}
}
