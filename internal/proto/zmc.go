package proto

import (
	"zsim/internal/directory"
	"zsim/internal/memsys"
	"zsim/internal/mesh"
	"zsim/internal/metrics"
)

// zmc is the paper's z-machine: the zero-overhead reference model whose only
// communication cost is the data flow inherent in the application (§2.2).
//
//   - The coherence unit is one word (4 bytes), so only true sharing
//     communicates.
//   - The producer is an oracle that ships a written datum to its consumers
//     immediately and never stalls: no write stall, no buffer flush.
//   - The datum becomes visible at consumers after the uncontended
//     propagation latency L, derived from the link bandwidth alone (there is
//     no contention in the z-machine). The per-block availability timestamp
//     implements the paper's §3 counter mechanism: a write "increments" the
//     counter and the counter "reaches zero" at AvailableAt; a read before
//     that time stalls — and that stall is, by construction, the
//     application's inherent communication cost.
//   - Synchronization provides control flow only; the availability counter
//     alone guarantees data flow (§3), i.e. the consistency model is the
//     weakest commensurate with the application's data access pattern.
//
// zline is the z-machine's per-line writer record, held in a paged flat
// table indexed by line number (dense, because the heap bump-allocates).
//
//zlint:confine home writer records are reached only through wr.At(line): every trap path indexes by the accessed word-line
type zline struct {
	writer  int32 // node of the line's most recent writer
	writeAt Time  // its issue time (perfect-oracle mode only)
	written bool
}

type zmc struct {
	p   memsys.Params
	net *mesh.Net
	dir *directory.Directory // line size = ZLineSize
	wr  memsys.Paged[zline]
	// maxLat holds net.MaxUncontendedLatency(src, ZLineSize) per source
	// node: the availability counter needs it on every write fan-out and the
	// scan over destinations is O(nodes). The topology, bandwidth, and
	// message size are all fixed for a run, so the table is precomputed at
	// construction — the trap path then reads frozen configuration instead
	// of filling a lazily-populated memo from whichever processor writes
	// first (which the confinement analysis would have to admit as shared
	// mutable state).
	maxLat  []Time
	perfect bool
	ctr     *memsys.Counters
}

func newZMachine(p memsys.Params, net *mesh.Net) *zmc {
	z := &zmc{
		p:       p,
		net:     net,
		dir:     directory.New(p.Nodes(), p.ZLineSize),
		maxLat:  make([]Time, p.Nodes()),
		perfect: p.ZOracle == "perfect",
		ctr:     memsys.NewCounters(p.Procs),
	}
	for src := range z.maxLat {
		z.maxLat[src] = net.MaxUncontendedLatency(src, p.ZLineSize)
	}
	return z
}

func (z *zmc) Name() memsys.Kind          { return memsys.KindZMachine }
func (z *zmc) Counters() *memsys.Counters { return z.ctr.Fold() }

// PublishMetrics harvests the z-machine's word-grain directory occupancy
// (implements metrics.Publisher).
func (z *zmc) PublishMetrics(r *metrics.Registry) {
	r.Gauge("directory.entries").Set(int64(z.dir.Entries()))
	r.Counter("directory.allocs").Add(z.dir.Allocs())
}

// lines visits every z-machine word-line covered by [addr, addr+size).
func (z *zmc) lines(addr memsys.Addr, size int, f func(line memsys.Addr)) {
	first := memsys.Line(addr, z.p.ZLineSize)
	last := memsys.Line(addr+memsys.Addr(size-1), z.p.ZLineSize)
	for l := first; l <= last; l++ {
		f(l)
	}
}

func (z *zmc) Write(p int, addr memsys.Addr, size int, now Time) Time {
	z.ctr.CountWrite(p)
	n := z.p.Node(p)
	// The oracle ships the datum to the consumers; the producer proceeds
	// immediately. Propagation completes within the worst-case uncontended
	// latency from the producer.
	L := z.maxLat[n]
	z.lines(addr, size, func(line memsys.Addr) {
		e := z.dir.Entry(line * memsys.Addr(z.p.ZLineSize))
		w := z.wr.At(uint64(line))
		if z.perfect {
			// Carry forward the previous write's worst-case availability so
			// that counter semantics (a read waits for ALL outstanding
			// writes) still hold across back-to-back writers.
			if w.written {
				if carry := w.writeAt + z.maxLat[int(w.writer)]; carry > e.AvailableAt {
					e.AvailableAt = carry
				}
			}
			w.writeAt = now
		} else if avail := now + L; avail > e.AvailableAt {
			e.AvailableAt = avail
		}
		w.writer = int32(n)
		w.written = true
		z.ctr.Updates++
		z.ctr.NetworkCycles += uint64(L)
	})
	return 0
}

func (z *zmc) Read(p int, addr memsys.Addr, size int, now Time) Time {
	z.ctr.CountRead(p)
	n := z.p.Node(p)
	var stall Time
	z.lines(addr, size, func(line memsys.Addr) {
		e, ok := z.dir.Lookup(line * memsys.Addr(z.p.ZLineSize))
		if !ok {
			return
		}
		// The producer's node reads its own value locally.
		w := z.wr.Peek(uint64(line))
		wok := w != nil && w.written
		if wok && int(w.writer) == n {
			return
		}
		avail := e.AvailableAt
		if z.perfect && wok {
			// Perfect oracle: this consumer waits only for the datum's
			// flight time from the producer to itself.
			if t := w.writeAt + z.net.UncontendedLatency(int(w.writer), n, z.p.ZLineSize); t > avail {
				avail = t
			}
		}
		if avail > now {
			if s := avail - now; s > stall {
				stall = s
			}
		}
	})
	if stall > 0 {
		z.ctr.ReadMisses++ // an inherent-communication wait, not a cache event
	}
	return stall
}

// Release and Acquire cost nothing: synchronization in the z-machine is
// control flow only (§3) — no buffer flush, no write stall, ever.
func (z *zmc) Release(int, Time) Time { return 0 }
func (z *zmc) Acquire(int, Time) Time { return 0 }

// ScopeOf implements memsys.ScopedSystem (DESIGN §15). Writes always fan
// availability out through the word-grain directory, so only loads can be
// node-private — and only the ones that would stall zero cycles at now:
// that path reads nothing but directory availability and writer records
// (both written exclusively by global-scope stores) and counts only the
// per-processor read cell. A stalling read increments the shared
// ReadMisses counter, so it stays global. The stall computation below
// mirrors Read exactly, through pure lookups only (dir.Lookup, wr.Peek,
// the uncontended-latency formula).
func (z *zmc) ScopeOf(p int, addr memsys.Addr, size int, now Time, class memsys.AccessClass) bool {
	if class != memsys.AccessLoad {
		return false
	}
	n := z.p.Node(p)
	local := true
	z.lines(addr, size, func(line memsys.Addr) {
		e, ok := z.dir.Lookup(line * memsys.Addr(z.p.ZLineSize))
		if !ok {
			return
		}
		w := z.wr.Peek(uint64(line))
		wok := w != nil && w.written
		if wok && int(w.writer) == n {
			return
		}
		avail := e.AvailableAt
		if z.perfect && wok {
			if t := w.writeAt + z.net.UncontendedLatency(int(w.writer), n, z.p.ZLineSize); t > avail {
				avail = t
			}
		}
		if avail > now {
			local = false
		}
	})
	return local
}

// pram is the PRAM reference: unit-cost memory with no communication cost at
// all. The paper's §5 headline result is that the z-machine's performance
// matches the PRAM's on all four applications.
type pram struct {
	ctr *memsys.Counters
}

func newPRAM(p memsys.Params) *pram { return &pram{ctr: memsys.NewCounters(p.Procs)} }

func (m *pram) Name() memsys.Kind          { return memsys.KindPRAM }
func (m *pram) Counters() *memsys.Counters { return m.ctr.Fold() }

func (m *pram) Read(p int, _ memsys.Addr, _ int, _ Time) Time {
	m.ctr.CountRead(p)
	return 0
}

func (m *pram) Write(p int, _ memsys.Addr, _ int, _ Time) Time {
	m.ctr.CountWrite(p)
	return 0
}

func (m *pram) Release(int, Time) Time { return 0 }
func (m *pram) Acquire(int, Time) Time { return 0 }

// ScopeOf implements memsys.ScopedSystem. PRAM loads cost nothing and touch
// only the per-processor read cell, so every load is node-private. Stores
// stay global: any processor on any shard may load any word at zero cost,
// so the machine layer's value write must serialize at a window boundary.
func (m *pram) ScopeOf(p int, addr memsys.Addr, size int, now Time, class memsys.AccessClass) bool {
	return class == memsys.AccessLoad
}
