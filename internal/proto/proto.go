// Package proto implements the simulated memory systems evaluated by the
// paper: the z-machine reference model, the four release-consistent systems
// built on the common CC-NUMA base hardware (RCinv, RCupd, RCcomp, RCadapt),
// and two extra baselines this reproduction adds (SCinv, the sequentially
// consistent invalidate system "most memory system studies" use as their
// frame of reference, and PRAM for the paper's §5 z-machine≈PRAM result).
//
// Every system returns, per access, the stall imposed on the issuing
// processor, classified by the paper's overhead taxonomy: Read → read-stall,
// Write → write-stall, Release → buffer-flush.
package proto

import (
	"fmt"

	"zsim/internal/cache"
	"zsim/internal/directory"
	"zsim/internal/memsys"
	"zsim/internal/mesh"
	"zsim/internal/metrics"
	"zsim/internal/wbuffer"
)

// Time aliases virtual time.
type Time = memsys.Time

// New constructs the memory system of the given kind sharing the provided
// interconnect.
func New(kind memsys.Kind, p memsys.Params, net *mesh.Net) (memsys.MemSystem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case memsys.KindZMachine:
		return newZMachine(p, net), nil
	case memsys.KindPRAM:
		return newPRAM(p), nil
	case memsys.KindRCInv:
		return newInv(p, net, false, false), nil
	case memsys.KindSCInv:
		return newInv(p, net, true, false), nil
	case memsys.KindRCSync:
		return newInv(p, net, false, true), nil
	case memsys.KindRCUpd:
		return newUpd(p, net, updPlain), nil
	case memsys.KindRCComp:
		return newUpd(p, net, updCompetitive), nil
	case memsys.KindRCAdapt:
		return newUpd(p, net, updAdaptive), nil
	}
	return nil, fmt.Errorf("proto: unknown memory system %q", kind)
}

// MustNew is New panicking on error (for tests and internal harnesses).
func MustNew(kind memsys.Kind, p memsys.Params, net *mesh.Net) memsys.MemSystem {
	m, err := New(kind, p, net)
	if err != nil {
		panic(err)
	}
	return m
}

// base is the hardware common to the real (non-ideal) memory systems: the
// mesh, per-node full-map directories, per-node private caches, and
// message-cost helpers. Hardware state (caches, buffers, directories) is
// per NUMA node; with HWThreads > 1 several execution streams share each
// node's hardware, and requests are issued on behalf of the stream's node.
type base struct {
	p   memsys.Params
	net *mesh.Net
	dir *directory.Directory
	//zlint:confine global invalidation and update fan-out mutate the private cache of an arbitrary sharer through this container; serialized by the trap token (phase-3 worklist)
	caches []cache.Cache
	// seen[node] marks lines ever cached by the node (cold-miss tracking):
	// paged flat tables indexed by the dense line number, consulted on every
	// miss, so the lookup must not hash or allocate.
	//
	//zlint:confine shard seen[node] is marked only when the issuing stream's own node fills a line
	seen []memsys.Paged[bool]
	ctr  *memsys.Counters
}

func newBase(p memsys.Params, net *mesh.Net) base {
	nodes := p.Nodes()
	b := base{
		p:      p,
		net:    net,
		dir:    directory.New(nodes, p.LineSize),
		caches: make([]cache.Cache, nodes),
		seen:   make([]memsys.Paged[bool], nodes),
		ctr:    memsys.NewCounters(p.Procs),
	}
	for i := range b.caches {
		if p.FiniteCache {
			b.caches[i] = cache.NewFinite(p.CacheLines, p.CacheAssoc)
		} else {
			b.caches[i] = cache.NewInfinite()
		}
	}
	return b
}

func (b *base) Counters() *memsys.Counters { return b.ctr.Fold() }

// instrumentStoreBuffers wires every node's store buffer to one shared set
// of metric handles (per-node attribution is not needed by the gate).
func (b *base) instrumentStoreBuffers(r *metrics.Registry, sbs []*wbuffer.StoreBuffer) {
	occ := r.Histogram("wbuffer.occupancy", wbuffer.OccupancyBuckets)
	full := r.Counter("wbuffer.full_stall_cycles")
	flush := r.Counter("wbuffer.flush_stall_cycles")
	flushes := r.Counter("wbuffer.flushes")
	for _, sb := range sbs {
		sb.Instrument(occ, full, flush, flushes)
	}
}

// PublishMetrics harvests the hardware state only the protocol can see —
// directory occupancy and cache residency/evictions — into r (implements
// metrics.Publisher). The protocol event counters (misses, invalidations,
// updates) are published by the machine from Counters().
func (b *base) PublishMetrics(r *metrics.Registry) {
	r.Gauge("directory.entries").Set(int64(b.dir.Entries()))
	r.Counter("directory.allocs").Add(b.dir.Allocs())
	var resident int
	var evictions uint64
	for _, c := range b.caches {
		resident += c.Len()
		evictions += c.Evictions()
	}
	r.Gauge("cache.resident_lines").Set(int64(resident))
	r.Counter("cache.evictions").Add(evictions)
}

func (b *base) line(addr memsys.Addr) memsys.Addr { return memsys.Line(addr, b.p.LineSize) }

func (b *base) home(line memsys.Addr) int { return int(line % memsys.Addr(b.p.Nodes())) }

// node maps an execution stream to the NUMA node whose hardware it uses.
func (b *base) node(p int) int { return b.p.Node(p) }

// ctrl models a control message (request, invalidation, ack).
func (b *base) ctrl(src, dst int, t Time) Time {
	if src != dst {
		b.ctr.Messages++
		b.ctr.Bytes += uint64(b.p.CtrlBytes)
	}
	return b.net.Send(src, dst, b.p.CtrlBytes, t)
}

// data models a message carrying one cache line of data.
func (b *base) data(src, dst int, t Time) Time {
	if src != dst {
		b.ctr.Messages++
		b.ctr.DataMsgs++
		b.ctr.Bytes += uint64(b.p.HeaderBytes + b.p.LineSize)
	}
	return b.net.Send(src, dst, b.p.HeaderBytes+b.p.LineSize, t)
}

// markSeen records that processor p has cached the line at least once, and
// reports whether this is the first time (a cold touch).
func (b *base) markSeen(p int, line memsys.Addr) (cold bool) {
	s := b.seen[p].At(uint64(line))
	if *s {
		return false
	}
	*s = true
	return true
}

// insert puts the line into p's cache, emitting the writeback traffic for a
// dirty victim when the cache is finite.
func (b *base) insert(p int, line memsys.Addr, st cache.State, readyAt Time) *cache.Line {
	l, victim, vstate, evicted := b.caches[p].Insert(line)
	if evicted {
		b.evict(p, victim, vstate, readyAt)
	}
	l.State = st
	l.ReadyAt = readyAt
	return l
}

// fill inserts the line into p's cache carrying the directory's current
// contents: the copy is stamped with the entry's version, which is how the
// conformance audit distinguishes a fresh copy from a stale one.
func (b *base) fill(p int, line memsys.Addr, st cache.State, readyAt Time) *cache.Line {
	l := b.insert(p, line, st, readyAt)
	l.Version = b.dir.Entry(line * memsys.Addr(b.p.LineSize)).Version
	return l
}

// evict handles a capacity/conflict victim: the directory is notified
// (replacement hint) and dirty data is written back. Traffic is accounted
// but does not extend the requesting processor's critical path.
func (b *base) evict(p int, victim memsys.Addr, vstate cache.State, t Time) {
	ve := b.dir.Entry(victim * memsys.Addr(b.p.LineSize))
	ve.Sharers.Remove(p)
	if vstate == cache.Modified {
		b.data(p, b.home(victim), t) // writeback
		ve.State = directory.SharedClean
		if ve.Sharers.Count() == 0 {
			ve.State = directory.Uncached
		}
	} else if ve.Sharers.Count() == 0 && ve.State == directory.SharedClean {
		ve.State = directory.Uncached
	}
	b.ctrl(p, b.home(victim), t) // replacement hint
}

// enforcePointers applies the Dir-i limit: if the entry now tracks more
// sharers than the directory has pointers for, the lowest-numbered sharer
// other than keep is invalidated (a pointer eviction). Traffic is
// accounted off the requester's critical path.
func (b *base) enforcePointers(e *directory.Entry, line memsys.Addr, keep int, t Time) {
	limit := b.p.DirPointers
	if limit <= 0 {
		return
	}
	home := b.home(line)
	for e.Sharers.Count() > limit {
		victim := -1
		e.Sharers.ForEach(func(s int) {
			if victim < 0 && s != keep {
				victim = s
			}
		})
		if victim < 0 {
			return
		}
		b.ctrl(home, victim, t)
		b.caches[victim].Invalidate(line)
		e.Sharers.Remove(victim)
		b.ctr.Invalidations++
		b.ctr.PointerEvictions++
	}
}

// readFill performs the remote part of a read miss by processor p and
// returns the fill completion time. The caller updates sharer/cache state.
func (b *base) readFill(p int, line memsys.Addr, now Time) Time {
	addr := line * memsys.Addr(b.p.LineSize)
	e := b.dir.Entry(addr)
	home := b.home(line)
	t := b.ctrl(p, home, now) + b.p.DirLatency
	if e.State == directory.Dirty && e.Owner != p {
		// Forward to the owner; owner supplies data to the requester and
		// writes back to home (off the critical path).
		fwd := b.ctrl(home, e.Owner, t)
		b.data(e.Owner, home, fwd) // sharing writeback
		t = b.data(e.Owner, p, fwd)
		if ol, ok := b.caches[e.Owner].Lookup(line); ok {
			ol.State = cache.Shared
		}
		e.State = directory.SharedClean
	} else {
		t += b.p.MemLatency
		t = b.data(home, p, t)
		if e.State == directory.Uncached {
			e.State = directory.SharedClean
		}
	}
	e.Sharers.Add(p)
	b.enforcePointers(e, line, p, t)
	return t
}

// ownership acquires exclusive ownership of the line for processor p
// (write-invalidate systems) and returns the completion time at which the
// write is globally performed.
func (b *base) ownership(p int, line memsys.Addr, now Time) Time {
	addr := line * memsys.Addr(b.p.LineSize)
	e := b.dir.Entry(addr)
	home := b.home(line)
	t := b.ctrl(p, home, now) + b.p.DirLatency
	switch {
	case e.State == directory.Dirty && e.Owner != p:
		// Transfer ownership from the current owner.
		fwd := b.ctrl(home, e.Owner, t)
		b.caches[e.Owner].Invalidate(line)
		b.ctr.Invalidations++
		t = b.data(e.Owner, p, fwd)
	case e.State == directory.Dirty && e.Owner == p:
		// Already owned (e.g. racing entry in the store buffer): refresh.
		t = b.ctrl(home, p, t)
	default:
		// Invalidate every other sharer; acks return to home.
		acks := t
		dropped := false
		e.Sharers.ForEach(func(s int) {
			if s == p {
				return
			}
			if b.p.FaultInjection == "drop-inval" && !dropped {
				// Seeded defect: the invalidation to one sharer is lost, so a
				// stale read-only copy survives the ownership transfer.
				dropped = true
				return
			}
			at := b.ctrl(home, s, t)
			b.caches[s].Invalidate(line)
			b.ctr.Invalidations++
			if ack := b.ctrl(s, home, at); ack > acks {
				acks = ack
			}
		})
		_, hadCopy := b.caches[p].Lookup(line)
		if hadCopy {
			t = b.ctrl(home, p, acks)
		} else {
			t = b.data(home, p, acks+b.p.MemLatency)
		}
	}
	e.State = directory.Dirty
	e.Owner = p
	e.Sharers.Clear()
	e.Sharers.Add(p)
	e.Version++ // new contents become globally visible with this ownership
	b.markSeen(p, line)
	b.fill(p, line, cache.Modified, t)
	return t
}
