package proto

import (
	"fmt"
	"sort"

	"zsim/internal/cache"
	"zsim/internal/directory"
	"zsim/internal/memsys"
)

// AuditConformance sweeps the directory and every private cache and returns a
// description of each violated coherence invariant (empty when the machine
// state is consistent). It implements the check.Auditable contract for the
// CC-NUMA base-hardware systems (the inv and upd families); the z-machine and
// PRAM have no caches to audit.
//
// Invariants checked, per allocated directory entry:
//
//   - at most one Modified copy exists, and only when the entry is Dirty with
//     a matching owner;
//   - every cached copy's holder appears in the sharer set, and (conversely)
//     every presence bit corresponds to a resident copy;
//   - Uncached entries have no copies;
//   - every valid copy carries the entry's current version — a trailing
//     version is a stale copy (a lost invalidation or update).
func (b *base) AuditConformance() []string {
	var out []string
	fail := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}

	copies := map[memsys.Addr][]copyInfo{}
	for n, c := range b.caches {
		c.ForEach(func(line memsys.Addr, l *cache.Line) {
			copies[line] = append(copies[line], copyInfo{node: n, state: l.State, ver: l.Version})
		})
	}

	b.dir.ForEach(func(line memsys.Addr, e *directory.Entry) {
		held := copies[line]
		modified := 0
		for _, ci := range held {
			if ci.state == cache.Modified {
				modified++
				if e.State != directory.Dirty || e.Owner != ci.node {
					fail("line %#x: node %d holds a Modified copy but directory is %v", line, ci.node, e)
				}
			}
			if !e.Sharers.Has(ci.node) {
				fail("line %#x: node %d holds a copy without a presence bit (directory %v)", line, ci.node, e)
			}
			if ci.ver != e.Version {
				fail("line %#x: node %d holds a stale copy (copy v%d, directory v%d)", line, ci.node, ci.ver, e.Version)
			}
		}
		if modified > 1 {
			fail("line %#x: %d Modified copies (single-writer violated)", line, modified)
		}
		switch e.State {
		case directory.Dirty:
			if len(held) != 1 || held[0].node != e.Owner || held[0].state != cache.Modified {
				fail("line %#x: Dirty entry %v but copies %v", line, e, describeCopies(held))
			}
		case directory.SharedClean, directory.Special:
			if modified != 0 {
				fail("line %#x: %v entry with a Modified copy", line, e.State)
			}
			e.Sharers.ForEach(func(s int) {
				if !hasCopy(held, s) {
					fail("line %#x: presence bit for node %d without a resident copy (%v)", line, s, e)
				}
			})
		case directory.Uncached:
			if len(held) != 0 {
				fail("line %#x: Uncached entry but copies %v", line, describeCopies(held))
			}
		}
		delete(copies, line)
	})

	// Copies of lines the directory has never allocated an entry for cannot
	// exist: every fill goes through the directory. Report them in address
	// order so the audit transcript is deterministic.
	orphans := make([]memsys.Addr, 0, len(copies))
	for line := range copies {
		orphans = append(orphans, line)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, line := range orphans {
		fail("line %#x: copies %v with no directory entry", line, describeCopies(copies[line]))
	}
	return out
}

// copyInfo is one resident cached copy observed during an audit sweep.
type copyInfo struct {
	node  int
	state cache.State
	ver   uint64
}

func hasCopy(held []copyInfo, n int) bool {
	for _, ci := range held {
		if ci.node == n {
			return true
		}
	}
	return false
}

func describeCopies(held []copyInfo) string {
	s := "["
	for i, ci := range held {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("n%d:%v/v%d", ci.node, ci.state, ci.ver)
	}
	return s + "]"
}

// CopyVersion returns the version held by node's cached copy of the line
// containing addr alongside the directory's current version, with
// cached=false when the node holds no copy. The conformance checker calls it
// after every shared read to detect a read satisfied from a stale copy.
func (b *base) CopyVersion(node int, addr memsys.Addr) (copy, current uint64, cached bool) {
	line := b.line(addr)
	l, ok := b.caches[node].Lookup(line)
	if !ok {
		return 0, 0, false
	}
	e, ok := b.dir.Lookup(addr)
	if !ok {
		return l.Version, l.Version, true
	}
	return l.Version, e.Version, true
}
