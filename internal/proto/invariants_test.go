package proto

// White-box coherence invariant checking: after an arbitrary (data-race-
// free at the protocol level — the simulator serializes operations) access
// sequence, the directory state and the cache states must agree. These are
// the safety properties the overhead numbers stand on: a protocol that
// miscounts sharers produces garbage stall decompositions without failing
// any application test, so they get their own property tests.

import (
	"math/rand"
	"strings"
	"testing"

	"zsim/internal/memsys"
	"zsim/internal/mesh"
)

// checkCoherence validates directory/cache agreement for one base-hardware
// system via the audit the conformance checker uses at runtime.
func checkCoherence(t *testing.T, b *base, kind memsys.Kind) {
	t.Helper()
	if vs := b.AuditConformance(); len(vs) > 0 {
		t.Fatalf("%s: %d coherence invariant violations, first: %s", kind, len(vs), vs[0])
	}
}

// baseOf extracts the base hardware from a system built in this package.
func baseOf(s memsys.MemSystem) *base {
	switch v := s.(type) {
	case *inv:
		return &v.base
	case *upd:
		return &v.base
	}
	return nil
}

func TestCoherenceInvariantsUnderRandomTraffic(t *testing.T) {
	kinds := []memsys.Kind{memsys.KindRCInv, memsys.KindSCInv, memsys.KindRCUpd, memsys.KindRCComp, memsys.KindRCAdapt}
	for _, kind := range kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := memsys.Default(16)
			s := MustNew(kind, p, mesh.New(p))
			b := baseOf(s)
			if b == nil {
				t.Fatal("system does not expose base hardware")
			}
			rng := rand.New(rand.NewSource(42))
			now := Time(0)
			for i := 0; i < 5000; i++ {
				proc := rng.Intn(16)
				addr := memsys.Addr(rng.Intn(64)) * 8 // 16 lines, heavy sharing
				switch rng.Intn(4) {
				case 0, 1:
					now += s.Read(proc, addr, 8, now) + 1
				case 2:
					now += s.Write(proc, addr, 8, now) + 1
				case 3:
					now += s.Release(proc, now) + 1
				}
				if i%500 == 0 {
					checkCoherence(t, b, kind)
				}
			}
			// Drain all buffers, then do a final full check.
			for proc := 0; proc < 16; proc++ {
				now += s.Release(proc, now)
			}
			checkCoherence(t, b, kind)
		})
	}
}

// The same invariants must hold with finite caches (evictions update the
// directory) and with hardware multithreading (streams share node caches).
func TestCoherenceInvariantsFiniteAndMT(t *testing.T) {
	configs := []struct {
		name string
		p    memsys.Params
	}{
		{"finite", func() memsys.Params {
			p := memsys.Default(16)
			p.FiniteCache = true
			p.CacheLines = 8
			p.CacheAssoc = 2
			return p
		}()},
		{"mt", memsys.DefaultMT(16, 4)},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, kind := range []memsys.Kind{memsys.KindRCInv, memsys.KindRCUpd} {
				s := MustNew(kind, cfg.p, mesh.New(cfg.p))
				b := baseOf(s)
				rng := rand.New(rand.NewSource(7))
				now := Time(0)
				for i := 0; i < 3000; i++ {
					proc := rng.Intn(16)
					addr := memsys.Addr(rng.Intn(128)) * 8
					switch rng.Intn(4) {
					case 0, 1:
						now += s.Read(proc, addr, 8, now) + 1
					case 2:
						now += s.Write(proc, addr, 8, now) + 1
					case 3:
						now += s.Release(proc, now) + 1
					}
				}
				for proc := 0; proc < 16; proc++ {
					now += s.Release(proc, now)
				}
				checkCoherence(t, b, kind)
			}
		})
	}
}

// The audit must flag the deliberately seeded protocol defects: a lost update
// leaves a stale copy behind; a lost invalidation leaves an unaccounted copy.
func TestAuditDetectsInjectedFaults(t *testing.T) {
	cases := []struct {
		kind  memsys.Kind
		fault string
		want  string
	}{
		{memsys.KindRCUpd, "drop-update", "stale copy"},
		{memsys.KindRCInv, "drop-inval", "line"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.kind)+"/"+tc.fault, func(t *testing.T) {
			p := memsys.Default(8)
			p.FaultInjection = tc.fault
			s := MustNew(tc.kind, p, mesh.New(p))
			b := baseOf(s)
			rng := rand.New(rand.NewSource(3))
			now := Time(0)
			caught := false
			for i := 0; i < 2000 && !caught; i++ {
				proc := rng.Intn(8)
				addr := memsys.Addr(rng.Intn(32)) * 8
				switch rng.Intn(4) {
				case 0, 1:
					now += s.Read(proc, addr, 8, now) + 1
				case 2:
					now += s.Write(proc, addr, 8, now) + 1
				case 3:
					now += s.Release(proc, now) + 1
				}
				for _, v := range b.AuditConformance() {
					if strings.Contains(v, tc.want) {
						caught = true
					}
				}
			}
			if !caught {
				t.Fatalf("%s with %s: audit never reported a violation containing %q", tc.kind, tc.fault, tc.want)
			}
		})
	}
}
