package proto

import (
	"zsim/internal/cache"
	"zsim/internal/memsys"
	"zsim/internal/mesh"
	"zsim/internal/metrics"
	"zsim/internal/wbuffer"
)

// inv is the write-invalidate family: RCinv (paper §4: release consistency
// with a Berkeley-style write-invalidate protocol and a store buffer) and
// SCinv (sequential consistency: every write stalls to global completion —
// the reference machine "most memory system studies" use).
//
// The optional sequential prefetcher (Params.PrefetchDegree) implements the
// §6 architectural implication that cold-miss-dominated applications like
// Cholesky want prefetching: a read miss also fetches the next N lines,
// whose fills complete in the background.
type inv struct {
	base
	//zlint:confine shard sb[node] is drained and refilled only by the issuing stream's own node
	sb   []*wbuffer.StoreBuffer
	sc   bool // sequentially consistent variant
	lazy bool // rcsync: releases never drain; consumers wait on the watermark
}

func newInv(p memsys.Params, net *mesh.Net, sc, lazy bool) *inv {
	v := &inv{base: newBase(p, net), sc: sc, lazy: lazy}
	for i := 0; i < p.Nodes(); i++ {
		v.sb = append(v.sb, wbuffer.NewStore(p.StoreBufEntries))
	}
	return v
}

// InstrumentMetrics wires the store buffers' per-event metric handles
// (implements metrics.Instrumentable).
func (v *inv) InstrumentMetrics(r *metrics.Registry) {
	v.instrumentStoreBuffers(r, v.sb)
}

func (v *inv) Name() memsys.Kind {
	switch {
	case v.sc:
		return memsys.KindSCInv
	case v.lazy:
		return memsys.KindRCSync
	}
	return memsys.KindRCInv
}

func (v *inv) Read(p int, addr memsys.Addr, size int, now Time) Time {
	v.ctr.CountRead(p)
	n := v.node(p)
	line := v.line(addr)
	if l, ok := v.caches[n].Lookup(line); ok {
		v.caches[n].Touch(line)
		// A prefetched line may still be in flight; waiting for the rest of
		// its fill is (reduced) read stall. A Modified line is the
		// processor's own pending write: store-buffer forwarding, no stall.
		if l.State == cache.Shared && l.ReadyAt > now {
			return l.ReadyAt - now
		}
		return 0
	}
	v.ctr.ReadMisses++
	if v.markSeen(n, line) {
		v.ctr.ColdMisses++
	}
	t := v.readFill(n, line, now)
	v.fill(n, line, cache.Shared, t)
	v.prefetch(n, line, now)
	return t - now
}

// prefetch issues background fills for the lines following a demand miss.
// n is the requesting node.
func (v *inv) prefetch(n int, line memsys.Addr, now Time) {
	for i := 1; i <= v.p.PrefetchDegree; i++ {
		nl := line + memsys.Addr(i)
		if _, ok := v.caches[n].Lookup(nl); ok {
			continue
		}
		v.ctr.Prefetches++
		v.markSeen(n, nl)
		t := v.readFill(n, nl, now)
		v.fill(n, nl, cache.Shared, t)
	}
}

func (v *inv) Write(p int, addr memsys.Addr, size int, now Time) Time {
	v.ctr.CountWrite(p)
	n := v.node(p)
	line := v.line(addr)
	if l, ok := v.caches[n].Lookup(line); ok && l.State == cache.Modified {
		v.caches[n].Touch(line)
		return 0 // already owned (possibly by a pending store-buffer entry)
	}
	v.ctr.WriteMisses++
	if v.sc {
		// Sequential consistency: the processor stalls until the write is
		// globally performed.
		return v.ownership(n, line, now) - now
	}
	// Release consistency: record the miss in the store buffer and continue;
	// stall only if the buffer is full.
	stall := v.sb[n].Reserve(now)
	completion := v.ownership(n, line, now+stall)
	v.sb[n].Add(completion)
	return stall
}

func (v *inv) Release(p int, now Time) Time {
	if v.sc {
		return 0 // writes already performed in order
	}
	if v.lazy {
		// §6 decoupling: the producer never stalls; the data-flow
		// guarantee moves to the consumer via ReleaseWatermark.
		return 0
	}
	return v.sb[v.node(p)].DrainStall(now)
}

// ReleaseWatermark implements memsys.TokenSystem. Only the rcsync variant
// decouples data flow from synchronization; for the eager variants the
// watermark is the current time (their releases have already drained, and
// synchronization must not double-charge them).
func (v *inv) ReleaseWatermark(p int, now Time) Time {
	if !v.lazy {
		return now
	}
	return v.sb[v.node(p)].Watermark(now)
}

func (v *inv) Acquire(int, Time) Time { return 0 }

// ScopeOf implements memsys.ScopedSystem (DESIGN §15). An access is
// node-private exactly when it would take the cache-hit fast path of
// Read/Write above: everything that path touches — the node's cache
// recency, a pending fill's ReadyAt wait, the per-processor access cell —
// is owned by the issuing node, with no directory transition and no
// traffic. A store (or the write half of a swap) additionally requires the
// line already held Modified: exclusive ownership guarantees no other node
// has a copy, so no concurrently running shard can load the word the
// machine layer is about to overwrite. Applies unchanged to all three
// variants (RCinv, SCinv, RCsync): they differ only on miss and release
// paths, which stay global.
func (v *inv) ScopeOf(p int, addr memsys.Addr, size int, now Time, class memsys.AccessClass) bool {
	l, ok := v.caches[v.node(p)].Lookup(v.line(addr))
	if !ok {
		return false
	}
	if class == memsys.AccessLoad {
		return true
	}
	return l.State == cache.Modified
}
