package proto

import (
	"zsim/internal/cache"
	"zsim/internal/directory"
	"zsim/internal/memsys"
	"zsim/internal/mesh"
	"zsim/internal/metrics"
	"zsim/internal/wbuffer"
)

// updMode selects among the three update-based systems of paper §4.
type updMode int

const (
	// updPlain is RCupd: a simple Firefly-style write-update protocol with
	// a merge buffer combining writes to the same cache line.
	updPlain updMode = iota
	// updCompetitive is RCcomp: a sharer self-invalidates a line updated
	// CompThreshold times without an intervening local read.
	updCompetitive
	// updAdaptive is RCadapt: every write is a selective-write; the
	// directory keeps the active sharer set and a read by a non-sharer to a
	// block in the Special state signals a phase change, re-initializing
	// (invalidating) the sharer set.
	updAdaptive
)

type upd struct {
	base
	//zlint:confine shard sb[node] is drained and refilled only by the issuing stream's own node
	sb []*wbuffer.StoreBuffer
	//zlint:confine shard mb[node] merges and flushes only the issuing stream's own stores
	mb   []*wbuffer.MergeBuffer
	mode updMode
}

func newUpd(p memsys.Params, net *mesh.Net, mode updMode) *upd {
	u := &upd{base: newBase(p, net), mode: mode}
	for i := 0; i < p.Nodes(); i++ {
		u.sb = append(u.sb, wbuffer.NewStore(p.StoreBufEntries))
		u.mb = append(u.mb, wbuffer.NewMerge(p.MergeBufLines))
	}
	return u
}

// InstrumentMetrics wires the store and merge buffers' per-event metric
// handles (implements metrics.Instrumentable).
func (u *upd) InstrumentMetrics(r *metrics.Registry) {
	u.instrumentStoreBuffers(r, u.sb)
	merges := r.Counter("wbuffer.merges")
	evictions := r.Counter("wbuffer.merge_evictions")
	for _, mb := range u.mb {
		mb.Instrument(merges, evictions)
	}
}

func (u *upd) Name() memsys.Kind {
	switch u.mode {
	case updCompetitive:
		return memsys.KindRCComp
	case updAdaptive:
		return memsys.KindRCAdapt
	}
	return memsys.KindRCUpd
}

func (u *upd) Read(p int, addr memsys.Addr, size int, now Time) Time {
	u.ctr.CountRead(p)
	n := u.node(p)
	line := u.line(addr)
	if l, ok := u.caches[n].Lookup(line); ok {
		u.caches[n].Touch(line)
		l.Updates = 0 // a local read consumes pending updates
		if l.State == cache.Shared && l.ReadyAt > now {
			return l.ReadyAt - now
		}
		return 0
	}
	u.ctr.ReadMisses++
	if u.markSeen(n, line) {
		u.ctr.ColdMisses++
	}
	e := u.dir.Entry(line * memsys.Addr(u.p.LineSize))
	if u.mode == updAdaptive && e.State == directory.Special && !e.Sharers.Has(n) {
		// Phase change: re-initialize the sharing pattern (paper §4).
		t := u.reinit(n, line, e, now)
		return t - now
	}
	t := u.readFill(n, line, now)
	u.fill(n, line, cache.Shared, t)
	return t - now
}

// reinit invalidates the current active set and restarts it with the new
// reader, returning the reader's fill completion.
func (u *upd) reinit(p int, line memsys.Addr, e *directory.Entry, now Time) Time {
	home := u.home(line)
	t := u.ctrl(p, home, now) + u.p.DirLatency
	acks := t
	e.Sharers.ForEach(func(s int) {
		if s == p {
			return
		}
		at := u.ctrl(home, s, t)
		u.caches[s].Invalidate(line)
		u.ctr.Invalidations++
		u.ctr.SelfInvalidations++
		if ack := u.ctrl(s, home, at); ack > acks {
			acks = ack
		}
	})
	e.Sharers.Clear()
	e.Sharers.Add(p)
	e.State = directory.SharedClean // leaves Special until the next write
	t = u.data(home, p, acks+u.p.MemLatency)
	u.fill(p, line, cache.Shared, t)
	return t
}

func (u *upd) Write(p int, addr memsys.Addr, size int, now Time) Time {
	u.ctr.CountWrite(p)
	n := u.node(p)
	line := u.line(addr)
	// Put combines a write to an already-merging line for free and
	// otherwise buffers it; only a displaced victim costs anything.
	victim, evicted := u.mb[n].Put(line)
	if !evicted {
		return 0
	}
	// The displaced line's update transaction needs a store-buffer slot.
	u.ctr.WriteMisses++
	stall := u.sb[n].Reserve(now)
	completion := u.updateTxn(n, victim, now+stall)
	u.sb[n].Add(completion)
	return stall
}

// updateTxn sends the merged line to its home, which fans updates out to the
// sharers and collects acks; the returned time is when the writer's final
// ack arrives (the write is globally performed).
func (u *upd) updateTxn(p int, line memsys.Addr, t0 Time) Time {
	e := u.dir.Entry(line * memsys.Addr(u.p.LineSize))
	home := u.home(line)
	t := u.data(p, home, t0) + u.p.DirLatency
	e.Version++ // the fan-out makes new contents globally visible
	acks := t
	dropped := false
	e.Sharers.ForEach(func(s int) {
		if s == p {
			return
		}
		sl, ok := u.caches[s].Lookup(line)
		if !ok {
			// Stale presence bit (finite-cache eviction); drop it.
			e.Sharers.Remove(s)
			return
		}
		if u.p.FaultInjection == "drop-update" && !dropped {
			// Seeded defect: the update to one sharer is lost, leaving its
			// cached copy holding the previous version of the line.
			dropped = true
			return
		}
		ut := u.data(home, s, t)
		u.ctr.Updates++
		if sl.Updates > 0 {
			u.ctr.UselessUpdates++
		}
		sl.Updates++
		sl.Version = e.Version
		if u.mode == updCompetitive && sl.Updates >= u.p.CompThreshold {
			// Competitive self-invalidation: stop receiving updates.
			u.caches[s].Invalidate(line)
			e.Sharers.Remove(s)
			u.ctr.SelfInvalidations++
		}
		if ack := u.ctrl(s, home, ut); ack > acks {
			acks = ack
		}
	})
	e.Sharers.Add(p)
	u.enforcePointers(e, line, p, acks)
	if u.mode == updAdaptive {
		e.State = directory.Special
	} else if e.State == directory.Uncached {
		e.State = directory.SharedClean
	}
	u.markSeen(p, line)
	u.fill(p, line, cache.Shared, acks)
	return u.ctrl(home, p, acks)
}

func (u *upd) Release(p int, now Time) Time {
	// Flushing the merge buffer at synchronization points guarantees the
	// protocol's correctness (paper §4) and is the update systems' main
	// buffer-flush cost, on top of draining the store buffer.
	n := u.node(p)
	t := now
	for _, line := range u.mb[n].Flush() {
		u.ctr.WriteMisses++
		t += u.sb[n].Reserve(t)
		completion := u.updateTxn(n, line, t)
		u.sb[n].Add(completion)
	}
	t += u.sb[n].DrainStall(t)
	return t - now
}

// ReleaseWatermark implements memsys.TokenSystem. The update systems drain
// eagerly at releases, so after a Release the watermark equals the current
// time; between releases it reflects the store buffer's pending completions.
func (u *upd) ReleaseWatermark(p int, now Time) Time {
	return u.sb[u.node(p)].Watermark(now)
}

func (u *upd) Acquire(int, Time) Time { return 0 }

// ScopeOf implements memsys.ScopedSystem (DESIGN §15). A load is
// node-private iff it hits the node's cache: that path touches only the
// node's cache (recency, the line's pending-update count) and the
// per-processor read cell. A store is node-private iff the merge buffer
// would absorb it without displacing a victim (Put's no-evict path touches
// only the node's merge buffer) AND no other node holds a copy of the
// line: the machine layer writes the word's value at the store, so a
// sharer in another shard concurrently hitting its cached copy would
// observe the value before the update transaction — sole-sharership makes
// that impossible. A swap needs both halves. Applies to all three update
// modes: competitive/adaptive behavior diverges only in updateTxn and on
// the miss path, which stay global.
func (u *upd) ScopeOf(p int, addr memsys.Addr, size int, now Time, class memsys.AccessClass) bool {
	n := u.node(p)
	line := u.line(addr)
	_, hit := u.caches[n].Lookup(line)
	if class == memsys.AccessLoad {
		return hit
	}
	if class == memsys.AccessSwap && !hit {
		return false
	}
	if !u.mb[n].Contains(line) && u.mb[n].Len() >= u.mb[n].Cap() {
		return false // Put would displace a victim: an update transaction
	}
	if e, ok := u.dir.Lookup(line * memsys.Addr(u.p.LineSize)); ok {
		if cnt := e.Sharers.Count(); cnt > 1 || (cnt == 1 && !e.Sharers.Has(n)) {
			return false
		}
	}
	return true
}
