package proto

import (
	"testing"
	"testing/quick"

	"zsim/internal/directory"
	"zsim/internal/memsys"
	"zsim/internal/mesh"
)

// newSys builds a fresh system of the given kind on a private mesh.
func newSys(t testing.TB, kind memsys.Kind) memsys.MemSystem {
	t.Helper()
	p := memsys.Default(16)
	return MustNew(kind, p, mesh.New(p))
}

func newSysParams(t testing.TB, kind memsys.Kind, p memsys.Params) memsys.MemSystem {
	t.Helper()
	return MustNew(kind, p, mesh.New(p))
}

func TestFactoryAllKinds(t *testing.T) {
	for _, k := range memsys.Kinds() {
		s := newSys(t, k)
		if s.Name() != k {
			t.Errorf("New(%s).Name() = %s", k, s.Name())
		}
	}
}

func TestFactoryUnknownKind(t *testing.T) {
	p := memsys.Default(16)
	if _, err := New("bogus", p, mesh.New(p)); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestFactoryRejectsBadParams(t *testing.T) {
	p := memsys.Default(16)
	p.LineSize = 24
	net := mesh.New(memsys.Default(16))
	if _, err := New(memsys.KindRCInv, p, net); err == nil {
		t.Fatal("expected validation error")
	}
}

// --- PRAM ---

func TestPRAMAllFree(t *testing.T) {
	s := newSys(t, memsys.KindPRAM)
	if s.Read(0, 64, 8, 10) != 0 || s.Write(1, 64, 8, 20) != 0 ||
		s.Release(0, 30) != 0 || s.Acquire(0, 30) != 0 {
		t.Fatal("PRAM must cost nothing")
	}
	c := s.Counters()
	if c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("counters: %s", c)
	}
}

// --- z-machine ---

func TestZMachineInherentCost(t *testing.T) {
	p := memsys.Default(16)
	net := mesh.New(p)
	s := MustNew(memsys.KindZMachine, p, net)
	L := net.MaxUncontendedLatency(0, p.ZLineSize)

	if st := s.Write(0, 100, 4, 1000); st != 0 {
		t.Fatalf("z-machine write stall = %d, want 0", st)
	}
	// Immediate consumer read: stalls for the remaining propagation.
	if st := s.Read(1, 100, 4, 1000); st != L {
		t.Fatalf("read stall = %d, want L = %d", st, L)
	}
	// Read after L has elapsed: fully overlapped, no cost.
	if st := s.Read(2, 100, 4, 1000+L); st != 0 {
		t.Fatalf("late read stall = %d, want 0", st)
	}
	// Partial overlap.
	if st := s.Read(3, 100, 4, 1000+L/2); st != L-L/2 {
		t.Fatalf("partial read stall = %d, want %d", st, L-L/2)
	}
}

func TestZMachineProducerReadsOwnWrite(t *testing.T) {
	s := newSys(t, memsys.KindZMachine)
	s.Write(5, 200, 4, 10)
	if st := s.Read(5, 200, 4, 11); st != 0 {
		t.Fatalf("producer stalled %d cycles on its own datum", st)
	}
}

func TestZMachineNoWriteStallNoFlush(t *testing.T) {
	s := newSys(t, memsys.KindZMachine)
	for i := 0; i < 100; i++ {
		if st := s.Write(0, memsys.Addr(i*4), 4, Time(i)); st != 0 {
			t.Fatalf("write %d stalled %d", i, st)
		}
	}
	if s.Release(0, 100) != 0 || s.Acquire(0, 100) != 0 {
		t.Fatal("z-machine release/acquire must be free")
	}
}

func TestZMachineUnwrittenReadFree(t *testing.T) {
	s := newSys(t, memsys.KindZMachine)
	if st := s.Read(0, 4096, 8, 0); st != 0 {
		t.Fatalf("read of never-written data stalled %d", st)
	}
}

func TestZMachineMultiWordWrite(t *testing.T) {
	p := memsys.Default(16)
	net := mesh.New(p)
	s := MustNew(memsys.KindZMachine, p, net)
	s.Write(0, 0, 8, 0) // covers z-lines 0 and 1
	L := net.MaxUncontendedLatency(0, p.ZLineSize)
	if st := s.Read(1, 4, 4, 0); st != L {
		t.Fatalf("second word not propagated: stall = %d, want %d", st, L)
	}
}

// Property: z-machine read stall never exceeds the worst-case propagation
// latency.
func TestZMachineStallBoundProperty(t *testing.T) {
	p := memsys.Default(16)
	net := mesh.New(p)
	s := MustNew(memsys.KindZMachine, p, net)
	var maxL Time
	for src := 0; src < 16; src++ {
		if l := net.MaxUncontendedLatency(src, p.ZLineSize); l > maxL {
			maxL = l
		}
	}
	f := func(w, r uint8, addr uint16, gap uint8) bool {
		now := Time(1000)
		s.Write(int(w)%16, memsys.Addr(addr)*4, 4, now)
		st := s.Read(int(r)%16, memsys.Addr(addr)*4, 4, now+Time(gap))
		return st <= maxL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- RCinv ---

func TestRCInvColdMissThenHit(t *testing.T) {
	s := newSys(t, memsys.KindRCInv)
	st1 := s.Read(0, 64, 8, 0)
	if st1 == 0 {
		t.Fatal("cold read should miss")
	}
	if st2 := s.Read(0, 64, 8, st1); st2 != 0 {
		t.Fatalf("second read stalled %d, want hit", st2)
	}
	c := s.Counters()
	if c.ReadMisses != 1 || c.ColdMisses != 1 {
		t.Fatalf("miss counters: %s", c)
	}
}

func TestRCInvWriteBuffered(t *testing.T) {
	s := newSys(t, memsys.KindRCInv)
	// First write misses but is absorbed by the store buffer: no stall.
	if st := s.Write(0, 64, 8, 0); st != 0 {
		t.Fatalf("buffered write stalled %d", st)
	}
	// Same line again: owned (pending), free.
	if st := s.Write(0, 68, 8, 1); st != 0 {
		t.Fatalf("write to owned line stalled %d", st)
	}
	if c := s.Counters(); c.WriteMisses != 1 {
		t.Fatalf("write misses = %d, want 1", c.WriteMisses)
	}
}

func TestRCInvStoreBufferFullStalls(t *testing.T) {
	s := newSys(t, memsys.KindRCInv)
	// 5 writes to distinct lines at the same instant: 4 absorb, the 5th
	// must wait for a retirement.
	var stalled bool
	for i := 0; i < 5; i++ {
		if st := s.Write(0, memsys.Addr(i*32), 8, 0); st > 0 {
			stalled = true
		}
	}
	if !stalled {
		t.Fatal("expected a write stall with a full 4-entry store buffer")
	}
}

func TestRCInvReleaseFlushes(t *testing.T) {
	s := newSys(t, memsys.KindRCInv)
	s.Write(0, 64, 8, 0)
	if fl := s.Release(0, 1); fl == 0 {
		t.Fatal("release with a pending write should flush")
	}
	// Drained: a second release is free.
	if fl := s.Release(0, 1); fl != 0 {
		t.Fatalf("second release stalled %d", fl)
	}
}

func TestRCInvInvalidationCausesConsumerMiss(t *testing.T) {
	s := newSys(t, memsys.KindRCInv)
	now := Time(0)
	now += s.Read(1, 64, 8, now) // P1 caches the line
	if st := s.Read(1, 64, 8, now); st != 0 {
		t.Fatal("P1 should hit before the write")
	}
	s.Write(0, 64, 8, now) // P0 invalidates P1
	now += 10000           // let the ownership complete
	st := s.Read(1, 64, 8, now)
	if st == 0 {
		t.Fatal("P1 must re-miss after invalidation (coherence miss)")
	}
	c := s.Counters()
	if c.Invalidations == 0 {
		t.Fatal("no invalidations counted")
	}
	if c.ColdMisses >= c.ReadMisses {
		t.Fatal("the coherence miss must not count as cold")
	}
}

func TestRCInvDirtyRemoteRead(t *testing.T) {
	s := newSys(t, memsys.KindRCInv)
	s.Write(0, 64, 8, 0)
	// P1 reads while P0 owns the line dirty: forwarded from owner.
	st := s.Read(1, 64, 8, 5000)
	if st == 0 {
		t.Fatal("dirty remote read should stall")
	}
	// Both P0 and P1 now hit.
	if s.Read(0, 64, 8, 20000) != 0 || s.Read(1, 64, 8, 20000) != 0 {
		t.Fatal("owner/reader should hit after downgrade")
	}
}

// --- SCinv ---

func TestSCInvWriteStallsToCompletion(t *testing.T) {
	s := newSys(t, memsys.KindSCInv)
	st := s.Write(0, 64, 8, 0)
	if st == 0 {
		t.Fatal("SC write must stall to global completion")
	}
	if s.Release(0, Time(st)) != 0 {
		t.Fatal("SC release must be free (writes already performed)")
	}
}

func TestSCWriteStallExceedsRC(t *testing.T) {
	sc := newSys(t, memsys.KindSCInv)
	rc := newSys(t, memsys.KindRCInv)
	var scStall, rcStall Time
	for i := 0; i < 3; i++ {
		scStall += sc.Write(0, memsys.Addr(i*32), 8, Time(i*100000))
		rcStall += rc.Write(0, memsys.Addr(i*32), 8, Time(i*100000))
	}
	if scStall <= rcStall {
		t.Fatalf("SC write stall (%d) should exceed RC's (%d)", scStall, rcStall)
	}
}

// --- RCupd ---

func TestRCUpdMergeCombines(t *testing.T) {
	s := newSys(t, memsys.KindRCUpd)
	if st := s.Write(0, 64, 8, 0); st != 0 {
		t.Fatal("first write should buffer in the merge buffer")
	}
	if st := s.Write(0, 72, 8, 1); st != 0 {
		t.Fatal("same-line write should combine")
	}
	if c := s.Counters(); c.WriteMisses != 0 {
		t.Fatalf("no update transaction should have been sent yet, got %d", c.WriteMisses)
	}
	// A write to a different line displaces the merging line.
	s.Write(0, 128, 8, 2)
	if c := s.Counters(); c.WriteMisses != 1 {
		t.Fatalf("displacement should send one update txn, got %d", c.WriteMisses)
	}
}

func TestRCUpdConsumerHitsAfterUpdate(t *testing.T) {
	s := newSys(t, memsys.KindRCUpd)
	now := Time(0)
	now += s.Read(1, 64, 8, now) // P1 becomes a sharer (cold miss)
	s.Write(0, 64, 8, now)       // P0 writes (buffered)
	now += s.Release(0, now)     // flush pushes the update out
	// P1 still hits: the update refreshed its copy instead of invalidating.
	if st := s.Read(1, 64, 8, now+1); st != 0 {
		t.Fatalf("consumer stalled %d after update; update protocols avoid coherence misses", st)
	}
	if c := s.Counters(); c.Updates == 0 {
		t.Fatal("no updates counted")
	}
}

func TestRCUpdReleaseFlushCost(t *testing.T) {
	s := newSys(t, memsys.KindRCUpd)
	s.Write(0, 64, 8, 0)
	if fl := s.Release(0, 1); fl == 0 {
		t.Fatal("merge-buffer flush at release must cost time")
	}
}

func TestRCUpdUselessUpdates(t *testing.T) {
	s := newSys(t, memsys.KindRCUpd)
	now := Time(0)
	now += s.Read(1, 64, 8, now) // P1 shares the line and never reads again
	for i := 0; i < 3; i++ {
		s.Write(0, 64, 8, now)
		now += s.Release(0, now)
		now += 1000
	}
	if c := s.Counters(); c.UselessUpdates == 0 {
		t.Fatal("repeated unread updates must count as useless")
	}
}

// --- RCcomp ---

func TestRCCompSelfInvalidation(t *testing.T) {
	p := memsys.Default(16)
	p.CompThreshold = 2
	s := newSysParams(t, memsys.KindRCComp, p)
	now := Time(0)
	now += s.Read(1, 64, 8, now) // P1 shares
	// Two updates without an intervening P1 read: P1 self-invalidates.
	for i := 0; i < 2; i++ {
		s.Write(0, 64, 8, now)
		now += s.Release(0, now)
		now += 1000
	}
	c := s.Counters()
	if c.SelfInvalidations == 0 {
		t.Fatal("expected competitive self-invalidation")
	}
	if st := s.Read(1, 64, 8, now); st == 0 {
		t.Fatal("P1 must re-miss after self-invalidating")
	}
}

func TestRCCompReadResetsCounter(t *testing.T) {
	p := memsys.Default(16)
	p.CompThreshold = 2
	s := newSysParams(t, memsys.KindRCComp, p)
	now := Time(0)
	now += s.Read(1, 64, 8, now)
	// Alternate write/read: the counter never reaches the threshold.
	for i := 0; i < 5; i++ {
		s.Write(0, 64, 8, now)
		now += s.Release(0, now)
		now += 1000
		if st := s.Read(1, 64, 8, now); st != 0 {
			t.Fatalf("iteration %d: reader with intervening reads must keep hitting (stall %d)", i, st)
		}
	}
	if c := s.Counters(); c.SelfInvalidations != 0 {
		t.Fatal("no self-invalidation expected with intervening reads")
	}
}

// --- RCadapt ---

func TestRCAdaptStablePatternBehavesLikeUpdate(t *testing.T) {
	s := newSys(t, memsys.KindRCAdapt)
	now := Time(0)
	now += s.Read(1, 64, 8, now)
	now += s.Read(2, 64, 8, now)
	for i := 0; i < 4; i++ {
		s.Write(0, 64, 8, now)
		now += s.Release(0, now)
		now += 1000
		if st := s.Read(1, 64, 8, now); st != 0 {
			t.Fatalf("stable sharer stalled %d on iteration %d", st, i)
		}
		if st := s.Read(2, 64, 8, now); st != 0 {
			t.Fatalf("stable sharer 2 stalled %d on iteration %d", st, i)
		}
	}
}

func TestRCAdaptPhaseChangeReinitializes(t *testing.T) {
	s := newSys(t, memsys.KindRCAdapt)
	now := Time(0)
	now += s.Read(1, 64, 8, now) // phase 1 sharer
	s.Write(0, 64, 8, now)       // enters Special with active set {0,1}
	now += s.Release(0, now)
	now += 1000
	// A brand-new reader signals a phase change: the active set is
	// re-initialized (P0, P1 invalidated).
	if st := s.Read(5, 64, 8, now); st == 0 {
		t.Fatal("new reader should miss")
	}
	if c := s.Counters(); c.SelfInvalidations == 0 {
		t.Fatal("phase change must invalidate the old active set")
	}
	now += 10000
	// The old sharer re-misses and rejoins.
	if st := s.Read(1, 64, 8, now); st == 0 {
		t.Fatal("old sharer must re-miss after re-initialization")
	}
}

// --- cross-system metamorphic checks ---

// A simple producer-consumer round: P0 writes a line, releases, consumers
// read it. Update-family systems must not charge the consumers coherence
// misses; the invalidate system must.
func TestUpdateVsInvalidateReuse(t *testing.T) {
	consumerStall := func(kind memsys.Kind) Time {
		s := newSys(t, kind)
		now := Time(0)
		now += s.Read(1, 64, 8, now)
		now += 1000
		var total Time
		for i := 0; i < 5; i++ {
			s.Write(0, 64, 8, now)
			now += s.Release(0, now)
			now += 2000
			st := s.Read(1, 64, 8, now)
			total += st
			now += st + 1000
		}
		return total
	}
	inv := consumerStall(memsys.KindRCInv)
	upd := consumerStall(memsys.KindRCUpd)
	if upd != 0 {
		t.Fatalf("RCupd consumer stall = %d, want 0 (data reuse)", upd)
	}
	if inv == 0 {
		t.Fatal("RCinv consumer must pay coherence misses")
	}
}

// Property: no negative-time arithmetic anywhere — stalls are bounded by a
// sane constant for arbitrary small access sequences on every system.
func TestStallSanityProperty(t *testing.T) {
	for _, kind := range memsys.Kinds() {
		kind := kind
		f := func(ops []uint16) bool {
			s := newSys(t, kind)
			now := Time(0)
			for _, op := range ops {
				p := int(op) % 16
				addr := memsys.Addr(op%512) * 8
				var st Time
				switch (op >> 9) % 3 {
				case 0:
					st = s.Read(p, addr, 8, now)
				case 1:
					st = s.Write(p, addr, 8, now)
				case 2:
					st = s.Release(p, now)
				}
				if st > 1_000_000 {
					return false
				}
				now += st + 1
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// --- finite cache extension ---

func TestFiniteCacheCapacityMisses(t *testing.T) {
	p := memsys.Default(16)
	p.FiniteCache = true
	p.CacheLines = 4
	p.CacheAssoc = 2
	s := newSysParams(t, memsys.KindRCInv, p)
	now := Time(0)
	// Touch 64 lines, then re-touch the first: it must have been evicted.
	for i := 0; i < 64; i++ {
		now += s.Read(0, memsys.Addr(i*32), 8, now) + 1
	}
	before := s.Counters().ReadMisses
	now += s.Read(0, 0, 8, now)
	if s.Counters().ReadMisses != before+1 {
		t.Fatal("expected a capacity miss on re-touch")
	}
	// And it is not cold: the line was seen before.
	if s.Counters().ColdMisses >= s.Counters().ReadMisses {
		t.Fatal("capacity misses must not be cold")
	}
}

func TestPrefetchReducesStall(t *testing.T) {
	run := func(degree int) Time {
		p := memsys.Default(16)
		p.PrefetchDegree = degree
		s := newSysParams(t, memsys.KindRCInv, p)
		now := Time(0)
		var stall Time
		for i := 0; i < 32; i++ { // sequential cold scan
			st := s.Read(0, memsys.Addr(i*32), 8, now)
			stall += st
			now += st + 200 // compute between misses lets prefetches land
		}
		return stall
	}
	if pf, none := run(4), run(0); pf >= none {
		t.Fatalf("prefetch stall %d should beat no-prefetch %d on a sequential scan", pf, none)
	}
}

func BenchmarkRCInvAccess(b *testing.B) {
	s := newSys(b, memsys.KindRCInv)
	now := Time(0)
	for i := 0; i < b.N; i++ {
		p := i % 16
		addr := memsys.Addr(i%1024) * 8
		if i%3 == 0 {
			now += s.Write(p, addr, 8, now) + 1
		} else {
			now += s.Read(p, addr, 8, now) + 1
		}
	}
}

// --- RCsync (the paper's §6 decoupling proposal) ---

func TestRCSyncNeverFlushes(t *testing.T) {
	s := newSys(t, memsys.KindRCSync)
	for i := 0; i < 8; i++ {
		s.Write(0, memsys.Addr(i*32), 8, Time(i))
	}
	if fl := s.Release(0, 10); fl != 0 {
		t.Fatalf("rcsync release stalled %d; it must never flush", fl)
	}
}

func TestRCSyncWatermarkCoversWrites(t *testing.T) {
	p := memsys.Default(16)
	s := MustNew(memsys.KindRCSync, p, mesh.New(p))
	ts, ok := s.(memsys.TokenSystem)
	if !ok {
		t.Fatal("rcsync must implement TokenSystem")
	}
	// Before any writes the watermark is just now.
	if wm := ts.ReleaseWatermark(0, 42); wm != 42 {
		t.Fatalf("idle watermark = %d, want 42", wm)
	}
	s.Write(0, 64, 8, 100)
	wm := ts.ReleaseWatermark(0, 101)
	if wm <= 101 {
		t.Fatalf("watermark %d must extend past the pending write's issue", wm)
	}
	// After the watermark passes, a fresh release sees nothing pending.
	if wm2 := ts.ReleaseWatermark(0, wm+1); wm2 != wm+1 {
		t.Fatalf("watermark after completion = %d, want now", wm2)
	}
}

func TestRCInvNotTokenSystem(t *testing.T) {
	// Only the decoupled system advertises watermarks... rcinv does expose
	// the method through the shared struct, but must never be constructed
	// as lazy; verify the behavioural distinction instead: rcinv flushes.
	s := newSys(t, memsys.KindRCInv)
	s.Write(0, 64, 8, 0)
	if fl := s.Release(0, 1); fl == 0 {
		t.Fatal("rcinv with a pending write must flush")
	}
}

// --- Dir-i limited-pointer directories (extension E18) ---

func TestDirPointerEviction(t *testing.T) {
	p := memsys.Default(16)
	p.DirPointers = 2
	s := newSysParams(t, memsys.KindRCInv, p)
	now := Time(0)
	// Three readers of the same line: the third displaces the first.
	for proc := 1; proc <= 3; proc++ {
		now += s.Read(proc, 64, 8, now) + 1
	}
	c := s.Counters()
	if c.PointerEvictions == 0 {
		t.Fatal("expected a pointer eviction with Dir-2")
	}
	// The displaced sharer re-misses.
	before := c.ReadMisses
	now += s.Read(1, 64, 8, now)
	if s.Counters().ReadMisses != before+1 {
		t.Fatal("displaced sharer should re-miss")
	}
}

func TestFullMapNoPointerEvictions(t *testing.T) {
	s := newSys(t, memsys.KindRCInv)
	now := Time(0)
	for proc := 0; proc < 16; proc++ {
		now += s.Read(proc, 64, 8, now) + 1
	}
	if c := s.Counters(); c.PointerEvictions != 0 {
		t.Fatalf("full-map directory evicted %d pointers", c.PointerEvictions)
	}
}

func TestDirPointerLimitHolds(t *testing.T) {
	for _, kind := range []memsys.Kind{memsys.KindRCInv, memsys.KindRCUpd} {
		p := memsys.Default(16)
		p.DirPointers = 3
		s := newSysParams(t, kind, p)
		now := Time(0)
		for i := 0; i < 200; i++ {
			proc := i % 16
			addr := memsys.Addr(i%8) * 32
			if i%5 == 0 {
				now += s.Write(proc, addr, 8, now) + 1
				now += s.Release(proc, now) + 1
			} else {
				now += s.Read(proc, addr, 8, now) + 1
			}
		}
		b := baseOf(s)
		b.dir.ForEach(func(line memsys.Addr, e *directory.Entry) {
			if e.Sharers.Count() > 3 {
				t.Fatalf("%s: line %d has %d sharers, limit 3", kind, line, e.Sharers.Count())
			}
		})
	}
}

// --- z-machine oracle modes (§2.2 definition vs §3 simulation) ---

func TestPerfectOraclePerConsumerLatency(t *testing.T) {
	p := memsys.Default(16)
	p.ZOracle = "perfect"
	net := mesh.New(p)
	s := MustNew(memsys.KindZMachine, p, net)
	s.Write(0, 100, 4, 1000)
	// A neighbour (node 1, one hop) waits less than the far corner (15).
	near := s.Read(1, 100, 4, 1000)
	far := s.Read(15, 100, 4, 1000)
	if near >= far {
		t.Fatalf("near stall %d should be below far stall %d", near, far)
	}
	if near != net.UncontendedLatency(0, 1, p.ZLineSize) {
		t.Fatalf("near stall %d != per-consumer latency %d", near, net.UncontendedLatency(0, 1, p.ZLineSize))
	}
}

// The perfect oracle never charges more than the broadcast counter: it is
// the tighter of the two lower bounds.
func TestPerfectOracleTighterBound(t *testing.T) {
	mk := func(mode string) memsys.MemSystem {
		p := memsys.Default(16)
		p.ZOracle = mode
		return MustNew(memsys.KindZMachine, p, mesh.New(p))
	}
	b, pf := mk("broadcast"), mk("perfect")
	now := Time(0)
	for i := 0; i < 500; i++ {
		w := i % 16
		r := (i * 7) % 16
		addr := memsys.Addr(i%32) * 4
		b.Write(w, addr, 4, now)
		pf.Write(w, addr, 4, now)
		sb := b.Read(r, addr, 4, now+1)
		sp := pf.Read(r, addr, 4, now+1)
		if sp > sb {
			t.Fatalf("step %d: perfect stall %d exceeds broadcast %d", i, sp, sb)
		}
		now += 3
	}
}

func TestUnknownZOracleRejected(t *testing.T) {
	p := memsys.Default(16)
	p.ZOracle = "psychic"
	if err := p.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

// A finite cache can evict a line the directory still lists the node as
// sharing; the next update transaction must drop the stale presence bit
// instead of delivering an update into the void.
func TestUpdateDropsStalePresenceBits(t *testing.T) {
	p := memsys.Default(16)
	p.FiniteCache = true
	p.CacheLines = 2
	p.CacheAssoc = 1
	s := newSysParams(t, memsys.KindRCUpd, p)
	now := Time(0)
	now += s.Read(1, 64, 8, now) + 1 // P1 shares line 2 (addr 64)
	// Conflict P1's cache until line 2 is evicted (direct-mapped, 2 sets:
	// even lines collide with each other).
	for i := 2; i <= 8; i += 2 {
		now += s.Read(1, memsys.Addr(i*64), 8, now) + 1
	}
	before := s.Counters().Updates
	s.Write(0, 64, 8, now)
	now += s.Release(0, now)
	// The update txn ran; P1's stale bit must not have received an update.
	b := baseOf(s)
	e, ok := b.dir.Lookup(64)
	if !ok {
		t.Fatal("directory entry missing")
	}
	if e.Sharers.Has(1) {
		// Either P1 still genuinely caches the line, or the stale bit
		// survived; it must only be set if the cache holds the line.
		if _, cached := b.caches[1].Lookup(2); !cached {
			t.Fatal("stale presence bit for P1 survived the update txn")
		}
	}
	_ = before
}
