package zsimdtest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"zsim/internal/zsimd"
	"zsim/internal/zsimd/client"
)

// TestCacheHitByteIdentical is the serving story's determinism fence: the
// same experiment submitted twice must come back the second time as a
// cache hit whose result body is byte-identical to the freshly simulated
// first response — even when the second submission spells the same
// machine differently (field order, whitespace, defaulted fields).
func TestCacheHitByteIdentical(t *testing.T) {
	ctx := Ctx(t)
	c := SharedClient()

	first := zsimd.CellSpec{
		Type:   zsimd.TypeBenchmark,
		App:    "is",
		System: "rcinv",
		Params: json.RawMessage(`{"Procs":4,"StoreBufEntries":8}`),
	}
	// The same cell, spelled differently: reordered fields, whitespace,
	// and the default scale made explicit. resolve() must canonicalize
	// both onto one content address.
	second := zsimd.CellSpec{
		Type:   zsimd.TypeBenchmark,
		App:    "is",
		System: "rcinv",
		Scale:  "small",
		Params: json.RawMessage(`{ "StoreBufEntries": 8, "Procs": 4 }`),
	}

	st1, res1 := SubmitAndWait(t, ctx, c, first)
	if st1.CacheMisses != 1 || st1.CacheHits != 0 {
		t.Fatalf("first run: hits=%d misses=%d, want a pure miss", st1.CacheHits, st1.CacheMisses)
	}
	if res1.Cells[0].Cached {
		t.Fatal("first run claims to be cached")
	}

	st2, res2 := SubmitAndWait(t, ctx, c, second)
	if st2.CacheHits != 1 || st2.CacheMisses != 0 {
		t.Fatalf("second run: hits=%d misses=%d, want a pure hit", st2.CacheHits, st2.CacheMisses)
	}
	if !res2.Cells[0].Cached {
		t.Fatal("second run not served from cache")
	}
	if res1.Cells[0].Key != res2.Cells[0].Key {
		t.Fatalf("equivalent specs got different content addresses:\n%s\n%s",
			res1.Cells[0].Key, res2.Cells[0].Key)
	}
	if !bytes.Equal(res1.Cells[0].Body, res2.Cells[0].Body) {
		t.Fatalf("cache hit body differs from fresh body:\nfresh:  %.200s\ncached: %.200s",
			res1.Cells[0].Body, res2.Cells[0].Body)
	}
	if len(res1.Cells[0].Body) == 0 {
		t.Fatal("empty result body")
	}
}

// TestSweepJobMixedCells submits one multi-cell job (a small sweep: two
// benchmark systems plus a seeded litmus program) and checks every cell
// comes back well-formed and independently addressed.
func TestSweepJobMixedCells(t *testing.T) {
	ctx := Ctx(t)
	c := SharedClient()
	params := json.RawMessage(`{"Procs":4}`)
	st, res := SubmitAndWait(t, ctx, c,
		zsimd.CellSpec{Type: zsimd.TypeBenchmark, App: "is", System: "rcinv", Params: params},
		zsimd.CellSpec{Type: zsimd.TypeBenchmark, App: "is", System: "rcupd", Params: params},
		zsimd.CellSpec{Type: zsimd.TypeLitmus, Seed: 7, Params: params},
	)
	if st.Cells != 3 || len(res.Cells) != 3 {
		t.Fatalf("cells = %d/%d, want 3", st.Cells, len(res.Cells))
	}
	seen := map[string]bool{}
	for i, cr := range res.Cells {
		if cr.Index != i {
			t.Fatalf("cell %d reported index %d", i, cr.Index)
		}
		if seen[cr.Key] {
			t.Fatalf("cells share content address %s", cr.Key)
		}
		seen[cr.Key] = true
		var body map[string]any
		if err := json.Unmarshal(cr.Body, &body); err != nil {
			t.Fatalf("cell %d body not JSON: %v", i, err)
		}
	}
	var lit struct {
		Ok     bool   `json:"ok"`
		Report string `json:"report"`
		Seed   int64  `json:"seed"`
	}
	if err := json.Unmarshal(res.Cells[2].Body, &lit); err != nil {
		t.Fatal(err)
	}
	if !lit.Ok || lit.Seed != 7 || !strings.Contains(lit.Report, "rcinv") {
		t.Fatalf("litmus cell wrong: ok=%v seed=%d report=%.80s", lit.Ok, lit.Seed, lit.Report)
	}
}

// TestExperimentCell runs one entry of the regeneration index end to end
// and checks the rendered artifact arrives intact.
func TestExperimentCell(t *testing.T) {
	ctx := Ctx(t)
	c := SharedClient()
	_, res := SubmitAndWait(t, ctx, c,
		zsimd.CellSpec{Type: zsimd.TypeExperiment, Experiment: "E6", Params: json.RawMessage(`{"Procs":8}`)})
	var body struct {
		Experiment string `json:"experiment"`
		Title      string `json:"title"`
		Render     string `json:"render"`
		Markdown   string `json:"markdown"`
	}
	if err := json.Unmarshal(res.Cells[0].Body, &body); err != nil {
		t.Fatal(err)
	}
	if body.Experiment != "E6" || body.Title == "" {
		t.Fatalf("experiment envelope wrong: %+v", body)
	}
	if !strings.Contains(body.Render, "z-machine") && !strings.Contains(body.Render, "zmc") {
		t.Fatalf("render looks truncated: %.120s", body.Render)
	}
	if !strings.Contains(body.Markdown, "|") {
		t.Fatalf("markdown looks truncated: %.120s", body.Markdown)
	}
}

// TestInvalidSubmissionsRejected drives the daemon's untrusted input
// boundary: every malformed cell must be rejected with 400 before
// anything is queued.
func TestInvalidSubmissionsRejected(t *testing.T) {
	ctx := Ctx(t)
	c := SharedClient()
	cases := []struct {
		name string
		cell zsimd.CellSpec
		want string
	}{
		{"unknown type", zsimd.CellSpec{Type: "sweepx"}, "unknown cell type"},
		{"unknown experiment", zsimd.CellSpec{Type: zsimd.TypeExperiment, Experiment: "E99"}, "no experiment"},
		{"unknown app", zsimd.CellSpec{Type: zsimd.TypeBenchmark, App: "quake", System: "rcinv"}, "unknown application"},
		{"unknown system", zsimd.CellSpec{Type: zsimd.TypeBenchmark, App: "is", System: "mesi"}, "unknown memory system"},
		{"bad scale", zsimd.CellSpec{Type: zsimd.TypeBenchmark, App: "is", System: "rcinv", Scale: "huge"}, "unknown scale"},
		{"negative seed", zsimd.CellSpec{Type: zsimd.TypeLitmus, Seed: -3}, "seed"},
		{"params wrong shape", zsimd.CellSpec{Type: zsimd.TypeLitmus, Params: json.RawMessage(`[4]`)}, "params"},
		{"params unknown field", zsimd.CellSpec{Type: zsimd.TypeLitmus, Params: json.RawMessage(`{"Porcs":4}`)}, "unknown field"},
		{"procs over cap", zsimd.CellSpec{Type: zsimd.TypeLitmus, Params: json.RawMessage(`{"Procs":1025}`)}, "exceeds"},
		{"procs zero", zsimd.CellSpec{Type: zsimd.TypeLitmus, Params: json.RawMessage(`{"Procs":0}`)}, "Procs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Submit(ctx, tc.cell)
			se, ok := err.(*client.StatusError)
			if !ok {
				t.Fatalf("err = %v, want StatusError", err)
			}
			if se.Code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400", se.Code)
			}
			if !strings.Contains(se.Message, tc.want) {
				t.Fatalf("message %q does not mention %q", se.Message, tc.want)
			}
		})
	}

	// An empty job is rejected too.
	if _, err := c.Submit(ctx); err == nil || !strings.Contains(err.Error(), "no cells") {
		t.Fatalf("empty submit: err = %v, want 'no cells'", err)
	}

	// A syntactically broken request body cannot be built through the
	// client (its marshaler would refuse), so drive the API directly.
	for body, want := range map[string]string{
		`{"cells":[{"type"`:              "bad submit body",
		`{"cels":[{"type":"litmus"}]}`:   "unknown field",
		`{"cells":[{"type":"litmus"}]}x`: "bad submit body",
	} {
		resp, err := http.Post(SharedURL()+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err != nil || cerr != nil {
			t.Fatal(err, cerr)
		}
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), want) {
			t.Fatalf("raw body %q: status %d, body %q; want 400 mentioning %q", body, resp.StatusCode, raw, want)
		}
	}
}

// TestJobListHealthAndResultConflict exercises the remaining read
// endpoints through the shared group: the job list preserves submission
// order, unknown jobs 404, results of unfinished jobs 409, and the health
// endpoint surfaces queue capacity, store occupancy, and the metrics
// snapshot.
func TestJobListHealthAndResultConflict(t *testing.T) {
	ctx := Ctx(t)
	c := SharedClient()
	st, _ := SubmitAndWait(t, ctx, c,
		zsimd.CellSpec{Type: zsimd.TypeLitmus, Seed: 11, Params: json.RawMessage(`{"Procs":4}`)})

	jobs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].ID >= jobs[i].ID {
			t.Fatalf("job list out of submission order: %s before %s", jobs[i-1].ID, jobs[i].ID)
		}
	}
	for _, j := range jobs {
		if j.ID == st.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s missing from list of %d jobs", st.ID, len(jobs))
	}

	if _, err := c.Job(ctx, "j999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job: err = %v, want 404", err)
	}
	if _, err := c.Result(ctx, "j999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown result: err = %v, want 404", err)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.QueueCap != 32 || h.CodeVersion != zsimd.CodeVersion {
		t.Fatalf("health = %+v", h)
	}
	if h.StoreEntries < 1 {
		t.Fatalf("store entries = %d after a completed job", h.StoreEntries)
	}
	if h.Jobs["done"] < 1 {
		t.Fatalf("health job counts = %v, want at least one done", h.Jobs)
	}
	if h.Metrics.Counter("zsimd.jobs_submitted") < 1 {
		t.Fatalf("metrics snapshot missing zsimd.jobs_submitted: %v", h.Metrics.Counters)
	}
}

// TestResultPersistsAcrossRestart pins the DirStore serving path: a fresh
// daemon over the same store directory serves a previously simulated cell
// as a byte-identical cache hit.
func TestResultPersistsAcrossRestart(t *testing.T) {
	ctx := Ctx(t)
	dir := t.TempDir()
	spec := zsimd.CellSpec{Type: zsimd.TypeBenchmark, App: "is", System: "rcsync",
		Params: json.RawMessage(`{"Procs":4}`)}

	st1, err := zsimd.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := NewGroup(t, zsimd.Config{Store: st1})
	_, res1 := SubmitAndWait(t, ctx, g1.C(), spec)
	if res1.Cells[0].Cached {
		t.Fatal("first daemon served a hit from an empty store")
	}
	g1.Close()

	st2, err := zsimd.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGroup(t, zsimd.Config{Store: st2})
	st, res2 := SubmitAndWait(t, ctx, g2.C(), spec)
	if !res2.Cells[0].Cached || st.CacheHits != 1 {
		t.Fatalf("restarted daemon missed the persisted entry: %+v", st)
	}
	if !bytes.Equal(res1.Cells[0].Body, res2.Cells[0].Body) {
		t.Fatal("persisted body differs across restart")
	}
}
