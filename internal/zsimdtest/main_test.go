package zsimdtest

import (
	"os"
	"testing"

	"zsim/internal/metrics"
	"zsim/internal/runner"
)

// TestMain owns the shared server group's lifetime and the process-global
// simulation settings: metrics on (so /v1/health serves a live snapshot)
// and a modest runner bound (cells in these tests are tiny; the daemon's
// own queue/worker bounds are what is under test).
func TestMain(m *testing.M) {
	metrics.Enable(true)
	runner.SetParallelism(4)
	code := m.Run()
	closeShared()
	os.Exit(code)
}
