// Package zsimdtest is the integration-test harness for the zsimd
// simulation daemon, structured after the uplotest methodology:
//
//   - every interaction goes through the HTTP API and the client package —
//     tests never reach into server internals;
//   - group creation is the expensive step, so tests share a server group
//     whenever the scenario allows (SharedGroup); only fault scenarios
//     build private groups with injected dependencies;
//   - faults that cannot be reliably triggered through the API (store
//     write failures, a worker panicking mid-cell, cells slow enough to
//     race cancellation) are injected through the dependencies submodule.
package zsimdtest

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"zsim/internal/zsimd"
	"zsim/internal/zsimd/client"
)

// Timeout bounds every harness wait. Simulation cells at small scale run
// in milliseconds; a minute means a hang, not a slow host.
const Timeout = 60 * time.Second

// Group is one running daemon plus the client every test talks through.
// The server handle itself is deliberately not exposed: the methodology is
// API-only, so a test that needs server state has a missing endpoint, not
// a missing accessor.
type Group struct {
	ts  *httptest.Server
	srv *zsimd.Server
	c   *client.Client
}

// NewGroup starts a daemon with the given configuration and returns its
// group. The daemon and its listener are torn down with the test; tests
// that need an earlier shutdown (e.g. restart-persistence scenarios) may
// call Close themselves.
func NewGroup(t testing.TB, cfg zsimd.Config) *Group {
	t.Helper()
	srv := zsimd.New(cfg)
	ts := httptest.NewServer(srv)
	g := &Group{ts: ts, srv: srv, c: client.New(ts.URL)}
	t.Cleanup(g.Close)
	return g
}

// Close shuts the group's daemon down. Idempotent.
func (g *Group) Close() {
	g.ts.Close()
	g.srv.Close()
}

// C returns the group's API client.
func (g *Group) C() *client.Client { return g.c }

// URL returns the daemon's base URL.
func (g *Group) URL() string { return g.ts.URL }

// shared is the default (no-fault) group, built once and reused by every
// test that only needs production behaviour; closeShared tears it down
// from TestMain.
var shared struct {
	once sync.Once
	ts   *httptest.Server
	srv  *zsimd.Server
	c    *client.Client
}

// SharedClient returns the client of the process-shared default group,
// creating the group on first use. Tests that inject faults or need
// private queue/store sizing must use NewGroup instead.
func SharedClient() *client.Client {
	shared.once.Do(func() {
		shared.srv = zsimd.New(zsimd.Config{QueueDepth: 32, Workers: 2})
		shared.ts = httptest.NewServer(shared.srv)
		shared.c = client.New(shared.ts.URL)
	})
	return shared.c
}

// SharedURL returns the shared group's base URL, for the rare test that
// must drive the HTTP API below the client (e.g. malformed request
// bodies the client's own marshaler would refuse to produce).
func SharedURL() string {
	SharedClient()
	return shared.ts.URL
}

// closeShared tears down the shared group (TestMain only).
func closeShared() {
	if shared.ts != nil {
		shared.ts.Close()
		shared.srv.Close()
	}
}

// Ctx returns the harness's bounded context for one test.
func Ctx(t testing.TB) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), Timeout)
	t.Cleanup(cancel)
	return ctx
}

// SubmitAndWait submits one job through c and waits until it is done,
// returning its fetched results.
func SubmitAndWait(t testing.TB, ctx context.Context, c *client.Client, cells ...zsimd.CellSpec) (zsimd.JobStatus, zsimd.JobResult) {
	t.Helper()
	st, err := c.Submit(ctx, cells...)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = c.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	return st, res
}
