// Package dependencies provides the fault-injection implementations of
// zsimd.Dependencies used by the integration-test harness, after the
// uplotest dependencies submodule: each type exploits one specific
// scenario that cannot be reliably triggered through normal API use —
// a failing store write, a worker panicking mid-cell, or cells slow
// enough that cancellation and queue-saturation windows are testable.
package dependencies

import "zsim/internal/zsimd"

// StoreWriteFail fails every content-addressed store write after a cell
// has been simulated (the result exists in memory but cannot be
// persisted; the job must fail cleanly and the daemon must survive).
type StoreWriteFail struct{ zsimd.ProdDependencies }

// Disrupt implements zsimd.Dependencies.
func (StoreWriteFail) Disrupt(op string) bool { return op == zsimd.DisruptStoreWrite }

// WorkerPanic panics inside every cell, on the worker pool. The runner
// captures and re-raises it in the job runner, which must fail the job
// without taking down the daemon.
type WorkerPanic struct{ zsimd.ProdDependencies }

// Disrupt implements zsimd.Dependencies.
func (WorkerPanic) Disrupt(op string) bool { return op == zsimd.DisruptWorkerPanic }

// SlowCell stretches every cell by the server's configured SlowCell delay
// before simulation starts, opening a deterministic window in which jobs
// are observably running (cancel paths) or the bounded queue is
// observably full (saturation paths). The injected sleep honours the
// job's cancel channel, so cancellation still completes immediately.
type SlowCell struct{ zsimd.ProdDependencies }

// Disrupt implements zsimd.Dependencies.
func (SlowCell) Disrupt(op string) bool { return op == zsimd.DisruptSlowCell }
