package zsimdtest

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"zsim/internal/zsimd"
	"zsim/internal/zsimd/client"
	"zsim/internal/zsimdtest/dependencies"
)

// quickCell is a cell small enough that fault tests spend their time in
// the scenario, not the simulation.
func quickCell() zsimd.CellSpec {
	return zsimd.CellSpec{Type: zsimd.TypeBenchmark, App: "is", System: "rcinv",
		Params: json.RawMessage(`{"Procs":4}`)}
}

// waitState polls through the client until the job reports the wanted
// state (terminal or not).
func waitState(t *testing.T, c *client.Client, id string, want zsimd.JobState) zsimd.JobStatus {
	t.Helper()
	ctx := Ctx(t)
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s ended %s (%s) while waiting for %s", id, st.State, st.Error, want)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("timed out waiting for job %s to reach %s (last: %s)", id, want, st.State)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestStoreWriteFailureFailsJobNotDaemon: with store writes disrupted,
// the job must fail with the write error, nothing may be cached, and the
// daemon must keep serving.
func TestStoreWriteFailureFailsJobNotDaemon(t *testing.T) {
	ctx := Ctx(t)
	g := NewGroup(t, zsimd.Config{Deps: dependencies.StoreWriteFail{}})
	c := g.C()

	st, err := c.Submit(ctx, quickCell())
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != zsimd.JobFailed || !strings.Contains(st.Error, "injected write failure") {
		t.Fatalf("job = %s (%q), want failed with the injected write error", st.State, st.Error)
	}
	if _, err := c.Result(ctx, st.ID); err == nil {
		t.Fatal("result of a failed job served without error")
	}

	// The daemon survived: health is ok and nothing leaked into the store.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.StoreEntries != 0 {
		t.Fatalf("health after store failure = %+v, want ok with empty store", h)
	}
	// And it still accepts work (which fails again — the fault is sticky
	// in this group — but the API keeps answering).
	if _, err := c.Submit(ctx, quickCell()); err != nil {
		t.Fatalf("daemon stopped accepting submissions after a store failure: %v", err)
	}
}

// TestWorkerPanicFailsJobNotDaemon: a cell panicking on the worker pool
// must surface as a failed job — the runner re-raises the panic after the
// pool drains, and the job runner converts it — while the daemon and its
// remaining workers keep serving.
func TestWorkerPanicFailsJobNotDaemon(t *testing.T) {
	ctx := Ctx(t)
	g := NewGroup(t, zsimd.Config{Deps: dependencies.WorkerPanic{}, Workers: 1})
	c := g.C()

	st, err := c.Submit(ctx, quickCell())
	if err != nil {
		t.Fatal(err)
	}
	st, err = c.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != zsimd.JobFailed || !strings.Contains(st.Error, "cell panic") {
		t.Fatalf("job = %s (%q), want failed with a cell panic", st.State, st.Error)
	}

	// The single worker survived the panic: a second job still gets
	// dequeued and judged (it fails the same way, but it *runs*).
	st2, err := c.Submit(ctx, quickCell())
	if err != nil {
		t.Fatal(err)
	}
	st2, err = c.WaitJob(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != zsimd.JobFailed {
		t.Fatalf("second job = %s, want the worker alive and failing it", st2.State)
	}
	if h, err := c.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health after panic = %+v, %v", h, err)
	}
}

// TestQueueSaturationRejects: with one worker held busy by a slow cell
// and a depth-1 queue holding one waiting job, the next submission must
// be rejected with 503 instead of queueing without bound.
func TestQueueSaturationRejects(t *testing.T) {
	ctx := Ctx(t)
	g := NewGroup(t, zsimd.Config{
		QueueDepth: 1,
		Workers:    1,
		Deps:       dependencies.SlowCell{},
		SlowCell:   time.Minute,
	})
	c := g.C()

	running, err := c.Submit(ctx, quickCell())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running.ID, zsimd.JobRunning)

	queued, err := c.Submit(ctx, quickCell())
	if err != nil {
		t.Fatalf("depth-1 queue rejected its first waiting job: %v", err)
	}

	_, err = c.Submit(ctx, quickCell())
	if !client.IsQueueFull(err) {
		t.Fatalf("err = %v, want the 503 queue-full rejection", err)
	}

	// Cancel both jobs: the running one wakes from its injected sleep
	// immediately; the queued one is finalized when dequeued.
	for _, id := range []string{running.ID, queued.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{running.ID, queued.ID} {
		st, err := c.WaitJob(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != zsimd.JobCanceled {
			t.Fatalf("job %s = %s, want canceled", id, st.State)
		}
	}
}

// TestCancelRunningJob: cancelling a job mid-cell must end it promptly in
// the canceled state — the injected sleep honours the cancel channel, so
// the minute-long cell never runs to completion.
func TestCancelRunningJob(t *testing.T) {
	ctx := Ctx(t)
	g := NewGroup(t, zsimd.Config{Deps: dependencies.SlowCell{}, SlowCell: time.Minute})
	c := g.C()

	st, err := c.Submit(ctx, quickCell())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, zsimd.JobRunning)
	start := time.Now()
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	st, err = c.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != zsimd.JobCanceled {
		t.Fatalf("job = %s (%q), want canceled", st.State, st.Error)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v; the injected sleep ignored the cancel channel", elapsed)
	}
	// Cancelling a terminal job is a harmless no-op.
	if again, err := c.Cancel(ctx, st.ID); err != nil || again.State != zsimd.JobCanceled {
		t.Fatalf("re-cancel = %+v, %v", again, err)
	}
}
