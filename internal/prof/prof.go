// Package prof wires Go's pprof profilers into the command-line tools. Both
// profiles exist to audit the simulator's own hot paths: the CPU profile
// should be dominated by the simulation kernel and the memory systems, and
// the heap profile should show no steady-state allocation from the paged
// flat tables or the hop-by-hop router (see DESIGN.md, "Memory layout and
// profiling").
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths and
// returns a stop function that finishes them. CPU profiling runs from Start
// to stop; the heap profile is a snapshot taken at stop after a GC, so it
// reflects live steady-state memory, not transient garbage.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // the StartCPUProfile error is the one worth reporting
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize the steady state before the snapshot
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr // a failed close can mean an unflushed profile
			}
			if werr != nil {
				return werr
			}
		}
		return nil
	}, nil
}
