package memsys

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 12, 16, 32, 64, 256, 1024} {
		if err := Default(p).Validate(); err != nil {
			t.Errorf("Default(%d) invalid: %v", p, err)
		}
	}
}

func TestDefaultMatchesPaper(t *testing.T) {
	p := Default(16)
	if p.LineSize != 32 {
		t.Errorf("LineSize = %d, want 32", p.LineSize)
	}
	if p.ZLineSize != 4 {
		t.Errorf("ZLineSize = %d, want 4", p.ZLineSize)
	}
	if p.LinkCyclesPerByte != 1.6 {
		t.Errorf("LinkCyclesPerByte = %g, want 1.6", p.LinkCyclesPerByte)
	}
	if p.StoreBufEntries != 4 {
		t.Errorf("StoreBufEntries = %d, want 4", p.StoreBufEntries)
	}
	if p.MergeBufLines != 1 {
		t.Errorf("MergeBufLines = %d, want 1", p.MergeBufLines)
	}
	if p.MeshW != 4 || p.MeshH != 4 {
		t.Errorf("mesh = %dx%d, want 4x4", p.MeshW, p.MeshH)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Procs = 0 },
		func(p *Params) { p.Procs = MaxProcs + 1; p.MeshW = 25; p.MeshH = 41 },
		func(p *Params) { p.MeshW = 3 },
		func(p *Params) { p.LineSize = 24 },
		func(p *Params) { p.ZLineSize = 0 },
		func(p *Params) { p.LinkCyclesPerByte = 0 },
		func(p *Params) { p.StoreBufEntries = 0 },
		func(p *Params) { p.MergeBufLines = 0 },
		func(p *Params) { p.CompThreshold = 0 },
		func(p *Params) { p.FiniteCache = true },
		func(p *Params) { p.FiniteCache = true; p.CacheLines = 10; p.CacheAssoc = 4 },
	}
	for i, mutate := range bad {
		p := Default(16)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestValidateRejectsProcsOverCap(t *testing.T) {
	// The directory's presence sets are fixed MaxProcs/64-word arrays and
	// the stock topologies are validated up to MaxProcs nodes; one more
	// processor would index past the presence words. Validate must refuse
	// instead of corrupting sharer tracking, and the error must name the
	// configured topology's capacity, not a stale uint64 rationale.
	p := Default(MaxProcs)
	if err := p.Validate(); err != nil {
		t.Fatalf("Default(%d) must validate: %v", MaxProcs, err)
	}
	p.Procs = MaxProcs + 1
	p.MeshW, p.MeshH = 25, 41 // 25*41 = 1025: the mesh covers, the cap still rejects
	err := p.Validate()
	if err == nil {
		t.Fatalf("Procs = %d must be rejected", MaxProcs+1)
	}
	for _, want := range []string{"1025", "1024-processor capacity", `"mesh" topology`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
	// The named capacity follows the configured topology.
	p.Topology = "torus"
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), `"torus" topology`) {
		t.Errorf("error %v should name the configured torus topology", err)
	}
}

func TestHomeInterleaving(t *testing.T) {
	p := Default(16)
	// Consecutive 32-byte lines round-robin across the 16 nodes.
	for i := 0; i < 64; i++ {
		addr := Addr(i * 32)
		if got, want := p.Home(addr, 32), i%16; got != want {
			t.Fatalf("Home(%#x) = %d, want %d", addr, got, want)
		}
	}
	// Same line, different offsets: same home.
	if p.Home(0, 32) != p.Home(31, 32) {
		t.Fatal("offsets within a line must share a home")
	}
}

func TestHomeInRangeProperty(t *testing.T) {
	p := Default(12)
	f := func(a uint64) bool {
		h := p.Home(Addr(a), p.LineSize)
		return h >= 0 && h < p.Procs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLine(t *testing.T) {
	if Line(0, 32) != 0 || Line(31, 32) != 0 || Line(32, 32) != 1 {
		t.Fatal("Line mapping wrong")
	}
}

func TestCountersPerProc(t *testing.T) {
	c := NewCounters(4)
	c.CountRead(1)
	c.CountRead(1)
	c.CountWrite(3)
	// CountRead/CountWrite touch only the per-processor cells (they may run
	// inside local shard windows); the aggregates are derived by Fold.
	if c.Reads != 0 || c.Writes != 0 {
		t.Fatalf("aggregates written eagerly: reads=%d writes=%d", c.Reads, c.Writes)
	}
	c.Fold()
	if c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("reads=%d writes=%d", c.Reads, c.Writes)
	}
	c.Fold() // idempotent
	if c.Reads != 2 || c.Writes != 1 {
		t.Fatalf("Fold not idempotent: reads=%d writes=%d", c.Reads, c.Writes)
	}
	if c.PerProcReads[1] != 2 || c.PerProcWrites[3] != 1 {
		t.Fatalf("per-proc counters wrong: %+v", c)
	}
	if c.String() == "" {
		t.Fatal("String should describe counters")
	}
}

func TestKindsContainFigureSystems(t *testing.T) {
	all := map[Kind]bool{}
	for _, k := range Kinds() {
		all[k] = true
	}
	for _, k := range FigureKinds() {
		if !all[k] {
			t.Errorf("figure kind %s missing from Kinds()", k)
		}
	}
	if FigureKinds()[0] != KindZMachine {
		t.Error("figures lead with the z-machine")
	}
}

func TestMeshShapeSquareish(t *testing.T) {
	cases := map[int][2]int{16: {4, 4}, 8: {4, 2}, 12: {4, 3}, 2: {2, 1}, 1: {1, 1}, 9: {3, 3}}
	for p, want := range cases {
		w, h := meshShape(p)
		if w != want[0] || h != want[1] {
			t.Errorf("meshShape(%d) = %dx%d, want %dx%d", p, w, h, want[0], want[1])
		}
	}
}

func TestDefaultMT(t *testing.T) {
	p := DefaultMT(16, 4)
	if p.Procs != 16 || p.HWThreads != 4 {
		t.Fatalf("config = %+v", p)
	}
	if p.Nodes() != 4 {
		t.Fatalf("Nodes = %d, want 4", p.Nodes())
	}
	if p.MeshW*p.MeshH != 4 {
		t.Fatalf("mesh %dx%d should cover 4 nodes", p.MeshW, p.MeshH)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeMapping(t *testing.T) {
	p := DefaultMT(8, 2)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for stream, node := range want {
		if p.Node(stream) != node {
			t.Fatalf("Node(%d) = %d, want %d", stream, p.Node(stream), node)
		}
	}
}

func TestDefaultMTPanicsOnBadSplit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultMT(10, 4)
}

func TestValidateHWThreads(t *testing.T) {
	p := Default(16)
	p.HWThreads = 3 // does not divide 16
	if err := p.Validate(); err == nil {
		t.Fatal("expected error")
	}
	p = Default(16)
	p.HWThreads = 4 // mesh still 4x4 but only 4 nodes
	if err := p.Validate(); err == nil {
		t.Fatal("expected mesh/nodes mismatch error")
	}
}

func TestHomeRangesOverNodes(t *testing.T) {
	p := DefaultMT(16, 4)
	for a := Addr(0); a < 4096; a += 32 {
		if h := p.Home(a, 32); h < 0 || h >= 4 {
			t.Fatalf("Home(%d) = %d outside the 4 nodes", a, h)
		}
	}
}

func TestParamsJSONRoundtrip(t *testing.T) {
	p := Default(16)
	p.Topology = "torus"
	p.PrefetchDegree = 2
	data, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParamsFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("roundtrip changed params:\n got %+v\nwant %+v", got, p)
	}
}

func TestParamsFromJSONPartial(t *testing.T) {
	// A file that only changes a few fields keeps the paper defaults and
	// gets a consistent mesh recomputed.
	got, err := ParamsFromJSON([]byte(`{"Procs": 32, "HWThreads": 2, "StoreBufEntries": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 32 || got.HWThreads != 2 || got.StoreBufEntries != 8 {
		t.Fatalf("overrides lost: %+v", got)
	}
	if got.Nodes() != 16 || got.MeshW*got.MeshH != 16 {
		t.Fatalf("mesh not recomputed: %+v", got)
	}
	if got.LineSize != 32 {
		t.Fatalf("defaults lost: %+v", got)
	}
}

func TestParamsFromJSONRejectsBad(t *testing.T) {
	if _, err := ParamsFromJSON([]byte(`{`)); err == nil {
		t.Fatal("expected syntax error")
	}
	if _, err := ParamsFromJSON([]byte(`{"LineSize": 24}`)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestTransferCyclesMinimumOne(t *testing.T) {
	p := Default(16)
	p.LinkCyclesPerByte = 0.0001
	if got := p.TransferCycles(1); got != 1 {
		t.Fatalf("TransferCycles floor = %d, want 1", got)
	}
	p.LinkCyclesPerByte = 2
	if got := p.TransferCycles(3); got != 6 {
		t.Fatalf("TransferCycles(3) = %d, want 6", got)
	}
	if got := p.TransferCycles(0); got != 1 {
		t.Fatalf("zero-byte transfer = %d, want 1", got)
	}
}

func TestKernelShardsValidate(t *testing.T) {
	p := Default(8)
	p.KernelShards = -1
	if err := p.Validate(); err == nil {
		t.Error("negative KernelShards validated")
	}
	p.KernelShards = MaxProcs + 1
	if err := p.Validate(); err == nil {
		t.Error("KernelShards above MaxProcs validated")
	}
	for _, s := range []int{0, 1, 4, MaxProcs} {
		p.KernelShards = s
		if err := p.Validate(); err != nil {
			t.Errorf("KernelShards = %d: %v", s, err)
		}
	}
}

func TestShardCountClamp(t *testing.T) {
	p := Default(8)
	cases := []struct{ set, want int }{
		{0, 0}, {1, 1}, {4, 4}, {8, 8}, {9, 8}, {64, 8},
	}
	for _, c := range cases {
		p.KernelShards = c.set
		if got := p.ShardCount(); got != c.want {
			t.Errorf("ShardCount with KernelShards=%d = %d, want %d", c.set, got, c.want)
		}
	}
}

// TestShardOfNodeBands pins the shard map: contiguous, balanced bands of
// row-major node numbers, covering every shard index, monotone in the node
// number (so a shard is a band of adjacent mesh rows).
func TestShardOfNodeBands(t *testing.T) {
	p := Default(16)
	for _, shards := range []int{1, 2, 3, 4, 16} {
		p.KernelShards = shards
		sizes := make([]int, shards)
		prev := 0
		for node := 0; node < p.Nodes(); node++ {
			s := p.ShardOfNode(node)
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: ShardOfNode(%d) = %d out of range", shards, node, s)
			}
			if s < prev {
				t.Fatalf("shards=%d: shard map not monotone at node %d", shards, node)
			}
			prev = s
			sizes[s]++
		}
		for s, n := range sizes {
			if n == 0 {
				t.Errorf("shards=%d: shard %d empty", shards, s)
			}
			if min := p.Nodes() / shards; n < min || n > min+1 {
				t.Errorf("shards=%d: shard %d has %d nodes, want %d or %d", shards, s, n, min, min+1)
			}
		}
	}
	// Streams route through their home node's shard.
	p = DefaultMT(16, 2) // 8 nodes, 2 threads each
	p.KernelShards = 2
	for stream := 0; stream < 16; stream++ {
		if got, want := p.ShardOfProc(stream), p.ShardOfNode(stream/2); got != want {
			t.Errorf("ShardOfProc(%d) = %d, want node shard %d", stream, got, want)
		}
	}
}

// TestShardOfNodeBandsManyCore repeats the band invariants beyond the old
// 64-processor ceiling: 256 nodes (16×16 mesh) and 1024 nodes (32×32
// mesh), plus the hierarchical topology where contiguous bands must group
// whole 16-node clusters when the shard count divides the cluster count.
func TestShardOfNodeBandsManyCore(t *testing.T) {
	cases := []struct {
		procs  int
		topo   string
		shards []int
	}{
		{256, "mesh", []int{2, 4, 8, 16}},
		{1024, "mesh", []int{4, 8, 32}},
		{256, "hier", []int{4, 8, 16}},
	}
	for _, c := range cases {
		p := Default(c.procs)
		p.Topology = c.topo
		if err := p.Validate(); err != nil {
			t.Fatalf("Procs=%d %s: %v", c.procs, c.topo, err)
		}
		for _, shards := range c.shards {
			p.KernelShards = shards
			sizes := make([]int, shards)
			prev := 0
			for node := 0; node < p.Nodes(); node++ {
				s := p.ShardOfNode(node)
				if s < 0 || s >= shards {
					t.Fatalf("Procs=%d %s shards=%d: ShardOfNode(%d) = %d out of range", c.procs, c.topo, shards, node, s)
				}
				if s < prev {
					t.Fatalf("Procs=%d %s shards=%d: shard map not monotone at node %d", c.procs, c.topo, shards, node)
				}
				prev = s
				sizes[s]++
			}
			for s, n := range sizes {
				if min := p.Nodes() / shards; n < min || n > min+1 {
					t.Errorf("Procs=%d %s shards=%d: shard %d has %d nodes, want %d or %d", c.procs, c.topo, shards, s, n, min, min+1)
				}
			}
			if c.topo == "hier" && p.Nodes()/shards%HierClusterNodes == 0 {
				// Cluster-major numbering: a band that is a multiple of the
				// cluster size never splits a cluster across shards.
				for node := 0; node < p.Nodes(); node += HierClusterNodes {
					first := p.ShardOfNode(node)
					for off := 1; off < HierClusterNodes; off++ {
						if got := p.ShardOfNode(node + off); got != first {
							t.Fatalf("Procs=%d hier shards=%d: cluster at node %d split across shards %d/%d", c.procs, shards, node, first, got)
						}
					}
				}
			}
		}
	}
	// Stream→shard mapping at 256 procs on 128 nodes.
	p := DefaultMT(256, 2)
	p.KernelShards = 4
	for stream := 0; stream < 256; stream += 17 {
		if got, want := p.ShardOfProc(stream), p.ShardOfNode(stream/2); got != want {
			t.Errorf("ShardOfProc(%d) = %d, want node shard %d", stream, got, want)
		}
	}
}
