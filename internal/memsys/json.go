package memsys

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSON encodes the parameter block for experiment configuration files.
func (pa Params) JSON() ([]byte, error) {
	return json.MarshalIndent(pa, "", "  ")
}

// ParamsFromJSON decodes a parameter block. Decoding starts from the
// paper's defaults for 16 processors, so a configuration file only needs
// the fields it changes; if the interconnect dimensions are left
// inconsistent with the (possibly changed) node count, they are recomputed
// automatically.
//
// Decoding is strict — unknown fields and trailing data are errors, not
// silently ignored. This function is the untrusted input boundary for
// both configuration files and the zsimd daemon's API, where a typo'd
// field name accepted in good faith would silently simulate the wrong
// machine (and cache the result under the wrong-machine key).
func ParamsFromJSON(data []byte) (Params, error) {
	pa := Default(16)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pa); err != nil {
		return Params{}, fmt.Errorf("memsys: bad params JSON: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Params{}, fmt.Errorf("memsys: bad params JSON: trailing data after parameter object")
	}
	if pa.HWThreads > 0 && pa.Procs%pa.HWThreads == 0 && pa.MeshW*pa.MeshH != pa.Nodes() {
		pa.MeshW, pa.MeshH = meshShape(pa.Nodes())
	}
	if err := pa.Validate(); err != nil {
		return Params{}, err
	}
	return pa, nil
}
