package memsys

import (
	"encoding/json"
	"fmt"
)

// JSON encodes the parameter block for experiment configuration files.
func (pa Params) JSON() ([]byte, error) {
	return json.MarshalIndent(pa, "", "  ")
}

// ParamsFromJSON decodes a parameter block. Decoding starts from the
// paper's defaults for 16 processors, so a configuration file only needs
// the fields it changes; if the interconnect dimensions are left
// inconsistent with the (possibly changed) node count, they are recomputed
// automatically.
func ParamsFromJSON(data []byte) (Params, error) {
	pa := Default(16)
	if err := json.Unmarshal(data, &pa); err != nil {
		return Params{}, fmt.Errorf("memsys: bad params JSON: %w", err)
	}
	if pa.HWThreads > 0 && pa.Procs%pa.HWThreads == 0 && pa.MeshW*pa.MeshH != pa.Nodes() {
		pa.MeshW, pa.MeshH = meshShape(pa.Nodes())
	}
	if err := pa.Validate(); err != nil {
		return Params{}, err
	}
	return pa, nil
}
