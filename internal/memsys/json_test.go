package memsys

import (
	"strings"
	"testing"
)

// TestParamsFromJSONRejectsUntrustedInput drives the decoder the way the
// zsimd daemon's API boundary does: every malformed, out-of-range, or
// silently-wrong input must be rejected with a diagnosable error, never
// decoded in good faith.
func TestParamsFromJSONRejectsUntrustedInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"syntax truncated", `{`, "bad params JSON"},
		{"syntax not an object", `[1,2]`, "bad params JSON"},
		{"wrong field type", `{"Procs":"sixteen"}`, "bad params JSON"},
		{"unknown field", `{"Porcs":16}`, "unknown field"},
		{"unknown field among valid", `{"Procs":16,"LineSz":64}`, "unknown field"},
		{"trailing garbage", `{"Procs":16} {"Procs":8}`, "trailing data"},
		{"trailing scalar", `{"Procs":16} 7`, "trailing data"},
		{"procs zero", `{"Procs":0}`, "Procs"},
		{"procs negative", `{"Procs":-4}`, "Procs"},
		{"procs over 1024 cap", `{"Procs":1025}`, "exceeds the 1024-processor capacity"},
		{"procs far over cap", `{"Procs":4096}`, "exceeds the 1024-processor capacity"},
		{"hier non multiple of cluster", `{"Procs":24,"Topology":"hier"}`, "hier"},
		{"hwthreads not dividing", `{"Procs":16,"HWThreads":3}`, "HWThreads"},
		{"hwthreads negative", `{"HWThreads":-1}`, "HWThreads"},
		{"line size not power of two", `{"LineSize":24}`, "LineSize"},
		{"line size zero", `{"LineSize":0}`, "LineSize"},
		{"zline size not power of two", `{"ZLineSize":3}`, "ZLineSize"},
		{"link cost zero", `{"LinkCyclesPerByte":0}`, "LinkCyclesPerByte"},
		{"link cost negative", `{"LinkCyclesPerByte":-1.6}`, "LinkCyclesPerByte"},
		{"store buffer zero", `{"StoreBufEntries":0}`, "StoreBufEntries"},
		{"merge buffer zero", `{"MergeBufLines":0}`, "MergeBufLines"},
		{"competitive threshold zero", `{"CompThreshold":0}`, "CompThreshold"},
		{"finite cache incomplete", `{"FiniteCache":true}`, "finite cache"},
		{"finite cache assoc mismatch", `{"FiniteCache":true,"CacheLines":10,"CacheAssoc":4}`, "CacheAssoc"},
		{"dir pointers negative", `{"DirPointers":-1}`, "DirPointers"},
		{"unknown topology", `{"Topology":"ring"}`, "topology"},
		{"hypercube non power of two", `{"Procs":12,"Topology":"hypercube"}`, "hypercube"},
		{"unknown zoracle", `{"ZOracle":"psychic"}`, "ZOracle"},
		{"unknown fault injection", `{"FaultInjection":"drop-everything"}`, "FaultInjection"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParamsFromJSON([]byte(tc.in))
			if err == nil {
				t.Fatalf("ParamsFromJSON(%s) accepted", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParamsFromJSON(%s) error %q does not mention %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestParamsFromJSONBoundaryAccepts pins the other side of the cap: the
// largest legal machine and unusual-but-valid inputs decode cleanly.
func TestParamsFromJSONBoundaryAccepts(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"procs at the old 64 ceiling", `{"Procs":64}`},
		{"procs at the 1024 cap", `{"Procs":1024}`},
		{"many-core 256", `{"Procs":256}`},
		{"hier topology", `{"Procs":256,"Topology":"hier"}`},
		{"single proc", `{"Procs":1}`},
		{"empty object keeps defaults", `{}`},
		{"null keeps defaults", `null`},
		{"hypercube power of two", `{"Procs":16,"Topology":"hypercube"}`},
		{"finite cache complete", `{"FiniteCache":true,"CacheLines":64,"CacheAssoc":4}`},
		// Inconsistent mesh dimensions are documented as recomputed, not
		// rejected: a partial file changing Procs keeps working.
		{"mesh recomputed", `{"MeshW":3,"MeshH":3}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pa, err := ParamsFromJSON([]byte(tc.in))
			if err != nil {
				t.Fatalf("ParamsFromJSON(%s): %v", tc.in, err)
			}
			if err := pa.Validate(); err != nil {
				t.Fatalf("decoded params invalid: %v", err)
			}
		})
	}
	pa, err := ParamsFromJSON([]byte(`{"Procs":1024}`))
	if err != nil {
		t.Fatal(err)
	}
	if pa.Procs != MaxProcs {
		t.Fatalf("Procs = %d, want the %d cap", pa.Procs, MaxProcs)
	}
	if pa.MeshW != 32 || pa.MeshH != 32 {
		t.Fatalf("mesh = %dx%d, want the recomputed 32x32", pa.MeshW, pa.MeshH)
	}
}
