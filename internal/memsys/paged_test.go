package memsys

import "testing"

func TestPagedBasics(t *testing.T) {
	var p Paged[uint64]
	if p.Pages() != 0 {
		t.Fatalf("fresh table has %d pages", p.Pages())
	}
	if p.Peek(0) != nil || p.Peek(1<<30) != nil {
		t.Fatal("Peek must return nil for untouched indices")
	}
	if p.Load(42) != 0 {
		t.Fatal("Load of an untouched index must be the zero value")
	}

	*p.At(5) = 55
	*p.At(pageLen + 7) = 77
	if got := p.Load(5); got != 55 {
		t.Fatalf("Load(5) = %d", got)
	}
	if got := *p.Peek(pageLen + 7); got != 77 {
		t.Fatalf("Peek(pageLen+7) = %d", got)
	}
	// Untouched index on a touched page reads as zero via Peek.
	if got := *p.Peek(6); got != 0 {
		t.Fatalf("Peek(6) = %d, want 0", got)
	}
	if p.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", p.Pages())
	}
}

func TestPagedSparsePages(t *testing.T) {
	var p Paged[int]
	// Touch a far page; the gap pages must stay unallocated.
	*p.At(10 * pageLen) = 1
	if p.Pages() != 1 {
		t.Fatalf("Pages = %d, want 1", p.Pages())
	}
	if p.Peek(pageLen) != nil {
		t.Fatal("gap page must be untouched")
	}
}

func TestPagedPointerStability(t *testing.T) {
	var p Paged[int]
	first := p.At(0)
	// Allocating many later pages must not move the first element: protocol
	// code holds entry pointers across a transaction.
	for i := uint64(1); i <= 64; i++ {
		*p.At(i * pageLen) = int(i)
	}
	*first = 99
	if got := p.Load(0); got != 99 {
		t.Fatalf("element moved: Load(0) = %d", got)
	}
	if p.At(0) != first {
		t.Fatal("At(0) must return a stable pointer")
	}
}

func TestPagedForEach(t *testing.T) {
	var p Paged[uint64]
	*p.At(3) = 3
	*p.At(2*pageLen + 1) = 21
	var idx []uint64
	sum := uint64(0)
	p.ForEach(func(i uint64, v *uint64) {
		if *v != 0 {
			idx = append(idx, i)
			sum += *v
		}
	})
	if len(idx) != 2 || idx[0] != 3 || idx[1] != 2*pageLen+1 || sum != 24 {
		t.Fatalf("ForEach visited %v (sum %d)", idx, sum)
	}
}

func TestPagedSteadyStateZeroAlloc(t *testing.T) {
	var p Paged[uint64]
	*p.At(1) = 1
	*p.At(pageLen) = 2
	if n := testing.AllocsPerRun(100, func() {
		*p.At(1) = 7
		_ = p.Load(pageLen)
		_ = p.Peek(2)
	}); n != 0 {
		t.Fatalf("steady-state access allocates %v times per run", n)
	}
}

func TestWordIndex(t *testing.T) {
	if WordIndex(0) != 0 || WordIndex(8) != 1 || WordIndex(80) != 10 {
		t.Fatal("WordIndex must be addr/8")
	}
}
