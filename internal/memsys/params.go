package memsys

import "fmt"

// Params is the architectural parameter block. Defaults reproduce the
// configuration of the paper's §5 evaluation: a 16-node CC-NUMA with a 4×4
// mesh, 32-byte cache lines (4-byte on the z-machine), a link latency of
// 1.6 CPU cycles per byte, a 4-entry store buffer, a 1-cache-block merge
// buffer, and infinite caches.
type Params struct {
	Procs int // number of simulated execution streams (threads)

	// HWThreads is the number of hardware threads multiplexed onto each
	// NUMA node's core (the paper's §7 "multithreading" open issue; 1 =
	// the paper's configuration, one stream per node). The machine has
	// Procs/HWThreads nodes; threads of a node share its core, cache,
	// store buffer, and merge buffer, and a thread's memory stalls overlap
	// with its siblings' computation (switch-on-miss latency tolerance).
	HWThreads int

	MeshW, MeshH int // interconnect dimensions; MeshW*MeshH must equal Nodes()

	// Topology selects the interconnect: "mesh" (the paper's network,
	// default), "torus", "hypercube", "xbar", "bus", or "hier" (a
	// hierarchical cluster-of-meshes: 4×4 paper meshes tiled in a
	// higher-level mesh, routed through per-cluster gateways; the node
	// count must be a multiple of HierClusterNodes).
	Topology string

	LineSize  int // coherence unit of the real memory systems, bytes
	ZLineSize int // coherence unit of the z-machine, bytes (4: true sharing only)

	// ZOracle selects how the z-machine models the producer's oracle.
	// "broadcast" (default, the paper's simulation §3): updates go to all
	// processors and a per-block counter clears after the worst-case
	// propagation latency. "perfect" (the paper's §2.2 definition): the
	// producer ships directly to each consumer, so a reader waits only its
	// own distance-dependent latency from the writer.
	ZOracle string

	// LinkCyclesPerByte is the per-link transfer cost in CPU cycles per
	// byte (the paper uses 1.6).
	LinkCyclesPerByte float64
	HopLatency        Time // fixed switch/router traversal cost per hop
	DirLatency        Time // directory lookup/occupancy per request
	MemLatency        Time // DRAM access on a directory data fetch
	CacheHitLatency   Time // charged on every shared access (hit time)

	CtrlBytes   int // size of a control message (request, inval, ack)
	HeaderBytes int // header prepended to data messages

	StoreBufEntries int // store (write) buffer entries per processor
	MergeBufLines   int // merge buffer capacity in cache lines (update systems)

	CompThreshold int // competitive protocol: updates without a local read before self-invalidation

	// Finite-cache extension (paper §7 "open issues").
	FiniteCache bool
	CacheLines  int // total lines per processor when finite
	CacheAssoc  int // set associativity when finite

	// PrefetchDegree enables sequential prefetch-on-miss in RCinv
	// (architectural implication of §6); 0 disables.
	PrefetchDegree int

	// DirPointers limits the directory to this many sharer pointers per
	// line (a Dir-i scheme): adding a sharer beyond the limit evicts
	// (invalidates) an existing one. 0 means the paper's full-map
	// directories.
	DirPointers int

	// Synchronization costs (process-coordination, inherent per §2.1).
	LockLatency    Time // lock/unlock manipulation cost at the home node
	BarrierLatency Time // barrier arrival bookkeeping cost

	// KernelShards partitions the simulation kernel's cooperative scheduler
	// into this many shards by home node, with a conservative synchronization
	// window derived from the minimum cross-shard mesh latency (intra-run
	// PDES; see internal/sim's sharded mode). 0 (the default) runs the
	// serial engine. Results are bit-identical at any setting; shard counts
	// above the node count are clamped to it. 1 exercises the full window
	// protocol with every processor in one shard.
	KernelShards int

	// FaultInjection seeds a deliberate protocol bug so the conformance
	// checker (internal/check) can be validated against a known defect.
	// Empty (the default) injects nothing. "drop-update" makes the
	// update-based systems silently skip refreshing one sharer's copy per
	// fan-out, leaving a stale cached value; "drop-inval" makes the
	// write-invalidate systems skip invalidating one sharer on an ownership
	// acquisition. Never set outside checker tests.
	FaultInjection string
}

// Default returns the paper's configuration for p processors.
func Default(p int) Params {
	w, h := meshShape(p)
	return Params{
		Procs:             p,
		HWThreads:         1,
		MeshW:             w,
		MeshH:             h,
		Topology:          "mesh",
		ZOracle:           "broadcast",
		LineSize:          32,
		ZLineSize:         4,
		LinkCyclesPerByte: 1.6,
		HopLatency:        2,
		DirLatency:        10,
		MemLatency:        15,
		CacheHitLatency:   1,
		CtrlBytes:         8,
		HeaderBytes:       8,
		StoreBufEntries:   4,
		MergeBufLines:     1,
		CompThreshold:     4,
		LockLatency:       4,
		BarrierLatency:    4,
	}
}

// meshShape picks the most square w×h factorization of p, preferring wider
// meshes (w ≥ h).
func meshShape(p int) (w, h int) {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return p / best, best
}

// DefaultMT returns the paper's configuration with `streams` execution
// streams multiplexed `threads` per node (the multithreading extension).
func DefaultMT(streams, threads int) Params {
	if threads <= 0 || streams%threads != 0 {
		panic(fmt.Sprintf("memsys: %d streams not divisible into %d hardware threads per node", streams, threads))
	}
	p := Default(streams)
	p.HWThreads = threads
	p.MeshW, p.MeshH = meshShape(streams / threads)
	return p
}

// WithProcs returns a copy of the params resized to p execution streams with
// one hardware thread per node and a reshaped mesh, keeping every other
// parameter (latencies, buffer sizes, fault injection) as configured.
func (pa Params) WithProcs(p int) Params {
	pa.Procs = p
	pa.HWThreads = 1
	pa.MeshW, pa.MeshH = meshShape(p)
	return pa
}

// Nodes returns the number of NUMA nodes (processor cores).
func (pa Params) Nodes() int { return pa.Procs / pa.HWThreads }

// Node maps an execution stream to its NUMA node.
func (pa Params) Node(p int) int { return p / pa.HWThreads }

// Validate reports configuration errors.
func (pa Params) Validate() error {
	switch {
	case pa.Procs <= 0:
		return fmt.Errorf("memsys: Procs = %d, need > 0", pa.Procs)
	case pa.Procs > MaxProcs:
		topo := pa.Topology
		if topo == "" {
			topo = "mesh"
		}
		return fmt.Errorf("memsys: Procs = %d exceeds the %d-processor capacity of the %q topology (stock topologies are sized for at most %d nodes and presence sets for %d words of 64 processors)", pa.Procs, MaxProcs, topo, MaxProcs, MaxProcs/64)
	case pa.HWThreads <= 0 || pa.Procs%pa.HWThreads != 0:
		return fmt.Errorf("memsys: HWThreads = %d must divide Procs = %d", pa.HWThreads, pa.Procs)
	case pa.MeshW*pa.MeshH != pa.Procs/pa.HWThreads:
		return fmt.Errorf("memsys: mesh %dx%d does not cover %d nodes", pa.MeshW, pa.MeshH, pa.Procs/pa.HWThreads)
	case pa.LineSize <= 0 || pa.LineSize&(pa.LineSize-1) != 0:
		return fmt.Errorf("memsys: LineSize = %d, need a power of two", pa.LineSize)
	case pa.ZLineSize <= 0 || pa.ZLineSize&(pa.ZLineSize-1) != 0:
		return fmt.Errorf("memsys: ZLineSize = %d, need a power of two", pa.ZLineSize)
	case pa.LinkCyclesPerByte <= 0:
		return fmt.Errorf("memsys: LinkCyclesPerByte = %g, need > 0", pa.LinkCyclesPerByte)
	case pa.StoreBufEntries <= 0:
		return fmt.Errorf("memsys: StoreBufEntries = %d, need > 0", pa.StoreBufEntries)
	case pa.MergeBufLines <= 0:
		return fmt.Errorf("memsys: MergeBufLines = %d, need > 0", pa.MergeBufLines)
	case pa.CompThreshold <= 0:
		return fmt.Errorf("memsys: CompThreshold = %d, need > 0", pa.CompThreshold)
	case pa.FiniteCache && (pa.CacheLines <= 0 || pa.CacheAssoc <= 0):
		return fmt.Errorf("memsys: finite cache needs CacheLines and CacheAssoc > 0")
	case pa.FiniteCache && pa.CacheLines%pa.CacheAssoc != 0:
		return fmt.Errorf("memsys: CacheLines %% CacheAssoc != 0")
	case pa.DirPointers < 0:
		return fmt.Errorf("memsys: DirPointers = %d, need >= 0", pa.DirPointers)
	case pa.KernelShards < 0:
		return fmt.Errorf("memsys: KernelShards = %d, need >= 0 (0 = serial kernel)", pa.KernelShards)
	case pa.KernelShards > MaxProcs:
		return fmt.Errorf("memsys: KernelShards = %d exceeds the %d-processor limit", pa.KernelShards, MaxProcs)
	}
	switch pa.ZOracle {
	case "", "broadcast", "perfect":
	default:
		return fmt.Errorf("memsys: unknown ZOracle %q", pa.ZOracle)
	}
	switch pa.FaultInjection {
	case "", "drop-update", "drop-inval":
	default:
		return fmt.Errorf("memsys: unknown FaultInjection %q", pa.FaultInjection)
	}
	switch pa.Topology {
	case "", "mesh", "torus", "xbar", "bus":
	case "hypercube":
		n := pa.Nodes()
		if n&(n-1) != 0 {
			return fmt.Errorf("memsys: hypercube needs a power-of-two node count, got %d", n)
		}
	case "hier":
		n := pa.Nodes()
		if n%HierClusterNodes != 0 {
			return fmt.Errorf("memsys: hier topology needs a multiple of %d nodes (4x4 clusters), got %d", HierClusterNodes, n)
		}
	default:
		return fmt.Errorf("memsys: unknown topology %q", pa.Topology)
	}
	return nil
}

// ShardCount returns the effective kernel shard count: KernelShards clamped
// to the node count. 0 selects the serial kernel.
func (pa Params) ShardCount() int {
	if pa.KernelShards <= 0 {
		return 0
	}
	if n := pa.Nodes(); pa.KernelShards > n {
		return n
	}
	return pa.KernelShards
}

// ShardOfNode maps a NUMA node to its kernel shard: contiguous, balanced
// node blocks. Node numbering is row-major across the mesh, so a shard is a
// band of adjacent rows — cross-shard messages always cross the band
// boundary, which is what makes the minimum cross-shard mesh latency a
// useful lookahead.
func (pa Params) ShardOfNode(node int) int {
	s := pa.ShardCount()
	if s <= 1 {
		return 0
	}
	return node * s / pa.Nodes()
}

// ShardOfProc maps an execution stream to its kernel shard via its home
// NUMA node.
func (pa Params) ShardOfProc(p int) int { return pa.ShardOfNode(pa.Node(p)) }

// Home returns the NUMA node owning the line containing addr, for the given
// coherence line size: lines are interleaved round-robin across nodes.
func (pa Params) Home(addr Addr, lineSize int) int {
	return int(Line(addr, lineSize) % Addr(pa.Nodes()))
}

// TransferCycles returns the per-link occupancy of a message of the given
// size in bytes, rounded up to a whole cycle.
func (pa Params) TransferCycles(bytes int) Time {
	c := pa.LinkCyclesPerByte * float64(bytes)
	t := Time(c)
	if float64(t) < c {
		t++
	}
	if t == 0 {
		t = 1
	}
	return t
}
