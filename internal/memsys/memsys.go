// Package memsys defines the types shared by every simulated memory system:
// the simulated address space, the architectural parameter block, the
// MemSystem interface that protocols implement, and the event counters used
// by the evaluation harness.
package memsys

import (
	"fmt"

	"zsim/internal/sim"
)

// Addr is a simulated shared-memory byte address.
type Addr uint64

// Time re-exports the kernel's virtual time for convenience.
type Time = sim.Time

// WordSize is the granularity of shared values: every simulated element is
// an 8-byte word (internal/shm re-exports it for the typed array views).
const WordSize = 8

// WordIndex returns addr's dense word-table index (addr / WordSize). The
// shared heap is a bump allocator, so word indices are dense from zero —
// the property the Paged word tables exploit.
func WordIndex(addr Addr) uint64 { return uint64(addr / WordSize) }

// Line returns the cache-line index of addr for the given line size.
func Line(addr Addr, lineSize int) Addr { return addr / Addr(lineSize) }

// MaxProcs is the largest supported processor count. The directory's
// presence sets (directory.Bitset) are fixed arrays of MaxProcs/64 64-bit
// words, and the stock topologies are validated up to this node count
// (a 32×32 mesh at one hardware thread per node). Dir-i limited-pointer
// directories (Params.DirPointers) are the documented scalable alternative
// when full-map presence sets get too wide to be realistic hardware.
const MaxProcs = 1024

// HierClusterNodes is the cluster size of the hierarchical ("hier")
// topology: every cluster is the paper's 4×4 mesh, and clusters are tiled
// in a higher-level mesh routed through each cluster's gateway node.
const HierClusterNodes = 16

// Kind identifies a memory system implementation.
type Kind string

const (
	KindZMachine Kind = "zmc"     // the paper's zero-overhead reference machine
	KindPRAM     Kind = "pram"    // unit-cost memory (PRAM comparison, §5)
	KindSCInv    Kind = "scinv"   // sequentially consistent write-invalidate baseline
	KindRCInv    Kind = "rcinv"   // RC + Berkeley-style write-invalidate
	KindRCUpd    Kind = "rcupd"   // RC + Firefly-style write-update + merge buffer
	KindRCComp   Kind = "rccomp"  // RC + competitive update (threshold self-invalidation)
	KindRCAdapt  Kind = "rcadapt" // RC + adaptive selective-write protocol

	// KindRCSync is this reproduction's implementation of the paper's §6
	// proposal: use synchronization only for control flow and a separate
	// mechanism for data flow. Releases never stall draining buffers;
	// instead the release carries a write-completion watermark through the
	// synchronization object, delaying only the *consumer's* grant until
	// the producer's writes are globally performed.
	KindRCSync Kind = "rcsync"
)

// Kinds lists every memory system, in the order the paper's figures use
// (z-machine first, then the four RC systems), followed by the extra
// baselines this reproduction adds.
func Kinds() []Kind {
	return []Kind{KindZMachine, KindRCInv, KindRCUpd, KindRCAdapt, KindRCComp, KindRCSync, KindSCInv, KindPRAM}
}

// FigureKinds lists the five systems that appear in Figures 2–5.
func FigureKinds() []Kind {
	return []Kind{KindZMachine, KindRCInv, KindRCUpd, KindRCAdapt, KindRCComp}
}

// MemSystem is a simulated shared-memory system. Methods are invoked by the
// machine layer with the issuing processor already holding the global-time
// token (see internal/sim), so implementations may mutate state freely.
//
// Each method returns the stall imposed on the issuing processor, classified
// per the paper's overhead taxonomy: Read returns read-stall cycles, Write
// returns write-stall cycles, and Release returns buffer-flush cycles.
type MemSystem interface {
	Name() Kind

	// Read models a shared read of `size` bytes at addr issued at `now`.
	Read(p int, addr Addr, size int, now Time) (stall Time)

	// Write models a shared write of `size` bytes at addr issued at `now`.
	Write(p int, addr Addr, size int, now Time) (stall Time)

	// Release is invoked at release-type synchronization points (unlock,
	// barrier arrival). Under release consistency the memory system must
	// guarantee all prior writes are globally performed, which may stall
	// the processor draining write buffers ("buffer flush" in the paper).
	Release(p int, now Time) (stall Time)

	// Acquire is invoked at acquire-type synchronization points (lock
	// grant, barrier exit).
	Acquire(p int, now Time) (stall Time)

	// Counters exposes the system's event counters.
	Counters() *Counters
}

// AccessClass identifies the kind of machine trap a scope probe is asked
// to classify (see ScopedSystem).
type AccessClass uint8

const (
	AccessLoad  AccessClass = iota // LoadU64: a shared read
	AccessStore                    // StoreU64: a shared write
	AccessSwap                     // AtomicSwapU64: a read + write at one point
)

// ScopedSystem is implemented by memory systems that can classify an access
// before it is issued (the PDES phase-2 seam, DESIGN §15). ScopeOf reports
// whether the size-byte access processor p would issue at addr at time now
// is provably node-private: executing it would touch only state owned by
// p's node (its cache, its store/merge buffer, its per-processor counters)
// with no directory transition, no network traffic, and no effect on any
// other processor's timing or on any word another node could concurrently
// access. The machine layer then dispatches the trap through
// sim.Proc.SyncScoped, letting provably-private accesses run inside local
// shard windows while everything else serializes at window boundaries.
//
// Contract: ScopeOf must be pure — no counter increments, no recency
// updates, no allocation in paged tables — because the kernel evaluates it
// exactly once per trap, at the serial-prefix point that dispatches the
// operation, possibly while other shards are concurrently draining
// local-only windows of their own. It must be conservative: when in doubt,
// return false (global). Returning true for an access that turns out to
// mutate shared state is a soundness bug; the kernel's watermark/curScope
// tripwires turn such overclaims into deterministic panics.
type ScopedSystem interface {
	ScopeOf(p int, addr Addr, size int, now Time, class AccessClass) (local bool)
}

// TokenSystem is implemented by memory systems that decouple data flow
// from synchronization (the paper's §6 architectural implication): a
// release does not stall the producer; the synchronization primitive
// instead delays the consumer's grant to the producer's write-completion
// watermark.
type TokenSystem interface {
	// ReleaseWatermark returns the virtual time by which every write
	// issued by p before now is globally performed.
	ReleaseWatermark(p int, now Time) Time
}

// Counters aggregates protocol events for the whole run plus per-processor
// access counts (Table 1 reports the number of writes per application).
//
//zlint:confine global run-wide event tallies are bumped from whichever processor's trap triggers the event; serialized by the trap token (phase-3 worklist)
type Counters struct {
	Reads       uint64 // shared reads issued
	Writes      uint64 // shared writes issued
	ReadMisses  uint64 // reads that left the processor's cache
	WriteMisses uint64 // writes that left the processor's cache/merge buffer
	ColdMisses  uint64 // read misses to lines never cached by that processor

	Messages uint64 // network messages of any kind
	DataMsgs uint64 // messages carrying data (replies, updates, writebacks)
	Bytes    uint64 // total bytes injected into the network

	Invalidations     uint64 // invalidation messages sent to sharers
	Updates           uint64 // update messages sent to sharers
	UselessUpdates    uint64 // updates delivered to a sharer that never re-read the line
	SelfInvalidations uint64 // competitive/adaptive protocol self- or re-init invalidations
	Prefetches        uint64 // prefetch requests issued (extension E11)
	PointerEvictions  uint64 // sharers displaced by a full Dir-i directory (extension E18)

	NetworkCycles uint64 // total cycles of link occupancy injected (Table 1)

	//zlint:confine shard CountRead writes only the issuing processor's own cell (local shard windows count here to avoid a cross-shard race)
	PerProcReads []uint64
	//zlint:confine shard CountWrite writes only the issuing processor's own cell (local shard windows count here to avoid a cross-shard race)
	PerProcWrites []uint64
}

// NewCounters returns counters sized for p processors.
func NewCounters(p int) *Counters {
	return &Counters{PerProcReads: make([]uint64, p), PerProcWrites: make([]uint64, p)}
}

// CountRead records a read issued by processor p. Only the per-processor
// cell is written — node-private cache hits are counted from inside local
// shard windows, where a shared Reads++ would race across shards. The
// aggregate Reads/Writes totals are derived by Fold at harvest time.
func (c *Counters) CountRead(p int) {
	c.PerProcReads[p]++
}

// CountWrite records a write issued by processor p (per-processor cell
// only; see CountRead).
func (c *Counters) CountWrite(p int) {
	c.PerProcWrites[p]++
}

// Fold derives the aggregate Reads/Writes totals from the per-processor
// counts. Idempotent; every protocol's Counters() accessor calls it so
// consumers always see consistent totals.
func (c *Counters) Fold() *Counters {
	var r, w uint64
	for _, n := range c.PerProcReads {
		r += n
	}
	for _, n := range c.PerProcWrites {
		w += n
	}
	c.Reads, c.Writes = r, w
	return c
}

func (c *Counters) String() string {
	return fmt.Sprintf("reads=%d writes=%d rmiss=%d wmiss=%d cold=%d msgs=%d bytes=%d inval=%d upd=%d selfinv=%d",
		c.Reads, c.Writes, c.ReadMisses, c.WriteMisses, c.ColdMisses,
		c.Messages, c.Bytes, c.Invalidations, c.Updates, c.SelfInvalidations)
}
