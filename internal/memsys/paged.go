package memsys

// This file implements the paged flat tables backing the simulator's
// per-access hot state. The shared heap (internal/shm) is a bump allocator,
// so simulated addresses — and everything derived from them: word indices,
// line numbers, per-home directory slots — are dense from zero. That makes
// a paged array strictly better than a hash map for hot-path state: an
// index is split into page number (i >> pageShift) and offset (i & pageMask),
// pages are fixed-size slabs allocated on first touch, and a steady-state
// access is two array indexings with no hashing, no per-entry pointers, and
// no allocation.

const (
	// pageShift sets the page size: 1<<pageShift elements per page. 4096
	// elements keeps the page vector tiny for realistic heaps while bounding
	// the over-allocation of a sparse touch to one slab.
	pageShift = 12
	pageLen   = 1 << pageShift
	pageMask  = pageLen - 1
)

// Paged is a flat table over a dense uint64 index space, organized as
// fixed-size pages allocated on first touch. The zero value is an empty
// table ready for use. Element pointers returned by At and Peek remain valid
// for the table's lifetime: pages are never moved or freed.
//
// Paged is not safe for concurrent use, matching the maps it replaces (the
// simulation kernel serializes globally visible operations).
type Paged[T any] struct {
	//zlint:confine carrier pages are grown and written only through owning tables that are themselves home- or shard-confined
	pages [][]T
}

// At returns a pointer to element i, allocating its page on first touch.
// Steady-state calls (page already present) perform no allocation.
func (t *Paged[T]) At(i uint64) *T {
	pi := i >> pageShift
	if pi >= uint64(len(t.pages)) {
		t.grow(pi)
	}
	p := t.pages[pi]
	if p == nil {
		p = make([]T, pageLen)
		t.pages[pi] = p
	}
	return &p[i&pageMask]
}

// Peek returns a pointer to element i, or nil when its page was never
// touched. It never allocates.
func (t *Paged[T]) Peek(i uint64) *T {
	pi := i >> pageShift
	if pi >= uint64(len(t.pages)) || t.pages[pi] == nil {
		return nil
	}
	return &t.pages[pi][i&pageMask]
}

// Load returns element i by value, or the zero value when its page was
// never touched. It never allocates — the right read primitive for state
// where "absent" and "zero" coincide (shared memory reads as zero before
// the first write).
func (t *Paged[T]) Load(i uint64) T {
	if p := t.Peek(i); p != nil {
		return *p
	}
	var zero T
	return zero
}

// grow extends the page vector to cover page pi (amortized: it happens only
// when the heap's high-water mark crosses into a new page).
func (t *Paged[T]) grow(pi uint64) {
	for uint64(len(t.pages)) <= pi {
		t.pages = append(t.pages, nil)
	}
}

// ForEach visits every element of every allocated page in ascending index
// order. Untouched elements of a touched page are visited too (they hold
// the zero value); callers that need presence must keep a valid bit in T.
// The table must not grow during iteration.
func (t *Paged[T]) ForEach(f func(i uint64, v *T)) {
	for pi := range t.pages {
		p := t.pages[pi]
		if p == nil {
			continue
		}
		base := uint64(pi) << pageShift
		for o := range p {
			f(base+uint64(o), &p[o])
		}
	}
}

// Pages returns the number of allocated pages (memory accounting and tests).
func (t *Paged[T]) Pages() int {
	n := 0
	for _, p := range t.pages {
		if p != nil {
			n++
		}
	}
	return n
}
