// Package directory implements the full-map directories of the simulated
// CC-NUMA machine. Each node keeps a directory entry for every cache line
// whose home it is (lines are interleaved across nodes); the entry records
// the line's global coherence state, the presence bits of the sharing
// processors, and protocol-specific metadata: the "special" state of the
// paper's adaptive selective-write protocol and the outstanding-write
// availability timestamp implementing the z-machine's counter mechanism.
package directory

import (
	"fmt"
	"math/bits"

	"zsim/internal/memsys"
)

// State is a directory entry's global state.
type State uint8

const (
	// Uncached: no processor holds the line.
	Uncached State = iota
	// SharedClean: one or more read-only copies; memory is up to date.
	SharedClean
	// Dirty: exactly one processor owns the line in Modified state.
	Dirty
	// Special: adaptive-protocol state — the line has an established
	// sharing pattern and writes are propagated as selective updates to
	// the presence-bit set (paper §4, RCadapt).
	Special
)

func (s State) String() string {
	switch s {
	case Uncached:
		return "U"
	case SharedClean:
		return "S"
	case Dirty:
		return "D"
	case Special:
		return "X"
	}
	return "?"
}

// BitsetWords is the width of a presence set in 64-bit words, sized for
// memsys.MaxProcs processors.
const BitsetWords = memsys.MaxProcs / 64

// Bitset is a set of processor ids covering memsys.MaxProcs processors.
// The zero value is the empty set.
//
// The representation is width-adaptive so the many-core cap costs small
// machines nothing: processors 0–63 live in one inline word (the entire
// footprint of a machine at or below the seed's 64-processor ceiling, and
// the entry stays compact inside the paged directory tables), while the
// high words are allocated at most once per set, the first time a
// processor >= 64 is added. Machines with at most 64 processors therefore
// never allocate (the per-request hot path stays allocation-free, pinned
// by AllocsPerRun); larger machines pay one amortized allocation per
// directory entry. A Bitset must not be copied once a high processor has
// been added (the high words would be shared); the directory only ever
// hands out pointers to entries in place.
//
//zlint:confine home presence bits live inside a home node's directory entry; every trap path reaches them through Entry(addr), indexed by the line's home
type Bitset struct {
	w0  uint64                   // processors 0..63
	ext *[BitsetWords - 1]uint64 // processors 64..MaxProcs-1, nil until needed
}

// Add inserts processor p.
func (b *Bitset) Add(p int) {
	if uint(p) < 64 {
		b.w0 |= 1 << uint(p)
		return
	}
	if b.ext == nil {
		b.ext = new([BitsetWords - 1]uint64)
	}
	b.ext[uint(p)/64-1] |= 1 << (uint(p) % 64)
}

// Remove deletes processor p.
func (b *Bitset) Remove(p int) {
	if uint(p) < 64 {
		b.w0 &^= 1 << uint(p)
		return
	}
	if b.ext != nil {
		b.ext[uint(p)/64-1] &^= 1 << (uint(p) % 64)
	}
}

// Has reports membership of processor p.
func (b *Bitset) Has(p int) bool {
	if uint(p) < 64 {
		return b.w0&(1<<uint(p)) != 0
	}
	return b.ext != nil && b.ext[uint(p)/64-1]&(1<<(uint(p)%64)) != 0
}

// Count returns the set's cardinality.
func (b *Bitset) Count() int {
	n := bits.OnesCount64(b.w0)
	if b.ext != nil {
		for _, w := range b.ext {
			n += bits.OnesCount64(w)
		}
	}
	return n
}

// Clear empties the set. An allocated high-word block is kept (zeroed) so
// a recycled entry does not reallocate it.
func (b *Bitset) Clear() {
	b.w0 = 0
	if b.ext != nil {
		*b.ext = [BitsetWords - 1]uint64{}
	}
}

// ForEach visits members in ascending processor order. Iteration reads each
// word once before visiting its members, so removing already-visited or
// not-yet-visited members of the same word from inside f does not disturb
// the traversal (the update protocols prune sharers mid-iteration).
func (b *Bitset) ForEach(f func(p int)) {
	for w := b.w0; w != 0; w &= w - 1 {
		f(bits.TrailingZeros64(w))
	}
	if b.ext == nil {
		return
	}
	for i := range b.ext {
		for w := b.ext[i]; w != 0; w &= w - 1 {
			f((i+1)*64 + bits.TrailingZeros64(w))
		}
	}
}

// List returns the members in ascending order.
func (b *Bitset) List() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(p int) { out = append(out, p) })
	return out
}

// Entry is a directory entry for one cache line.
//
//zlint:confine home an entry lives in homes[home(line)]; every trap path reaches it through Entry/Lookup, indexed by the accessed line's home node
type Entry struct {
	State   State
	Sharers Bitset
	Owner   int // valid when State == Dirty

	// AvailableAt implements the z-machine's per-block counter: the time by
	// which all outstanding writes to the block have propagated to every
	// consumer. A z-machine read before this time stalls (inherent
	// communication cost); the counter-is-zero condition of the paper is
	// exactly now >= AvailableAt.
	AvailableAt memsys.Time

	// Version counts the write transactions that have made new contents of
	// the line globally visible (ownership acquisitions and update fan-outs).
	// Every valid cached copy must carry the entry's current version; a copy
	// left behind is a stale copy, the defect the conformance checker's
	// staleness invariant detects.
	Version uint64
}

func (e *Entry) String() string {
	return fmt.Sprintf("{%s sharers=%v owner=%d avail=%d v%d}", e.State, e.Sharers.List(), e.Owner, e.AvailableAt, e.Version)
}

// dslot is one paged-table slot of a home's directory: the entry plus a
// valid bit distinguishing a touched line from the zero value.
//
//zlint:confine home slots live in a home's paged table; the valid bit is set on the home-indexed first touch
type dslot struct {
	e     Entry
	valid bool
}

// Directory is the collection of all nodes' directories. Each home keeps
// its entries in a paged flat table indexed by the line's per-home slot
// (line / procs — lines are interleaved round-robin, so the slots of one
// home are dense from zero). An entry access on the per-request hot path is
// two array indexings: no hashing, no per-entry pointer, no steady-state
// allocation.
type Directory struct {
	procs    int
	lineSize int
	homes    []memsys.Paged[dslot]
	// allocs counts the entries ever created, per home (directory occupancy
	// growth). The counter is split by home — like the entries themselves —
	// so first-touch bookkeeping stays inside the home's partition instead
	// of contending on one machine-wide cell; Allocs folds the slices.
	//
	//zlint:confine home first-touch bookkeeping increments allocs[home(line)], the same partition as the entry being created
	allocs []uint64
}

// New creates directories for every node.
func New(procs, lineSize int) *Directory {
	return &Directory{
		procs:    procs,
		lineSize: lineSize,
		homes:    make([]memsys.Paged[dslot], procs),
		allocs:   make([]uint64, procs),
	}
}

// Home returns the home node of the line containing addr.
func (d *Directory) Home(addr memsys.Addr) int {
	return int(memsys.Line(addr, d.lineSize) % memsys.Addr(d.procs))
}

// Entry returns the directory entry for the line containing addr, creating
// an Uncached entry on first touch.
func (d *Directory) Entry(addr memsys.Addr) *Entry {
	line := memsys.Line(addr, d.lineSize)
	home := int(line % memsys.Addr(d.procs))
	s := d.homes[home].At(uint64(line) / uint64(d.procs))
	if !s.valid {
		s.valid = true
		d.allocs[home]++
	}
	return &s.e
}

// Lookup returns the entry if it exists (the line has been touched).
func (d *Directory) Lookup(addr memsys.Addr) (*Entry, bool) {
	line := memsys.Line(addr, d.lineSize)
	home := int(line % memsys.Addr(d.procs))
	s := d.homes[home].Peek(uint64(line) / uint64(d.procs))
	if s == nil || !s.valid {
		return nil, false
	}
	return &s.e, true
}

// Allocs returns the number of entries ever created. Entries are never
// deallocated, so this equals Entries(); it exists as a stable counter for
// the metrics layer's directory-occupancy accounting.
func (d *Directory) Allocs() uint64 {
	var n uint64
	for _, a := range d.allocs {
		n += a
	}
	return n
}

// Entries returns the number of allocated entries across all homes (equal
// to Allocs, since entries are never deallocated).
func (d *Directory) Entries() int { return int(d.Allocs()) }

// LineSize returns the directory's coherence unit.
func (d *Directory) LineSize() int { return d.lineSize }

// ForEach visits every allocated entry, home by home in ascending slot
// order. Callers must not mutate the directory during iteration; it exists
// for invariant checking and debugging.
func (d *Directory) ForEach(f func(line memsys.Addr, e *Entry)) {
	for home := range d.homes {
		d.homes[home].ForEach(func(slot uint64, s *dslot) {
			if s.valid {
				f(memsys.Addr(slot)*memsys.Addr(d.procs)+memsys.Addr(home), &s.e)
			}
		})
	}
}
