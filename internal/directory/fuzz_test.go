package directory

import (
	"testing"

	"zsim/internal/memsys"
)

// FuzzBitset: the bitset agrees with a reference map under arbitrary
// add/remove sequences (first-word ids only — the pre-multi-word corpus
// stays valid; FuzzBitsetWide covers the full id range).
func FuzzBitset(f *testing.F) {
	f.Add([]byte{0x81, 0x02, 0x83})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var b Bitset
		ref := map[int]bool{}
		for _, op := range ops {
			p := int(op % 64)
			if op&0x80 != 0 {
				b.Add(p)
				ref[p] = true
			} else {
				b.Remove(p)
				delete(ref, p)
			}
		}
		if b.Count() != len(ref) {
			t.Fatalf("count %d != %d", b.Count(), len(ref))
		}
		prev := -1
		b.ForEach(func(p int) {
			if !ref[p] {
				t.Fatalf("phantom member %d", p)
			}
			if p <= prev {
				t.Fatalf("ForEach order violated: %d after %d", p, prev)
			}
			prev = p
		})
	})
}

// FuzzBitsetWide: the multi-word bitset agrees with a reference map across
// the full processor-id range. Each op is two bytes: the high bit of the
// first selects add/remove, the remaining 15 bits pick an id modulo
// MaxProcs — so sequences constantly cross 64-bit word boundaries. Seeds
// pin the boundary widths 1, 65, 129, and 1024 (ids 0, 64, 128, 1023).
func FuzzBitsetWide(f *testing.F) {
	f.Add([]byte{0x80, 0x00})                                     // width 1: id 0
	f.Add([]byte{0x80, 0x40, 0x80, 0x3f, 0x00, 0x40})             // width 65: ids 63/64 across the first boundary
	f.Add([]byte{0x80, 0x80, 0x80, 0x7f, 0x00, 0x80})             // width 129: ids 127/128
	f.Add([]byte{0x83, 0xff, 0x80, 0x00, 0x03, 0xff})             // width 1024: id 1023 add/remove
	f.Add([]byte{0x80, 0x3f, 0x80, 0x40, 0x80, 0x41, 0x00, 0x40}) // straddle 63/64/65
	f.Fuzz(func(t *testing.T, ops []byte) {
		var b Bitset
		ref := map[int]bool{}
		for i := 0; i+1 < len(ops); i += 2 {
			p := (int(ops[i]&0x7f)<<8 | int(ops[i+1])) % memsys.MaxProcs
			if ops[i]&0x80 != 0 {
				b.Add(p)
				ref[p] = true
			} else {
				b.Remove(p)
				delete(ref, p)
			}
		}
		if b.Count() != len(ref) {
			t.Fatalf("count %d != %d", b.Count(), len(ref))
		}
		prev := -1
		b.ForEach(func(p int) {
			if !ref[p] {
				t.Fatalf("phantom member %d", p)
			}
			if p <= prev {
				t.Fatalf("ForEach order violated: %d after %d", p, prev)
			}
			prev = p
		})
		for p := range ref {
			if !b.Has(p) {
				t.Fatalf("lost member %d", p)
			}
		}
	})
}
