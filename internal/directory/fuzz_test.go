package directory

import "testing"

// FuzzBitset: the bitset agrees with a reference map under arbitrary
// add/remove sequences.
func FuzzBitset(f *testing.F) {
	f.Add([]byte{0x81, 0x02, 0x83})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var b Bitset
		ref := map[int]bool{}
		for _, op := range ops {
			p := int(op % 64)
			if op&0x80 != 0 {
				b.Add(p)
				ref[p] = true
			} else {
				b.Remove(p)
				delete(ref, p)
			}
		}
		if b.Count() != len(ref) {
			t.Fatalf("count %d != %d", b.Count(), len(ref))
		}
		prev := -1
		b.ForEach(func(p int) {
			if !ref[p] {
				t.Fatalf("phantom member %d", p)
			}
			if p <= prev {
				t.Fatalf("ForEach order violated: %d after %d", p, prev)
			}
			prev = p
		})
	})
}
