package directory

import (
	"testing"
	"testing/quick"

	"zsim/internal/memsys"
)

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if b.Count() != 0 {
		t.Fatal("new bitset not empty")
	}
	b.Add(3)
	b.Add(7)
	b.Add(3) // idempotent
	if !b.Has(3) || !b.Has(7) || b.Has(0) {
		t.Fatalf("membership wrong: %v", b.List())
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d, want 2", b.Count())
	}
	b.Remove(3)
	if b.Has(3) || b.Count() != 1 {
		t.Fatalf("remove failed: %v", b.List())
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("clear failed")
	}
}

func TestBitsetListAscending(t *testing.T) {
	var b Bitset
	for _, p := range []int{9, 2, 63, 0, 15} {
		b.Add(p)
	}
	want := []int{0, 2, 9, 15, 63}
	got := b.List()
	if len(got) != len(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v, want %v", got, want)
		}
	}
}

// Property: add/remove algebra — membership reflects the last operation.
func TestBitsetProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var b Bitset
		ref := map[int]bool{}
		for _, op := range ops {
			p := int(op % 64)
			if op&0x80 != 0 {
				b.Add(p)
				ref[p] = true
			} else {
				b.Remove(p)
				delete(ref, p)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for p := range ref {
			if !b.Has(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBitsetWide exercises processor ids beyond the first word: word
// boundaries (63/64/65, 127/128/129) and the very last id the presence set
// can hold (memsys.MaxProcs-1).
func TestBitsetWide(t *testing.T) {
	ids := []int{0, 1, 63, 64, 65, 127, 128, 129, 511, 512, 1022, 1023}
	var b Bitset
	for _, p := range ids {
		b.Add(p)
	}
	if b.Count() != len(ids) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(ids))
	}
	for _, p := range ids {
		if !b.Has(p) {
			t.Fatalf("missing member %d", p)
		}
	}
	// Neighbours across word boundaries must not alias.
	for _, p := range []int{2, 62, 66, 126, 130, 510, 513, 1021} {
		if b.Has(p) {
			t.Fatalf("phantom member %d", p)
		}
	}
	got := b.List()
	for i, p := range ids {
		if got[i] != p {
			t.Fatalf("List = %v, want %v", got, ids)
		}
	}
	// Removing a member in one word leaves the others untouched.
	b.Remove(64)
	if b.Has(64) || !b.Has(63) || !b.Has(65) || b.Count() != len(ids)-1 {
		t.Fatalf("word-boundary remove corrupted neighbours: %v", b.List())
	}
	b.Clear()
	if b.Count() != 0 || b.Has(1023) {
		t.Fatal("Clear left wide members behind")
	}
}

// TestBitsetWidthConstant pins the presence set's capacity to the
// processor cap: BitsetWords*64 ids must cover exactly memsys.MaxProcs.
func TestBitsetWidthConstant(t *testing.T) {
	if BitsetWords*64 != memsys.MaxProcs {
		t.Fatalf("BitsetWords = %d does not cover MaxProcs = %d", BitsetWords, memsys.MaxProcs)
	}
	var b Bitset
	b.Add(memsys.MaxProcs - 1)
	if !b.Has(memsys.MaxProcs-1) || b.Count() != 1 {
		t.Fatal("last representable processor id not stored")
	}
}

// TestBitsetForEachRemoveDuringIteration pins the snapshot semantics the
// update protocols rely on: removing the visited member (or any member of
// an already-read word) inside the callback must not disturb traversal.
func TestBitsetForEachRemoveDuringIteration(t *testing.T) {
	var b Bitset
	ids := []int{3, 40, 63, 64, 100, 500, 1023}
	for _, p := range ids {
		b.Add(p)
	}
	var got []int
	b.ForEach(func(p int) {
		got = append(got, p)
		b.Remove(p)
	})
	if len(got) != len(ids) {
		t.Fatalf("visited %v, want %v", got, ids)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("visited %v, want %v", got, ids)
		}
	}
	if b.Count() != 0 {
		t.Fatalf("members survived self-removal: %v", b.List())
	}
}

func TestEntryCreatedOnDemand(t *testing.T) {
	d := New(16, 32)
	if d.Entries() != 0 {
		t.Fatal("new directory not empty")
	}
	e := d.Entry(0x100)
	if e.State != Uncached || e.Sharers.Count() != 0 {
		t.Fatalf("fresh entry should be Uncached/empty: %v", e)
	}
	if d.Entries() != 1 {
		t.Fatalf("Entries = %d, want 1", d.Entries())
	}
	// Same line, same entry.
	e2 := d.Entry(0x100 + 31)
	if e != e2 {
		t.Fatal("addresses within a line must share an entry")
	}
	// Different line, different entry.
	if d.Entry(0x100+32) == e {
		t.Fatal("different lines must not share entries")
	}
}

func TestLookupDoesNotAllocate(t *testing.T) {
	d := New(16, 32)
	if _, ok := d.Lookup(0x40); ok {
		t.Fatal("lookup of untouched line should miss")
	}
	if d.Entries() != 0 {
		t.Fatal("Lookup must not allocate")
	}
	d.Entry(0x40)
	if _, ok := d.Lookup(0x40); !ok {
		t.Fatal("lookup after Entry should hit")
	}
}

func TestHomeMatchesParams(t *testing.T) {
	d := New(16, 32)
	p := memsys.Default(16)
	for a := memsys.Addr(0); a < 4096; a += 17 {
		if d.Home(a) != p.Home(a, 32) {
			t.Fatalf("Home(%#x) mismatch", a)
		}
	}
}

func TestEntryStatePersists(t *testing.T) {
	d := New(4, 32)
	e := d.Entry(64)
	e.State = Dirty
	e.Owner = 2
	e.Sharers.Add(2)
	e.AvailableAt = 99
	e2 := d.Entry(64)
	if e2.State != Dirty || e2.Owner != 2 || !e2.Sharers.Has(2) || e2.AvailableAt != 99 {
		t.Fatalf("entry state lost: %v", e2)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{Uncached: "U", SharedClean: "S", Dirty: "D", Special: "X", State(42): "?"} {
		if s.String() != want {
			t.Errorf("%d.String() = %s, want %s", s, s.String(), want)
		}
	}
}

func TestForEachOrder(t *testing.T) {
	var b Bitset
	b.Add(5)
	b.Add(1)
	b.Add(10)
	var got []int
	b.ForEach(func(p int) { got = append(got, p) })
	want := []int{1, 5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
}

func TestEntryStringAndLineSize(t *testing.T) {
	d := New(4, 32)
	if d.LineSize() != 32 {
		t.Fatalf("LineSize = %d", d.LineSize())
	}
	e := d.Entry(64)
	e.State = Dirty
	e.Owner = 2
	e.Sharers.Add(2)
	if s := e.String(); s == "" {
		t.Fatal("entry String empty")
	}
}

func TestForEachVisitsAllEntries(t *testing.T) {
	d := New(4, 32)
	for i := 0; i < 10; i++ {
		d.Entry(memsys.Addr(i * 32))
	}
	n := 0
	d.ForEach(func(line memsys.Addr, e *Entry) {
		n++
		if e == nil {
			t.Fatal("nil entry")
		}
	})
	if n != 10 {
		t.Fatalf("visited %d entries, want 10", n)
	}
}
