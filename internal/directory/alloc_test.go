package directory

import (
	"testing"

	"zsim/internal/memsys"
)

// Directory entries sit on every miss's critical path; once a line has been
// touched, Entry and Lookup must be pure array indexing with no allocation.
func TestDirectorySteadyStateZeroAlloc(t *testing.T) {
	d := New(16, 32)
	for a := memsys.Addr(0); a < 16*32*8; a += 32 {
		d.Entry(a)
	}
	if n := testing.AllocsPerRun(200, func() {
		e := d.Entry(5 * 32)
		e.Sharers.Add(3)
		e.Sharers.Remove(3)
		if _, ok := d.Lookup(9 * 32); !ok {
			t.Fatal("touched line must be found")
		}
	}); n != 0 {
		t.Fatalf("steady-state directory ops allocate %v times per run", n)
	}
}
