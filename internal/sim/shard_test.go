package sim

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// evenOdd assigns processors to shards by parity — deliberately not
// contiguous, to exercise arbitrary assignments.
func evenOdd(p int) int { return p % 2 }

// blockShards splits n processors into s contiguous blocks.
func blockShards(n, s int) func(int) int {
	return func(p int) int { return p * s / n }
}

// TestShardedGlobalOrderMatchesSerial drives an all-global-scope workload
// (every trap is Sync) on the serial engine and on sharded engines at 1, 2,
// and 4 shards, and requires the dispatch order of global operations, the
// finish time, and the scheduler counters to be bit-identical: for machine
// workloads (which are all-global) the sharded kernel must be
// indistinguishable from the serial one.
func TestShardedGlobalOrderMatchesSerial(t *testing.T) {
	const n = 8
	type outcome struct {
		order  []int
		finish Time
		sw     uint64
		fp     uint64
		bl     uint64
	}
	exec := func(e *Engine) outcome {
		var o outcome
		o.finish = e.Run(func(p *Proc) {
			for i := 0; i < 6; i++ {
				p.Advance(Time(1 + (p.ID()*7+i*3)%5))
				p.Sync()
				o.order = append(o.order, p.ID())
			}
		})
		o.sw, o.fp, o.bl = e.Switches(), e.FastPathHits(), e.Blocks()
		return o
	}

	want := exec(NewEngine(n))
	for _, shards := range []int{1, 2, 4} {
		got := exec(NewEngineSharded(n, shards, blockShards(n, shards)))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: outcome diverged from serial:\n got %+v\nwant %+v", shards, got, want)
		}
	}
	// A non-contiguous assignment must not change the schedule either.
	if got := exec(NewEngineSharded(n, 2, evenOdd)); !reflect.DeepEqual(got, want) {
		t.Errorf("even/odd shards: outcome diverged from serial:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardedLocalWindowsRunConcurrently pins the point of sharding: with a
// lookahead covering the whole run, an all-local workload finishes with
// (nearly) every trap on the per-shard fast path and advances at most a
// handful of windows, i.e. shards run their processors without any
// per-operation coordination. (Lookahead is what licenses the concurrency:
// with zero lookahead the conservative protocol opens no windows at all.)
func TestShardedLocalWindowsRunConcurrently(t *testing.T) {
	const n, iters = 4, 1000
	e := NewEngineSharded(n, n, blockShards(n, n))
	e.SetLookahead(iters + 1)
	finish := e.Run(func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.Advance(1)
			p.SyncLocal()
		}
	})
	if finish != iters {
		t.Errorf("finish = %d, want %d", finish, iters)
	}
	if e.Windows() == 0 {
		t.Error("no local window advanced for an all-local workload")
	}
	// First dispatch of each processor is a serialized global-scope start;
	// after that every SyncLocal should hit the per-shard fast path.
	if hits := e.FastPathHits(); hits < uint64(n*(iters-2)) {
		t.Errorf("fast-path hits = %d, want >= %d", hits, n*(iters-2))
	}
}

// TestShardedLocalDeterministic runs a mixed local/global workload twice,
// at several shard counts and several lookaheads: per-processor results
// must be identical everywhere (local operations only touch
// processor-private state, so the window protocol cannot change them). The
// workload has no wake-ups, so every lookahead is contract-valid.
func TestShardedLocalDeterministic(t *testing.T) {
	const n = 8
	exec := func(e *Engine) ([n]Time, Time) {
		var clocks [n]Time
		finish := e.Run(func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Advance(Time(1 + (p.ID()+i)%3))
				if i%5 == 0 {
					p.Sync() // periodic global operation bounds the windows
				} else {
					p.SyncLocal()
				}
			}
			clocks[p.ID()] = p.Clock()
		})
		return clocks, finish
	}
	wantClocks, wantFinish := exec(NewEngine(n))
	for _, shards := range []int{1, 2, 4} {
		for _, lookahead := range []Time{0, 1, 5, 1000} {
			for rep := 0; rep < 3; rep++ {
				e := NewEngineSharded(n, shards, blockShards(n, shards))
				e.SetLookahead(lookahead)
				clocks, finish := exec(e)
				if clocks != wantClocks || finish != wantFinish {
					t.Fatalf("shards=%d lookahead=%d rep=%d: clocks=%v finish=%d, want %v / %d",
						shards, lookahead, rep, clocks, finish, wantClocks, wantFinish)
				}
			}
		}
	}
}

// TestShardedBlockUnblock exercises a cross-shard wake-up from a
// global-scope operation: P1 (shard 1) parks, P0 (shard 0) wakes it at a
// later time; the woken processor resumes with its clock advanced, exactly
// as on the serial engine.
func TestShardedBlockUnblock(t *testing.T) {
	e := NewEngineSharded(2, 2, evenOdd)
	var woke Time
	finish := e.Run(func(p *Proc) {
		if p.ID() == 1 {
			p.Block("waiting for P0")
			woke = p.Clock()
			return
		}
		p.Advance(100)
		p.Sync()
		e.Proc(1).Unblock(p.Clock() + 7)
	})
	if woke != 107 {
		t.Errorf("woken clock = %d, want 107", woke)
	}
	if finish != 107 {
		t.Errorf("finish = %d, want 107", finish)
	}
	if e.CrossShardUnblocks() != 1 {
		t.Errorf("cross-shard unblocks = %d, want 1", e.CrossShardUnblocks())
	}
}

// TestShardedUnblockFromWindowPanics pins the safety rule: a wake-up from
// inside a local window (a local-scope operation) is a contract violation
// and must panic rather than race on another shard's run queue. The panic
// fires on the offending processor's goroutine, so the body recovers it
// inline; the never-woken waiter then deadlocks the run, which the test
// recovers (exercising the sharded drain on the way out).
func TestShardedUnblockFromWindowPanics(t *testing.T) {
	e := NewEngineSharded(2, 2, evenOdd)
	e.SetLookahead(2) // a positive lookahead is what opens local windows
	var msg string
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no deadlock panic after the aborted wake-up")
			}
		}()
		e.Run(func(p *Proc) {
			if p.ID() == 1 {
				p.Block("waiting forever")
				return
			}
			// Two local steps: the first traps at clock 5, beyond the
			// horizon of P1's initial dispatch at clock 0, so P1 parks
			// first; once parked, P0's head is the minimal head, a window
			// opens around it, and the second step runs inside it.
			p.Advance(5)
			p.SyncLocal()
			p.Advance(1)
			p.SyncLocal()
			func() {
				defer func() {
					if r := recover(); r != nil {
						msg = fmt.Sprint(r)
					}
				}()
				e.Proc(1).Unblock(p.Clock())
			}()
		})
	}()
	if !strings.Contains(msg, "local shard window") {
		t.Errorf("Unblock panic = %q, want the local-window message", msg)
	}
}

// TestShardedUnblockFromLocalScopeSerialPanics pins the other half of the
// wake-up contract: even when a local-scope operation is dispatched in the
// serial phase (zero lookahead opens no windows, so SyncLocal traps
// serialize through the coordinator), an Unblock from it is a contract
// violation — the same program under a positive lookahead would run the
// operation inside a window and diverge. The engine panics either way.
func TestShardedUnblockFromLocalScopeSerialPanics(t *testing.T) {
	e := NewEngineSharded(2, 2, evenOdd)
	var msg string
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no deadlock panic after the aborted wake-up")
			}
		}()
		e.Run(func(p *Proc) {
			if p.ID() == 1 {
				p.Block("waiting forever")
				return
			}
			p.Advance(1)
			p.SyncLocal()
			func() {
				defer func() {
					if r := recover(); r != nil {
						msg = fmt.Sprint(r)
					}
				}()
				e.Proc(1).Unblock(p.Clock())
			}()
		})
	}()
	if !strings.Contains(msg, "local-scope") {
		t.Errorf("Unblock panic = %q, want the local-scope message", msg)
	}
}

// TestShardedLocalHeadBoundsWindow is the regression test for the unsound
// window bound: shard 0's minimal head is a LOCAL operation at clock 2,
// behind which P0 turns global at clock 4 and cross-shard-wakes P3 at
// clock 5 — far below the minimal GLOBAL head (P2's Sync at clock 200). A
// horizon derived from global heads only would let shard 1 run P1's local
// operations at clocks 10..100 before the wake-up ever issued, reordering
// them ahead of P3's woken operations at clocks 6..8. The bound must
// therefore come from the minimal head across ALL shards: a local head
// lower-bounds where its shard can next go global. Shard 1's event log
// must match the serial engine's exactly, at every lookahead valid for the
// workload's one-cycle wake latency.
func TestShardedLocalHeadBoundsWindow(t *testing.T) {
	exec := func(e *Engine) ([]string, Time) {
		// Only shard-1 processors append to the log, and a shard runs one
		// processor at a time, so the appends are race-free by construction.
		var log []string
		finish := e.Run(func(p *Proc) {
			switch p.ID() {
			case 0: // shard 0: local head at 2, then global at 4 waking P3 at 5
				p.Advance(2)
				p.SyncLocal()
				p.Advance(2)
				p.Sync()
				e.Proc(3).Unblock(p.Clock() + 1)
			case 2: // shard 0: the distant global bound
				p.Advance(200)
				p.Sync()
			case 1: // shard 1: local operations at 10, 20, ..., 100
				for i := 0; i < 10; i++ {
					p.Advance(10)
					p.SyncLocal()
					log = append(log, fmt.Sprintf("P1@%d", p.Clock()))
				}
			case 3: // shard 1: woken at 5, local operations at 6, 7, 8
				p.Block("release")
				for i := 0; i < 3; i++ {
					p.Advance(1)
					p.SyncLocal()
					log = append(log, fmt.Sprintf("P3@%d", p.Clock()))
				}
			}
		})
		return log, finish
	}
	wantLog, wantFinish := exec(NewEngine(4))
	for _, lookahead := range []Time{0, 1} {
		e := NewEngineSharded(4, 2, evenOdd)
		e.SetLookahead(lookahead)
		log, finish := exec(e)
		if !reflect.DeepEqual(log, wantLog) || finish != wantFinish {
			t.Errorf("lookahead=%d: shard-1 log diverged from serial:\n got %v finish=%d\nwant %v finish=%d",
				lookahead, log, finish, wantLog, wantFinish)
		}
	}
}

// TestShardedWakeBelowWindowWatermarkPanics pins the lookahead-contract
// tripwire: with a lookahead far beyond the workload's real wake latency,
// shard 1 legally runs P1's local operations up to clock 50 inside the
// first window; P0's global operation at clock 4 then tries to wake P3 at
// clock 5 — below an operation shard 1 already executed. The engine must
// panic deterministically rather than let the merged schedule silently
// diverge from the serial one.
func TestShardedWakeBelowWindowWatermarkPanics(t *testing.T) {
	e := NewEngineSharded(4, 2, evenOdd)
	e.SetLookahead(100) // far wider than the workload's 1-cycle wake latency
	var msg string
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no deadlock panic after the aborted wake-up")
			}
		}()
		e.Run(func(p *Proc) {
			switch p.ID() {
			case 0:
				p.Advance(2)
				p.SyncLocal()
				p.Advance(2)
				p.Sync()
				func() {
					defer func() {
						if r := recover(); r != nil {
							msg = fmt.Sprint(r)
						}
					}()
					e.Proc(3).Unblock(p.Clock() + 1)
				}()
			case 1: // shard 1: window work at clocks 10..50
				for i := 0; i < 5; i++ {
					p.Advance(10)
					p.SyncLocal()
				}
			case 3:
				p.Block("never released in time")
			}
		})
	}()
	if !strings.Contains(msg, "window watermark") {
		t.Errorf("Unblock panic = %q, want the window-watermark message", msg)
	}
}

// TestShardedHorizonExclusiveBound pins the horizon rule after the window
// bound B (the minimal head across all shards) is extended by the
// lookahead: the bound is strictly exclusive at any processor id, because a
// cross-shard effect can land at exactly B+L with an arbitrary id. Clock
// ties at the horizon must wait for the next window regardless of id.
func TestShardedHorizonExclusiveBound(t *testing.T) {
	hz := horizon{clock: 10}
	for _, id := range []int{0, 1, 5} {
		if hz.admits(&Proc{id: id, clock: 10}) {
			t.Errorf("(10, %d) admitted at horizon 10; clock ties at the bound must wait", id)
		}
		if hz.admits(&Proc{id: id, clock: 11}) {
			t.Errorf("(11, %d) admitted at horizon 10", id)
		}
		if !hz.admits(&Proc{id: id, clock: 9}) {
			t.Errorf("(9, %d) not admitted at horizon 10", id)
		}
	}
}

// TestShardedLookaheadExtendsWindow pins the mesh-latency lookahead: with
// SetLookahead(L), local operations strictly below B+L (B the minimal head
// across all shards) run inside concurrent windows. With zero lookahead the
// conservative protocol opens no windows at all — nothing lies strictly
// below the minimal head — so every operation serializes through the
// coordinator; a lookahead wider than processor 1's global stride lets
// processor 0 glide over most bounds on the per-shard fast path.
func TestShardedLookaheadExtendsWindow(t *testing.T) {
	run := func(lookahead Time) (fast, switches, windows uint64) {
		e := NewEngineSharded(2, 2, evenOdd)
		e.SetLookahead(lookahead)
		e.Run(func(p *Proc) {
			if p.ID() == 1 {
				// Global bound stepping 10, 20, ..., 100.
				for i := 0; i < 10; i++ {
					p.Advance(10)
					p.Sync()
				}
				return
			}
			for i := 0; i < 105; i++ {
				p.Advance(1)
				p.SyncLocal()
			}
		})
		return e.FastPathHits(), e.Switches(), e.Windows()
	}
	baseFast, baseSw, baseWin := run(0)
	extFast, extSw, extWin := run(50)
	if baseWin != 0 {
		t.Errorf("zero lookahead opened %d windows, want 0 (conservative protocol has nothing below the minimal head)", baseWin)
	}
	if extWin == 0 {
		t.Error("lookahead 50 opened no windows")
	}
	if extFast <= baseFast {
		t.Errorf("lookahead did not extend the fast path: %d hits (L=0) vs %d (L=50)", baseFast, extFast)
	}
	if extSw >= baseSw {
		t.Errorf("lookahead did not reduce context switches: %d (L=0) vs %d (L=50)", baseSw, extSw)
	}
}

// TestShardedZeroHopLookahead pins the degenerate lookahead: processors on
// the same home node (same shard) have zero-hop interactions, so the
// lookahead contributes nothing within a shard — same-shard operations are
// ordered purely by the per-shard (clock, id) queue. Two same-shard
// processors running mixed workloads must produce the serial schedule.
func TestShardedZeroHopLookahead(t *testing.T) {
	exec := func(e *Engine) []int {
		var order []int
		e.Run(func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Advance(Time(2 + p.ID()))
				p.Sync()
				order = append(order, p.ID())
			}
		})
		return order
	}
	want := exec(NewEngine(2))
	// Both processors in shard 0 of a 2-shard engine; shard 1 is empty.
	got := exec(NewEngineSharded(2, 2, func(int) int { return 0 }))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("same-shard schedule %v, want serial %v", got, want)
	}
}

// TestShardedDeadlockDumpAndReuse mirrors the serial engine's recovered-
// deadlock guarantee (satellite: shard-aware stateDump + reusable engine):
// a sharded deadlock panics with shard identity and per-shard run-queue
// contents in the dump, drains every goroutine, and leaves the engine
// reusable for a subsequent good run.
func TestShardedDeadlockDumpAndReuse(t *testing.T) {
	e := NewEngineSharded(4, 2, evenOdd)
	var dump string
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no deadlock panic")
			}
			dump = fmt.Sprint(r)
		}()
		e.Run(func(p *Proc) {
			if p.ID() < 2 {
				p.Block("never woken")
				return
			}
			p.Advance(Time(p.ID()))
			p.Sync()
		})
	}()
	for _, want := range []string{"shards=2", "shard 0", "shard 1", "shard=0", "shard=1", `reason="never woken"`} {
		if !strings.Contains(dump, want) {
			t.Errorf("deadlock dump missing %q:\n%s", want, dump)
		}
	}
	// The engine must be fully reusable after the recovered deadlock.
	finish := e.Run(func(p *Proc) {
		p.Advance(Time(1 + p.ID()))
		p.Sync()
	})
	if finish != 4 {
		t.Errorf("post-deadlock run finish = %d, want 4", finish)
	}
}

// TestShardedDeadlockDrainRunsDefers mirrors the serial drain test: the
// teardown must unwind parked goroutines through their defers.
func TestShardedDeadlockDrainRunsDefers(t *testing.T) {
	e := NewEngineSharded(4, 2, evenOdd)
	var deferred atomic.Int32
	func() {
		defer func() { _ = recover() }()
		e.Run(func(p *Proc) {
			defer deferred.Add(1)
			if p.ID() != 0 {
				p.Block("wedged")
			}
		})
	}()
	if got := deferred.Load(); got != 4 {
		t.Errorf("defers run during drain = %d, want 4", got)
	}
}

// TestShardedOneShardIsSerialSchedule runs the degenerate single-shard
// configuration through the full window protocol and requires counters and
// schedule identical to the serial engine on a workload with blocking.
func TestShardedOneShardIsSerialSchedule(t *testing.T) {
	type outcome struct {
		finish Time
		sw     uint64
		fp     uint64
		bl     uint64
	}
	exec := func(e *Engine) outcome {
		finish := e.Run(func(p *Proc) {
			if p.ID() == 3 {
				p.Block("flag")
				return
			}
			p.Advance(Time(10 * (p.ID() + 1)))
			p.Sync()
			if p.ID() == 0 {
				e.Proc(3).Unblock(p.Clock() + 1)
			}
		})
		return outcome{finish, e.Switches(), e.FastPathHits(), e.Blocks()}
	}
	want := exec(NewEngine(4))
	got := exec(NewEngineSharded(4, 1, func(int) int { return 0 }))
	if got != want {
		t.Errorf("1-shard outcome %+v, want serial %+v", got, want)
	}
}

// TestShardedScopedProbeStreams pins the stream machinery behind SyncScoped:
// deferred-probe operations are dispatched only on the serial prefix (the
// minimal shard's stream, or the boundary), so the dispatch order, the
// finish time, and the per-processor classification tallies are identical
// at every shard count — and with a positive lookahead at least one stream
// actually opens. The workload mixes probe traps (alternating local/global
// classifications) with plain global Syncs that end streams.
func TestShardedScopedProbeStreams(t *testing.T) {
	const n = 4
	type outcome struct {
		order  []int
		finish Time
		local  [n]int
	}
	exec := func(e *Engine) outcome {
		var o outcome
		o.finish = e.Run(func(p *Proc) {
			for i := 0; i < 30; i++ {
				p.Advance(Time(1 + (p.ID()*5+i*3)%4))
				if i%7 == 0 {
					p.Sync() // stream terminator: may wake, must hit the boundary
				} else {
					i := i
					if p.SyncScoped(func() bool { return i%3 != 0 }) {
						o.local[p.ID()]++
					}
				}
				o.order = append(o.order, p.ID())
			}
		})
		return o
	}
	// The serial engine fixes the reference schedule (SyncScoped returns
	// false there, so classifications are compared across shard counts).
	ref := exec(NewEngine(n))
	var want outcome
	for i, shards := range []int{1, 2, 4} {
		e := NewEngineSharded(n, shards, blockShards(n, shards))
		e.SetLookahead(3)
		got := exec(e)
		if !reflect.DeepEqual(got.order, ref.order) || got.finish != ref.finish {
			t.Errorf("shards=%d: schedule diverged from serial", shards)
		}
		if e.Streams() == 0 {
			t.Errorf("shards=%d: no stream opened for a probe-heavy workload", shards)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: outcome diverged across shard counts:\n got %+v\nwant %+v", shards, got, want)
		}
	}
}

// TestShardedStreamEndsAtGlobalHead pins the stream's stopping rule: a
// plain global-scope operation (the only kind that may Unblock) never rides
// a stream — it waits for the serialized boundary, from which a cross-shard
// wake-up is legal and lands exactly as in the serial schedule, even when
// the lookahead would have admitted far more streamed work.
func TestShardedStreamEndsAtGlobalHead(t *testing.T) {
	exec := func(e *Engine) (Time, Time) {
		var woke Time
		finish := e.Run(func(p *Proc) {
			if p.ID() == 1 {
				p.Block("waiting for P0")
				woke = p.Clock()
				return
			}
			for i := 0; i < 3; i++ {
				p.Advance(1)
				p.SyncScoped(func() bool { return true })
			}
			p.Advance(1)
			p.Sync()
			e.Proc(1).Unblock(p.Clock() + 2)
		})
		return woke, finish
	}
	wantWoke, wantFinish := exec(NewEngine(2))
	e := NewEngineSharded(2, 2, evenOdd)
	e.SetLookahead(100)
	woke, finish := exec(e)
	if woke != wantWoke || finish != wantFinish {
		t.Errorf("stream run woke=%d finish=%d, want serial %d / %d", woke, finish, wantWoke, wantFinish)
	}
	if e.Streams() == 0 {
		t.Error("no stream opened before the global head")
	}
}

// TestShardedOverclaimingProbePanics is the adversarial fence for the probe
// contract (DESIGN §15): a probe that overclaims — reports node-private for
// an operation that then wakes another processor — must trip a
// deterministic panic at the Unblock, never corrupt the schedule. Both
// dispatch paths are exercised: a stream dispatch (positive lookahead)
// trips the local-window tripwire, and a boundary dispatch (zero lookahead,
// where the overclaim sets the serial operation's scope to local) trips the
// local-scope tripwire.
func TestShardedOverclaimingProbePanics(t *testing.T) {
	for _, tc := range []struct {
		name      string
		lookahead Time
		wantMsg   string
	}{
		{"stream dispatch", 2, "local shard window"},
		{"boundary dispatch", 0, "local-scope"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngineSharded(2, 2, evenOdd)
			e.SetLookahead(tc.lookahead)
			var msg string
			func() {
				defer func() {
					if recover() == nil {
						t.Error("no deadlock panic after the aborted wake-up")
					}
				}()
				e.Run(func(p *Proc) {
					if p.ID() == 1 {
						p.Block("waiting forever")
						return
					}
					p.Advance(1)
					p.SyncScoped(func() bool { return true }) // overclaims: the op wakes P1
					func() {
						defer func() {
							if r := recover(); r != nil {
								msg = fmt.Sprint(r)
							}
						}()
						e.Proc(1).Unblock(p.Clock())
					}()
				})
			}()
			if !strings.Contains(msg, tc.wantMsg) {
				t.Errorf("Unblock panic = %q, want it to mention %q", msg, tc.wantMsg)
			}
		})
	}
}

// TestShardedStreamCarriesLocalPastHorizon pins the stream's positional
// license: declared local-scope operations on the minimal shard stream up
// to the cap (the other shards' minimal head) even when that lies far past
// B + lookahead, because serial-prefix position — unlike the horizon —
// needs no latency argument. With the competing head at 1000 and a
// lookahead of 2, all ten of P0's local steps fit one window phase.
func TestShardedStreamCarriesLocalPastHorizon(t *testing.T) {
	e := NewEngineSharded(2, 2, evenOdd)
	e.SetLookahead(2)
	finish := e.Run(func(p *Proc) {
		if p.ID() == 1 {
			p.Advance(1000)
			p.Sync()
			return
		}
		for i := 0; i < 10; i++ {
			p.Advance(10)
			p.SyncLocal()
		}
	})
	if finish != 1000 {
		t.Errorf("finish = %d, want 1000", finish)
	}
	if e.Windows() != 1 {
		t.Errorf("window phases = %d, want exactly 1 (one stream covers P0's run)", e.Windows())
	}
	if e.Streams() != 1 {
		t.Errorf("streams = %d, want 1", e.Streams())
	}
}

// TestShardedAssignmentValidation pins constructor contract violations.
func TestShardedAssignmentValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
		assign func(int) int
	}{
		{"zero shards", 0, func(int) int { return 0 }},
		{"negative assignment", 2, func(int) int { return -1 }},
		{"out of range", 2, func(int) int { return 2 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			NewEngineSharded(2, tc.shards, tc.assign)
		})
	}
}

// BenchmarkEngineHotLoopSharded is the sharded variant of
// BenchmarkEngineHotLoop: every processor spins on local-scope operations
// in its own shard, so on a multicore host the shards advance concurrently
// with per-shard fast-path dispatch. Compare against
// BenchmarkEngineHotLoopLockstep (the same workload on the serial engine,
// where the four processors ping-pong through the scheduler).
func BenchmarkEngineHotLoopSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const procs = 4
			e := NewEngineSharded(procs, shards, blockShards(procs, shards))
			iters := b.N/procs + 1
			// Independent local phases: a lookahead covering the run models
			// work with no cross-shard interactions at all, so one window
			// spans the whole loop.
			e.SetLookahead(Time(iters) + 2)
			b.ReportAllocs()
			e.Run(func(p *Proc) {
				for i := 0; i < iters; i++ {
					p.Advance(1)
					p.SyncLocal()
				}
			})
			b.ReportMetric(float64(e.FastPathHits())/float64(b.N), "fastpath_hits/op")
		})
	}
}

// BenchmarkEngineHotLoopLockstep is the serial baseline for the sharded
// hot loop: the same all-local workload on the serial engine, where
// SyncLocal degenerates to Sync and the processors advance in lockstep
// through the run queue.
func BenchmarkEngineHotLoopLockstep(b *testing.B) {
	const procs = 4
	e := NewEngine(procs)
	iters := b.N/procs + 1
	b.ReportAllocs()
	e.Run(func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.Advance(1)
			p.SyncLocal()
		}
	})
	b.ReportMetric(float64(e.FastPathHits())/float64(b.N), "fastpath_hits/op")
}
