// Sharded execution mode: the conservative parallel-discrete-event variant
// of the cooperative engine (the ROADMAP's "intra-run PDES" item, after
// PARSIR's conservative multicore design).
//
// The processor set is partitioned across S shards (the machine layer
// assigns processors by home node, so a shard is a contiguous block of mesh
// nodes). Each shard owns a private run queue. Execution alternates between
// two phases:
//
//   - Serial phase (the window boundary): the coordinator pops the single
//     globally minimal (clock, id) processor — regardless of its pending
//     operation's scope — and runs it alone, exactly like the serial
//     engine. Every operation that can touch shared simulation state — all
//     machine/Env traps, and every Unblock — happens here, so the sequence
//     of global operations is bit-identical to the serial engine's
//     dispatch order. With zero lookahead no window ever opens and the
//     sharded engine executes exactly the serial schedule.
//
//   - Local window: let B be the minimal (clock, id) head across ALL
//     shards, local- or global-scope. Every shard whose head is a
//     local-scope operation strictly below the window horizon runs
//     concurrently on its own goroutine, dispatching its processors in
//     per-shard (clock, id) order until its head reaches the horizon,
//     turns global, or the shard runs dry. The horizon is B + lookahead
//     (the minimum cross-shard mesh latency, see Engine.SetLookahead and
//     mesh.MinCrossShardLatency), exclusive: B lower-bounds the clock of
//     the next global operation ANY shard can issue — a local head bounds
//     where its shard can next go global just as a global head does, since
//     per-shard dispatch clocks are nondecreasing — and no cross-shard
//     effect of a global operation at clock >= B can land before
//     B + lookahead, because cross-shard interactions travel the mesh and
//     Unblock is only legal from global scope. The bound must be exclusive
//     even at a clock tie: a cross-shard wake-up can arrive at exactly
//     B + lookahead with an arbitrary processor id.
//
// Local-scope operations (SyncLocal) promise to touch only state private to
// the calling processor or its shard, so their host-time interleaving
// across shards cannot change any simulated outcome; within a shard they
// are dispatched in exactly the (clock, id) order the serial engine would
// use. The merged schedule is therefore equivalent to the serial one: the
// global subsequence is identical, and the local operations commute with
// everything that separates their dispatch from its serial position. The
// lookahead contract — no cross-shard effect lands less than lookahead
// after the clock of the operation issuing it — is enforced at Unblock
// time against a per-shard watermark of window-dispatched operations, so a
// violation is a deterministic panic, never a silent schedule divergence.
// The machine layer marks every protocol operation global-scope, which is
// why sharded machine runs are byte-identical to serial runs — including
// the sim.switches / sim.fastpath_hits / sim.blocks counters and the
// run-queue depth histogram, which benchdiff gates at 0.0% drift.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"zsim/internal/metrics"
)

// scope classifies a processor's pending operation: global-scope operations
// (Sync, and conservatively everything whose scope is unknown — initial
// dispatch, wake-ups) may touch shared simulation state and are serialized
// at window boundaries; local-scope operations (SyncLocal) touch only
// processor/shard-private state and may run concurrently inside a window.
type scope uint8

const (
	scopeGlobal scope = iota
	scopeLocal
)

// phaseKind says who is dispatching: the coordinator (serial phase, the
// window boundary) or the per-shard window loops.
type phaseKind uint8

const (
	phaseSerial phaseKind = iota
	phaseLocal
)

// shard is one partition of the processor set with its own run queue. Its
// mutable state is owned by the coordinator between windows and by the
// shard's window goroutine inside one; the hand-off in both directions is a
// channel operation, so there is no concurrent access.
type shard struct {
	id   int
	eng  *Engine
	runq procHeap
	// yield receives the trap messages of this shard's processors. The
	// currently running processor always yields to its own shard's channel;
	// in the serial phase the coordinator listens on the dispatched
	// processor's shard channel.
	yield chan yieldMsg

	// Window-phase accounting (the serial phase accounts on the Engine).
	switches     uint64 // window dispatches
	blocks       uint64 // Block calls observed inside windows
	fastPathHits uint64 // SyncLocal inline returns inside windows
	dispatches   uint64 // total dispatches attributed to this shard (both phases)

	// Per-window completion results, harvested by the coordinator at the
	// window barrier.
	windowDone   int
	windowFinish Time

	// Watermark of the last operation this shard dispatched inside a local
	// window, as its (clock, id) at dispatch. A wake-up ordering below it
	// would have to rewrite history the window already executed, so Unblock
	// treats that as a lookahead-contract violation and panics. wmID == -1
	// means no window dispatch yet (nothing can order below (0, -1)).
	wmClock Time
	wmID    int
}

// horizon is the exclusive virtual-time upper bound of a local window:
// B + lookahead, where B is the minimal (clock, id) head across all shards.
// The bound is exclusive regardless of processor id — a cross-shard effect
// can land at exactly B + lookahead with an arbitrary id, so a clock tie
// must wait for the next window.
type horizon struct {
	clock Time
}

// admits reports whether p's pending operation falls strictly inside the
// window.
func (h horizon) admits(p *Proc) bool { return p.clock < h.clock }

// NewEngineSharded creates an engine with n processors partitioned across
// shards run queues; shardOf maps a processor id to its shard in
// [0, shards). The schedule of global-scope operations is bit-identical to
// NewEngine's; local-scope operations (SyncLocal) additionally run
// concurrently across shards inside conservative windows. One shard is the
// degenerate case: the full window protocol runs, with every processor in
// shard 0.
func NewEngineSharded(n, shards int, shardOf func(proc int) int) *Engine {
	if shards <= 0 {
		panic("sim: sharded engine needs at least one shard")
	}
	e := NewEngine(n)
	e.shards = make([]*shard, shards)
	for i := range e.shards {
		e.shards[i] = &shard{id: i, eng: e, yield: make(chan yieldMsg)}
	}
	for _, p := range e.procs {
		s := shardOf(p.id)
		if s < 0 || s >= shards {
			panic(fmt.Sprintf("sim: processor %d assigned to shard %d, want [0,%d)", p.id, s, shards))
		}
		p.shd = e.shards[s]
	}
	e.phaseDone = make(chan *shard)
	return e
}

// Shards returns the shard count (0 for a serial engine).
func (e *Engine) Shards() int { return len(e.shards) }

// SetLookahead sets the conservative cross-shard lookahead: the minimum
// virtual time any effect of a global-scope operation needs to reach
// another shard's private state. The machine layer derives it from the
// minimum cross-shard mesh hop latency (mesh.MinCrossShardLatency). Local
// windows extend to the minimal pending operation across all shards plus
// this bound. Zero (the default) is always safe: no window ever opens and
// the engine executes exactly the serial schedule. A caller setting d > 0
// promises that every cross-shard wake-up lands at least d after the clock
// of the operation issuing it; Unblock enforces the promise against each
// shard's window watermark.
func (e *Engine) SetLookahead(d Time) { e.lookahead = d }

// Lookahead returns the configured cross-shard lookahead.
func (e *Engine) Lookahead() Time { return e.lookahead }

// ShardOf returns the shard index of processor i (0 for a serial engine).
func (e *Engine) ShardOf(i int) int {
	if p := e.procs[i]; p.shd != nil {
		return p.shd.id
	}
	return 0
}

// SyncLocal is Sync for a local-scope operation: one that touches only
// state private to this processor or its shard (pure computation steps,
// shard-private bookkeeping). On a serial engine it is exactly Sync. On a
// sharded engine it lets the operation run concurrently with other shards
// inside the current window; the per-shard dispatch order is still
// (clock, id). A SyncLocal operation must not mutate shared simulation
// state and must not Unblock anything — Unblock from inside a local window
// panics.
func (p *Proc) SyncLocal() {
	if p.eng.shards == nil {
		p.Sync()
		return
	}
	p.syncSharded(scopeLocal)
}

// syncSharded is the sharded-mode trap: record the pending operation's
// scope, take the fast path when dispatch order provably cannot change, and
// otherwise yield to this processor's shard channel.
func (p *Proc) syncSharded(sc scope) {
	e := p.eng
	if e.aborting {
		panic(abortRun{})
	}
	p.pscope = sc
	s := p.shd
	if e.phase == phaseLocal {
		// Inside a window only this shard's loop can dispatch p; the inline
		// return is legal while p stays the shard minimum and inside the
		// horizon. Global-scope operations always yield: they must wait for
		// the window boundary.
		if sc == scopeLocal && (len(s.runq) == 0 || procLess(p, s.runq[0])) && e.horizon.admits(p) {
			s.fastPathHits++
			s.wmClock, s.wmID = p.clock, p.id
			return
		}
	} else if e.precedesAllHeads(p) {
		// Serial phase: p runs alone; if it still precedes every shard's
		// head it is exactly the processor the coordinator would dispatch
		// next — the same condition as the serial engine's fast path. The
		// inline continuation is still the serially running operation, so
		// its scope keeps governing Unblock legality.
		e.fastPathHits++
		e.curScope = sc
		return
	}
	s.yield <- yieldMsg{p, yieldRunnable}
	<-p.resume
}

// precedesAllHeads reports whether p orders before every pending processor
// across all shards — the sharded equivalent of "precedes the run-queue
// head".
func (e *Engine) precedesAllHeads(p *Proc) bool {
	for _, s := range e.shards {
		if len(s.runq) > 0 && !procLess(p, s.runq[0]) {
			return false
		}
	}
	return true
}

// runnable returns the total number of queued processors across all shards.
func (e *Engine) runnable() int {
	n := 0
	for _, s := range e.shards {
		n += len(s.runq)
	}
	return n
}

// runSharded is Run for a sharded engine: alternate serial window
// boundaries (one global-scope operation at a time, in exactly the serial
// engine's (clock, id) order) with concurrent local windows.
func (e *Engine) runSharded(body func(p *Proc)) Time {
	e.aborting = false
	e.phase = phaseSerial
	e.curShard = nil
	e.curScope = scopeGlobal
	for _, s := range e.shards {
		s.runq = s.runq[:0]
		s.switches, s.blocks, s.fastPathHits, s.dispatches = 0, 0, 0, 0
		s.windowDone, s.windowFinish = 0, 0
		s.wmClock, s.wmID = 0, -1
	}
	for _, p := range e.procs {
		p.clock = 0
		p.blocked = false
		p.done = false
		p.pscope = scopeGlobal // a body's first operation has unknown scope
	}
	for _, p := range e.procs {
		p := p
		p.shd.runq.push(p)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortRun); ok {
						e.drained <- struct{}{}
						return
					}
					panic(r)
				}
			}()
			<-p.resume
			if e.aborting {
				panic(abortRun{})
			}
			body(p)
			p.done = true
			if e.aborting {
				panic(abortRun{})
			}
			p.shd.yield <- yieldMsg{p, yieldDone}
		}()
	}

	remaining := len(e.procs)
	var finish Time
	for remaining > 0 {
		// Survey the shard heads: the minimal (clock, id) head across ALL
		// shards bounds the next window. A local-scope head bounds it just
		// as a global one does — its shard's clocks are nondecreasing, so
		// the head's clock lower-bounds where that shard can next issue a
		// global operation (the only way to affect another shard).
		var bound *Proc
		for _, s := range e.shards {
			if len(s.runq) > 0 && (bound == nil || procLess(s.runq[0], bound)) {
				bound = s.runq[0]
			}
		}
		if bound == nil {
			// No runnable processor anywhere: deadlock.
			dump := e.stateDump()
			e.drainDeadlocked()
			panic("sim: deadlock\n" + dump)
		}

		// Local-scope heads strictly below bound + lookahead may run
		// concurrently. With zero lookahead nothing lies strictly below the
		// minimal head, so no window ever opens and execution is exactly
		// serial.
		if e.lookahead > 0 {
			hc := bound.clock + e.lookahead
			if hc < bound.clock { // saturate on overflow
				hc = ^Time(0)
			}
			hz := horizon{clock: hc}
			active := 0
			for _, s := range e.shards {
				if len(s.runq) > 0 && s.runq[0].pscope == scopeLocal && hz.admits(s.runq[0]) {
					active++
				}
			}
			if active > 0 {
				// Local window: every shard with admitted local work
				// advances concurrently up to the horizon.
				e.phase = phaseLocal
				e.horizon = hz
				e.windows++
				for _, s := range e.shards {
					if len(s.runq) > 0 && s.runq[0].pscope == scopeLocal && hz.admits(s.runq[0]) {
						go s.runWindow()
					}
				}
				for i := 0; i < active; i++ {
					<-e.phaseDone
				}
				e.phase = phaseSerial
				// Harvest in shard order so the aggregation is deterministic.
				for _, s := range e.shards {
					remaining -= s.windowDone
					s.windowDone = 0
					if s.windowFinish > finish {
						finish = s.windowFinish
					}
				}
				continue
			}
		}

		// Window boundary: run the single minimal operation alone, exactly
		// as the serial engine would. Its scope governs whether Unblock is
		// legal while it runs.
		s := bound.shd
		p, _ := s.runq.pop()
		e.switches++
		s.dispatches++
		e.mRunqDepth.Observe(uint64(e.runnable()))
		e.curShard = s
		e.curScope = p.pscope
		p.resume <- struct{}{}
		m := <-s.yield
		switch m.kind {
		case yieldRunnable:
			m.p.shd.runq.push(m.p)
		case yieldBlocked:
			e.blocks++
		case yieldDone:
			remaining--
			if m.p.clock > finish {
				finish = m.p.clock
			}
		}
	}
	return finish
}

// runWindow drains this shard's admitted local-scope work for one window,
// then reports at the barrier. It runs on its own goroutine; its processors
// run strictly one at a time within the shard, in (clock, id) order.
func (s *shard) runWindow() {
	e := s.eng
	hz := e.horizon
	for {
		if len(s.runq) == 0 || s.runq[0].pscope != scopeLocal || !hz.admits(s.runq[0]) {
			break
		}
		p, _ := s.runq.pop()
		s.switches++
		s.dispatches++
		s.wmClock, s.wmID = p.clock, p.id
		e.mRunqDepth.Observe(uint64(len(s.runq)))
		p.resume <- struct{}{}
		m := <-s.yield
		switch m.kind {
		case yieldRunnable:
			s.runq.push(m.p)
		case yieldBlocked:
			s.blocks++
		case yieldDone:
			s.windowDone++
			if m.p.clock > s.windowFinish {
				s.windowFinish = m.p.clock
			}
		}
	}
	e.phaseDone <- s
}

// drainShardedRunq pops every queued processor across all shards during the
// deadlock drain.
func (e *Engine) drainShardedRunq() (p *Proc, ok bool) {
	for _, s := range e.shards {
		if q, got := s.runq.pop(); got {
			return q, true
		}
	}
	return nil, false
}

// shardMetrics publishes the sharded-mode counters: window advances,
// cross-shard wake-up deliveries, per-shard window dispatches, and the
// dispatch imbalance (max − min dispatches attributed to a shard, both
// phases counted).
func (e *Engine) shardMetrics(r *metrics.Registry) {
	r.Counter("sim.shard.windows").Add(e.windows)
	r.Counter("sim.shard.cross_unblocks").Add(e.xUnblocks)
	var local, min, max uint64
	for i, s := range e.shards {
		local += s.switches
		if i == 0 || s.dispatches < min {
			min = s.dispatches
		}
		if s.dispatches > max {
			max = s.dispatches
		}
	}
	r.Counter("sim.shard.local_dispatches").Add(local)
	r.Gauge("sim.shard.imbalance").Set(int64(max - min))
}

// shardStateDump appends the sharded sections of the deadlock report: the
// window/lookahead state and each shard's run-queue contents in (clock, id)
// order with pending-operation scopes.
func (e *Engine) shardStateDump(b *strings.Builder) {
	fmt.Fprintf(b, "  shards=%d lookahead=%d windows=%d cross_unblocks=%d\n",
		len(e.shards), e.lookahead, e.windows, e.xUnblocks)
	for _, s := range e.shards {
		q := append([]*Proc(nil), s.runq...)
		sort.Slice(q, func(i, j int) bool { return procLess(q[i], q[j]) })
		fmt.Fprintf(b, "  shard %-2d dispatches=%d runq=[", s.id, s.dispatches)
		for i, p := range q {
			if i > 0 {
				b.WriteByte(' ')
			}
			sc := "global"
			if p.pscope == scopeLocal {
				sc = "local"
			}
			fmt.Fprintf(b, "P%d@%d/%s", p.id, p.clock, sc)
		}
		b.WriteString("]\n")
	}
}
