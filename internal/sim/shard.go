// Sharded execution mode: the conservative parallel-discrete-event variant
// of the cooperative engine (the ROADMAP's "intra-run PDES" item, after
// PARSIR's conservative multicore design).
//
// The processor set is partitioned across S shards (the machine layer
// assigns processors by home node, so a shard is a contiguous block of mesh
// nodes). Each shard owns a private run queue. Execution alternates between
// a serial phase and concurrent window phases:
//
//   - Serial phase (the window boundary): the coordinator pops the single
//     globally minimal (clock, id) processor — regardless of its pending
//     operation's scope — and runs it alone, exactly like the serial
//     engine. With zero lookahead no window ever opens and the sharded
//     engine executes exactly the serial schedule.
//
//   - Window phase: let B be the minimal (clock, id) head across ALL
//     shards. Two kinds of window run concurrently, one goroutine each:
//
//     The minimal shard runs a STREAM when its head is streamable (a
//     deferred-probe trap or a declared local-scope operation): it
//     dispatches its processors in per-shard (clock, id) order while they
//     stay streamable and order strictly below the cap — the minimal head
//     of the OTHER shards at survey time. Everything the stream dispatches
//     is the literal prefix of the serial schedule (nothing else can order
//     below the cap), so streamed operations may touch global simulation
//     state: a machine memory trap's protocol effects — directory
//     transitions, remote-cache invalidations, word writes — apply against
//     exactly the state a serial run would show, and its scope probe
//     classifies against that same state. The only operations a stream
//     must not dispatch are plain global-scope ones (psync traps), because
//     they can Unblock — wake-ups mutate other shards' run queues and are
//     only legal from the serialized boundary. Declared local-scope
//     operations additionally stream up to the horizon B + lookahead even
//     past the cap (the same license local-only windows have).
//
//     Every OTHER shard whose head is a declared local-scope operation
//     strictly below the horizon B + lookahead runs a LOCAL-ONLY window:
//     per-shard (clock, id) order, admitting only local-scope operations
//     (SyncLocal — machine Compute slot reservations, engine-level
//     shard-private steps), which by contract touch only shard-private
//     state and therefore commute with the stream and with each other.
//     Deferred-probe heads are never dispatched here and their probes are
//     never evaluated here: the probe reads protocol state the stream may
//     be mutating concurrently, and the trap's own effects are
//     instantaneous in simulated time, so dispatching it out of
//     serial-prefix order could read or clobber state a lower-keyed
//     streamed operation has not yet produced. They park until the
//     boundary (or until their own shard holds the stream).
//
// The horizon B + lookahead (minimum cross-shard mesh latency, see
// Engine.SetLookahead and mesh.MinCrossShardLatency) is exclusive: B
// lower-bounds the clock of the next global operation ANY shard can issue —
// a local head bounds where its shard can next go global just as a global
// head does, since per-shard dispatch clocks are nondecreasing — and no
// cross-shard effect of a global operation at clock >= B can land before
// B + lookahead, because cross-shard interactions travel the mesh and
// Unblock is only legal from global scope. The bound must be exclusive even
// at a clock tie: a cross-shard wake-up can arrive at exactly B + lookahead
// with an arbitrary processor id. The stream's cap needs no lookahead at
// all — its soundness is positional (serial prefix), not temporal — which
// is why a stream may also carry local-scope operations past the horizon up
// to the cap.
//
// The merged schedule is equivalent to the serial one: the streamed and
// boundary operations ARE the serial sequence of global effects, and
// local-scope operations commute with everything that separates their
// dispatch from its serial position. The lookahead contract — no
// cross-shard effect lands less than lookahead after the clock of the
// operation issuing it — is enforced at Unblock time against a per-shard
// watermark of window-dispatched operations, so a violation is a
// deterministic panic, never a silent schedule divergence.
//
// The machine layer classifies each trap at dispatch time through
// SyncScoped: a per-protocol probe (memsys.ScopeOf, DESIGN §15) reports
// whether the pending access is provably node-private — a local cache hit
// with no directory transition, a store to an exclusively held line. Probes
// are evaluated only at serial-prefix dispatch points (the boundary, the
// serial-phase fast path, the stream), so the classification is a pure
// function of the serial schedule, identical at every shard count, and
// sharded machine runs stay byte-identical to serial runs: results, traces,
// per-protocol counters, and sim.yields/sim.blocks all match to the count
// (benchdiff gates them at 0.0% drift), while the switch/fast-path split
// and the run-queue depth histogram legitimately shift with the shard
// count (benchdiff watches those only between records of the same shard
// count).
package sim

import (
	"fmt"
	"sort"
	"strings"

	"zsim/internal/metrics"
)

// scope classifies a processor's pending operation: global-scope operations
// (Sync, and conservatively everything whose scope is unknown — initial
// dispatch, wake-ups) may touch shared simulation state and wake other
// processors, so outside a stream they serialize at window boundaries;
// local-scope operations (SyncLocal) touch only processor/shard-private
// state and may run concurrently inside any window.
type scope uint8

const (
	scopeGlobal scope = iota
	scopeLocal
)

// phaseKind says who is dispatching: the coordinator (serial phase, the
// window boundary) or the per-shard window loops.
type phaseKind uint8

const (
	phaseSerial phaseKind = iota
	phaseLocal
)

// winMode is a shard's role in the current window phase.
type winMode uint8

const (
	winNone   winMode = iota
	winLocal          // local-scope operations only, bounded by the horizon
	winStream         // serial-schedule prefix, bounded by the cap
)

// shard is one partition of the processor set with its own run queue. Its
// mutable state is owned by the coordinator between windows and by the
// shard's window goroutine inside one; the hand-off in both directions is a
// channel operation, so there is no concurrent access.
type shard struct {
	id  int
	eng *Engine
	//zlint:confine global a cross-shard Unblock pushes the woken processor onto the waker's target shard queue; the engine's hand-off serializes it
	runq procHeap
	// yield receives the trap messages of this shard's processors. The
	// currently running processor always yields to its own shard's channel;
	// in the serial phase the coordinator listens on the dispatched
	// processor's shard channel.
	yield chan yieldMsg

	// Window-phase accounting (the serial phase accounts on the Engine).
	switches uint64 // window dispatches
	blocks   uint64 // Block calls observed inside windows
	//zlint:confine shard bumped only by the shard's own window dispatch loop
	fastPathHits uint64 // inline returns inside windows
	dispatches   uint64 // total dispatches attributed to this shard (both phases)

	// Window state for the current phase, set by the coordinator's survey
	// and cleared at the barrier. hz bounds local-scope admissions in both
	// modes; capped/capClock/capID bound a stream: the exclusive (clock, id)
	// cap below which this shard's operations are the serial schedule's own
	// prefix (the minimal head of the other shards at survey time; an
	// uncapped stream — no other shard had a head — admits everything
	// streamable). windowDone/windowFinish are the completion results
	// harvested at the barrier.
	win          winMode
	hz           horizon
	capped       bool
	capClock     Time
	capID        int
	windowDone   int
	windowFinish Time

	// Watermark of the last operation this shard dispatched inside a
	// window, as its (clock, id) at dispatch. A wake-up ordering below it
	// would have to rewrite history the window already executed, so Unblock
	// treats that as a lookahead-contract violation and panics. wmID == -1
	// means no window dispatch yet (nothing can order below (0, -1)).
	//zlint:confine shard the watermark is advanced only by the shard's own window dispatches
	wmClock Time
	//zlint:confine shard the watermark is advanced only by the shard's own window dispatches
	wmID int
}

// horizon is the exclusive virtual-time upper bound on local-scope window
// admissions: B + lookahead, where B is the minimal (clock, id) head across
// all shards. The bound is exclusive regardless of processor id — a
// cross-shard effect can land at exactly B + lookahead with an arbitrary
// id, so a clock tie must wait for the next window.
type horizon struct {
	clock Time
}

// admits reports whether p's pending operation falls strictly inside the
// window.
func (h horizon) admits(p *Proc) bool { return p.clock < h.clock }

// beforeCap reports whether p's (clock, id) orders strictly below this
// shard's stream cap. An uncapped stream admits everything: with no pending
// head anywhere else, this shard's order IS the serial order.
func (s *shard) beforeCap(p *Proc) bool {
	return !s.capped || p.clock < s.capClock || (p.clock == s.capClock && p.id < s.capID)
}

// admitsLocal reports whether a declared local-scope operation of p — this
// shard's minimal pending processor — may be dispatched inside the shard's
// current window. Local-only windows admit up to the horizon; a stream
// additionally admits up to its cap (serial-prefix position needs no
// lookahead).
func (s *shard) admitsLocal(p *Proc) bool {
	switch s.win {
	case winLocal:
		return s.hz.admits(p)
	case winStream:
		return s.hz.admits(p) || s.beforeCap(p)
	}
	return false
}

// streamable reports whether p's pending operation may ride a stream: a
// deferred-probe trap (a machine memory access — it never wakes anyone, and
// its global effects are exactly the serial ones when dispatched in
// serial-prefix order) or a declared local-scope operation. Plain
// global-scope operations (psync traps, wake-up sources) end a stream at
// the boundary.
func streamable(p *Proc) bool { return p.probe != nil || p.pscope == scopeLocal }

// NewEngineSharded creates an engine with n processors partitioned across
// shards run queues; shardOf maps a processor id to its shard in
// [0, shards). The schedule of global-scope operations is bit-identical to
// NewEngine's; local-scope operations (SyncLocal) and streamed prefixes
// additionally run inside conservative windows. One shard is the degenerate
// case: the full window protocol runs, with every processor in shard 0.
func NewEngineSharded(n, shards int, shardOf func(proc int) int) *Engine {
	if shards <= 0 {
		panic("sim: sharded engine needs at least one shard")
	}
	e := NewEngine(n)
	e.shards = make([]*shard, shards)
	for i := range e.shards {
		e.shards[i] = &shard{id: i, eng: e, yield: make(chan yieldMsg)}
	}
	for _, p := range e.procs {
		s := shardOf(p.id)
		if s < 0 || s >= shards {
			panic(fmt.Sprintf("sim: processor %d assigned to shard %d, want [0,%d)", p.id, s, shards))
		}
		p.shd = e.shards[s]
	}
	e.phaseDone = make(chan *shard)
	return e
}

// Shards returns the shard count (0 for a serial engine).
func (e *Engine) Shards() int { return len(e.shards) }

// SetLookahead sets the conservative cross-shard lookahead: the minimum
// virtual time any effect of a global-scope operation needs to reach
// another shard's private state. The machine layer derives it from the
// minimum cross-shard mesh hop latency (mesh.MinCrossShardLatency). Local
// windows extend to the minimal pending operation across all shards plus
// this bound. Zero (the default) is always safe: no window ever opens and
// the engine executes exactly the serial schedule. A caller setting d > 0
// promises that every cross-shard wake-up lands at least d after the clock
// of the operation issuing it; Unblock enforces the promise against each
// shard's window watermark.
func (e *Engine) SetLookahead(d Time) { e.lookahead = d }

// Lookahead returns the configured cross-shard lookahead.
func (e *Engine) Lookahead() Time { return e.lookahead }

// SetQuiesce installs a coordinator hook called at every serial-phase
// iteration with the (clock, id) key of the minimal pending operation
// across all shards. No processor runs during the call and every future
// dispatch orders at or above the key, so the hook may deterministically
// merge and flush anything staged strictly below it. The machine layer uses
// it to drain per-shard observation buffers in serial-schedule order.
func (e *Engine) SetQuiesce(fn func(clock Time, id int)) { e.quiesce = fn }

// ShardOf returns the shard index of processor i (0 for a serial engine).
func (e *Engine) ShardOf(i int) int {
	if p := e.procs[i]; p.shd != nil {
		return p.shd.id
	}
	return 0
}

// SyncLocal is Sync for a local-scope operation: one that touches only
// state private to this processor or its shard (pure computation steps,
// shard-private bookkeeping). On a serial engine it is exactly Sync. On a
// sharded engine it lets the operation run concurrently with other shards
// inside the current window; the per-shard dispatch order is still
// (clock, id). A SyncLocal operation must not mutate shared simulation
// state and must not Unblock anything — Unblock from inside a local window
// panics.
func (p *Proc) SyncLocal() {
	if p.eng.shards == nil {
		p.Sync()
		return
	}
	p.syncSharded(scopeLocal)
}

// syncSharded is the sharded-mode trap: record the pending operation's
// scope, take the fast path when dispatch order provably cannot change, and
// otherwise yield to this processor's shard channel.
func (p *Proc) syncSharded(sc scope) {
	e := p.eng
	if e.aborting {
		panic(abortRun{})
	}
	p.pscope = sc
	p.probe = nil
	s := p.shd
	if e.phase == phaseLocal {
		// Inside a window only this shard's loop can dispatch p; the inline
		// return is legal while p stays the shard minimum and the window
		// admits the operation. Global-scope operations always yield: they
		// must wait for the window boundary.
		if sc == scopeLocal && (len(s.runq) == 0 || procLess(p, s.runq[0])) && s.admitsLocal(p) {
			s.fastPathHits++
			s.wmClock, s.wmID = p.clock, p.id
			p.dispatchAt = p.clock
			return
		}
	} else if e.precedesAllHeads(p) {
		// Serial phase: p runs alone; if it still precedes every shard's
		// head it is exactly the processor the coordinator would dispatch
		// next — the same condition as the serial engine's fast path. The
		// inline continuation is still the serially running operation, so
		// its scope keeps governing Unblock legality.
		e.fastPathHits++
		e.curScope = sc
		p.dispatchAt = p.clock
		return
	}
	s.yield <- yieldMsg{p, yieldRunnable}
	<-p.resume
}

// SyncScoped is Sync with the scope decision deferred to dispatch time: the
// probe must be a cheap, pure function of simulation state that reports
// whether the pending operation is provably node-private (it would touch
// only state owned by this processor's node and perform no Unblock). The
// classification only feeds accounting and the Unblock tripwires — it never
// licenses out-of-order execution: a deferred-probe trap is dispatched
// exclusively at serial-prefix points (the window boundary, the
// serial-phase fast path, or a stream strictly below its cap), so both the
// probe and the operation's own effects see exactly the state a serial run
// would show them. That makes the per-trap local/global split a pure
// function of the serial schedule, independent of the shard count. The
// return value is the final classification (true = classified node-private
// at dispatch); on a serial engine SyncScoped is exactly Sync and returns
// false.
//
// Probe contract, enforced by the PR 7 tripwires: a probe that overclaims —
// returns true for an operation that wakes a processor — trips the
// curScope/window panics in Unblock deterministically rather than
// corrupting the schedule. The probe itself must not mutate any simulation
// state; it runs only at serial-prefix dispatch points, never concurrently
// with another shard's deferred-probe traps, but it may run concurrently
// with other shards' local-scope operations, so it must not read state
// local-scope operations write.
func (p *Proc) SyncScoped(probe func() bool) bool {
	e := p.eng
	if e.shards == nil {
		p.Sync()
		return false
	}
	if e.aborting {
		panic(abortRun{})
	}
	p.probe = probe
	s := p.shd
	if e.phase == phaseLocal {
		// Only a stream may dispatch a deferred-probe trap mid-window, and
		// only strictly below its cap, where the streamed prefix is the
		// serial schedule itself. Local-only windows never admit probe
		// traps and never evaluate probes — the stream may be mutating the
		// protocol state a probe reads.
		if s.win == winStream && (len(s.runq) == 0 || procLess(p, s.runq[0])) && s.beforeCap(p) {
			if probe() {
				p.pscope = scopeLocal
			} else {
				p.pscope = scopeGlobal
			}
			s.fastPathHits++
			s.wmClock, s.wmID = p.clock, p.id
			p.dispatchAt = p.clock
			return p.pscope == scopeLocal
		}
	} else if e.precedesAllHeads(p) {
		// Serial-phase continuation: p runs alone, so the probe sees exactly
		// the state the serial engine would dispatch against. The resulting
		// scope governs Unblock legality for the inline continuation.
		sc := scopeGlobal
		if probe() {
			sc = scopeLocal
		}
		p.pscope = sc
		e.fastPathHits++
		e.curScope = sc
		p.dispatchAt = p.clock
		return sc == scopeLocal
	}
	s.yield <- yieldMsg{p, yieldRunnable}
	<-p.resume
	// The dispatching side (stream loop or boundary) evaluated the probe and
	// recorded the final classification before resuming us.
	return p.pscope == scopeLocal
}

// precedesAllHeads reports whether p orders before every pending processor
// across all shards — the sharded equivalent of "precedes the run-queue
// head".
func (e *Engine) precedesAllHeads(p *Proc) bool {
	for _, s := range e.shards {
		if len(s.runq) > 0 && !procLess(p, s.runq[0]) {
			return false
		}
	}
	return true
}

// runnable returns the total number of queued processors across all shards.
func (e *Engine) runnable() int {
	n := 0
	for _, s := range e.shards {
		n += len(s.runq)
	}
	return n
}

// runSharded is Run for a sharded engine: alternate serial window
// boundaries (one global-scope operation at a time, in exactly the serial
// engine's (clock, id) order) with window phases — a serial-prefix stream
// on the minimal shard and local-only windows on the rest.
func (e *Engine) runSharded(body func(p *Proc)) Time {
	e.aborting = false
	e.phase = phaseSerial
	e.curShard = nil
	e.curScope = scopeGlobal
	e.windows, e.streams, e.xUnblocks = 0, 0, 0
	for _, s := range e.shards {
		s.runq = s.runq[:0]
		s.switches, s.blocks, s.fastPathHits, s.dispatches = 0, 0, 0, 0
		s.win, s.hz = winNone, horizon{}
		s.capped, s.capClock, s.capID = false, 0, 0
		s.windowDone, s.windowFinish = 0, 0
		s.wmClock, s.wmID = 0, -1
	}
	for _, p := range e.procs {
		p.clock = 0
		p.blocked = false
		p.done = false
		p.pscope = scopeGlobal // a body's first operation has unknown scope
		p.probe = nil
		p.dispatchAt = 0
	}
	for _, p := range e.procs {
		p := p
		p.shd.runq.push(p)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortRun); ok {
						e.drained <- struct{}{}
						return
					}
					panic(r)
				}
			}()
			<-p.resume
			if e.aborting {
				panic(abortRun{})
			}
			body(p)
			p.done = true
			if e.aborting {
				panic(abortRun{})
			}
			p.shd.yield <- yieldMsg{p, yieldDone}
		}()
	}

	remaining := len(e.procs)
	var finish Time
	for remaining > 0 {
		// Survey the shard heads: the minimal (clock, id) head across ALL
		// shards bounds the next window phase. A local-scope head bounds it
		// just as a global one does — its shard's clocks are nondecreasing,
		// so the head's clock lower-bounds where that shard can next issue a
		// global operation (the only way to affect another shard).
		var bound *Proc
		for _, s := range e.shards {
			if len(s.runq) > 0 && (bound == nil || procLess(s.runq[0], bound)) {
				bound = s.runq[0]
			}
		}
		if bound == nil {
			// No runnable processor anywhere: deadlock.
			dump := e.stateDump()
			e.drainDeadlocked()
			panic("sim: deadlock\n" + dump)
		}

		// Quiescent point: everything is parked and every future dispatch
		// orders at or above bound's (clock, id), so staged observation
		// events strictly below it are final and may be merged out.
		if e.quiesce != nil {
			e.quiesce(bound.clock, bound.id)
		}

		// With zero lookahead nothing lies strictly below the minimal head
		// and no stream opens either, so no window phase ever runs and
		// execution is exactly serial.
		if e.lookahead > 0 {
			hc := bound.clock + e.lookahead
			if hc < bound.clock { // saturate on overflow
				hc = ^Time(0)
			}
			hz := horizon{clock: hc}
			active := 0
			// The minimal shard streams the serial schedule's own prefix
			// when its head is streamable: everything it dispatches below
			// the cap (the other shards' minimal head) precedes every other
			// pending operation, so deferred-probe traps run against
			// exactly the serial state, global effects included. No probe
			// is evaluated here — the stream's own loop evaluates each one
			// at its dispatch.
			bs := bound.shd
			if streamable(bound) {
				bs.win = winStream
				bs.hz = hz
				bs.capped, bs.capClock, bs.capID = false, 0, 0
				for _, s := range e.shards {
					if s == bs || len(s.runq) == 0 {
						continue
					}
					h := s.runq[0]
					if !bs.capped || h.clock < bs.capClock || (h.clock == bs.capClock && h.id < bs.capID) {
						bs.capped, bs.capClock, bs.capID = true, h.clock, h.id
					}
				}
				e.streams++
				active++
			}
			// Every other shard whose head is a declared local-scope
			// operation strictly below the horizon runs a local-only
			// window. Deferred-probe heads are not admitted and their
			// probes are not evaluated: both the probe's reads and the
			// trap's instantaneous global effects belong to the serial
			// prefix, which only the stream replays.
			for _, s := range e.shards {
				if s.win != winNone || len(s.runq) == 0 {
					continue
				}
				h := s.runq[0]
				if h.probe == nil && h.pscope == scopeLocal && hz.admits(h) {
					s.win = winLocal
					s.hz = hz
					active++
				}
			}
			if active > 0 {
				e.phase = phaseLocal
				e.windows++
				if active == 1 && bs.win == winStream {
					// Solo stream: nothing runs concurrently with it, so
					// skip the goroutine spawn and barrier and drive it
					// from the coordinator. This is the common shape for
					// machine runs without hardware multithreading, where
					// the only window work is the stream itself.
					bs.windowLoop()
				} else {
					launched := 0
					for _, s := range e.shards {
						if s.win != winNone {
							launched++
							go s.runWindow()
						}
					}
					for i := 0; i < launched; i++ {
						<-e.phaseDone
					}
				}
				e.phase = phaseSerial
				// Harvest in shard order so the aggregation is deterministic.
				for _, s := range e.shards {
					if s.win == winNone {
						continue
					}
					s.win = winNone
					remaining -= s.windowDone
					s.windowDone = 0
					if s.windowFinish > finish {
						finish = s.windowFinish
					}
				}
				continue
			}
		}

		// Window boundary: run the single minimal operation alone, exactly
		// as the serial engine would. Its scope — with any deferred probe
		// evaluated now, against exactly the state the serial engine would
		// dispatch it on — governs whether Unblock is legal while it runs.
		s := bound.shd
		p, _ := s.runq.pop()
		e.switches++
		s.dispatches++
		e.mRunqDepth.Observe(uint64(e.runnable()))
		if p.probe != nil {
			if p.probe() {
				p.pscope = scopeLocal
			} else {
				p.pscope = scopeGlobal
			}
		}
		e.curShard = s
		e.curScope = p.pscope
		p.dispatchAt = p.clock
		p.resume <- struct{}{}
		m := <-s.yield
		switch m.kind {
		case yieldRunnable:
			m.p.shd.runq.push(m.p)
		case yieldBlocked:
			e.blocks++
		case yieldDone:
			remaining--
			if m.p.clock > finish {
				finish = m.p.clock
			}
		}
	}
	return finish
}

// runWindow drains this shard's admitted window work for one phase, then
// reports at the barrier. It runs on its own goroutine; its processors run
// strictly one at a time within the shard, in (clock, id) order.
func (s *shard) runWindow() {
	s.windowLoop()
	s.eng.phaseDone <- s
}

// windowLoop is one shard's window-phase dispatch loop, shared by the
// barrier path (runWindow) and the coordinator-driven solo stream. A
// deferred-probe head is dispatched only by a stream strictly below its
// cap, with the probe evaluated at dispatch; a declared local-scope head is
// dispatched while the window admits it; anything else — a plain
// global-scope head, or work beyond the bounds — ends the loop.
func (s *shard) windowLoop() {
	e := s.eng
	for len(s.runq) > 0 {
		p := s.runq[0]
		if p.probe != nil {
			if s.win != winStream || !s.beforeCap(p) {
				break
			}
		} else if p.pscope != scopeLocal || !s.admitsLocal(p) {
			break
		}
		s.runq.pop()
		if p.probe != nil {
			if p.probe() {
				p.pscope = scopeLocal
			} else {
				p.pscope = scopeGlobal
			}
		}
		s.switches++
		s.dispatches++
		s.wmClock, s.wmID = p.clock, p.id
		e.mRunqDepth.Observe(uint64(len(s.runq)))
		p.dispatchAt = p.clock
		p.resume <- struct{}{}
		m := <-s.yield
		switch m.kind {
		case yieldRunnable:
			s.runq.push(m.p)
		case yieldBlocked:
			s.blocks++
		case yieldDone:
			s.windowDone++
			if m.p.clock > s.windowFinish {
				s.windowFinish = m.p.clock
			}
		}
	}
}

// drainShardedRunq pops every queued processor across all shards during the
// deadlock drain.
func (e *Engine) drainShardedRunq() (p *Proc, ok bool) {
	for _, s := range e.shards {
		if q, got := s.runq.pop(); got {
			return q, true
		}
	}
	return nil, false
}

// shardMetrics publishes the sharded-mode counters: window phases advanced,
// streams among them, cross-shard wake-up deliveries, per-shard window
// dispatches, and the dispatch imbalance (max − min dispatches attributed
// to a shard, both phases counted).
func (e *Engine) shardMetrics(r *metrics.Registry) {
	r.Counter("sim.shard.windows").Add(e.windows)
	r.Counter("sim.shard.streams").Add(e.streams)
	r.Counter("sim.shard.cross_unblocks").Add(e.xUnblocks)
	var local, min, max uint64
	for i, s := range e.shards {
		local += s.switches
		if i == 0 || s.dispatches < min {
			min = s.dispatches
		}
		if s.dispatches > max {
			max = s.dispatches
		}
	}
	r.Counter("sim.shard.local_dispatches").Add(local)
	r.Gauge("sim.shard.imbalance").Set(int64(max - min))
}

// shardStateDump appends the sharded sections of the deadlock report: the
// window/lookahead state and each shard's run-queue contents in (clock, id)
// order with pending-operation scopes.
func (e *Engine) shardStateDump(b *strings.Builder) {
	fmt.Fprintf(b, "  shards=%d lookahead=%d windows=%d streams=%d cross_unblocks=%d\n",
		len(e.shards), e.lookahead, e.windows, e.streams, e.xUnblocks)
	for _, s := range e.shards {
		q := append([]*Proc(nil), s.runq...)
		sort.Slice(q, func(i, j int) bool { return procLess(q[i], q[j]) })
		fmt.Fprintf(b, "  shard %-2d dispatches=%d runq=[", s.id, s.dispatches)
		for i, p := range q {
			if i > 0 {
				b.WriteByte(' ')
			}
			sc := "global"
			switch {
			case p.probe != nil:
				sc = "probe"
			case p.pscope == scopeLocal:
				sc = "local"
			}
			fmt.Fprintf(b, "P%d@%d/%s", p.id, p.clock, sc)
		}
		b.WriteString("]\n")
	}
}
