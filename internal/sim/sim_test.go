package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSingleProcFinish(t *testing.T) {
	e := NewEngine(1)
	finish := e.Run(func(p *Proc) {
		p.Advance(100)
	})
	if finish != 100 {
		t.Fatalf("finish = %d, want 100", finish)
	}
}

func TestFinishIsMaxClock(t *testing.T) {
	e := NewEngine(4)
	finish := e.Run(func(p *Proc) {
		p.Advance(Time(10 * (p.ID() + 1)))
	})
	if finish != 40 {
		t.Fatalf("finish = %d, want 40", finish)
	}
}

// TestGlobalTimeOrder checks the core scheduling invariant: operations
// performed after Sync() occur in nondecreasing virtual time across all
// processors.
func TestGlobalTimeOrder(t *testing.T) {
	e := NewEngine(8)
	var last Time
	var order []int
	rng := rand.New(rand.NewSource(7))
	steps := make([][]Time, 8)
	for i := range steps {
		for j := 0; j < 50; j++ {
			steps[i] = append(steps[i], Time(rng.Intn(100)))
		}
	}
	e.Run(func(p *Proc) {
		for _, s := range steps[p.ID()] {
			p.Advance(s)
			p.Sync()
			if p.Clock() < last {
				t.Errorf("time went backwards: %d after %d", p.Clock(), last)
			}
			last = p.Clock()
			order = append(order, p.ID())
		}
	})
	if len(order) != 8*50 {
		t.Fatalf("saw %d ops, want %d", len(order), 8*50)
	}
}

// TestDeterminism runs an identical mixed workload twice and requires the
// same interleaving.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		var log []string
		e := NewEngine(6)
		e.Run(func(p *Proc) {
			r := rand.New(rand.NewSource(int64(p.ID())))
			for i := 0; i < 30; i++ {
				p.Advance(Time(r.Intn(17)))
				p.Sync()
				log = append(log, fmt.Sprintf("p%d@%d", p.ID(), p.Clock()))
			}
		})
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	e := NewEngine(4)
	var order []int
	e.Run(func(p *Proc) {
		p.Sync() // all at clock 0
		order = append(order, p.ID())
	})
	for i, id := range order {
		if id != i {
			t.Fatalf("order = %v, want ids ascending", order)
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	e := NewEngine(2)
	finish := e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(5)
			p.Sync()
			p.Block("wait for P1")
			// P1 unblocked us at time 50.
			if p.Clock() != 50 {
				t.Errorf("P0 clock after unblock = %d, want 50", p.Clock())
			}
		} else {
			p.Advance(50)
			p.Sync()
			other := e.Proc(0)
			if !other.Blocked() {
				t.Errorf("P0 should be blocked at virtual time 50")
			}
			other.Unblock(p.Clock())
		}
	})
	if finish != 50 {
		t.Fatalf("finish = %d, want 50", finish)
	}
}

func TestUnblockDoesNotRewindClock(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(100)
			p.Sync()
			p.Block("wait")
			if p.Clock() != 100 {
				t.Errorf("clock rewound to %d", p.Clock())
			}
		} else {
			p.Advance(200)
			p.Sync()
			e.Proc(0).Unblock(10) // earlier than P0's clock
		}
	})
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		p.Block("forever")
	})
}

func TestUnblockRunnablePanics(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		if p.ID() == 1 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic unblocking runnable proc")
				}
			}()
			e.Proc(0).Unblock(0)
		}
		p.Advance(1)
	})
}

func TestRunTwiceResetsState(t *testing.T) {
	e := NewEngine(3)
	f1 := e.Run(func(p *Proc) { p.Advance(10) })
	f2 := e.Run(func(p *Proc) { p.Advance(20) })
	if f1 != 10 || f2 != 20 {
		t.Fatalf("f1=%d f2=%d, want 10, 20", f1, f2)
	}
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine(1)
	e.Run(func(p *Proc) {
		p.AdvanceTo(42)
		if p.Clock() != 42 {
			t.Errorf("clock = %d, want 42", p.Clock())
		}
		p.AdvanceTo(10) // no rewind
		if p.Clock() != 42 {
			t.Errorf("clock rewound to %d", p.Clock())
		}
	})
}

// TestOneRunnerAtATime verifies mutual exclusion between processor bodies:
// shared state mutated without locks must never race. Run under -race this
// is a strong check of the engine's handshake.
func TestOneRunnerAtATime(t *testing.T) {
	e := NewEngine(8)
	var inside int32
	e.Run(func(p *Proc) {
		for i := 0; i < 100; i++ {
			if atomic.AddInt32(&inside, 1) != 1 {
				t.Error("two processors running concurrently")
			}
			p.Advance(1)
			atomic.AddInt32(&inside, -1)
			p.Sync()
		}
	})
}

// Property: the heap pops processors in (clock, id) order.
func TestHeapOrderProperty(t *testing.T) {
	f := func(clocks []uint16) bool {
		if len(clocks) == 0 {
			return true
		}
		var h procHeap
		for i, c := range clocks {
			h.push(&Proc{id: i, clock: Time(c)})
		}
		prev, ok := h.pop()
		if !ok {
			return false
		}
		for {
			next, ok := h.pop()
			if !ok {
				break
			}
			if procLess(next, prev) {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPopEmpty(t *testing.T) {
	var h procHeap
	if _, ok := h.pop(); ok {
		t.Fatal("pop of empty heap returned ok")
	}
}

func BenchmarkSyncRoundtrip(b *testing.B) {
	e := NewEngine(2)
	b.ResetTimer()
	e.Run(func(p *Proc) {
		for i := 0; i < b.N/2+1; i++ {
			p.Advance(1)
			p.Sync()
		}
	})
}

func TestInstrumentationCounts(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Sync()
			p.Block("wait")
		} else {
			p.Advance(10)
			p.Sync()
			e.Proc(0).Unblock(p.Clock())
		}
	})
	if e.Switches() == 0 {
		t.Fatal("no scheduling events counted")
	}
	if e.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1", e.Blocks())
	}
}
