package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSingleProcFinish(t *testing.T) {
	e := NewEngine(1)
	finish := e.Run(func(p *Proc) {
		p.Advance(100)
	})
	if finish != 100 {
		t.Fatalf("finish = %d, want 100", finish)
	}
}

func TestFinishIsMaxClock(t *testing.T) {
	e := NewEngine(4)
	finish := e.Run(func(p *Proc) {
		p.Advance(Time(10 * (p.ID() + 1)))
	})
	if finish != 40 {
		t.Fatalf("finish = %d, want 40", finish)
	}
}

// TestGlobalTimeOrder checks the core scheduling invariant: operations
// performed after Sync() occur in nondecreasing virtual time across all
// processors.
func TestGlobalTimeOrder(t *testing.T) {
	e := NewEngine(8)
	var last Time
	var order []int
	rng := rand.New(rand.NewSource(7))
	steps := make([][]Time, 8)
	for i := range steps {
		for j := 0; j < 50; j++ {
			steps[i] = append(steps[i], Time(rng.Intn(100)))
		}
	}
	e.Run(func(p *Proc) {
		for _, s := range steps[p.ID()] {
			p.Advance(s)
			p.Sync()
			if p.Clock() < last {
				t.Errorf("time went backwards: %d after %d", p.Clock(), last)
			}
			last = p.Clock()
			order = append(order, p.ID())
		}
	})
	if len(order) != 8*50 {
		t.Fatalf("saw %d ops, want %d", len(order), 8*50)
	}
}

// TestDeterminism runs an identical mixed workload twice and requires the
// same interleaving.
func TestDeterminism(t *testing.T) {
	run := func() []string {
		var log []string
		e := NewEngine(6)
		e.Run(func(p *Proc) {
			r := rand.New(rand.NewSource(int64(p.ID())))
			for i := 0; i < 30; i++ {
				p.Advance(Time(r.Intn(17)))
				p.Sync()
				log = append(log, fmt.Sprintf("p%d@%d", p.ID(), p.Clock()))
			}
		})
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	e := NewEngine(4)
	var order []int
	e.Run(func(p *Proc) {
		p.Sync() // all at clock 0
		order = append(order, p.ID())
	})
	for i, id := range order {
		if id != i {
			t.Fatalf("order = %v, want ids ascending", order)
		}
	}
}

func TestBlockUnblock(t *testing.T) {
	e := NewEngine(2)
	finish := e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(5)
			p.Sync()
			p.Block("wait for P1")
			// P1 unblocked us at time 50.
			if p.Clock() != 50 {
				t.Errorf("P0 clock after unblock = %d, want 50", p.Clock())
			}
		} else {
			p.Advance(50)
			p.Sync()
			other := e.Proc(0)
			if !other.Blocked() {
				t.Errorf("P0 should be blocked at virtual time 50")
			}
			other.Unblock(p.Clock())
		}
	})
	if finish != 50 {
		t.Fatalf("finish = %d, want 50", finish)
	}
}

func TestUnblockDoesNotRewindClock(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(100)
			p.Sync()
			p.Block("wait")
			if p.Clock() != 100 {
				t.Errorf("clock rewound to %d", p.Clock())
			}
		} else {
			p.Advance(200)
			p.Sync()
			e.Proc(0).Unblock(10) // earlier than P0's clock
		}
	})
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		p.Block("forever")
	})
}

func TestUnblockRunnablePanics(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		if p.ID() == 1 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic unblocking runnable proc")
				}
			}()
			e.Proc(0).Unblock(0)
		}
		p.Advance(1)
	})
}

func TestRunTwiceResetsState(t *testing.T) {
	e := NewEngine(3)
	f1 := e.Run(func(p *Proc) { p.Advance(10) })
	f2 := e.Run(func(p *Proc) { p.Advance(20) })
	if f1 != 10 || f2 != 20 {
		t.Fatalf("f1=%d f2=%d, want 10, 20", f1, f2)
	}
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine(1)
	e.Run(func(p *Proc) {
		p.AdvanceTo(42)
		if p.Clock() != 42 {
			t.Errorf("clock = %d, want 42", p.Clock())
		}
		p.AdvanceTo(10) // no rewind
		if p.Clock() != 42 {
			t.Errorf("clock rewound to %d", p.Clock())
		}
	})
}

// TestOneRunnerAtATime verifies mutual exclusion between processor bodies:
// shared state mutated without locks must never race. Run under -race this
// is a strong check of the engine's handshake.
func TestOneRunnerAtATime(t *testing.T) {
	e := NewEngine(8)
	var inside int32
	e.Run(func(p *Proc) {
		for i := 0; i < 100; i++ {
			if atomic.AddInt32(&inside, 1) != 1 {
				t.Error("two processors running concurrently")
			}
			p.Advance(1)
			atomic.AddInt32(&inside, -1)
			p.Sync()
		}
	})
}

// Property: the heap pops processors in (clock, id) order.
func TestHeapOrderProperty(t *testing.T) {
	f := func(clocks []uint16) bool {
		if len(clocks) == 0 {
			return true
		}
		var h procHeap
		for i, c := range clocks {
			h.push(&Proc{id: i, clock: Time(c)})
		}
		prev, ok := h.pop()
		if !ok {
			return false
		}
		for {
			next, ok := h.pop()
			if !ok {
				break
			}
			if procLess(next, prev) {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPopEmpty(t *testing.T) {
	var h procHeap
	if _, ok := h.pop(); ok {
		t.Fatal("pop of empty heap returned ok")
	}
}

// TestFastPathCountsHits: a lone runnable processor (or one strictly behind
// every other runnable) re-enters Sync without a scheduler round-trip, and
// the engine counts those skipped handoffs.
func TestFastPathCountsHits(t *testing.T) {
	e := NewEngine(1)
	e.Run(func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(1)
			p.Sync()
		}
	})
	if e.FastPathHits() != 100 {
		t.Fatalf("fast-path hits = %d, want 100 (single processor is always the minimum)", e.FastPathHits())
	}
	if e.Switches() != 1 {
		t.Fatalf("switches = %d, want 1 (only the initial resume)", e.Switches())
	}
}

// TestFastPathRespectsTieBreak: at equal clocks the smaller id runs first,
// so a larger-id processor must NOT take the fast path past a queued
// smaller id.
func TestFastPathRespectsTieBreak(t *testing.T) {
	e := NewEngine(2)
	var order []int
	e.Run(func(p *Proc) {
		p.Sync() // both at clock 0: P1's Sync must yield to P0
		order = append(order, p.ID())
		p.Sync() // still equal clocks
		order = append(order, p.ID())
	})
	want := []int{0, 0, 1, 1} // P0 fast-paths through both Syncs, then P1 runs
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestFastPathScheduleMatchesSlowPath pins the global schedule of a mixed
// workload; the fast path must not change which processor performs the nth
// globally visible operation, nor at what clock.
func TestFastPathScheduleMatchesSlowPath(t *testing.T) {
	var log []string
	e := NewEngine(4)
	e.Run(func(p *Proc) {
		r := rand.New(rand.NewSource(int64(p.ID()) + 3))
		for i := 0; i < 20; i++ {
			p.Advance(Time(r.Intn(9)))
			p.Sync()
			log = append(log, fmt.Sprintf("p%d@%d", p.ID(), p.Clock()))
		}
	})
	if e.FastPathHits() == 0 {
		t.Fatal("expected some fast-path hits in a mixed workload")
	}
	// The (clock, id) order of globally visible operations is the kernel's
	// contract; verify it directly.
	for i := 1; i < len(log); i++ {
		var c0, c1 Time
		var id0, id1 int
		fmt.Sscanf(log[i-1], "p%d@%d", &id0, &c0)
		fmt.Sscanf(log[i], "p%d@%d", &id1, &c1)
		if c1 < c0 {
			t.Fatalf("operation %d at clock %d after clock %d", i, c1, c0)
		}
	}
}

// TestDeadlockDrainsGoroutines: a deadlock panic must unwind the parked
// processor goroutines, so repeated recovered Runs don't accumulate them.
func TestDeadlockDrainsGoroutines(t *testing.T) {
	deadlock := func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected deadlock panic")
			}
		}()
		e := NewEngine(4)
		e.Run(func(p *Proc) {
			if p.ID() == 0 {
				p.Advance(10)
				p.Sync()
				return // P0 finishes; the others park forever
			}
			p.Block("forever")
		})
	}
	deadlock() // warm up any runtime-internal goroutines
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		deadlock()
	}
	// Drained goroutines may take a beat to exit after signalling.
	var after int
	for i := 0; i < 100; i++ {
		runtime.Gosched()
		if after = runtime.NumGoroutine(); after <= before {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if after > before+4 {
		t.Fatalf("goroutines grew from %d to %d across 50 deadlocked Runs", before, after)
	}
}

// TestDeadlockDrainRunsDefers: defers of parked bodies run during the
// teardown (the abort unwinds them), including ones that unblock other
// parked processors.
func TestDeadlockDrainRunsDefers(t *testing.T) {
	var unwound [3]bool
	func() {
		defer func() { recover() }()
		e := NewEngine(3)
		e.Run(func(p *Proc) {
			defer func() {
				unwound[p.ID()] = true
				if p.ID() == 0 {
					// A release-like defer: hand off to P1 mid-teardown.
					if q := e.Proc(1); q.Blocked() {
						q.Unblock(p.Clock())
					}
				}
			}()
			p.Block("forever")
		})
	}()
	for i, u := range unwound {
		if !u {
			t.Fatalf("P%d's defer never ran during deadlock teardown", i)
		}
	}
}

// TestEngineReusableAfterDeadlock: after a drained deadlock panic the same
// engine can run again cleanly.
func TestEngineReusableAfterDeadlock(t *testing.T) {
	e := NewEngine(2)
	func() {
		defer func() { recover() }()
		e.Run(func(p *Proc) { p.Block("forever") })
	}()
	finish := e.Run(func(p *Proc) { p.Advance(7) })
	if finish != 7 {
		t.Fatalf("finish = %d, want 7", finish)
	}
}

// TestStateDumpHasFastPath: the deadlock dump carries the scheduler
// counters, including fast-path hits.
func TestStateDumpHasFastPath(t *testing.T) {
	e := NewEngine(2)
	dump := e.stateDump()
	if !strings.Contains(dump, "fastpath=") || !strings.Contains(dump, "switches=") {
		t.Fatalf("state dump missing scheduler counters:\n%s", dump)
	}
	if !strings.Contains(dump, "P0") || !strings.Contains(dump, "P1") {
		t.Fatalf("state dump missing processors:\n%s", dump)
	}
}

func BenchmarkSyncRoundtrip(b *testing.B) {
	e := NewEngine(2)
	b.ResetTimer()
	e.Run(func(p *Proc) {
		for i := 0; i < b.N/2+1; i++ {
			p.Advance(1)
			p.Sync()
		}
	})
}

// BenchmarkEngineHotLoop measures the per-Sync cost on the kernel's fast
// path: a processor that stays behind the rest of the machine performs its
// globally visible operations without any channel handoff. Contrast with
// BenchmarkSyncRoundtrip, the slow-path (ping-pong) worst case.
func BenchmarkEngineHotLoop(b *testing.B) {
	e := NewEngine(4)
	e.Run(func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < b.N; i++ {
				p.Advance(1)
				p.Sync()
			}
			return
		}
		// Park the rest of the machine far in the future so P0 remains the
		// minimum-clock processor for the whole loop.
		p.Advance(1 << 40)
		p.Sync()
	})
	if b.N > 1 && e.FastPathHits() == 0 {
		b.Fatal("hot loop took no fast paths")
	}
	b.ReportMetric(float64(e.FastPathHits())/float64(b.N), "fastpath_hits/op")
}

func TestInstrumentationCounts(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Sync()
			p.Block("wait")
		} else {
			p.Advance(10)
			p.Sync()
			e.Proc(0).Unblock(p.Clock())
		}
	})
	if e.Switches() == 0 {
		t.Fatal("no scheduling events counted")
	}
	if e.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1", e.Blocks())
	}
}
