package sim

// procHeap is a binary min-heap of processors ordered by (clock, id). It is
// hand-rolled rather than using container/heap to avoid interface boxing on
// the simulator's hottest path.
type procHeap []*Proc

func procLess(a, b *Proc) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

func (h *procHeap) push(p *Proc) {
	*h = append(*h, p)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !procLess((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *procHeap) pop() (*Proc, bool) {
	old := *h
	n := len(old)
	if n == 0 {
		return nil, false
	}
	top := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	h.siftDown(0)
	return top, true
}

func (h *procHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && procLess((*h)[l], (*h)[small]) {
			small = l
		}
		if r < n && procLess((*h)[r], (*h)[small]) {
			small = r
		}
		if small == i {
			return
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
}
