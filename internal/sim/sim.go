// Package sim implements the execution-driven simulation kernel used by the
// z-machine reproduction. It plays the role of the SPASM framework from the
// paper: simulated processors run real Go code and trap into the simulator on
// every globally visible operation (shared memory access, synchronization).
//
// Each simulated processor is a goroutine coupled to the engine through
// channels so that exactly one goroutine runs at any instant. Every processor
// carries a local virtual clock; pure computation advances the clock without
// involving the scheduler, while globally visible operations first call Sync,
// which hands control back to the engine. The engine always resumes the
// runnable processor with the smallest clock (ties broken by processor id),
// so globally visible operations execute in nondecreasing virtual-time order
// and a simulation is deterministic and reproducible.
package sim

import (
	"fmt"
	"strings"

	"zsim/internal/metrics"
)

// Time is virtual time in CPU cycles.
type Time uint64

// Proc is a simulated processor. All methods must be called from the
// processor's own body function, except Unblock which is called by whichever
// processor performs the releasing action.
//
//zlint:confine global scheduler bookkeeping: Unblock (and the engine's dispatch bookkeeping) mutates the woken processor from the releasing processor's trap, so Proc state is cross-shard by design; the engine serializes it
type Proc struct {
	id      int
	clock   Time
	eng     *Engine
	resume  chan struct{}
	blocked bool
	done    bool
	// blockReason is a human-readable label for deadlock reports.
	blockReason string

	// Sharded mode (see shard.go). shd is the owning shard (nil on a serial
	// engine); pscope classifies the pending operation the processor will
	// perform when next dispatched. probe, when non-nil, defers that
	// classification to dispatch time (SyncScoped): the engine evaluates it
	// exactly once, at the serial-prefix point that actually dispatches the
	// operation (boundary, serial fast path, or stream), so the
	// classification is a pure function of the serial schedule and a stale
	// pre-trap snapshot can never leak into the accounting.
	// dispatchAt is the processor's clock at its most recent dispatch
	// (fast-path continuations included); together with the processor id it
	// is the serial-schedule ordering key of everything the processor does
	// until its next trap, which is what the machine layer keys staged
	// trace/checker events by.
	shd        *shard
	pscope     scope
	probe      func() bool
	dispatchAt Time
}

// ID returns the processor number in [0, NumProcs).
func (p *Proc) ID() int { return p.id }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() Time { return p.clock }

// Advance moves the processor's local clock forward by c cycles of pure
// computation. It does not involve the scheduler: computation is only
// locally visible.
func (p *Proc) Advance(c Time) { p.clock += c }

// DispatchedAt returns the processor's clock at its most recent dispatch
// (sharded mode). Paired with the processor id it totally orders dispatches
// in the serial schedule, which makes it the merge key for observation
// events staged during local windows.
func (p *Proc) DispatchedAt() Time { return p.dispatchAt }

// AdvanceTo moves the clock forward to t if t is in the future.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.clock {
		p.clock = t
	}
}

type yieldKind int

const (
	yieldRunnable yieldKind = iota // back on the run queue
	yieldBlocked                   // waiting for an Unblock
	yieldDone                      // body returned
)

type yieldMsg struct {
	p    *Proc
	kind yieldKind
}

// Sync yields to the engine and returns when this processor is again the
// runnable processor with the smallest virtual clock. A processor must call
// Sync immediately before every globally visible operation; between Sync
// returning and the next yield no other processor runs, so the operation is
// atomic at the processor's current clock.
//
// Fast path: exactly one goroutine runs at a time, so if the caller's clock
// is still ahead of no runnable processor — it would be popped right back
// off the run queue — the two channel handoffs (yield + resume, two
// goroutine switches) are skipped entirely. The schedule is bit-identical
// to the slow path's: the engine would have resumed this processor next in
// either case, by the same (clock, id) order.
func (p *Proc) Sync() {
	e := p.eng
	if e.shards != nil {
		p.syncSharded(scopeGlobal)
		return
	}
	if e.aborting {
		panic(abortRun{})
	}
	if len(e.runq) == 0 || procLess(p, e.runq[0]) {
		e.fastPathHits++
		return
	}
	e.yield <- yieldMsg{p, yieldRunnable}
	<-p.resume
}

// Block parks the processor until another processor calls Unblock on it.
// reason is reported if the simulation deadlocks.
func (p *Proc) Block(reason string) {
	if p.eng.aborting {
		panic(abortRun{})
	}
	p.blocked = true
	p.blockReason = reason
	if p.shd != nil {
		p.shd.yield <- yieldMsg{p, yieldBlocked}
	} else {
		p.eng.yield <- yieldMsg{p, yieldBlocked}
	}
	<-p.resume
	if p.eng.aborting {
		panic(abortRun{})
	}
}

// Unblock makes p runnable again, with its clock advanced to at least t
// (the virtual time of the releasing action). It must be called from the
// currently running processor's body (or from engine hooks); the engine is
// single-threaded so no locking is required.
func (p *Proc) Unblock(t Time) {
	e := p.eng
	if !p.blocked {
		if e.aborting {
			// A deferred release during the deadlock drain may target a
			// processor the engine has already forced out; let the unwind
			// proceed.
			return
		}
		panic(fmt.Sprintf("sim: Unblock of runnable processor %d", p.id))
	}
	if e.shards != nil {
		// Wake-ups mutate another shard's run queue, so they are only legal
		// from a serialized global-scope operation (the window boundary),
		// where exactly one goroutine runs. A local-scope operation waking
		// anyone would race and could reorder against already-executed
		// global operations. Both checks are skipped while the deadlock
		// drain unwinds bodies (deferred releases run with stale state).
		if e.phase == phaseLocal {
			panic(fmt.Sprintf("sim: Unblock of processor %d from inside a local shard window; wake-ups are only legal from global-scope operations", p.id))
		}
		if e.curScope == scopeLocal && !e.aborting {
			panic(fmt.Sprintf("sim: Unblock of processor %d from a local-scope (SyncLocal) operation; wake-ups are only legal from global-scope (Sync) operations", p.id))
		}
		// Lookahead contract: a wake-up ordering below an operation the
		// target shard already dispatched inside a local window cannot be
		// scheduled in serial (clock, id) order anymore — the caller's
		// lookahead promise (SetLookahead) was too large. Fail loudly,
		// before touching the target's state, instead of diverging
		// silently.
		wake := p.clock
		if t > wake {
			wake = t
		}
		if s := p.shd; !e.aborting && (wake < s.wmClock || (wake == s.wmClock && p.id < s.wmID)) {
			panic(fmt.Sprintf("sim: Unblock of processor %d at clock %d orders below shard %d's window watermark (clock %d, id %d); lookahead %d violates the cross-shard latency bound",
				p.id, wake, s.id, s.wmClock, s.wmID, e.lookahead))
		}
		// curShard is the shard of the processor running the current window
		// boundary (fast-pathed continuations included: only the serially
		// dispatched processor can be executing here).
		if e.curShard != nil && e.curShard != p.shd {
			e.xUnblocks++
		}
		p.pscope = scopeGlobal // the woken processor's next operation has unknown scope
		p.probe = nil
		p.blocked = false
		p.blockReason = ""
		p.AdvanceTo(t)
		p.shd.runq.push(p)
		return
	}
	p.blocked = false
	p.blockReason = ""
	p.AdvanceTo(t)
	e.push(p)
}

// Blocked reports whether the processor is currently parked.
func (p *Proc) Blocked() bool { return p.blocked }

// abortRun is the sentinel panic used to unwind parked processor goroutines
// when a deadlocked Run tears down; the per-processor wrappers recover it.
type abortRun struct{}

// Engine schedules a fixed set of simulated processors.
//
//zlint:confine global the scheduler is machine-wide by construction: any processor's trap can push any other processor onto the run queue; the coordinator serializes it
type Engine struct {
	procs []*Proc
	runq  procHeap
	yield chan yieldMsg
	// drained receives one signal per processor goroutine unwound by the
	// deadlock teardown; aborting makes Sync/Block panic(abortRun{}) instead
	// of yielding, so unwinding bodies can never wedge on engine channels.
	drained  chan struct{}
	aborting bool

	// Sharded mode (see shard.go); shards is nil on a serial engine.
	// phase, horizon, and serialProc are written by the coordinator only
	// while no processor goroutine runs (the hand-offs are channel
	// operations, so every read is ordered after the write).
	shards    []*shard
	lookahead Time
	phase     phaseKind
	horizon   horizon
	curShard  *shard      // shard of the last serially dispatched processor
	curScope  scope       // declared scope of the serially running operation
	phaseDone chan *shard // window-barrier rendezvous
	windows   uint64      // window phases advanced
	streams   uint64      // window phases whose minimal shard ran a stream
	xUnblocks uint64      // wake-ups delivered across shards
	// quiesce, when set, is called by the coordinator at every serial-phase
	// iteration with the (clock, id) key of the minimal pending operation
	// across all shards. All processors are parked at that instant and every
	// future dispatch orders at or above the key, so the callee may flush
	// anything staged strictly below it (the machine layer merges per-shard
	// observation buffers here).
	quiesce func(clock Time, id int)

	// Instrumentation. The hot-path counts are plain fields (the engine is
	// single-threaded) harvested into a metrics registry by PublishMetrics;
	// only the run-queue depth histogram and deadlock-drain counter are
	// recorded live, because they cannot be reconstructed afterwards.
	switches     uint64 // processor resumptions (scheduling events)
	blocks       uint64 // Block calls observed
	fastPathHits uint64 // Sync calls that skipped the yield/resume handoff

	mRunqDepth *metrics.Histogram // runnable procs remaining after each pop
	mDrains    *metrics.Counter   // goroutines unwound by deadlock teardown
}

// RunqDepthBuckets are the inclusive upper bounds of the sim.runq_depth
// histogram: how many processors were runnable behind each scheduling pop.
var RunqDepthBuckets = []uint64{0, 1, 2, 4, 8, 16, 32, 64} //zlint:ignore globalmut immutable bucket bounds, never written after package init

// InstrumentMetrics attaches per-event metric handles (implements
// metrics.Instrumentable). Harvested totals are published separately by
// PublishMetrics at the end of a run.
func (e *Engine) InstrumentMetrics(r *metrics.Registry) {
	e.mRunqDepth = r.Histogram("sim.runq_depth", RunqDepthBuckets)
	e.mDrains = r.Counter("sim.deadlock_drains")
}

// PublishMetrics harvests the engine's plain instrumentation counts into r
// (implements metrics.Publisher). sim.yields is the total number of
// globally visible scheduling points: fast-path hits plus full handoffs.
// Every trap costs exactly one fast-path hit or one switch in any mode, so
// sim.yields is identical between serial and sharded runs of the same
// simulation even though the switch/fast-path split shifts once local
// windows dispatch scope-classified machine traps concurrently (benchdiff
// therefore gates sim.yields across modes, and sim.switches /
// sim.fastpath_hits only between runs of the same shard count). On a
// sharded engine the per-shard window counts are folded in and the
// sharded-mode counters (sim.shard.*) are published alongside.
func (e *Engine) PublishMetrics(r *metrics.Registry) {
	sw, fp := e.Switches(), e.FastPathHits()
	r.Counter("sim.switches").Add(sw)
	r.Counter("sim.blocks").Add(e.Blocks())
	r.Counter("sim.fastpath_hits").Add(fp)
	r.Counter("sim.yields").Add(fp + sw)
	if e.shards != nil {
		e.shardMetrics(r)
	}
}

// NewEngine creates an engine with n processors, all with clock zero.
func NewEngine(n int) *Engine {
	if n <= 0 {
		panic("sim: engine needs at least one processor")
	}
	e := &Engine{
		procs:   make([]*Proc, 0, n),
		runq:    make(procHeap, 0, n),
		yield:   make(chan yieldMsg),
		drained: make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		e.procs = append(e.procs, &Proc{id: i, eng: e, resume: make(chan struct{})})
	}
	return e
}

// NumProcs returns the number of processors.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns processor i.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

func (e *Engine) push(p *Proc) { e.runq.push(p) }

// Run executes body on every processor (as goroutines multiplexed onto this
// OS thread's attention one at a time) and returns the maximum finishing
// clock, i.e. the parallel execution time. Run panics with a state dump if
// the simulation deadlocks (all unfinished processors blocked).
func (e *Engine) Run(body func(p *Proc)) Time {
	if e.shards != nil {
		return e.runSharded(body)
	}
	e.aborting = false
	for _, p := range e.procs {
		p.clock = 0
		p.blocked = false
		p.done = false
	}
	e.runq = e.runq[:0]
	for _, p := range e.procs {
		p := p
		e.push(p)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortRun); ok {
						e.drained <- struct{}{}
						return
					}
					panic(r)
				}
			}()
			<-p.resume
			if e.aborting {
				panic(abortRun{})
			}
			body(p)
			p.done = true
			e.yield <- yieldMsg{p, yieldDone}
		}()
	}
	remaining := len(e.procs)
	var finish Time
	for remaining > 0 {
		p, ok := e.runq.pop()
		if !ok {
			dump := e.stateDump()
			e.drainDeadlocked()
			panic("sim: deadlock\n" + dump)
		}
		e.switches++
		e.mRunqDepth.Observe(uint64(len(e.runq)))
		p.resume <- struct{}{}
		m := <-e.yield
		switch m.kind {
		case yieldRunnable:
			e.push(m.p)
		case yieldBlocked:
			e.blocks++
			// Parked; an Unblock will re-queue it.
		case yieldDone:
			remaining--
			if m.p.clock > finish {
				finish = m.p.clock
			}
		}
	}
	return finish
}

// drainDeadlocked unwinds every parked processor goroutine before the
// deadlock panic propagates, so repeated Run calls (tests recovering the
// panic) don't accumulate goroutines. Each parked processor is resumed in
// turn; Block (and any Sync/Block reached while its body's defers unwind)
// sees aborting and panics abortRun, which the goroutine wrapper recovers,
// signalling drained on its way out. Processors re-queued by deferred
// releases during the unwind are drained from the run queue afterwards.
func (e *Engine) drainDeadlocked() {
	e.aborting = true
	for _, p := range e.procs {
		if !p.done && p.blocked {
			p.blocked = false
			p.resume <- struct{}{}
			<-e.drained
			e.mDrains.Inc()
		}
	}
	for {
		p, ok := e.popAnyRunq()
		if !ok {
			break
		}
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.drained
		e.mDrains.Inc()
	}
	e.aborting = false
}

// popAnyRunq pops from the engine's run queue, or from any shard's in
// sharded mode (drain path only; order is irrelevant while aborting).
func (e *Engine) popAnyRunq() (*Proc, bool) {
	if e.shards != nil {
		return e.drainShardedRunq()
	}
	return e.runq.pop()
}

// Switches returns the number of scheduling events (processor
// resumptions) so far — a measure of how fine-grained the simulation's
// global operations are. On a sharded engine it includes window dispatches.
func (e *Engine) Switches() uint64 {
	n := e.switches
	for _, s := range e.shards {
		n += s.switches
	}
	return n
}

// Blocks returns the number of Block (park) events so far.
func (e *Engine) Blocks() uint64 {
	n := e.blocks
	for _, s := range e.shards {
		n += s.blocks
	}
	return n
}

// FastPathHits returns the number of Sync calls that returned without a
// scheduler round-trip because the caller was still the minimum-clock
// runnable processor. Switches + FastPathHits is the total number of
// globally visible scheduling points.
func (e *Engine) FastPathHits() uint64 {
	n := e.fastPathHits
	for _, s := range e.shards {
		n += s.fastPathHits
	}
	return n
}

// Windows returns the number of window phases advanced (sharded mode).
func (e *Engine) Windows() uint64 { return e.windows }

// Streams returns how many of those window phases ran a serial-prefix
// stream on the minimal shard (sharded mode).
func (e *Engine) Streams() uint64 { return e.streams }

// CrossShardUnblocks returns the number of wake-ups delivered across
// shards (sharded mode).
func (e *Engine) CrossShardUnblocks() uint64 { return e.xUnblocks }

func (e *Engine) stateDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  switches=%d fastpath=%d blocks=%d\n", e.Switches(), e.FastPathHits(), e.Blocks())
	if e.shards != nil {
		e.shardStateDump(&b)
	}
	// procs[i].id == i by construction, so the dump is already in id order.
	for _, p := range e.procs {
		shard := ""
		if p.shd != nil {
			shard = fmt.Sprintf(" shard=%d", p.shd.id)
		}
		switch {
		case p.done:
			fmt.Fprintf(&b, "  P%-2d done     clock=%d%s\n", p.id, p.clock, shard)
		case p.blocked:
			fmt.Fprintf(&b, "  P%-2d blocked  clock=%d%s reason=%q\n", p.id, p.clock, shard, p.blockReason)
		default:
			fmt.Fprintf(&b, "  P%-2d runnable clock=%d%s\n", p.id, p.clock, shard)
		}
	}
	return b.String()
}
