package zsimd

import "time"

// Dependencies is the daemon's fault-injection seam, after the uplotest
// methodology: production code consults it at a handful of named disrupt
// points, and the test harness's dependencies submodule substitutes
// implementations that trigger scenarios unreachable through the API
// alone (store write failures, a worker panicking mid-cell, cells slow
// enough to race cancellation). Production always runs ProdDependencies,
// which disrupts nothing and costs one virtual call per checkpoint.
type Dependencies interface {
	// Disrupt reports whether the fault named op should fire. Unknown
	// names must return false.
	Disrupt(op string) bool
	// Sleep blocks for d at the "slow-cell" disrupt point, honouring the
	// stop channel so a cancelled or shutting-down job wakes immediately.
	Sleep(d time.Duration, stop <-chan struct{})
}

// Disrupt point names recognized by the serving pipeline.
const (
	// DisruptStoreWrite fails the content-addressed store write after a
	// cell has been simulated.
	DisruptStoreWrite = "store-write"
	// DisruptWorkerPanic panics inside the cell function, on the worker
	// pool, mid-job.
	DisruptWorkerPanic = "worker-panic"
	// DisruptSlowCell stretches every cell by the injected delay before
	// simulation starts, opening the window cancellation tests need.
	DisruptSlowCell = "slow-cell"
)

// ProdDependencies is the production implementation: no disruptions.
type ProdDependencies struct{}

// Disrupt implements Dependencies.
func (ProdDependencies) Disrupt(string) bool { return false }

// Sleep implements Dependencies.
func (ProdDependencies) Sleep(d time.Duration, stop <-chan struct{}) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}
