// Package client is the Go client for the zsimd simulation daemon. It is
// the only way the integration-test harness (internal/zsimdtest) talks to
// the daemon — every test interaction goes through these methods, exactly
// as a production caller's would.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"zsim/internal/zsimd"
)

// Client talks to one zsimd daemon.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8437".
	Base string
	// HTTP is the underlying client; nil selects http.DefaultClient.
	HTTP *http.Client
}

// New returns a client for the daemon at base.
func New(base string) *Client { return &Client{Base: base} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError mirrors the daemon's error envelope.
type apiError struct {
	Error string `json:"error"`
}

// StatusError is a non-2xx daemon response: the HTTP status plus the
// decoded error message.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("zsimd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// IsQueueFull reports whether err is the daemon's bounded-queue rejection.
func IsQueueFull(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusServiceUnavailable
}

// do performs one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var ae apiError
		if json.Unmarshal(data, &ae) != nil || ae.Error == "" {
			ae.Error = string(data)
		}
		return &StatusError{Code: resp.StatusCode, Message: ae.Error}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit submits one job of the given cells and returns its accepted
// status. A full queue surfaces as a StatusError with code 503 (see
// IsQueueFull).
func (c *Client) Submit(ctx context.Context, cells ...zsimd.CellSpec) (zsimd.JobStatus, error) {
	var st zsimd.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", zsimd.SubmitRequest{Cells: cells}, &st)
	return st, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (zsimd.JobStatus, error) {
	var st zsimd.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a done job's results. A job that is not done yet (or
// failed, or was canceled) surfaces as a StatusError with code 409.
func (c *Client) Result(ctx context.Context, id string) (zsimd.JobResult, error) {
	var res zsimd.JobResult
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res)
	return res, err
}

// List fetches every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]zsimd.JobStatus, error) {
	var out []zsimd.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a job and returns its status at that
// moment (cancellation of a running job is asynchronous: poll until the
// state is terminal).
func (c *Client) Cancel(ctx context.Context, id string) (zsimd.JobStatus, error) {
	var st zsimd.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Health fetches the daemon's health/metrics snapshot.
func (c *Client) Health(ctx context.Context) (zsimd.Health, error) {
	var h zsimd.Health
	err := c.do(ctx, http.MethodGet, "/v1/health", nil, &h)
	return h, err
}

// WaitJob polls until the job reaches a terminal state or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string) (zsimd.JobStatus, error) {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("zsimd: waiting for job %s (state %s): %w", id, st.State, ctx.Err())
		case <-t.C:
		}
	}
}

// WaitDone polls like WaitJob but additionally requires the terminal
// state to be done, surfacing the job's error otherwise.
func (c *Client) WaitDone(ctx context.Context, id string) (zsimd.JobStatus, error) {
	st, err := c.WaitJob(ctx, id)
	if err != nil {
		return st, err
	}
	if st.State != zsimd.JobDone {
		return st, fmt.Errorf("zsimd: job %s ended %s: %s", id, st.State, st.Error)
	}
	return st, nil
}
