package zsimd

import (
	"encoding/json"
	"sync"
	"time"
)

// JobState is a job's lifecycle position. Jobs move strictly
// queued → running → (done | failed | canceled); a queued job may also go
// directly to canceled.
type JobState string

// The job lifecycle.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobStatus is the wire view of a job: everything host-side (identity,
// timestamps, cache accounting) lives here, never in result bodies.
type JobStatus struct {
	ID          string   `json:"id"`
	State       JobState `json:"state"`
	Cells       int      `json:"cells"`
	Keys        []string `json:"keys"`
	CacheHits   int      `json:"cache_hits"`
	CacheMisses int      `json:"cache_misses"`
	Error       string   `json:"error,omitempty"`
	CreatedAt   string   `json:"created_at"`
	StartedAt   string   `json:"started_at,omitempty"`
	FinishedAt  string   `json:"finished_at,omitempty"`
}

// CellResult is one cell's served result: its content address, whether it
// came from the store, and the canonical body. Cached is envelope
// metadata; Body is byte-identical either way.
type CellResult struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Cached bool            `json:"cached"`
	Body   json.RawMessage `json:"body"`
}

// JobResult is the wire view of a finished job's results.
type JobResult struct {
	ID    string       `json:"id"`
	State JobState     `json:"state"`
	Cells []CellResult `json:"cells"`
}

// job is the daemon-side record. The mutex guards every mutable field;
// cancel is closed (once) on cancellation or daemon shutdown so sleeping
// or queued work wakes immediately.
type job struct {
	id    string
	cells []cell

	mu         sync.Mutex
	state      JobState
	hits       int
	misses     int
	errMsg     string
	created    time.Time
	started    time.Time
	finished   time.Time
	bodies     [][]byte
	cached     []bool
	cancelOnce sync.Once
	cancel     chan struct{}
	done       chan struct{}
}

func newJob(id string, cells []cell, now time.Time) *job {
	return &job{
		id:      id,
		cells:   cells,
		state:   JobQueued,
		created: now,
		cancel:  make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// requestCancel flags the job for cancellation. Running cells observe the
// closed channel at their next checkpoint; a queued job is finalized as
// canceled by the worker that dequeues it.
func (j *job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

// canceled reports whether cancellation has been requested.
func (j *job) canceledRequested() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

// tryStart moves a queued job to running; it returns false when the job
// was canceled while waiting in the queue (and finalizes it).
func (j *job) tryStart(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	if j.canceledRequested() {
		j.state = JobCanceled
		j.finished = now
		close(j.done)
		return false
	}
	j.state = JobRunning
	j.started = now
	return true
}

// finish moves a running job to its terminal state.
func (j *job) finish(state JobState, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = now
	close(j.done)
}

// status snapshots the wire view.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	keys := make([]string, len(j.cells))
	for i, c := range j.cells {
		keys[i] = c.key
	}
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Cells:       len(j.cells),
		Keys:        keys,
		CacheHits:   j.hits,
		CacheMisses: j.misses,
		Error:       j.errMsg,
		CreatedAt:   j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return st
}

// result snapshots the served results; ok is false until the job is done.
func (j *job) result() (JobResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobDone {
		return JobResult{ID: j.id, State: j.state}, false
	}
	res := JobResult{ID: j.id, State: j.state, Cells: make([]CellResult, len(j.cells))}
	for i, c := range j.cells {
		res.Cells[i] = CellResult{Index: i, Key: c.key, Cached: j.cached[i], Body: j.bodies[i]}
	}
	return res, true
}
