package zsimd

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCacheKeyCanonicalization(t *testing.T) {
	a, err := resolve(CellSpec{Type: TypeBenchmark, App: "is", System: "rcinv",
		Params: json.RawMessage(`{"Procs":4,"StoreBufEntries":8}`)})
	if err != nil {
		t.Fatal(err)
	}
	// Same machine, different spelling: explicit default scale, reordered
	// and re-spaced params.
	b, err := resolve(CellSpec{Type: TypeBenchmark, App: "is", System: "rcinv", Scale: "small",
		Params: json.RawMessage(`{ "StoreBufEntries": 8, "Procs": 4 }`)})
	if err != nil {
		t.Fatal(err)
	}
	if a.key != b.key {
		t.Fatalf("equivalent specs keyed differently:\n%s\n%s", a.key, b.key)
	}
	// Any material difference must change the key.
	variants := []CellSpec{
		{Type: TypeBenchmark, App: "is", System: "rcupd", Params: json.RawMessage(`{"Procs":4,"StoreBufEntries":8}`)},
		{Type: TypeBenchmark, App: "is", System: "rcinv", Params: json.RawMessage(`{"Procs":8,"StoreBufEntries":8}`)},
		{Type: TypeBenchmark, App: "is", System: "rcinv", Scale: "paper", Params: json.RawMessage(`{"Procs":4,"StoreBufEntries":8}`)},
		{Type: TypeLitmus, Seed: 1},
		{Type: TypeLitmus, Seed: 2},
	}
	seen := map[string]string{a.key: "base"}
	for _, v := range variants {
		c, err := resolve(v)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[c.key]; dup {
			t.Fatalf("spec %+v collides with %s", v, prev)
		}
		seen[c.key] = v.Type + "/" + v.System
	}
}

func TestResolveNormalizesIrrelevantFields(t *testing.T) {
	// Fields that do not apply to the cell type must not perturb the key.
	a, err := resolve(CellSpec{Type: TypeExperiment, Experiment: "E6"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := resolve(CellSpec{Type: TypeExperiment, Experiment: "E6", App: "is", System: "rcinv", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.key != b.key {
		t.Fatal("inapplicable spec fields leaked into the content address")
	}
}

func TestMemStoreRejectsRewrites(t *testing.T) {
	s := NewMemStore()
	if err := s.Put("k1", []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", []byte("body")); err != nil {
		t.Fatalf("idempotent re-put rejected: %v", err)
	}
	if err := s.Put("k1", []byte("different")); err == nil {
		t.Fatal("rewrite with different bytes accepted (determinism bug would be silent)")
	}
	body, ok, err := s.Get("k1")
	if err != nil || !ok || string(body) != "body" {
		t.Fatalf("Get = %q, %v, %v", body, ok, err)
	}
	if n, _ := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestDirStoreRoundtripAndKeySafety(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	if err := s.Put(key, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	body, ok, err := s.Get(key)
	if err != nil || !ok || string(body) != `{"x":1}` {
		t.Fatalf("Get = %q, %v, %v", body, ok, err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	for _, bad := range []string{"", "short", "../../etc/passwd", "a/b" + key} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Fatalf("malformed key %q accepted", bad)
		}
	}
}

// TestDirStoreRejectsRewritesAndCachesLen pins the persistent store's
// determinism tripwire (same contract as MemStore: a key rewritten with
// different bytes is an upstream bug, not an update) and the incrementally
// maintained entry count, including its re-count when a store is reopened
// over existing entries.
func TestDirStoreRejectsRewritesAndCachesLen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := strings.Repeat("ab", 32), strings.Repeat("cd", 32)
	if err := s.Put(k1, []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k1, []byte("body")); err != nil {
		t.Fatalf("idempotent re-put rejected: %v", err)
	}
	if err := s.Put(k1, []byte("different")); err == nil {
		t.Fatal("rewrite with different bytes accepted (determinism bug would be silent)")
	}
	if body, ok, err := s.Get(k1); err != nil || !ok || string(body) != "body" {
		t.Fatalf("Get after rejected rewrite = %q, %v, %v", body, ok, err)
	}
	if err := s.Put(k2, []byte("other")); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 2 {
		t.Fatalf("Len = %d, %v, want 2 (re-puts and rejected rewrites must not inflate it)", n, err)
	}
	// A reopened store counts the surviving entries once at open.
	s2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s2.Len(); err != nil || n != 2 {
		t.Fatalf("reopened Len = %d, %v, want 2", n, err)
	}
	if err := s2.Put(k1, []byte("different")); err == nil {
		t.Fatal("reopened store accepted a rewrite with different bytes")
	}
}
