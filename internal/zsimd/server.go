package zsimd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"zsim/internal/metrics"
	"zsim/internal/runner"
)

// Config configures a daemon instance.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; a submission
	// past the bound is rejected with 503 rather than queued without
	// limit. 0 selects 16.
	QueueDepth int
	// Workers is the number of jobs executed concurrently. Each job's
	// cells additionally fan out on the runner worker pool (see
	// runner.SetParallelism). 0 selects 2.
	Workers int
	// Store is the content-addressed result store; nil selects an
	// in-memory store.
	Store Store
	// Deps is the fault-injection seam; nil selects ProdDependencies.
	Deps Dependencies
	// SlowCell stretches every cell by this delay before simulation when
	// the DisruptSlowCell fault fires (tests only).
	SlowCell time.Duration
}

// Server is the simulation-as-a-service daemon: an http.Handler serving
// the /v1 JSON API, plus the job table, bounded queue, and worker pool
// behind it.
type Server struct {
	cfg   Config
	store Store
	deps  Dependencies
	mux   *http.ServeMux
	queue chan *job

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool

	started time.Time
	wg      sync.WaitGroup
}

// errCanceled marks a cell aborted by job cancellation or daemon
// shutdown; runJob maps it to the canceled (not failed) terminal state.
var errCanceled = errors.New("zsimd: job canceled")

// New builds a Server and starts its job workers. Close must be called to
// release them.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Deps == nil {
		cfg.Deps = ProdDependencies{}
	}
	s := &Server{
		cfg:     cfg,
		store:   cfg.Store,
		deps:    cfg.Deps,
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    make(map[string]*job),
		started: time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops accepting submissions, cancels every live job, and waits
// for the workers to drain. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	live := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.mu.Unlock()
	for _, j := range live {
		j.requestCancel()
	}
	close(s.queue)
	s.wg.Wait()
}

// --- job execution ---

// runJob executes one dequeued job: cache hits are served straight from
// the store, misses run on the runner worker pool, and a panicking cell
// (runner re-raises the smallest-index panic after the pool drains) fails
// the job without taking down the worker.
func (s *Server) runJob(j *job) {
	if !j.tryStart(time.Now()) {
		counter("zsimd.jobs_canceled").Inc()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			counter("zsimd.jobs_failed").Inc()
			j.finish(JobFailed, fmt.Sprintf("cell panic: %v", r), time.Now())
		}
	}()

	n := len(j.cells)
	bodies := make([][]byte, n)
	cached := make([]bool, n)
	var miss []int
	var hits int
	for i, c := range j.cells {
		body, ok, err := s.store.Get(c.key)
		if err == nil && ok {
			bodies[i] = body
			cached[i] = true
			hits++
			continue
		}
		// A store read error degrades to a re-simulation, not a failure.
		miss = append(miss, i)
	}
	counter("zsimd.cache_hits").Add(uint64(hits))
	counter("zsimd.cache_misses").Add(uint64(len(miss)))

	_, err := runner.Grid(len(miss), func(k int) (struct{}, error) {
		i := miss[k]
		if j.canceledRequested() {
			return struct{}{}, errCanceled
		}
		if s.deps.Disrupt(DisruptSlowCell) {
			s.deps.Sleep(s.cfg.SlowCell, j.cancel)
			if j.canceledRequested() {
				return struct{}{}, errCanceled
			}
		}
		if s.deps.Disrupt(DisruptWorkerPanic) {
			panic("zsimd: injected worker panic")
		}
		body, err := simulate(j.cells[i])
		if err != nil {
			return struct{}{}, err
		}
		if s.deps.Disrupt(DisruptStoreWrite) {
			return struct{}{}, fmt.Errorf("zsimd: store write %.12s: injected write failure", j.cells[i].key)
		}
		if err := s.store.Put(j.cells[i].key, body); err != nil {
			return struct{}{}, fmt.Errorf("zsimd: store write %.12s: %w", j.cells[i].key, err)
		}
		bodies[i] = body
		return struct{}{}, nil
	})

	j.mu.Lock()
	j.hits, j.misses = hits, len(miss)
	j.bodies, j.cached = bodies, cached
	j.mu.Unlock()

	switch {
	case errors.Is(err, errCanceled):
		counter("zsimd.jobs_canceled").Inc()
		j.finish(JobCanceled, "", time.Now())
	case err != nil:
		counter("zsimd.jobs_failed").Inc()
		j.finish(JobFailed, err.Error(), time.Now())
	default:
		counter("zsimd.jobs_done").Inc()
		j.finish(JobDone, "", time.Now())
	}
}

// counter fetches a named daemon counter from the global registry (a
// no-op handle when metrics are disabled).
func counter(name string) *metrics.Counter {
	if !metrics.Enabled() {
		return nil
	}
	return metrics.Default.Counter(name)
}

// --- HTTP handlers ---

// SubmitRequest is the POST /v1/jobs body: one job of one or more cells.
type SubmitRequest struct {
	Cells []CellSpec `json:"cells"`
}

// apiError is the error envelope for every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad submit body: " + err.Error()})
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad submit body: trailing data"})
		return
	}
	if len(req.Cells) == 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "submit: no cells"})
		return
	}
	cells := make([]cell, len(req.Cells))
	for i, spec := range req.Cells {
		c, err := resolve(spec)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("cell %d: %v", i, err)})
			return
		}
		cells[i] = c
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "daemon shutting down"})
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j%06d", s.nextID), cells, time.Now())
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
	default:
		s.nextID--
		s.mu.Unlock()
		counter("zsimd.jobs_rejected").Inc()
		writeJSON(w, http.StatusServiceUnavailable,
			apiError{Error: fmt.Sprintf("job queue full (%d queued); retry later", cap(s.queue))})
		return
	}
	counter("zsimd.jobs_submitted").Inc()
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no job %q", id)})
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	res, ok := j.result()
	if !ok {
		st := j.status()
		msg := fmt.Sprintf("job %s is %s, not done", st.ID, st.State)
		if st.Error != "" {
			msg += ": " + st.Error
		}
		writeJSON(w, http.StatusConflict, apiError{Error: msg})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// Health is the GET /v1/health body: daemon liveness, job-table and
// queue occupancy, store size, and the global metrics snapshot.
type Health struct {
	Status       string           `json:"status"`
	UptimeMS     int64            `json:"uptime_ms"`
	Jobs         map[string]int   `json:"jobs"`
	QueueLen     int              `json:"queue_len"`
	QueueCap     int              `json:"queue_cap"`
	StoreEntries int              `json:"store_entries"`
	CodeVersion  string           `json:"code_version"`
	Metrics      metrics.Snapshot `json:"metrics"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	counts := map[string]int{}
	for _, j := range s.jobs {
		counts[string(j.status().State)]++
	}
	queued := len(s.queue)
	s.mu.Unlock()
	entries, err := s.store.Len()
	if err != nil {
		entries = -1
	}
	writeJSON(w, http.StatusOK, Health{
		Status:       "ok",
		UptimeMS:     time.Since(s.started).Milliseconds(),
		Jobs:         counts,
		QueueLen:     queued,
		QueueCap:     cap(s.queue),
		StoreEntries: entries,
		CodeVersion:  CodeVersion,
		Metrics:      metrics.Default.Snapshot(),
	})
}

// writeJSON writes v as the complete JSON response. The body is marshaled
// before any byte is written so an encode error can still become a 500;
// a failed write means the client went away, which is not a daemon error.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(data)
}
