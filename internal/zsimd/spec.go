// Package zsimd is the simulation-as-a-service daemon: an HTTP JSON API
// that accepts experiment/sweep submissions, runs them on a bounded job
// queue backed by the runner worker pool, and serves results from a
// content-addressed store so identical cells are cache hits instead of
// re-simulations.
//
// The serving pipeline deliberately splits determinism from host state:
// a cell's result body is a pure function of its canonical spec (resolved
// parameters, scale, seed, experiment identity) plus the simulator code
// version, which is exactly the content-address key. Everything host-side
// (job IDs, wall-clock timestamps, queue occupancy) lives in the job
// envelope, never in the stored body, so a cache hit is byte-identical to
// a fresh simulation.
package zsimd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"zsim/internal/memsys"
	"zsim/internal/workload"
)

// CodeVersion names the simulator revision baked into every cache key.
// Bump it whenever a change can alter any simulated result, so stale
// bodies from an earlier revision can never be served as current.
const CodeVersion = "zsim-sim-v1"

// Cell types accepted by the daemon.
const (
	// TypeExperiment runs one entry of the regeneration index (E1..E20)
	// and returns its rendered artifact.
	TypeExperiment = "experiment"
	// TypeBenchmark runs one (application, memory system) cell and returns
	// the full overhead decomposition.
	TypeBenchmark = "benchmark"
	// TypeLitmus runs the litmus suite (Seed == 0) or one seeded random
	// litmus program (Seed != 0) on every memory system under the
	// conformance checker.
	TypeLitmus = "litmus"
)

// CellSpec is one unit of simulation work as submitted by a client. A job
// is a list of cells (a sweep is simply a multi-cell job); each cell is
// simulated, cached, and served independently.
type CellSpec struct {
	// Type is TypeExperiment, TypeBenchmark, or TypeLitmus.
	Type string `json:"type"`

	// Experiment is the regeneration-index ID (E1..E20) for TypeExperiment.
	Experiment string `json:"experiment,omitempty"`

	// App and System select the cell for TypeBenchmark.
	App    string `json:"app,omitempty"`
	System string `json:"system,omitempty"`

	// Scale is "small" (default) or "paper" for experiment/benchmark cells.
	Scale string `json:"scale,omitempty"`

	// Seed selects a random litmus program for TypeLitmus; 0 runs the
	// hand-written suite.
	Seed int64 `json:"seed,omitempty"`

	// Params is an optional machine-parameter override in the
	// ParamsFromJSON format; absent fields keep the paper defaults.
	Params json.RawMessage `json:"params,omitempty"`
}

// cell is a validated spec with its resolved parameter block and canonical
// cache key.
type cell struct {
	spec   CellSpec
	params memsys.Params
	key    string
}

// resolve validates a submitted spec against the daemon's trust boundary
// and computes its canonical content-address key. All parameter input goes
// through ParamsFromJSON (strict decoding + Validate), so malformed or
// out-of-range machine configurations are rejected here, before the job is
// accepted onto the queue.
func resolve(spec CellSpec) (cell, error) {
	params := memsys.Default(16)
	if len(spec.Params) > 0 {
		var err error
		params, err = memsys.ParamsFromJSON(spec.Params)
		if err != nil {
			return cell{}, err
		}
	}
	scale := spec.Scale
	if scale == "" {
		scale = string(workload.ScaleSmall)
	}
	if scale != string(workload.ScaleSmall) && scale != string(workload.ScalePaper) {
		return cell{}, fmt.Errorf("zsimd: unknown scale %q (want %q or %q)", scale, workload.ScaleSmall, workload.ScalePaper)
	}
	spec.Scale = scale
	switch spec.Type {
	case TypeExperiment:
		if _, err := workload.FindExperiment(spec.Experiment); err != nil {
			return cell{}, err
		}
		spec.App, spec.System, spec.Seed = "", "", 0
	case TypeBenchmark:
		if _, err := workload.NewApp(spec.App, workload.Scale(scale)); err != nil {
			return cell{}, err
		}
		if !knownKind(memsys.Kind(spec.System)) {
			return cell{}, fmt.Errorf("zsimd: unknown memory system %q (want one of %v)", spec.System, memsys.Kinds())
		}
		spec.Experiment, spec.Seed = "", 0
	case TypeLitmus:
		if spec.Seed < 0 {
			return cell{}, fmt.Errorf("zsimd: litmus seed %d, need >= 0", spec.Seed)
		}
		spec.Experiment, spec.App, spec.System = "", "", ""
	default:
		return cell{}, fmt.Errorf("zsimd: unknown cell type %q (want %q, %q, or %q)",
			spec.Type, TypeExperiment, TypeBenchmark, TypeLitmus)
	}
	key, err := cacheKey(spec, params)
	if err != nil {
		return cell{}, err
	}
	return cell{spec: spec, params: params, key: key}, nil
}

// knownKind reports whether k names one of the simulated memory systems.
func knownKind(k memsys.Kind) bool {
	for _, known := range memsys.Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// keyMaterial is the canonical serialization hashed into a content-address
// key: the normalized spec, the fully resolved parameter block (so two
// submissions that spell the same machine differently — partial files,
// field order, whitespace — collide onto one key), and the code version.
type keyMaterial struct {
	Version    string        `json:"version"`
	Type       string        `json:"type"`
	Experiment string        `json:"experiment,omitempty"`
	App        string        `json:"app,omitempty"`
	System     string        `json:"system,omitempty"`
	Scale      string        `json:"scale,omitempty"`
	Seed       int64         `json:"seed,omitempty"`
	Params     memsys.Params `json:"params"`
}

// cacheKey computes the cell's content address: hex(sha256(material)).
func cacheKey(spec CellSpec, params memsys.Params) (string, error) {
	m := keyMaterial{
		Version:    CodeVersion,
		Type:       spec.Type,
		Experiment: spec.Experiment,
		App:        spec.App,
		System:     spec.System,
		Scale:      spec.Scale,
		Seed:       spec.Seed,
		Params:     params,
	}
	data, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("zsimd: cache key: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
