package zsimd

import (
	"encoding/json"
	"fmt"

	"zsim/internal/check/litmus"
	"zsim/internal/memsys"
	"zsim/internal/stats"
	"zsim/internal/workload"
)

// Result bodies are canonical JSON: one of the three envelope structs
// below, json.Marshal'd (struct field order is fixed, so the encoding is
// deterministic). Bodies are a pure function of the cell's key material —
// no timestamps, job IDs, or host-side metrics — which is what makes a
// cache hit byte-identical to a fresh simulation.

// experimentBody is the stored body of a TypeExperiment cell.
type experimentBody struct {
	Type       string `json:"type"`
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	Scale      string `json:"scale"`
	Render     string `json:"render"`
	Markdown   string `json:"markdown"`
}

// benchmarkBody is the stored body of a TypeBenchmark cell.
type benchmarkBody struct {
	Type   string        `json:"type"`
	App    string        `json:"app"`
	System string        `json:"system"`
	Scale  string        `json:"scale"`
	Result *stats.Result `json:"result"`
}

// litmusBody is the stored body of a TypeLitmus cell.
type litmusBody struct {
	Type   string `json:"type"`
	Seed   int64  `json:"seed"`
	Tests  int    `json:"tests"`
	Ok     bool   `json:"ok"`
	Report string `json:"report"`
}

// simulate runs one resolved cell and returns its canonical result body.
// It is a pure function of the cell (plus the simulator code, pinned by
// CodeVersion in the key): calling it twice yields identical bytes.
func simulate(c cell) ([]byte, error) {
	switch c.spec.Type {
	case TypeExperiment:
		return simulateExperiment(c)
	case TypeBenchmark:
		return simulateBenchmark(c)
	case TypeLitmus:
		return simulateLitmus(c)
	}
	return nil, fmt.Errorf("zsimd: unknown cell type %q", c.spec.Type)
}

func simulateExperiment(c cell) ([]byte, error) {
	e, err := workload.FindExperiment(c.spec.Experiment)
	if err != nil {
		return nil, err
	}
	art, err := e.Run(workload.Scale(c.spec.Scale), c.params)
	if err != nil {
		return nil, fmt.Errorf("zsimd: experiment %s: %w", e.ID, err)
	}
	return json.Marshal(experimentBody{
		Type:       TypeExperiment,
		Experiment: e.ID,
		Title:      e.Title,
		Scale:      c.spec.Scale,
		Render:     art.Render(),
		Markdown:   art.Markdown(),
	})
}

func simulateBenchmark(c cell) ([]byte, error) {
	r, err := workload.Run(c.spec.App, workload.Scale(c.spec.Scale), memsys.Kind(c.spec.System), c.params)
	if err != nil {
		return nil, err
	}
	return json.Marshal(benchmarkBody{
		Type:   TypeBenchmark,
		App:    c.spec.App,
		System: c.spec.System,
		Scale:  c.spec.Scale,
		Result: r,
	})
}

func simulateLitmus(c cell) ([]byte, error) {
	var rs []litmus.Result
	if c.spec.Seed == 0 {
		var err error
		rs, err = litmus.RunSuite(memsys.Kinds(), c.params)
		if err != nil {
			return nil, err
		}
	} else {
		// One seeded random program on every memory system. A serial loop
		// keeps result order fixed; the machines are small enough that the
		// per-kind fan-out is not worth nesting another pool level.
		t := litmus.RandomTest(c.spec.Seed)
		for _, kind := range memsys.Kinds() {
			r, err := litmus.RunTest(t, kind, c.params)
			if err != nil {
				return nil, fmt.Errorf("zsimd: litmus %s on %s: %w", t.Name, kind, err)
			}
			rs = append(rs, r)
		}
	}
	return json.Marshal(litmusBody{
		Type:   TypeLitmus,
		Seed:   c.spec.Seed,
		Tests:  len(rs),
		Ok:     litmus.Ok(rs),
		Report: litmus.Report(rs),
	})
}
