package zsimd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is the content-addressed result store. Keys are hex SHA-256
// content addresses (see cacheKey); values are canonical result bodies.
// A Store must be safe for concurrent use.
//
// Because the key covers everything the body depends on, a Store never
// needs invalidation: a code or parameter change produces a new key, and
// an existing entry is by construction byte-identical to what a fresh
// simulation would produce.
type Store interface {
	// Get returns the body stored under key, or ok=false when absent.
	Get(key string) (body []byte, ok bool, err error)
	// Put stores body under key. Overwriting an existing entry with
	// different bytes indicates a determinism bug upstream; implementations
	// may reject it.
	Put(key string, body []byte) error
	// Len returns the number of stored entries.
	Len() (int, error)
}

// MemStore is the in-memory Store used by default and by the test harness.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	body, ok := s.m[key]
	return body, ok, nil
}

// Put implements Store.
func (s *MemStore) Put(key string, body []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.m[key]; ok && string(prev) != string(body) {
		return fmt.Errorf("zsimd: store key %.12s rewritten with different bytes (determinism bug)", key)
	}
	s.m[key] = append([]byte(nil), body...)
	return nil
}

// Len implements Store.
func (s *MemStore) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m), nil
}

// DirStore is a filesystem Store for daemon deployments that should
// survive restarts: one file per entry at <dir>/<key[:2]>/<key>.json,
// fanned out over 256 subdirectories so no directory grows unbounded.
// Writes go through a temp file + rename so a crashed daemon can never
// leave a torn body behind.
type DirStore struct {
	dir string
	mu  sync.Mutex
	// count caches the entry total (counted once at open, maintained by
	// Put) so Len — polled by every /v1/health request — does not walk the
	// whole store on a long-lived daemon.
	count int
}

// NewDirStore opens (creating if needed) a filesystem store rooted at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("zsimd: store dir: %w", err)
	}
	s := &DirStore{dir: dir}
	n, err := s.walkCount()
	if err != nil {
		return nil, fmt.Errorf("zsimd: store dir: %w", err)
	}
	s.count = n
	return s, nil
}

// path maps a content address to its file. Keys are validated hex, but a
// defensive check keeps a malicious key from escaping the root.
func (s *DirStore) path(key string) (string, error) {
	if len(key) < 8 || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("zsimd: malformed store key %q", key)
	}
	return filepath.Join(s.dir, key[:2], key+".json"), nil
}

// Get implements Store.
func (s *DirStore) Get(key string) ([]byte, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	body, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return body, true, nil
}

// Put implements Store. Rewriting an existing key with different bytes is
// rejected like MemStore does: a persistent store spans restarts and code
// revisions, which is exactly where a determinism bug would otherwise be
// papered over silently.
func (s *DirStore) Put(key string, body []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, err := os.ReadFile(p)
	switch {
	case err == nil:
		if string(prev) != string(body) {
			return fmt.Errorf("zsimd: store key %.12s rewritten with different bytes (determinism bug)", key)
		}
		return nil // identical entry already present
	case !os.IsNotExist(err):
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, p); err != nil {
		return err
	}
	s.count++
	return nil
}

// Len implements Store. The count is maintained incrementally; see the
// field comment.
func (s *DirStore) Len() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, nil
}

// walkCount counts the entries on disk; called once at open.
func (s *DirStore) walkCount() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n, err
}
