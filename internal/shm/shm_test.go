package shm

import (
	"math"
	"testing"
	"testing/quick"

	"zsim/internal/memsys"
)

// fakeAcc is an in-memory Accessor for testing views without a machine.
type fakeAcc map[memsys.Addr]uint64

func (f fakeAcc) LoadU64(a memsys.Addr) uint64     { return f[a] }
func (f fakeAcc) StoreU64(a memsys.Addr, v uint64) { f[a] = v }

func TestHeapAlignment(t *testing.T) {
	h := NewHeap(32)
	a := h.Alloc(1)
	b := h.Alloc(40)
	c := h.Alloc(8)
	if a%32 != 0 || b%32 != 0 || c%32 != 0 {
		t.Fatalf("allocations not aligned: %d %d %d", a, b, c)
	}
	if b-a < 1 || c-b < 40 {
		t.Fatal("allocations overlap")
	}
}

func TestHeapDeterministic(t *testing.T) {
	h1, h2 := NewHeap(32), NewHeap(32)
	for i := 1; i <= 20; i++ {
		if h1.Alloc(i*8) != h2.Alloc(i*8) {
			t.Fatal("allocation sequence not deterministic")
		}
	}
}

// Property: allocations never overlap.
func TestHeapNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		h := NewHeap(32)
		type region struct{ base, end memsys.Addr }
		var regions []region
		for _, s := range sizes {
			size := int(s)%256 + 1
			base := h.Alloc(size)
			for _, r := range regions {
				if base < r.end && base+memsys.Addr(size) > r.base {
					return false
				}
			}
			regions = append(regions, region{base, base + memsys.Addr(size)})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHeap(0) },
		func() { NewHeap(12) },
		func() { NewHeap(32).Alloc(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestArrayAt(t *testing.T) {
	h := NewHeap(32)
	a := NewArray(h, 4)
	if a.At(0) != a.Base || a.At(3) != a.Base+24 {
		t.Fatal("element addressing wrong")
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestArrayBounds(t *testing.T) {
	h := NewHeap(32)
	a := NewArray(h, 4)
	for _, i := range []int{-1, 4, 100} {
		func(i int) {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) should panic", i)
				}
			}()
			a.At(i)
		}(i)
	}
}

func TestArraySlice(t *testing.T) {
	h := NewHeap(32)
	a := NewArray(h, 10)
	s := a.Slice(2, 6)
	if s.Len() != 4 || s.At(0) != a.At(2) || s.At(3) != a.At(5) {
		t.Fatal("slice addressing wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad slice should panic")
			}
		}()
		a.Slice(6, 2)
	}()
}

func TestTypedViews(t *testing.T) {
	h := NewHeap(32)
	m := fakeAcc{}
	u := NewU64(h, 3)
	f := NewF64(h, 3)
	i := NewI64(h, 3)

	u.Set(m, 1, 0xdeadbeef)
	if u.Get(m, 1) != 0xdeadbeef {
		t.Fatal("u64 roundtrip failed")
	}
	f.Set(m, 2, 3.25)
	if f.Get(m, 2) != 3.25 {
		t.Fatal("f64 roundtrip failed")
	}
	f.Set(m, 0, math.Inf(-1))
	if !math.IsInf(f.Get(m, 0), -1) {
		t.Fatal("f64 -Inf roundtrip failed")
	}
	i.Set(m, 0, -42)
	if i.Get(m, 0) != -42 {
		t.Fatal("i64 negative roundtrip failed")
	}
	if got := i.Add(m, 0, 10); got != -32 || i.Get(m, 0) != -32 {
		t.Fatalf("Add returned %d", got)
	}
}

// Property: F64 Get∘Set is the identity for finite values.
func TestF64RoundtripProperty(t *testing.T) {
	h := NewHeap(32)
	a := NewF64(h, 1)
	m := fakeAcc{}
	f := func(v float64) bool {
		a.Set(m, 0, v)
		got := a.Get(m, 0)
		return got == v || (math.IsNaN(v) && math.IsNaN(got))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUsedGrows(t *testing.T) {
	h := NewHeap(32)
	if h.Used() != 0 {
		t.Fatal("fresh heap should be empty")
	}
	h.Alloc(100)
	if h.Used() < 100 {
		t.Fatal("Used must cover allocations")
	}
}
