package shm

import "testing"

// FuzzHeapAlloc: arbitrary allocation sequences never overlap and stay
// aligned.
func FuzzHeapAlloc(f *testing.F) {
	f.Add([]byte{1, 32, 255})
	f.Fuzz(func(t *testing.T, sizes []byte) {
		if len(sizes) > 512 {
			sizes = sizes[:512]
		}
		h := NewHeap(32)
		var prevEnd uint64
		for _, sz := range sizes {
			n := int(sz)%300 + 1
			base := uint64(h.Alloc(n))
			if base%32 != 0 {
				t.Fatalf("misaligned allocation at %d", base)
			}
			if base < prevEnd {
				t.Fatalf("overlap: base %d < previous end %d", base, prevEnd)
			}
			prevEnd = base + uint64(n)
		}
	})
}
