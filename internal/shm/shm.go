// Package shm manages the simulated shared address space: a bump allocator
// handing out line-aligned regions, and typed array views that applications
// use to access shared data through the machine layer's trap interface.
//
// Only *addresses* live here; the backing values are owned by the machine
// (internal/machine), which this package reaches through the Accessor
// interface so that every element access is a simulated shared access.
package shm

import (
	"fmt"
	"math"

	"zsim/internal/memsys"
)

// WordSize is the granularity of shared values: every element is an 8-byte
// word (float64 or uint64). The canonical constant lives in memsys next to
// Addr and the paged word tables keyed by memsys.WordIndex.
const WordSize = memsys.WordSize

// Accessor performs simulated shared memory accesses. *machine.Env
// implements it.
type Accessor interface {
	LoadU64(addr memsys.Addr) uint64
	StoreU64(addr memsys.Addr, v uint64)
}

// Heap allocates regions of the simulated shared address space. Allocation
// is deterministic: the same sequence of Alloc calls yields the same
// addresses.
type Heap struct {
	next  memsys.Addr
	align memsys.Addr
}

// NewHeap returns a heap whose allocations are aligned to align bytes
// (typically the coherence line size, so distinct allocations never falsely
// share a line).
func NewHeap(align int) *Heap {
	if align <= 0 || align&(align-1) != 0 {
		panic("shm: alignment must be a positive power of two")
	}
	return &Heap{align: memsys.Addr(align)}
}

// Alloc reserves size bytes and returns the region's base address.
func (h *Heap) Alloc(size int) memsys.Addr {
	if size <= 0 {
		panic(fmt.Sprintf("shm: Alloc(%d)", size))
	}
	base := h.next
	n := memsys.Addr(size)
	n = (n + h.align - 1) &^ (h.align - 1)
	h.next += n
	return base
}

// AllocWords reserves n 8-byte words.
func (h *Heap) AllocWords(n int) memsys.Addr { return h.Alloc(n * WordSize) }

// Used returns the number of bytes allocated so far.
func (h *Heap) Used() memsys.Addr { return h.next }

// Array is a shared array of n 8-byte words at Base.
type Array struct {
	Base memsys.Addr
	N    int
}

// NewArray allocates an n-word array.
func NewArray(h *Heap, n int) Array { return Array{Base: h.AllocWords(n), N: n} }

// At returns the address of element i.
func (a Array) At(i int) memsys.Addr {
	if i < 0 || i >= a.N {
		panic(fmt.Sprintf("shm: index %d out of range [0,%d)", i, a.N))
	}
	return a.Base + memsys.Addr(i*WordSize)
}

// Len returns the element count.
func (a Array) Len() int { return a.N }

// Slice returns the subarray [from, to).
func (a Array) Slice(from, to int) Array {
	if from < 0 || to > a.N || from > to {
		panic(fmt.Sprintf("shm: slice [%d,%d) of array of %d", from, to, a.N))
	}
	return Array{Base: a.Base + memsys.Addr(from*WordSize), N: to - from}
}

// U64 is a shared array of uint64.
type U64 struct{ Array }

// NewU64 allocates a shared uint64 array.
func NewU64(h *Heap, n int) U64 { return U64{NewArray(h, n)} }

// Get reads element i through m.
func (a U64) Get(m Accessor, i int) uint64 { return m.LoadU64(a.At(i)) }

// Set writes element i through m.
func (a U64) Set(m Accessor, i int, v uint64) { m.StoreU64(a.At(i), v) }

// F64 is a shared array of float64.
type F64 struct{ Array }

// NewF64 allocates a shared float64 array.
func NewF64(h *Heap, n int) F64 { return F64{NewArray(h, n)} }

// Get reads element i through m.
func (a F64) Get(m Accessor, i int) float64 { return math.Float64frombits(m.LoadU64(a.At(i))) }

// Set writes element i through m.
func (a F64) Set(m Accessor, i int, v float64) { m.StoreU64(a.At(i), math.Float64bits(v)) }

// I64 is a shared array of int64 (stored two's-complement in the word).
type I64 struct{ Array }

// NewI64 allocates a shared int64 array.
func NewI64(h *Heap, n int) I64 { return I64{NewArray(h, n)} }

// Get reads element i through m.
func (a I64) Get(m Accessor, i int) int64 { return int64(m.LoadU64(a.At(i))) }

// Set writes element i through m.
func (a I64) Set(m Accessor, i int, v int64) { m.StoreU64(a.At(i), uint64(v)) }

// Add adds d to element i and returns the new value (a read-modify-write:
// two simulated accesses; callers must hold a lock for atomicity).
func (a I64) Add(m Accessor, i int, d int64) int64 {
	v := a.Get(m, i) + d
	a.Set(m, i, v)
	return v
}
