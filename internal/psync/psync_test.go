package psync

import (
	"testing"

	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/shm"
)

func newM(t testing.TB, kind memsys.Kind) *machine.Machine {
	t.Helper()
	return machine.MustNew(kind, memsys.Default(16))
}

func TestLockMutualExclusion(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	l := NewLock(m)
	cell := shm.NewI64(m.Heap, 1)
	const perProc = 10
	m.Run("t", func(e *machine.Env) {
		for i := 0; i < perProc; i++ {
			l.Acquire(e)
			cell.Add(e, 0, 1)
			e.Compute(13)
			l.Release(e)
			e.Compute(7)
		}
	})
	if got := int64(m.PeekU64(cell.At(0))); got != 16*perProc {
		t.Fatalf("counter = %d, want %d (lost updates => broken mutual exclusion)", got, 16*perProc)
	}
}

func TestLockFIFOHandoff(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	l := NewLock(m)
	var order []int
	m.Run("t", func(e *machine.Env) {
		e.Compute(machine.Time(e.ID())) // staggered arrivals: 0,1,2,...
		l.Acquire(e)
		order = append(order, e.ID())
		e.Compute(1000)
		l.Release(e)
	})
	for i, id := range order {
		if id != i {
			t.Fatalf("grant order = %v, want FIFO by arrival", order)
		}
	}
}

func TestLockReleaseUnheldPanics(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	l := NewLock(m)
	panicked := false
	m.Run("t", func(e *machine.Env) {
		if e.ID() == 0 {
			func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				l.Release(e)
			}()
		}
	})
	if !panicked {
		t.Fatal("expected panic releasing an unheld lock")
	}
}

func TestLockAccountsSyncWait(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	l := NewLock(m)
	res := m.Run("t", func(e *machine.Env) {
		l.Acquire(e)
		e.Compute(500)
		l.Release(e)
	})
	if res.TotalSyncWait() == 0 {
		t.Fatal("contended lock must accumulate sync wait")
	}
	// Sync wait is not an overhead: the overhead classes stay clean on PRAM.
	if res.TotalReadStall()+res.TotalWriteStall()+res.TotalBufferFlush() != 0 {
		t.Fatal("PRAM run must have zero overhead components")
	}
}

func TestLockReleaseFlushesRC(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	l := NewLock(m)
	a := m.Alloc(64)
	res := m.Run("t", func(e *machine.Env) {
		if e.ID() != 0 {
			return
		}
		l.Acquire(e)
		e.StoreU64(a, 7)
		l.Release(e) // release consistency: must drain the pending write
	})
	if res.Procs[0].BufferFlush == 0 {
		t.Fatal("unlock with a pending write must incur buffer flush")
	}
}

func TestBarrierRendezvous(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	b := NewBarrier(m)
	var minExit, maxArrive machine.Time
	m.Run("t", func(e *machine.Env) {
		e.Compute(machine.Time(100 * e.ID()))
		if e.Clock() > maxArrive {
			maxArrive = e.Clock()
		}
		b.Wait(e)
		if minExit == 0 || e.Clock() < minExit {
			minExit = e.Clock()
		}
	})
	if minExit < maxArrive {
		t.Fatalf("a processor left the barrier (t=%d) before the last arrival (t=%d)", minExit, maxArrive)
	}
}

func TestBarrierReusable(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	b := NewBarrier(m)
	phase := make([]int, 16)
	m.Run("t", func(e *machine.Env) {
		for round := 0; round < 5; round++ {
			if phase[e.ID()] != round {
				t.Errorf("P%d entered round %d while at phase %d", e.ID(), round, phase[e.ID()])
			}
			phase[e.ID()]++
			e.Compute(machine.Time(e.ID()*10 + 1))
			b.Wait(e)
			// After the barrier every processor has finished this round
			// (it may already have started the next one).
			for p, ph := range phase {
				if ph < round+1 {
					t.Errorf("round %d: P%d saw P%d still at phase %d", round, e.ID(), p, ph)
				}
			}
		}
	})
}

func TestBarrierNPanics(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrierN(m, 0)
}

func TestFlagProducerConsumer(t *testing.T) {
	m := newM(t, memsys.KindRCUpd)
	f := NewFlag(m)
	a := m.Alloc(8)
	var got uint64
	m.Run("t", func(e *machine.Env) {
		switch e.ID() {
		case 0:
			e.Compute(5000)
			e.StoreU64(a, 77)
			f.Set(e) // release: the value is globally visible
		case 1:
			f.Wait(e)
			got = e.LoadU64(a)
		}
	})
	if got != 77 {
		t.Fatalf("consumer read %d, want 77", got)
	}
	if !f.IsSet() {
		t.Fatal("flag should be set")
	}
}

func TestFlagWaitAfterSet(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	f := NewFlag(m)
	m.Run("t", func(e *machine.Env) {
		if e.ID() == 0 {
			f.Set(e)
		} else {
			e.Compute(100000)
			f.Wait(e) // long after Set: no blocking path
		}
	})
}

func TestFlagReset(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	f := NewFlag(m)
	m.Run("t", func(e *machine.Env) {
		if e.ID() == 0 {
			f.Set(e)
		}
	})
	f.Reset()
	if f.IsSet() {
		t.Fatal("flag still set after Reset")
	}
}

func TestCounter(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	c := NewCounter(m, 5)
	m.Run("t", func(e *machine.Env) {
		c.Add(e, 2)
	})
	if got := int64(m.PeekU64(c.cell.At(0))); got != 5+32 {
		t.Fatalf("counter = %d, want 37", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	q := NewQueue(m, 64)
	var got []int64
	m.Run("t", func(e *machine.Env) {
		if e.ID() == 0 {
			for i := int64(1); i <= 5; i++ {
				if !q.Push(e, i) {
					t.Error("push failed on non-full queue")
				}
			}
			for {
				v, ok := q.TryPop(e)
				if !ok {
					break
				}
				got = append(got, v)
			}
		}
	})
	if len(got) != 5 {
		t.Fatalf("popped %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("order = %v, want FIFO", got)
		}
	}
}

func TestQueueFullAndEmpty(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	q := NewQueue(m, 2)
	m.Run("t", func(e *machine.Env) {
		if e.ID() != 0 {
			return
		}
		if _, ok := q.TryPop(e); ok {
			t.Error("pop of empty queue succeeded")
		}
		if !q.Push(e, 1) || !q.Push(e, 2) {
			t.Error("push to non-full queue failed")
		}
		if q.Push(e, 3) {
			t.Error("push to full queue succeeded")
		}
		if q.Len(e) != 2 {
			t.Errorf("Len = %d, want 2", q.Len(e))
		}
	})
}

func TestQueueConcurrentWorkConservation(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	q := NewQueue(m, 1024)
	popped := make([]int, 16)
	m.Run("t", func(e *machine.Env) {
		// Every processor pushes 8 items then drains whatever it can.
		for i := 0; i < 8; i++ {
			q.Push(e, int64(e.ID()*100+i))
			e.Compute(50)
		}
		for {
			_, ok := q.TryPop(e)
			if !ok {
				break
			}
			popped[e.ID()]++
			e.Compute(20)
		}
	})
	total := 0
	for _, n := range popped {
		total += n
	}
	if total != 16*8 {
		t.Fatalf("popped %d items, want %d (work lost or duplicated)", total, 16*8)
	}
}

func TestQueueCapPanics(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQueue(m, 0)
}

func TestFlagWakesAllWaiters(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	f := NewFlag(m)
	woken := 0
	m.Run("t", func(e *machine.Env) {
		if e.ID() == 15 {
			e.Compute(10000)
			f.Set(e)
			return
		}
		f.Wait(e)
		if e.Clock() < 10000 {
			t.Errorf("P%d woke at %d, before the set", e.ID(), e.Clock())
		}
		woken++
	})
	if woken != 15 {
		t.Fatalf("woken = %d, want 15", woken)
	}
}

func TestQueueWrapsAroundManyTimes(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	q := NewQueue(m, 3) // tiny ring, forced to wrap
	var popped []int64
	m.Run("t", func(e *machine.Env) {
		if e.ID() != 0 {
			return
		}
		for round := int64(0); round < 10; round++ {
			for k := int64(0); k < 3; k++ {
				if !q.Push(e, round*3+k) {
					t.Error("push failed")
				}
			}
			for k := 0; k < 3; k++ {
				v, ok := q.TryPop(e)
				if !ok {
					t.Error("pop failed")
				}
				popped = append(popped, v)
			}
		}
	})
	for i, v := range popped {
		if v != int64(i) {
			t.Fatalf("FIFO violated across wraparound: popped[%d] = %d", i, v)
		}
	}
}

func TestLockFreeAtWatermarkUnderRCSync(t *testing.T) {
	// An uncontended lock on rcsync: a later acquirer must not observe the
	// lock free before the previous holder's writes are performed.
	m := newM(t, memsys.KindRCSync)
	l := NewLock(m)
	a := m.Alloc(64)
	var relClock, acqClock machine.Time
	m.Run("t", func(e *machine.Env) {
		switch e.ID() {
		case 0:
			l.Acquire(e)
			e.StoreU64(a, 7) // pending write retires in the background
			l.Release(e)
			relClock = e.Clock() // producer did NOT stall
		case 1:
			e.Compute(20) // arrive slightly later, contend
			l.Acquire(e)
			acqClock = e.Clock()
			if got := e.LoadU64(a); got != 7 {
				t.Errorf("consumer read %d before the write performed", got)
			}
			l.Release(e)
		}
	})
	if acqClock <= relClock {
		t.Fatalf("grant at %d should be after the (non-stalling) release at %d", acqClock, relClock)
	}
}
