package psync

import (
	"zsim/internal/machine"
	"zsim/internal/shm"
	"zsim/internal/trace"
)

// SpinLock is a software test-and-test-and-set lock built from ordinary
// shared accesses — the contrast to Lock, whose coordination is a hardware
// primitive at the home node. A spin lock's behaviour depends heavily on
// the memory system: under an invalidate protocol the spinning reads hit
// the local cache until the holder's release invalidates them; under an
// update protocol the release refreshes every spinner's copy. Its traffic
// lands in the run's overhead classes (read/write stall), so it is the
// textbook workload for watching protocols handle synchronization data.
type SpinLock struct {
	m       *machine.Machine
	id      int32
	flag    shm.U64 // [0]: 0 free, 1 held
	backoff machine.Time
}

// NewSpinLock allocates a spin lock with the given polling back-off (cycles
// of local delay between probes; a small constant models a pause loop).
func NewSpinLock(m *machine.Machine, backoff machine.Time) *SpinLock {
	if backoff == 0 {
		backoff = 16
	}
	return &SpinLock{m: m, id: m.NewSyncObjID(), flag: shm.NewU64(m.Heap, 1), backoff: backoff}
}

// Acquire spins until the test-and-set wins, then applies acquire
// semantics.
func (l *SpinLock) Acquire(e *machine.Env) {
	for spins := 0; ; spins++ {
		if spins > 10_000_000 {
			panic("psync: spin lock starved (livelock?)")
		}
		// Test: spin on the (cached) flag until it reads free.
		for l.flag.Get(e, 0) != 0 {
			e.Compute(l.backoff)
		}
		// Test-and-set: one atomic exchange.
		if e.AtomicSwapU64(l.flag.At(0), 1) == 0 {
			break
		}
		e.Compute(l.backoff)
	}
	e.AcquirePoint()
	e.RecordSync(trace.LockAcq, l.id, 0)
}

// TryAcquire attempts the lock once without spinning.
func (l *SpinLock) TryAcquire(e *machine.Env) bool {
	if l.flag.Get(e, 0) != 0 {
		return false
	}
	if e.AtomicSwapU64(l.flag.At(0), 1) == 0 {
		e.AcquirePoint()
		e.RecordSync(trace.LockAcq, l.id, 0)
		return true
	}
	return false
}

// Release applies release semantics and clears the flag.
func (l *SpinLock) Release(e *machine.Env) {
	e.ReleasePoint()
	// Under a data-flow-decoupled system (rcsync) the release returns before
	// the writes are performed; clearing the flag immediately would let the
	// next winner enter the critical section too early. Hold the clear until
	// the watermark — a no-op for the eager systems, whose release drained.
	if wm := e.ReleaseWatermark(); wm > e.Clock() {
		e.AdvanceTo(wm)
	}
	e.RecordSync(trace.LockRel, l.id, uint64(e.Clock()))
	l.flag.Set(e, 0, 0)
}

// TreeBarrier is a combining-tree barrier: arrival messages climb a binary
// tree of nodes and the release broadcasts back down, so the critical path
// is O(log P) messages instead of the centralized barrier's O(P)
// serialization at node 0. Tree traffic is modeled with uncontended
// latencies (the combine happens at message granularity too fine for the
// link-occupancy model to track faithfully); the centralized Barrier is
// the contention-accurate reference.
type TreeBarrier struct {
	m       *machine.Machine
	id      int32
	n       int
	arrived []arrival
	waiting []*machine.Env
}

type arrival struct {
	node int
	at   Time
}

// NewTreeBarrier returns a reusable tree barrier over all processors.
func NewTreeBarrier(m *machine.Machine) *TreeBarrier {
	return &TreeBarrier{m: m, id: m.NewSyncObjID(), n: m.NumProcs()}
}

// Wait applies release semantics, parks until all participants arrive, and
// applies acquire semantics on exit.
func (b *TreeBarrier) Wait(e *machine.Env) {
	e.ReleasePoint()
	start := e.Clock()
	at := start
	if wm := e.ReleaseWatermark(); wm > at {
		at = wm // rcsync: the combine waits for the writes instead
	}
	b.arrived = append(b.arrived, arrival{node: e.NodeID(), at: at})
	e.RecordSync(trace.BarArrive, b.id, uint64(b.n))
	if len(b.arrived) < b.n {
		b.waiting = append(b.waiting, e)
		e.Block("tree barrier")
		e.AddSyncWait(e.Clock() - start)
	} else {
		root := b.combine()
		for _, w := range b.waiting {
			w.Unblock(b.releaseAt(root, w.NodeID()))
		}
		b.waiting = b.waiting[:0]
		b.arrived = b.arrived[:0]
		e.AdvanceTo(b.releaseAt(root, e.NodeID()))
		e.AddSyncWait(e.Clock() - start)
	}
	e.AcquirePoint()
	e.RecordSync(trace.BarDepart, b.id, uint64(b.n))
}

// combine folds the arrivals up the binary tree and returns the time the
// root observes the last one.
func (b *TreeBarrier) combine() Time {
	p := b.m.Params
	// at[i] is the combined arrival time at tree position i of the current
	// level; leaves are the participants in arrival order mapped to their
	// nodes. Pair i combines at the left child's node.
	type slot struct {
		node int
		at   Time
	}
	level := make([]slot, len(b.arrived))
	for i, a := range b.arrived {
		level[i] = slot{node: a.node, at: a.at + p.BarrierLatency}
	}
	net := b.m.Net
	for len(level) > 1 {
		next := make([]slot, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			l, r := level[i], level[i+1]
			// The right child reports to the left child's node.
			msg := r.at + net.UncontendedLatency(r.node, l.node, p.CtrlBytes)
			at := l.at
			if msg > at {
				at = msg
			}
			next = append(next, slot{node: l.node, at: at + p.BarrierLatency})
		}
		level = next
	}
	return level[0].at
}

// releaseAt is when the release broadcast reaches the given node: the
// root's time plus a tree-depth stack of downward hops.
func (b *TreeBarrier) releaseAt(root Time, node int) Time {
	p := b.m.Params
	rootNode := b.m.Params.Node(0)
	return root + b.m.Net.UncontendedLatency(rootNode, node, p.CtrlBytes) + p.BarrierLatency
}
