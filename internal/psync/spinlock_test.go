package psync

import (
	"testing"

	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/shm"
)

func TestSpinLockMutualExclusion(t *testing.T) {
	for _, kind := range []memsys.Kind{memsys.KindRCInv, memsys.KindRCUpd, memsys.KindZMachine} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m := newM(t, kind)
			l := NewSpinLock(m, 16)
			cell := shm.NewI64(m.Heap, 1)
			const perProc = 5
			m.Run("t", func(e *machine.Env) {
				for i := 0; i < perProc; i++ {
					l.Acquire(e)
					cell.Add(e, 0, 1)
					e.Compute(25)
					l.Release(e)
					e.Compute(10)
				}
			})
			if got := int64(m.PeekU64(cell.At(0))); got != 16*perProc {
				t.Fatalf("counter = %d, want %d (lost updates)", got, 16*perProc)
			}
		})
	}
}

func TestSpinLockTryAcquire(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	l := NewSpinLock(m, 0) // 0 => default backoff
	m.Run("t", func(e *machine.Env) {
		if e.ID() != 0 {
			return
		}
		if !l.TryAcquire(e) {
			t.Error("try on a free lock should win")
		}
		if l.TryAcquire(e) {
			t.Error("try on a held lock should fail")
		}
		l.Release(e)
		if !l.TryAcquire(e) {
			t.Error("try after release should win")
		}
		l.Release(e)
	})
}

// The spinning reads of a contended spin lock generate coherence traffic
// that lands in the overhead classes — and an invalidate protocol makes
// every release invalidate the spinners while an update protocol refreshes
// them. Both must still be correct; the traffic shape differs.
func TestSpinLockTrafficVisibleToProtocols(t *testing.T) {
	run := func(kind memsys.Kind) *memsys.Counters {
		m := newM(t, kind)
		l := NewSpinLock(m, 16)
		m.Run("t", func(e *machine.Env) {
			for i := 0; i < 3; i++ {
				l.Acquire(e)
				e.Compute(200)
				l.Release(e)
			}
		})
		return m.Mem.Counters()
	}
	inv := run(memsys.KindRCInv)
	if inv.Invalidations == 0 {
		t.Error("spin lock on rcinv should invalidate spinners on release")
	}
	upd := run(memsys.KindRCUpd)
	if upd.Updates == 0 {
		t.Error("spin lock on rcupd should update spinners on release")
	}
}

func TestAtomicSwapIsAtomicInVirtualTime(t *testing.T) {
	// All 16 processors swap at virtual time 0; exactly one must see 0.
	m := newM(t, memsys.KindRCInv)
	flag := shm.NewU64(m.Heap, 1)
	winners := 0
	m.Run("t", func(e *machine.Env) {
		if e.AtomicSwapU64(flag.At(0), 1) == 0 {
			winners++
		}
	})
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}

func TestTreeBarrierRendezvous(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	b := NewTreeBarrier(m)
	var maxArrive, minExit machine.Time
	m.Run("t", func(e *machine.Env) {
		e.Compute(machine.Time(100 * e.ID()))
		if e.Clock() > maxArrive {
			maxArrive = e.Clock()
		}
		b.Wait(e)
		if minExit == 0 || e.Clock() < minExit {
			minExit = e.Clock()
		}
	})
	if minExit < maxArrive {
		t.Fatalf("exit at %d before last arrival at %d", minExit, maxArrive)
	}
}

func TestTreeBarrierReusable(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	b := NewTreeBarrier(m)
	cell := shm.NewI64(m.Heap, 16)
	m.Run("t", func(e *machine.Env) {
		for round := 0; round < 4; round++ {
			cell.Set(e, e.ID(), int64(round))
			e.Compute(machine.Time(e.ID()*3 + 1))
			b.Wait(e)
			// Everyone finished the round before anyone proceeds.
			for p := 0; p < 16; p++ {
				if got := cell.Get(e, p); got < int64(round) {
					t.Errorf("round %d: P%d saw P%d at %d", round, e.ID(), p, got)
				}
			}
			b.Wait(e)
		}
	})
}

// The tree barrier's critical path is logarithmic, the central barrier's
// linear: on a large machine the tree must cost less sync wait.
func TestTreeBarrierScalesBetter(t *testing.T) {
	sync := func(tree bool) machine.Time {
		m := machine.MustNew(memsys.KindPRAM, memsys.Default(64))
		var wait func(e *machine.Env)
		if tree {
			b := NewTreeBarrier(m)
			wait = b.Wait
		} else {
			b := NewBarrier(m)
			wait = b.Wait
		}
		res := m.Run("t", func(e *machine.Env) {
			for i := 0; i < 4; i++ {
				wait(e)
			}
		})
		return res.ExecTime
	}
	central, treeT := sync(false), sync(true)
	if treeT >= central {
		t.Fatalf("tree barrier (%d cycles) should beat central (%d) at 64 procs", treeT, central)
	}
}

func TestSpinLockUnderMultithreading(t *testing.T) {
	p := memsys.DefaultMT(8, 2)
	m := machine.MustNew(memsys.KindRCInv, p)
	l := NewSpinLock(m, 16)
	cell := shm.NewI64(m.Heap, 1)
	m.Run("t", func(e *machine.Env) {
		l.Acquire(e)
		cell.Add(e, 0, 1)
		l.Release(e)
	})
	if got := int64(m.PeekU64(cell.At(0))); got != 8 {
		t.Fatalf("counter = %d, want 8", got)
	}
}
