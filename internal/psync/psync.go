// Package psync provides the simulated synchronization primitives the
// applications coordinate with: queued spin locks, centralized barriers,
// producer-consumer flags, and lock-protected shared counters and work
// queues.
//
// Synchronization has two cost components (paper §2.1): the inherent
// process-coordination wait, accounted as SyncWait, and whatever the memory
// model tacks on at synchronization points — under release consistency a
// release must drain the write buffers, and that wait is accounted as
// buffer-flush overhead by the machine layer's ReleasePoint.
package psync

import (
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/trace"
)

// Time aliases virtual time.
type Time = memsys.Time

// Lock is a FIFO queue lock mediated by the home node of its address: an
// acquire sends a request to the home, which grants the lock immediately or
// queues the requester; a release hands the lock to the next waiter.
type Lock struct {
	m      *machine.Machine
	id     int32
	addr   memsys.Addr
	home   int
	held   bool
	freeAt Time
	queue  []*machine.Env
}

// NewLock allocates a lock in shared memory (its address determines the
// home node that mediates it).
func NewLock(m *machine.Machine) *Lock {
	addr := m.Alloc(8)
	return &Lock{m: m, id: m.NewSyncObjID(), addr: addr, home: m.Params.Home(addr, m.Params.LineSize)}
}

// Acquire blocks until the lock is granted. The wait is SyncWait; the grant
// applies acquire semantics.
func (l *Lock) Acquire(e *machine.Env) {
	e.SyncPoint()
	start := e.Clock()
	if !l.held {
		req := e.SendCtrl(l.home, start) + l.m.Params.LockLatency
		if l.freeAt > req {
			req = l.freeAt
		}
		grant := e.SendCtrlFrom(l.home, e.NodeID(), req)
		e.AdvanceTo(grant)
		e.AddSyncWait(e.Clock() - start)
		l.held = true
	} else {
		l.queue = append(l.queue, e)
		e.Block("lock acquire")
		e.AddSyncWait(e.Clock() - start)
	}
	e.AcquirePoint()
	e.RecordSync(trace.LockAcq, l.id, 0)
}

// Release applies release semantics (buffer flush) and hands the lock to
// the next waiter, if any.
func (l *Lock) Release(e *machine.Env) {
	if !l.held {
		panic("psync: Release of unheld lock")
	}
	e.ReleasePoint()
	now := e.Clock()
	rel := e.SendCtrl(l.home, now) + l.m.Params.LockLatency
	// Under a data-flow-decoupled system (rcsync) the lock is observably
	// free only once the holder's writes are globally performed.
	if wm := e.ReleaseWatermark(); wm > rel {
		rel = wm
	}
	e.RecordSync(trace.LockRel, l.id, uint64(rel))
	if len(l.queue) > 0 {
		w := l.queue[0]
		l.queue = l.queue[1:]
		grant := e.SendCtrlFrom(l.home, w.NodeID(), rel)
		w.Unblock(grant)
		// The lock stays held: ownership passed directly to w.
	} else {
		l.held = false
		l.freeAt = rel
	}
}

// Barrier is a centralized barrier mediated by node 0: arrivals send a
// control message; the last arrival broadcasts the release.
type Barrier struct {
	m       *machine.Machine
	id      int32
	n       int
	waiting []*machine.Env
	maxArr  Time
}

// NewBarrier returns a reusable barrier for all of m's processors.
func NewBarrier(m *machine.Machine) *Barrier { return NewBarrierN(m, m.NumProcs()) }

// NewBarrierN returns a reusable barrier for n participants.
func NewBarrierN(m *machine.Machine, n int) *Barrier {
	if n <= 0 {
		panic("psync: barrier needs at least one participant")
	}
	return &Barrier{m: m, id: m.NewSyncObjID(), n: n}
}

// Wait applies release semantics (arrival is a release point), parks until
// all n participants have arrived, and applies acquire semantics on exit.
func (b *Barrier) Wait(e *machine.Env) {
	e.ReleasePoint()
	start := e.Clock()
	arr := e.SendCtrl(0, start) + b.m.Params.BarrierLatency
	if wm := e.ReleaseWatermark(); wm > arr {
		arr = wm // rcsync: the barrier release waits for the writes instead
	}
	if arr > b.maxArr {
		b.maxArr = arr
	}
	e.RecordSync(trace.BarArrive, b.id, uint64(b.n))
	if len(b.waiting)+1 < b.n {
		b.waiting = append(b.waiting, e)
		e.Block("barrier")
		e.AddSyncWait(e.Clock() - start)
	} else {
		rel := b.maxArr
		for _, w := range b.waiting {
			grant := e.SendCtrlFrom(0, w.NodeID(), rel)
			w.Unblock(grant)
		}
		b.waiting = b.waiting[:0]
		b.maxArr = 0
		self := e.SendCtrlFrom(0, e.NodeID(), rel)
		e.AdvanceTo(self)
		e.AddSyncWait(e.Clock() - start)
	}
	e.AcquirePoint()
	e.RecordSync(trace.BarDepart, b.id, uint64(b.n))
}

// Flag is a one-shot producer-consumer event.
type Flag struct {
	m       *machine.Machine
	id      int32
	set     bool
	setAt   Time
	setter  int // node of the setting stream
	waiting []*machine.Env
}

// NewFlag returns an unset flag.
func NewFlag(m *machine.Machine) *Flag { return &Flag{m: m, id: m.NewSyncObjID()} }

// Set raises the flag (a release point) and wakes all waiters.
func (f *Flag) Set(e *machine.Env) {
	e.ReleasePoint()
	f.set = true
	f.setAt = e.Clock()
	if wm := e.ReleaseWatermark(); wm > f.setAt {
		f.setAt = wm // rcsync: consumers observe the flag after the writes land
	}
	f.setter = e.NodeID()
	e.RecordSync(trace.FlagSet, f.id, uint64(f.setAt))
	for _, w := range f.waiting {
		grant := e.SendCtrlFrom(f.setter, w.NodeID(), f.setAt)
		w.Unblock(grant)
	}
	f.waiting = nil
}

// Wait parks until the flag is set; returns immediately (after the
// notification's propagation) if it already is.
func (f *Flag) Wait(e *machine.Env) {
	e.SyncPoint()
	start := e.Clock()
	if f.set {
		arr := e.SendCtrlFrom(f.setter, e.NodeID(), f.setAt)
		e.AdvanceTo(arr)
		e.AddSyncWait(e.Clock() - start)
	} else {
		f.waiting = append(f.waiting, e)
		e.Block("flag wait")
		e.AddSyncWait(e.Clock() - start)
	}
	e.AcquirePoint()
	e.RecordSync(trace.FlagWait, f.id, 0)
}

// IsSet reports the flag state without waiting (a cheap local test).
func (f *Flag) IsSet() bool { return f.set }

// Reset lowers the flag for reuse. Only safe between phases when no
// processor can be waiting.
func (f *Flag) Reset() {
	if len(f.waiting) > 0 {
		panic("psync: Reset of a flag with waiters")
	}
	f.set = false
}
