package psync

import (
	"zsim/internal/machine"
	"zsim/internal/shm"
)

// Counter is a lock-protected shared counter (the simulated equivalent of a
// fetch-and-add cell). Every operation performs real simulated accesses.
type Counter struct {
	lock *Lock
	cell shm.I64
}

// NewCounter allocates a counter initialized to v.
func NewCounter(m *machine.Machine, v int64) *Counter {
	c := &Counter{lock: NewLock(m), cell: shm.NewI64(m.Heap, 1)}
	m.PokeU64(c.cell.At(0), uint64(v))
	return c
}

// Add atomically adds d and returns the new value.
func (c *Counter) Add(e *machine.Env, d int64) int64 {
	c.lock.Acquire(e)
	v := c.cell.Add(e, 0, d)
	c.lock.Release(e)
	return v
}

// Get reads the current value (unlocked snapshot).
func (c *Counter) Get(e *machine.Env) int64 { return c.cell.Get(e, 0) }

// Queue is a lock-protected bounded FIFO work queue in shared memory —
// the central/local task queues of the Cholesky and Maxflow applications.
// Slots, head, and tail all live in shared memory, so queue manipulation
// generates the coherence traffic the paper attributes to task queues.
type Queue struct {
	lock *Lock
	buf  shm.I64
	meta shm.I64 // [0]=head, [1]=tail (monotonic; index = mod capacity)
}

// NewQueue allocates a queue with the given capacity.
func NewQueue(m *machine.Machine, capacity int) *Queue {
	if capacity <= 0 {
		panic("psync: queue capacity must be positive")
	}
	return &Queue{
		lock: NewLock(m),
		buf:  shm.NewI64(m.Heap, capacity),
		meta: shm.NewI64(m.Heap, 2),
	}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.buf.Len() }

// Push appends v; it reports false if the queue is full.
func (q *Queue) Push(e *machine.Env, v int64) bool {
	q.lock.Acquire(e)
	head := q.meta.Get(e, 0)
	tail := q.meta.Get(e, 1)
	if int(tail-head) >= q.buf.Len() {
		q.lock.Release(e)
		return false
	}
	q.buf.Set(e, int(tail)%q.buf.Len(), v)
	q.meta.Set(e, 1, tail+1)
	q.lock.Release(e)
	return true
}

// TryPop removes and returns the oldest element, reporting false if empty.
func (q *Queue) TryPop(e *machine.Env) (int64, bool) {
	q.lock.Acquire(e)
	head := q.meta.Get(e, 0)
	tail := q.meta.Get(e, 1)
	if head == tail {
		q.lock.Release(e)
		return 0, false
	}
	v := q.buf.Get(e, int(head)%q.buf.Len())
	q.meta.Set(e, 0, head+1)
	q.lock.Release(e)
	return v, true
}

// Len returns a snapshot of the queue length.
func (q *Queue) Len(e *machine.Env) int {
	q.lock.Acquire(e)
	n := int(q.meta.Get(e, 1) - q.meta.Get(e, 0))
	q.lock.Release(e)
	return n
}
