package mesh

import (
	"testing"
	"testing/quick"

	"zsim/internal/memsys"
)

func testNet(procs int) *Net {
	return New(memsys.Default(procs))
}

func TestHopsSelf(t *testing.T) {
	n := testNet(16)
	for i := 0; i < 16; i++ {
		if h := n.Hops(i, i); h != 0 {
			t.Fatalf("Hops(%d,%d) = %d, want 0", i, i, h)
		}
	}
}

func TestHopsKnown(t *testing.T) {
	n := testNet(16) // 4x4: node 0 at (0,0), node 15 at (3,3)
	cases := []struct{ src, dst, want int }{
		{0, 1, 1}, {0, 4, 1}, {0, 5, 2}, {0, 15, 6}, {3, 12, 6}, {5, 10, 2},
	}
	for _, c := range cases {
		if h := n.Hops(c.src, c.dst); h != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, h, c.want)
		}
	}
}

func TestPathEndpointsAndLength(t *testing.T) {
	n := testNet(16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			p := n.Path(src, dst)
			if p[0] != src || p[len(p)-1] != dst {
				t.Fatalf("Path(%d,%d) endpoints wrong: %v", src, dst, p)
			}
			if len(p)-1 != n.Hops(src, dst) {
				t.Fatalf("Path(%d,%d) length %d != hops %d", src, dst, len(p)-1, n.Hops(src, dst))
			}
		}
	}
}

// Property: every consecutive pair in a path is mesh-adjacent.
func TestPathAdjacencyProperty(t *testing.T) {
	n := testNet(16)
	f := func(s, d uint8) bool {
		src, dst := int(s)%16, int(d)%16
		p := n.Path(src, dst)
		for i := 0; i+1 < len(p); i++ {
			if n.Hops(p[i], p[i+1]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendLocalFree(t *testing.T) {
	n := testNet(16)
	if got := n.Send(3, 3, 100, 42); got != 42 {
		t.Fatalf("local send arrival = %d, want 42", got)
	}
	if n.Messages() != 0 {
		t.Fatal("local send should not count as a network message")
	}
}

func TestSendUncontendedMatchesFormula(t *testing.T) {
	n := testNet(16)
	// One hop, 8 bytes at 1.6 cyc/B => transfer ceil(12.8)=13, hop latency 2.
	got := n.Send(0, 1, 8, 0)
	want := Time(2 + 13)
	if got != want {
		t.Fatalf("arrival = %d, want %d", got, want)
	}
	if l := n.UncontendedLatency(2, 3, 8); l != want {
		t.Fatalf("uncontended = %d, want %d", l, want)
	}
}

func TestSendMultiHop(t *testing.T) {
	n := testNet(16)
	got := n.Send(0, 15, 8, 0) // 6 hops
	want := Time(6 * (2 + 13))
	if got != want {
		t.Fatalf("arrival = %d, want %d", got, want)
	}
}

func TestContentionQueues(t *testing.T) {
	n := testNet(16)
	a := n.Send(0, 1, 8, 0)
	b := n.Send(0, 1, 8, 0) // same link, same start: must queue behind a
	if b <= a {
		t.Fatalf("second message (%d) should arrive after first (%d)", b, a)
	}
	if n.QueueingCycles() == 0 {
		t.Fatal("expected nonzero queueing cycles")
	}
	// The second transfer begins when the first departs.
	if want := a + 13; b != want {
		t.Fatalf("second arrival = %d, want %d", b, want)
	}
}

func TestDisjointPathsNoContention(t *testing.T) {
	n := testNet(16)
	n.Send(0, 1, 8, 0)
	n.Send(4, 5, 8, 0) // disjoint row
	if q := n.QueueingCycles(); q != 0 {
		t.Fatalf("queueing = %d on disjoint paths, want 0", q)
	}
}

// Property: arrival is never before the uncontended latency, and equals it
// on an idle network.
func TestSendLowerBoundProperty(t *testing.T) {
	f := func(s, d uint8, sz uint8) bool {
		src, dst := int(s)%16, int(d)%16
		bytes := int(sz)%64 + 1
		n := testNet(16)
		lo := n.UncontendedLatency(src, dst, bytes)
		return n.Send(src, dst, bytes, 0) == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxUncontendedLatency(t *testing.T) {
	n := testNet(16)
	got := n.MaxUncontendedLatency(0, 4)
	// Farthest from node 0 is node 15 at 6 hops; 4 bytes => ceil(6.4)=7.
	want := Time(6 * (2 + 7))
	if got != want {
		t.Fatalf("max latency = %d, want %d", got, want)
	}
}

func TestMeshShapes(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8, 16, 32} {
		n := testNet(procs)
		// All-pairs routing must work for any supported shape.
		for s := 0; s < procs; s++ {
			for d := 0; d < procs; d++ {
				_ = n.Path(s, d)
			}
		}
	}
}

func TestTransferCyclesRounding(t *testing.T) {
	p := memsys.Default(16)
	cases := []struct {
		bytes int
		want  Time
	}{{1, 2}, {4, 7}, {8, 13}, {32, 52}, {40, 64}}
	for _, c := range cases {
		if got := p.TransferCycles(c.bytes); got != c.want {
			t.Errorf("TransferCycles(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := testNet(16)
	n.Send(0, 15, 40, 0)
	if n.Messages() != 1 || n.Bytes() != 40 {
		t.Fatalf("msgs=%d bytes=%d, want 1, 40", n.Messages(), n.Bytes())
	}
	if n.OccupiedCycles() != 6*64 {
		t.Fatalf("occupied = %d, want %d", n.OccupiedCycles(), 6*64)
	}
}

func BenchmarkSend(b *testing.B) {
	n := testNet(16)
	for i := 0; i < b.N; i++ {
		n.Send(i%16, (i*7)%16, 40, Time(i))
	}
}

// TestMinCrossShardLatency pins the sharded kernel's lookahead on the 4x4
// default mesh: with two row-band shards the closest cross-shard pair is
// mesh-adjacent (one hop), so the lookahead is exactly one hop plus one
// control-message transfer. A single shard has no cross-shard pairs and
// degenerates to the always-safe 0.
func TestMinCrossShardLatency(t *testing.T) {
	p := memsys.Default(16)
	n := New(p)

	p.KernelShards = 2
	got := n.MinCrossShardLatency(p.ShardOfNode, p.CtrlBytes)
	want := p.HopLatency + p.TransferCycles(p.CtrlBytes) // 1 hop across the band boundary
	if got != want {
		t.Errorf("two-band lookahead = %d, want %d", got, want)
	}
	if adj := n.UncontendedLatency(4, 8, p.CtrlBytes); got != adj {
		t.Errorf("lookahead %d != adjacent boundary pair latency %d", got, adj)
	}

	p.KernelShards = 1
	if got := n.MinCrossShardLatency(p.ShardOfNode, p.CtrlBytes); got != 0 {
		t.Errorf("single-shard lookahead = %d, want 0", got)
	}
}

// TestMinCrossShardLatencyManyCoreLowerBound is the exhaustive-node check
// behind the sharded kernel's lookahead contract at many-core scale: on
// the 16×16 mesh, the 32×32 mesh, and the 256-node hierarchical topology,
// every cross-shard pair's uncontended latency must be at least the
// reported minimum, and some pair must achieve it exactly.
func TestMinCrossShardLatencyManyCoreLowerBound(t *testing.T) {
	cases := []struct {
		procs  int
		topo   string
		shards int
	}{
		{256, "mesh", 4},
		{1024, "mesh", 8},
		{256, "hier", 4},
	}
	for _, c := range cases {
		p := memsys.Default(c.procs)
		p.Topology = c.topo
		p.KernelShards = c.shards
		if err := p.Validate(); err != nil {
			t.Fatalf("Procs=%d %s: %v", c.procs, c.topo, err)
		}
		n := New(p)
		got := n.MinCrossShardLatency(p.ShardOfNode, p.CtrlBytes)
		if got <= 0 {
			t.Fatalf("Procs=%d %s shards=%d: lookahead = %d, want positive", c.procs, c.topo, c.shards, got)
		}
		achieved := false
		for src := 0; src < p.Nodes(); src++ {
			for dst := 0; dst < p.Nodes(); dst++ {
				if p.ShardOfNode(src) == p.ShardOfNode(dst) {
					continue
				}
				lat := n.UncontendedLatency(src, dst, p.CtrlBytes)
				if lat < got {
					t.Fatalf("Procs=%d %s shards=%d: pair %d->%d latency %d below lookahead %d", c.procs, c.topo, c.shards, src, dst, lat, got)
				}
				if lat == got {
					achieved = true
				}
			}
		}
		if !achieved {
			t.Errorf("Procs=%d %s shards=%d: lookahead %d not achieved by any cross-shard pair", c.procs, c.topo, c.shards, got)
		}
	}
}
