// Package mesh models the CC-NUMA interconnect of the paper's simulated
// machine: a 2-D mesh with dimension-order (XY) routing, a configurable link
// bandwidth (the paper uses 1.6 CPU cycles per byte) and per-link FIFO
// contention. Messages occupy each link on their path for size-proportional
// time; a later message queues behind an earlier one on a shared link.
//
// Because the simulation kernel delivers globally visible operations in
// nondecreasing virtual time, modelling a link as a busy-until timestamp is
// an exact FIFO queue.
package mesh

import (
	"fmt"

	"zsim/internal/memsys"
	"zsim/internal/metrics"
)

// Time aliases the kernel's virtual time.
type Time = memsys.Time

// Net is the interconnect between the machine's nodes: a routing topology
// (mesh by default — the paper's network) plus link bandwidth, per-hop
// latency, and per-link FIFO contention.
//
//zlint:confine global link occupancy couples all nodes by construction — any processor's message reserves an arbitrary src→dst link; serialized by the trap token (the sharded kernel bounds it with conservative lookahead)
type Net struct {
	p    memsys.Params
	topo Topology

	// busy[from*n+to] is the time at which link from→to becomes free; for
	// a shared-medium topology (bus) busBusy serializes every transfer.
	busy    []Time
	busBusy Time

	// Stats.
	msgs     uint64
	bytes    uint64
	queueing Time // total cycles spent waiting for busy links
	occupied Time // total link-occupancy cycles injected

	// mHops records the routing hop count of each message; the plain stats
	// above are harvested by PublishMetrics at the end of a run.
	mHops *metrics.Histogram
}

// HopBuckets are the inclusive upper bounds of the mesh.hops histogram.
// The tail covers many-core meshes: a 32×32 mesh routes up to 62 hops.
var HopBuckets = []uint64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64} //zlint:ignore globalmut immutable bucket bounds, never written after package init

// InstrumentMetrics attaches the per-message hop histogram (implements
// metrics.Instrumentable).
func (n *Net) InstrumentMetrics(r *metrics.Registry) {
	n.mHops = r.Histogram("mesh.hops", HopBuckets)
}

// PublishMetrics harvests the interconnect's aggregate stats into r
// (implements metrics.Publisher). mesh.occupied_cycles over the product of
// link count and run length is the network's link utilization.
func (n *Net) PublishMetrics(r *metrics.Registry) {
	r.Counter("mesh.msgs").Add(n.msgs)
	r.Counter("mesh.bytes").Add(n.bytes)
	r.Counter("mesh.queue_cycles").Add(uint64(n.queueing))
	r.Counter("mesh.occupied_cycles").Add(uint64(n.occupied))
}

// New builds the interconnect described by p.
func New(p memsys.Params) *Net {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	topo, err := NewTopology(p.Topology, p.MeshW, p.MeshH)
	if err != nil {
		panic(err)
	}
	n := topo.Nodes()
	return &Net{p: p, topo: topo, busy: make([]Time, n*n)}
}

// Topology returns the routing topology in use.
func (n *Net) Topology() Topology { return n.topo }

// Hops returns the routing hop count between two nodes.
func (n *Net) Hops(src, dst int) int { return n.topo.Hops(src, dst) }

// Path returns the sequence of nodes visited from src to dst, inclusive of
// both endpoints. It allocates; the transfer hot path (Send) routes via
// NextHop instead.
func (n *Net) Path(src, dst int) []int { return Path(n.topo, src, dst) }

// Send injects a message of the given size from src to dst at time start and
// returns its arrival time, modelling store-and-forward transfer with
// per-link FIFO contention. A message to the local node arrives immediately.
func (n *Net) Send(src, dst, bytes int, start Time) Time {
	if src == dst {
		return start
	}
	n.msgs++
	n.bytes += uint64(bytes)
	if n.mHops != nil && metrics.Enabled() {
		n.mHops.Observe(uint64(n.topo.Hops(src, dst)))
	}
	transfer := n.p.TransferCycles(bytes)
	t := start
	if n.topo.Shared() {
		// Bus: one hop, all transfers serialize on the medium.
		begin := t + n.p.HopLatency
		if n.busBusy > begin {
			n.queueing += n.busBusy - begin
			begin = n.busBusy
		}
		depart := begin + transfer
		n.busBusy = depart
		n.occupied += transfer
		return depart
	}
	// Step hop by hop via NextHop: no path slice is ever materialized.
	nodes := n.topo.Nodes()
	for cur := src; cur != dst; {
		next := n.topo.NextHop(cur, dst)
		arrive := t + n.p.HopLatency
		idx := cur*nodes + next
		begin := arrive
		if b := n.busy[idx]; b > begin {
			n.queueing += b - begin
			begin = b
		}
		depart := begin + transfer
		n.busy[idx] = depart
		n.occupied += transfer
		t = depart
		cur = next
	}
	return t
}

// UncontendedLatency returns the latency a message would see on an idle
// network — the z-machine's propagation delay L, determined only by the
// link bandwidth (paper §2.2: no contention in the z-machine).
func (n *Net) UncontendedLatency(src, dst, bytes int) Time {
	if src == dst {
		return 0
	}
	transfer := n.p.TransferCycles(bytes)
	return Time(n.Hops(src, dst)) * (n.p.HopLatency + transfer)
}

// MinCrossShardLatency returns the smallest uncontended latency of a
// message of the given size between any two nodes in different shards,
// where shardOf maps a node to its shard index. This is the conservative
// lookahead of the sharded simulation kernel (sim.Engine.SetLookahead): no
// effect of an operation on one shard can reach another shard's state in
// less virtual time, because every cross-shard interaction travels the
// mesh. With a single shard (or none) there are no cross-shard pairs and
// the result is 0, the always-safe degenerate lookahead. Contention only
// ever delays a message, so the uncontended latency is a sound lower
// bound.
func (n *Net) MinCrossShardLatency(shardOf func(node int) int, bytes int) Time {
	nodes := n.topo.Nodes()
	var min Time
	found := false
	for a := 0; a < nodes; a++ {
		for b := 0; b < nodes; b++ {
			if a == b || shardOf(a) == shardOf(b) {
				continue
			}
			if l := n.UncontendedLatency(a, b, bytes); !found || l < min {
				min, found = l, true
			}
		}
	}
	if !found {
		return 0
	}
	return min
}

// MaxUncontendedLatency returns the worst-case uncontended latency from src
// to any node — the propagation bound used by the z-machine's availability
// counter when the oracle ships a datum to every consumer.
func (n *Net) MaxUncontendedLatency(src, bytes int) Time {
	var max Time
	for d := 0; d < n.topo.Nodes(); d++ {
		if l := n.UncontendedLatency(src, d, bytes); l > max {
			max = l
		}
	}
	return max
}

// Messages returns the number of messages injected.
func (n *Net) Messages() uint64 { return n.msgs }

// Bytes returns the total payload bytes injected.
func (n *Net) Bytes() uint64 { return n.bytes }

// QueueingCycles returns the total contention (waiting-for-link) cycles.
func (n *Net) QueueingCycles() Time { return n.queueing }

// OccupiedCycles returns total link-occupancy cycles injected.
func (n *Net) OccupiedCycles() Time { return n.occupied }

func (n *Net) String() string {
	return fmt.Sprintf("%s (%d nodes): msgs=%d bytes=%d queueing=%d",
		n.topo.Name(), n.topo.Nodes(), n.msgs, n.bytes, n.queueing)
}
