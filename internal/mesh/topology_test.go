package mesh

import (
	"testing"
	"testing/quick"

	"zsim/internal/memsys"
)

func topoNet(t *testing.T, name string, procs int) *Net {
	t.Helper()
	p := memsys.Default(procs)
	p.Topology = name
	n := New(p)
	return n
}

func allTopos() []string { return []string{"mesh", "torus", "hypercube", "xbar", "bus"} }

func TestTopologyNames(t *testing.T) {
	for _, name := range allTopos() {
		n := topoNet(t, name, 16)
		if got := n.Topology().Name(); got != name {
			t.Errorf("topology %s reports name %s", name, got)
		}
	}
}

func TestUnknownTopology(t *testing.T) {
	if _, err := NewTopology("ring-of-fire", 4, 4); err == nil {
		t.Fatal("expected error")
	}
	p := memsys.Default(16)
	p.Topology = "ring-of-fire"
	if err := p.Validate(); err == nil {
		t.Fatal("params should reject unknown topology")
	}
}

func TestHypercubeNeedsPowerOfTwo(t *testing.T) {
	if _, err := NewTopology("hypercube", 4, 3); err == nil {
		t.Fatal("expected error for 12 nodes")
	}
	p := memsys.Default(12)
	p.Topology = "hypercube"
	if err := p.Validate(); err == nil {
		t.Fatal("params should reject 12-node hypercube")
	}
}

// Property: every topology produces well-formed paths (right endpoints,
// no zero-length steps) for all pairs.
func TestAllTopologiesPathsWellFormed(t *testing.T) {
	for _, name := range allTopos() {
		n := topoNet(t, name, 16)
		for src := 0; src < 16; src++ {
			for dst := 0; dst < 16; dst++ {
				path := n.Path(src, dst)
				if path[0] != src || path[len(path)-1] != dst {
					t.Fatalf("%s: bad endpoints %v for %d->%d", name, path, src, dst)
				}
				for i := 1; i < len(path); i++ {
					if path[i] == path[i-1] {
						t.Fatalf("%s: repeated node in path %v", name, path)
					}
					if path[i] < 0 || path[i] >= 16 {
						t.Fatalf("%s: node out of range in %v", name, path)
					}
				}
			}
		}
	}
}

func TestTorusShorterThanMesh(t *testing.T) {
	mesh := topoNet(t, "mesh", 16)
	torus := topoNet(t, "torus", 16)
	// Corner to corner: mesh needs 6 hops, torus wraps in 2.
	if mesh.Hops(0, 15) != 6 {
		t.Fatalf("mesh corner hops = %d, want 6", mesh.Hops(0, 15))
	}
	if torus.Hops(0, 15) != 2 {
		t.Fatalf("torus corner hops = %d, want 2", torus.Hops(0, 15))
	}
	// Torus never exceeds the mesh.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if torus.Hops(s, d) > mesh.Hops(s, d) {
				t.Fatalf("torus %d->%d longer than mesh", s, d)
			}
		}
	}
}

func TestHypercubeHopsArePopcount(t *testing.T) {
	n := topoNet(t, "hypercube", 16)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			want := 0
			for diff := s ^ d; diff != 0; diff &= diff - 1 {
				want++
			}
			if got := n.Hops(s, d); got != want {
				t.Fatalf("hypercube Hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestXbarSingleHop(t *testing.T) {
	n := topoNet(t, "xbar", 16)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			want := 1
			if s == d {
				want = 0
			}
			if n.Hops(s, d) != want {
				t.Fatalf("xbar Hops(%d,%d) = %d", s, d, n.Hops(s, d))
			}
		}
	}
	// Distinct pairs do not contend.
	n.Send(0, 1, 8, 0)
	n.Send(2, 3, 8, 0)
	if n.QueueingCycles() != 0 {
		t.Fatal("xbar pairs should not contend")
	}
}

func TestBusSerializesEverything(t *testing.T) {
	n := topoNet(t, "bus", 16)
	a := n.Send(0, 1, 8, 0)
	b := n.Send(2, 3, 8, 0) // disjoint endpoints, same medium
	if b <= a {
		t.Fatalf("bus transfers must serialize: %d then %d", a, b)
	}
	if n.QueueingCycles() == 0 {
		t.Fatal("expected bus contention")
	}
}

// Property: on every topology, Send on an idle network equals the
// uncontended latency.
func TestSendMatchesUncontendedPerTopology(t *testing.T) {
	for _, name := range allTopos() {
		name := name
		f := func(s, d uint8, sz uint8) bool {
			src, dst := int(s)%16, int(d)%16
			bytes := int(sz)%64 + 1
			n := topoNet(t, name, 16)
			return n.Send(src, dst, bytes, 0) == n.UncontendedLatency(src, dst, bytes)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTopologyString(t *testing.T) {
	n := topoNet(t, "torus", 16)
	if got := n.String(); got == "" {
		t.Fatal("String empty")
	}
}
