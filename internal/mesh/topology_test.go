package mesh

import (
	"testing"
	"testing/quick"

	"zsim/internal/memsys"
)

func topoNet(t *testing.T, name string, procs int) *Net {
	t.Helper()
	p := memsys.Default(procs)
	p.Topology = name
	n := New(p)
	return n
}

func allTopos() []string { return []string{"mesh", "torus", "hypercube", "xbar", "bus", "hier"} }

func TestTopologyNames(t *testing.T) {
	for _, name := range allTopos() {
		n := topoNet(t, name, 16)
		if got := n.Topology().Name(); got != name {
			t.Errorf("topology %s reports name %s", name, got)
		}
	}
}

func TestUnknownTopology(t *testing.T) {
	if _, err := NewTopology("ring-of-fire", 4, 4); err == nil {
		t.Fatal("expected error")
	}
	p := memsys.Default(16)
	p.Topology = "ring-of-fire"
	if err := p.Validate(); err == nil {
		t.Fatal("params should reject unknown topology")
	}
}

func TestHypercubeNeedsPowerOfTwo(t *testing.T) {
	if _, err := NewTopology("hypercube", 4, 3); err == nil {
		t.Fatal("expected error for 12 nodes")
	}
	p := memsys.Default(12)
	p.Topology = "hypercube"
	if err := p.Validate(); err == nil {
		t.Fatal("params should reject 12-node hypercube")
	}
}

// Property: every topology produces well-formed paths (right endpoints,
// no zero-length steps) for all pairs.
func TestAllTopologiesPathsWellFormed(t *testing.T) {
	for _, name := range allTopos() {
		n := topoNet(t, name, 16)
		for src := 0; src < 16; src++ {
			for dst := 0; dst < 16; dst++ {
				path := n.Path(src, dst)
				if path[0] != src || path[len(path)-1] != dst {
					t.Fatalf("%s: bad endpoints %v for %d->%d", name, path, src, dst)
				}
				for i := 1; i < len(path); i++ {
					if path[i] == path[i-1] {
						t.Fatalf("%s: repeated node in path %v", name, path)
					}
					if path[i] < 0 || path[i] >= 16 {
						t.Fatalf("%s: node out of range in %v", name, path)
					}
				}
			}
		}
	}
}

func TestTorusShorterThanMesh(t *testing.T) {
	mesh := topoNet(t, "mesh", 16)
	torus := topoNet(t, "torus", 16)
	// Corner to corner: mesh needs 6 hops, torus wraps in 2.
	if mesh.Hops(0, 15) != 6 {
		t.Fatalf("mesh corner hops = %d, want 6", mesh.Hops(0, 15))
	}
	if torus.Hops(0, 15) != 2 {
		t.Fatalf("torus corner hops = %d, want 2", torus.Hops(0, 15))
	}
	// Torus never exceeds the mesh.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if torus.Hops(s, d) > mesh.Hops(s, d) {
				t.Fatalf("torus %d->%d longer than mesh", s, d)
			}
		}
	}
}

func TestHypercubeHopsArePopcount(t *testing.T) {
	n := topoNet(t, "hypercube", 16)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			want := 0
			for diff := s ^ d; diff != 0; diff &= diff - 1 {
				want++
			}
			if got := n.Hops(s, d); got != want {
				t.Fatalf("hypercube Hops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestXbarSingleHop(t *testing.T) {
	n := topoNet(t, "xbar", 16)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			want := 1
			if s == d {
				want = 0
			}
			if n.Hops(s, d) != want {
				t.Fatalf("xbar Hops(%d,%d) = %d", s, d, n.Hops(s, d))
			}
		}
	}
	// Distinct pairs do not contend.
	n.Send(0, 1, 8, 0)
	n.Send(2, 3, 8, 0)
	if n.QueueingCycles() != 0 {
		t.Fatal("xbar pairs should not contend")
	}
}

func TestBusSerializesEverything(t *testing.T) {
	n := topoNet(t, "bus", 16)
	a := n.Send(0, 1, 8, 0)
	b := n.Send(2, 3, 8, 0) // disjoint endpoints, same medium
	if b <= a {
		t.Fatalf("bus transfers must serialize: %d then %d", a, b)
	}
	if n.QueueingCycles() == 0 {
		t.Fatal("expected bus contention")
	}
}

// Property: on every topology, Send on an idle network equals the
// uncontended latency.
func TestSendMatchesUncontendedPerTopology(t *testing.T) {
	for _, name := range allTopos() {
		name := name
		f := func(s, d uint8, sz uint8) bool {
			src, dst := int(s)%16, int(d)%16
			bytes := int(sz)%64 + 1
			n := topoNet(t, name, 16)
			return n.Send(src, dst, bytes, 0) == n.UncontendedLatency(src, dst, bytes)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// walkLen counts NextHop steps from src to dst, failing the test if the
// walk does not terminate within the node count (a routing cycle).
func walkLen(t *testing.T, topo Topology, src, dst int) int {
	t.Helper()
	steps := 0
	for cur := src; cur != dst; {
		next := topo.NextHop(cur, dst)
		if next == cur {
			t.Fatalf("%s: NextHop(%d,%d) stuck at %d", topo.Name(), src, dst, cur)
		}
		cur = next
		if steps++; steps > topo.Nodes() {
			t.Fatalf("%s: route %d->%d does not terminate", topo.Name(), src, dst)
		}
	}
	return steps
}

func TestHierNeedsClusterMultiple(t *testing.T) {
	if _, err := NewTopology("hier", 4, 3); err == nil {
		t.Fatal("expected error for 12 nodes")
	}
	p := memsys.Default(24)
	p.Topology = "hier"
	if err := p.Validate(); err == nil {
		t.Fatal("params should reject a 24-node hier machine")
	}
}

// TestHierRoutingConsistent: on the hierarchical topology the NextHop walk
// length equals the arithmetic Hops for every pair — exhaustively at 64
// nodes (a 2×2 grid of 4×4 clusters) and on the cluster-crossing diagonal
// at 256 nodes (4×4 grid of clusters).
func TestHierRoutingConsistent(t *testing.T) {
	for _, nodes := range []int{16, 64} {
		topo, err := NewTopology("hier", nodes/4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if topo.Nodes() != nodes {
			t.Fatalf("hier over %d nodes reports %d", nodes, topo.Nodes())
		}
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				if got, want := walkLen(t, topo, s, d), topo.Hops(s, d); got != want {
					t.Fatalf("hier %d nodes: walk %d->%d took %d hops, Hops says %d", nodes, s, d, got, want)
				}
			}
		}
	}
	topo, err := NewTopology("hier", 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 256; s += 7 {
		for d := 255; d >= 0; d -= 11 {
			if got, want := walkLen(t, topo, s, d), topo.Hops(s, d); got != want {
				t.Fatalf("hier 256 nodes: walk %d->%d took %d hops, Hops says %d", s, d, got, want)
			}
		}
	}
}

// TestHierHopsDecompose pins the two-level distance: cross-cluster routes
// cost (to local gateway) + (gateway-to-gateway) + (gateway to target).
func TestHierHopsDecompose(t *testing.T) {
	topo, err := NewTopology("hier", 8, 8) // 64 nodes, 2×2 clusters
	if err != nil {
		t.Fatal(err)
	}
	h := topo.(*hierTopo)
	if w, hh := h.Clusters(); w != 2 || hh != 2 {
		t.Fatalf("cluster grid = %dx%d, want 2x2", w, hh)
	}
	// Node 5 (cluster 0, local 5 = (1,1)) to node 26 (cluster 1, local 10 =
	// (2,2)): 2 hops to gateway 0, 1 cluster hop, 4 hops out to local 10.
	if got := topo.Hops(5, 26); got != 7 {
		t.Fatalf("Hops(5,26) = %d, want 7", got)
	}
	// Same cluster: plain 4×4 mesh distance.
	if got := topo.Hops(5, 10); got != 2 {
		t.Fatalf("Hops(5,10) = %d, want 2", got)
	}
	// Gateway to gateway of a diagonal cluster: two cluster-level hops.
	if got := topo.Hops(0, 48); got != 2 {
		t.Fatalf("Hops(0,48) = %d, want 2", got)
	}
}

// TestWideMeshHops pins the many-core mesh diameters: 16×16 and 32×32
// meshes route corner to corner in (w-1)+(h-1) hops and the walk agrees.
func TestWideMeshHops(t *testing.T) {
	for _, wh := range [][2]int{{16, 16}, {32, 32}} {
		w, h := wh[0], wh[1]
		topo, err := NewTopology("mesh", w, h)
		if err != nil {
			t.Fatal(err)
		}
		n := w * h
		corner := n - 1
		if got, want := topo.Hops(0, corner), (w-1)+(h-1); got != want {
			t.Fatalf("%dx%d corner hops = %d, want %d", w, h, got, want)
		}
		if got := walkLen(t, topo, 0, corner); got != topo.Hops(0, corner) {
			t.Fatalf("%dx%d: walk %d != Hops %d", w, h, got, topo.Hops(0, corner))
		}
		for s := 0; s < n; s += 37 {
			for d := 0; d < n; d += 41 {
				if got, want := walkLen(t, topo, s, d), topo.Hops(s, d); got != want {
					t.Fatalf("%dx%d: walk %d->%d took %d, Hops says %d", w, h, s, d, got, want)
				}
			}
		}
	}
}

func TestTopologyString(t *testing.T) {
	n := topoNet(t, "torus", 16)
	if got := n.String(); got == "" {
		t.Fatal("String empty")
	}
}
