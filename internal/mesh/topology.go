package mesh

import (
	"fmt"
	"math/bits"

	"zsim/internal/memsys"
)

// Topology computes routes between nodes. The SPASM framework the paper
// builds on "provides a choice of network topologies"; these are the
// classic ones. All are used through Net, which adds link bandwidth,
// per-hop latency, and contention.
//
// Routing is expressed as a step function (NextHop) plus an arithmetic
// distance (Hops) so the per-message hot path never materializes a path
// slice; Path builds one on top of NextHop for tests and debugging.
type Topology interface {
	// Name identifies the topology.
	Name() string
	// Nodes returns the node count.
	Nodes() int
	// NextHop returns the node adjacent to cur on the route toward dst
	// (dimension-order routing), or cur itself when cur == dst.
	NextHop(cur, dst int) int
	// Hops returns the routing hop count from src to dst, computed
	// arithmetically without walking the route.
	Hops(src, dst int) int
	// Shared reports whether all links are one shared medium (a bus).
	Shared() bool
}

// Path returns the nodes visited from src to dst, inclusive, by walking
// NextHop. Routing itself (Net.Send) steps hop by hop without building
// this slice; Path exists for tests and debugging.
func Path(t Topology, src, dst int) []int {
	path := []int{src}
	for cur := src; cur != dst; {
		cur = t.NextHop(cur, dst)
		path = append(path, cur)
	}
	return path
}

// NewTopology builds the named topology over n nodes. Supported names:
// "mesh" (2-D mesh, XY routing — the paper's network), "torus" (2-D with
// wrap-around links), "hypercube" (dimension-order routing; n must be a
// power of two), "xbar" (full crossbar: every pair one hop), "bus"
// (single shared medium: every transfer serializes), and "hier" (a
// hierarchical cluster-of-meshes; n must be a multiple of
// memsys.HierClusterNodes).
func NewTopology(name string, w, h int) (Topology, error) {
	n := w * h
	switch name {
	case "", "mesh":
		return &gridTopo{w: w, h: h, wrap: false}, nil
	case "torus":
		return &gridTopo{w: w, h: h, wrap: true}, nil
	case "hypercube":
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("mesh: hypercube needs a power-of-two node count, got %d", n)
		}
		return &cubeTopo{n: n}, nil
	case "xbar":
		return &directTopo{n: n, shared: false}, nil
	case "bus":
		return &directTopo{n: n, shared: true}, nil
	case "hier":
		return newHierTopo(n)
	}
	return nil, fmt.Errorf("mesh: unknown topology %q", name)
}

// gridTopo is a 2-D mesh or torus with dimension-order (XY) routing.
type gridTopo struct {
	w, h int
	wrap bool
}

func (g *gridTopo) Name() string {
	if g.wrap {
		return "torus"
	}
	return "mesh"
}

func (g *gridTopo) Nodes() int   { return g.w * g.h }
func (g *gridTopo) Shared() bool { return false }

// step moves coordinate c toward t over size n, using the wrap-around link
// when the torus makes it shorter.
func (g *gridTopo) step(c, t, n int) int {
	if c == t {
		return c
	}
	fwd := (t - c + n) % n
	bwd := (c - t + n) % n
	if g.wrap && bwd < fwd {
		return (c - 1 + n) % n
	}
	if g.wrap && fwd <= bwd {
		return (c + 1) % n
	}
	if t > c {
		return c + 1
	}
	return c - 1
}

// dist is the hop count along one dimension (the shorter way around on a
// torus).
func (g *gridTopo) dist(c, t, n int) int {
	d := t - c
	if d < 0 {
		d = -d
	}
	if g.wrap {
		if w := n - d; w < d {
			return w
		}
	}
	return d
}

func (g *gridTopo) NextHop(cur, dst int) int {
	x, y := cur%g.w, cur/g.w
	dx, dy := dst%g.w, dst/g.w
	if x != dx { // X first (dimension order)
		return y*g.w + g.step(x, dx, g.w)
	}
	if y != dy {
		return g.step(y, dy, g.h)*g.w + x
	}
	return cur
}

func (g *gridTopo) Hops(src, dst int) int {
	return g.dist(src%g.w, dst%g.w, g.w) + g.dist(src/g.w, dst/g.w, g.h)
}

// cubeTopo is a hypercube with dimension-order (bit-fixing) routing.
type cubeTopo struct{ n int }

func (c *cubeTopo) Name() string { return "hypercube" }
func (c *cubeTopo) Nodes() int   { return c.n }
func (c *cubeTopo) Shared() bool { return false }

func (c *cubeTopo) NextHop(cur, dst int) int {
	diff := cur ^ dst
	if diff == 0 {
		return cur
	}
	return cur ^ (diff & -diff) // fix the lowest differing dimension
}

func (c *cubeTopo) Hops(src, dst int) int { return bits.OnesCount(uint(src ^ dst)) }

// Dim returns the hypercube dimension.
func (c *cubeTopo) Dim() int { return bits.TrailingZeros(uint(c.n)) }

// hierTopo is a hierarchical cluster-of-meshes: every cluster is the
// paper's 4×4 mesh (memsys.HierClusterNodes nodes), and the clusters are
// tiled in a higher-level cw×ch mesh. Node numbering is cluster-major
// (node = cluster*16 + local, local row-major inside the cluster), so the
// kernel's contiguous shard bands (memsys.ShardOfNode) group whole
// clusters and every cross-shard message crosses a cluster boundary.
//
// Routing is two-level dimension order: inside the destination cluster an
// ordinary XY route; between clusters the message first drains to the
// source cluster's gateway (local node 0), then steps gateway-to-gateway
// across the cluster-level mesh, then routes XY from the destination
// gateway to the destination node. Inter-cluster links therefore exist
// only between adjacent clusters' gateways, and those links serialize all
// cross-cluster traffic of the pair — the modelled cost of a hierarchy.
type hierTopo struct {
	intra gridTopo // the 4×4 cluster mesh
	inter gridTopo // the cw×ch mesh of clusters
}

func newHierTopo(n int) (*hierTopo, error) {
	cn := memsys.HierClusterNodes
	if n <= 0 || n%cn != 0 {
		return nil, fmt.Errorf("mesh: hier topology needs a positive multiple of %d nodes (4x4 clusters), got %d", cn, n)
	}
	clusters := n / cn
	best := 1
	for d := 1; d*d <= clusters; d++ {
		if clusters%d == 0 {
			best = d
		}
	}
	return &hierTopo{
		intra: gridTopo{w: 4, h: 4},
		inter: gridTopo{w: clusters / best, h: best},
	}, nil
}

func (t *hierTopo) Name() string { return "hier" }
func (t *hierTopo) Nodes() int   { return t.inter.Nodes() * t.intra.Nodes() }
func (t *hierTopo) Shared() bool { return false }

// Clusters returns the cluster-level mesh dimensions.
func (t *hierTopo) Clusters() (w, h int) { return t.inter.w, t.inter.h }

func (t *hierTopo) NextHop(cur, dst int) int {
	cn := t.intra.Nodes()
	cc, cl := cur/cn, cur%cn
	dc, dl := dst/cn, dst%cn
	if cc == dc {
		return cc*cn + t.intra.NextHop(cl, dl)
	}
	if cl != 0 {
		// Drain to the local gateway first.
		return cc*cn + t.intra.NextHop(cl, 0)
	}
	// Gateway-to-gateway step across the cluster mesh.
	return t.inter.NextHop(cc, dc) * cn
}

func (t *hierTopo) Hops(src, dst int) int {
	cn := t.intra.Nodes()
	sc, sl := src/cn, src%cn
	dc, dl := dst/cn, dst%cn
	if sc == dc {
		return t.intra.Hops(sl, dl)
	}
	return t.intra.Hops(sl, 0) + t.inter.Hops(sc, dc) + t.intra.Hops(0, dl)
}

// directTopo connects every pair with one hop: a crossbar when each pair
// has its own link, a bus when all transfers share one medium.
type directTopo struct {
	n      int
	shared bool
}

func (d *directTopo) Name() string {
	if d.shared {
		return "bus"
	}
	return "xbar"
}

func (d *directTopo) Nodes() int   { return d.n }
func (d *directTopo) Shared() bool { return d.shared }

func (d *directTopo) NextHop(cur, dst int) int { return dst }

func (d *directTopo) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	return 1
}

// sanity verifies a path is well formed (used by New).
func validPath(t Topology, src, dst int) error {
	p := Path(t, src, dst)
	if len(p) == 0 || p[0] != src || p[len(p)-1] != dst {
		return fmt.Errorf("mesh: %s: bad path %v for %d->%d", t.Name(), p, src, dst)
	}
	return nil
}

var _ = validPath // referenced by tests
