package mesh

import (
	"testing"

	"zsim/internal/memsys"
)

// Send is called for every protocol message; routing hop-by-hop via NextHop
// must never materialize a path slice or otherwise allocate.
func TestSendZeroAlloc(t *testing.T) {
	for _, topo := range []string{"mesh", "torus", "hypercube", "xbar", "bus"} {
		t.Run(topo, func(t *testing.T) {
			p := memsys.Default(16)
			p.Topology = topo
			n := New(p)
			var at Time
			// Warm up: no state in Send lazily allocates, but keep the pin
			// honest by exercising every link first.
			for s := 0; s < 16; s++ {
				for d := 0; d < 16; d++ {
					at = n.Send(s, d, 32, at)
				}
			}
			if a := testing.AllocsPerRun(200, func() {
				at = n.Send(0, 15, 32, at)
				at = n.Send(15, 0, 8, at)
				at = n.Send(3, 3, 8, at) // local delivery
			}); a != 0 {
				t.Fatalf("Send allocates %v times per run", a)
			}
		})
	}
}
