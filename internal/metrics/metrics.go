// Package metrics is a dependency-free registry of atomic counters, gauges,
// and fixed-bucket histograms used to account the simulator's *own*
// overheads, mirroring the paper's premise that you cannot reason about a
// memory system you do not measure. The hot layers (sim, proto, mesh,
// wbuffer, runner) update metrics on their host-side paths only; simulated
// virtual time is never read or written through this package, so simulated
// results are byte-identical with metrics on or off.
//
// Cost model: every mutation is gated on a single package-level atomic flag
// (see Enable), so a disabled build pays one atomic load and a predictable
// branch per instrumentation site — the BenchmarkMetricsOverhead budget is
// an enabled/disabled wall-time ratio under 1.1x on the paper workloads.
// All mutation methods are nil-receiver-safe so uninstrumented components
// can carry nil metric pointers for free.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// on is the package-wide enable flag; all mutation is gated on it.
var on atomic.Bool

// Enable turns metric recording on or off and returns the previous state.
// Toggle it before building machines: components read per-event metric
// handles at construction, but the gate itself is checked on every update.
func Enable(v bool) bool { return on.Swap(v) }

// Enabled reports whether metric recording is on.
func Enabled() bool { return on.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || !on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level plus its observed maximum (occupancy
// metrics: directory entries, busy workers, resident cache lines).
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores the current level and raises the observed maximum.
func (g *Gauge) Set(v int64) {
	if g == nil || !on.Load() {
		return
	}
	g.v.Store(v)
	g.raiseMax(v)
}

// Add moves the level by d (negative to decrease) and raises the maximum.
func (g *Gauge) Add(d int64) {
	if g == nil || !on.Load() {
		return
	}
	g.raiseMax(g.v.Add(d))
}

func (g *Gauge) raiseMax(v int64) { raiseI64(&g.max, v) }

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the highest level observed.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram is a fixed-bucket histogram of uint64 observations. Bounds are
// inclusive upper bounds; one overflow bucket follows the last bound.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil || !on.Load() {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	raiseU64(&h.max, v)
}

// Registry is a named collection of metrics. Each Machine owns one; the
// package-level Default aggregates across runs (see Merge).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-global registry: machines merge their per-run
// registries into it when a run completes, and the runner records
// host-side grid metrics (cell wall time, worker occupancy) directly.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// inclusive upper bounds on first use (later calls keep the first bounds).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset drops every metric (Default is reset between paperbench phases).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.hists = make(map[string]*Histogram)
}

// Merge folds src into r: counters add, gauge levels and maxima take the
// maximum (occupancy semantics), histogram buckets add. Every merge
// operation is commutative, so aggregating parallel runs yields the same
// totals regardless of completion order — which is what keeps the
// simulated portion of a bench record independent of -parallel.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || !on.Load() {
		return
	}
	src.mu.Lock()
	type hcopy struct {
		bounds          []uint64
		counts          []uint64
		count, sum, max uint64
	}
	counters := make(map[string]uint64, len(src.counters))
	for n, c := range src.counters {
		counters[n] = c.v.Load()
	}
	gauges := make(map[string][2]int64, len(src.gauges))
	for n, g := range src.gauges {
		gauges[n] = [2]int64{g.v.Load(), g.max.Load()}
	}
	hists := make(map[string]hcopy, len(src.hists))
	for n, h := range src.hists {
		counts := make([]uint64, len(h.buckets))
		for i := range h.buckets {
			counts[i] = h.buckets[i].Load()
		}
		hists[n] = hcopy{bounds: h.bounds, counts: counts,
			count: h.count.Load(), sum: h.sum.Load(), max: h.max.Load()}
	}
	src.mu.Unlock()

	for n, v := range counters {
		r.Counter(n).Add(v)
	}
	for n, vm := range gauges {
		g := r.Gauge(n)
		raiseI64(&g.v, vm[0])
		g.raiseMax(vm[0])
		g.raiseMax(vm[1])
	}
	for n, hc := range hists {
		h := r.Histogram(n, hc.bounds)
		if len(h.buckets) != len(hc.counts) {
			continue // bounds mismatch: keep the first registration
		}
		for i, c := range hc.counts {
			h.buckets[i].Add(c)
		}
		h.count.Add(hc.count)
		h.sum.Add(hc.sum)
		raiseU64(&h.max, hc.max)
	}
}

// raiseI64 lifts a to at least v.
func raiseI64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// raiseU64 lifts a to at least v.
func raiseU64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"` // len(Bounds)+1; last is overflow
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
}

// GaugeSnapshot is one gauge's frozen state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a frozen, JSON-marshalable view of a registry. Map iteration
// is randomized in Go, but encoding/json marshals maps with sorted keys, so
// an emitted snapshot is a deterministic function of the metric values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.v.Load()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = GaugeSnapshot{Value: g.v.Load(), Max: g.max.Load()}
	}
	for n, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: make([]uint64, len(h.buckets)),
			Count:  h.count.Load(),
			Sum:    h.sum.Load(),
			Max:    h.max.Load(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		s.Histograms[n] = hs
	}
	return s
}

// Counter returns the named counter's value in the snapshot (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// String renders the snapshot as sorted "name value" lines, histograms as
// count/max plus bucket counts.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-28s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := s.Gauges[n]
		fmt.Fprintf(&b, "%-28s %d (max %d)\n", n, g.Value, g.Max)
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%-28s n=%d max=%d buckets=%v le=%v\n", n, h.Count, h.Max, h.Counts, h.Bounds)
	}
	return b.String()
}

// Instrumentable is implemented by components that accept per-event metric
// handles at construction time (store buffers, the mesh, the engine).
type Instrumentable interface {
	InstrumentMetrics(r *Registry)
}

// Publisher is implemented by components that publish plain internal
// counters into a registry at harvest points (end of a machine run).
type Publisher interface {
	PublishMetrics(r *Registry)
}
