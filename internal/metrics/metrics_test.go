package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// withEnabled runs f with the package gate set, restoring it afterwards.
func withEnabled(t *testing.T, v bool, f func()) {
	t.Helper()
	prev := Enable(v)
	defer Enable(prev)
	f()
}

func TestCounterGatedOnEnable(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	withEnabled(t, false, func() {
		c.Inc()
		c.Add(10)
	})
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d, want 0", got)
	}
	withEnabled(t, true, func() {
		c.Inc()
		c.Add(10)
	})
	if got := c.Value(); got != 11 {
		t.Fatalf("enabled counter = %d, want 11", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	withEnabled(t, true, func() {
		var c *Counter
		var g *Gauge
		var h *Histogram
		c.Inc()
		c.Add(5)
		g.Set(3)
		g.Add(-1)
		h.Observe(7)
		if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 {
			t.Fatal("nil metrics must read as zero")
		}
	})
}

func TestGaugeTracksMax(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		g := r.Gauge("g")
		g.Set(5)
		g.Set(2)
		g.Add(1)
		if g.Value() != 3 {
			t.Fatalf("gauge value = %d, want 3", g.Value())
		}
		if g.Max() != 5 {
			t.Fatalf("gauge max = %d, want 5", g.Max())
		}
	})
}

func TestHistogramBuckets(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		h := r.Histogram("h", []uint64{1, 4, 16})
		for _, v := range []uint64{0, 1, 2, 4, 5, 100} {
			h.Observe(v)
		}
		s := r.Snapshot().Histograms["h"]
		want := []uint64{2, 2, 1, 1} // ≤1, ≤4, ≤16, overflow
		for i, w := range want {
			if s.Counts[i] != w {
				t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
			}
		}
		if s.Count != 6 || s.Sum != 112 || s.Max != 100 {
			t.Fatalf("count/sum/max = %d/%d/%d, want 6/112/100", s.Count, s.Sum, s.Max)
		}
	})
}

func TestRegistryReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Histogram("x", []uint64{1}) != r.Histogram("x", []uint64{2, 3}) {
		t.Fatal("Histogram not idempotent")
	}
}

func TestMergeIsCommutative(t *testing.T) {
	withEnabled(t, true, func() {
		mk := func(c uint64, g int64, obs []uint64) *Registry {
			r := NewRegistry()
			r.Counter("c").Add(c)
			r.Gauge("g").Set(g)
			h := r.Histogram("h", []uint64{2, 8})
			for _, v := range obs {
				h.Observe(v)
			}
			return r
		}
		a := func() (*Registry, *Registry) {
			return mk(3, 10, []uint64{1, 9}), mk(4, 7, []uint64{3})
		}

		r1, r2 := a()
		d1 := NewRegistry()
		d1.Merge(r1)
		d1.Merge(r2)
		r3, r4 := a()
		d2 := NewRegistry()
		d2.Merge(r4)
		d2.Merge(r3)

		s1, s2 := d1.Snapshot(), d2.Snapshot()
		j1, _ := json.Marshal(s1)
		j2, _ := json.Marshal(s2)
		if string(j1) != string(j2) {
			t.Fatalf("merge order changed the snapshot:\n%s\nvs\n%s", j1, j2)
		}
		if s1.Counter("c") != 7 {
			t.Fatalf("merged counter = %d, want 7", s1.Counter("c"))
		}
		if s1.Gauges["g"].Max != 10 {
			t.Fatalf("merged gauge max = %d, want 10", s1.Gauges["g"].Max)
		}
		if h := s1.Histograms["h"]; h.Count != 3 || h.Sum != 13 || h.Max != 9 {
			t.Fatalf("merged histogram = %+v", h)
		}
	})
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		for _, n := range []string{"z", "a", "m"} {
			r.Counter(n).Inc()
		}
		j1, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		j2, _ := json.Marshal(r.Snapshot())
		if string(j1) != string(j2) {
			t.Fatalf("snapshot JSON not deterministic:\n%s\nvs\n%s", j1, j2)
		}
	})
}

func TestConcurrentUpdates(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					r.Counter("c").Inc()
					r.Gauge("g").Set(int64(i))
					r.Histogram("h", []uint64{10, 100}).Observe(uint64(i))
				}
			}()
		}
		wg.Wait()
		if got := r.Counter("c").Value(); got != 8000 {
			t.Fatalf("counter = %d, want 8000", got)
		}
		if got := r.Snapshot().Histograms["h"].Count; got != 8000 {
			t.Fatalf("histogram count = %d, want 8000", got)
		}
	})
}

func TestSnapshotString(t *testing.T) {
	withEnabled(t, true, func() {
		r := NewRegistry()
		r.Counter("sim.switches").Add(42)
		r.Gauge("directory.entries").Set(7)
		r.Histogram("mesh.hops", []uint64{1, 2}).Observe(2)
		out := r.Snapshot().String()
		for _, want := range []string{"sim.switches", "42", "directory.entries", "mesh.hops"} {
			if !strings.Contains(out, want) {
				t.Fatalf("snapshot string missing %q:\n%s", want, out)
			}
		}
	})
}
