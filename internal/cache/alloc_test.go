package cache

import (
	"testing"

	"zsim/internal/memsys"
)

// The infinite cache backs every node of the simulated machine and is
// consulted on every access; its steady state must not hash or allocate.
func TestInfiniteSteadyStateZeroAlloc(t *testing.T) {
	c := NewInfinite()
	for a := memsys.Addr(0); a < 64; a++ {
		c.Insert(a)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := c.Lookup(7); !ok {
			t.Fatal("warmed line must hit")
		}
		c.Insert(7) // idempotent re-insert
		c.Invalidate(9)
		c.Insert(9) // re-insert after invalidate reuses the slot
	}); n != 0 {
		t.Fatalf("steady-state cache ops allocate %v times per run", n)
	}
}
