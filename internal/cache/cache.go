// Package cache models the per-processor private caches of the simulated
// CC-NUMA machine. The paper's evaluation assumes infinite caches (so the
// only read misses are cold and coherence misses); the finite set-associative
// LRU variant implements the paper's §7 "open issues" extension, introducing
// capacity and conflict misses.
package cache

import (
	"zsim/internal/memsys"
)

// State is a cache line's coherence state.
type State uint8

const (
	// Invalid: not present.
	Invalid State = iota
	// Shared: present, read-only, other copies may exist.
	Shared
	// Modified: present, writable, exclusive owner.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return "?"
}

// Line is the per-line metadata tracked by the protocols.
type Line struct {
	//zlint:confine global remote invalidation and update fan-out rewrite the state of another processor's copy; serialized by the trap token (phase-3 worklist)
	State State
	// ReadyAt is when the line's most recent fill or ownership acquisition
	// completes; a processor re-accessing a pending line waits for it.
	//
	//zlint:confine shard set only when the owning processor fills or upgrades its own line
	ReadyAt memsys.Time
	// Updates counts protocol updates received since the last local read
	// (competitive protocol self-invalidation counter).
	//
	//zlint:confine global the producer's update fan-out increments the consumer's competitive counter
	Updates int
	// Version is the directory version of the contents this copy holds (see
	// directory.Entry.Version). A copy whose version trails the directory's
	// is stale.
	//
	//zlint:confine global the update fan-out stamps the consumer's copy with the new directory version
	Version uint64
}

// Cache is a private cache holding Line metadata keyed by line index.
type Cache interface {
	// Lookup returns the line's metadata if present (any state but Invalid).
	Lookup(line memsys.Addr) (*Line, bool)
	// Insert adds the line (state Shared, zeroed metadata) and returns it.
	// If the cache is finite and the set is full, the LRU victim is evicted
	// and returned with evicted=true so the protocol can write it back.
	Insert(line memsys.Addr) (l *Line, victim memsys.Addr, victimState State, evicted bool)
	// Invalidate removes the line if present.
	Invalidate(line memsys.Addr)
	// Touch refreshes the line's recency (finite caches; no-op otherwise).
	Touch(line memsys.Addr)
	// Len returns the number of resident lines.
	Len() int
	// Evictions returns the number of capacity/conflict victims displaced
	// so far (always 0 for the infinite cache).
	Evictions() uint64
	// ForEach visits every resident line. The visit order is unspecified;
	// callers must not mutate the cache during iteration.
	ForEach(func(line memsys.Addr, l *Line))
}

// NewInfinite returns an unbounded cache (the paper's default). Lines live
// in a paged flat table indexed by line number with an explicit valid bit —
// the shared heap is a bump allocator, so line numbers are dense from zero
// and a lookup on the per-access hot path is two array indexings with no
// hashing, no per-line pointer, and no steady-state allocation.
func NewInfinite() Cache { return &infinite{} }

// islot is one paged-table slot: the line metadata plus its presence bit.
type islot struct {
	//zlint:confine shard a slot is (re)initialized only by the owning processor's insert
	l Line
	//zlint:confine global remote invalidation clears the presence bit of another processor's copy
	valid bool
}

type infinite struct {
	//zlint:confine shard the paged table is one processor's private cache; only its owner inserts
	t memsys.Paged[islot]
	//zlint:confine global the resident-line count is also decremented by remote invalidations
	n int // resident (valid) lines
}

func (c *infinite) Lookup(line memsys.Addr) (*Line, bool) {
	s := c.t.Peek(uint64(line))
	if s == nil || !s.valid {
		return nil, false
	}
	return &s.l, true
}

func (c *infinite) Insert(line memsys.Addr) (*Line, memsys.Addr, State, bool) {
	s := c.t.At(uint64(line))
	if !s.valid {
		*s = islot{l: Line{State: Shared}, valid: true}
		c.n++
	}
	return &s.l, 0, Invalid, false
}

func (c *infinite) Invalidate(line memsys.Addr) {
	if s := c.t.Peek(uint64(line)); s != nil && s.valid {
		s.valid = false
		c.n--
	}
}

func (c *infinite) Touch(memsys.Addr) {}
func (c *infinite) Len() int          { return c.n }
func (c *infinite) Evictions() uint64 { return 0 }

func (c *infinite) ForEach(f func(memsys.Addr, *Line)) {
	c.t.ForEach(func(i uint64, s *islot) {
		if s.valid {
			f(memsys.Addr(i), &s.l)
		}
	})
}

// NewFinite returns a set-associative LRU cache with the given total number
// of lines and associativity. lines must be a multiple of assoc.
func NewFinite(lines, assoc int) Cache {
	if lines <= 0 || assoc <= 0 || lines%assoc != 0 {
		panic("cache: lines must be a positive multiple of assoc")
	}
	sets := lines / assoc
	c := &finite{assoc: assoc, sets: make([]set, sets)}
	return c
}

type way struct {
	//zlint:confine shard a way is (re)filled only by the owning processor's insert
	line memsys.Addr
	//zlint:confine shard a way is (re)filled only by the owning processor's insert
	l Line
	//zlint:confine shard recency stamps advance only on the owner's own accesses
	lru uint64 // last-use stamp; larger is more recent
	//zlint:confine global remote invalidation clears the presence bit of another processor's way
	used bool
}

type set struct {
	//zlint:confine shard ways are appended only by the owning processor's insert
	ways []way
}

type finite struct {
	assoc int
	sets  []set
	//zlint:confine shard the LRU clock advances only on the owner's own accesses
	tick uint64
	//zlint:confine global the resident-line count is also decremented by remote invalidations
	n int
	//zlint:confine shard only the owning processor's inserts displace victims
	evictions uint64
}

func (c *finite) set(line memsys.Addr) *set {
	return &c.sets[int(line)%len(c.sets)]
}

func (c *finite) Lookup(line memsys.Addr) (*Line, bool) {
	s := c.set(line)
	for i := range s.ways {
		if s.ways[i].used && s.ways[i].line == line {
			return &s.ways[i].l, true
		}
	}
	return nil, false
}

func (c *finite) Insert(line memsys.Addr) (*Line, memsys.Addr, State, bool) {
	s := c.set(line)
	c.tick++
	// Already present?
	for i := range s.ways {
		if s.ways[i].used && s.ways[i].line == line {
			s.ways[i].lru = c.tick
			return &s.ways[i].l, 0, Invalid, false
		}
	}
	// Free way?
	if len(s.ways) < c.assoc {
		s.ways = append(s.ways, way{line: line, l: Line{State: Shared}, lru: c.tick, used: true})
		c.n++
		return &s.ways[len(s.ways)-1].l, 0, Invalid, false
	}
	for i := range s.ways {
		if !s.ways[i].used {
			s.ways[i] = way{line: line, l: Line{State: Shared}, lru: c.tick, used: true}
			c.n++
			return &s.ways[i].l, 0, Invalid, false
		}
	}
	// Evict LRU.
	victim := 0
	for i := 1; i < len(s.ways); i++ {
		if s.ways[i].lru < s.ways[victim].lru {
			victim = i
		}
	}
	vline, vstate := s.ways[victim].line, s.ways[victim].l.State
	s.ways[victim] = way{line: line, l: Line{State: Shared}, lru: c.tick, used: true}
	c.evictions++
	return &s.ways[victim].l, vline, vstate, true
}

func (c *finite) Invalidate(line memsys.Addr) {
	s := c.set(line)
	for i := range s.ways {
		if s.ways[i].used && s.ways[i].line == line {
			s.ways[i].used = false
			c.n--
			return
		}
	}
}

func (c *finite) Touch(line memsys.Addr) {
	s := c.set(line)
	c.tick++
	for i := range s.ways {
		if s.ways[i].used && s.ways[i].line == line {
			s.ways[i].lru = c.tick
			return
		}
	}
}

func (c *finite) Len() int { return c.n }

func (c *finite) Evictions() uint64 { return c.evictions }

func (c *finite) ForEach(f func(memsys.Addr, *Line)) {
	for si := range c.sets {
		s := &c.sets[si]
		for i := range s.ways {
			if s.ways[i].used {
				f(s.ways[i].line, &s.ways[i].l)
			}
		}
	}
}
