package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zsim/internal/memsys"
)

func TestInfiniteInsertLookup(t *testing.T) {
	c := NewInfinite()
	if _, ok := c.Lookup(7); ok {
		t.Fatal("empty cache should miss")
	}
	l, _, _, ev := c.Insert(7)
	if ev {
		t.Fatal("infinite cache must never evict")
	}
	l.State = Modified
	got, ok := c.Lookup(7)
	if !ok || got.State != Modified {
		t.Fatalf("lookup after insert: ok=%v state=%v", ok, got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestInfiniteInsertIdempotent(t *testing.T) {
	c := NewInfinite()
	l1, _, _, _ := c.Insert(3)
	l1.State = Modified
	l2, _, _, _ := c.Insert(3)
	if l2.State != Modified {
		t.Fatal("re-insert must return the existing line, not reset it")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestInfiniteInvalidate(t *testing.T) {
	c := NewInfinite()
	c.Insert(9)
	c.Invalidate(9)
	if _, ok := c.Lookup(9); ok {
		t.Fatal("line present after invalidate")
	}
	c.Invalidate(9) // idempotent
}

func TestInfiniteForEach(t *testing.T) {
	c := NewInfinite()
	for i := memsys.Addr(0); i < 10; i++ {
		c.Insert(i)
	}
	seen := map[memsys.Addr]bool{}
	c.ForEach(func(a memsys.Addr, _ *Line) { seen[a] = true })
	if len(seen) != 10 {
		t.Fatalf("ForEach visited %d lines, want 10", len(seen))
	}
}

func TestFiniteEvictsLRU(t *testing.T) {
	c := NewFinite(2, 2) // one set, two ways
	c.Insert(0)
	c.Insert(1)
	c.Touch(0) // 0 is now most recent
	_, victim, _, ev := c.Insert(2)
	if !ev || victim != 1 {
		t.Fatalf("evicted=%v victim=%d, want eviction of line 1", ev, victim)
	}
	if _, ok := c.Lookup(1); ok {
		t.Fatal("evicted line still resident")
	}
	if _, ok := c.Lookup(0); !ok {
		t.Fatal("recently used line was evicted")
	}
}

func TestFiniteVictimStateReported(t *testing.T) {
	c := NewFinite(1, 1)
	l, _, _, _ := c.Insert(0)
	l.State = Modified
	_, victim, vstate, ev := c.Insert(1)
	if !ev || victim != 0 || vstate != Modified {
		t.Fatalf("ev=%v victim=%d state=%v, want dirty eviction of line 0", ev, victim, vstate)
	}
}

func TestFiniteSetIsolation(t *testing.T) {
	c := NewFinite(4, 1)       // 4 direct-mapped sets
	c.Insert(0)                // set 0
	c.Insert(1)                // set 1
	_, _, _, ev := c.Insert(5) // set 1: evicts 1, not 0
	if !ev {
		t.Fatal("conflict in set 1 should evict")
	}
	if _, ok := c.Lookup(0); !ok {
		t.Fatal("line in a different set was disturbed")
	}
}

func TestFiniteInvalidateFreesWay(t *testing.T) {
	c := NewFinite(1, 1)
	c.Insert(0)
	c.Invalidate(0)
	if c.Len() != 0 {
		t.Fatalf("Len = %d after invalidate, want 0", c.Len())
	}
	_, _, _, ev := c.Insert(1)
	if ev {
		t.Fatal("insert into freed way should not evict")
	}
}

func TestFiniteReinsertKeepsMetadata(t *testing.T) {
	c := NewFinite(4, 2)
	l, _, _, _ := c.Insert(0)
	l.Updates = 3
	l2, _, _, ev := c.Insert(0)
	if ev || l2.Updates != 3 {
		t.Fatalf("re-insert reset metadata: ev=%v updates=%d", ev, l2.Updates)
	}
}

func TestNewFinitePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFinite(10, 4)
}

// Property: a finite cache never exceeds its capacity and Len matches the
// number of lines ForEach visits.
func TestFiniteCapacityProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewFinite(16, 4)
		for _, a := range addrs {
			c.Insert(memsys.Addr(a))
		}
		if c.Len() > 16 {
			return false
		}
		n := 0
		c.ForEach(func(memsys.Addr, *Line) { n++ })
		return n == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: after Insert(a), Lookup(a) hits, for both variants.
func TestInsertThenLookupProperty(t *testing.T) {
	f := func(a uint32, finiteCache bool) bool {
		var c Cache
		if finiteCache {
			c = NewFinite(64, 4)
		} else {
			c = NewInfinite()
		}
		c.Insert(memsys.Addr(a))
		_, ok := c.Lookup(memsys.Addr(a))
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The finite cache must behave identically to the infinite cache while the
// working set fits.
func TestFiniteMatchesInfiniteWhenFitting(t *testing.T) {
	fin := NewFinite(256, 4)
	inf := NewInfinite()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a := memsys.Addr(rng.Intn(64)) // 64 distinct lines < 256, and < 4 per set
		switch rng.Intn(3) {
		case 0:
			fin.Insert(a)
			inf.Insert(a)
		case 1:
			_, h1 := fin.Lookup(a)
			_, h2 := inf.Lookup(a)
			if h1 != h2 {
				t.Fatalf("step %d: finite hit=%v infinite hit=%v for line %d", i, h1, h2, a)
			}
		case 2:
			fin.Invalidate(a)
			inf.Invalidate(a)
		}
	}
	if fin.Len() != inf.Len() {
		t.Fatalf("Len: finite=%d infinite=%d", fin.Len(), inf.Len())
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
	if State(99).String() != "?" {
		t.Fatal("unknown state should print ?")
	}
}
