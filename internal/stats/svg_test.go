package stats

import (
	"strings"
	"testing"

	"zsim/internal/memsys"
)

func TestFigureSVG(t *testing.T) {
	f := &Figure{
		Title: "Figure 9: <test> & \"quotes\"",
		Results: []*Result{
			{App: "x", System: memsys.KindZMachine, ExecTime: 500, Procs: []Proc{{Compute: 500}}},
			twoProcResult(),
		},
	}
	svg := f.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "rect", "zmc", "rcinv", "15.00%",
		"&lt;test&gt; &amp; &quot;quotes&quot;",
		"read stall", "buffer flush",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Contains(svg, "<test>") {
		t.Error("unescaped XML in title")
	}
	// Every rect must carry non-negative geometry.
	if strings.Contains(svg, `height="-`) || strings.Contains(svg, `width="-`) {
		t.Error("negative geometry in svg")
	}
}

func TestFigureSVGEmpty(t *testing.T) {
	f := &Figure{Title: "empty"}
	if svg := f.SVG(); !strings.Contains(svg, "<svg") {
		t.Fatal("empty figure should still yield a valid svg document")
	}
}

func TestFigureSVGAllStall(t *testing.T) {
	// Bars that are pure overhead must not overflow the plot.
	f := &Figure{
		Title: "stall",
		Results: []*Result{
			{System: memsys.KindRCUpd, ExecTime: 100, Procs: []Proc{{ReadStall: 50, WriteStall: 30, BufferFlush: 20}}},
		},
	}
	svg := f.SVG()
	if !strings.Contains(svg, "rect") {
		t.Fatal("no bars rendered")
	}
}
