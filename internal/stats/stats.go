// Package stats implements the paper's overhead accounting (§2.1): per
// processor it accumulates compute time and the three overhead classes —
// read stall, write stall, and buffer flush — plus the inherent
// synchronization wait, and renders the decomposition as the tables and
// stacked-bar figures of the evaluation section.
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"zsim/internal/memsys"
)

// Time aliases virtual time.
type Time = memsys.Time

// Proc is one processor's time decomposition.
type Proc struct {
	Compute     Time // cycles charged by the application's cost model
	ReadStall   Time // wait on read misses (incl. inherent cost on the z-machine)
	WriteStall  Time // wait on write misses (store buffer full)
	BufferFlush Time // wait at release points draining buffers
	SyncWait    Time // process-coordination wait (inherent, not an overhead)
	CoreWait    Time // wait for the node's core (multithreading extension; 0 with one thread per node)
}

// Stalls returns the processor's total overhead-class cycles.
func (p Proc) Stalls() Time { return p.ReadStall + p.WriteStall + p.BufferFlush }

// Busy returns all accounted cycles.
func (p Proc) Busy() Time { return p.Compute + p.Stalls() + p.SyncWait + p.CoreWait }

// Result is one (application, memory system) execution.
type Result struct {
	App      string
	System   memsys.Kind
	ExecTime Time
	Procs    []Proc
	Counters memsys.Counters
}

// TotalReadStall sums read stall over processors.
func (r *Result) TotalReadStall() Time { return r.sum(func(p Proc) Time { return p.ReadStall }) }

// TotalWriteStall sums write stall over processors.
func (r *Result) TotalWriteStall() Time { return r.sum(func(p Proc) Time { return p.WriteStall }) }

// TotalBufferFlush sums buffer flush over processors.
func (r *Result) TotalBufferFlush() Time { return r.sum(func(p Proc) Time { return p.BufferFlush }) }

// TotalSyncWait sums synchronization wait over processors.
func (r *Result) TotalSyncWait() Time { return r.sum(func(p Proc) Time { return p.SyncWait }) }

// TotalCompute sums compute cycles over processors.
func (r *Result) TotalCompute() Time { return r.sum(func(p Proc) Time { return p.Compute }) }

// TotalCoreWait sums core-contention wait over processors (multithreading
// extension).
func (r *Result) TotalCoreWait() Time { return r.sum(func(p Proc) Time { return p.CoreWait }) }

func (r *Result) sum(f func(Proc) Time) Time {
	var t Time
	for _, p := range r.Procs {
		t += f(p)
	}
	return t
}

// OverheadPct is the figure-top percentage of Figures 2–5: the fraction of
// the overall execution time (aggregated over processors) that the three
// overhead components represent.
func (r *Result) OverheadPct() float64 {
	if r.ExecTime == 0 || len(r.Procs) == 0 {
		return 0
	}
	total := float64(r.ExecTime) * float64(len(r.Procs))
	stalls := float64(r.TotalReadStall() + r.TotalWriteStall() + r.TotalBufferFlush())
	return 100 * stalls / total
}

// PerProcOverhead returns the mean per-processor overhead cycles, the
// quantity plotted as the stacked portion of a figure bar.
func (r *Result) PerProcOverhead() (read, write, flush float64) {
	n := float64(len(r.Procs))
	if n == 0 {
		return
	}
	return float64(r.TotalReadStall()) / n, float64(r.TotalWriteStall()) / n, float64(r.TotalBufferFlush()) / n
}

func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: exec=%d overhead=%.2f%% (read=%d write=%d flush=%d sync=%d)",
		r.App, r.System, r.ExecTime, r.OverheadPct(),
		r.TotalReadStall(), r.TotalWriteStall(), r.TotalBufferFlush(), r.TotalSyncWait())
}

// Figure is one of the paper's per-application stacked-bar charts: the same
// application run on several memory systems.
type Figure struct {
	Title   string
	Results []*Result
}

// Render draws the figure as text: one stacked bar per memory system with
// the overhead percentage on top, mirroring Figures 2–5.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %9s  %s\n",
		"system", "exec-cycles", "read-stall", "write-stall", "buf-flush", "overhead", "bar (per-proc mean, r=read w=write f=flush)")
	var maxExec Time
	for _, r := range f.Results {
		if r.ExecTime > maxExec {
			maxExec = r.ExecTime
		}
	}
	for _, r := range f.Results {
		read, write, flush := r.PerProcOverhead()
		bar := renderBar(r, maxExec, 46)
		fmt.Fprintf(&b, "%-8s %12d %12.0f %12.0f %12.0f %8.2f%%  %s\n",
			r.System, r.ExecTime, read, write, flush, r.OverheadPct(), bar)
	}
	return b.String()
}

// renderBar draws an execution-time bar of width proportional to ExecTime,
// partitioned into compute/sync ('.') and the three overheads.
func renderBar(r *Result, maxExec Time, width int) string {
	if maxExec == 0 {
		return ""
	}
	n := len(r.Procs)
	if n == 0 {
		return ""
	}
	total := float64(r.ExecTime)
	cells := int(float64(width) * total / float64(maxExec))
	if cells < 1 {
		cells = 1
	}
	read, write, flush := r.PerProcOverhead()
	rc := int(read / total * float64(cells))
	wc := int(write / total * float64(cells))
	fc := int(flush / total * float64(cells))
	base := cells - rc - wc - fc
	if base < 0 {
		base = 0
	}
	return strings.Repeat(".", base) + strings.Repeat("r", rc) + strings.Repeat("w", wc) + strings.Repeat("f", fc)
}

// Table renders aligned rows. Rows may have differing widths; columns are
// sized to the widest cell.
type Table struct {
	Title string
	Head  []string
	Rows  [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table as text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Head))
	grow := func(row []string) {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	grow(t.Head)
	for _, r := range t.Rows {
		grow(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Head)
	sep := make([]string, len(widths))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Head)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// SortResults orders results in the paper's figure order (z-machine first,
// then RCinv, RCupd, RCadapt, RCcomp, then anything else alphabetically).
func SortResults(rs []*Result) {
	rank := map[memsys.Kind]int{}
	for i, k := range memsys.FigureKinds() {
		rank[k] = i
	}
	sort.SliceStable(rs, func(i, j int) bool {
		ri, iok := rank[rs[i].System]
		rj, jok := rank[rs[j].System]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		}
		return rs[i].System < rs[j].System
	})
}

// Markdown renders the table as a GitHub-flavored markdown table (for
// dropping regenerated results into EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.Head)
	sep := make([]string, len(t.Head))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Markdown renders the figure as a markdown table of the per-system
// decomposition.
func (f *Figure) Markdown() string {
	t := &Table{
		Title: f.Title,
		Head:  []string{"system", "exec-cycles", "read-stall", "write-stall", "buf-flush", "overhead"},
	}
	for _, r := range f.Results {
		read, write, flush := r.PerProcOverhead()
		t.Add(string(r.System),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%.0f", read),
			fmt.Sprintf("%.0f", write),
			fmt.Sprintf("%.0f", flush),
			fmt.Sprintf("%.2f%%", r.OverheadPct()))
	}
	return t.Markdown()
}

// Utilization returns the fraction of the aggregate execution time spent
// computing — the complement of all waiting.
func (r *Result) Utilization() float64 {
	if r.ExecTime == 0 || len(r.Procs) == 0 {
		return 0
	}
	return float64(r.TotalCompute()) / (float64(r.ExecTime) * float64(len(r.Procs)))
}

// Imbalance returns max/mean compute across processors (1.0 = perfectly
// balanced). Load imbalance shifts inherent communication cost (paper
// §2.1: the inherent cost "is dependent on task scheduling and load
// imbalance").
func (r *Result) Imbalance() float64 {
	if len(r.Procs) == 0 {
		return 0
	}
	var max, sum Time
	for _, p := range r.Procs {
		if p.Compute > max {
			max = p.Compute
		}
		sum += p.Compute
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(r.Procs))
	return float64(max) / mean
}

// JSON encodes the result for external analysis tooling.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
