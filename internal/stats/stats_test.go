package stats

import (
	"strings"
	"testing"

	"zsim/internal/memsys"
)

func twoProcResult() *Result {
	return &Result{
		App:      "toy",
		System:   memsys.KindRCInv,
		ExecTime: 1000,
		Procs: []Proc{
			{Compute: 700, ReadStall: 100, WriteStall: 50, BufferFlush: 50, SyncWait: 100},
			{Compute: 800, ReadStall: 100, WriteStall: 0, BufferFlush: 0, SyncWait: 100},
		},
	}
}

func TestTotals(t *testing.T) {
	r := twoProcResult()
	if r.TotalReadStall() != 200 || r.TotalWriteStall() != 50 || r.TotalBufferFlush() != 50 {
		t.Fatalf("totals wrong: %s", r)
	}
	if r.TotalSyncWait() != 200 || r.TotalCompute() != 1500 {
		t.Fatalf("sync/compute wrong: %s", r)
	}
}

func TestOverheadPct(t *testing.T) {
	r := twoProcResult()
	// (200+50+50) / (2*1000) = 15%
	if got := r.OverheadPct(); got != 15 {
		t.Fatalf("OverheadPct = %g, want 15", got)
	}
}

func TestOverheadPctZeroSafe(t *testing.T) {
	r := &Result{}
	if r.OverheadPct() != 0 {
		t.Fatal("empty result should have zero overhead")
	}
}

func TestProcAccessors(t *testing.T) {
	p := Proc{Compute: 10, ReadStall: 1, WriteStall: 2, BufferFlush: 3, SyncWait: 4}
	if p.Stalls() != 6 || p.Busy() != 20 {
		t.Fatalf("Stalls=%d Busy=%d", p.Stalls(), p.Busy())
	}
}

func TestPerProcOverhead(t *testing.T) {
	r := twoProcResult()
	read, write, flush := r.PerProcOverhead()
	if read != 100 || write != 25 || flush != 25 {
		t.Fatalf("per-proc overhead = %g/%g/%g", read, write, flush)
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title: "Figure X: toy",
		Results: []*Result{
			{App: "toy", System: memsys.KindZMachine, ExecTime: 500, Procs: []Proc{{Compute: 500}}},
			twoProcResult(),
		},
	}
	out := f.Render()
	for _, want := range []string{"Figure X: toy", "zmc", "rcinv", "15.00%", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The rcinv bar must be longer than the z-machine bar (2x exec time).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("unexpected render shape:\n%s", out)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{Title: "Table 1", Head: []string{"app", "writes", "pct"}}
	tb.Add("cholesky", "103915", "1.48")
	tb.Add("is", "6353", "3.78")
	out := tb.Render()
	for _, want := range []string{"Table 1", "app", "cholesky", "6353", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "app,writes,pct\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	tb2 := &Table{Head: []string{"a"}}
	tb2.Add(`x,"y`)
	if !strings.Contains(tb2.CSV(), `"x,""y"`) {
		t.Errorf("csv quoting wrong: %s", tb2.CSV())
	}
}

func TestSortResultsFigureOrder(t *testing.T) {
	rs := []*Result{
		{System: memsys.KindRCComp},
		{System: memsys.KindPRAM},
		{System: memsys.KindRCInv},
		{System: memsys.KindZMachine},
		{System: memsys.KindRCAdapt},
		{System: memsys.KindRCUpd},
	}
	SortResults(rs)
	want := []memsys.Kind{
		memsys.KindZMachine, memsys.KindRCInv, memsys.KindRCUpd,
		memsys.KindRCAdapt, memsys.KindRCComp, memsys.KindPRAM,
	}
	for i, k := range want {
		if rs[i].System != k {
			t.Fatalf("position %d = %s, want %s", i, rs[i].System, k)
		}
	}
}

func TestResultString(t *testing.T) {
	if s := twoProcResult().String(); !strings.Contains(s, "toy/rcinv") {
		t.Fatalf("String = %q", s)
	}
}

func TestRenderBarProportions(t *testing.T) {
	// All stall: the bar should be mostly overhead glyphs.
	r := &Result{
		System:   memsys.KindRCUpd,
		ExecTime: 100,
		Procs:    []Proc{{ReadStall: 100}},
	}
	bar := renderBar(r, 100, 40)
	if strings.Count(bar, "r") < 35 {
		t.Fatalf("expected a read-stall-dominated bar, got %q", bar)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Title: "T", Head: []string{"a", "b"}}
	tb.Add("x|y", "2")
	md := tb.Markdown()
	for _, want := range []string{"**T**", "| a | b |", "| --- | --- |", `x\|y`} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFigureMarkdown(t *testing.T) {
	f := &Figure{Title: "Fig", Results: []*Result{twoProcResult()}}
	md := f.Markdown()
	if !strings.Contains(md, "rcinv") || !strings.Contains(md, "15.00%") {
		t.Errorf("figure markdown wrong:\n%s", md)
	}
}

func TestUtilizationAndImbalance(t *testing.T) {
	r := &Result{
		ExecTime: 100,
		Procs: []Proc{
			{Compute: 100},
			{Compute: 50},
		},
	}
	if got := r.Utilization(); got != 0.75 {
		t.Fatalf("utilization = %g, want 0.75", got)
	}
	// max 100, mean 75 => 4/3.
	if got := r.Imbalance(); got < 1.333 || got > 1.334 {
		t.Fatalf("imbalance = %g, want 4/3", got)
	}
	empty := &Result{}
	if empty.Utilization() != 0 || empty.Imbalance() != 0 {
		t.Fatal("empty result should be zero-safe")
	}
}

func TestResultJSON(t *testing.T) {
	data, err := twoProcResult().JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"App": "toy"`, `"ExecTime": 1000`, `"ReadStall": 100`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("json missing %s:\n%s", want, data)
		}
	}
}
