package stats

import (
	"fmt"
	"strings"
)

// SVG renders the figure as a stacked-bar chart in the style of the paper's
// Figures 2–5: one bar per memory system, height proportional to execution
// time, with the three overhead classes stacked on top of the base
// (compute + synchronization) portion and the overhead percentage printed
// above each bar. The output is a standalone SVG document.
func (f *Figure) SVG() string {
	const (
		width   = 720
		height  = 420
		marginL = 70
		marginR = 20
		marginT = 50
		marginB = 60
	)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	var maxExec Time
	for _, r := range f.Results {
		if r.ExecTime > maxExec {
			maxExec = r.ExecTime
		}
	}
	if maxExec == 0 || len(f.Results) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"></svg>`
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, width, height)
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16">%s</text>`+"\n", marginL, escapeXML(f.Title))

	// Y axis with 5 gridlines labelled in cycles.
	for i := 0; i <= 5; i++ {
		y := marginT + plotH - i*plotH/5
		v := uint64(maxExec) * uint64(i) / 5
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n", marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end">%d</text>`+"\n", marginL-6, y+4, v)
	}

	n := len(f.Results)
	slot := plotW / n
	barW := slot * 6 / 10
	for i, r := range f.Results {
		x := marginL + i*slot + (slot-barW)/2
		total := float64(r.ExecTime)
		hAll := int(float64(plotH) * total / float64(maxExec))
		read, write, flush := r.PerProcOverhead()
		hRead := int(float64(plotH) * read / float64(maxExec))
		hWrite := int(float64(plotH) * write / float64(maxExec))
		hFlush := int(float64(plotH) * flush / float64(maxExec))
		hBase := hAll - hRead - hWrite - hFlush
		if hBase < 0 {
			hBase = 0
		}
		y := marginT + plotH
		seg := func(h int, color string) {
			if h <= 0 {
				return
			}
			y -= h
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n", x, y, barW, h, color)
		}
		seg(hBase, "#b8c4d0")  // compute + sync
		seg(hRead, "#d62728")  // read stall
		seg(hWrite, "#ff9900") // write stall
		seg(hFlush, "#1f77b4") // buffer flush
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle">%.2f%%</text>`+"\n",
			x+barW/2, y-6, r.OverheadPct())
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			x+barW/2, marginT+plotH+18, escapeXML(string(r.System)))
	}

	// Legend.
	legend := []struct{ label, color string }{
		{"compute+sync", "#b8c4d0"},
		{"read stall", "#d62728"},
		{"write stall", "#ff9900"},
		{"buffer flush", "#1f77b4"},
	}
	lx := marginL
	ly := height - 18
	for _, item := range legend {
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, ly-10, item.color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", lx+16, ly, item.label)
		lx += 18 + 8*len(item.label)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
