package workload

// Randomized metamorphic testing: generate arbitrary *race-free* parallel
// programs (alternating write-own-region and read-anywhere phases separated
// by barriers) and require that
//   (a) every memory system computes identical final memory, and
//   (b) no real system beats the z-machine's execution time.
// This probes protocol state machines with access patterns no hand-written
// application exercises.

import (
	"math/rand"
	"testing"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/psync"
	"zsim/internal/shm"
)

// randProg is a generated program: per processor, per phase, a list of
// operations. Even phases write only the processor's own region; odd
// phases read anywhere. Barriers separate phases.
type randProg struct {
	seed   int64
	procs  int
	region int // words per processor region
	phases int
	ops    int

	data shm.U64
	acc  shm.U64 // per-proc accumulator cells (written by owner only)
	bar  *psync.Barrier
}

func newRandProg(seed int64) *randProg {
	return &randProg{seed: seed, procs: 8, region: 16, phases: 6, ops: 40}
}

func (r *randProg) Name() string { return "randprog" }

func (r *randProg) Setup(m *machine.Machine) {
	r.data = shm.NewU64(m.Heap, r.procs*r.region)
	r.acc = shm.NewU64(m.Heap, r.procs)
	r.bar = psync.NewBarrier(m)
	rng := rand.New(rand.NewSource(r.seed))
	for i := 0; i < r.data.Len(); i++ {
		m.PokeU64(r.data.At(i), uint64(rng.Int63()))
	}
}

func (r *randProg) Body(e *machine.Env) {
	// Per-processor deterministic op stream (independent of scheduling).
	rng := rand.New(rand.NewSource(r.seed*1000 + int64(e.ID())))
	var acc uint64
	for phase := 0; phase < r.phases; phase++ {
		if phase%2 == 0 {
			// Write phase: mutate only this processor's region.
			base := e.ID() * r.region
			for i := 0; i < r.ops; i++ {
				idx := base + rng.Intn(r.region)
				v := r.data.Get(e, idx)
				r.data.Set(e, idx, v*2862933555777941757+3037000493+acc)
				e.Compute(machine.Time(rng.Intn(20)))
			}
		} else {
			// Read phase: read anywhere (no writes to data).
			for i := 0; i < r.ops; i++ {
				idx := rng.Intn(r.data.Len())
				acc += r.data.Get(e, idx)
				e.Compute(machine.Time(rng.Intn(20)))
			}
		}
		r.bar.Wait(e)
	}
	r.acc.Set(e, e.ID(), acc)
}

func (r *randProg) Verify(*machine.Machine) error { return nil }

// snapshot captures the final shared memory.
func (r *randProg) snapshot(m *machine.Machine) []uint64 {
	out := make([]uint64, r.data.Len()+r.procs)
	for i := 0; i < r.data.Len(); i++ {
		out[i] = m.PeekU64(r.data.At(i))
	}
	for p := 0; p < r.procs; p++ {
		out[r.data.Len()+p] = m.PeekU64(r.acc.At(p))
	}
	return out
}

func TestRandomProgramsEquivalentAcrossSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("random program matrix in -short mode")
	}
	for seed := int64(1); seed <= 8; seed++ {
		var want []uint64
		var zExec memsys.Time
		for _, kind := range memsys.Kinds() {
			prog := newRandProg(seed)
			m := machine.MustNew(kind, memsys.Default(prog.procs))
			res, err := apps.Run(prog, m)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, kind, err)
			}
			got := prog.snapshot(m)
			if kind == memsys.KindZMachine {
				zExec = res.ExecTime
			} else if kind != memsys.KindPRAM && res.ExecTime < zExec {
				t.Errorf("seed %d: %s exec %d beats zmc %d", seed, kind, res.ExecTime, zExec)
			}
			if want == nil {
				want = got
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d on %s: word %d = %d, reference %d (value corruption)",
						seed, kind, i, got[i], want[i])
				}
			}
		}
	}
}

// The same generated programs must be correct under multithreading and on
// every topology: the sharing machinery changes, the values must not.
func TestRandomProgramsUnderVariantMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("variant matrix in -short mode")
	}
	configs := []memsys.Params{
		memsys.DefaultMT(8, 2),
		func() memsys.Params {
			p := memsys.Default(8)
			p.Topology = "bus"
			return p
		}(),
		func() memsys.Params {
			p := memsys.Default(8)
			p.FiniteCache = true
			p.CacheLines = 8
			p.CacheAssoc = 2
			return p
		}(),
	}
	for seed := int64(1); seed <= 3; seed++ {
		ref := newRandProg(seed)
		mref := machine.MustNew(memsys.KindPRAM, memsys.Default(ref.procs))
		if _, err := apps.Run(ref, mref); err != nil {
			t.Fatal(err)
		}
		want := ref.snapshot(mref)
		for ci, p := range configs {
			prog := newRandProg(seed)
			m := machine.MustNew(memsys.KindRCUpd, p)
			if _, err := apps.Run(prog, m); err != nil {
				t.Fatalf("seed %d config %d: %v", seed, ci, err)
			}
			got := prog.snapshot(m)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d config %d: word %d differs", seed, ci, i)
				}
			}
		}
	}
}
