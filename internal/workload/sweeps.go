package workload

import (
	"fmt"

	"zsim/internal/apps"
	"zsim/internal/apps/cholesky"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/runner"
	"zsim/internal/stats"
)

// Time aliases virtual time.
type Time = memsys.Time

// The sweeps below regenerate the paper's §6 architectural-implications
// analysis and §7 open issues as concrete ablation experiments.

// StoreBufferSweep varies the store buffer depth (§6: "write stall time is
// dependent on two parameters: the store buffer size and the relative speed
// of the network").
func StoreBufferSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, sizes []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Store buffer sweep: %s on %s", app, kind),
		Head:  []string{"entries", "exec-cycles", "write-stall", "buf-flush", "overhead%"},
	}
	results, err := runner.Grid(len(sizes), func(i int) (*stats.Result, error) {
		p := base
		p.StoreBufEntries = sizes[i]
		return Run(app, scale, kind, p)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Add(fmt.Sprintf("%d", sizes[i]),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalWriteStall()),
			fmt.Sprintf("%d", r.TotalBufferFlush()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// NetworkSweep varies the link bandwidth (§6: improving the network speed
// relative to the processor lowers write stall).
func NetworkSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, cyclesPerByte []float64) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Network speed sweep: %s on %s", app, kind),
		Head:  []string{"cyc/byte", "exec-cycles", "read-stall", "write-stall", "buf-flush", "overhead%"},
	}
	results, err := runner.Grid(len(cyclesPerByte), func(i int) (*stats.Result, error) {
		p := base
		p.LinkCyclesPerByte = cyclesPerByte[i]
		return Run(app, scale, kind, p)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Add(fmt.Sprintf("%.2f", cyclesPerByte[i]),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalWriteStall()),
			fmt.Sprintf("%d", r.TotalBufferFlush()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// ThresholdSweep varies RCcomp's competitive self-invalidation threshold.
func ThresholdSweep(app string, scale Scale, base memsys.Params, thresholds []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Competitive threshold sweep: %s on rccomp", app),
		Head:  []string{"threshold", "exec-cycles", "read-stall", "write-stall", "buf-flush", "self-inval", "overhead%"},
	}
	results, err := runner.Grid(len(thresholds), func(i int) (*stats.Result, error) {
		p := base
		p.CompThreshold = thresholds[i]
		return Run(app, scale, memsys.KindRCComp, p)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Add(fmt.Sprintf("%d", thresholds[i]),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalWriteStall()),
			fmt.Sprintf("%d", r.TotalBufferFlush()),
			fmt.Sprintf("%d", r.Counters.SelfInvalidations),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// FiniteCacheSweep explores the §7 open issue: the overhead added by finite
// caches (capacity and conflict misses) versus the paper's infinite-cache
// assumption.
func FiniteCacheSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, lines []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Finite cache sweep: %s on %s (4-way LRU)", app, kind),
		Head:  []string{"cache-lines", "exec-cycles", "read-miss", "cold-miss", "read-stall", "overhead%"},
	}
	labels := []string{"inf"}
	points := []memsys.Params{base}
	for _, n := range lines {
		p := base
		p.FiniteCache = true
		p.CacheLines = n
		p.CacheAssoc = 4
		labels = append(labels, fmt.Sprintf("%d", n))
		points = append(points, p)
	}
	results, err := runner.Grid(len(points), func(i int) (*stats.Result, error) {
		return Run(app, scale, kind, points[i])
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Add(labels[i],
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Counters.ReadMisses),
			fmt.Sprintf("%d", r.Counters.ColdMisses),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// PrefetchSweep explores the §6 suggestion that cold-miss-dominated
// applications (Cholesky) benefit from prefetching.
func PrefetchSweep(app string, scale Scale, base memsys.Params, degrees []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Sequential prefetch sweep: %s on rcinv", app),
		Head:  []string{"degree", "exec-cycles", "read-stall", "prefetches", "overhead%"},
	}
	results, err := runner.Grid(len(degrees), func(i int) (*stats.Result, error) {
		p := base
		p.PrefetchDegree = degrees[i]
		return Run(app, scale, memsys.KindRCInv, p)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Add(fmt.Sprintf("%d", degrees[i]),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.Counters.Prefetches),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// SCvsRC contrasts the sequentially consistent baseline (what most studies
// benchmark against) with release consistency, per application.
func SCvsRC(scale Scale, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "SCinv vs RCinv (write stall bought back by release consistency)",
		Head:  []string{"app", "sc-exec", "rc-exec", "sc-write-stall", "rc-write-stall", "speedup"},
	}
	apps := AppNames()
	kinds := []memsys.Kind{memsys.KindSCInv, memsys.KindRCInv}
	results, err := runner.Grid(len(apps)*len(kinds), func(i int) (*stats.Result, error) {
		return Run(apps[i/len(kinds)], scale, kinds[i%len(kinds)], p)
	})
	if err != nil {
		return nil, err
	}
	for i, name := range apps {
		sc, rc := results[2*i], results[2*i+1]
		t.Add(name,
			fmt.Sprintf("%d", sc.ExecTime),
			fmt.Sprintf("%d", rc.ExecTime),
			fmt.Sprintf("%d", sc.TotalWriteStall()),
			fmt.Sprintf("%d", rc.TotalWriteStall()),
			fmt.Sprintf("%.3f", float64(sc.ExecTime)/float64(rc.ExecTime)))
	}
	return t, nil
}

// MultithreadSweep explores the §7 open issue of multithreading as a
// latency-tolerance mechanism: the machine keeps a fixed set of NUMA nodes
// while each node runs 1, 2, 4, ... hardware threads, so the same total
// work (strong scaling) is attacked by more execution streams whose memory
// stalls overlap each other's computation.
func MultithreadSweep(app string, scale Scale, kind memsys.Kind, nodes int, threads []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Multithreading sweep: %s on %s, %d nodes", app, kind, nodes),
		Head:  []string{"threads/node", "streams", "exec-cycles", "read-stall", "core-wait", "overhead%"},
	}
	results, err := runner.Grid(len(threads), func(i int) (*stats.Result, error) {
		return Run(app, scale, kind, memsys.DefaultMT(nodes*threads[i], threads[i]))
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		th := threads[i]
		t.Add(fmt.Sprintf("%d", th),
			fmt.Sprintf("%d", nodes*th),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalCoreWait()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// ScalabilitySweep runs an application across machine sizes on one memory
// system, reporting execution time and speedup over the single-processor
// run. The paper's framework descends from the authors' scalability studies
// (SIGMETRICS'94 / JPDC'94); this sweep recreates that view.
func ScalabilitySweep(app string, scale Scale, kind memsys.Kind, procs []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Scalability: %s on %s", app, kind),
		Head:  []string{"procs", "exec-cycles", "speedup", "overhead%", "sync-wait"},
	}
	results, err := runner.Grid(len(procs), func(i int) (*stats.Result, error) {
		return Run(app, scale, kind, memsys.Default(procs[i]))
	})
	if err != nil {
		return nil, err
	}
	var base Time
	for i, r := range results {
		if base == 0 {
			base = r.ExecTime
		}
		t.Add(fmt.Sprintf("%d", procs[i]),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%.2f", float64(base)/float64(r.ExecTime)),
			fmt.Sprintf("%.2f", r.OverheadPct()),
			fmt.Sprintf("%d", r.TotalSyncWait()))
	}
	return t, nil
}

// TopologySweep runs an application on one memory system across
// interconnect topologies (SPASM "provides a choice of network topologies";
// the paper's evaluation uses the mesh). The z-machine column shows how the
// topology moves the inherent-communication bound itself.
func TopologySweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, topologies []string) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Topology sweep: %s on %s", app, kind),
		Head:  []string{"topology", "exec-cycles", "read-stall", "net-queueing-visible", "overhead%"},
	}
	results, err := runner.Grid(len(topologies), func(i int) (*stats.Result, error) {
		p := base
		p.Topology = topologies[i]
		return Run(app, scale, kind, p)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Add(topologies[i],
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalWriteStall()+r.TotalBufferFlush()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// RCSyncComparison regenerates the §6 proposal experiment (E15): RCinv
// versus RCsync — identical hardware, but synchronization carries the
// data-flow guarantee so releases never stall. The paper predicts the
// buffer-flush component vanishes.
func RCSyncComparison(scale Scale, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "RCinv vs RCsync (paper §6: decouple data flow from synchronization)",
		Head:  []string{"app", "rcinv-exec", "rcsync-exec", "rcinv-flush", "rcsync-flush", "speedup"},
	}
	apps := AppNames()
	kinds := []memsys.Kind{memsys.KindRCInv, memsys.KindRCSync}
	results, err := runner.Grid(len(apps)*len(kinds), func(i int) (*stats.Result, error) {
		return Run(apps[i/len(kinds)], scale, kinds[i%len(kinds)], p)
	})
	if err != nil {
		return nil, err
	}
	for i, name := range apps {
		inv, sy := results[2*i], results[2*i+1]
		t.Add(name,
			fmt.Sprintf("%d", inv.ExecTime),
			fmt.Sprintf("%d", sy.ExecTime),
			fmt.Sprintf("%d", inv.TotalBufferFlush()),
			fmt.Sprintf("%d", sy.TotalBufferFlush()),
			fmt.Sprintf("%.3f", float64(inv.ExecTime)/float64(sy.ExecTime)))
	}
	return t, nil
}

// OrderingSweep contrasts Cholesky elimination orderings: the natural
// (band) ordering versus nested dissection. The ordering reshapes the
// whole system: fill, supernode structure, task parallelism, and hence the
// communication the memory systems must carry.
func OrderingSweep(scale Scale, kind memsys.Kind, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Elimination ordering sweep: cholesky on %s", kind),
		Head:  []string{"ordering", "nnz(L)", "supernodes", "exec-cycles", "read-stall", "overhead%"},
	}
	grid := cholesky.Small().Grid
	if scale == ScalePaper {
		grid = cholesky.Paper().Grid
	}
	orderings := []string{"natural", "nd"}
	type cell struct {
		app *cholesky.CH
		r   *stats.Result
	}
	results, err := runner.Grid(len(orderings), func(i int) (cell, error) {
		app := cholesky.New(cholesky.Config{Grid: grid, Ordering: orderings[i]})
		m, err := machine.New(kind, p)
		if err != nil {
			return cell{}, err
		}
		r, err := apps.Run(app, m)
		if err != nil {
			return cell{}, fmt.Errorf("workload: cholesky/%s on %s: %w", orderings[i], kind, err)
		}
		return cell{app, r}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range results {
		t.Add(orderings[i],
			fmt.Sprintf("%d", c.app.Sym().NNZ()),
			fmt.Sprintf("%d", c.app.Sym().NS()),
			fmt.Sprintf("%d", c.r.ExecTime),
			fmt.Sprintf("%d", c.r.TotalReadStall()),
			fmt.Sprintf("%.2f", c.r.OverheadPct()))
	}
	return t, nil
}

// DirPointerSweep varies the directory's sharer-pointer budget (Dir-i
// versus the paper's full-map assumption) — extension E18. Widely shared
// data (Barnes-Hut's tree and bodies) suffers pointer thrashing when the
// budget is small.
func DirPointerSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, pointers []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Directory pointer sweep: %s on %s", app, kind),
		Head:  []string{"pointers", "exec-cycles", "read-miss", "ptr-evictions", "overhead%"},
	}
	labels := []string{"full-map"}
	points := []memsys.Params{base}
	for _, n := range pointers {
		p := base
		p.DirPointers = n
		labels = append(labels, fmt.Sprintf("%d", n))
		points = append(points, p)
	}
	results, err := runner.Grid(len(points), func(i int) (*stats.Result, error) {
		return Run(app, scale, kind, points[i])
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Add(labels[i],
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Counters.ReadMisses),
			fmt.Sprintf("%d", r.Counters.PointerEvictions),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// LineSizeSweep varies the coherence unit of the real memory systems. The
// z-machine fixes its unit at one word precisely so that "the only
// communication that occurs is due to true sharing" (paper §3); sweeping
// the real systems' line size exposes the false-sharing cost of bigger
// lines against their spatial-locality benefit.
func LineSizeSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, sizes []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Line size sweep: %s on %s", app, kind),
		Head:  []string{"line-bytes", "exec-cycles", "read-miss", "invalidations", "overhead%"},
	}
	results, err := runner.Grid(len(sizes), func(i int) (*stats.Result, error) {
		p := base
		p.LineSize = sizes[i]
		return Run(app, scale, kind, p)
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		t.Add(fmt.Sprintf("%d", sizes[i]),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Counters.ReadMisses),
			fmt.Sprintf("%d", r.Counters.Invalidations),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// OracleSweep contrasts the z-machine's two oracle models: the paper's §3
// simulation (broadcast + per-block counter, worst-case propagation) and
// its §2.2 definition (the producer ships to each consumer, per-consumer
// latency). The perfect oracle is the tighter lower bound; the gap shows
// how much the broadcast approximation costs.
func OracleSweep(scale Scale, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "z-machine oracle: broadcast counter (§3) vs perfect per-consumer (§2.2)",
		Head:  []string{"app", "broadcast-stall", "perfect-stall", "broadcast-exec", "perfect-exec"},
	}
	apps := AppNames()
	oracles := []string{"broadcast", "perfect"}
	results, err := runner.Grid(len(apps)*len(oracles), func(i int) (*stats.Result, error) {
		po := p
		po.ZOracle = oracles[i%len(oracles)]
		return Run(apps[i/len(oracles)], scale, memsys.KindZMachine, po)
	})
	if err != nil {
		return nil, err
	}
	for i, name := range apps {
		rb, rp := results[2*i], results[2*i+1]
		t.Add(name,
			fmt.Sprintf("%d", rb.TotalReadStall()),
			fmt.Sprintf("%d", rp.TotalReadStall()),
			fmt.Sprintf("%d", rb.ExecTime),
			fmt.Sprintf("%d", rp.ExecTime))
	}
	return t, nil
}
