package workload

import (
	"fmt"

	"zsim/internal/apps"
	"zsim/internal/apps/cholesky"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/stats"
)

// Time aliases virtual time.
type Time = memsys.Time

// The sweeps below regenerate the paper's §6 architectural-implications
// analysis and §7 open issues as concrete ablation experiments.

// StoreBufferSweep varies the store buffer depth (§6: "write stall time is
// dependent on two parameters: the store buffer size and the relative speed
// of the network").
func StoreBufferSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, sizes []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Store buffer sweep: %s on %s", app, kind),
		Head:  []string{"entries", "exec-cycles", "write-stall", "buf-flush", "overhead%"},
	}
	for _, n := range sizes {
		p := base
		p.StoreBufEntries = n
		r, err := Run(app, scale, kind, p)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalWriteStall()),
			fmt.Sprintf("%d", r.TotalBufferFlush()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// NetworkSweep varies the link bandwidth (§6: improving the network speed
// relative to the processor lowers write stall).
func NetworkSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, cyclesPerByte []float64) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Network speed sweep: %s on %s", app, kind),
		Head:  []string{"cyc/byte", "exec-cycles", "read-stall", "write-stall", "buf-flush", "overhead%"},
	}
	for _, c := range cyclesPerByte {
		p := base
		p.LinkCyclesPerByte = c
		r, err := Run(app, scale, kind, p)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%.2f", c),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalWriteStall()),
			fmt.Sprintf("%d", r.TotalBufferFlush()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// ThresholdSweep varies RCcomp's competitive self-invalidation threshold.
func ThresholdSweep(app string, scale Scale, base memsys.Params, thresholds []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Competitive threshold sweep: %s on rccomp", app),
		Head:  []string{"threshold", "exec-cycles", "read-stall", "write-stall", "buf-flush", "self-inval", "overhead%"},
	}
	for _, th := range thresholds {
		p := base
		p.CompThreshold = th
		r, err := Run(app, scale, memsys.KindRCComp, p)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", th),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalWriteStall()),
			fmt.Sprintf("%d", r.TotalBufferFlush()),
			fmt.Sprintf("%d", r.Counters.SelfInvalidations),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// FiniteCacheSweep explores the §7 open issue: the overhead added by finite
// caches (capacity and conflict misses) versus the paper's infinite-cache
// assumption.
func FiniteCacheSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, lines []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Finite cache sweep: %s on %s (4-way LRU)", app, kind),
		Head:  []string{"cache-lines", "exec-cycles", "read-miss", "cold-miss", "read-stall", "overhead%"},
	}
	run := func(label string, p memsys.Params) error {
		r, err := Run(app, scale, kind, p)
		if err != nil {
			return err
		}
		t.Add(label,
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Counters.ReadMisses),
			fmt.Sprintf("%d", r.Counters.ColdMisses),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
		return nil
	}
	if err := run("inf", base); err != nil {
		return nil, err
	}
	for _, n := range lines {
		p := base
		p.FiniteCache = true
		p.CacheLines = n
		p.CacheAssoc = 4
		if err := run(fmt.Sprintf("%d", n), p); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// PrefetchSweep explores the §6 suggestion that cold-miss-dominated
// applications (Cholesky) benefit from prefetching.
func PrefetchSweep(app string, scale Scale, base memsys.Params, degrees []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Sequential prefetch sweep: %s on rcinv", app),
		Head:  []string{"degree", "exec-cycles", "read-stall", "prefetches", "overhead%"},
	}
	for _, d := range degrees {
		p := base
		p.PrefetchDegree = d
		r, err := Run(app, scale, memsys.KindRCInv, p)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.Counters.Prefetches),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// SCvsRC contrasts the sequentially consistent baseline (what most studies
// benchmark against) with release consistency, per application.
func SCvsRC(scale Scale, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "SCinv vs RCinv (write stall bought back by release consistency)",
		Head:  []string{"app", "sc-exec", "rc-exec", "sc-write-stall", "rc-write-stall", "speedup"},
	}
	for _, name := range AppNames() {
		sc, err := Run(name, scale, memsys.KindSCInv, p)
		if err != nil {
			return nil, err
		}
		rc, err := Run(name, scale, memsys.KindRCInv, p)
		if err != nil {
			return nil, err
		}
		t.Add(name,
			fmt.Sprintf("%d", sc.ExecTime),
			fmt.Sprintf("%d", rc.ExecTime),
			fmt.Sprintf("%d", sc.TotalWriteStall()),
			fmt.Sprintf("%d", rc.TotalWriteStall()),
			fmt.Sprintf("%.3f", float64(sc.ExecTime)/float64(rc.ExecTime)))
	}
	return t, nil
}

// MultithreadSweep explores the §7 open issue of multithreading as a
// latency-tolerance mechanism: the machine keeps a fixed set of NUMA nodes
// while each node runs 1, 2, 4, ... hardware threads, so the same total
// work (strong scaling) is attacked by more execution streams whose memory
// stalls overlap each other's computation.
func MultithreadSweep(app string, scale Scale, kind memsys.Kind, nodes int, threads []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Multithreading sweep: %s on %s, %d nodes", app, kind, nodes),
		Head:  []string{"threads/node", "streams", "exec-cycles", "read-stall", "core-wait", "overhead%"},
	}
	for _, th := range threads {
		p := memsys.DefaultMT(nodes*th, th)
		r, err := Run(app, scale, kind, p)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", th),
			fmt.Sprintf("%d", nodes*th),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalCoreWait()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// ScalabilitySweep runs an application across machine sizes on one memory
// system, reporting execution time and speedup over the single-processor
// run. The paper's framework descends from the authors' scalability studies
// (SIGMETRICS'94 / JPDC'94); this sweep recreates that view.
func ScalabilitySweep(app string, scale Scale, kind memsys.Kind, procs []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Scalability: %s on %s", app, kind),
		Head:  []string{"procs", "exec-cycles", "speedup", "overhead%", "sync-wait"},
	}
	var base Time
	for _, n := range procs {
		p := memsys.Default(n)
		r, err := Run(app, scale, kind, p)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.ExecTime
		}
		t.Add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%.2f", float64(base)/float64(r.ExecTime)),
			fmt.Sprintf("%.2f", r.OverheadPct()),
			fmt.Sprintf("%d", r.TotalSyncWait()))
	}
	return t, nil
}

// TopologySweep runs an application on one memory system across
// interconnect topologies (SPASM "provides a choice of network topologies";
// the paper's evaluation uses the mesh). The z-machine column shows how the
// topology moves the inherent-communication bound itself.
func TopologySweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, topologies []string) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Topology sweep: %s on %s", app, kind),
		Head:  []string{"topology", "exec-cycles", "read-stall", "net-queueing-visible", "overhead%"},
	}
	for _, topo := range topologies {
		p := base
		p.Topology = topo
		r, err := Run(app, scale, kind, p)
		if err != nil {
			return nil, err
		}
		t.Add(topo,
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalWriteStall()+r.TotalBufferFlush()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// RCSyncComparison regenerates the §6 proposal experiment (E15): RCinv
// versus RCsync — identical hardware, but synchronization carries the
// data-flow guarantee so releases never stall. The paper predicts the
// buffer-flush component vanishes.
func RCSyncComparison(scale Scale, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "RCinv vs RCsync (paper §6: decouple data flow from synchronization)",
		Head:  []string{"app", "rcinv-exec", "rcsync-exec", "rcinv-flush", "rcsync-flush", "speedup"},
	}
	for _, name := range AppNames() {
		inv, err := Run(name, scale, memsys.KindRCInv, p)
		if err != nil {
			return nil, err
		}
		sy, err := Run(name, scale, memsys.KindRCSync, p)
		if err != nil {
			return nil, err
		}
		t.Add(name,
			fmt.Sprintf("%d", inv.ExecTime),
			fmt.Sprintf("%d", sy.ExecTime),
			fmt.Sprintf("%d", inv.TotalBufferFlush()),
			fmt.Sprintf("%d", sy.TotalBufferFlush()),
			fmt.Sprintf("%.3f", float64(inv.ExecTime)/float64(sy.ExecTime)))
	}
	return t, nil
}

// OrderingSweep contrasts Cholesky elimination orderings: the natural
// (band) ordering versus nested dissection. The ordering reshapes the
// whole system: fill, supernode structure, task parallelism, and hence the
// communication the memory systems must carry.
func OrderingSweep(scale Scale, kind memsys.Kind, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Elimination ordering sweep: cholesky on %s", kind),
		Head:  []string{"ordering", "nnz(L)", "supernodes", "exec-cycles", "read-stall", "overhead%"},
	}
	grid := cholesky.Small().Grid
	if scale == ScalePaper {
		grid = cholesky.Paper().Grid
	}
	for _, ord := range []string{"natural", "nd"} {
		app := cholesky.New(cholesky.Config{Grid: grid, Ordering: ord})
		m, err := machine.New(kind, p)
		if err != nil {
			return nil, err
		}
		r, err := apps.Run(app, m)
		if err != nil {
			return nil, fmt.Errorf("workload: cholesky/%s on %s: %w", ord, kind, err)
		}
		t.Add(ord,
			fmt.Sprintf("%d", app.Sym().NNZ()),
			fmt.Sprintf("%d", app.Sym().NS()),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// DirPointerSweep varies the directory's sharer-pointer budget (Dir-i
// versus the paper's full-map assumption) — extension E18. Widely shared
// data (Barnes-Hut's tree and bodies) suffers pointer thrashing when the
// budget is small.
func DirPointerSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, pointers []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Directory pointer sweep: %s on %s", app, kind),
		Head:  []string{"pointers", "exec-cycles", "read-miss", "ptr-evictions", "overhead%"},
	}
	run := func(label string, p memsys.Params) error {
		r, err := Run(app, scale, kind, p)
		if err != nil {
			return err
		}
		t.Add(label,
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Counters.ReadMisses),
			fmt.Sprintf("%d", r.Counters.PointerEvictions),
			fmt.Sprintf("%.2f", r.OverheadPct()))
		return nil
	}
	if err := run("full-map", base); err != nil {
		return nil, err
	}
	for _, n := range pointers {
		p := base
		p.DirPointers = n
		if err := run(fmt.Sprintf("%d", n), p); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// LineSizeSweep varies the coherence unit of the real memory systems. The
// z-machine fixes its unit at one word precisely so that "the only
// communication that occurs is due to true sharing" (paper §3); sweeping
// the real systems' line size exposes the false-sharing cost of bigger
// lines against their spatial-locality benefit.
func LineSizeSweep(app string, scale Scale, kind memsys.Kind, base memsys.Params, sizes []int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Line size sweep: %s on %s", app, kind),
		Head:  []string{"line-bytes", "exec-cycles", "read-miss", "invalidations", "overhead%"},
	}
	for _, ls := range sizes {
		p := base
		p.LineSize = ls
		r, err := Run(app, scale, kind, p)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", ls),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.Counters.ReadMisses),
			fmt.Sprintf("%d", r.Counters.Invalidations),
			fmt.Sprintf("%.2f", r.OverheadPct()))
	}
	return t, nil
}

// OracleSweep contrasts the z-machine's two oracle models: the paper's §3
// simulation (broadcast + per-block counter, worst-case propagation) and
// its §2.2 definition (the producer ships to each consumer, per-consumer
// latency). The perfect oracle is the tighter lower bound; the gap shows
// how much the broadcast approximation costs.
func OracleSweep(scale Scale, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "z-machine oracle: broadcast counter (§3) vs perfect per-consumer (§2.2)",
		Head:  []string{"app", "broadcast-stall", "perfect-stall", "broadcast-exec", "perfect-exec"},
	}
	for _, name := range AppNames() {
		pb := p
		pb.ZOracle = "broadcast"
		rb, err := Run(name, scale, memsys.KindZMachine, pb)
		if err != nil {
			return nil, err
		}
		pp := p
		pp.ZOracle = "perfect"
		rp, err := Run(name, scale, memsys.KindZMachine, pp)
		if err != nil {
			return nil, err
		}
		t.Add(name,
			fmt.Sprintf("%d", rb.TotalReadStall()),
			fmt.Sprintf("%d", rp.TotalReadStall()),
			fmt.Sprintf("%d", rb.ExecTime),
			fmt.Sprintf("%d", rp.ExecTime))
	}
	return t, nil
}
