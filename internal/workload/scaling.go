package workload

import (
	"fmt"

	"zsim/internal/benchrec"
	"zsim/internal/memsys"
	"zsim/internal/runner"
	"zsim/internal/stats"
)

// DefaultScalingProcs returns the machine sizes of the scalability family:
// the paper's 64-processor configuration plus the two many-core points the
// lifted processor cap makes reachable (16×16 and 32×32 meshes).
func DefaultScalingProcs() []int { return []int{64, 256, 1024} }

// ScalingCurve is a scalability experiment's artifact: a rendered table of
// overhead classes versus machine size plus the machine-readable per-P
// curve that paperbench emits into BENCH_*.json for benchdiff to gate on.
type ScalingCurve struct {
	*stats.Table
	curve benchrec.Curve
}

// CurveData returns the machine-readable per-P curve.
func (c *ScalingCurve) CurveData() benchrec.Curve { return c.curve }

// OverheadScaling runs one application on one memory system at each machine
// size and decomposes execution time into the paper's overhead classes
// (read stall, write stall, buffer flush) plus synchronization wait. Every
// cell derives its parameters with base.WithProcs, so topology and kernel
// sharding carry over — the curve is bit-identical at any shard count.
func OverheadScaling(app string, scale Scale, kind memsys.Kind, base memsys.Params, procs []int) (*ScalingCurve, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("workload: OverheadScaling needs at least one machine size")
	}
	results, err := runner.Grid(len(procs), func(i int) (*stats.Result, error) {
		return Run(app, scale, kind, base.WithProcs(procs[i]))
	})
	if err != nil {
		return nil, err
	}
	c := &ScalingCurve{
		Table: &stats.Table{
			Title: fmt.Sprintf("Overhead scaling: %s on %s", app, kind),
			Head:  []string{"procs", "exec-cycles", "read-stall", "write-stall", "buffer-flush", "sync-wait", "overhead%"},
		},
		curve: benchrec.Curve{App: app, System: string(kind)},
	}
	for i, r := range results {
		c.Table.Add(fmt.Sprintf("%d", procs[i]),
			fmt.Sprintf("%d", r.ExecTime),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.TotalWriteStall()),
			fmt.Sprintf("%d", r.TotalBufferFlush()),
			fmt.Sprintf("%d", r.TotalSyncWait()),
			fmt.Sprintf("%.2f", r.OverheadPct()))
		c.curve.Points = append(c.curve.Points, benchrec.CurvePoint{
			Procs:       procs[i],
			ExecCycles:  float64(r.ExecTime),
			ReadStall:   float64(r.TotalReadStall()),
			WriteStall:  float64(r.TotalWriteStall()),
			BufferFlush: float64(r.TotalBufferFlush()),
			SyncWait:    float64(r.TotalSyncWait()),
			OverheadPct: r.OverheadPct(),
		})
	}
	return c, nil
}

// ScalingExperiments returns the scalability family S1..S4: overhead
// classes versus machine size for each paper application on RCinv, at the
// given machine sizes (nil selects DefaultScalingProcs). The family is a
// separate index from Experiments() on purpose: its cells run the
// applications at 256 and 1024 processors, so folding it into the default
// regeneration would change the metric totals and wall-time profile that
// CI's bench gate pins against BENCH_baseline.json.
func ScalingExperiments(procs []int) []Experiment {
	if len(procs) == 0 {
		procs = DefaultScalingProcs()
	}
	apps := AppNames()
	exps := make([]Experiment, 0, len(apps))
	for i, app := range apps {
		id := fmt.Sprintf("S%d", i+1)
		app := app
		exps = append(exps, Experiment{
			ID:    id,
			Title: fmt.Sprintf("scaling: %s overhead classes vs P on RCinv %v", app, procs),
			Run: func(sc Scale, p memsys.Params) (Artifact, error) {
				c, err := OverheadScaling(app, sc, memsys.KindRCInv, p, procs)
				if err != nil {
					return nil, err
				}
				c.curve.ID = id
				return c, nil
			},
		})
	}
	return exps
}

// FindExperimentScaled looks an experiment up by ID across both indexes:
// the DESIGN.md regeneration index (E1..) and the scalability family
// (S1..), the latter built over the given machine sizes.
func FindExperimentScaled(id string, procs []int) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	for _, e := range ScalingExperiments(procs) {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("workload: no experiment %q (want E1..E%d or S1..S%d)",
		id, len(Experiments()), len(AppNames()))
}
