package workload

import (
	"fmt"

	"zsim/internal/memsys"
	"zsim/internal/stats"
)

// Claim is one of the paper's qualitative claims, stated as an executable
// check. EvaluateClaims runs all of them and renders a verdict table —
// the reproduction's machine-checkable summary.
type Claim struct {
	ID    string
	Text  string // the paper's claim, paraphrased
	Check func(r *claimRunner) (ok bool, detail string, err error)
}

// claimRunner caches (app, system) results so the claim set runs each
// simulation once.
type claimRunner struct {
	scale Scale
	p     memsys.Params
	cache map[string]*stats.Result
}

func (c *claimRunner) run(app string, kind memsys.Kind) (*stats.Result, error) {
	key := app + "/" + string(kind)
	if r, ok := c.cache[key]; ok {
		return r, nil
	}
	r, err := Run(app, c.scale, kind, c.p)
	if err != nil {
		return nil, err
	}
	c.cache[key] = r
	return r, nil
}

// Claims returns the paper's claims in presentation order.
func Claims() []Claim {
	return []Claim{
		{"C1", "z-machine: write stall and buffer flush are zero by construction; total overhead is virtually zero (§5)",
			func(c *claimRunner) (bool, string, error) {
				for _, app := range AppNames() {
					r, err := c.run(app, memsys.KindZMachine)
					if err != nil {
						return false, "", err
					}
					if r.TotalWriteStall() != 0 || r.TotalBufferFlush() != 0 || r.OverheadPct() > 1 {
						return false, fmt.Sprintf("%s: overhead %.2f%%", app, r.OverheadPct()), nil
					}
				}
				return true, "overhead ≤ 1% on all four applications", nil
			}},
		{"C2", "the z-machine's performance matches the PRAM's (§5)",
			func(c *claimRunner) (bool, string, error) {
				worst := 0.0
				for _, app := range AppNames() {
					z, err := c.run(app, memsys.KindZMachine)
					if err != nil {
						return false, "", err
					}
					p, err := c.run(app, memsys.KindPRAM)
					if err != nil {
						return false, "", err
					}
					ratio := float64(z.ExecTime) / float64(p.ExecTime)
					if ratio > worst {
						worst = ratio
					}
					if ratio > 1.02 {
						return false, fmt.Sprintf("%s: zmc/pram = %.3f", app, ratio), nil
					}
				}
				return true, fmt.Sprintf("worst zmc/pram ratio %.4f", worst), nil
			}},
		{"C3", "no real memory system beats the z-machine (§2: a realistic lower bound)",
			func(c *claimRunner) (bool, string, error) {
				for _, app := range AppNames() {
					z, err := c.run(app, memsys.KindZMachine)
					if err != nil {
						return false, "", err
					}
					for _, kind := range memsys.FigureKinds()[1:] {
						r, err := c.run(app, kind)
						if err != nil {
							return false, "", err
						}
						if r.ExecTime < z.ExecTime {
							return false, fmt.Sprintf("%s on %s beats zmc", app, kind), nil
						}
					}
				}
				return true, "z-machine is the floor on all 16 (app, system) pairs", nil
			}},
		{"C4", "the RCinv-vs-RCupd read-stall gap signals data reuse: large for Barnes-Hut and Maxflow, small for Cholesky and IS (§5)",
			func(c *claimRunner) (bool, string, error) {
				ratio := func(app string) (float64, error) {
					inv, err := c.run(app, memsys.KindRCInv)
					if err != nil {
						return 0, err
					}
					upd, err := c.run(app, memsys.KindRCUpd)
					if err != nil {
						return 0, err
					}
					return float64(upd.TotalReadStall()) / float64(inv.TotalReadStall()), nil
				}
				var detail string
				for _, app := range []string{"nbody", "maxflow"} {
					r, err := ratio(app)
					if err != nil {
						return false, "", err
					}
					detail += fmt.Sprintf("%s %.2f ", app, r)
					if r > 0.6 {
						return false, fmt.Sprintf("%s ratio %.2f, want <0.6", app, r), nil
					}
				}
				for _, app := range []string{"cholesky", "is"} {
					r, err := ratio(app)
					if err != nil {
						return false, "", err
					}
					detail += fmt.Sprintf("%s %.2f ", app, r)
					if r < 0.55 {
						return false, fmt.Sprintf("%s ratio %.2f, want >0.55", app, r), nil
					}
				}
				return true, "upd/inv read-stall ratios: " + detail, nil
			}},
		{"C5", "read stall dominates RCinv's overheads (§5)",
			func(c *claimRunner) (bool, string, error) {
				for _, app := range AppNames() {
					r, err := c.run(app, memsys.KindRCInv)
					if err != nil {
						return false, "", err
					}
					if r.TotalReadStall() <= r.TotalWriteStall()+r.TotalBufferFlush() {
						return false, app, nil
					}
				}
				return true, "on all four applications", nil
			}},
		{"C6", "update protocols pay on the write side what they save on reads (§5: RCinv write stall lowest; merge buffer raises flush)",
			func(c *claimRunner) (bool, string, error) {
				inv, err := c.run("nbody", memsys.KindRCInv)
				if err != nil {
					return false, "", err
				}
				upd, err := c.run("nbody", memsys.KindRCUpd)
				if err != nil {
					return false, "", err
				}
				if upd.TotalWriteStall() <= inv.TotalWriteStall() {
					return false, "nbody write stall not higher under rcupd", nil
				}
				if float64(upd.TotalBufferFlush()) < 0.9*float64(inv.TotalBufferFlush()) {
					return false, "nbody buffer flush not higher under rcupd", nil
				}
				return true, fmt.Sprintf("nbody write stall: rcupd %d vs rcinv %d", upd.TotalWriteStall(), inv.TotalWriteStall()), nil
			}},
		{"C7", "the adaptive protocol follows the sharing pattern: update-like on Barnes-Hut, invalidate-like on Maxflow (§5)",
			func(c *claimRunner) (bool, string, error) {
				invMF, err := c.run("maxflow", memsys.KindRCInv)
				if err != nil {
					return false, "", err
				}
				adMF, err := c.run("maxflow", memsys.KindRCAdapt)
				if err != nil {
					return false, "", err
				}
				invBH, err := c.run("nbody", memsys.KindRCInv)
				if err != nil {
					return false, "", err
				}
				adBH, err := c.run("nbody", memsys.KindRCAdapt)
				if err != nil {
					return false, "", err
				}
				mf := float64(adMF.TotalReadStall()) / float64(invMF.TotalReadStall())
				bh := float64(adBH.TotalReadStall()) / float64(invBH.TotalReadStall())
				// Scale-robust form: the adaptive protocol keeps more of
				// the update advantage on the stable pattern (Barnes-Hut)
				// than on the random one (Maxflow), and the stable-pattern
				// advantage is substantial.
				if bh >= mf || bh > 0.5 {
					return false, fmt.Sprintf("adapt/inv read-stall: maxflow %.2f, nbody %.2f (want nbody < maxflow and ≤0.5)", mf, bh), nil
				}
				return true, fmt.Sprintf("adapt/inv read-stall: maxflow %.2f, nbody %.2f", mf, bh), nil
			}},
		{"C8", "RCadapt and RCcomp send fewer updates than RCupd where the sharing set changes (§5, Cholesky)",
			func(c *claimRunner) (bool, string, error) {
				upd, err := c.run("cholesky", memsys.KindRCUpd)
				if err != nil {
					return false, "", err
				}
				for _, kind := range []memsys.Kind{memsys.KindRCAdapt, memsys.KindRCComp} {
					a, err := c.run("cholesky", kind)
					if err != nil {
						return false, "", err
					}
					if a.Counters.Updates >= upd.Counters.Updates {
						return false, fmt.Sprintf("%s sent %d ≥ rcupd's %d", kind, a.Counters.Updates, upd.Counters.Updates), nil
					}
				}
				return true, fmt.Sprintf("rcupd sent %d updates; both adaptive systems sent fewer", upd.Counters.Updates), nil
			}},
		{"C9", "sequential consistency pays write stall that release consistency absorbs (§1/§5 framing)",
			func(c *claimRunner) (bool, string, error) {
				sc, err := c.run("is", memsys.KindSCInv)
				if err != nil {
					return false, "", err
				}
				rc, err := c.run("is", memsys.KindRCInv)
				if err != nil {
					return false, "", err
				}
				if sc.TotalWriteStall() <= rc.TotalWriteStall() {
					return false, "SC write stall not above RC's", nil
				}
				return true, fmt.Sprintf("IS write stall: scinv %d vs rcinv %d", sc.TotalWriteStall(), rc.TotalWriteStall()), nil
			}},
		{"C10", "decoupling data flow from synchronization eliminates buffer flush (§6 proposal, realized as rcsync)",
			func(c *claimRunner) (bool, string, error) {
				for _, app := range AppNames() {
					r, err := c.run(app, memsys.KindRCSync)
					if err != nil {
						return false, "", err
					}
					if r.TotalBufferFlush() != 0 {
						return false, fmt.Sprintf("%s flush %d", app, r.TotalBufferFlush()), nil
					}
				}
				return true, "buffer flush is exactly 0 on all four applications", nil
			}},
	}
}

// EvaluateClaims runs every claim and returns the verdict table plus an
// overall pass flag.
func EvaluateClaims(scale Scale, p memsys.Params) (*stats.Table, bool, error) {
	r := &claimRunner{scale: scale, p: p, cache: map[string]*stats.Result{}}
	t := &stats.Table{
		Title: fmt.Sprintf("Paper claims, machine-checked (%s scale, %d processors)", scale, p.Procs),
		Head:  []string{"claim", "verdict", "evidence", "statement"},
	}
	all := true
	for _, cl := range Claims() {
		ok, detail, err := cl.Check(r)
		if err != nil {
			return nil, false, fmt.Errorf("workload: claim %s: %w", cl.ID, err)
		}
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			all = false
		}
		t.Add(cl.ID, verdict, detail, cl.Text)
	}
	return t, all, nil
}
