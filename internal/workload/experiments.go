package workload

import (
	"zsim/internal/memsys"
	"zsim/internal/stats"
)

// Artifact is a renderable experiment result (a stats.Table or
// stats.Figure).
type Artifact interface {
	Render() string
	Markdown() string
}

// Experiment is one entry of DESIGN.md's per-experiment index: a paper
// artifact (figure, table, or claim) with the code that regenerates it.
type Experiment struct {
	ID    string // E1..E17, matching DESIGN.md
	Title string
	Run   func(scale Scale, p memsys.Params) (Artifact, error)
}

// Experiments returns the full regeneration index, in DESIGN.md order.
func Experiments() []Experiment {
	fig := func(n int) func(Scale, memsys.Params) (Artifact, error) {
		return func(sc Scale, p memsys.Params) (Artifact, error) { return Figure(n, sc, p) }
	}
	return []Experiment{
		{"E1", "Figure 2: Cholesky on the five systems", fig(2)},
		{"E2", "Figure 3: Integer Sort on the five systems", fig(3)},
		{"E3", "Figure 4: Maxflow on the five systems", fig(4)},
		{"E4", "Figure 5: Barnes-Hut on the five systems", fig(5)},
		{"E5", "Table 1: inherent communication on the z-machine", func(sc Scale, p memsys.Params) (Artifact, error) {
			t, _, err := Table1(sc, p)
			return t, err
		}},
		{"E6", "§5 claim: z-machine matches PRAM", func(sc Scale, p memsys.Params) (Artifact, error) {
			return ZvsPRAM(sc, p)
		}},
		{"E7", "§6 ablation: store buffer depth (IS/RCinv)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return StoreBufferSweep("is", sc, memsys.KindRCInv, p, []int{1, 2, 4, 8, 16})
		}},
		{"E8", "§6 ablation: network speed (Maxflow/RCupd)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return NetworkSweep("maxflow", sc, memsys.KindRCUpd, p, []float64{0.4, 0.8, 1.6, 3.2})
		}},
		{"E9", "§4 ablation: competitive threshold (Barnes-Hut/RCcomp)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return ThresholdSweep("nbody", sc, p, []int{1, 2, 4, 8})
		}},
		{"E10", "§7 open issue: finite caches (Barnes-Hut/RCinv)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return FiniteCacheSweep("nbody", sc, memsys.KindRCInv, p, []int{16, 64, 256})
		}},
		{"E11", "§6 suggestion: prefetching (Cholesky/RCinv)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return PrefetchSweep("cholesky", sc, p, []int{0, 1, 2, 4})
		}},
		{"E12", "§5 baseline framing: SCinv vs RCinv", func(sc Scale, p memsys.Params) (Artifact, error) {
			return SCvsRC(sc, p)
		}},
		{"E13", "§7 open issue: multithreading (Maxflow/RCinv, 4 nodes)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return MultithreadSweep("maxflow", sc, memsys.KindRCInv, 4, []int{1, 2, 4})
		}},
		{"E14", "scalability framing: IS/RCinv speedup", func(sc Scale, p memsys.Params) (Artifact, error) {
			return ScalabilitySweep("is", sc, memsys.KindRCInv, []int{1, 2, 4, 8, 16})
		}},
		{"E15", "§6 proposal: RCinv vs RCsync (decoupled data flow)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return RCSyncComparison(sc, p)
		}},
		{"E16", "SPASM topology choice (Maxflow/RCinv)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return TopologySweep("maxflow", sc, memsys.KindRCInv, p, []string{"mesh", "torus", "hypercube", "xbar", "bus"})
		}},
		{"E17", "elimination ordering: natural vs nested dissection (Cholesky/RCinv)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return OrderingSweep(sc, memsys.KindRCInv, p)
		}},
		{"E18", "directory pointers: full-map vs Dir-i (Barnes-Hut/RCinv)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return DirPointerSweep("nbody", sc, memsys.KindRCInv, p, []int{2, 4, 8})
		}},
		{"E19", "coherence unit: line size vs false sharing (IS/RCinv)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return LineSizeSweep("is", sc, memsys.KindRCInv, p, []int{8, 16, 32, 64, 128})
		}},
		{"E20", "z-machine oracle: broadcast counter (§3) vs perfect per-consumer (§2.2)", func(sc Scale, p memsys.Params) (Artifact, error) {
			return OracleSweep(sc, p)
		}},
	}
}

// FindExperiment returns the experiment with the given ID, searching both
// the regeneration index (E1..) and the scalability family (S1..) at its
// default machine sizes.
func FindExperiment(id string) (Experiment, error) {
	return FindExperimentScaled(id, nil)
}

// Compile-time checks that both artifact types satisfy the interface.
var (
	_ Artifact = (*stats.Table)(nil)
	_ Artifact = (*stats.Figure)(nil)
)
