package workload

import (
	"fmt"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/runner"
	"zsim/internal/stats"
)

// ConformanceSweep runs every application on every memory system with the
// runtime conformance checker attached (Machine.EnableCheck) and tabulates
// the verdicts: events validated per run, and any invariant violations. The
// returned flag is true when every execution was clean. Output verification
// failures (a wrong answer) are returned as errors, not verdict cells.
func ConformanceSweep(scale Scale, p memsys.Params) (*stats.Table, bool, error) {
	kinds := memsys.Kinds()
	head := []string{"app \\ system"}
	for _, k := range kinds {
		head = append(head, string(k))
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Conformance-checker verdicts (%s scale, %d processors)", scale, p.Procs),
		Head:  head,
	}
	type verdict struct {
		cell string
		ok   bool
	}
	names := AppNames()
	verdicts, err := runner.Grid(len(names)*len(kinds), func(i int) (verdict, error) {
		name, kind := names[i/len(kinds)], kinds[i%len(kinds)]
		app, err := NewApp(name, scale)
		if err != nil {
			return verdict{}, err
		}
		m, err := machine.New(kind, p)
		if err != nil {
			return verdict{}, err
		}
		chk := m.EnableCheck()
		if _, err := apps.Run(app, m); err != nil {
			return verdict{}, fmt.Errorf("workload: %s on %s failed verification: %w", name, kind, err)
		}
		events, _, _, _ := chk.Stats()
		if chk.Ok() {
			return verdict{fmt.Sprintf("ok (%d ev)", events), true}, nil
		}
		return verdict{fmt.Sprintf("FAIL (%d violations)", chk.NumViolations()), false}, nil
	})
	if err != nil {
		return nil, false, err
	}
	pass := true
	for i, name := range names {
		row := []string{name}
		for j := range kinds {
			v := verdicts[i*len(kinds)+j]
			if !v.ok {
				pass = false
			}
			row = append(row, v.cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, pass, nil
}

// ConformanceViolations runs one application on one memory system with the
// checker attached and returns the retained violation descriptions (nil when
// the run conformed).
func ConformanceViolations(name string, scale Scale, kind memsys.Kind, p memsys.Params) ([]string, error) {
	app, err := NewApp(name, scale)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(kind, p)
	if err != nil {
		return nil, err
	}
	chk := m.EnableCheck()
	if _, err := apps.Run(app, m); err != nil {
		return nil, fmt.Errorf("workload: %s on %s failed verification: %w", name, kind, err)
	}
	return chk.Violations(), nil
}
