package workload

import (
	"fmt"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/stats"
)

// ConformanceSweep runs every application on every memory system with the
// runtime conformance checker attached (Machine.EnableCheck) and tabulates
// the verdicts: events validated per run, and any invariant violations. The
// returned flag is true when every execution was clean. Output verification
// failures (a wrong answer) are returned as errors, not verdict cells.
func ConformanceSweep(scale Scale, p memsys.Params) (*stats.Table, bool, error) {
	kinds := memsys.Kinds()
	head := []string{"app \\ system"}
	for _, k := range kinds {
		head = append(head, string(k))
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Conformance-checker verdicts (%s scale, %d processors)", scale, p.Procs),
		Head:  head,
	}
	pass := true
	for _, name := range AppNames() {
		row := []string{name}
		for _, kind := range kinds {
			app, err := NewApp(name, scale)
			if err != nil {
				return nil, false, err
			}
			m, err := machine.New(kind, p)
			if err != nil {
				return nil, false, err
			}
			chk := m.EnableCheck()
			if _, err := apps.Run(app, m); err != nil {
				return nil, false, fmt.Errorf("workload: %s on %s failed verification: %w", name, kind, err)
			}
			events, _, _, _ := chk.Stats()
			if chk.Ok() {
				row = append(row, fmt.Sprintf("ok (%d ev)", events))
			} else {
				pass = false
				row = append(row, fmt.Sprintf("FAIL (%d violations)", chk.NumViolations()))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, pass, nil
}

// ConformanceViolations runs one application on one memory system with the
// checker attached and returns the retained violation descriptions (nil when
// the run conformed).
func ConformanceViolations(name string, scale Scale, kind memsys.Kind, p memsys.Params) ([]string, error) {
	app, err := NewApp(name, scale)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(kind, p)
	if err != nil {
		return nil, err
	}
	chk := m.EnableCheck()
	if _, err := apps.Run(app, m); err != nil {
		return nil, fmt.Errorf("workload: %s on %s failed verification: %w", name, kind, err)
	}
	return chk.Violations(), nil
}
