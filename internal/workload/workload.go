// Package workload is the evaluation harness: it runs the paper's four
// applications on the simulated memory systems and regenerates every table
// and figure of the evaluation section (Figures 2–5 and Table 1), plus the
// parameter sweeps behind the paper's architectural-implications
// discussion.
package workload

import (
	"fmt"

	"zsim/internal/apps"
	"zsim/internal/apps/barneshut"
	"zsim/internal/apps/cholesky"
	"zsim/internal/apps/intsort"
	"zsim/internal/apps/maxflow"
	"zsim/internal/apps/sor"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/runner"
	"zsim/internal/stats"
)

// Scale selects the problem size.
type Scale string

const (
	// ScalePaper uses the paper's exact problem sizes (slow: minutes).
	ScalePaper Scale = "paper"
	// ScaleSmall uses reduced instances with the same structure (seconds).
	ScaleSmall Scale = "small"
)

// AppNames lists the four applications in figure order (Figure 2..5).
func AppNames() []string { return []string{"cholesky", "is", "maxflow", "nbody"} }

// NewApp builds one of the paper's applications at the given scale.
func NewApp(name string, scale Scale) (apps.App, error) {
	small := scale == ScaleSmall
	switch name {
	case "cholesky":
		if small {
			return cholesky.New(cholesky.Small()), nil
		}
		return cholesky.New(cholesky.Paper()), nil
	case "is":
		if small {
			return intsort.New(intsort.Small()), nil
		}
		return intsort.New(intsort.Paper()), nil
	case "maxflow":
		if small {
			return maxflow.New(maxflow.Small()), nil
		}
		return maxflow.New(maxflow.Paper()), nil
	case "nbody", "barnes-hut", "barneshut":
		if small {
			return barneshut.New(barneshut.Small()), nil
		}
		return barneshut.New(barneshut.Paper()), nil
	case "sor":
		// Extra library application (not part of the paper's figures):
		// the canonical static nearest-neighbour workload.
		if small {
			return sor.New(sor.Small()), nil
		}
		return sor.New(sor.Default()), nil
	}
	return nil, fmt.Errorf("workload: unknown application %q (want one of %v)", name, AppNames())
}

// Run executes the named application on a fresh machine with the given
// memory system, verifying the output.
func Run(name string, scale Scale, kind memsys.Kind, p memsys.Params) (*stats.Result, error) {
	app, err := NewApp(name, scale)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(kind, p)
	if err != nil {
		return nil, err
	}
	res, err := apps.Run(app, m)
	if err != nil {
		return nil, fmt.Errorf("workload: %s on %s failed verification: %w", name, kind, err)
	}
	return res, nil
}

// MustRun is Run panicking on error.
func MustRun(name string, scale Scale, kind memsys.Kind, p memsys.Params) *stats.Result {
	r, err := Run(name, scale, kind, p)
	if err != nil {
		panic(err)
	}
	return r
}

// figureOf maps the paper's figure numbers to applications.
var figureOf = map[int]string{2: "cholesky", 3: "is", 4: "maxflow", 5: "nbody"}

// FigureNumbers returns the paper's figure numbers in order.
func FigureNumbers() []int { return []int{2, 3, 4, 5} }

// Figure regenerates Figure n (2: Cholesky, 3: IS, 4: Maxflow, 5:
// Barnes-Hut): the application on the z-machine and the four RC memory
// systems, with the per-system overhead decomposition.
func Figure(n int, scale Scale, p memsys.Params) (*stats.Figure, error) {
	name, ok := figureOf[n]
	if !ok {
		return nil, fmt.Errorf("workload: no figure %d in the paper (want 2-5)", n)
	}
	fig := &stats.Figure{Title: fmt.Sprintf("Figure %d: %s (%s scale, %d processors)", n, name, scale, p.Procs)}
	kinds := memsys.FigureKinds()
	results, err := runner.Grid(len(kinds), func(i int) (*stats.Result, error) {
		return Run(name, scale, kinds[i], p)
	})
	if err != nil {
		return nil, err
	}
	fig.Results = results
	return fig, nil
}

// Table1 regenerates the paper's Table 1: the inherent communication and
// observed costs on the z-machine for every application — the number of
// writes, the network propagation those writes represent (absolute cycles
// and as a percentage of aggregate execution time, virtually all of it
// hidden under computation), and the observed (read-stall) cycles.
func Table1(scale Scale, p memsys.Params) (*stats.Table, []*stats.Result, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Table 1: inherent communication and observed costs on the z-machine (%s scale)", scale),
		Head:  []string{"app", "writes", "net-cycles", "net % of exec", "observed cost (cycles)", "exec-cycles"},
	}
	apps := AppNames()
	results, err := runner.Grid(len(apps), func(i int) (*stats.Result, error) {
		return Run(apps[i], scale, memsys.KindZMachine, p)
	})
	if err != nil {
		return nil, nil, err
	}
	for i, r := range results {
		pct := 0.0
		if r.ExecTime > 0 {
			pct = 100 * float64(r.Counters.NetworkCycles) / (float64(r.ExecTime) * float64(p.Procs))
		}
		t.Add(apps[i],
			fmt.Sprintf("%d", r.Counters.Writes),
			fmt.Sprintf("%d", r.Counters.NetworkCycles),
			fmt.Sprintf("%.3f", pct),
			fmt.Sprintf("%d", r.TotalReadStall()),
			fmt.Sprintf("%d", r.ExecTime),
		)
	}
	return t, results, nil
}

// ZvsPRAM regenerates the §5 headline comparison: execution time on the
// z-machine versus the PRAM for every application. The paper's result is
// that they match.
func ZvsPRAM(scale Scale, p memsys.Params) (*stats.Table, error) {
	t := &stats.Table{
		Title: "z-machine vs PRAM execution time (paper §5: they should match)",
		Head:  []string{"app", "pram-exec", "zmc-exec", "ratio"},
	}
	apps := AppNames()
	kinds := []memsys.Kind{memsys.KindPRAM, memsys.KindZMachine}
	results, err := runner.Grid(len(apps)*len(kinds), func(i int) (*stats.Result, error) {
		return Run(apps[i/len(kinds)], scale, kinds[i%len(kinds)], p)
	})
	if err != nil {
		return nil, err
	}
	for i, name := range apps {
		pr, zr := results[2*i], results[2*i+1]
		t.Add(name,
			fmt.Sprintf("%d", pr.ExecTime),
			fmt.Sprintf("%d", zr.ExecTime),
			fmt.Sprintf("%.4f", float64(zr.ExecTime)/float64(pr.ExecTime)),
		)
	}
	return t, nil
}

// SummaryMatrix runs every application on every memory system and tabulates
// the overhead percentage — the whole evaluation at a glance.
func SummaryMatrix(scale Scale, p memsys.Params) (*stats.Table, error) {
	kinds := memsys.Kinds()
	head := []string{"app \\ system"}
	for _, k := range kinds {
		head = append(head, string(k))
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Overhead %% by application and memory system (%s scale, %d processors)", scale, p.Procs),
		Head:  head,
	}
	apps := AppNames()
	results, err := runner.Grid(len(apps)*len(kinds), func(i int) (*stats.Result, error) {
		return Run(apps[i/len(kinds)], scale, kinds[i%len(kinds)], p)
	})
	if err != nil {
		return nil, err
	}
	for i, app := range apps {
		row := []string{app}
		for j := range kinds {
			row = append(row, fmt.Sprintf("%.2f", results[i*len(kinds)+j].OverheadPct()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
