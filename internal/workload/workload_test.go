package workload

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"zsim/internal/apps"
	"zsim/internal/apps/intsort"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/stats"
)

// cached runs one (app, system) combination at small scale once per test
// binary — the shape tests below all share results.
var (
	cacheMu sync.Mutex
	cache   = map[string]*stats.Result{}
)

func run(t *testing.T, app string, kind memsys.Kind) *stats.Result {
	t.Helper()
	key := app + "/" + string(kind)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[key]; ok {
		return r
	}
	r, err := Run(app, ScaleSmall, kind, memsys.Default(16))
	if err != nil {
		t.Fatalf("%s on %s: %v", app, kind, err)
	}
	cache[key] = r
	return r
}

func TestUnknownApp(t *testing.T) {
	if _, err := NewApp("doom", ScaleSmall); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Figure(7, ScaleSmall, memsys.Default(16)); err == nil {
		t.Fatal("expected error for figure 7")
	}
}

func TestAllAppsConstructAtBothScales(t *testing.T) {
	for _, name := range AppNames() {
		for _, sc := range []Scale{ScaleSmall, ScalePaper} {
			if _, err := NewApp(name, sc); err != nil {
				t.Errorf("NewApp(%s, %s): %v", name, sc, err)
			}
		}
	}
}

// --- The paper's headline result (§5, Table 1) ---

// On the z-machine the only possible cost is inherent-communication read
// stall, and for all four applications it is virtually zero.
func TestZMachineZeroOverhead(t *testing.T) {
	for _, app := range AppNames() {
		r := run(t, app, memsys.KindZMachine)
		if r.TotalWriteStall() != 0 || r.TotalBufferFlush() != 0 {
			t.Errorf("%s: z-machine write stall/buffer flush nonzero: %s", app, r)
		}
		if pct := r.OverheadPct(); pct > 1.0 {
			t.Errorf("%s: z-machine overhead %.2f%%, paper reports ~0%%", app, pct)
		}
	}
}

// The z-machine's performance matches the PRAM's (paper §5: "the
// performance on the z-machine for these applications matches what would
// be observed on a PRAM").
func TestZMachineMatchesPRAM(t *testing.T) {
	for _, app := range AppNames() {
		z := run(t, app, memsys.KindZMachine)
		p := run(t, app, memsys.KindPRAM)
		ratio := float64(z.ExecTime) / float64(p.ExecTime)
		if ratio > 1.02 || ratio < 0.999 {
			t.Errorf("%s: zmc/pram exec ratio %.4f, want ≈1", app, ratio)
		}
	}
}

// No real memory system beats the z-machine.
func TestZMachineIsLowerBound(t *testing.T) {
	for _, app := range AppNames() {
		z := run(t, app, memsys.KindZMachine)
		for _, kind := range memsys.FigureKinds()[1:] {
			r := run(t, app, kind)
			if r.ExecTime < z.ExecTime {
				t.Errorf("%s: %s exec %d beats the z-machine's %d", app, kind, r.ExecTime, z.ExecTime)
			}
		}
	}
}

// --- Figure-level shape claims (§5) ---

// "Significant difference in the read stall times between RCinv and RCupd
// implies data reuse. This is true for Barnes-Hut and Maxflow, and not true
// for Cholesky and IS."
func TestDataReuseSignature(t *testing.T) {
	ratio := func(app string) float64 {
		inv := run(t, app, memsys.KindRCInv)
		upd := run(t, app, memsys.KindRCUpd)
		return float64(upd.TotalReadStall()) / float64(inv.TotalReadStall())
	}
	for _, app := range []string{"nbody", "maxflow"} {
		if r := ratio(app); r > 0.6 {
			t.Errorf("%s: RCupd/RCinv read-stall ratio %.2f, expected <0.6 (data reuse)", app, r)
		}
	}
	for _, app := range []string{"cholesky", "is"} {
		if r := ratio(app); r < 0.55 {
			t.Errorf("%s: RCupd/RCinv read-stall ratio %.2f, expected >0.55 (no reuse)", app, r)
		}
	}
}

// "The dominant component of the overheads for RCinv is the read stall
// time, and it is significantly higher than those observed for the other
// three memory systems" — checked on the reuse applications.
func TestRCInvReadStallDominates(t *testing.T) {
	for _, app := range AppNames() {
		r := run(t, app, memsys.KindRCInv)
		if r.TotalReadStall() <= r.TotalWriteStall()+r.TotalBufferFlush() {
			t.Errorf("%s: RCinv read stall (%d) should dominate other overheads (%d+%d)",
				app, r.TotalReadStall(), r.TotalWriteStall(), r.TotalBufferFlush())
		}
	}
}

// "The write stall times for RCinv are significantly lower when compared to
// the other three" — visible where update traffic is heavy (Barnes-Hut).
func TestUpdateWriteCosts(t *testing.T) {
	inv := run(t, "nbody", memsys.KindRCInv)
	upd := run(t, "nbody", memsys.KindRCUpd)
	if upd.TotalWriteStall() <= inv.TotalWriteStall() {
		t.Errorf("nbody: RCupd write stall (%d) should exceed RCinv's (%d)",
			upd.TotalWriteStall(), inv.TotalWriteStall())
	}
}

// "The use of merge buffer results in a significant increase of buffer
// flush time for RCupd, RCcomp, and RCadapt compared to RCinv."
func TestMergeBufferFlushCost(t *testing.T) {
	for _, app := range AppNames() {
		inv := run(t, app, memsys.KindRCInv)
		for _, kind := range []memsys.Kind{memsys.KindRCUpd, memsys.KindRCComp, memsys.KindRCAdapt} {
			u := run(t, app, kind)
			// IS barely exercises the merge buffer, so allow equality
			// within noise (0.9×) rather than strict dominance.
			if float64(u.TotalBufferFlush()) < 0.9*float64(inv.TotalBufferFlush()) {
				t.Errorf("%s: %s buffer flush (%d) below RCinv's (%d)",
					app, kind, u.TotalBufferFlush(), inv.TotalBufferFlush())
			}
		}
	}
}

// "In Maxflow the producer-consumer relationship is more random making the
// read stall times for RCcomp and RCadapt similar to that of RCinv"; for
// Barnes-Hut's stable pattern, RCadapt exploits reuse like an update
// protocol.
func TestAdaptiveFollowsSharingPattern(t *testing.T) {
	invMF := run(t, "maxflow", memsys.KindRCInv)
	adaptMF := run(t, "maxflow", memsys.KindRCAdapt)
	if float64(adaptMF.TotalReadStall()) < 0.7*float64(invMF.TotalReadStall()) {
		t.Errorf("maxflow: RCadapt read stall (%d) should stay near RCinv's (%d) on a random pattern",
			adaptMF.TotalReadStall(), invMF.TotalReadStall())
	}
	invBH := run(t, "nbody", memsys.KindRCInv)
	adaptBH := run(t, "nbody", memsys.KindRCAdapt)
	if float64(adaptBH.TotalReadStall()) > 0.5*float64(invBH.TotalReadStall()) {
		t.Errorf("nbody: RCadapt read stall (%d) should be well below RCinv's (%d) on a stable pattern",
			adaptBH.TotalReadStall(), invBH.TotalReadStall())
	}
}

// "Due to the dynamic nature of RCadapt and RCcomp ... these two memory
// systems incur lesser number of messages than RCupd" — where the sharing
// set actually changes (Cholesky's queue-driven pattern).
func TestAdaptiveReducesUpdateTraffic(t *testing.T) {
	upd := run(t, "cholesky", memsys.KindRCUpd)
	for _, kind := range []memsys.Kind{memsys.KindRCAdapt, memsys.KindRCComp} {
		a := run(t, "cholesky", kind)
		if a.Counters.Updates >= upd.Counters.Updates {
			t.Errorf("cholesky: %s sent %d updates, expected fewer than RCupd's %d",
				kind, a.Counters.Updates, upd.Counters.Updates)
		}
	}
}

// Update protocols deliver useless updates (the contention source the
// paper blames for RCupd's write stalls).
func TestUselessUpdatesExist(t *testing.T) {
	r := run(t, "cholesky", memsys.KindRCUpd)
	if r.Counters.UselessUpdates == 0 {
		t.Error("cholesky on RCupd: expected useless updates")
	}
}

// --- Harness plumbing ---

func TestFigureContainsFiveSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration in -short mode")
	}
	fig, err := Figure(4, ScaleSmall, memsys.Default(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Results) != 5 {
		t.Fatalf("figure has %d results, want 5", len(fig.Results))
	}
	out := fig.Render()
	for _, k := range memsys.FigureKinds() {
		if !strings.Contains(out, string(k)) {
			t.Errorf("figure render missing %s", k)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tbl, results, err := Table1(ScaleSmall, memsys.Default(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || len(tbl.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4", len(tbl.Rows))
	}
	for _, r := range results {
		if r.Counters.Writes == 0 {
			t.Errorf("%s: no writes counted", r.App)
		}
		// The observed cost is virtually zero: a tiny fraction of the
		// aggregate execution time.
		frac := float64(r.TotalReadStall()) / (float64(r.ExecTime) * 16)
		if frac > 0.01 {
			t.Errorf("%s: observed z-machine cost fraction %.4f, want ~0", r.App, frac)
		}
	}
	if !strings.Contains(tbl.Render(), "cholesky") {
		t.Error("table render missing application rows")
	}
}

func TestZvsPRAMTable(t *testing.T) {
	tbl, err := ZvsPRAM(ScaleSmall, memsys.Default(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
}

func TestSweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps in -short mode")
	}
	p := memsys.Default(16)
	if _, err := StoreBufferSweep("is", ScaleSmall, memsys.KindRCInv, p, []int{1, 4}); err != nil {
		t.Error(err)
	}
	if _, err := NetworkSweep("maxflow", ScaleSmall, memsys.KindRCUpd, p, []float64{0.8, 1.6}); err != nil {
		t.Error(err)
	}
	if _, err := ThresholdSweep("maxflow", ScaleSmall, p, []int{1, 4}); err != nil {
		t.Error(err)
	}
	if _, err := FiniteCacheSweep("nbody", ScaleSmall, memsys.KindRCInv, p, []int{64}); err != nil {
		t.Error(err)
	}
	if _, err := PrefetchSweep("cholesky", ScaleSmall, p, []int{0, 2}); err != nil {
		t.Error(err)
	}
	if _, err := SCvsRC(ScaleSmall, p); err != nil {
		t.Error(err)
	}
}

// Write stall shrinks with a deeper store buffer (§6).
func TestStoreBufferSizeLowersWriteStall(t *testing.T) {
	p1 := memsys.Default(16)
	p1.StoreBufEntries = 1
	p8 := memsys.Default(16)
	p8.StoreBufEntries = 8
	small, err := Run("is", ScaleSmall, memsys.KindRCInv, p1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run("is", ScaleSmall, memsys.KindRCInv, p8)
	if err != nil {
		t.Fatal(err)
	}
	if big.TotalWriteStall() >= small.TotalWriteStall() {
		t.Errorf("write stall with 8 entries (%d) should be below 1 entry (%d)",
			big.TotalWriteStall(), small.TotalWriteStall())
	}
}

// A faster network lowers the overheads (§6).
func TestFasterNetworkLowersOverheads(t *testing.T) {
	fast := memsys.Default(16)
	fast.LinkCyclesPerByte = 0.4
	slow := memsys.Default(16)
	slow.LinkCyclesPerByte = 3.2
	f, err := Run("maxflow", ScaleSmall, memsys.KindRCUpd, fast)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run("maxflow", ScaleSmall, memsys.KindRCUpd, slow)
	if err != nil {
		t.Fatal(err)
	}
	if f.ExecTime >= s.ExecTime {
		t.Errorf("fast network exec %d should beat slow network %d", f.ExecTime, s.ExecTime)
	}
}

// Multithreading (the §7 open issue, extension E13): with a fixed set of
// nodes, extra hardware threads overlap each other's memory stalls — on the
// stall-bound Maxflow, four threads per node must beat one.
func TestMultithreadingToleratesLatency(t *testing.T) {
	one, err := Run("maxflow", ScaleSmall, memsys.KindRCInv, memsys.DefaultMT(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run("maxflow", ScaleSmall, memsys.KindRCInv, memsys.DefaultMT(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	if four.ExecTime >= one.ExecTime {
		t.Errorf("4 threads/node exec %d should beat 1 thread/node %d", four.ExecTime, one.ExecTime)
	}
	if four.TotalCoreWait() == 0 {
		t.Error("expected core contention with 4 threads per node")
	}
}

func TestMultithreadSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	tbl, err := MultithreadSweep("is", ScaleSmall, memsys.KindRCInv, 4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

// Every application still verifies on every memory system when the machine
// runs multithreaded.
func TestAppsCorrectUnderMultithreading(t *testing.T) {
	p := memsys.DefaultMT(16, 4)
	for _, app := range AppNames() {
		for _, kind := range []memsys.Kind{memsys.KindZMachine, memsys.KindRCInv, memsys.KindRCUpd} {
			if _, err := Run(app, ScaleSmall, kind, p); err != nil {
				t.Errorf("%s on %s (MT): %v", app, kind, err)
			}
		}
	}
}

func TestScalabilitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep in -short mode")
	}
	tbl, err := ScalabilitySweep("is", ScaleSmall, memsys.KindRCInv, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "1.00" {
		t.Fatalf("base speedup = %s, want 1.00", tbl.Rows[0][2])
	}
}

// Parallel execution on the zero-overhead machine beats sequential for the
// applications with real parallelism at small scale (IS, Barnes-Hut). The
// tiny Cholesky/Maxflow instances are legitimately communication-bound and
// only break even — asserting speedup there would be asserting noise.
func TestParallelSpeedupOnZMachine(t *testing.T) {
	for _, app := range []string{"is", "nbody"} {
		seq, err := Run(app, ScaleSmall, memsys.KindZMachine, memsys.Default(1))
		if err != nil {
			t.Fatalf("%s seq: %v", app, err)
		}
		par := run(t, app, memsys.KindZMachine)
		if float64(par.ExecTime) > 0.5*float64(seq.ExecTime) {
			t.Errorf("%s: 16 procs on zmc (%d cycles) should be well under 1 proc (%d)",
				app, par.ExecTime, seq.ExecTime)
		}
	}
}

// Interconnect topology moves the overheads the way geometry says it
// should: a crossbar (single hop, no shared links) never loses to the
// paper's mesh, and a bus is the worst at 16 nodes.
func TestTopologyOrdering(t *testing.T) {
	exec := func(topo string) memsys.Time {
		p := memsys.Default(16)
		p.Topology = topo
		r, err := Run("is", ScaleSmall, memsys.KindRCInv, p)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		return r.ExecTime
	}
	xbar, meshT, bus := exec("xbar"), exec("mesh"), exec("bus")
	if xbar > meshT {
		t.Errorf("xbar exec %d should not exceed mesh %d", xbar, meshT)
	}
	if bus < meshT {
		t.Errorf("bus exec %d should not beat mesh %d at 16 nodes", bus, meshT)
	}
}

func TestTopologySweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	tbl, err := TopologySweep("maxflow", ScaleSmall, memsys.KindRCInv, memsys.Default(16), []string{"mesh", "torus", "hypercube", "xbar", "bus"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

// All applications verify on every topology (values must not depend on the
// network model).
func TestAppsCorrectOnEveryTopology(t *testing.T) {
	for _, topo := range []string{"torus", "hypercube", "xbar", "bus"} {
		p := memsys.Default(16)
		p.Topology = topo
		if _, err := Run("is", ScaleSmall, memsys.KindRCUpd, p); err != nil {
			t.Errorf("is on %s: %v", topo, err)
		}
		if _, err := Run("maxflow", ScaleSmall, memsys.KindZMachine, p); err != nil {
			t.Errorf("maxflow on %s: %v", topo, err)
		}
	}
}

// E15: the paper's §6 proposal realized — rcsync eliminates buffer flush
// entirely and never loses to rcinv, on every application.
func TestRCSyncEliminatesBufferFlush(t *testing.T) {
	for _, app := range AppNames() {
		inv := run(t, app, memsys.KindRCInv)
		sy := run(t, app, memsys.KindRCSync)
		if sy.TotalBufferFlush() != 0 {
			t.Errorf("%s: rcsync buffer flush = %d, want 0", app, sy.TotalBufferFlush())
		}
		if sy.ExecTime > inv.ExecTime {
			t.Errorf("%s: rcsync exec %d worse than rcinv %d", app, sy.ExecTime, inv.ExecTime)
		}
	}
}

func TestRCSyncComparisonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison in -short mode")
	}
	tbl, err := RCSyncComparison(ScaleSmall, memsys.Default(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestOrderingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering sweep in -short mode")
	}
	tbl, err := OrderingSweep(ScaleSmall, memsys.KindRCInv, memsys.Default(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

// Golden pins for the extension machines (multithreading, topology).
func TestGoldenVariantMachines(t *testing.T) {
	mt, err := Run("is", ScaleSmall, memsys.KindRCInv, memsys.DefaultMT(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	if mt.ExecTime != 89952 {
		t.Errorf("MT is exec = %d, pinned 89952", mt.ExecTime)
	}
	p := memsys.Default(16)
	p.Topology = "hypercube"
	hc, err := Run("nbody", ScaleSmall, memsys.KindRCUpd, p)
	if err != nil {
		t.Fatal(err)
	}
	if hc.ExecTime != 593125 {
		t.Errorf("hypercube nbody exec = %d, pinned 593125", hc.ExecTime)
	}
}

// Golden determinism pins: these exact cycle counts are a property of the
// checked-in sources (the simulation is reproducible bit-for-bit). If a
// protocol or cost-model change moves them, the change is intentional —
// update the pins — but an *unintentional* drift is a timing bug this test
// exists to catch.
func TestGoldenExecutionTimes(t *testing.T) {
	pins := []struct {
		app  string
		kind memsys.Kind
		exec memsys.Time
	}{
		{"is", memsys.KindZMachine, 5663},
		{"is", memsys.KindRCInv, 218524},
		{"maxflow", memsys.KindRCUpd, 69726},
		{"nbody", memsys.KindRCAdapt, 800806},
		{"maxflow", memsys.KindRCSync, 40284},
	}
	for _, pin := range pins {
		r := run(t, pin.app, pin.kind)
		if r.ExecTime != pin.exec {
			t.Errorf("%s on %s: exec = %d cycles, pinned %d (timing model changed?)",
				pin.app, pin.kind, r.ExecTime, pin.exec)
		}
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Fatalf("registry has %d experiments, DESIGN.md indexes 20", len(exps))
	}
	seen := map[string]bool{}
	for i, e := range exps {
		want := fmt.Sprintf("E%d", i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete entry", e.ID)
		}
	}
	if _, err := FindExperiment("E5"); err != nil {
		t.Error(err)
	}
	if _, err := FindExperiment("E99"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

// Every registered experiment runs end to end at small scale. This is the
// repository's one-stop completeness check: if an experiment regresses,
// this fails.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("all-experiments run in -short mode")
	}
	p := memsys.Default(16)
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			art, err := e.Run(ScaleSmall, p)
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if art.Render() == "" || art.Markdown() == "" {
				t.Fatalf("%s: empty artifact", e.ID)
			}
		})
	}
}

func TestSORRegistered(t *testing.T) {
	if _, err := NewApp("sor", ScaleSmall); err != nil {
		t.Fatal(err)
	}
	if _, err := Run("sor", ScaleSmall, memsys.KindZMachine, memsys.Default(16)); err != nil {
		t.Fatal(err)
	}
}

// The machine-checked claims registry: every paper claim passes at small
// scale, and the registry is well formed.
func TestClaimsAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("claims in -short mode")
	}
	tbl, allOK, err := EvaluateClaims(ScaleSmall, memsys.Default(16))
	if err != nil {
		t.Fatal(err)
	}
	if !allOK {
		t.Fatalf("claims failed:\n%s", tbl.Render())
	}
	if len(tbl.Rows) != len(Claims()) {
		t.Fatalf("verdict rows %d != claims %d", len(tbl.Rows), len(Claims()))
	}
	ids := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Text == "" || c.Check == nil {
			t.Fatalf("claim %+v incomplete", c.ID)
		}
		if ids[c.ID] {
			t.Fatalf("duplicate claim %s", c.ID)
		}
		ids[c.ID] = true
	}
}

func TestMustRunAndFigureNumbers(t *testing.T) {
	if got := FigureNumbers(); len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Fatalf("FigureNumbers = %v", got)
	}
	r := MustRun("is", ScaleSmall, memsys.KindPRAM, memsys.Default(16))
	if r.ExecTime == 0 {
		t.Fatal("MustRun returned empty result")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun should panic on bad input")
		}
	}()
	MustRun("bogus", ScaleSmall, memsys.KindPRAM, memsys.Default(16))
}

// Finite caches exercise the eviction/writeback paths end to end: every
// application must still verify with a small 4-way cache.
func TestAppsCorrectWithFiniteCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("finite-cache matrix in -short mode")
	}
	p := memsys.Default(16)
	p.FiniteCache = true
	p.CacheLines = 32
	p.CacheAssoc = 4
	for _, app := range AppNames() {
		for _, kind := range []memsys.Kind{memsys.KindRCInv, memsys.KindRCUpd, memsys.KindRCAdapt} {
			if _, err := Run(app, ScaleSmall, kind, p); err != nil {
				t.Errorf("%s on %s with finite caches: %v", app, kind, err)
			}
		}
	}
}

// Dir-i directories must also preserve end-to-end correctness.
func TestAppsCorrectWithLimitedPointers(t *testing.T) {
	if testing.Short() {
		t.Skip("dir-pointer matrix in -short mode")
	}
	p := memsys.Default(16)
	p.DirPointers = 2
	for _, app := range AppNames() {
		for _, kind := range []memsys.Kind{memsys.KindRCInv, memsys.KindRCUpd} {
			if _, err := Run(app, ScaleSmall, kind, p); err != nil {
				t.Errorf("%s on %s with Dir-2: %v", app, kind, err)
			}
		}
	}
}

// Cross-system value determinism: the memory system changes *when* things
// happen, never *what* is computed — IS must produce identical ranks on
// every system (the other applications' verifiers already pin outputs to
// references; IS's output is additionally order-sensitive, so compare it
// bitwise across systems here).
func TestValuesIdenticalAcrossSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-system value check in -short mode")
	}
	var want []uint64
	for _, kind := range memsys.Kinds() {
		app, err := NewApp("is", ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(kind, memsys.Default(16))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := apps.Run(app, m); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		is := app.(*intsort.IS)
		got := is.RanksSnapshot(m)
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: rank[%d] = %d differs from reference %d", kind, i, got[i], want[i])
			}
		}
	}
}

func TestSummaryMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix in -short mode")
	}
	tbl, err := SummaryMatrix(ScaleSmall, memsys.Default(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 || len(tbl.Rows[0]) != len(memsys.Kinds())+1 {
		t.Fatalf("matrix shape %dx%d", len(tbl.Rows), len(tbl.Rows[0]))
	}
}

// TestScalingExperimentsRegistry pins the S family's shape and its
// deliberate separation from the default regeneration index: folding S1..S4
// into Experiments() would change the metric totals CI's bench gate pins.
func TestScalingExperimentsRegistry(t *testing.T) {
	exps := ScalingExperiments(nil)
	if len(exps) != len(AppNames()) {
		t.Fatalf("S family has %d entries, want one per app (%d)", len(exps), len(AppNames()))
	}
	for i, e := range exps {
		want := fmt.Sprintf("S%d", i+1)
		if e.ID != want {
			t.Errorf("scaling experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete entry", e.ID)
		}
	}
	for _, e := range Experiments() {
		if e.ID[0] == 'S' {
			t.Errorf("S-family experiment %s leaked into the default regeneration index", e.ID)
		}
	}
	if _, err := FindExperimentScaled("S2", nil); err != nil {
		t.Error(err)
	}
	if _, err := FindExperimentScaled("E5", []int{2, 4}); err != nil {
		t.Error(err)
	}
	if _, err := FindExperiment("S1"); err != nil {
		t.Error(err)
	}
	if _, err := FindExperimentScaled("S9", nil); err == nil {
		t.Error("expected error for unknown scaling experiment")
	}
}

// TestOverheadScaling runs the curve builder at tiny machine sizes and pins
// the artifact's two faces: the rendered table and the machine-readable
// curve, which must be bit-identical with the kernel sharded.
func TestOverheadScaling(t *testing.T) {
	procs := []int{2, 4}
	base := memsys.Default(2)
	c, err := OverheadScaling("is", ScaleSmall, memsys.KindRCInv, base, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Table.Rows) != len(procs) {
		t.Fatalf("table has %d rows, want %d", len(c.Table.Rows), len(procs))
	}
	cv := c.CurveData()
	if cv.App != "is" || cv.System != string(memsys.KindRCInv) || len(cv.Points) != len(procs) {
		t.Fatalf("curve header wrong: %+v", cv)
	}
	for i, p := range cv.Points {
		if p.Procs != procs[i] || p.ExecCycles <= 0 {
			t.Fatalf("point %d malformed: %+v", i, p)
		}
	}
	if c.Render() == "" || c.Markdown() == "" {
		t.Fatal("artifact renders empty")
	}

	sharded := base
	sharded.KernelShards = 2
	c2, err := OverheadScaling("is", ScaleSmall, memsys.KindRCInv, sharded, procs)
	if err != nil {
		t.Fatal(err)
	}
	cv2 := c2.CurveData()
	cv2.ID = cv.ID
	if !reflect.DeepEqual(cv.Points, cv2.Points) {
		t.Fatalf("curve diverged under kernel sharding:\n%+v\nvs\n%+v", cv.Points, cv2.Points)
	}

	if _, err := OverheadScaling("is", ScaleSmall, memsys.KindRCInv, base, nil); err == nil {
		t.Error("expected error for empty machine-size list")
	}
}
