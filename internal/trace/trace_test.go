package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"zsim/internal/memsys"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{})
	if r.Total() != 0 || r.Events() != nil || r.HotLines(32, 5) != nil {
		t.Fatal("nil recorder must be inert")
	}
}

func TestRecordAndEvents(t *testing.T) {
	r := New(4)
	for i := 0; i < 3; i++ {
		r.Record(Event{At: memsys.Time(i), Proc: i, Kind: Read})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.At != memsys.Time(i) {
			t.Fatalf("order wrong: %v", evs)
		}
	}
	if r.Total() != 3 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingKeepsLast(t *testing.T) {
	r := New(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: memsys.Time(i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d, want 3", len(evs))
	}
	if evs[0].At != 7 || evs[2].At != 9 {
		t.Fatalf("retained wrong window: %v", evs)
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
}

// Property: after any number of records, Events() returns min(n, cap)
// events whose At fields are the most recent and in order.
func TestRingOrderProperty(t *testing.T) {
	f := func(n uint8) bool {
		r := New(8)
		for i := 0; i < int(n); i++ {
			r.Record(Event{At: memsys.Time(i)})
		}
		evs := r.Events()
		want := int(n)
		if want > 8 {
			want = 8
		}
		if len(evs) != want {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].At != evs[i-1].At+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHotLines(t *testing.T) {
	r := New(100)
	// Line 0: two accesses, stall 100 total. Line 1: one access, stall 5.
	r.Record(Event{Kind: Read, Addr: 0, Stall: 60})
	r.Record(Event{Kind: Write, Addr: 8, Stall: 40})
	r.Record(Event{Kind: Read, Addr: 40, Stall: 5})
	r.Record(Event{Kind: Release, Stall: 999}) // ignored: not an access
	hot := r.HotLines(32, 2)
	if len(hot) != 2 {
		t.Fatalf("hot = %v", hot)
	}
	if hot[0].Line != 0 || hot[0].Stall != 100 || hot[0].Accesses != 2 {
		t.Fatalf("hottest wrong: %v", hot[0])
	}
	if hot[1].Line != 1 || hot[1].Stall != 5 {
		t.Fatalf("second wrong: %v", hot[1])
	}
}

func TestHotLinesTruncates(t *testing.T) {
	r := New(10)
	r.Record(Event{Kind: Read, Addr: 0, Stall: 1})
	if got := r.HotLines(32, 5); len(got) != 1 {
		t.Fatalf("hot = %v, want single line", got)
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := New(10)
	r.Record(Event{At: 5, Proc: 2, Kind: Write, Addr: 0x40, Stall: 7})
	r.Record(Event{At: 9, Proc: 1, Kind: Release, Stall: 3})
	out := r.Dump()
	if !strings.Contains(out, "P2") || !strings.Contains(out, "W") || !strings.Contains(out, "rel") {
		t.Fatalf("dump missing fields:\n%s", out)
	}
	if Kind(99).String() != "?" {
		t.Fatal("unknown kind should print ?")
	}
	if !strings.Contains((HotLine{Line: 2, Accesses: 3, Stall: 4}).String(), "3 accesses") {
		t.Fatal("HotLine string wrong")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}
