// Package trace records the globally visible events of a simulation — shared
// reads and writes with their stalls, and synchronization releases — into a
// bounded ring buffer. Tracing is how one debugs an application's sharing
// pattern: dump the tail, see which addresses ping-pong, who produced a value
// a consumer stalled on, and where releases flush.
//
// The recorder costs nothing when disabled (a nil *Recorder records nothing),
// and a bounded ring when enabled, so it can stay attached to long runs.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"zsim/internal/memsys"
)

// Kind is the event type.
type Kind uint8

const (
	// Read is a shared load.
	Read Kind = iota
	// Write is a shared store.
	Write
	// Release is a release-type synchronization point (unlock, barrier
	// arrival).
	Release
	// Acquire is an acquire-type synchronization point.
	Acquire
	// LockAcq is a lock grant (recorded by the new holder). Obj identifies
	// the lock.
	LockAcq
	// LockRel is a lock release. Obj identifies the lock; Value carries the
	// time by which the holder's prior writes are globally performed (the
	// release watermark a conformance checker validates handoffs against).
	LockRel
	// BarArrive is a barrier arrival. Obj identifies the barrier; Value
	// carries the participant count.
	BarArrive
	// BarDepart is a barrier exit. Obj identifies the barrier; Value carries
	// the participant count.
	BarDepart
	// FlagSet is a producer-consumer flag being raised. Obj identifies the
	// flag; Value carries the time the flag (and the setter's prior writes)
	// becomes observable.
	FlagSet
	// FlagWait is a completed wait on a flag. Obj identifies the flag.
	FlagWait
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case Release:
		return "rel"
	case Acquire:
		return "acq"
	case LockAcq:
		return "l+"
	case LockRel:
		return "l-"
	case BarArrive:
		return "b>"
	case BarDepart:
		return "b<"
	case FlagSet:
		return "f+"
	case FlagWait:
		return "f?"
	}
	return "?"
}

// Event is one recorded simulation event.
type Event struct {
	At    memsys.Time // issue time (processor's virtual clock)
	Proc  int         // issuing execution stream
	Kind  Kind
	Addr  memsys.Addr // meaningful for Read/Write
	Stall memsys.Time // cycles the processor waited
	// Value is kind-dependent: the datum read or written (Read/Write), the
	// release watermark (Release/LockRel/FlagSet), or the participant count
	// (BarArrive/BarDepart).
	Value uint64
	// Obj identifies the synchronization object of a sync event (lock,
	// barrier, or flag id assigned by the machine); 0 for memory events.
	Obj int32
}

// IsSync reports whether the event is a synchronization-object event.
func (k Kind) IsSync() bool { return k >= LockAcq }

func (e Event) String() string {
	switch e.Kind {
	case Read, Write:
		return fmt.Sprintf("%10d P%-2d %-3s %#08x stall=%d val=%d", e.At, e.Proc, e.Kind, e.Addr, e.Stall, e.Value)
	case LockAcq, LockRel, BarArrive, BarDepart, FlagSet, FlagWait:
		return fmt.Sprintf("%10d P%-2d %-3s obj=%d val=%d", e.At, e.Proc, e.Kind, e.Obj, e.Value)
	}
	return fmt.Sprintf("%10d P%-2d %-3s stall=%d", e.At, e.Proc, e.Kind, e.Stall)
}

// Recorder is a bounded ring buffer of events. A nil Recorder is valid and
// records nothing.
type Recorder struct {
	buf   []Event
	next  int
	total uint64
}

// New returns a recorder keeping the last cap events.
func New(cap int) *Recorder {
	if cap <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Recorder{buf: make([]Event, 0, cap)}
}

// Record appends an event (dropping the oldest beyond capacity).
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns the number of events ever recorded (including dropped ones).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Events returns the retained events in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// HotLines aggregates the retained events by cache line (of the given size)
// and returns the top-n lines by total stall — the first place to look for
// ping-ponging data.
func (r *Recorder) HotLines(lineSize, n int) []HotLine {
	if r == nil {
		return nil
	}
	agg := map[memsys.Addr]*HotLine{}
	for _, ev := range r.Events() {
		if ev.Kind != Read && ev.Kind != Write {
			continue
		}
		line := memsys.Line(ev.Addr, lineSize)
		h, ok := agg[line]
		if !ok {
			h = &HotLine{Line: line}
			agg[line] = h
		}
		h.Accesses++
		h.Stall += ev.Stall
	}
	lines := make([]memsys.Addr, 0, len(agg))
	for line := range agg {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	out := make([]HotLine, 0, len(agg))
	for _, line := range lines {
		out = append(out, *agg[line])
	}
	// Selection sort of the top n (n is small).
	if n > len(out) {
		n = len(out)
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Stall > out[best].Stall ||
				(out[j].Stall == out[best].Stall && out[j].Line < out[best].Line) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out[:n]
}

// HotLine is a per-line access/stall aggregate.
type HotLine struct {
	Line     memsys.Addr
	Accesses int
	Stall    memsys.Time
}

func (h HotLine) String() string {
	return fmt.Sprintf("line %#08x: %d accesses, %d stall cycles", h.Line, h.Accesses, h.Stall)
}
