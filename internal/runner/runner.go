// Package runner executes grids of independent simulations on a bounded
// worker pool while preserving serial semantics. The paper's evaluation is
// a matrix of independent, deterministic cells (application × memory
// system × parameter point); each cell builds its own machine, so cells
// may run on separate host cores. Results are collected by cell index and
// assembled only after every cell finishes, which makes every output —
// tables, figures, error reporting — byte-identical regardless of the
// worker count.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zsim/internal/metrics"
)

// parallelism bounds the number of concurrently running cells. It defaults
// to GOMAXPROCS: one simulation per host core. 1 means serial.
var parallelism atomic.Int64

func init() { parallelism.Store(int64(runtime.GOMAXPROCS(0))) }

// Parallelism returns the current worker bound used by Grid.
func Parallelism() int { return int(parallelism.Load()) }

// SetParallelism sets the worker bound for subsequent Grid calls and
// returns the previous bound. n < 1 selects GOMAXPROCS.
func SetParallelism(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(parallelism.Swap(int64(n)))
}

// Grid runs cell(0), ..., cell(n-1) on up to Parallelism() workers and
// returns the n results indexed by cell. The outcome is independent of the
// worker count:
//
//   - results are collected by index, so assembly order equals serial order;
//   - every cell runs even when another cell fails, so the pool always
//     drains, and the returned error is the failing cell with the smallest
//     index — exactly the error a serial left-to-right run would surface;
//   - a panicking cell cannot wedge the pool: workers capture the panic,
//     the remaining cells still run, and the smallest-index panic is
//     re-raised in the caller once the pool has drained.
//
// Cells must be independent (no shared mutable state); each should build
// its own machine.
// CellWallBuckets are the inclusive upper bounds (in milliseconds) of the
// runner.cell_wall_ms histogram. Cell wall time is host-side accounting:
// it varies with the machine and the -parallel setting, unlike every
// simulated metric.
var CellWallBuckets = []uint64{1, 5, 10, 25, 50, 100, 250, 1000}

// gridMetrics carries the per-grid handles recorded into metrics.Default.
// Handles are fetched per Grid call (not cached) so a Default.Reset
// between evaluation phases cannot leave stale metric pointers behind.
type gridMetrics struct {
	cells *metrics.Counter
	wall  *metrics.Histogram
	busy  *metrics.Gauge
}

// run executes one cell with host-side wall-time and occupancy accounting.
func (g *gridMetrics) run(do func()) {
	if g == nil {
		do()
		return
	}
	g.busy.Add(1)
	start := time.Now()
	do()
	g.wall.Observe(uint64(time.Since(start).Milliseconds()))
	g.busy.Add(-1)
	g.cells.Inc()
}

func newGridMetrics() *gridMetrics {
	if !metrics.Enabled() {
		return nil
	}
	metrics.Default.Counter("runner.grids").Inc()
	return &gridMetrics{
		cells: metrics.Default.Counter("runner.cells"),
		wall:  metrics.Default.Histogram("runner.cell_wall_ms", CellWallBuckets),
		busy:  metrics.Default.Gauge("runner.workers_busy"),
	}
}

func Grid[T any](n int, cell func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	panics := make([]any, n)
	gm := newGridMetrics()
	if workers <= 1 {
		// Serial: run in the caller's goroutine. Every cell still runs on
		// error or panic so the outcome matches the pooled path's.
		for i := 0; i < n; i++ {
			i := i
			gm.run(func() { runCell(cell, i, results, errs, panics) })
		}
		for _, pv := range panics {
			if pv != nil {
				panic(pv)
			}
		}
		return results, firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				gm.run(func() { runCell(cell, i, results, errs, panics) })
			}
		}()
	}
	wg.Wait()
	for _, pv := range panics {
		if pv != nil {
			panic(pv)
		}
	}
	return results, firstError(errs)
}

// runCell executes one cell, capturing a panic so the worker survives to
// drain its remaining cells.
func runCell[T any](cell func(i int) (T, error), i int, results []T, errs []error, panics []any) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
		}
	}()
	results[i], errs[i] = cell(i)
}

// firstError returns the smallest-index non-nil error.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
