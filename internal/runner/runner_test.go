package runner

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// withParallelism runs f with the pool bound set to n, restoring the
// previous bound afterwards.
func withParallelism(n int, f func()) {
	prev := SetParallelism(n)
	defer SetParallelism(prev)
	f()
}

func TestSetParallelism(t *testing.T) {
	prev := SetParallelism(7)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 7 {
		t.Fatalf("Parallelism() = %d, want 7", got)
	}
	if old := SetParallelism(0); old != 7 {
		t.Fatalf("SetParallelism returned %d, want 7", old)
	}
	if got := Parallelism(); got < 1 {
		t.Fatalf("SetParallelism(0) left bound %d, want >= 1 (GOMAXPROCS)", got)
	}
}

// TestGridCollectsByIndex checks results land at their cell index for both
// the serial and the pooled path.
func TestGridCollectsByIndex(t *testing.T) {
	for _, par := range []int{1, 2, 8, 64} {
		par := par
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			withParallelism(par, func() {
				got, err := Grid(100, func(i int) (int, error) { return i * i, nil })
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range got {
					if v != i*i {
						t.Fatalf("cell %d = %d, want %d", i, v, i*i)
					}
				}
			})
		})
	}
}

// TestGridErrorDrainsPool injects an erroring cell and verifies the pool
// drains cleanly (every other cell still runs, no deadlock) and that the
// smallest-index error is the one surfaced, independent of worker count.
func TestGridErrorDrainsPool(t *testing.T) {
	bang7 := errors.New("cell 7 exploded")
	bang3 := errors.New("cell 3 exploded")
	for _, par := range []int{1, 4, 16} {
		par := par
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			withParallelism(par, func() {
				ran := make([]bool, 32)
				_, err := Grid(32, func(i int) (int, error) {
					ran[i] = true
					switch i {
					case 7:
						return 0, bang7
					case 3:
						// The later-scheduled of the two errors under most
						// interleavings, but the earlier index: it must win.
						time.Sleep(time.Millisecond)
						return 0, bang3
					}
					return i, nil
				})
				if !errors.Is(err, bang3) {
					t.Fatalf("err = %v, want smallest-index error %v", err, bang3)
				}
				for i, r := range ran {
					if !r {
						t.Fatalf("cell %d never ran after another cell errored", i)
					}
				}
			})
		})
	}
}

// TestGridPanicDrainsPool checks a panicking cell is re-raised in the
// caller only after the pool has drained.
func TestGridPanicDrainsPool(t *testing.T) {
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			withParallelism(par, func() {
				ran := make([]bool, 16)
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("expected the cell panic to propagate")
					}
					if fmt.Sprint(r) != "boom 5" {
						t.Fatalf("recovered %v, want smallest-index panic \"boom 5\"", r)
					}
					for i, v := range ran {
						if !v {
							t.Fatalf("cell %d never ran after another cell panicked", i)
						}
					}
				}()
				Grid(16, func(i int) (int, error) {
					ran[i] = true
					if i == 5 || i == 11 {
						panic(fmt.Sprintf("boom %d", i))
					}
					return i, nil
				})
			})
		})
	}
}

// TestGridZeroCells degenerate case.
func TestGridZeroCells(t *testing.T) {
	got, err := Grid(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("Grid(0) = %v, %v; want empty, nil", got, err)
	}
}

// TestGridDeterministicAcrossWorkerCounts runs the same grid at several
// bounds and requires identical result slices.
func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(par int) []string {
		var out []string
		withParallelism(par, func() {
			rs, err := Grid(50, func(i int) (string, error) {
				return fmt.Sprintf("r%03d", i), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			out = rs
		})
		return out
	}
	want := run(1)
	for _, par := range []int{2, 5, 32} {
		got := run(par)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel=%d cell %d = %q, want %q", par, i, got[i], want[i])
			}
		}
	}
}
