package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// withParallelism runs f with the pool bound set to n, restoring the
// previous bound afterwards.
func withParallelism(n int, f func()) {
	prev := SetParallelism(n)
	defer SetParallelism(prev)
	f()
}

func TestSetParallelism(t *testing.T) {
	prev := SetParallelism(7)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 7 {
		t.Fatalf("Parallelism() = %d, want 7", got)
	}
	if old := SetParallelism(0); old != 7 {
		t.Fatalf("SetParallelism returned %d, want 7", old)
	}
	if got := Parallelism(); got < 1 {
		t.Fatalf("SetParallelism(0) left bound %d, want >= 1 (GOMAXPROCS)", got)
	}
}

// TestGridCollectsByIndex checks results land at their cell index for both
// the serial and the pooled path.
func TestGridCollectsByIndex(t *testing.T) {
	for _, par := range []int{1, 2, 8, 64} {
		par := par
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			withParallelism(par, func() {
				got, err := Grid(100, func(i int) (int, error) { return i * i, nil })
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range got {
					if v != i*i {
						t.Fatalf("cell %d = %d, want %d", i, v, i*i)
					}
				}
			})
		})
	}
}

// TestGridErrorDrainsPool injects an erroring cell and verifies the pool
// drains cleanly (every other cell still runs, no deadlock) and that the
// smallest-index error is the one surfaced, independent of worker count.
func TestGridErrorDrainsPool(t *testing.T) {
	bang7 := errors.New("cell 7 exploded")
	bang3 := errors.New("cell 3 exploded")
	for _, par := range []int{1, 4, 16} {
		par := par
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			withParallelism(par, func() {
				ran := make([]bool, 32)
				_, err := Grid(32, func(i int) (int, error) {
					ran[i] = true
					switch i {
					case 7:
						return 0, bang7
					case 3:
						// The later-scheduled of the two errors under most
						// interleavings, but the earlier index: it must win.
						time.Sleep(time.Millisecond)
						return 0, bang3
					}
					return i, nil
				})
				if !errors.Is(err, bang3) {
					t.Fatalf("err = %v, want smallest-index error %v", err, bang3)
				}
				for i, r := range ran {
					if !r {
						t.Fatalf("cell %d never ran after another cell errored", i)
					}
				}
			})
		})
	}
}

// TestGridPanicDrainsPool checks a panicking cell is re-raised in the
// caller only after the pool has drained.
func TestGridPanicDrainsPool(t *testing.T) {
	for _, par := range []int{1, 4} {
		par := par
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			withParallelism(par, func() {
				ran := make([]bool, 16)
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("expected the cell panic to propagate")
					}
					if fmt.Sprint(r) != "boom 5" {
						t.Fatalf("recovered %v, want smallest-index panic \"boom 5\"", r)
					}
					for i, v := range ran {
						if !v {
							t.Fatalf("cell %d never ran after another cell panicked", i)
						}
					}
				}()
				Grid(16, func(i int) (int, error) {
					ran[i] = true
					if i == 5 || i == 11 {
						panic(fmt.Sprintf("boom %d", i))
					}
					return i, nil
				})
			})
		})
	}
}

// TestGridFailureSurfacing is the table-driven contract for error/panic
// surfacing: whatever mix of failing cells a grid contains, (a) every
// cell runs, (b) the surfaced error is the smallest-index one — exactly
// what a serial left-to-right run would report — and (c) a panic anywhere
// is re-raised (smallest index first) only after the pool has drained,
// taking precedence over any error. All of it independent of the worker
// bound.
func TestGridFailureSurfacing(t *testing.T) {
	const n = 24
	cases := []struct {
		name      string
		errAt     []int
		panicAt   []int
		wantErr   int // index of the error that must surface; -1 = nil error
		wantPanic int // index of the panic that must surface; -1 = no panic
	}{
		{"no failures", nil, nil, -1, -1},
		{"single error", []int{9}, nil, 9, -1},
		{"error at cell zero", []int{0}, nil, 0, -1},
		{"lowest of many errors wins", []int{17, 4, 21, 11}, nil, 4, -1},
		{"error at last cell", []int{n - 1}, nil, n - 1, -1},
		{"single panic", nil, []int{13}, -1, 13},
		{"lowest of many panics wins", nil, []int{19, 6, 10}, -1, 6},
		{"panic beats lower-index error", []int{2}, []int{20}, -1, 20},
		{"every cell errors", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23}, nil, 0, -1},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 3, 16} {
			t.Run(fmt.Sprintf("%s/parallel=%d", tc.name, par), func(t *testing.T) {
				erring := make(map[int]bool, len(tc.errAt))
				for _, i := range tc.errAt {
					erring[i] = true
				}
				panicking := make(map[int]bool, len(tc.panicAt))
				for _, i := range tc.panicAt {
					panicking[i] = true
				}
				var ran [n]atomic.Bool
				checkAllRan := func() {
					t.Helper()
					for i := range ran {
						if !ran[i].Load() {
							t.Fatalf("cell %d never ran", i)
						}
					}
				}
				defer func() {
					r := recover()
					if tc.wantPanic < 0 {
						if r != nil {
							t.Fatalf("unexpected panic %v", r)
						}
						return
					}
					want := fmt.Sprintf("panic %d", tc.wantPanic)
					if r == nil || fmt.Sprint(r) != want {
						t.Fatalf("recovered %v, want %q", r, want)
					}
					checkAllRan()
				}()
				withParallelism(par, func() {
					got, err := Grid(n, func(i int) (int, error) {
						ran[i].Store(true)
						if panicking[i] {
							panic(fmt.Sprintf("panic %d", i))
						}
						if erring[i] {
							return 0, fmt.Errorf("error %d", i)
						}
						return i, nil
					})
					if tc.wantPanic >= 0 {
						t.Fatal("expected a panic, Grid returned")
					}
					checkAllRan()
					switch {
					case tc.wantErr < 0 && err != nil:
						t.Fatalf("err = %v, want nil", err)
					case tc.wantErr >= 0 && (err == nil || err.Error() != fmt.Sprintf("error %d", tc.wantErr)):
						t.Fatalf("err = %v, want error %d", err, tc.wantErr)
					}
					for i, v := range got {
						if !erring[i] && v != i {
							t.Fatalf("healthy cell %d = %d, want %d (failed neighbours must not corrupt it)", i, v, i)
						}
					}
				})
			})
		}
	}
}

// TestGridZeroCells degenerate case.
func TestGridZeroCells(t *testing.T) {
	got, err := Grid(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("Grid(0) = %v, %v; want empty, nil", got, err)
	}
}

// TestGridDeterministicAcrossWorkerCounts runs the same grid at several
// bounds and requires identical result slices.
func TestGridDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(par int) []string {
		var out []string
		withParallelism(par, func() {
			rs, err := Grid(50, func(i int) (string, error) {
				return fmt.Sprintf("r%03d", i), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			out = rs
		})
		return out
	}
	want := run(1)
	for _, par := range []int{2, 5, 32} {
		got := run(par)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallel=%d cell %d = %q, want %q", par, i, got[i], want[i])
			}
		}
	}
}
