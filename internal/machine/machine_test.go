package machine

import (
	"testing"

	"zsim/internal/memsys"
	"zsim/internal/shm"
)

func newM(t testing.TB, kind memsys.Kind) *Machine {
	t.Helper()
	return MustNew(kind, memsys.Default(16))
}

func TestNewValidates(t *testing.T) {
	p := memsys.Default(16)
	p.LineSize = 7
	if _, err := New(memsys.KindRCInv, p); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := New("nope", memsys.Default(16)); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestComputeAccounting(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	res := m.Run("t", func(e *Env) {
		e.Compute(Time(100 * (e.ID() + 1)))
	})
	if res.ExecTime != 1600 {
		t.Fatalf("ExecTime = %d, want 1600", res.ExecTime)
	}
	if res.Procs[0].Compute != 100 || res.Procs[15].Compute != 1600 {
		t.Fatalf("per-proc compute wrong: %v", res.Procs)
	}
	if res.App != "t" || res.System != memsys.KindPRAM {
		t.Fatalf("labels wrong: %s", res)
	}
}

func TestValuesFlowBetweenProcs(t *testing.T) {
	for _, kind := range memsys.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m := newM(t, kind)
			arr := shm.NewU64(m.Heap, 16)
			m.Run("t", func(e *Env) {
				arr.Set(e, e.ID(), uint64(e.ID()*7))
				e.Compute(100000) // let everything settle
				// Read a neighbour's value (written under no race: the
				// write precedes in virtual time thanks to Compute skew).
				_ = arr.Get(e, e.ID())
			})
			for i := 0; i < 16; i++ {
				if got := m.PeekU64(arr.At(i)); got != uint64(i*7) {
					t.Fatalf("final value[%d] = %d, want %d", i, got, i*7)
				}
			}
		})
	}
}

func TestStallAccounting(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	a := m.Alloc(64)
	res := m.Run("t", func(e *Env) {
		if e.ID() != 0 {
			return
		}
		_ = e.LoadU64(a) // cold miss: read stall
		e.StoreU64(a+32, 1)
		e.StoreU64(a+64, 1)
		e.StoreU64(a+96, 1)
		e.StoreU64(a+128, 1)
		e.StoreU64(a+160, 1) // 5th pending write: write stall
		e.ReleasePoint()     // buffer flush
	})
	p := res.Procs[0]
	if p.ReadStall == 0 {
		t.Error("expected read stall from the cold miss")
	}
	if p.WriteStall == 0 {
		t.Error("expected write stall from the full store buffer")
	}
	if p.BufferFlush == 0 {
		t.Error("expected buffer flush at the release point")
	}
	if res.Counters.Reads != 1 || res.Counters.Writes != 5 {
		t.Errorf("counters: %s", &res.Counters)
	}
}

func TestPeekPoke(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	m.PokeU64(8, 99)
	if m.PeekU64(8) != 99 {
		t.Fatal("u64 poke/peek failed")
	}
	m.PokeF64(16, 2.5)
	if m.PeekF64(16) != 2.5 {
		t.Fatal("f64 poke/peek failed")
	}
}

func TestPokeVisibleToSimulatedLoads(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	a := m.Alloc(8)
	m.PokeU64(a, 1234) // pre-run initialization
	var got uint64
	m.Run("t", func(e *Env) {
		if e.ID() == 0 {
			got = e.LoadU64(a)
		}
	})
	if got != 1234 {
		t.Fatalf("load = %d, want 1234", got)
	}
}

func TestRunTwicePanics(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	m.Run("t", func(e *Env) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	m.Run("t", func(e *Env) {})
}

func TestZeroOverheadOnZMachine(t *testing.T) {
	m := newM(t, memsys.KindZMachine)
	arr := shm.NewU64(m.Heap, 64)
	res := m.Run("t", func(e *Env) {
		for i := 0; i < 4; i++ {
			arr.Set(e, e.ID()*4+i, 1)
			e.Compute(500)
			_ = arr.Get(e, e.ID()*4+i)
		}
	})
	if res.TotalWriteStall() != 0 || res.TotalBufferFlush() != 0 {
		t.Fatalf("z-machine write stall/flush must be zero: %s", res)
	}
	// Producers reading their own data after ample compute: no read stall.
	if res.TotalReadStall() != 0 {
		t.Fatalf("local reads stalled: %s", res)
	}
	if res.OverheadPct() != 0 {
		t.Fatalf("overhead = %g, want 0", res.OverheadPct())
	}
}

func TestEnvBasics(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	m.Run("t", func(e *Env) {
		if e.NumProcs() != 16 {
			t.Errorf("NumProcs = %d", e.NumProcs())
		}
		if e.Machine() != m {
			t.Error("Machine() wrong")
		}
		if e.Params().Procs != 16 {
			t.Error("Params() wrong")
		}
		before := e.Clock()
		e.Compute(10)
		if e.Clock() != before+10 {
			t.Error("Compute did not advance the clock")
		}
	})
}

func TestMultithreadCoreSerializes(t *testing.T) {
	p := memsys.DefaultMT(2, 2) // one node, two threads
	m := MustNew(memsys.KindPRAM, p)
	res := m.Run("t", func(e *Env) {
		e.Compute(100)
	})
	// The two threads share one core: total compute serializes.
	if res.ExecTime != 200 {
		t.Fatalf("exec = %d, want 200 (core-serialized)", res.ExecTime)
	}
	if res.TotalCoreWait() != 100 {
		t.Fatalf("core wait = %d, want 100", res.TotalCoreWait())
	}
}

func TestSingleThreadNoCoreWait(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	a := m.Alloc(64)
	res := m.Run("t", func(e *Env) {
		e.Compute(50)
		_ = e.LoadU64(a)
	})
	if res.TotalCoreWait() != 0 {
		t.Fatalf("core wait = %d with one thread per node", res.TotalCoreWait())
	}
}

func TestMultithreadStallOverlap(t *testing.T) {
	// Two threads on one node alternate a remote miss (which releases the
	// core) with computation: thread B computes while thread A stalls, so
	// the total time beats the serialized sum.
	run := func(threads int) Time {
		p := memsys.DefaultMT(threads, threads) // one node
		m := MustNew(memsys.KindRCInv, p)
		arrs := make([]memsys.Addr, threads)
		for i := range arrs {
			arrs[i] = m.Alloc(64 * 32)
		}
		res := m.Run("t", func(e *Env) {
			base := arrs[e.ID()]
			for i := 0; i < 32; i++ {
				_ = e.LoadU64(base + memsys.Addr(i*32)) // cold remote miss
				e.Compute(40)
			}
		})
		return res.ExecTime
	}
	one := run(1)
	two := run(2)
	// Two threads do twice the work; with full overlap the time is far
	// below 2x the single-thread time.
	if float64(two) >= 1.7*float64(one) {
		t.Fatalf("no latency tolerance: 1 thread %d cycles, 2 threads %d", one, two)
	}
}

func TestMultithreadSharedCache(t *testing.T) {
	p := memsys.DefaultMT(2, 2) // one node, two threads sharing the cache
	m := MustNew(memsys.KindRCInv, p)
	a := m.Alloc(64)
	var stall0, stall1 Time
	res := m.Run("t", func(e *Env) {
		if e.ID() == 0 {
			_ = e.LoadU64(a) // miss, fills the node's cache
		} else {
			e.Compute(100000)
			_ = e.LoadU64(a) // same node: must hit
		}
	})
	stall0 = res.Procs[0].ReadStall
	stall1 = res.Procs[1].ReadStall
	if stall0 == 0 {
		t.Fatal("first access should miss")
	}
	if stall1 != 0 {
		t.Fatalf("sibling thread stalled %d on a line its node already caches", stall1)
	}
}

func TestTraceRecordsAccesses(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	rec := m.EnableTrace(1024)
	if m.Trace() != rec {
		t.Fatal("Trace() should return the attached recorder")
	}
	a := m.Alloc(64)
	m.Run("t", func(e *Env) {
		if e.ID() != 0 {
			return
		}
		_ = e.LoadU64(a)
		e.StoreU64(a, 1)
		e.ReleasePoint()
	})
	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].Stall == 0 {
		t.Error("cold read should have recorded a stall")
	}
	hot := rec.HotLines(32, 1)
	if len(hot) != 1 || hot[0].Accesses != 2 {
		t.Fatalf("hot lines wrong: %v", hot)
	}
}

func TestNoTraceByDefault(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	if m.Trace() != nil {
		t.Fatal("tracing should be off by default")
	}
	a := m.Alloc(8)
	m.Run("t", func(e *Env) { _ = e.LoadU64(a) }) // must not panic
}

func TestF64LoadStore(t *testing.T) {
	m := newM(t, memsys.KindRCUpd)
	a := m.Alloc(8)
	var got float64
	m.Run("t", func(e *Env) {
		if e.ID() != 0 {
			return
		}
		e.StoreF64(a, 6.25)
		got = e.LoadF64(a)
	})
	if got != 6.25 {
		t.Fatalf("f64 roundtrip = %g", got)
	}
	if m.PeekF64(a) != 6.25 {
		t.Fatal("backing store wrong")
	}
}

func TestAtomicSwapSemantics(t *testing.T) {
	m := newM(t, memsys.KindRCInv)
	a := m.Alloc(8)
	m.PokeU64(a, 7)
	res := m.Run("t", func(e *Env) {
		if e.ID() != 0 {
			return
		}
		if old := e.AtomicSwapU64(a, 9); old != 7 {
			t.Errorf("swap returned %d, want 7", old)
		}
		if e.LoadU64(a) != 9 {
			t.Error("swap did not store")
		}
	})
	// The swap's read half is a cold miss: read stall must be charged.
	if res.Procs[0].ReadStall == 0 {
		t.Error("atomic swap should charge read stall on a cold line")
	}
	if res.Counters.Reads != 2 || res.Counters.Writes != 1 {
		t.Errorf("counters: %s", &res.Counters)
	}
}

func TestReleaseWatermarkPerSystem(t *testing.T) {
	// On rcsync the watermark extends past pending writes; on rcinv it is
	// just the clock (the interface is not implemented).
	for _, kind := range []memsys.Kind{memsys.KindRCSync, memsys.KindRCInv} {
		kind := kind
		m := newM(t, kind)
		a := m.Alloc(64)
		m.Run("t", func(e *Env) {
			if e.ID() != 0 {
				return
			}
			e.StoreU64(a, 1)
			wm := e.ReleaseWatermark()
			if kind == memsys.KindRCSync && wm <= e.Clock() {
				t.Errorf("rcsync watermark %d should exceed clock %d", wm, e.Clock())
			}
			if kind == memsys.KindRCInv && wm != e.Clock() {
				t.Errorf("rcinv watermark %d should equal clock %d", wm, e.Clock())
			}
		})
	}
}

func TestNodeIDAndHelpers(t *testing.T) {
	p := memsys.DefaultMT(8, 2)
	m := MustNew(memsys.KindPRAM, p)
	if m.NumProcs() != 8 {
		t.Fatalf("NumProcs = %d", m.NumProcs())
	}
	m.Run("t", func(e *Env) {
		if e.NodeID() != e.ID()/2 {
			t.Errorf("P%d NodeID = %d", e.ID(), e.NodeID())
		}
		e.SyncPoint()
		e.AdvanceTo(100)
		if e.Clock() < 100 {
			t.Error("AdvanceTo failed")
		}
		e.AddSyncWait(5)
	})
}

func TestSendCtrlTravels(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	m.Run("t", func(e *Env) {
		if e.ID() != 0 {
			return
		}
		arr := e.SendCtrl(15, e.Clock())
		if arr <= e.Clock() {
			t.Error("remote control message should take time")
		}
		if e.SendCtrlFrom(3, 3, 10) != 10 {
			t.Error("local message should be free")
		}
	})
}

func TestBlockUnblockThroughEnv(t *testing.T) {
	m := newM(t, memsys.KindPRAM)
	envs := make([]*Env, 16)
	m.Run("t", func(e *Env) {
		envs[e.ID()] = e
		switch e.ID() {
		case 0:
			e.Block("wait for P1")
			if e.Clock() < 500 {
				t.Errorf("unblocked too early at %d", e.Clock())
			}
		case 1:
			e.Compute(500)
			e.SyncPoint()
			envs[0].Unblock(e.Clock())
		}
	})
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew("bogus", memsys.Default(16))
}
