// Package machine binds the simulation kernel, the interconnect, a memory
// system, and the shared address space into a runnable simulated
// multiprocessor. Applications are ordinary Go functions that receive a
// per-processor Env and perform every shared access and synchronization
// through it — the execution-driven trap interface of the paper's SPASM
// framework.
package machine

import (
	"math"

	"zsim/internal/check"
	"zsim/internal/memsys"
	"zsim/internal/mesh"
	"zsim/internal/metrics"
	"zsim/internal/proto"
	"zsim/internal/shm"
	"zsim/internal/sim"
	"zsim/internal/stats"
	"zsim/internal/trace"
)

// Time aliases virtual time.
type Time = memsys.Time

// Machine is a simulated shared-memory multiprocessor.
type Machine struct {
	Params memsys.Params
	Eng    *sim.Engine
	Net    *mesh.Net
	Mem    memsys.MemSystem
	Heap   *shm.Heap

	// values backs the simulated shared memory: a paged flat table of
	// 8-byte words indexed by memsys.WordIndex(addr). The heap is a bump
	// allocator, so word indices are dense and every load/store on the
	// per-access hot path is two array indexings — no hashing, no
	// steady-state allocation.
	//
	//zlint:confine home word values are indexed by WordIndex(addr); the backing pages partition by the address being accessed
	values memsys.Paged[uint64]
	procs  []stats.Proc
	envs   []*Env
	// met is the machine's own metrics registry; every component is wired
	// to it at construction, the run's totals are harvested into it when
	// Run finishes, and it is then merged into metrics.Default. Recording
	// is gated globally by metrics.Enable and never touches virtual time.
	met *metrics.Registry
	// rec, when non-nil, records every globally visible event.
	rec *trace.Recorder
	// chk, when non-nil, validates memory-model invariants on every event.
	chk *check.Checker
	// syncIDs numbers the synchronization objects (locks, barriers, flags)
	// built on this machine, for event attribution.
	syncIDs int32
	// stage, when non-nil (a sharded run with a recorder or checker
	// attached), holds one observation-event buffer per kernel shard. Traps
	// dispatched inside local windows cannot call the recorder/checker
	// directly — shards run concurrently — so every event is staged in its
	// shard's buffer keyed by the dispatch (clock, proc id) and merged out
	// in serial-schedule order at the engine's quiesce points (see
	// flushStaged). Serial machines and observer-less sharded runs keep the
	// direct zero-overhead path.
	stage []stageShard
	// coreFree[node] is when the node's core finishes its current
	// computation; with HWThreads > 1 the threads of a node contend for it
	// (switch-on-miss multithreading: memory stalls do not hold the core).
	//zlint:confine shard indexed by the issuing processor's own node at every compute dispatch
	coreFree []Time
	ran      bool
}

// New builds a machine with the given memory system and parameters.
func New(kind memsys.Kind, p memsys.Params) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	net := mesh.New(p)
	mem, err := proto.New(kind, p, net)
	if err != nil {
		return nil, err
	}
	// Serial kernel by default; with KernelShards the scheduler is
	// partitioned by home node with a conservative synchronization window
	// derived from the minimum cross-shard mesh latency. The schedule of
	// global-scope operations is bit-identical either way; traps the
	// protocol's scope probe proves node-private (memsys.ScopedSystem,
	// DESIGN §15) additionally run concurrently inside local windows.
	eng := sim.NewEngine(p.Procs)
	if shards := p.ShardCount(); shards > 0 {
		eng = sim.NewEngineSharded(p.Procs, shards, p.ShardOfProc)
		eng.SetLookahead(net.MinCrossShardLatency(p.ShardOfNode, p.CtrlBytes))
	}
	m := &Machine{
		Params:   p,
		Eng:      eng,
		Net:      net,
		Mem:      mem,
		Heap:     shm.NewHeap(p.LineSize),
		procs:    make([]stats.Proc, p.Procs),
		coreFree: make([]Time, p.Nodes()),
		met:      metrics.NewRegistry(),
	}
	m.Eng.InstrumentMetrics(m.met)
	m.Net.InstrumentMetrics(m.met)
	if ins, ok := mem.(metrics.Instrumentable); ok {
		ins.InstrumentMetrics(m.met)
	}
	// Scope classification (DESIGN §15): when the kernel is sharded and the
	// memory system can classify accesses, each Env gets probe closures —
	// built once here, because the trap hot path must not allocate — that
	// the kernel evaluates at dispatch time through sim.Proc.SyncScoped.
	// Fault-injection runs stay all-global: the probes' soundness arguments
	// assume a correct protocol (a deliberately dropped invalidation leaves
	// a stale copy whose "hit" would overclaim locality).
	scoped, _ := mem.(memsys.ScopedSystem)
	classify := scoped != nil && p.ShardCount() > 0 && p.FaultInjection == ""
	for i := 0; i < p.Procs; i++ {
		e := &Env{m: m, p: m.Eng.Proc(i), st: &m.procs[i],
			sharded: p.ShardCount() > 0, shard: p.ShardOfProc(i)}
		if classify {
			id := i
			e.loadProbe = func() bool {
				return scoped.ScopeOf(id, e.probeAddr, shm.WordSize, e.p.Clock(), memsys.AccessLoad)
			}
			e.storeProbe = func() bool {
				return scoped.ScopeOf(id, e.probeAddr, shm.WordSize, e.p.Clock(), memsys.AccessStore)
			}
			e.swapProbe = func() bool {
				return scoped.ScopeOf(id, e.probeAddr, shm.WordSize, e.p.Clock(), memsys.AccessSwap)
			}
		}
		m.envs = append(m.envs, e)
	}
	return m, nil
}

// MustNew is New panicking on error.
func MustNew(kind memsys.Kind, p memsys.Params) *Machine {
	m, err := New(kind, p)
	if err != nil {
		panic(err)
	}
	return m
}

// NumProcs returns the processor count.
func (m *Machine) NumProcs() int { return m.Params.Procs }

// Alloc reserves size bytes of simulated shared memory.
func (m *Machine) Alloc(size int) memsys.Addr { return m.Heap.Alloc(size) }

// EnableTrace attaches an event recorder keeping the last cap events; it
// returns the recorder for inspection after the run.
func (m *Machine) EnableTrace(cap int) *trace.Recorder {
	m.rec = trace.New(cap)
	return m.rec
}

// Trace returns the attached recorder (nil unless EnableTrace was called).
func (m *Machine) Trace() *trace.Recorder { return m.rec }

// EnableCheck attaches a runtime memory-consistency conformance checker that
// validates every globally visible event against the memory model (see
// internal/check); it returns the checker for interrogation after the run.
// Call it before initializing shared memory so setup Pokes reach the
// checker's shadow.
func (m *Machine) EnableCheck() *check.Checker {
	m.chk = check.New(m.Mem.Name(), m.Params)
	if a, ok := m.Mem.(check.Auditable); ok {
		m.chk.SetAuditor(a)
	}
	return m.chk
}

// Checker returns the attached conformance checker (nil unless EnableCheck
// was called).
func (m *Machine) Checker() *check.Checker { return m.chk }

// NewSyncObjID issues the next synchronization-object id; the psync
// primitives call it at construction so trace and checker can attribute
// lock/barrier/flag events.
func (m *Machine) NewSyncObjID() int32 {
	m.syncIDs++
	return m.syncIDs
}

// PeekU64 reads a shared word without simulating an access (setup,
// verification, and debugging only).
func (m *Machine) PeekU64(addr memsys.Addr) uint64 {
	return m.values.Load(memsys.WordIndex(addr))
}

// PokeU64 writes a shared word without simulating an access. Use only for
// pre-run initialization (the initial data placement is free, as if loaded
// before timing starts) and never from application bodies.
func (m *Machine) PokeU64(addr memsys.Addr, v uint64) {
	*m.values.At(memsys.WordIndex(addr)) = v
	m.chk.Poked(addr, v)
}

// PeekF64 reads a shared float64 without simulation.
func (m *Machine) PeekF64(addr memsys.Addr) float64 {
	return math.Float64frombits(m.PeekU64(addr))
}

// PokeF64 writes a shared float64 without simulation.
func (m *Machine) PokeF64(addr memsys.Addr, v float64) {
	m.PokeU64(addr, math.Float64bits(v))
}

// Run executes body on every processor and returns the run's result. A
// machine runs exactly once; build a fresh machine per experiment.
func (m *Machine) Run(app string, body func(e *Env)) *stats.Result {
	if m.ran {
		panic("machine: Run called twice; build a fresh Machine per run")
	}
	m.ran = true
	if m.Params.ShardCount() > 0 && (m.rec != nil || m.chk != nil) {
		m.stage = make([]stageShard, m.Params.ShardCount())
		m.Eng.SetQuiesce(m.flushStaged)
	}
	exec := m.Eng.Run(func(p *sim.Proc) {
		body(m.envs[p.ID()])
	})
	m.drainStaged()
	m.chk.Finish()
	if metrics.Enabled() {
		m.publishMetrics(exec)
	}
	res := &stats.Result{
		App:      app,
		System:   m.Mem.Name(),
		ExecTime: exec,
		Procs:    append([]stats.Proc(nil), m.procs...),
		Counters: *m.Mem.Counters(),
	}
	return res
}

// Metrics returns a frozen snapshot of the machine's metrics registry.
// During a run it carries the live per-event metrics (run-queue depth,
// store-buffer occupancy, mesh hops); after Run it also carries the
// harvested totals (sim.*, proto.*, mesh.*, directory.*, cache.*,
// machine.*). Empty unless metrics.Enable was on when the machine was
// built and ran.
func (m *Machine) Metrics() metrics.Snapshot { return m.met.Snapshot() }

// publishMetrics harvests every component's run totals into the machine's
// registry and folds the registry into the process-global default, from
// which paperbench's -bench-json record takes its metrics section. Only
// host-visible accounting happens here: virtual time is never read.
func (m *Machine) publishMetrics(exec Time) {
	r := m.met
	m.Eng.PublishMetrics(r)
	m.Net.PublishMetrics(r)
	if pub, ok := m.Mem.(metrics.Publisher); ok {
		pub.PublishMetrics(r)
	}
	c := m.Mem.Counters()
	r.Counter("proto.reads").Add(c.Reads)
	r.Counter("proto.writes").Add(c.Writes)
	r.Counter("proto.read_misses").Add(c.ReadMisses)
	r.Counter("proto.write_misses").Add(c.WriteMisses)
	r.Counter("proto.cold_misses").Add(c.ColdMisses)
	r.Counter("proto.msgs").Add(c.Messages)
	r.Counter("proto.data_msgs").Add(c.DataMsgs)
	r.Counter("proto.bytes").Add(c.Bytes)
	r.Counter("proto.invalidations").Add(c.Invalidations)
	r.Counter("proto.updates").Add(c.Updates)
	r.Counter("proto.useless_updates").Add(c.UselessUpdates)
	r.Counter("proto.self_invalidations").Add(c.SelfInvalidations)
	r.Counter("proto.prefetches").Add(c.Prefetches)
	r.Counter("proto.pointer_evictions").Add(c.PointerEvictions)
	r.Counter("machine.runs").Inc()
	r.Counter("machine.exec_cycles").Add(uint64(exec))
	// Scope-classification accounting (sharded runs only, so the serial
	// metric set is unchanged and the serial-vs-sharded benchdiff gate can
	// skip the mode-dependent keys by presence): how many machine traps
	// dispatched local- vs global-scope, per trap kind and in total. The
	// tallies are per-Env (goroutine-confined during the run) and summed
	// here, after the engine has quiesced.
	if m.Params.ShardCount() > 0 {
		var tl, tg uint64
		for k := 0; k < numTraps; k++ {
			var l, g uint64
			for _, e := range m.envs {
				l += e.nLocal[k]
				g += e.nGlobal[k]
			}
			tl += l
			tg += g
			r.Counter("machine.scope." + scopeTrapNames[k] + "_local").Add(l)
			r.Counter("machine.scope." + scopeTrapNames[k] + "_global").Add(g)
		}
		r.Counter("machine.scope.local_dispatches").Add(tl)
		r.Counter("machine.scope.global_dispatches").Add(tg)
	}
	metrics.Default.Merge(r)
}

// stagedEv is one observation event staged during a sharded run, keyed by
// the dispatch (clock, proc id) of the trap that produced it. The event's
// own At may exceed the dispatch clock (stall advances between dispatch and
// recording); the dispatch key — not At — is what orders events in the
// serial schedule.
type stagedEv struct {
	at   Time
	proc int32
	ev   trace.Event
}

// stageShard is one shard's staged-event FIFO. Only the shard's currently
// dispatched processor appends (shards dispatch one processor at a time),
// and only the engine coordinator drains (at quiesce points), so there is
// no concurrent access; the phase hand-offs are channel operations.
type stageShard struct {
	//zlint:confine shard only the shard's currently dispatched processor appends to its own shard's FIFO
	evs  []stagedEv
	head int
}

// flushStaged merges staged observation events strictly below the
// (clock, id) bound out of the per-shard buffers, in serial-schedule order,
// into the recorder and checker. The engine calls it (via SetQuiesce) at
// every serial-phase iteration, when all processors are parked and every
// future dispatch orders at or above the bound, so the merged prefix is
// final. Soundness of the merge: per-shard dispatch keys are nondecreasing
// (heap order within windows, and the boundary pops the global minimum),
// serial dispatch keys are globally nondecreasing (every wake-up lands
// strictly after the waker's dispatch clock — all machine wake-ups travel
// the mesh), and a key never repeats across shards (the proc id pins the
// shard) — so a stable ascending merge by (clock, proc), FIFO within a
// shard, reproduces exactly the order a serial run records events in.
func (m *Machine) flushStaged(clock sim.Time, id int) {
	for {
		best := -1
		for si := range m.stage {
			s := &m.stage[si]
			if s.head == len(s.evs) {
				continue
			}
			h := &s.evs[s.head]
			if h.at > clock || (h.at == clock && int(h.proc) >= id) {
				continue // at or above the bound: not final yet
			}
			if best >= 0 {
				b := &m.stage[best].evs[m.stage[best].head]
				if h.at > b.at || (h.at == b.at && h.proc > b.proc) {
					continue
				}
			}
			best = si
		}
		if best < 0 {
			return
		}
		s := &m.stage[best]
		ev := s.evs[s.head].ev
		s.head++
		if s.head == len(s.evs) {
			s.evs, s.head = s.evs[:0], 0
		}
		m.rec.Record(ev)
		m.chk.Observe(ev)
	}
}

// drainStaged flushes every remaining staged event after the run finishes
// (all dispatches are final then), before the checker's Finish audit.
func (m *Machine) drainStaged() {
	if m.stage == nil {
		return
	}
	m.flushStaged(^sim.Time(0), int(^uint(0)>>1))
}

// Trap kinds of the machine.scope.* per-trap dispatch breakdown.
const (
	trapLoad = iota
	trapStore
	trapSwap
	trapCompute
	numTraps
)

// scopeTrapNames are the metric name components of the per-trap breakdown,
// indexed by the trap constants above.
var scopeTrapNames = [numTraps]string{"load", "store", "swap", "compute"} //zlint:ignore globalmut immutable name table, never written after package init

// Env is the per-processor view of the machine: the trap interface through
// which application code computes, accesses shared memory, and (via
// internal/psync) synchronizes.
type Env struct {
	m  *Machine
	p  *sim.Proc
	st *stats.Proc

	// Scoped dispatch (DESIGN §15). The probe closures are built once at
	// construction and parameterized through probeAddr (the hot path must
	// not allocate); they are nil on serial machines, under fault
	// injection, and for memory systems without a scope probe — every trap
	// then dispatches global-scope exactly as before. probeAddr is written
	// by this Env's processor before it traps and read by the kernel's
	// dispatch points; the trap's channel hand-off orders the two.
	loadProbe  func() bool
	storeProbe func() bool
	swapProbe  func() bool
	//zlint:confine shard written by this Env's own processor immediately before it traps
	probeAddr memsys.Addr
	sharded   bool
	shard     int
	// Per-trap dispatch tallies (written only by this Env's processor,
	// summed into machine.scope.* after the run).
	//
	//zlint:confine shard dispatch tallies are bumped only by this Env's own processor
	nLocal [numTraps]uint64
	//zlint:confine shard dispatch tallies are bumped only by this Env's own processor
	nGlobal [numTraps]uint64
}

// dispatch issues one machine trap: scope-classified through the kernel's
// dispatch-time probe when one is installed, plain global-scope Sync
// otherwise.
func (e *Env) dispatch(kind int, probe func() bool, addr memsys.Addr) {
	if probe == nil {
		e.p.Sync()
		if e.sharded {
			e.nGlobal[kind]++
		}
		return
	}
	e.probeAddr = addr
	if e.p.SyncScoped(probe) {
		e.nLocal[kind]++
	} else {
		e.nGlobal[kind]++
	}
}

// ID returns the processor (execution stream) number.
func (e *Env) ID() int { return e.p.ID() }

// NodeID returns the NUMA node this stream's hardware lives on (equal to
// ID when HWThreads is 1).
func (e *Env) NodeID() int { return e.m.Params.Node(e.p.ID()) }

// NumProcs returns the machine's processor count.
func (e *Env) NumProcs() int { return e.m.Params.Procs }

// Machine returns the owning machine.
func (e *Env) Machine() *Machine { return e.m }

// Clock returns the processor's virtual time.
func (e *Env) Clock() Time { return e.p.Clock() }

// Compute charges c cycles of local computation (the application's cost
// model; this substitutes for SPASM's instruction cycle counting). With
// hardware multithreading the node's core is a shared resource: the thread
// first waits for the core (accounted as CoreWait), then occupies it for c
// cycles; memory stalls never hold the core, which is what lets a sibling
// thread's computation hide them.
func (e *Env) Compute(c Time) {
	if e.m.Params.HWThreads > 1 {
		// The core reservation touches only coreFree[node], and a node's
		// threads all live on one shard (ShardOfNode bands are contiguous),
		// so the trap is unconditionally node-private: SyncLocal, not Sync.
		// On a serial engine SyncLocal is exactly Sync.
		e.p.SyncLocal()
		if e.sharded {
			e.nLocal[trapCompute]++
		}
		node := e.m.Params.Node(e.ID())
		if f := e.m.coreFree[node]; f > e.p.Clock() {
			e.st.CoreWait += f - e.p.Clock()
			e.p.AdvanceTo(f)
		}
		e.m.coreFree[node] = e.p.Clock() + c
	}
	e.p.Advance(c)
	e.st.Compute += c
}

// LoadU64 performs a simulated shared read of the 8-byte word at addr.
func (e *Env) LoadU64(addr memsys.Addr) uint64 {
	e.dispatch(trapLoad, e.loadProbe, addr)
	at := e.p.Clock()
	stall := e.m.Mem.Read(e.ID(), addr, shm.WordSize, at)
	e.st.ReadStall += stall
	e.p.Advance(stall)
	v := e.m.values.Load(memsys.WordIndex(addr))
	e.event(trace.Event{At: at, Proc: e.ID(), Kind: trace.Read, Addr: addr, Stall: stall, Value: v})
	return v
}

// StoreU64 performs a simulated shared write of the 8-byte word at addr.
func (e *Env) StoreU64(addr memsys.Addr, v uint64) {
	e.dispatch(trapStore, e.storeProbe, addr)
	at := e.p.Clock()
	stall := e.m.Mem.Write(e.ID(), addr, shm.WordSize, at)
	e.st.WriteStall += stall
	e.p.Advance(stall)
	*e.m.values.At(memsys.WordIndex(addr)) = v
	e.event(trace.Event{At: at, Proc: e.ID(), Kind: trace.Write, Addr: addr, Stall: stall, Value: v})
}

// AtomicSwapU64 models an atomic exchange (test-and-set class hardware
// primitive): a read and a write of the word at addr performed indivisibly
// at the same virtual instant. The read's wait is accounted as read stall
// and the write's as write stall, like the two halves of a locked bus
// transaction.
func (e *Env) AtomicSwapU64(addr memsys.Addr, v uint64) uint64 {
	e.dispatch(trapSwap, e.swapProbe, addr)
	at := e.p.Clock()
	rstall := e.m.Mem.Read(e.ID(), addr, shm.WordSize, at)
	e.st.ReadStall += rstall
	e.p.Advance(rstall)
	wstall := e.m.Mem.Write(e.ID(), addr, shm.WordSize, e.p.Clock())
	e.st.WriteStall += wstall
	e.p.Advance(wstall)
	w := e.m.values.At(memsys.WordIndex(addr))
	old := *w
	*w = v
	e.event(trace.Event{At: at, Proc: e.ID(), Kind: trace.Read, Addr: addr, Stall: rstall, Value: old})
	e.event(trace.Event{At: at, Proc: e.ID(), Kind: trace.Write, Addr: addr, Stall: wstall, Value: v})
	return old
}

// event offers an event to the trace recorder and the conformance checker
// (both nil-safe). On a sharded run with observers attached the event is
// staged in the shard's buffer instead — the trap may be running inside a
// local window, concurrently with other shards — keyed by the issuing
// processor's dispatch (clock, id); flushStaged replays the merged stream
// to the recorder and checker in exactly the serial recording order.
func (e *Env) event(ev trace.Event) {
	if e.m.stage != nil {
		s := &e.m.stage[e.shard]
		s.evs = append(s.evs, stagedEv{at: e.p.DispatchedAt(), proc: int32(e.ID()), ev: ev})
		return
	}
	e.m.rec.Record(ev)
	e.m.chk.Observe(ev)
}

// LoadF64 reads a shared float64.
func (e *Env) LoadF64(addr memsys.Addr) float64 {
	return math.Float64frombits(e.LoadU64(addr))
}

// StoreF64 writes a shared float64.
func (e *Env) StoreF64(addr memsys.Addr, v float64) {
	e.StoreU64(addr, math.Float64bits(v))
}

// The methods below are the synchronization-building toolkit used by
// internal/psync; applications normally use psync's Lock/Barrier/Flag
// rather than calling these directly.

// SyncPoint acquires the global-time token: after it returns, the processor
// holds the smallest virtual clock and may mutate global simulation state.
func (e *Env) SyncPoint() { e.p.Sync() }

// ReleasePoint applies release semantics: the memory system drains its
// write buffers, and the wait is accounted as buffer-flush overhead.
func (e *Env) ReleasePoint() {
	e.p.Sync()
	at := e.p.Clock()
	stall := e.m.Mem.Release(e.ID(), at)
	e.st.BufferFlush += stall
	e.p.Advance(stall)
	e.event(trace.Event{At: at, Proc: e.ID(), Kind: trace.Release, Stall: stall,
		Value: uint64(e.ReleaseWatermark())})
}

// ReleaseWatermark returns the time by which this processor's issued
// writes are globally performed. For memory systems that decouple data
// flow from synchronization (memsys.TokenSystem, the paper's §6 proposal)
// the synchronization primitives delay the *consumer's* grant to this
// watermark instead of stalling the producer at the release; for every
// other system it is simply the current clock.
func (e *Env) ReleaseWatermark() Time {
	if ts, ok := e.m.Mem.(memsys.TokenSystem); ok {
		return ts.ReleaseWatermark(e.ID(), e.p.Clock())
	}
	return e.p.Clock()
}

// AcquirePoint applies acquire semantics at a synchronization grant.
func (e *Env) AcquirePoint() {
	at := e.p.Clock()
	stall := e.m.Mem.Acquire(e.ID(), at)
	e.st.ReadStall += stall
	e.p.Advance(stall)
	e.event(trace.Event{At: at, Proc: e.ID(), Kind: trace.Acquire, Stall: stall})
}

// RecordSync records a synchronization-object event (lock grant/release,
// barrier arrival/departure, flag set/wait) for tracing and conformance
// checking. The psync primitives call it; obj ids come from
// Machine.NewSyncObjID and value is kind-dependent (see trace.Event).
func (e *Env) RecordSync(kind trace.Kind, obj int32, value uint64) {
	e.event(trace.Event{At: e.p.Clock(), Proc: e.ID(), Kind: kind, Obj: obj, Value: value})
}

// AdvanceTo moves the clock forward to t (no-op if already past).
func (e *Env) AdvanceTo(t Time) { e.p.AdvanceTo(t) }

// AddSyncWait accounts d cycles of process-coordination wait (inherent cost,
// not an overhead in the paper's taxonomy).
func (e *Env) AddSyncWait(d Time) { e.st.SyncWait += d }

// Block parks the processor until another processor calls Unblock on it.
func (e *Env) Block(reason string) { e.p.Block(reason) }

// Unblock releases a parked processor with its clock advanced to t.
func (e *Env) Unblock(t Time) { e.p.Unblock(t) }

// SendCtrl models a synchronization control message from this processor's
// node to node dst, returning its arrival time. Traffic shares the mesh
// with the memory system (contention is visible to both).
func (e *Env) SendCtrl(dst int, t Time) Time {
	return e.m.Net.Send(e.NodeID(), dst, e.m.Params.CtrlBytes, t)
}

// SendCtrlFrom models a control message between arbitrary nodes (used for
// home-mediated synchronization).
func (e *Env) SendCtrlFrom(src, dst int, t Time) Time {
	return e.m.Net.Send(src, dst, e.m.Params.CtrlBytes, t)
}

// Params returns the machine's parameters.
func (e *Env) Params() memsys.Params { return e.m.Params }
