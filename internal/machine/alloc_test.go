package machine

import (
	"testing"

	"zsim/internal/memsys"
)

// A shared-memory word access is the innermost operation of every simulated
// program: once the value table's pages and the line's protocol state exist,
// a load or store must not allocate. Single processor so no concurrent
// worker's allocations pollute the measurement.
func TestWordAccessZeroAlloc(t *testing.T) {
	for _, kind := range []memsys.Kind{memsys.KindPRAM, memsys.KindRCInv} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m := MustNew(kind, memsys.Default(1))
			a := m.Alloc(256)
			m.Run("alloc-pin", func(e *Env) {
				for o := memsys.Addr(0); o < 256; o += 8 {
					e.StoreU64(a+o, uint64(o))
					_ = e.LoadU64(a + o)
				}
				e.ReleasePoint()
				if n := testing.AllocsPerRun(100, func() {
					e.StoreU64(a, 7)
					_ = e.LoadU64(a + 8)
				}); n != 0 {
					t.Errorf("%s: steady-state word access allocates %v times per run", kind, n)
				}
			})
		})
	}
}
