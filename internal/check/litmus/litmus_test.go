package litmus

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/psync"
	"zsim/internal/shm"
)

// TestSuiteConformsOnAllSystems runs every litmus test on every memory
// system: outcomes must be within the model's expectation table and the
// conformance checker must stay silent.
func TestSuiteConformsOnAllSystems(t *testing.T) {
	rs, err := RunSuite(memsys.Kinds(), memsys.Default(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !r.Allowed {
			t.Errorf("%s/%s: outcome %q outside the %s expectation table", r.Test, r.Kind, r.Outcome, ClassOf(r.Kind))
		}
		for _, v := range r.Violations {
			t.Errorf("%s/%s: checker violation: %s", r.Test, r.Kind, v)
		}
		if r.Events == 0 {
			t.Errorf("%s/%s: checker observed no events", r.Test, r.Kind)
		}
	}
}

// TestGoldenOutcomes pins the exact deterministic outcome of every (test,
// system) pair. Regenerate with ZSIM_UPDATE_LITMUS=1 go test ./internal/check/litmus
// after an intentional timing or protocol change, and review the diff.
func TestGoldenOutcomes(t *testing.T) {
	rs, err := RunSuite(memsys.Kinds(), memsys.Default(4))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%s %s %s\n", r.Test, r.Kind, r.Outcome)
	}
	got := b.String()
	path := filepath.Join("testdata", "golden_outcomes.txt")
	if os.Getenv("ZSIM_UPDATE_LITMUS") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with ZSIM_UPDATE_LITMUS=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("litmus outcomes diverged from golden file %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestRandomProgramsConform runs seeded random programs across all systems
// with the checker as oracle.
func TestRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rt := RandomTest(seed)
		for _, kind := range memsys.Kinds() {
			r, err := RunTest(rt, kind, memsys.Default(4))
			if err != nil {
				t.Fatal(err)
			}
			if !r.Allowed {
				t.Errorf("%s/%s: locked counter outcome %q (expected %v)", rt.Name, kind, r.Outcome, rt.Allowed[SC])
			}
			for _, v := range r.Violations {
				t.Errorf("%s/%s: %s", rt.Name, kind, v)
			}
		}
	}
}

// TestCheckerDetectsSeededStaleRead proves the checker end-to-end: with the
// drop-update fault seeded into an update protocol, a sharer keeps reading a
// copy the fan-out skipped, and the checker must flag it; the same run
// without the fault must be clean. drop-inval gets the same treatment on the
// invalidate protocol.
func TestCheckerDetectsSeededStaleRead(t *testing.T) {
	// Both processors cache x, then P0 rewrites it (fanning out an update or
	// invalidations at the release), then P1 re-reads its copy.
	run := func(kind memsys.Kind, fault string) *machine.Machine {
		p := memsys.Default(2)
		p.FaultInjection = fault
		m := machine.MustNew(kind, p)
		m.EnableCheck()
		x := shm.NewU64(m.Heap, 1)
		bar := psync.NewBarrier(m)
		m.Run("stale-probe", func(e *machine.Env) {
			x.Get(e, 0) // both cache the line
			bar.Wait(e)
			if e.ID() == 0 {
				x.Set(e, 0, 7)
			}
			bar.Wait(e) // arrival is a release: the write txn happens here at the latest
			if e.ID() == 1 {
				for i := 0; i < 4; i++ {
					x.Get(e, 0)
					e.Compute(10)
				}
			}
		})
		return m
	}
	for _, tc := range []struct {
		kind  memsys.Kind
		fault string
	}{
		{memsys.KindRCUpd, "drop-update"},
		{memsys.KindRCComp, "drop-update"},
		{memsys.KindRCAdapt, "drop-update"},
		{memsys.KindRCInv, "drop-inval"},
	} {
		clean := run(tc.kind, "")
		if err := clean.Checker().Err(); err != nil {
			t.Errorf("%s without fault: unexpected violation: %v", tc.kind, err)
		}
		faulty := run(tc.kind, tc.fault)
		if faulty.Checker().Ok() {
			t.Errorf("%s with %s: checker missed the seeded defect", tc.kind, tc.fault)
		}
	}
}
