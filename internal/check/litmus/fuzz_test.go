package litmus

import (
	"testing"

	"zsim/internal/memsys"
)

// FuzzLitmus treats the fuzz input as a program-generator seed: each input
// becomes a random litmus program run on every memory system with the
// conformance checker as the oracle. Interesting seeds that once exposed
// generator or protocol issues live in testdata/fuzz/FuzzLitmus.
func FuzzLitmus(f *testing.F) {
	for _, s := range []int64{1, 7, 42, 1995} {
		f.Add(s)
	}
	base := memsys.Default(4)
	f.Fuzz(func(t *testing.T, seed int64) {
		rt := RandomTest(seed)
		for _, kind := range memsys.Kinds() {
			r, err := RunTest(rt, kind, base)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Allowed {
				t.Errorf("%s/%s: locked counter outcome %q (expected %v)", rt.Name, kind, r.Outcome, rt.Allowed[SC])
			}
			for _, v := range r.Violations {
				t.Errorf("%s/%s: checker violation: %s", rt.Name, kind, v)
			}
		}
	})
}
