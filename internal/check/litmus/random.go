package litmus

import (
	"fmt"
	"math/rand"

	"zsim/internal/machine"
)

// randOp is one step of a generated program.
type randOp struct {
	kind int // 0 write, 1 read, 2 compute, 3 locked increment, 4 spin-locked increment
	a    int // variable index / compute cycles
	v    uint64
}

// RandomTest builds a seeded random litmus program: per-processor streams of
// shared reads and writes over a small variable set, local computation, and
// lock-protected counter increments, with aligned barrier phases between
// randomly sized op blocks. The op streams are pre-generated so the body is
// deterministic; the conformance checker is the oracle, and the
// lock-protected counter total is additionally pinned in the outcome.
//
// Variables 0 and 1 are reserved for the two counters (queue-lock-protected
// and spin-lock-protected — they must be distinct, since the two locks give
// no mutual exclusion against each other); the racy traffic uses the rest.
func RandomTest(seed int64) Test {
	rng := rand.New(rand.NewSource(seed))
	procs := 2 + rng.Intn(3)  // 2..4
	vars := 4 + rng.Intn(5)   // 4..8, indexes 0 and 1 reserved
	phases := 1 + rng.Intn(3) // barrier-fenced blocks
	progs := make([][][]randOp, procs)
	var lockIncs, spinIncs uint64
	for p := 0; p < procs; p++ {
		progs[p] = make([][]randOp, phases)
		for ph := 0; ph < phases; ph++ {
			steps := 5 + rng.Intn(25)
			ops := make([]randOp, 0, steps)
			for s := 0; s < steps; s++ {
				switch k := rng.Intn(8); k {
				case 0, 1, 2: // read
					ops = append(ops, randOp{kind: 1, a: 2 + rng.Intn(vars-2)})
				case 3, 4: // write
					ops = append(ops, randOp{kind: 0, a: 2 + rng.Intn(vars-2), v: uint64(1 + rng.Intn(1000))})
				case 5: // compute
					ops = append(ops, randOp{kind: 2, a: 1 + rng.Intn(40)})
				case 6: // locked increment
					ops = append(ops, randOp{kind: 3})
					lockIncs++
				case 7: // spin-locked increment
					ops = append(ops, randOp{kind: 4})
					spinIncs++
				}
			}
			progs[p][ph] = ops
		}
	}
	return Test{
		Name: fmt.Sprintf("rand-%d", seed), Procs: procs, NVars: vars,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			for ph := 0; ph < phases; ph++ {
				for _, op := range progs[e.ID()][ph] {
					switch op.kind {
					case 0:
						h.V.Set(e, op.a, op.v)
					case 1:
						h.V.Get(e, op.a)
					case 2:
						e.Compute(machine.Time(op.a))
					case 3:
						h.Lock.Acquire(e)
						h.V.Set(e, 0, h.V.Get(e, 0)+1)
						h.Lock.Release(e)
					case 4:
						h.Spin.Acquire(e)
						h.V.Set(e, 1, h.V.Get(e, 1)+1)
						h.Spin.Release(e)
					}
				}
				h.Bar.Wait(e)
			}
		},
		Final: func(h *Harness) string {
			return fmt.Sprintf("%d/%d", h.M.PeekU64(h.V.At(0)), h.M.PeekU64(h.V.At(1)))
		},
		Allowed: map[Class][]string{
			SC: {fmt.Sprintf("%d/%d", lockIncs, spinIncs)},
			RC: {fmt.Sprintf("%d/%d", lockIncs, spinIncs)},
			Z:  {fmt.Sprintf("%d/%d", lockIncs, spinIncs)},
		},
	}
}
