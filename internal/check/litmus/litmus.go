// Package litmus is a litmus-test harness for the simulated memory systems:
// small hand-written concurrent programs (message passing, store buffering,
// coherence ping-pong, lock handoff, barrier reuse) executed on every memory
// system with the conformance checker attached, and their observed outcomes
// judged against expected-outcome tables per consistency model class.
//
// The simulator executes shared accesses in a deterministic global schedule,
// so each (test, system) pair produces exactly one outcome. The tables
// therefore serve two purposes: the run fails if the outcome is outside what
// the system's consistency contract allows (a model violation), and the
// golden tests additionally pin the exact deterministic outcome (a
// regression fence).
package litmus

import (
	"fmt"
	"strings"

	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/psync"
	"zsim/internal/runner"
	"zsim/internal/shm"
)

// Class groups the memory systems by consistency contract.
type Class string

const (
	// SC is sequential consistency: scinv (every write stalls to global
	// completion) and pram (unit-cost memory, trivially SC).
	SC Class = "sc"
	// RC is release consistency: rcinv, rcupd, rccomp, rcadapt, and the §6
	// rcsync proposal. Data races may observe buffered writes out of order;
	// properly synchronized accesses behave like SC.
	RC Class = "rc"
	// Z is the z-machine's model: the weakest model commensurate with the
	// data flow of the program (writes propagate eagerly; reads wait only
	// for inherent communication).
	Z Class = "z"
)

// ClassOf returns the consistency class of a memory system.
func ClassOf(kind memsys.Kind) Class {
	switch kind {
	case memsys.KindSCInv, memsys.KindPRAM:
		return SC
	case memsys.KindZMachine:
		return Z
	}
	return RC
}

// Regs are one processor's observation registers.
type Regs []uint64

// Harness hands a litmus program its machine, shared variables, and one of
// each synchronization primitive (allocated deterministically so object ids
// and heap layout are identical across systems).
type Harness struct {
	M    *machine.Machine
	V    shm.U64 // shared variables x0..x(NVars-1), zero-initialized
	Lock *psync.Lock
	Spin *psync.SpinLock
	Bar  *psync.Barrier
	Tree *psync.TreeBarrier
	Flag *psync.Flag
	Q    *psync.Queue

	regs []Regs
}

// Test is one litmus program plus its expected-outcome tables.
type Test struct {
	Name  string
	Procs int // processors the program runs on
	NRegs int // observation registers per processor
	NVars int // shared variables

	// Body runs on every processor; r is the processor's register file.
	Body func(h *Harness, e *machine.Env, r Regs)

	// Final, when non-nil, is evaluated after the run (Peek, no simulation)
	// and its result appended to the outcome.
	Final func(h *Harness) string

	// Allowed lists the outcomes each class's contract permits; an empty or
	// missing list means any outcome not in Forbidden passes.
	Allowed map[Class][]string
	// Forbidden lists outcomes that are model violations for the class.
	Forbidden map[Class][]string
}

// Result is the judged outcome of one (test, system) execution.
type Result struct {
	Test       string
	Kind       memsys.Kind
	Outcome    string
	Allowed    bool     // outcome is within the class's expected-outcome table
	Violations []string // conformance-checker findings (nil when clean)
	Events     uint64   // events the checker validated
}

// Ok reports whether the execution was conformant: expected outcome and no
// checker violations.
func (r Result) Ok() bool { return r.Allowed && len(r.Violations) == 0 }

// RunTest executes one litmus test on one memory system with the conformance
// checker attached. base supplies the architectural parameters; it is
// resized to the test's processor count.
func RunTest(t Test, kind memsys.Kind, base memsys.Params) (Result, error) {
	p := base.WithProcs(t.Procs)
	m, err := machine.New(kind, p)
	if err != nil {
		return Result{}, err
	}
	chk := m.EnableCheck()
	nv := t.NVars
	if nv <= 0 {
		nv = 1
	}
	h := &Harness{
		M:    m,
		V:    shm.NewU64(m.Heap, nv),
		Lock: psync.NewLock(m),
		Spin: psync.NewSpinLock(m, 0),
		Bar:  psync.NewBarrier(m),
		Tree: psync.NewTreeBarrier(m),
		Flag: psync.NewFlag(m),
		Q:    psync.NewQueue(m, 64),
		regs: make([]Regs, t.Procs),
	}
	for i := range h.regs {
		h.regs[i] = make(Regs, t.NRegs)
	}
	m.Run("litmus/"+t.Name, func(e *machine.Env) {
		t.Body(h, e, h.regs[e.ID()])
	})
	out := t.outcome(h)
	events, _, _, _ := chk.Stats()
	return Result{
		Test:       t.Name,
		Kind:       kind,
		Outcome:    out,
		Allowed:    t.judge(ClassOf(kind), out),
		Violations: chk.Violations(),
		Events:     events,
	}, nil
}

// outcome renders the register files (and Final) as a stable string: all
// registers in processor order, comma-separated.
func (t Test) outcome(h *Harness) string {
	var parts []string
	for _, r := range h.regs {
		for _, v := range r {
			parts = append(parts, fmt.Sprint(v))
		}
	}
	if t.Final != nil {
		parts = append(parts, t.Final(h))
	}
	return strings.Join(parts, ",")
}

func (t Test) judge(c Class, out string) bool {
	for _, f := range t.Forbidden[c] {
		if f == out {
			return false
		}
	}
	allowed := t.Allowed[c]
	if len(allowed) == 0 {
		return true
	}
	for _, a := range allowed {
		if a == out {
			return true
		}
	}
	return false
}

// RunSuite runs every litmus test on every given memory system. The
// (test, system) executions are independent — each builds its own machine —
// so they run on the runner's worker pool; results are collected in the
// serial order (tests outer, systems inner) regardless of the worker count.
func RunSuite(kinds []memsys.Kind, base memsys.Params) ([]Result, error) {
	tests := Tests()
	return runner.Grid(len(tests)*len(kinds), func(i int) (Result, error) {
		t, kind := tests[i/len(kinds)], kinds[i%len(kinds)]
		r, err := RunTest(t, kind, base)
		if err != nil {
			return Result{}, fmt.Errorf("litmus %s on %s: %w", t.Name, kind, err)
		}
		return r, nil
	})
}

// Report renders results as a test × system table of outcomes, marking
// model violations with '!' and checker violations with 'X'.
func Report(rs []Result) string {
	kinds := []memsys.Kind{}
	seen := map[memsys.Kind]bool{}
	byTest := map[string]map[memsys.Kind]Result{}
	order := []string{}
	for _, r := range rs {
		if !seen[r.Kind] {
			seen[r.Kind] = true
			kinds = append(kinds, r.Kind)
		}
		if byTest[r.Test] == nil {
			byTest[r.Test] = map[memsys.Kind]Result{}
			order = append(order, r.Test)
		}
		byTest[r.Test][r.Kind] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "litmus")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %-12s", k)
	}
	b.WriteByte('\n')
	bad := 0
	for _, name := range order {
		fmt.Fprintf(&b, "%-16s", name)
		for _, k := range kinds {
			r := byTest[name][k]
			cell := r.Outcome
			if !r.Allowed {
				cell += "!"
			}
			if len(r.Violations) > 0 {
				cell += "X"
			}
			if !r.Ok() {
				bad++
			}
			fmt.Fprintf(&b, " %-12s", cell)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d executions, %d non-conformant\n", len(rs), bad)
	for _, r := range rs {
		if !r.Allowed {
			fmt.Fprintf(&b, "MODEL %s/%s: outcome %q outside the %s expectation table\n", r.Test, r.Kind, r.Outcome, ClassOf(r.Kind))
		}
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "CHECK %s/%s: %s\n", r.Test, r.Kind, v)
		}
	}
	return b.String()
}

// Ok reports whether every result is conformant.
func Ok(rs []Result) bool {
	for _, r := range rs {
		if !r.Ok() {
			return false
		}
	}
	return true
}
