package litmus

import (
	"fmt"

	"zsim/internal/machine"
)

// Tests returns the litmus suite in a fixed order. Outcome strings list
// every processor's registers in processor order (unused registers read 0),
// followed by the Final observation when the test has one.
//
// Because the simulator serializes shared accesses into one deterministic
// global schedule, observed values are always those of some interleaving —
// the "relaxed" outcomes of the RC tables cannot actually appear as values.
// The tables still document the model contract (SC tables are strict
// subsets), and the real teeth are the conformance checker riding along plus
// the golden outcome pins in the package tests.
func Tests() []Test {
	return []Test{
		mpFlag(), mpRaw(), sb(), lb(), iriw(), corr(), coww(),
		lockCount(), spinCount(), lockHandoff(), barMP(), barReuse(),
		treeReuse(), flagReuse(), queueFIFO(), swapMutex(),
	}
}

// Names returns the suite's test names in order.
func Names() []string {
	ts := Tests()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// mp-flag: classic message passing through a producer-consumer flag. The
// consumer must observe the datum after the flag; every model guarantees it
// (the flag's set is a release, the wait an acquire).
func mpFlag() Test {
	return Test{
		Name: "mp-flag", Procs: 2, NRegs: 1, NVars: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			if e.ID() == 0 {
				h.V.Set(e, 0, 1)
				h.Flag.Set(e)
			} else {
				h.Flag.Wait(e)
				r[0] = h.V.Get(e, 0)
			}
		},
		Allowed: map[Class][]string{
			SC: {"0,1"}, RC: {"0,1"}, Z: {"0,1"},
		},
	}
}

// mp-raw: message passing through raw shared variables, no synchronization.
// SC forbids observing the flag (x1) without the datum (x0); RC and the
// z-machine permit it for this racy program.
func mpRaw() Test {
	return Test{
		Name: "mp-raw", Procs: 2, NRegs: 2, NVars: 2,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			if e.ID() == 0 {
				h.V.Set(e, 0, 1)
				h.V.Set(e, 1, 1)
			} else {
				e.Compute(8)
				r[0] = h.V.Get(e, 1)
				r[1] = h.V.Get(e, 0)
			}
		},
		Allowed: map[Class][]string{
			SC: {"0,0,0,0", "0,0,0,1", "0,0,1,1"},
			RC: {"0,0,0,0", "0,0,0,1", "0,0,1,1", "0,0,1,0"},
			Z:  {"0,0,0,0", "0,0,0,1", "0,0,1,1", "0,0,1,0"},
		},
	}
}

// sb: store buffering (Dekker). SC forbids both processors reading 0; the
// store-buffered RC systems (and the z-machine's oracle) allow it.
func sb() Test {
	return Test{
		Name: "sb", Procs: 2, NRegs: 1, NVars: 2,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			id := e.ID()
			h.V.Set(e, id, 1)
			r[0] = h.V.Get(e, 1-id)
		},
		Allowed: map[Class][]string{
			SC: {"0,1", "1,0", "1,1"},
			RC: {"0,0", "0,1", "1,0", "1,1"},
			Z:  {"0,0", "0,1", "1,0", "1,1"},
		},
	}
}

// lb: load buffering. No system may produce 1,1 — values cannot appear out
// of thin air.
func lb() Test {
	return Test{
		Name: "lb", Procs: 2, NRegs: 1, NVars: 2,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			id := e.ID()
			r[0] = h.V.Get(e, 1-id)
			h.V.Set(e, id, 1)
		},
		Forbidden: map[Class][]string{
			SC: {"1,1"}, RC: {"1,1"}, Z: {"1,1"},
		},
	}
}

// iriw: independent reads of independent writes. SC requires the two
// readers to agree on the order of the two writes.
func iriw() Test {
	return Test{
		Name: "iriw", Procs: 4, NRegs: 2, NVars: 2,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			switch e.ID() {
			case 0:
				h.V.Set(e, 0, 1)
			case 1:
				h.V.Set(e, 1, 1)
			case 2:
				r[0] = h.V.Get(e, 0)
				r[1] = h.V.Get(e, 1)
			case 3:
				r[0] = h.V.Get(e, 1)
				r[1] = h.V.Get(e, 0)
			}
		},
		Forbidden: map[Class][]string{
			SC: {"0,0,0,0,1,0,1,0"},
		},
	}
}

// corr: coherent read-read. Two reads of the same location by one processor
// may never observe the location's writes out of order — cache coherence
// guarantees this even under the weakest model.
func corr() Test {
	return Test{
		Name: "corr", Procs: 2, NRegs: 2, NVars: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			if e.ID() == 0 {
				h.V.Set(e, 0, 1)
				e.Compute(6)
				h.V.Set(e, 0, 2)
			} else {
				r[0] = h.V.Get(e, 0)
				e.Compute(5)
				r[1] = h.V.Get(e, 0)
			}
		},
		Forbidden: map[Class][]string{
			SC: {"0,0,1,0", "0,0,2,0", "0,0,2,1"},
			RC: {"0,0,1,0", "0,0,2,0", "0,0,2,1"},
			Z:  {"0,0,1,0", "0,0,2,0", "0,0,2,1"},
		},
	}
}

// coww: write serialization. Concurrent writes to one location must
// serialize; the final value is one of the last writes in some order.
func coww() Test {
	return Test{
		Name: "coww", Procs: 2, NRegs: 0, NVars: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			if e.ID() == 0 {
				h.V.Set(e, 0, 1)
				e.Compute(10)
				h.V.Set(e, 0, 2)
			} else {
				h.V.Set(e, 0, 3)
			}
		},
		Final: func(h *Harness) string { return fmt.Sprint(h.M.PeekU64(h.V.At(0))) },
		Allowed: map[Class][]string{
			SC: {"2", "3"}, RC: {"2", "3"}, Z: {"2", "3"},
		},
	}
}

// lock-count: the classic mutual-exclusion counter through the hardware
// queue lock. Any model must produce exactly procs×iters increments.
func lockCount() Test {
	const iters = 8
	return Test{
		Name: "lock-count", Procs: 4, NVars: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			for i := 0; i < iters; i++ {
				h.Lock.Acquire(e)
				h.V.Set(e, 0, h.V.Get(e, 0)+1)
				h.Lock.Release(e)
			}
		},
		Final: func(h *Harness) string { return fmt.Sprint(h.M.PeekU64(h.V.At(0))) },
		Allowed: map[Class][]string{
			SC: {"32"}, RC: {"32"}, Z: {"32"},
		},
	}
}

// spin-count: the same counter through the software test-and-test-and-set
// spin lock, whose coherence traffic is the protocols' stress case.
func spinCount() Test {
	const iters = 4
	return Test{
		Name: "spin-count", Procs: 4, NVars: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			for i := 0; i < iters; i++ {
				h.Spin.Acquire(e)
				h.V.Set(e, 0, h.V.Get(e, 0)+1)
				h.Spin.Release(e)
			}
		},
		Final: func(h *Harness) string { return fmt.Sprint(h.M.PeekU64(h.V.At(0))) },
		Allowed: map[Class][]string{
			SC: {"16"}, RC: {"16"}, Z: {"16"},
		},
	}
}

// lock-handoff: message passing where both sides bracket the datum with the
// lock. Properly synchronized, so every model must deliver the datum.
func lockHandoff() Test {
	return Test{
		Name: "lock-handoff", Procs: 2, NRegs: 1, NVars: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			if e.ID() == 0 {
				h.Lock.Acquire(e)
				h.V.Set(e, 0, 1)
				h.Lock.Release(e)
			} else {
				for {
					h.Lock.Acquire(e)
					v := h.V.Get(e, 0)
					h.Lock.Release(e)
					if v == 1 {
						r[0] = v
						return
					}
					e.Compute(50)
				}
			}
		},
		Allowed: map[Class][]string{
			SC: {"0,1"}, RC: {"0,1"}, Z: {"0,1"},
		},
	}
}

// bar-mp: message passing through a barrier.
func barMP() Test {
	return Test{
		Name: "bar-mp", Procs: 2, NRegs: 1, NVars: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			if e.ID() == 0 {
				h.V.Set(e, 0, 1)
			}
			h.Bar.Wait(e)
			if e.ID() == 1 {
				r[0] = h.V.Get(e, 0)
			}
		},
		Allowed: map[Class][]string{
			SC: {"0,1"}, RC: {"0,1"}, Z: {"0,1"},
		},
	}
}

// bar-reuse: three epochs over one centralized barrier; each processor
// checks its neighbour's previous-epoch write. Catches epoch misalignment
// and premature release.
func barReuse() Test {
	return phasedBarrierTest("bar-reuse", func(h *Harness) func(e *machine.Env) {
		return func(e *machine.Env) { h.Bar.Wait(e) }
	})
}

// tree-reuse: the same three-epoch neighbour check over the combining-tree
// barrier.
func treeReuse() Test {
	return phasedBarrierTest("tree-reuse", func(h *Harness) func(e *machine.Env) {
		return func(e *machine.Env) { h.Tree.Wait(e) }
	})
}

func phasedBarrierTest(name string, wait func(h *Harness) func(e *machine.Env)) Test {
	const procs, epochs = 4, 3
	return Test{
		Name: name, Procs: procs, NRegs: 1, NVars: procs,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			w := wait(h)
			id := e.ID()
			ok := uint64(0)
			for k := uint64(1); k <= epochs; k++ {
				h.V.Set(e, id, k*10+uint64(id))
				w(e)
				if h.V.Get(e, (id+1)%procs) == k*10+uint64((id+1)%procs) {
					ok++
				}
				w(e)
			}
			r[0] = ok
		},
		Allowed: map[Class][]string{
			SC: {"3,3,3,3"}, RC: {"3,3,3,3"}, Z: {"3,3,3,3"},
		},
	}
}

// flag-reuse: the flag is reset between two message-passing phases (with
// barriers fencing the reset); both deliveries must be seen.
func flagReuse() Test {
	return Test{
		Name: "flag-reuse", Procs: 2, NRegs: 2, NVars: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			if e.ID() == 0 {
				h.V.Set(e, 0, 1)
				h.Flag.Set(e)
				h.Bar.Wait(e)
				h.Flag.Reset()
				h.Bar.Wait(e)
				h.V.Set(e, 0, 2)
				h.Flag.Set(e)
			} else {
				h.Flag.Wait(e)
				r[0] = h.V.Get(e, 0)
				h.Bar.Wait(e)
				h.Bar.Wait(e)
				h.Flag.Wait(e)
				r[1] = h.V.Get(e, 0)
			}
		},
		Allowed: map[Class][]string{
			SC: {"0,0,1,2"}, RC: {"0,0,1,2"}, Z: {"0,0,1,2"},
		},
	}
}

// queue-fifo: the lock-protected work queue must deliver items in order.
func queueFIFO() Test {
	const items = 8
	return Test{
		Name: "queue-fifo", Procs: 2, NRegs: 1,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			if e.ID() == 0 {
				for v := int64(1); v <= items; v++ {
					for !h.Q.Push(e, v) {
						e.Compute(20)
					}
				}
			} else {
				want := int64(1)
				ok := uint64(1)
				for n := 0; n < items; {
					v, got := h.Q.TryPop(e)
					if !got {
						e.Compute(20)
						continue
					}
					if v != want {
						ok = 0
					}
					want++
					n++
				}
				r[0] = ok
			}
		},
		Allowed: map[Class][]string{
			SC: {"0,1"}, RC: {"0,1"}, Z: {"0,1"},
		},
	}
}

// swap-mutex: mutual exclusion from the raw atomic-exchange primitive with
// explicit acquire/release points — the hardware path the SpinLock wraps.
func swapMutex() Test {
	const iters = 4
	return Test{
		Name: "swap-mutex", Procs: 2, NVars: 2,
		Body: func(h *Harness, e *machine.Env, r Regs) {
			for i := 0; i < iters; i++ {
				for e.AtomicSwapU64(h.V.At(0), 1) != 0 {
					e.Compute(16)
				}
				e.AcquirePoint()
				h.V.Set(e, 1, h.V.Get(e, 1)+1)
				e.ReleasePoint()
				if wm := e.ReleaseWatermark(); wm > e.Clock() {
					e.AdvanceTo(wm) // rcsync: writes must land before the unlock
				}
				e.StoreU64(h.V.At(0), 0)
			}
		},
		Final: func(h *Harness) string { return fmt.Sprint(h.M.PeekU64(h.V.At(1))) },
		Allowed: map[Class][]string{
			SC: {"8"}, RC: {"8"}, Z: {"8"},
		},
	}
}
