package check

import (
	"strings"
	"testing"

	"zsim/internal/memsys"
	"zsim/internal/trace"
)

func newChecker() *Checker { return New(memsys.KindRCInv, memsys.Default(4)) }

func wantViolation(t *testing.T, c *Checker, substr string) {
	t.Helper()
	if c.Ok() {
		t.Fatalf("expected a violation containing %q, got none", substr)
	}
	for _, v := range c.Violations() {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Fatalf("no violation contains %q; got %v", substr, c.Violations())
}

func TestNilCheckerIsSafe(t *testing.T) {
	var c *Checker
	c.Observe(trace.Event{Kind: trace.Read})
	c.Poked(0, 1)
	c.SetAuditor(nil)
	c.Finish()
	if !c.Ok() || c.Err() != nil || c.Violations() != nil || c.NumViolations() != 0 {
		t.Fatal("nil checker must report success")
	}
}

func TestShadowMemoryCatchesLostWrite(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.Write, Addr: 64, Value: 7})
	c.Observe(trace.Event{At: 2, Proc: 1, Kind: trace.Read, Addr: 64, Value: 7})
	if !c.Ok() {
		t.Fatalf("coherent read flagged: %v", c.Violations())
	}
	c.Observe(trace.Event{At: 3, Proc: 1, Kind: trace.Read, Addr: 64, Value: 5})
	wantViolation(t, c, "latest write is 7")
}

func TestShadowTreatsUntouchedAsZero(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.Read, Addr: 8, Value: 3})
	wantViolation(t, c, "latest write is 0")
}

func TestPokeSeedsShadow(t *testing.T) {
	c := newChecker()
	c.Poked(8, 3)
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.Read, Addr: 8, Value: 3})
	if !c.Ok() {
		t.Fatalf("poked value flagged: %v", c.Violations())
	}
}

func TestLockMutualExclusion(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.LockAcq, Obj: 1})
	c.Observe(trace.Event{At: 2, Proc: 1, Kind: trace.LockAcq, Obj: 1})
	wantViolation(t, c, "mutual exclusion")
}

func TestLockReleaseByNonHolder(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.LockAcq, Obj: 1})
	c.Observe(trace.Event{At: 2, Proc: 1, Kind: trace.LockRel, Obj: 1})
	wantViolation(t, c, "held by P0")
}

func TestLockHandoffRespectsWatermark(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.LockAcq, Obj: 1})
	c.Observe(trace.Event{At: 10, Proc: 0, Kind: trace.LockRel, Obj: 1, Value: 100})
	c.Observe(trace.Event{At: 50, Proc: 1, Kind: trace.LockAcq, Obj: 1})
	wantViolation(t, c, "watermark 100")

	c2 := newChecker()
	c2.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.LockAcq, Obj: 1})
	c2.Observe(trace.Event{At: 10, Proc: 0, Kind: trace.LockRel, Obj: 1, Value: 100})
	c2.Observe(trace.Event{At: 100, Proc: 1, Kind: trace.LockAcq, Obj: 1})
	if !c2.Ok() {
		t.Fatalf("legal handoff flagged: %v", c2.Violations())
	}
}

func TestEagerReleaseMustDrain(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 10, Proc: 0, Kind: trace.Release, Stall: 5, Value: 40})
	wantViolation(t, c, "writes outstanding")

	// rcsync decouples by design: the same event is legal there.
	lazy := New(memsys.KindRCSync, memsys.Default(4))
	lazy.Observe(trace.Event{At: 10, Proc: 0, Kind: trace.Release, Stall: 0, Value: 40})
	if !lazy.Ok() {
		t.Fatalf("rcsync lazy release flagged: %v", lazy.Violations())
	}
}

func TestBarrierPrematureRelease(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.BarArrive, Obj: 2, Value: 3})
	c.Observe(trace.Event{At: 2, Proc: 1, Kind: trace.BarArrive, Obj: 2, Value: 3})
	c.Observe(trace.Event{At: 3, Proc: 0, Kind: trace.BarDepart, Obj: 2, Value: 3})
	wantViolation(t, c, "only 2 arrivals")
}

func TestBarrierEpochAlignment(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.BarArrive, Obj: 2, Value: 2})
	c.Observe(trace.Event{At: 2, Proc: 0, Kind: trace.BarArrive, Obj: 2, Value: 2})
	wantViolation(t, c, "re-arrived")
}

func TestBarrierDepartBeforeLastArrival(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.BarArrive, Obj: 2, Value: 2})
	c.Observe(trace.Event{At: 9, Proc: 1, Kind: trace.BarArrive, Obj: 2, Value: 2})
	c.Observe(trace.Event{At: 5, Proc: 0, Kind: trace.BarDepart, Obj: 2, Value: 2})
	wantViolation(t, c, "before the epoch's last arrival")
}

func TestBarrierCleanEpochs(t *testing.T) {
	c := newChecker()
	for epoch := 0; epoch < 3; epoch++ {
		base := memsys.Time(epoch * 100)
		c.Observe(trace.Event{At: base + 1, Proc: 0, Kind: trace.BarArrive, Obj: 2, Value: 2})
		c.Observe(trace.Event{At: base + 2, Proc: 1, Kind: trace.BarArrive, Obj: 2, Value: 2})
		c.Observe(trace.Event{At: base + 10, Proc: 1, Kind: trace.BarDepart, Obj: 2, Value: 2})
		c.Observe(trace.Event{At: base + 11, Proc: 0, Kind: trace.BarDepart, Obj: 2, Value: 2})
	}
	if !c.Ok() {
		t.Fatalf("clean barrier epochs flagged: %v", c.Violations())
	}
}

func TestFlagWaitBeforeSet(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 1, Proc: 1, Kind: trace.FlagWait, Obj: 3})
	wantViolation(t, c, "never set")
}

func TestFlagWaitBeforeWatermark(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 5, Proc: 0, Kind: trace.FlagSet, Obj: 3, Value: 50})
	c.Observe(trace.Event{At: 10, Proc: 1, Kind: trace.FlagWait, Obj: 3})
	wantViolation(t, c, "set watermark 50")
}

func TestClockMonotonicityPerProc(t *testing.T) {
	c := newChecker()
	c.Observe(trace.Event{At: 10, Proc: 0, Kind: trace.Read, Addr: 8})
	c.Observe(trace.Event{At: 5, Proc: 0, Kind: trace.Read, Addr: 8})
	wantViolation(t, c, "clock went backwards")

	// Different processors may interleave arbitrarily in global time.
	c2 := newChecker()
	c2.Observe(trace.Event{At: 10, Proc: 0, Kind: trace.Read, Addr: 8})
	c2.Observe(trace.Event{At: 5, Proc: 1, Kind: trace.Read, Addr: 8})
	if !c2.Ok() {
		t.Fatalf("cross-proc interleaving flagged: %v", c2.Violations())
	}
}

// fakeAuditor lets the audit plumbing be tested without a protocol.
type fakeAuditor struct {
	findings []string
	copyV    uint64
	curV     uint64
	cached   bool
}

func (f *fakeAuditor) AuditConformance() []string { return f.findings }
func (f *fakeAuditor) CopyVersion(int, memsys.Addr) (uint64, uint64, bool) {
	return f.copyV, f.curV, f.cached
}

func TestStaleCopyDetection(t *testing.T) {
	c := newChecker()
	c.SetAuditor(&fakeAuditor{copyV: 1, curV: 3, cached: true})
	c.Observe(trace.Event{At: 1, Proc: 0, Kind: trace.Read, Addr: 8, Value: 0})
	wantViolation(t, c, "stale cached copy")
}

func TestFinalAuditRuns(t *testing.T) {
	c := newChecker()
	c.SetAuditor(&fakeAuditor{findings: []string{"boom"}, cached: false})
	c.Finish()
	wantViolation(t, c, "audit: boom")
	if _, _, _, audits := c.Stats(); audits == 0 {
		t.Fatal("Stats reports no audits")
	}
}

func TestViolationRetentionCap(t *testing.T) {
	c := newChecker()
	for i := 0; i < maxKeep+50; i++ {
		c.Observe(trace.Event{At: memsys.Time(i), Proc: 0, Kind: trace.Read, Addr: 8, Value: 9})
	}
	if got := len(c.Violations()); got != maxKeep {
		t.Fatalf("retained %d violations, want cap %d", got, maxKeep)
	}
	if c.NumViolations() != maxKeep+50 {
		t.Fatalf("counted %d violations, want %d", c.NumViolations(), maxKeep+50)
	}
	if c.Err() == nil {
		t.Fatal("Err must be non-nil after violations")
	}
}
