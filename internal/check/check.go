// Package check implements a runtime memory-consistency conformance checker.
// Attached to a machine (Machine.EnableCheck), it shadows the run and
// validates, on every globally visible event, that the execution obeys the
// memory model the simulated system claims to implement:
//
//   - Coherent reads: the simulator executes shared accesses in global
//     schedule order, so every read must return the value of the most recent
//     write in that linearization. The checker replays the order into a
//     shadow memory and compares. (For the SC systems this is exactly
//     sequential consistency; for the RC systems it is the SC-for-data-race-
//     free executions the protocols guarantee, since the engine serializes
//     racing accesses deterministically.)
//
//   - Protocol state: the CC-NUMA systems expose their directory and cache
//     state through the Auditable interface. The checker verifies the
//     single-writer/shared-reader invariants and — via per-line version
//     stamps — that no processor ever reads through a stale cached copy (a
//     lost invalidation or update).
//
//   - Synchronization: locks are mutually exclusive and are not granted
//     before the previous holder's writes are performed (the release
//     watermark); barrier departures happen only after the epoch's full
//     complement of arrivals; flag waits complete only after the flag's set
//     time; eager releases do not return with writes outstanding.
//
// A nil *Checker is valid and checks nothing, mirroring trace.Recorder, so
// the machine's hot paths need no conditionals.
package check

import (
	"fmt"

	"zsim/internal/memsys"
	"zsim/internal/trace"
)

// Auditable is implemented by memory systems that expose their coherence
// state for auditing (the CC-NUMA protocol family in internal/proto; the
// cacheless z-machine and PRAM models have nothing to audit).
type Auditable interface {
	// AuditConformance sweeps directory and cache state and returns a
	// description of every violated invariant (empty when consistent).
	AuditConformance() []string
	// CopyVersion returns the version of node's cached copy of the line
	// containing addr and the directory's current version; cached=false when
	// the node holds no copy.
	CopyVersion(node int, addr memsys.Addr) (copy, current uint64, cached bool)
}

// maxKeep bounds the violations retained verbatim; the total is always
// counted.
const maxKeep = 64

type lockState struct {
	held   bool
	holder int
	relWM  memsys.Time // watermark of the most recent release
}

type barState struct {
	n        int           // participant count
	arrivals []memsys.Time // arrival times, in observation order
	departs  int           // total departures observed
	arr      map[int]int   // per-proc arrival count
	dep      map[int]int   // per-proc departure count
}

type flagState struct {
	set   bool
	setAt memsys.Time
}

// Checker validates memory-model invariants over a run's event stream. Its
// methods are not safe for concurrent use; the simulation engine runs one
// processor at a time, which is also what makes the observed order a
// linearization.
type Checker struct {
	kind    memsys.Kind
	p       memsys.Params
	auditor Auditable
	lazy    bool // rcsync: releases legitimately return before draining

	// shadow replays the linearization's writes: a paged flat table of
	// words indexed by memsys.WordIndex, mirroring the machine's own value
	// store, so validating a read on the hot path never hashes or allocates.
	shadow memsys.Paged[uint64]
	lastAt []memsys.Time // per-proc clock, for monotonicity
	locks  map[int32]*lockState
	bars   map[int32]*barState
	flags  map[int32]*flagState

	events    uint64
	reads     uint64
	writes    uint64
	audits    uint64
	nextAudit uint64

	violations []string
	nviol      uint64
}

// New returns a checker for a run on the given memory system. Attach the
// protocol state with SetAuditor when the system supports it.
func New(kind memsys.Kind, p memsys.Params) *Checker {
	return &Checker{
		kind:   kind,
		p:      p,
		lazy:   kind == memsys.KindRCSync,
		lastAt: make([]memsys.Time, p.Procs),
		locks:  make(map[int32]*lockState),
		bars:   make(map[int32]*barState),
		flags:  make(map[int32]*flagState),
	}
}

// SetAuditor attaches the memory system's protocol state, enabling the
// staleness and directory/cache audits.
func (c *Checker) SetAuditor(a Auditable) {
	if c == nil {
		return
	}
	c.auditor = a
}

// Poked records a value written directly into shared memory outside the
// simulation (machine Poke calls during setup), keeping the shadow coherent.
func (c *Checker) Poked(addr memsys.Addr, v uint64) {
	if c == nil {
		return
	}
	*c.shadow.At(memsys.WordIndex(addr)) = v
}

// Observe feeds one event. The machine calls it, in execution order, for
// every event it also offers to the trace recorder.
func (c *Checker) Observe(ev trace.Event) {
	if c == nil {
		return
	}
	c.events++
	if int(ev.Proc) < len(c.lastAt) {
		if ev.At < c.lastAt[ev.Proc] {
			c.failf("P%d clock went backwards: %v at t=%d after t=%d", ev.Proc, ev.Kind, ev.At, c.lastAt[ev.Proc])
		}
		c.lastAt[ev.Proc] = ev.At
	}
	switch ev.Kind {
	case trace.Read:
		c.onRead(ev)
	case trace.Write:
		*c.shadow.At(memsys.WordIndex(ev.Addr)) = ev.Value
		c.writes++
	case trace.Release:
		// An eager release must not return before its writes are performed:
		// the post-release watermark cannot exceed the release's completion.
		// rcsync is exempt by design (§6 decoupling).
		if !c.lazy && memsys.Time(ev.Value) > ev.At+ev.Stall {
			c.failf("P%d release at t=%d returned with writes outstanding (watermark %d > completion %d)",
				ev.Proc, ev.At, ev.Value, ev.At+ev.Stall)
		}
	case trace.Acquire:
		// Clock monotonicity above is the only acquire-side invariant.
	case trace.LockAcq:
		c.onLockAcq(ev)
	case trace.LockRel:
		c.onLockRel(ev)
	case trace.BarArrive:
		c.onBarArrive(ev)
	case trace.BarDepart:
		c.onBarDepart(ev)
	case trace.FlagSet:
		f := c.flag(ev.Obj)
		f.set = true
		f.setAt = memsys.Time(ev.Value)
	case trace.FlagWait:
		c.onFlagWait(ev)
	}
	if c.auditor != nil && c.events >= c.nextAudit {
		c.runAudit()
		// Exponential backoff keeps total audit work logarithmic in the
		// event count, so checking stays well under the 2× overhead budget.
		c.nextAudit = c.events*2 + 1024
	}
}

func (c *Checker) onRead(ev trace.Event) {
	c.reads++
	// Unwritten shared memory reads as zero, so the table's zero default is
	// the right expectation for first touches.
	if want := c.shadow.Load(memsys.WordIndex(ev.Addr)); ev.Value != want {
		c.failf("P%d read %#x = %d at t=%d, but the linearization's latest write is %d (lost or reordered write)",
			ev.Proc, ev.Addr, ev.Value, ev.At, want)
	}
	if c.auditor != nil {
		node := c.p.Node(ev.Proc)
		if cv, cur, cached := c.auditor.CopyVersion(node, ev.Addr); cached && cv != cur {
			c.failf("P%d read %#x at t=%d through a stale cached copy (copy v%d, directory v%d)",
				ev.Proc, ev.Addr, ev.At, cv, cur)
		}
	}
}

func (c *Checker) onLockAcq(ev trace.Event) {
	l := c.lock(ev.Obj)
	if l.held {
		c.failf("lock %d granted to P%d at t=%d while held by P%d (mutual exclusion violated)",
			ev.Obj, ev.Proc, ev.At, l.holder)
	}
	if ev.At < l.relWM {
		c.failf("lock %d granted to P%d at t=%d before the previous holder's writes were performed (watermark %d)",
			ev.Obj, ev.Proc, ev.At, l.relWM)
	}
	l.held, l.holder = true, ev.Proc
}

func (c *Checker) onLockRel(ev trace.Event) {
	l := c.lock(ev.Obj)
	switch {
	case !l.held:
		c.failf("lock %d released by P%d at t=%d but was not held", ev.Obj, ev.Proc, ev.At)
	case l.holder != ev.Proc:
		c.failf("lock %d released by P%d at t=%d but held by P%d", ev.Obj, ev.Proc, ev.At, l.holder)
	}
	l.held = false
	l.relWM = memsys.Time(ev.Value)
}

func (c *Checker) onBarArrive(ev trace.Event) {
	b := c.bar(ev.Obj)
	if b.n == 0 {
		b.n = int(ev.Value)
	} else if b.n != int(ev.Value) {
		c.failf("barrier %d participant count changed from %d to %d", ev.Obj, b.n, ev.Value)
		return
	}
	if b.arr[ev.Proc] > b.dep[ev.Proc] {
		c.failf("P%d re-arrived at barrier %d at t=%d without departing the previous epoch", ev.Proc, ev.Obj, ev.At)
	}
	b.arr[ev.Proc]++
	b.arrivals = append(b.arrivals, ev.At)
}

func (c *Checker) onBarDepart(ev trace.Event) {
	b := c.bar(ev.Obj)
	if b.n == 0 {
		c.failf("P%d departed barrier %d at t=%d before any arrival", ev.Proc, ev.Obj, ev.At)
		return
	}
	if b.arr[ev.Proc] != b.dep[ev.Proc]+1 {
		c.failf("P%d departed barrier %d at t=%d without a matching arrival", ev.Proc, ev.Obj, ev.At)
	}
	// Departures come in epoch groups of n: the j-th departure belongs to
	// epoch j/n and requires that epoch's full complement of arrivals.
	epoch := b.departs / b.n
	need := (epoch + 1) * b.n
	if len(b.arrivals) < need {
		c.failf("P%d departed barrier %d at t=%d after only %d arrivals (epoch %d needs %d)",
			ev.Proc, ev.Obj, ev.At, len(b.arrivals), epoch+1, need)
	} else {
		// The departure cannot precede the epoch's latest arrival.
		var last memsys.Time
		for _, at := range b.arrivals[epoch*b.n : need] {
			if at > last {
				last = at
			}
		}
		if ev.At < last {
			c.failf("P%d departed barrier %d at t=%d before the epoch's last arrival at t=%d",
				ev.Proc, ev.Obj, ev.At, last)
		}
	}
	b.departs++
	b.dep[ev.Proc]++
}

func (c *Checker) onFlagWait(ev trace.Event) {
	f := c.flag(ev.Obj)
	if !f.set {
		c.failf("P%d completed a wait on flag %d at t=%d but the flag was never set", ev.Proc, ev.Obj, ev.At)
		return
	}
	if ev.At < f.setAt {
		c.failf("P%d observed flag %d at t=%d before its set watermark %d (producer's writes not yet visible)",
			ev.Proc, ev.Obj, ev.At, f.setAt)
	}
}

// Finish runs the final full audit. The machine calls it when the run ends.
func (c *Checker) Finish() {
	if c == nil {
		return
	}
	if c.auditor != nil {
		c.runAudit()
	}
}

func (c *Checker) runAudit() {
	c.audits++
	for _, v := range c.auditor.AuditConformance() {
		c.failf("audit: %s", v)
	}
}

func (c *Checker) lock(obj int32) *lockState {
	l, ok := c.locks[obj]
	if !ok {
		l = &lockState{}
		c.locks[obj] = l
	}
	return l
}

func (c *Checker) bar(obj int32) *barState {
	b, ok := c.bars[obj]
	if !ok {
		b = &barState{arr: map[int]int{}, dep: map[int]int{}}
		c.bars[obj] = b
	}
	return b
}

func (c *Checker) flag(obj int32) *flagState {
	f, ok := c.flags[obj]
	if !ok {
		f = &flagState{}
		c.flags[obj] = f
	}
	return f
}

func (c *Checker) failf(format string, args ...any) {
	c.nviol++
	if len(c.violations) < maxKeep {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Ok reports whether no invariant was violated.
func (c *Checker) Ok() bool { return c == nil || c.nviol == 0 }

// Violations returns the retained violation descriptions (at most maxKeep;
// NumViolations counts all).
func (c *Checker) Violations() []string {
	if c == nil {
		return nil
	}
	return append([]string(nil), c.violations...)
}

// NumViolations returns the total number of violations, including any beyond
// the retention cap.
func (c *Checker) NumViolations() uint64 {
	if c == nil {
		return 0
	}
	return c.nviol
}

// Err returns nil when the run conformed, or an error summarizing the first
// violation and the total count.
func (c *Checker) Err() error {
	if c.Ok() {
		return nil
	}
	return fmt.Errorf("check: %s %d conformance violations, first: %s", c.kind, c.nviol, c.violations[0])
}

// Stats reports how much work the checker did: events observed, reads and
// writes validated, and full audits run.
func (c *Checker) Stats() (events, reads, writes, audits uint64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	return c.events, c.reads, c.writes, c.audits
}
