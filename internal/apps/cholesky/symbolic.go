package cholesky

import (
	"fmt"
	"math"
)

// Matrix is a sparse symmetric positive definite matrix in
// lower-triangular compressed-column form (diagonal first in each column).
type Matrix struct {
	N      int
	ColPtr []int // length N+1
	RowIdx []int // ascending within a column; RowIdx[ColPtr[j]] == j
	Val    []float64
}

// GridLaplacian builds the k×k 5-point grid Laplacian with Dirichlet
// boundary (diag 4, grid-neighbor off-diagonals −1): a sparse SPD matrix of
// the same character as the paper's 1086-column test matrix (k=33 gives
// n=1089). Only the lower triangle is stored.
func GridLaplacian(k int) *Matrix {
	if k < 2 {
		panic(fmt.Sprintf("cholesky: grid %d too small", k))
	}
	n := k * k
	m := &Matrix{N: n, ColPtr: make([]int, n+1)}
	at := func(r, c int) int { return r*k + c }
	for j := 0; j < n; j++ {
		m.ColPtr[j] = len(m.RowIdx)
		r, c := j/k, j%k
		m.RowIdx = append(m.RowIdx, j)
		m.Val = append(m.Val, 4)
		// Lower-triangle neighbors (larger linear index): right and down.
		if c+1 < k {
			m.RowIdx = append(m.RowIdx, at(r, c+1))
			m.Val = append(m.Val, -1)
		}
		if r+1 < k {
			m.RowIdx = append(m.RowIdx, at(r+1, c))
			m.Val = append(m.Val, -1)
		}
	}
	m.ColPtr[n] = len(m.RowIdx)
	return m
}

// Sym is the symbolic factorization: the factor's pattern, the elimination
// tree, the supernode partition, and the supernodal task dependencies.
type Sym struct {
	N      int
	ColPtr []int // factor column pointers, length N+1
	RowIdx []int // factor row indices, ascending, diagonal first
	Parent []int // elimination tree (-1 at roots)

	Snode      []int   // column -> supernode id
	SnodeStart []int   // supernode id -> first column; length NS+1
	Targets    [][]int // supernode -> distinct later supernodes it updates
	DepCount   []int   // supernode -> number of distinct source supernodes
}

// NS returns the number of supernodes.
func (s *Sym) NS() int { return len(s.SnodeStart) - 1 }

// NNZ returns the factor's stored nonzeros.
func (s *Sym) NNZ() int { return len(s.RowIdx) }

// ColRows returns column j's factor row indices (ascending, j first).
func (s *Sym) ColRows(j int) []int { return s.RowIdx[s.ColPtr[j]:s.ColPtr[j+1]] }

// SnodeCols returns the [first, last] column range of supernode sn.
func (s *Sym) SnodeCols(sn int) (lo, hi int) { return s.SnodeStart[sn], s.SnodeStart[sn+1] - 1 }

// Analyze computes the symbolic factorization of m.
func Analyze(m *Matrix) *Sym {
	n := m.N
	s := &Sym{N: n, ColPtr: make([]int, n+1), Parent: make([]int, n)}
	children := make([][]int, n)
	patterns := make([][]int, n) // struct(j) excluding j, ascending
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		var pat []int
		mark[j] = j
		// A's pattern below the diagonal.
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			if r > j && mark[r] != j {
				mark[r] = j
				pat = append(pat, r)
			}
		}
		// Children's patterns (rows > j).
		for _, c := range children[j] {
			for _, r := range patterns[c] {
				if r > j && mark[r] != j {
					mark[r] = j
					pat = append(pat, r)
				}
			}
		}
		insertionSort(pat)
		patterns[j] = pat
		if len(pat) > 0 {
			s.Parent[j] = pat[0]
			children[pat[0]] = append(children[pat[0]], j)
		} else {
			s.Parent[j] = -1
		}
	}
	// Assemble the compressed pattern (diagonal first).
	for j := 0; j < n; j++ {
		s.ColPtr[j] = len(s.RowIdx)
		s.RowIdx = append(s.RowIdx, j)
		s.RowIdx = append(s.RowIdx, patterns[j]...)
	}
	s.ColPtr[n] = len(s.RowIdx)

	s.findSupernodes(patterns)
	s.findTargets()
	return s
}

// findSupernodes merges consecutive columns with nested structure:
// struct(j) \ {j+1} == struct(j+1) and parent(j) == j+1.
func (s *Sym) findSupernodes(patterns [][]int) {
	n := s.N
	s.Snode = make([]int, n)
	s.SnodeStart = []int{0}
	for j := 1; j < n; j++ {
		join := s.Parent[j-1] == j && len(patterns[j-1]) == len(patterns[j])+1
		if join {
			// patterns[j-1] = {j} ∪ patterns[j]?
			for i, r := range patterns[j] {
				if patterns[j-1][i+1] != r {
					join = false
					break
				}
			}
		}
		if !join {
			s.SnodeStart = append(s.SnodeStart, j)
		}
		s.Snode[j] = len(s.SnodeStart) - 1
	}
	s.SnodeStart = append(s.SnodeStart, n)
	for sn := 0; sn < s.NS(); sn++ {
		for j := s.SnodeStart[sn]; j < s.SnodeStart[sn+1]; j++ {
			s.Snode[j] = sn
		}
	}
}

// findTargets computes, per supernode, the distinct later supernodes whose
// columns it updates, and each supernode's dependency count.
func (s *Sym) findTargets() {
	ns := s.NS()
	s.Targets = make([][]int, ns)
	s.DepCount = make([]int, ns)
	seen := make([]int, ns)
	for i := range seen {
		seen[i] = -1
	}
	for sn := 0; sn < ns; sn++ {
		lo, hi := s.SnodeCols(sn)
		for j := lo; j <= hi; j++ {
			for _, r := range s.ColRows(j)[1:] {
				t := s.Snode[r]
				if t != sn && seen[t] != sn {
					seen[t] = sn
					s.Targets[sn] = append(s.Targets[sn], t)
					s.DepCount[t]++
				}
			}
		}
		insertionSort(s.Targets[sn])
	}
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// SequentialFactor computes the numeric factor on plain slices (left-looking
// column Cholesky over the symbolic pattern) — the reference the parallel
// run is compared against.
func SequentialFactor(m *Matrix, s *Sym) []float64 {
	val := initialValues(m, s)
	n := s.N
	pos := make([]int, n)
	for j := 0; j < n; j++ {
		// Apply updates from every column i < j with j in struct(i).
		// Gather them via the row structure: walk columns i where j appears.
		// For simplicity (reference code), scan all prior columns of the
		// pattern via the elimination tree reach: a column i updates j iff
		// j ∈ struct(i), which we detect by binary search.
		for i := 0; i < j; i++ {
			pi := findRow(s, i, j)
			if pi < 0 {
				continue
			}
			ljk := val[pi]
			// Scatter positions of column j.
			for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
				pos[s.RowIdx[p]] = p
			}
			for p := pi; p < s.ColPtr[i+1]; p++ {
				r := s.RowIdx[p]
				val[pos[r]] -= val[p] * ljk
			}
		}
		// cdiv.
		d := val[s.ColPtr[j]]
		if d <= 0 {
			panic(fmt.Sprintf("cholesky: matrix not positive definite at column %d (pivot %g)", j, d))
		}
		d = math.Sqrt(d)
		val[s.ColPtr[j]] = d
		for p := s.ColPtr[j] + 1; p < s.ColPtr[j+1]; p++ {
			val[p] /= d
		}
	}
	return val
}

// initialValues spreads A's numeric values over the factor pattern
// (fill positions start at zero).
func initialValues(m *Matrix, s *Sym) []float64 {
	val := make([]float64, s.NNZ())
	for j := 0; j < m.N; j++ {
		p := s.ColPtr[j]
		for q := m.ColPtr[j]; q < m.ColPtr[j+1]; q++ {
			r := m.RowIdx[q]
			for s.RowIdx[p] != r {
				p++
			}
			val[p] = m.Val[q]
		}
	}
	return val
}

// findRow returns the value index of row r in column i's factor pattern, or
// -1 when absent.
func findRow(s *Sym, i, r int) int {
	lo, hi := s.ColPtr[i], s.ColPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.RowIdx[mid] == r:
			return mid
		case s.RowIdx[mid] < r:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}
