package cholesky

import (
	"math"
	"testing"
)

// Hand-computed factorization of the 2x2 grid Laplacian:
//
//	A = [ 4 -1 -1  0
//	     -1  4  0 -1
//	     -1  0  4 -1
//	      0 -1 -1  4 ]
//
// L computed by hand (lower-triangular Cholesky).
func TestSequentialFactorHandChecked(t *testing.T) {
	m := GridLaplacian(2)
	s := Analyze(m)
	val := SequentialFactor(m, s)

	get := func(r, c int) float64 {
		p := findRow(s, c, r)
		if p < 0 {
			return 0
		}
		return val[p]
	}

	l00 := 2.0 // sqrt(4)
	if !close(get(0, 0), l00) {
		t.Fatalf("L00 = %g, want %g", get(0, 0), l00)
	}
	l10 := -0.5 // -1/2
	if !close(get(1, 0), l10) {
		t.Fatalf("L10 = %g, want %g", get(1, 0), l10)
	}
	l11 := math.Sqrt(4 - 0.25) // sqrt(3.75)
	if !close(get(1, 1), l11) {
		t.Fatalf("L11 = %g, want %g", get(1, 1), l11)
	}
	l20 := -0.5
	if !close(get(2, 0), l20) {
		t.Fatalf("L20 = %g, want %g", get(2, 0), l20)
	}
	// L21 = (A21 - L20*L10)/L11 = (0 - 0.25)/sqrt(3.75)
	l21 := -0.25 / l11
	if !close(get(2, 1), l21) {
		t.Fatalf("L21 = %g, want %g", get(2, 1), l21)
	}
	l22 := math.Sqrt(4 - l20*l20 - l21*l21)
	if !close(get(2, 2), l22) {
		t.Fatalf("L22 = %g, want %g", get(2, 2), l22)
	}
	// L31 = (A31 - 0)/L11 ; A31 = -1.
	l31 := -1 / l11
	if !close(get(3, 1), l31) {
		t.Fatalf("L31 = %g, want %g", get(3, 1), l31)
	}
	l32 := (-1 - l21*l31) / l22
	if !close(get(3, 2), l32) {
		t.Fatalf("L32 = %g, want %g", get(3, 2), l32)
	}
	l33 := math.Sqrt(4 - l31*l31 - l32*l32)
	if !close(get(3, 3), l33) {
		t.Fatalf("L33 = %g, want %g", get(3, 3), l33)
	}
}

func close(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

// The 2x2 grid fills in completely below the diagonal of column 1 (the
// (2,1) entry is a fill position: A21 = 0 but L21 != 0).
func TestFillPositionsAppear(t *testing.T) {
	m := GridLaplacian(2)
	s := Analyze(m)
	if findRow(s, 1, 2) < 0 {
		t.Fatal("fill entry (2,1) missing from the symbolic factor")
	}
	// And it was zero in A.
	for p := m.ColPtr[1]; p < m.ColPtr[2]; p++ {
		if m.RowIdx[p] == 2 {
			t.Fatal("(2,1) should not be an original entry")
		}
	}
}

// Non-positive-definite input must be rejected loudly.
func TestFactorRejectsIndefinite(t *testing.T) {
	m := GridLaplacian(2)
	m.Val[0] = -4 // break SPD
	s := Analyze(m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for an indefinite matrix")
		}
	}()
	SequentialFactor(m, s)
}
