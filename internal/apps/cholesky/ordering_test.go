package cholesky

import (
	"testing"
	"testing/quick"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
)

func TestNDOrderIsPermutation(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8, 16, 33} {
		ord := NDOrder(k)
		if !IsPermutation(ord, k*k) {
			t.Fatalf("grid %d: NDOrder is not a permutation", k)
		}
	}
}

func TestNaturalOrderIdentity(t *testing.T) {
	ord := NaturalOrder(4)
	for i, v := range ord {
		if v != i {
			t.Fatalf("natural order not identity: %v", ord)
		}
	}
}

func TestNDSeparatorLast(t *testing.T) {
	// For a 5x5 grid the first vertical separator is column 2; its cells
	// must be eliminated after both halves.
	k := 5
	ord := NDOrder(k)
	pos := make([]int, k*k)
	for i, cell := range ord {
		pos[cell] = i
	}
	for y := 0; y < k; y++ {
		sep := pos[y*k+2]
		for x := 0; x < k; x++ {
			if x == 2 {
				continue
			}
			if pos[y*k+x] > sep {
				t.Fatalf("cell (%d,%d) eliminated after the separator", x, y)
			}
		}
	}
}

func TestPermuteMatrixPreservesEntries(t *testing.T) {
	m := GridLaplacian(4)
	ord := NDOrder(4)
	pm := PermuteMatrix(m, ord)
	if pm.N != m.N {
		t.Fatalf("N changed: %d", pm.N)
	}
	if len(pm.RowIdx) != len(m.RowIdx) {
		t.Fatalf("nonzero count changed: %d vs %d", len(pm.RowIdx), len(m.RowIdx))
	}
	// Every column: diagonal first, value 4, rows ascending.
	for j := 0; j < pm.N; j++ {
		rows := pm.RowIdx[pm.ColPtr[j]:pm.ColPtr[j+1]]
		if rows[0] != j || pm.Val[pm.ColPtr[j]] != 4 {
			t.Fatalf("column %d: diagonal wrong", j)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i] <= rows[i-1] {
				t.Fatalf("column %d rows not ascending: %v", j, rows)
			}
			if pm.Val[pm.ColPtr[j]+i] != -1 {
				t.Fatalf("off-diagonal value wrong")
			}
		}
	}
}

// Property: permuting by any random permutation keeps the matrix
// factorizable (SPD is invariant under symmetric permutation).
func TestPermutedStillSPDProperty(t *testing.T) {
	f := func(seedBytes []byte) bool {
		k := 4
		m := GridLaplacian(k)
		// Build a permutation from the random bytes (Fisher-Yates-ish).
		ord := NaturalOrder(k)
		for i := range ord {
			if len(seedBytes) == 0 {
				break
			}
			j := int(seedBytes[i%len(seedBytes)]) % (i + 1)
			ord[i], ord[j] = ord[j], ord[i]
		}
		pm := PermuteMatrix(m, ord)
		s := Analyze(pm)
		val := SequentialFactor(pm, s) // panics if not SPD
		return CheckFactor(pm, s, val) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Nested dissection must reduce fill versus the natural band ordering once
// the grid is big enough.
func TestNDReducesFill(t *testing.T) {
	k := 16
	nat := Analyze(GridLaplacian(k))
	nd := Analyze(PermuteMatrix(GridLaplacian(k), NDOrder(k)))
	if nd.NNZ() >= nat.NNZ() {
		t.Fatalf("nd fill %d not below natural %d", nd.NNZ(), nat.NNZ())
	}
	t.Logf("grid %d: natural nnz(L)=%d, nd nnz(L)=%d", k, nat.NNZ(), nd.NNZ())
}

func TestAppCorrectWithNDOrdering(t *testing.T) {
	for _, kind := range []memsys.Kind{memsys.KindRCInv, memsys.KindRCUpd, memsys.KindZMachine} {
		app := New(Config{Grid: 8, Ordering: "nd"})
		m := machine.MustNew(kind, memsys.Default(16))
		if _, err := apps.Run(app, m); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestUnknownOrderingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Grid: 4, Ordering: "amd"})
}
