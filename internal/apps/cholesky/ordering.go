package cholesky

import "fmt"

// Fill-reducing ordering. The paper's matrix comes pre-ordered (506
// supernodes over 1086 columns); our grid Laplacian supports two orderings
// so the harness can show how the ordering reshapes the factorization's
// communication pattern: "natural" (row-major, a band matrix — long thin
// supernodes, pipeline-ish dependencies) and "nd" (nested dissection —
// less fill, a wide elimination tree with more task parallelism).

// NDOrder returns the nested-dissection elimination order for the k×k
// grid: ord[i] is the grid cell (row-major index) eliminated at step i.
// Regions are ordered recursively before their separating line, so
// separators (which couple the regions) are eliminated last.
func NDOrder(k int) []int {
	if k < 2 {
		panic(fmt.Sprintf("cholesky: grid %d too small", k))
	}
	ord := make([]int, 0, k*k)
	var rec func(x0, x1, y0, y1 int)
	emitAll := func(x0, x1, y0, y1 int) {
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				ord = append(ord, y*k+x)
			}
		}
	}
	rec = func(x0, x1, y0, y1 int) {
		w, h := x1-x0+1, y1-y0+1
		if w <= 0 || h <= 0 {
			return
		}
		if w <= 2 && h <= 2 {
			emitAll(x0, x1, y0, y1)
			return
		}
		if w >= h {
			// Vertical separator at the middle column.
			mid := (x0 + x1) / 2
			rec(x0, mid-1, y0, y1)
			rec(mid+1, x1, y0, y1)
			emitAll(mid, mid, y0, y1)
		} else {
			// Horizontal separator at the middle row.
			mid := (y0 + y1) / 2
			rec(x0, x1, y0, mid-1)
			rec(x0, x1, mid+1, y1)
			emitAll(x0, x1, mid, mid)
		}
	}
	rec(0, k-1, 0, k-1)
	return ord
}

// NaturalOrder returns the identity (row-major) ordering.
func NaturalOrder(k int) []int {
	ord := make([]int, k*k)
	for i := range ord {
		ord[i] = i
	}
	return ord
}

// PermuteMatrix returns P·A·Pᵀ for the given elimination order
// (ord[new] = old), in the package's lower-triangular column form.
func PermuteMatrix(m *Matrix, ord []int) *Matrix {
	if len(ord) != m.N {
		panic(fmt.Sprintf("cholesky: ordering of %d for a %d-column matrix", len(ord), m.N))
	}
	inv := make([]int, m.N)
	for newIdx, oldIdx := range ord {
		inv[oldIdx] = newIdx
	}
	// Gather full symmetric entries per new column.
	cols := make([][]entry, m.N)
	addLower := func(r, c int, v float64) {
		if r >= c {
			cols[c] = append(cols[c], entry{row: r, val: v})
		}
	}
	for oldC := 0; oldC < m.N; oldC++ {
		for p := m.ColPtr[oldC]; p < m.ColPtr[oldC+1]; p++ {
			oldR := m.RowIdx[p]
			v := m.Val[p]
			nr, nc := inv[oldR], inv[oldC]
			addLower(nr, nc, v)
			if oldR != oldC {
				addLower(nc, nr, v)
			}
		}
	}
	out := &Matrix{N: m.N, ColPtr: make([]int, m.N+1)}
	for c := 0; c < m.N; c++ {
		insertionSortEntries(cols[c])
		out.ColPtr[c] = len(out.RowIdx)
		for _, e := range cols[c] {
			out.RowIdx = append(out.RowIdx, e.row)
			out.Val = append(out.Val, e.val)
		}
	}
	out.ColPtr[m.N] = len(out.RowIdx)
	return out
}

// entry is a (row, value) pair used while permuting.
type entry struct {
	row int
	val float64
}

func insertionSortEntries(a []entry) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j].row > v.row {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// IsPermutation reports whether ord is a permutation of [0, n).
func IsPermutation(ord []int, n int) bool {
	if len(ord) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range ord {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
