// Package cholesky implements the sparse supernodal Cholesky factorization
// of the paper's evaluation: sets of columns with identical structure form
// supernodes; a supernode whose external updates have all arrived is added
// to a central work queue; processors take supernode tasks from the queue,
// factor them, and apply their updates to later supernodes — a totally
// dynamic, data-dependent communication pattern driven by the queue.
//
// The paper factors a 1086×1086 sparse SPD matrix; this reproduction
// generates a grid Laplacian of the same scale (33×33 ⇒ n=1089) with a
// comparable supernode count (see DESIGN.md §3 on input substitution).
package cholesky

import (
	"fmt"
	"math"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/psync"
	"zsim/internal/shm"
)

// Config sizes the problem.
type Config struct {
	Grid int // the matrix is the Grid×Grid Laplacian (n = Grid²)
	// Ordering selects the elimination order: "natural" (row-major band,
	// default) or "nd" (nested dissection — less fill, wider elimination
	// tree, more task parallelism).
	Ordering string
}

// Paper returns the paper-scale instance: n=1089 ≈ the paper's 1086.
func Paper() Config { return Config{Grid: 33} }

// Small returns a reduced instance for fast tests.
func Small() Config { return Config{Grid: 8} }

// CH is one Cholesky run.
type CH struct {
	cfg Config
	m   *Matrix
	sym *Sym

	val shm.F64 // factor nonzeros
	dep shm.I64 // per-supernode outstanding-update count

	snLocks []*psync.Lock
	queue   *psync.Queue
	done    *psync.Counter
	initBar *psync.Barrier
}

// New returns a Cholesky application instance.
func New(cfg Config) *CH {
	m := GridLaplacian(cfg.Grid)
	switch cfg.Ordering {
	case "", "natural":
	case "nd":
		m = PermuteMatrix(m, NDOrder(cfg.Grid))
	default:
		panic(fmt.Sprintf("cholesky: unknown ordering %q", cfg.Ordering))
	}
	return &CH{cfg: cfg, m: m, sym: Analyze(m)}
}

// Matrix exposes the (possibly permuted) input matrix.
func (c *CH) Matrix() *Matrix { return c.m }

// Name implements apps.App.
func (c *CH) Name() string { return "cholesky" }

// Sym exposes the symbolic factorization (tests, examples).
func (c *CH) Sym() *Sym { return c.sym }

// Setup implements apps.App.
func (c *CH) Setup(m *machine.Machine) {
	c.val = shm.NewF64(m.Heap, c.sym.NNZ())
	c.dep = shm.NewI64(m.Heap, c.sym.NS())
	c.snLocks = make([]*psync.Lock, c.sym.NS())
	for i := range c.snLocks {
		c.snLocks[i] = psync.NewLock(m)
	}
	c.queue = psync.NewQueue(m, c.sym.NS()+16)
	c.done = psync.NewCounter(m, 0)
	c.initBar = psync.NewBarrier(m)

	for i, v := range initialValues(c.m, c.sym) {
		m.PokeF64(c.val.At(i), v)
	}
	for sn, d := range c.sym.DepCount {
		m.PokeU64(c.dep.At(sn), uint64(d))
	}
}

// Body implements apps.App.
func (c *CH) Body(e *machine.Env) {
	// Processor 0 seeds the central queue with the leaves (supernodes with
	// no outstanding updates).
	if e.ID() == 0 {
		for sn := 0; sn < c.sym.NS(); sn++ {
			if c.dep.Get(e, sn) == 0 {
				c.queue.Push(e, int64(sn))
			}
			e.Compute(apps.CostLoop + apps.CostCheck)
		}
	}
	c.initBar.Wait(e)

	for {
		sn, ok := c.queue.TryPop(e)
		if !ok {
			if c.done.Get(e) == int64(c.sym.NS()) {
				return
			}
			e.Compute(apps.CostIdle)
			continue
		}
		c.factorSnode(e, int(sn))
		c.fanOut(e, int(sn))
		c.done.Add(e, 1)
	}
}

// factorSnode runs the internal factorization of supernode sn: left-looking
// updates between its columns (which have nested structure, so source and
// target positions align), then cdiv per column.
func (c *CH) factorSnode(e *machine.Env, sn int) {
	s := c.sym
	lo, hi := s.SnodeCols(sn)
	for j := lo; j <= hi; j++ {
		// Internal updates from columns lo..j-1.
		for i := lo; i < j; i++ {
			pos := s.ColPtr[i] + (j - i) // row j inside column i (nested)
			lij := c.val.Get(e, pos)
			for p := pos; p < s.ColPtr[i+1]; p++ {
				q := s.ColPtr[j] + (p - pos)
				c.val.Set(e, q, c.val.Get(e, q)-c.val.Get(e, p)*lij)
				e.Compute(apps.CostLoop + 2*apps.CostFlop)
			}
		}
		// cdiv(j).
		dp := s.ColPtr[j]
		d := c.val.Get(e, dp)
		if d <= 0 {
			panic(fmt.Sprintf("cholesky: lost positive definiteness at column %d (pivot %g)", j, d))
		}
		d = math.Sqrt(d)
		c.val.Set(e, dp, d)
		e.Compute(apps.CostSqrt)
		for p := dp + 1; p < s.ColPtr[j+1]; p++ {
			c.val.Set(e, p, c.val.Get(e, p)/d)
			e.Compute(apps.CostLoop + apps.CostDiv)
		}
	}
}

// fanOut applies sn's updates to each target supernode under the target's
// lock, decrementing its dependency count and enqueueing it when it becomes
// ready (the paper's "if the criteria of the supernode being changed are
// satisfied then that node is also added to the work queue").
func (c *CH) fanOut(e *machine.Env, sn int) {
	s := c.sym
	lo, hi := s.SnodeCols(sn)
	for _, t := range s.Targets[sn] {
		c.snLocks[t].Acquire(e)
		tlo, thi := s.SnodeCols(t)
		for j := lo; j <= hi; j++ {
			// Positions of rows belonging to supernode t in column j.
			for pk := s.ColPtr[j] + 1; pk < s.ColPtr[j+1]; pk++ {
				k := s.RowIdx[pk]
				if k < tlo {
					continue
				}
				if k > thi {
					break
				}
				// cmod(k, j): L[r][k] -= L[r][j] * L[k][j] for r ≥ k in
				// struct(j) (all such r are in struct(k) by the fill rule).
				lkj := c.val.Get(e, pk)
				for p := pk; p < s.ColPtr[j+1]; p++ {
					r := s.RowIdx[p]
					q := findRow(s, k, r)
					c.val.Set(e, q, c.val.Get(e, q)-c.val.Get(e, p)*lkj)
					e.Compute(apps.CostLoop + 2*apps.CostFlop + 4*apps.CostCheck)
				}
			}
		}
		left := c.dep.Add(e, t, -1)
		if left == 0 {
			c.queue.Push(e, int64(t))
		}
		c.snLocks[t].Release(e)
	}
}

// Verify implements apps.App: the parallel factor must match the sequential
// reference and satisfy L·Lᵀ = A.
func (c *CH) Verify(m *machine.Machine) error {
	s := c.sym
	got := make([]float64, s.NNZ())
	for i := range got {
		got[i] = m.PeekF64(c.val.At(i))
	}
	want := SequentialFactor(c.m, s)
	for i := range got {
		if !approxEq(got[i], want[i]) {
			return fmt.Errorf("cholesky: L value %d (row %d) = %g, reference %g", i, s.RowIdx[i], got[i], want[i])
		}
	}
	return CheckFactor(c.m, s, got)
}

// CheckFactor verifies L·Lᵀ == A on the dense product (A's zero positions
// included).
func CheckFactor(m *Matrix, s *Sym, val []float64) error {
	n := s.N
	// Dense A.
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			a[r*n+j] = m.Val[p]
			a[j*n+r] = m.Val[p]
		}
	}
	// Subtract L·Lᵀ column by column.
	for j := 0; j < n; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			for q := s.ColPtr[j]; q < s.ColPtr[j+1]; q++ {
				r1, r2 := s.RowIdx[p], s.RowIdx[q]
				a[r1*n+r2] -= val[p] * val[q]
			}
		}
	}
	var norm float64
	for _, v := range a {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm > 1e-8*float64(n) {
		return fmt.Errorf("cholesky: ||L·Lᵀ − A|| = %g too large", norm)
	}
	return nil
}

func approxEq(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9+1e-9*math.Max(math.Abs(a), math.Abs(b))
}
