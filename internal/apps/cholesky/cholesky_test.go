package cholesky

import (
	"testing"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
)

func runCH(t *testing.T, kind memsys.Kind, cfg Config, procs int) *CH {
	t.Helper()
	app := New(cfg)
	m := machine.MustNew(kind, memsys.Default(procs))
	if _, err := apps.Run(app, m); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return app
}

func TestCorrectOnEverySystem(t *testing.T) {
	for _, kind := range memsys.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			runCH(t, kind, Small(), 16)
		})
	}
}

func TestSingleProc(t *testing.T) {
	runCH(t, memsys.KindRCInv, Config{Grid: 5}, 1)
}

func TestFourProcs(t *testing.T) {
	runCH(t, memsys.KindRCUpd, Config{Grid: 6}, 4)
}

func TestMediumGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("medium grid in -short mode")
	}
	runCH(t, memsys.KindRCAdapt, Config{Grid: 12}, 16)
}

func TestGridLaplacianShape(t *testing.T) {
	m := GridLaplacian(3)
	if m.N != 9 {
		t.Fatalf("N = %d", m.N)
	}
	// Corner vertex 0: diagonal 4, neighbors 1 (right) and 3 (down).
	if m.RowIdx[m.ColPtr[0]] != 0 || m.Val[m.ColPtr[0]] != 4 {
		t.Fatal("diagonal must come first with value 4")
	}
	rows := m.RowIdx[m.ColPtr[0]:m.ColPtr[1]]
	if len(rows) != 3 || rows[1] != 1 || rows[2] != 3 {
		t.Fatalf("column 0 rows = %v, want [0 1 3]", rows)
	}
	// Last column: only the diagonal (no lower neighbors).
	if m.ColPtr[9]-m.ColPtr[8] != 1 {
		t.Fatal("last column should hold only its diagonal")
	}
}

func TestAnalyzeEliminationTree(t *testing.T) {
	m := GridLaplacian(3)
	s := Analyze(m)
	// Every parent is the first below-diagonal row of the column.
	for j := 0; j < s.N; j++ {
		rows := s.ColRows(j)
		if rows[0] != j {
			t.Fatalf("column %d: diagonal not first", j)
		}
		if len(rows) > 1 {
			if s.Parent[j] != rows[1] {
				t.Fatalf("parent[%d] = %d, want %d", j, s.Parent[j], rows[1])
			}
		} else if s.Parent[j] != -1 {
			t.Fatalf("parent of last column = %d, want -1", s.Parent[j])
		}
		for i := 1; i < len(rows); i++ {
			if rows[i] <= rows[i-1] {
				t.Fatalf("column %d rows not ascending: %v", j, rows)
			}
		}
	}
}

func TestFactorPatternContainsA(t *testing.T) {
	m := GridLaplacian(5)
	s := Analyze(m)
	for j := 0; j < m.N; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			if findRow(s, j, m.RowIdx[p]) < 0 {
				t.Fatalf("A(%d,%d) missing from the factor pattern", m.RowIdx[p], j)
			}
		}
	}
	if s.NNZ() < len(m.RowIdx) {
		t.Fatal("factor cannot have fewer nonzeros than A")
	}
}

// The defining supernode property: struct(j) = {j} ∪ struct(j+1) for
// consecutive columns of a supernode. The parallel internal update relies
// on this alignment.
func TestSupernodeNesting(t *testing.T) {
	m := GridLaplacian(8)
	s := Analyze(m)
	for sn := 0; sn < s.NS(); sn++ {
		lo, hi := s.SnodeCols(sn)
		if lo > hi {
			t.Fatalf("supernode %d empty", sn)
		}
		for j := lo; j < hi; j++ {
			a, b := s.ColRows(j), s.ColRows(j+1)
			if len(a) != len(b)+1 {
				t.Fatalf("supernode %d: |struct(%d)| = %d, |struct(%d)| = %d", sn, j, len(a), j+1, len(b))
			}
			for i, r := range b {
				if a[i+1] != r {
					t.Fatalf("supernode %d: struct(%d) not nested in struct(%d)", sn, j+1, j)
				}
			}
		}
	}
}

func TestSupernodePartition(t *testing.T) {
	s := Analyze(GridLaplacian(6))
	// SnodeStart must partition [0,n).
	if s.SnodeStart[0] != 0 || s.SnodeStart[s.NS()] != s.N {
		t.Fatal("supernode boundaries do not span the columns")
	}
	for sn := 0; sn < s.NS(); sn++ {
		lo, hi := s.SnodeCols(sn)
		for j := lo; j <= hi; j++ {
			if s.Snode[j] != sn {
				t.Fatalf("column %d mapped to supernode %d, want %d", j, s.Snode[j], sn)
			}
		}
	}
}

func TestDependencyCountsConsistent(t *testing.T) {
	s := Analyze(GridLaplacian(7))
	counts := make([]int, s.NS())
	for sn := 0; sn < s.NS(); sn++ {
		for _, tgt := range s.Targets[sn] {
			if tgt <= sn {
				t.Fatalf("supernode %d targets earlier/self supernode %d", sn, tgt)
			}
			counts[tgt]++
		}
	}
	for sn, want := range counts {
		if s.DepCount[sn] != want {
			t.Fatalf("DepCount[%d] = %d, want %d", sn, s.DepCount[sn], want)
		}
	}
	// At least one leaf exists (the schedule can start).
	leaves := 0
	for _, d := range s.DepCount {
		if d == 0 {
			leaves++
		}
	}
	if leaves == 0 {
		t.Fatal("no leaf supernodes")
	}
}

func TestSequentialFactorCorrect(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8} {
		m := GridLaplacian(k)
		s := Analyze(m)
		val := SequentialFactor(m, s)
		if err := CheckFactor(m, s, val); err != nil {
			t.Fatalf("grid %d: %v", k, err)
		}
	}
}

func TestPaperScaleSymbolic(t *testing.T) {
	// The paper's matrix: 1086 columns, 506 supernodes, 110K factor
	// nonzeros. Our 33×33 Laplacian should land in the same regime.
	s := Analyze(GridLaplacian(33))
	if s.N != 1089 {
		t.Fatalf("n = %d", s.N)
	}
	if s.NS() < 100 || s.NS() > 1089 {
		t.Fatalf("supernodes = %d, expected a few hundred", s.NS())
	}
	if s.NNZ() < 10000 {
		t.Fatalf("factor nonzeros = %d, expected tens of thousands", s.NNZ())
	}
	t.Logf("n=%d supernodes=%d nnz(L)=%d", s.N, s.NS(), s.NNZ())
}

func TestGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GridLaplacian(1)
}
