// Package sor implements a red-black Gauss-Seidel (SOR) solver for the 2-D
// Poisson problem — not one of the paper's four evaluation applications,
// but the canonical static nearest-neighbour workload, included so library
// users have a regular-communication counterpoint to the paper's dynamic
// applications (and because the paper's framework is exactly the right
// tool to quantify what boundary-row exchange costs under each protocol).
//
// The grid is partitioned into horizontal strips; each sweep updates one
// color with a barrier between colors, so neighbouring strips exchange
// only their boundary rows.
package sor

import (
	"fmt"
	"math"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/psync"
	"zsim/internal/shm"
)

// Config sizes the solve.
type Config struct {
	N      int // interior grid dimension (the grid is (N+2)², boundaries fixed)
	Sweeps int
}

// Default returns a medium instance.
func Default() Config { return Config{N: 48, Sweeps: 20} }

// Small returns a reduced instance for fast tests.
func Small() Config { return Config{N: 16, Sweeps: 6} }

// SOR is one solver run.
type SOR struct {
	cfg Config
	u   shm.F64 // (N+2)×(N+2) row-major iterate
	f   shm.F64 // right-hand side
	bar *psync.Barrier
}

// New returns an SOR application instance.
func New(cfg Config) *SOR {
	if cfg.N < 2 || cfg.Sweeps <= 0 {
		panic(fmt.Sprintf("sor: bad config %+v", cfg))
	}
	return &SOR{cfg: cfg}
}

// Name implements apps.App.
func (s *SOR) Name() string { return "sor" }

func (s *SOR) idx(r, c int) int { return r*(s.cfg.N+2) + c }

// Setup implements apps.App.
func (s *SOR) Setup(m *machine.Machine) {
	size := (s.cfg.N + 2) * (s.cfg.N + 2)
	s.u = shm.NewF64(m.Heap, size)
	s.f = shm.NewF64(m.Heap, size)
	s.bar = psync.NewBarrier(m)
	for r := 1; r <= s.cfg.N; r++ {
		for c := 1; c <= s.cfg.N; c++ {
			// A deterministic, mildly varying source term.
			m.PokeF64(s.f.At(s.idx(r, c)), 1.0+0.01*float64((r*31+c*17)%7))
		}
	}
}

// strip returns processor p's row range [lo, hi] (1-based interior rows).
func (s *SOR) strip(p, np int) (lo, hi int) {
	per := (s.cfg.N + np - 1) / np
	lo = p*per + 1
	hi = lo + per - 1
	if hi > s.cfg.N {
		hi = s.cfg.N
	}
	return
}

// Body implements apps.App.
func (s *SOR) Body(e *machine.Env) {
	n := s.cfg.N
	lo, hi := s.strip(e.ID(), e.NumProcs())
	h2 := 1.0 / float64((n+1)*(n+1))
	for sweep := 0; sweep < s.cfg.Sweeps; sweep++ {
		for color := 0; color < 2; color++ {
			for r := lo; r <= hi; r++ {
				for c := 1 + (r+color)%2; c <= n; c += 2 {
					up := s.u.Get(e, s.idx(r-1, c))
					down := s.u.Get(e, s.idx(r+1, c))
					left := s.u.Get(e, s.idx(r, c-1))
					right := s.u.Get(e, s.idx(r, c+1))
					fv := s.f.Get(e, s.idx(r, c))
					s.u.Set(e, s.idx(r, c), 0.25*(up+down+left+right-h2*fv))
					e.Compute(6 * apps.CostFlop)
				}
			}
			s.bar.Wait(e)
		}
	}
}

// Verify implements apps.App: the parallel iterate must equal the
// sequential red-black solve exactly (within a color, updates read only
// the other color, so the update order cannot change the result).
func (s *SOR) Verify(m *machine.Machine) error {
	n := s.cfg.N
	u := make([]float64, (n+2)*(n+2))
	f := make([]float64, (n+2)*(n+2))
	for i := range f {
		f[i] = m.PeekF64(s.f.At(i))
	}
	h2 := 1.0 / float64((n+1)*(n+1))
	for sweep := 0; sweep < s.cfg.Sweeps; sweep++ {
		for color := 0; color < 2; color++ {
			for r := 1; r <= n; r++ {
				for c := 1 + (r+color)%2; c <= n; c += 2 {
					i := s.idx(r, c)
					u[i] = 0.25 * (u[s.idx(r-1, c)] + u[s.idx(r+1, c)] + u[s.idx(r, c-1)] + u[s.idx(r, c+1)] - h2*f[i])
				}
			}
		}
	}
	for i := range u {
		got := m.PeekF64(s.u.At(i))
		if math.Abs(got-u[i]) > 1e-12 {
			return fmt.Errorf("sor: cell %d = %g, reference %g", i, got, u[i])
		}
	}
	return nil
}
