package sor

import (
	"math"
	"testing"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
)

func runSOR(t *testing.T, kind memsys.Kind, cfg Config, procs int) *SOR {
	t.Helper()
	app := New(cfg)
	m := machine.MustNew(kind, memsys.Default(procs))
	if _, err := apps.Run(app, m); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return app
}

func TestCorrectOnEverySystem(t *testing.T) {
	for _, kind := range memsys.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			runSOR(t, kind, Small(), 16)
		})
	}
}

func TestOddGridAndProcs(t *testing.T) {
	runSOR(t, memsys.KindRCInv, Config{N: 13, Sweeps: 3}, 5)
}

func TestSingleProc(t *testing.T) {
	runSOR(t, memsys.KindRCUpd, Config{N: 8, Sweeps: 4}, 1)
}

func TestIterateConverges(t *testing.T) {
	// More sweeps bring the residual of -∇²u = f closer to zero.
	residual := func(sweeps int) float64 {
		cfg := Config{N: 12, Sweeps: sweeps}
		app := New(cfg)
		m := machine.MustNew(memsys.KindPRAM, memsys.Default(4))
		if _, err := apps.Run(app, m); err != nil {
			t.Fatal(err)
		}
		n := cfg.N
		h2 := 1.0 / float64((n+1)*(n+1))
		var sum float64
		for r := 1; r <= n; r++ {
			for c := 1; c <= n; c++ {
				u := func(rr, cc int) float64 { return m.PeekF64(app.u.At(app.idx(rr, cc))) }
				res := 4*u(r, c) - u(r-1, c) - u(r+1, c) - u(r, c-1) - u(r, c+1) + h2*m.PeekF64(app.f.At(app.idx(r, c)))
				sum += res * res
			}
		}
		return math.Sqrt(sum)
	}
	few, many := residual(2), residual(40)
	if many >= few {
		t.Fatalf("residual did not shrink: %g after 2 sweeps, %g after 40", few, many)
	}
}

// The static nearest-neighbour pattern is where update protocols shine on
// reads: boundary-row exchanges become hits.
func TestUpdateProtocolExploitsStaticPattern(t *testing.T) {
	inv := runSOR(t, memsys.KindRCInv, Small(), 16)
	_ = inv
	run := func(kind memsys.Kind) memsys.Time {
		app := New(Small())
		m := machine.MustNew(kind, memsys.Default(16))
		res, err := apps.Run(app, m)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalReadStall()
	}
	if upd, invS := run(memsys.KindRCUpd), run(memsys.KindRCInv); float64(upd) > 0.5*float64(invS) {
		t.Fatalf("RCupd read stall %d should be well below RCinv's %d on a static pattern", upd, invS)
	}
}

func TestStripPartition(t *testing.T) {
	s := New(Config{N: 13, Sweeps: 1})
	covered := 0
	prevHi := 0
	for p := 0; p < 5; p++ {
		lo, hi := s.strip(p, 5)
		if lo != prevHi+1 && lo <= s.cfg.N {
			t.Fatalf("gap before row %d", lo)
		}
		if hi >= lo {
			covered += hi - lo + 1
			prevHi = hi
		}
	}
	if covered != 13 {
		t.Fatalf("covered %d rows, want 13", covered)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{N: 1, Sweeps: 1})
}
