// Package intsort implements the NAS Integer Sort kernel (paper §5): a
// parallel bucket sort ranking a list of integers. The communication
// pattern is well defined statically — each processor writes its own row of
// the bucket-count matrix and reads the columns of every other processor's
// row — making IS the paper's low-reuse, all-to-all workload.
package intsort

import (
	"fmt"
	"math/rand"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/psync"
	"zsim/internal/shm"
)

// Config sizes the kernel.
type Config struct {
	N       int   // number of keys
	Buckets int   // number of buckets (keys are uniform in [0, Buckets))
	Seed    int64 // RNG seed for key generation

	// Iterations repeats the ranking, per the NAS specification (the full
	// benchmark ranks 10 times). Re-ranking is where update protocols
	// hurt: every processor's count-matrix row was read by everyone in
	// the previous iteration, so each re-write fans updates to all of
	// them. The keys are kept constant across iterations (the NAS kernel
	// perturbs two per iteration; constant keys preserve the
	// communication pattern with byte-identical output). 0 means 1.
	Iterations int
}

// Paper returns the paper's problem size: 32K integers, 1K buckets, one
// ranking pass. (The full NAS kernel ranks 10 times — set Iterations for
// that; see EXPERIMENTS.md Figure 3 for how the iteration count moves the
// result between the paper's two IS observations.)
func Paper() Config { return Config{N: 32768, Buckets: 1024, Seed: 1995} }

// Small returns a reduced instance for fast tests (a single iteration).
func Small() Config { return Config{N: 2048, Buckets: 64, Seed: 7} }

// IS is one Integer Sort run.
type IS struct {
	cfg Config

	keys      shm.I64 // [N] input keys
	counts    shm.I64 // [P*B] per-processor bucket counts (row p at p*B)
	offsets   shm.I64 // [B] global exclusive bucket start offsets
	sliceSums shm.I64 // [P] per-slice key totals for the cross-slice scan
	ranks     shm.I64 // [N] output ranks

	bar   *psync.Barrier
	input []int64 // private copy for verification
}

// New returns an Integer Sort application instance.
func New(cfg Config) *IS {
	if cfg.N <= 0 || cfg.Buckets <= 0 {
		panic(fmt.Sprintf("intsort: bad config %+v", cfg))
	}
	return &IS{cfg: cfg}
}

// Name implements apps.App.
func (s *IS) Name() string { return "is" }

// Setup implements apps.App.
func (s *IS) Setup(m *machine.Machine) {
	p := m.NumProcs()
	s.keys = shm.NewI64(m.Heap, s.cfg.N)
	s.counts = shm.NewI64(m.Heap, p*s.cfg.Buckets)
	s.offsets = shm.NewI64(m.Heap, s.cfg.Buckets)
	s.sliceSums = shm.NewI64(m.Heap, p)
	s.ranks = shm.NewI64(m.Heap, s.cfg.N)
	s.bar = psync.NewBarrier(m)

	rng := rand.New(rand.NewSource(s.cfg.Seed))
	s.input = make([]int64, s.cfg.N)
	for i := range s.input {
		s.input[i] = int64(rng.Intn(s.cfg.Buckets))
		m.PokeU64(s.keys.At(i), uint64(s.input[i]))
	}
}

// block returns the [lo,hi) share of n items owned by processor p of np.
func block(n, p, np int) (lo, hi int) {
	per := (n + np - 1) / np
	lo = p * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return
}

// Body implements apps.App. The phases follow the NAS IS ranking algorithm:
// local histogram, count-matrix publication, two-pass parallel prefix over
// buckets, then ranking.
func (s *IS) Body(e *machine.Env) {
	iters := s.cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		s.rank(e)
	}
}

// rank performs one ranking iteration.
func (s *IS) rank(e *machine.Env) {
	p, np, b := e.ID(), e.NumProcs(), s.cfg.Buckets
	lo, hi := block(s.cfg.N, p, np)

	// Phase 1: local histogram of this processor's keys.
	local := make([]int64, b)
	for i := lo; i < hi; i++ {
		k := s.keys.Get(e, i)
		local[k]++
		e.Compute(apps.CostLoop + apps.CostInt)
	}

	// Publish this processor's row of the count matrix.
	for j := 0; j < b; j++ {
		s.counts.Set(e, p*b+j, local[j])
		e.Compute(apps.CostLoop)
	}
	s.bar.Wait(e)

	// Phase 2a: bucket totals and the within-slice exclusive prefix for
	// this processor's bucket slice.
	blo, bhi := block(b, p, np)
	var running int64
	for j := blo; j < bhi; j++ {
		var tot int64
		for q := 0; q < np; q++ {
			tot += s.counts.Get(e, q*b+j)
			e.Compute(apps.CostLoop + apps.CostInt)
		}
		s.offsets.Set(e, j, running)
		running += tot
	}
	s.sliceSums.Set(e, p, running)
	s.bar.Wait(e)

	// Phase 2b: add the cross-slice base to this slice's offsets.
	var base int64
	for q := 0; q < p; q++ {
		base += s.sliceSums.Get(e, q)
		e.Compute(apps.CostLoop + apps.CostInt)
	}
	for j := blo; j < bhi; j++ {
		s.offsets.Set(e, j, s.offsets.Get(e, j)+base)
		e.Compute(apps.CostLoop + apps.CostInt)
	}
	s.bar.Wait(e)

	// Phase 3: rank this processor's keys. A key's rank is the bucket's
	// global offset, plus the keys lower processors put in the bucket,
	// plus this processor's running count — stable counting-sort order.
	interBase := make([]int64, b)
	for j := 0; j < b; j++ {
		for q := 0; q < p; q++ {
			interBase[j] += s.counts.Get(e, q*b+j)
			e.Compute(apps.CostLoop + apps.CostInt)
		}
	}
	seen := make([]int64, b)
	for i := lo; i < hi; i++ {
		k := int(s.keys.Get(e, i))
		rank := s.offsets.Get(e, k) + interBase[k] + seen[k]
		seen[k]++
		s.ranks.Set(e, i, rank)
		e.Compute(apps.CostLoop + 3*apps.CostInt)
	}
	s.bar.Wait(e)
}

// RanksSnapshot returns the computed ranks (for cross-system comparisons).
func (s *IS) RanksSnapshot(m *machine.Machine) []uint64 {
	out := make([]uint64, s.cfg.N)
	for i := range out {
		out[i] = m.PeekU64(s.ranks.At(i))
	}
	return out
}

// Verify implements apps.App: the computed ranks must equal the stable
// sequential counting-sort ranks of the same input.
func (s *IS) Verify(m *machine.Machine) error {
	want := SequentialRanks(s.input, s.cfg.Buckets)
	seen := make([]bool, s.cfg.N)
	for i := 0; i < s.cfg.N; i++ {
		r := int64(m.PeekU64(s.ranks.At(i)))
		if r < 0 || r >= int64(s.cfg.N) {
			return fmt.Errorf("intsort: rank[%d] = %d out of range", i, r)
		}
		if seen[r] {
			return fmt.Errorf("intsort: duplicate rank %d (not a permutation)", r)
		}
		seen[r] = true
		if r != want[i] {
			return fmt.Errorf("intsort: rank[%d] = %d, want %d", i, r, want[i])
		}
	}
	return nil
}

// SequentialRanks is the reference: stable counting-sort ranks.
func SequentialRanks(keys []int64, buckets int) []int64 {
	counts := make([]int64, buckets)
	for _, k := range keys {
		counts[k]++
	}
	offsets := make([]int64, buckets)
	var run int64
	for b := 0; b < buckets; b++ {
		offsets[b] = run
		run += counts[b]
	}
	ranks := make([]int64, len(keys))
	next := append([]int64(nil), offsets...)
	for i, k := range keys {
		ranks[i] = next[k]
		next[k]++
	}
	return ranks
}
