package intsort

import (
	"sort"
	"testing"
)

// FuzzSequentialRanks: for arbitrary inputs, the reference ranking is a
// permutation that stably sorts the keys.
func FuzzSequentialRanks(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		const buckets = 64
		keys := make([]int64, len(raw))
		for i, b := range raw {
			keys[i] = int64(b) % buckets
		}
		ranks := SequentialRanks(keys, buckets)
		if len(ranks) != len(keys) {
			t.Fatalf("rank count %d != key count %d", len(ranks), len(keys))
		}
		seen := make([]bool, len(keys))
		sorted := make([]int64, len(keys))
		for i, r := range ranks {
			if r < 0 || int(r) >= len(keys) || seen[r] {
				t.Fatalf("ranks are not a permutation: %v", ranks)
			}
			seen[r] = true
			sorted[r] = keys[i]
		}
		if !sort.SliceIsSorted(sorted, func(a, b int) bool { return sorted[a] < sorted[b] }) {
			t.Fatalf("ranks do not sort the keys")
		}
		// Stability: equal keys keep input order.
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[i] == keys[j] && ranks[i] > ranks[j] {
					t.Fatalf("unstable: keys[%d]==keys[%d] but ranks reversed", i, j)
				}
			}
		}
	})
}
