package intsort

import (
	"sort"
	"testing"
	"testing/quick"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/stats"
)

func runIS(t *testing.T, kind memsys.Kind, cfg Config, procs int) *IS {
	t.Helper()
	app := New(cfg)
	m := machine.MustNew(kind, memsys.Default(procs))
	if _, err := apps.Run(app, m); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return app
}

func TestCorrectOnEverySystem(t *testing.T) {
	for _, kind := range memsys.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			runIS(t, kind, Small(), 16)
		})
	}
}

func TestOddSizes(t *testing.T) {
	// N not divisible by P, buckets not divisible by P.
	cfg := Config{N: 1021, Buckets: 37, Seed: 3}
	runIS(t, memsys.KindRCInv, cfg, 16)
}

func TestFewerProcsThanBuckets(t *testing.T) {
	runIS(t, memsys.KindRCUpd, Config{N: 256, Buckets: 8, Seed: 5}, 4)
}

func TestSingleProc(t *testing.T) {
	runIS(t, memsys.KindRCInv, Config{N: 128, Buckets: 16, Seed: 9}, 1)
}

func TestSequentialRanksSortTheKeys(t *testing.T) {
	keys := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	ranks := SequentialRanks(keys, 10)
	sorted := make([]int64, len(keys))
	for i, r := range ranks {
		sorted[r] = keys[i]
	}
	if !sort.SliceIsSorted(sorted, func(a, b int) bool { return sorted[a] < sorted[b] }) {
		t.Fatalf("ranks do not sort: %v", sorted)
	}
}

func TestSequentialRanksStable(t *testing.T) {
	keys := []int64{2, 2, 2}
	ranks := SequentialRanks(keys, 3)
	if ranks[0] != 0 || ranks[1] != 1 || ranks[2] != 2 {
		t.Fatalf("equal keys must rank in input order: %v", ranks)
	}
}

// Property: for random small inputs the sequential ranks are always a
// permutation that sorts the keys.
func TestSequentialRanksProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]int64, len(raw))
		for i, r := range raw {
			keys[i] = int64(r % 16)
		}
		ranks := SequentialRanks(keys, 16)
		seen := make([]bool, len(keys))
		sorted := make([]int64, len(keys))
		for i, r := range ranks {
			if r < 0 || int(r) >= len(keys) || seen[r] {
				return false
			}
			seen[r] = true
			sorted[r] = keys[i]
		}
		return sort.SliceIsSorted(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	r1 := func() uint64 {
		app := New(Small())
		m := machine.MustNew(memsys.KindRCInv, memsys.Default(16))
		res, err := apps.Run(app, m)
		if err != nil {
			t.Fatal(err)
		}
		return uint64(res.ExecTime)
	}
	if a, b := r1(), r1(); a != b {
		t.Fatalf("execution time not deterministic: %d vs %d", a, b)
	}
}

func TestBlockPartition(t *testing.T) {
	// The blocks must tile [0,n) without gaps or overlap, for awkward n.
	for _, n := range []int{0, 1, 15, 16, 17, 1021} {
		covered := 0
		prevHi := 0
		for p := 0; p < 16; p++ {
			lo, hi := block(n, p, 16)
			if lo < prevHi {
				t.Fatalf("n=%d p=%d: overlap", n, p)
			}
			if lo != prevHi && lo < n {
				t.Fatalf("n=%d p=%d: gap before %d", n, p, lo)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n {
			t.Fatalf("n=%d: covered %d", n, covered)
		}
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := Paper()
	if cfg.N != 32768 || cfg.Buckets != 1024 {
		t.Fatalf("paper config = %+v, want 32K keys / 1K buckets", cfg)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestMoreBucketsThanKeys(t *testing.T) {
	runIS(t, memsys.KindRCInv, Config{N: 32, Buckets: 512, Seed: 4}, 16)
}

func TestRanksSnapshot(t *testing.T) {
	cfg := Config{N: 64, Buckets: 8, Seed: 2}
	app := New(cfg)
	m := machine.MustNew(memsys.KindPRAM, memsys.Default(4))
	if _, err := apps.Run(app, m); err != nil {
		t.Fatal(err)
	}
	snap := app.RanksSnapshot(m)
	if len(snap) != cfg.N {
		t.Fatalf("snapshot length %d", len(snap))
	}
	want := SequentialRanks(app.input, cfg.Buckets)
	for i, r := range snap {
		if int64(r) != want[i] {
			t.Fatalf("snapshot[%d] = %d, want %d", i, r, want[i])
		}
	}
}

func TestIteratedRanking(t *testing.T) {
	// Multiple ranking iterations produce the same (verified) output.
	runIS(t, memsys.KindRCInv, Config{N: 512, Buckets: 32, Seed: 6, Iterations: 3}, 16)
	runIS(t, memsys.KindRCUpd, Config{N: 512, Buckets: 32, Seed: 6, Iterations: 3}, 16)
}

// Re-ranking is where the paper's IS punishes update protocols: after the
// first iteration every count-matrix row has many sharers, so each
// re-write fans out updates, and RCupd's overhead percentage (the figure's
// headline metric) overtakes RCinv's — the paper's Figure 3 ordering
// (56.4% vs 29.3% there; see EXPERIMENTS.md for our paper-scale numbers).
func TestIterationsPunishUpdates(t *testing.T) {
	run := func(kind memsys.Kind, iters int) *stats.Result {
		app := New(Config{N: 2048, Buckets: 64, Seed: 6, Iterations: iters})
		m := machine.MustNew(kind, memsys.Default(16))
		res, err := apps.Run(app, m)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inv := run(memsys.KindRCInv, 5)
	upd := run(memsys.KindRCUpd, 5)
	if upd.OverheadPct() <= inv.OverheadPct() {
		t.Fatalf("iterated IS: rcupd overhead %.2f%% should exceed rcinv %.2f%%",
			upd.OverheadPct(), inv.OverheadPct())
	}
	// The mechanism: update-family write stall dwarfs the invalidate
	// family's once rows are re-written into established sharer sets.
	if upd.TotalWriteStall() <= inv.TotalWriteStall() {
		t.Fatalf("iterated IS: rcupd write stall %d should exceed rcinv %d",
			upd.TotalWriteStall(), inv.TotalWriteStall())
	}
}
