// Package apps defines the application interface of the workload harness
// and hosts the four benchmark applications of the paper's evaluation in its
// subpackages: Cholesky and Barnes-Hut (SPLASH), Integer Sort (NAS), and
// Maxflow (Anderson–Setubal push-relabel).
//
// Applications are real parallel programs: every shared datum lives in the
// simulated address space and every access goes through machine.Env, while
// local computation charges explicit cycle costs. The cost model substitutes
// for SPASM's instruction-level cycle counting (see DESIGN.md §3); the
// constants below are loosely calibrated to a simple RISC core.
package apps

import (
	"zsim/internal/machine"
	"zsim/internal/stats"
)

// App is a runnable benchmark application.
type App interface {
	// Name identifies the application in results ("cholesky", "is", ...).
	Name() string
	// Setup allocates and initializes the shared data (untimed, as if the
	// input were loaded before measurement starts).
	Setup(m *machine.Machine)
	// Body is the per-processor program.
	Body(e *machine.Env)
	// Verify checks the run's output against a sequential reference.
	Verify(m *machine.Machine) error
}

// Cycle costs of local computation, charged via Env.Compute. One simulated
// cycle ≈ one simple integer op; floating point and branches cost more.
const (
	CostLoop  = 2  // loop bookkeeping per iteration
	CostInt   = 1  // integer ALU op
	CostFlop  = 4  // floating-point add/mul
	CostDiv   = 16 // floating-point divide
	CostSqrt  = 20 // floating-point square root
	CostCheck = 2  // comparison + branch
	CostIdle  = 50 // back-off while polling for work
)

// Run executes app on the given fresh machine: Setup, the parallel Body on
// every processor, then Verify. It returns the run's statistics and the
// verification error, if any.
func Run(app App, m *machine.Machine) (*stats.Result, error) {
	app.Setup(m)
	res := m.Run(app.Name(), app.Body)
	return res, app.Verify(m)
}
