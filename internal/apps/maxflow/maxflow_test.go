package maxflow

import (
	"testing"
	"testing/quick"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
)

func runMF(t *testing.T, kind memsys.Kind, cfg Config, procs int) *MF {
	t.Helper()
	app := New(cfg)
	m := machine.MustNew(kind, memsys.Default(procs))
	if _, err := apps.Run(app, m); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return app
}

func TestCorrectOnEverySystem(t *testing.T) {
	for _, kind := range memsys.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			runMF(t, kind, Small(), 16)
		})
	}
}

func TestSingleProc(t *testing.T) {
	runMF(t, memsys.KindRCInv, Config{Vertices: 20, Edges: 30, MaxCap: 10, Seed: 2, HighWater: 4}, 1)
}

func TestFourProcs(t *testing.T) {
	runMF(t, memsys.KindRCUpd, Small(), 4)
}

func TestSeveralSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := Small()
		cfg.Seed = seed
		runMF(t, memsys.KindRCAdapt, cfg, 8)
	}
}

func TestGenerateShape(t *testing.T) {
	g := Generate(200, 400, 100, 1995)
	if g.N != 200 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Arcs() != 800 {
		t.Fatalf("arcs = %d, want 800 (400 bidirectional edges)", g.Arcs())
	}
	for a := 0; a < g.Arcs(); a++ {
		if g.Cap[a] < 1 || g.Cap[a] > 100 {
			t.Fatalf("cap[%d] = %d out of range", a, g.Cap[a])
		}
		if g.Head[a] != g.Tail[Rev(a)] || g.Tail[a] != g.Head[Rev(a)] {
			t.Fatalf("arc %d and its reverse disagree", a)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(50, 100, 20, 7)
	b := Generate(50, 100, 20, 7)
	for i := range a.Cap {
		if a.Cap[i] != b.Cap[i] || a.Head[i] != b.Head[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGeneratePositiveFlow(t *testing.T) {
	// The backbone guarantees a source-to-sink path, so max flow > 0.
	for seed := int64(1); seed <= 10; seed++ {
		g := Generate(30, 60, 10, seed)
		if MaxFlowEK(g) <= 0 {
			t.Fatalf("seed %d: nonpositive max flow", seed)
		}
	}
}

func TestEKKnownAnswer(t *testing.T) {
	// Hand-built graph: s=0, t=3; two disjoint paths of bottleneck 3 and 2.
	g := &Graph{N: 4}
	add := func(u, v int, c int64) {
		g.Tail = append(g.Tail, u, v)
		g.Head = append(g.Head, v, u)
		g.Cap = append(g.Cap, c, 0)
	}
	add(0, 1, 3)
	add(1, 3, 5)
	add(0, 2, 2)
	add(2, 3, 2)
	// CSR.
	deg := make([]int, g.N)
	for a := range g.Head {
		deg[g.Tail[a]]++
	}
	g.AdjStart = make([]int, g.N+1)
	for v := 0; v < g.N; v++ {
		g.AdjStart[v+1] = g.AdjStart[v] + deg[v]
	}
	g.AdjArcs = make([]int, len(g.Head))
	next := append([]int(nil), g.AdjStart[:g.N]...)
	for a := range g.Head {
		g.AdjArcs[next[g.Tail[a]]] = a
		next[g.Tail[a]]++
	}
	if got := MaxFlowEK(g); got != 5 {
		t.Fatalf("EK = %d, want 5", got)
	}
}

func TestBFSHeightsValid(t *testing.T) {
	g := Generate(40, 80, 10, 3)
	h := BFSHeights(g)
	if h[g.Sink()] != 0 {
		t.Fatalf("sink height = %d", h[g.Sink()])
	}
	if h[g.Source()] != int64(g.N) {
		t.Fatalf("source height = %d, want N", h[g.Source()])
	}
	// Valid labelling: h(u) <= h(v)+1 for every residual arc u->v.
	for a := 0; a < g.Arcs(); a++ {
		u, v := g.Tail[a], g.Head[a]
		if u == g.Source() || g.Cap[a] == 0 {
			continue
		}
		if h[u] > h[v]+1 && h[u] < int64(2*g.N) {
			t.Fatalf("invalid labelling on arc %d->%d: %d > %d+1", u, v, h[u], h[v])
		}
	}
}

// Property: the parallel flow equals the sequential flow for random small
// graphs across two contrasting memory systems.
func TestParallelMatchesSequentialProperty(t *testing.T) {
	f := func(seed uint8, invProto bool) bool {
		cfg := Config{Vertices: 16, Edges: 24, MaxCap: 9, Seed: int64(seed) + 1, HighWater: 3}
		kind := memsys.KindRCUpd
		if invProto {
			kind = memsys.KindRCInv
		}
		app := New(cfg)
		m := machine.MustNew(kind, memsys.Default(8))
		_, err := apps.Run(app, m)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(1, 0, 5, 1)
}

func TestHighWaterDefaults(t *testing.T) {
	mf := New(Config{Vertices: 10, Edges: 12, MaxCap: 5, Seed: 1}) // HighWater unset
	if mf.cfg.HighWater <= 0 {
		t.Fatal("HighWater default not applied")
	}
}

func TestDenseGraph(t *testing.T) {
	// Nearly complete small graph: stresses the lock-ordered push path.
	runMF(t, memsys.KindRCInv, Config{Vertices: 8, Edges: 24, MaxCap: 6, Seed: 9, HighWater: 2}, 16)
}
