package maxflow

import (
	"fmt"
	"math/rand"
)

// Graph is the static flow network: directed arcs in residual pairs (arc i
// and arc i^1 are each other's reverse). The structure is immutable during
// a run; only residual capacities, excesses, and heights live in simulated
// shared memory.
type Graph struct {
	N        int     // vertices; source = 0, sink = N-1
	Head     []int   // Head[a]: target vertex of arc a
	Tail     []int   // Tail[a]: source vertex of arc a
	Cap      []int64 // Cap[a]: capacity of arc a
	AdjStart []int   // CSR offsets into AdjArcs per vertex
	AdjArcs  []int   // arc ids leaving each vertex (both directions' arcs)
}

// Source returns the source vertex.
func (g *Graph) Source() int { return 0 }

// Sink returns the sink vertex.
func (g *Graph) Sink() int { return g.N - 1 }

// Arcs returns the number of directed arcs (2 per undirected edge).
func (g *Graph) Arcs() int { return len(g.Head) }

// Rev returns the reverse arc of a.
func Rev(a int) int { return a ^ 1 }

// Generate builds the deterministic random flow network of the evaluation:
// a Hamiltonian backbone from source to sink (guaranteeing connectivity and
// nonzero max flow) plus random extra bidirectional edges, with capacities
// uniform in [1, maxCap].
func Generate(vertices, edges int, maxCap int64, seed int64) *Graph {
	if vertices < 2 || edges < vertices-1 {
		panic(fmt.Sprintf("maxflow: need >=2 vertices and >=V-1 edges, got %d/%d", vertices, edges))
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: vertices}

	type pair struct{ u, v int }
	used := map[pair]bool{}
	addEdge := func(u, v int, c1, c2 int64) {
		g.Tail = append(g.Tail, u, v)
		g.Head = append(g.Head, v, u)
		g.Cap = append(g.Cap, c1, c2)
		used[pair{u, v}] = true
		used[pair{v, u}] = true
	}
	cap1 := func() int64 { return 1 + rng.Int63n(maxCap) }

	// Backbone: a random permutation path from source to sink.
	perm := rng.Perm(vertices - 2)
	path := make([]int, 0, vertices)
	path = append(path, 0)
	for _, p := range perm {
		path = append(path, p+1)
	}
	path = append(path, vertices-1)
	for i := 0; i+1 < len(path); i++ {
		addEdge(path[i], path[i+1], cap1(), cap1())
	}

	// Random extra edges.
	for len(g.Head)/2 < edges {
		u, v := rng.Intn(vertices), rng.Intn(vertices)
		if u == v || used[pair{u, v}] {
			continue
		}
		addEdge(u, v, cap1(), cap1())
	}

	// CSR adjacency.
	deg := make([]int, vertices)
	for a := range g.Head {
		deg[g.Tail[a]]++
	}
	g.AdjStart = make([]int, vertices+1)
	for v := 0; v < vertices; v++ {
		g.AdjStart[v+1] = g.AdjStart[v] + deg[v]
	}
	g.AdjArcs = make([]int, len(g.Head))
	next := append([]int(nil), g.AdjStart[:vertices]...)
	for a := range g.Head {
		u := g.Tail[a]
		g.AdjArcs[next[u]] = a
		next[u]++
	}
	return g
}

// MaxFlowEK computes the exact maximum flow with Edmonds-Karp — the
// sequential reference the parallel push-relabel result is validated
// against.
func MaxFlowEK(g *Graph) int64 {
	res := append([]int64(nil), g.Cap...)
	s, t := g.Source(), g.Sink()
	var total int64
	parentArc := make([]int, g.N)
	for {
		for i := range parentArc {
			parentArc[i] = -1
		}
		// BFS on the residual graph.
		queue := []int{s}
		parentArc[s] = -2
		for len(queue) > 0 && parentArc[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for i := g.AdjStart[u]; i < g.AdjStart[u+1]; i++ {
				a := g.AdjArcs[i]
				v := g.Head[a]
				if res[a] > 0 && parentArc[v] == -1 {
					parentArc[v] = a
					queue = append(queue, v)
				}
			}
		}
		if parentArc[t] == -1 {
			return total
		}
		// Bottleneck.
		aug := int64(1) << 62
		for v := t; v != s; {
			a := parentArc[v]
			if res[a] < aug {
				aug = res[a]
			}
			v = g.Tail[a]
		}
		for v := t; v != s; {
			a := parentArc[v]
			res[a] -= aug
			res[Rev(a)] += aug
			v = g.Tail[a]
		}
		total += aug
	}
}

// BFSHeights returns exact distance-to-sink labels on the initial residual
// graph (every arc has positive capacity, so this is plain BFS on the
// reversed arcs); unreachable vertices get 2N.
func BFSHeights(g *Graph) []int64 {
	h := make([]int64, g.N)
	for i := range h {
		h[i] = int64(2 * g.N)
	}
	t := g.Sink()
	h[t] = 0
	queue := []int{t}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for i := g.AdjStart[u]; i < g.AdjStart[u+1]; i++ {
			a := g.AdjArcs[i]
			// Arc u->v in residual means flow could move v->u via Rev(a);
			// for height purposes we need arcs INTO u with capacity, i.e.
			// Rev(a) from v=Head[a] to u must have cap > 0.
			v := g.Head[a]
			if g.Cap[Rev(a)] > 0 && h[v] > h[u]+1 {
				h[v] = h[u] + 1
				queue = append(queue, v)
			}
		}
	}
	h[g.Source()] = int64(g.N)
	return h
}
