// Package maxflow implements the parallel Goldberg push-relabel maximum
// flow application of the paper's evaluation (after Anderson & Setubal):
// each processor discharges active vertices from a private local work
// queue, the local queues interact through a shared global queue for load
// balancing, and per-vertex locks protect excesses and heights. The
// producer-consumer relationship for shared data is dynamic and random —
// the paper's hardest case for update-based and adaptive protocols.
package maxflow

import (
	"fmt"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/psync"
	"zsim/internal/shm"
)

// Config sizes the problem.
type Config struct {
	Vertices  int   // graph vertices (paper: 200)
	Edges     int   // bidirectional edges (paper: 400)
	MaxCap    int64 // capacity range [1, MaxCap]
	Seed      int64
	HighWater int // local-queue length beyond which work is shared globally
}

// Paper returns the paper's problem size: a 200-vertex graph with 400
// bidirectional edges.
func Paper() Config { return Config{Vertices: 200, Edges: 400, MaxCap: 100, Seed: 1995, HighWater: 8} }

// Small returns a reduced instance for fast tests.
func Small() Config { return Config{Vertices: 40, Edges: 80, MaxCap: 20, Seed: 5, HighWater: 4} }

// MF is one Maxflow run.
type MF struct {
	cfg Config
	g   *Graph

	res    shm.I64 // [arcs] residual capacities
	height shm.I64 // [N]
	excess shm.I64 // [N]
	active shm.I64 // [N] 0/1: queued or being discharged
	curArc shm.I64 // [N] current-arc pointer (Goldberg's optimization)

	locks   []*psync.Lock
	nActive *psync.Counter
	globalQ *psync.Queue
	initBar *psync.Barrier
}

// New returns a Maxflow application instance.
func New(cfg Config) *MF {
	g := Generate(cfg.Vertices, cfg.Edges, cfg.MaxCap, cfg.Seed)
	if cfg.HighWater <= 0 {
		cfg.HighWater = 8
	}
	return &MF{cfg: cfg, g: g}
}

// Name implements apps.App.
func (f *MF) Name() string { return "maxflow" }

// Graph exposes the generated network (for tests and examples).
func (f *MF) Graph() *Graph { return f.g }

// Setup implements apps.App.
func (f *MF) Setup(m *machine.Machine) {
	g := f.g
	f.res = shm.NewI64(m.Heap, g.Arcs())
	f.height = shm.NewI64(m.Heap, g.N)
	f.excess = shm.NewI64(m.Heap, g.N)
	f.active = shm.NewI64(m.Heap, g.N)
	f.curArc = shm.NewI64(m.Heap, g.N)
	f.locks = make([]*psync.Lock, g.N)
	for v := range f.locks {
		f.locks[v] = psync.NewLock(m)
	}
	f.nActive = psync.NewCounter(m, 0)
	f.globalQ = psync.NewQueue(m, g.N*4)
	f.initBar = psync.NewBarrier(m)

	for a, c := range g.Cap {
		m.PokeU64(f.res.At(a), uint64(c))
	}
	heights := BFSHeights(g)
	for v, h := range heights {
		m.PokeU64(f.height.At(v), uint64(h))
	}
}

// Body implements apps.App.
func (f *MF) Body(e *machine.Env) {
	g := f.g
	s, t := g.Source(), g.Sink()
	var local []int64 // private local work queue (FIFO)

	// Initialization: processor 0 saturates the source's arcs.
	if e.ID() == 0 {
		for i := g.AdjStart[s]; i < g.AdjStart[s+1]; i++ {
			a := g.AdjArcs[i]
			d := f.res.Get(e, a)
			if d == 0 {
				continue
			}
			w := g.Head[a]
			f.res.Set(e, a, 0)
			f.res.Set(e, Rev(a), f.res.Get(e, Rev(a))+d)
			f.excess.Set(e, w, f.excess.Get(e, w)+d)
			f.excess.Set(e, s, f.excess.Get(e, s)-d)
			e.Compute(apps.CostLoop + 2*apps.CostInt)
			if w != s && w != t && f.active.Get(e, w) == 0 {
				f.active.Set(e, w, 1)
				f.nActive.Add(e, 1)
				f.globalQ.Push(e, int64(w))
			}
		}
	}
	f.initBar.Wait(e)

	guard := 0
	for {
		guard++
		if guard > 50_000_000 {
			panic("maxflow: discharge budget exceeded (algorithm diverged)")
		}
		var v int64
		switch {
		case len(local) > 0:
			v = local[0]
			local = local[1:]
		default:
			var ok bool
			v, ok = f.globalQ.TryPop(e)
			if !ok {
				if f.nActive.Get(e) == 0 {
					return // quiescent: the preflow is a maximum flow
				}
				e.Compute(apps.CostIdle) // back off and re-poll
				continue
			}
		}
		local = f.discharge(e, int(v), local)
	}
}

// enqueue routes a newly activated vertex to the local queue, spilling to
// the global queue above the high-water mark (the paper's load balancing).
func (f *MF) enqueue(e *machine.Env, local []int64, v int) []int64 {
	if len(local) >= f.cfg.HighWater {
		if f.globalQ.Push(e, int64(v)) {
			return local
		}
	}
	return append(local, int64(v))
}

// discharge pushes v's excess to admissible arcs, relabelling as needed,
// until the excess is gone. It returns the updated local queue.
func (f *MF) discharge(e *machine.Env, v int, local []int64) []int64 {
	g := f.g
	s, t := g.Source(), g.Sink()
	deg := g.AdjStart[v+1] - g.AdjStart[v]
	for {
		f.locks[v].Acquire(e)
		if f.excess.Get(e, v) == 0 {
			// Deactivate atomically with the zero-excess observation.
			f.active.Set(e, v, 0)
			f.nActive.Add(e, -1)
			f.locks[v].Release(e)
			return local
		}
		// Scan from the current arc for an admissible edge. Neighbor
		// heights are read optimistically (heights only rise; admissibility
		// is re-verified under both locks before the push applies).
		cur := int(f.curArc.Get(e, v))
		hv := f.height.Get(e, v)
		pushArc := -1
		for k := 0; k < deg; k++ {
			a := g.AdjArcs[g.AdjStart[v]+(cur+k)%deg]
			e.Compute(apps.CostLoop + 2*apps.CostCheck)
			if f.res.Get(e, a) > 0 && hv == f.height.Get(e, g.Head[a])+1 {
				pushArc = a
				f.curArc.Set(e, v, int64((cur+k)%deg))
				break
			}
		}
		if pushArc < 0 {
			// Relabel: one above the lowest admissible neighbor.
			minH := int64(1) << 62
			for k := 0; k < deg; k++ {
				a := g.AdjArcs[g.AdjStart[v]+k]
				e.Compute(apps.CostLoop + apps.CostCheck)
				if f.res.Get(e, a) > 0 {
					if h := f.height.Get(e, g.Head[a]); h+1 < minH {
						minH = h + 1
					}
				}
			}
			if minH >= int64(1)<<62 {
				// No residual arcs at all: nothing more can leave v.
				f.active.Set(e, v, 0)
				f.nActive.Add(e, -1)
				f.locks[v].Release(e)
				return local
			}
			f.height.Set(e, v, minH)
			f.curArc.Set(e, v, 0)
			f.locks[v].Release(e)
			continue
		}
		// Lock-ordered push: release v, take both endpoint locks in id
		// order, and re-verify admissibility before applying.
		w := g.Head[pushArc]
		f.locks[v].Release(e)
		lo, hi := v, w
		if lo > hi {
			lo, hi = hi, lo
		}
		f.locks[lo].Acquire(e)
		f.locks[hi].Acquire(e)
		exv := f.excess.Get(e, v)
		r := f.res.Get(e, pushArc)
		stillAdmissible := r > 0 && exv > 0 && f.height.Get(e, v) == f.height.Get(e, w)+1
		wActivated := false
		if stillAdmissible {
			d := exv
			if r < d {
				d = r
			}
			f.res.Set(e, pushArc, r-d)
			f.res.Set(e, Rev(pushArc), f.res.Get(e, Rev(pushArc))+d)
			f.excess.Set(e, v, exv-d)
			f.excess.Set(e, w, f.excess.Get(e, w)+d)
			e.Compute(4 * apps.CostInt)
			if w != s && w != t && f.active.Get(e, w) == 0 && f.excess.Get(e, w) > 0 {
				f.active.Set(e, w, 1)
				f.nActive.Add(e, 1)
				wActivated = true
			}
		}
		f.locks[hi].Release(e)
		f.locks[lo].Release(e)
		if wActivated {
			local = f.enqueue(e, local, w)
		}
	}
}

// Verify implements apps.App: the computed flow must equal the sequential
// Edmonds-Karp maximum, respect capacities, and conserve flow.
func (f *MF) Verify(m *machine.Machine) error {
	g := f.g
	s, t := g.Source(), g.Sink()
	want := MaxFlowEK(g)
	got := int64(m.PeekU64(f.excess.At(t)))
	if got != want {
		return fmt.Errorf("maxflow: flow %d, reference %d", got, want)
	}
	// Residuals must be nonnegative (flow within capacity), and the net
	// flow into the sink must equal its excess. flow(a) = cap(a) − res(a)
	// is antisymmetric across a residual pair, so summing it over the arcs
	// whose head is t counts each pair's net contribution exactly once.
	var intoSink int64
	for a := 0; a < g.Arcs(); a++ {
		res := int64(m.PeekU64(f.res.At(a)))
		if res < 0 {
			return fmt.Errorf("maxflow: arc %d residual %d < 0", a, res)
		}
		if g.Head[a] == t {
			intoSink += g.Cap[a] - res
		}
	}
	if intoSink != got {
		return fmt.Errorf("maxflow: net flow into sink %d != sink excess %d", intoSink, got)
	}
	// Conservation at every interior vertex: final excess must be zero.
	for v := 0; v < g.N; v++ {
		if v == s || v == t {
			continue
		}
		if ex := int64(m.PeekU64(f.excess.At(v))); ex != 0 {
			return fmt.Errorf("maxflow: vertex %d retains excess %d", v, ex)
		}
	}
	return nil
}
