package barneshut

import (
	"math"
	"testing"
)

// refTree builds the reference (plain-Go) octree for hand-picked bodies by
// running one Reference step with dt=0 and returning nothing — instead we
// re-implement the minimal insert here to inspect structure directly.
type refTree struct {
	child []int64
	next  int64
}

func buildRefTree(bodies []Body, ccx, ccy, ccz, half float64) *refTree {
	t := &refTree{child: make([]int64, 8*64), next: 1}
	for i := range bodies {
		xi, yi, zi := bodies[i].X, bodies[i].Y, bodies[i].Z
		node, cx, cy, cz, nh := int64(0), ccx, ccy, ccz, half
		for {
			oct, ocx, ocy, ocz := octant(xi, yi, zi, cx, cy, cz, nh/2)
			slot := int(node*8) + oct
			v := t.child[slot]
			if v == 0 {
				t.child[slot] = encBody(int64(i))
				break
			}
			if v > 0 {
				node, cx, cy, cz, nh = v-1, ocx, ocy, ocz, nh/2
				continue
			}
			other := -v - 1
			m := t.next
			t.next++
			ob := bodies[other]
			ooct, _, _, _ := octant(ob.X, ob.Y, ob.Z, ocx, ocy, ocz, nh/4)
			t.child[int(m*8)+ooct] = encBody(other)
			t.child[slot] = encNode(m)
			node, cx, cy, cz, nh = m, ocx, ocy, ocz, nh/2
		}
	}
	return t
}

// Two bodies in opposite octants: both must hang directly off the root.
func TestTreeTwoBodiesOppositeOctants(t *testing.T) {
	bodies := []Body{
		{X: -0.5, Y: -0.5, Z: -0.5, M: 1},
		{X: 0.5, Y: 0.5, Z: 0.5, M: 1},
	}
	tr := buildRefTree(bodies, 0, 0, 0, 1)
	if tr.next != 1 {
		t.Fatalf("allocated %d internal nodes, want just the root", tr.next)
	}
	if tr.child[0] != encBody(0) { // octant 0: (-,-,-)
		t.Fatalf("octant 0 = %d, want body 0", tr.child[0])
	}
	if tr.child[7] != encBody(1) { // octant 7: (+,+,+)
		t.Fatalf("octant 7 = %d, want body 1", tr.child[7])
	}
}

// Two bodies in the same octant force a split: an internal node appears.
func TestTreeSplitOnSharedOctant(t *testing.T) {
	bodies := []Body{
		{X: 0.3, Y: 0.3, Z: 0.3, M: 1},
		{X: 0.7, Y: 0.7, Z: 0.7, M: 1},
	}
	tr := buildRefTree(bodies, 0, 0, 0, 1)
	if tr.next != 2 {
		t.Fatalf("allocated %d internal nodes, want a root plus one split", tr.next)
	}
	if tr.child[7] != encNode(1) {
		t.Fatalf("octant 7 = %d, want internal node 1", tr.child[7])
	}
	// Inside node 1 (cell center (0.5,0.5,0.5), half 0.5): body 0 goes to
	// the (-,-,-) child, body 1 to the (+,+,+) child.
	if tr.child[8+0] != encBody(0) || tr.child[8+7] != encBody(1) {
		t.Fatalf("split children wrong: %v", tr.child[8:16])
	}
}

// The center of mass of a two-body system is their weighted midpoint.
func TestMomentsTwoBodies(t *testing.T) {
	cfg := Config{NBodies: 2, Steps: 1, Theta: 0.5, Dt: 0, Eps2: 0.05, Seed: 1}
	init := []Body{
		{X: -0.5, Y: 0, Z: 0, M: 1},
		{X: 0.5, Y: 0, Z: 0, M: 3},
	}
	out := Reference(cfg, init)
	// dt = 0: positions unchanged; this exercises the build+moments path
	// without integration.
	if out[0].X != -0.5 || out[1].X != 0.5 {
		t.Fatalf("dt=0 moved bodies: %+v", out)
	}
}

// The pairwise kernel is antisymmetric up to the mass ratio: the force of
// j on i, scaled by m_i, balances the force of i on j scaled by m_j.
func TestDirectForcesNewtonThirdLaw(t *testing.T) {
	bodies := []Body{
		{X: 0, Y: 0, Z: 0, M: 2},
		{X: 1, Y: 0, Z: 0, M: 5},
	}
	fx, _, _ := DirectForces(bodies, 0.05)
	// DirectForces returns acceleration-like quantities (per unit mass of
	// the subject): m0*a0 = -m1*a1.
	if math.Abs(bodies[0].M*fx[0]+bodies[1].M*fx[1]) > 1e-12 {
		t.Fatalf("momentum not conserved: %g vs %g", bodies[0].M*fx[0], bodies[1].M*fx[1])
	}
	if fx[0] <= 0 || fx[1] >= 0 {
		t.Fatalf("forces point the wrong way: %g, %g", fx[0], fx[1])
	}
}

// A hand-checked softened two-body force value.
func TestDirectForcesKnownValue(t *testing.T) {
	bodies := []Body{
		{X: 0, Y: 0, Z: 0, M: 1},
		{X: 1, Y: 0, Z: 0, M: 1},
	}
	eps2 := 0.0
	fx, fy, fz := DirectForces(bodies, eps2)
	// d = 1 => |f| = m/d² = 1.
	if math.Abs(fx[0]-1) > 1e-15 || fy[0] != 0 || fz[0] != 0 {
		t.Fatalf("force = (%g,%g,%g), want (1,0,0)", fx[0], fy[0], fz[0])
	}
}
