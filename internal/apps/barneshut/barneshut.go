// Package barneshut implements the SPLASH-style Barnes-Hut N-body
// application of the paper's evaluation: bodies are statically assigned to
// processors and every time step goes through three barrier-separated
// phases — octree build, force computation, and position update. The
// producer-consumer relationship is well defined and changes gradually; per
// the paper's footnote, an artificial "boost" perturbs the sharing pattern
// every few time steps (here by rotating the body-to-processor assignment),
// simulating the drift of many more time steps.
package barneshut

import (
	"fmt"
	"math"
	"math/rand"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/psync"
	"zsim/internal/shm"
)

// Config sizes the simulation.
type Config struct {
	NBodies    int     // number of bodies
	Steps      int     // time steps
	BoostEvery int     // rotate the body assignment every this many steps (0 = never)
	Theta      float64 // opening criterion (0 = exact direct summation via the tree)
	Dt         float64 // integration step
	Eps2       float64 // softening (squared)
	Seed       int64
}

// Paper returns the paper's problem size: 128 bodies over 50 time steps
// with the sharing boost every 10 steps.
func Paper() Config {
	return Config{NBodies: 128, Steps: 50, BoostEvery: 10, Theta: 0.5, Dt: 0.005, Eps2: 0.05, Seed: 1995}
}

// Small returns a reduced instance for fast tests.
func Small() Config {
	return Config{NBodies: 32, Steps: 4, BoostEvery: 2, Theta: 0.5, Dt: 0.005, Eps2: 0.05, Seed: 11}
}

// child-slot encoding in the shared tree: 0 empty, k+1 internal node k,
// -(b+1) leaf holding body b.
func encNode(k int64) int64 { return k + 1 }
func encBody(b int64) int64 { return -(b + 1) }

// BH is one Barnes-Hut run.
type BH struct {
	cfg      Config
	maxNodes int

	// Bodies (struct-of-arrays in shared memory).
	x, y, z    shm.F64
	vx, vy, vz shm.F64
	fx, fy, fz shm.F64
	mass       shm.F64

	// Octree.
	child         shm.I64 // [8*maxNodes]
	nmass         shm.F64 // [maxNodes] node total mass
	ncx, ncy, ncz shm.F64 // [maxNodes] node center of mass
	rootInfo      shm.F64 // [4]: cx, cy, cz, half-width of the root cell
	bar           *psync.Barrier
	init          []Body // initial conditions for the reference
}

// Body is a plain (non-simulated) body state, used by the sequential
// reference and verification.
type Body struct {
	X, Y, Z    float64
	VX, VY, VZ float64
	M          float64
}

// New returns a Barnes-Hut application instance.
func New(cfg Config) *BH {
	if cfg.NBodies < 2 || cfg.Steps <= 0 {
		panic(fmt.Sprintf("barneshut: bad config %+v", cfg))
	}
	return &BH{cfg: cfg, maxNodes: 8*cfg.NBodies + 64}
}

// Name implements apps.App.
func (b *BH) Name() string { return "nbody" }

// InitialBodies generates the deterministic initial conditions: bodies in a
// unit ball with small velocities and zero net momentum.
func InitialBodies(cfg Config) []Body {
	rng := rand.New(rand.NewSource(cfg.Seed))
	bodies := make([]Body, cfg.NBodies)
	var px, py, pz float64
	for i := range bodies {
		// Rejection-sample the unit ball.
		var x, y, z float64
		for {
			x, y, z = 2*rng.Float64()-1, 2*rng.Float64()-1, 2*rng.Float64()-1
			if x*x+y*y+z*z <= 1 {
				break
			}
		}
		m := 1.0 / float64(cfg.NBodies)
		vx, vy, vz := 0.1*(2*rng.Float64()-1), 0.1*(2*rng.Float64()-1), 0.1*(2*rng.Float64()-1)
		bodies[i] = Body{X: x, Y: y, Z: z, VX: vx, VY: vy, VZ: vz, M: m}
		px += m * vx
		py += m * vy
		pz += m * vz
	}
	// Remove net momentum.
	for i := range bodies {
		bodies[i].VX -= px / (bodies[i].M * float64(cfg.NBodies))
		bodies[i].VY -= py / (bodies[i].M * float64(cfg.NBodies))
		bodies[i].VZ -= pz / (bodies[i].M * float64(cfg.NBodies))
	}
	return bodies
}

// Setup implements apps.App.
func (b *BH) Setup(m *machine.Machine) {
	n := b.cfg.NBodies
	b.x, b.y, b.z = shm.NewF64(m.Heap, n), shm.NewF64(m.Heap, n), shm.NewF64(m.Heap, n)
	b.vx, b.vy, b.vz = shm.NewF64(m.Heap, n), shm.NewF64(m.Heap, n), shm.NewF64(m.Heap, n)
	b.fx, b.fy, b.fz = shm.NewF64(m.Heap, n), shm.NewF64(m.Heap, n), shm.NewF64(m.Heap, n)
	b.mass = shm.NewF64(m.Heap, n)
	b.child = shm.NewI64(m.Heap, 8*b.maxNodes)
	b.nmass = shm.NewF64(m.Heap, b.maxNodes)
	b.ncx, b.ncy, b.ncz = shm.NewF64(m.Heap, b.maxNodes), shm.NewF64(m.Heap, b.maxNodes), shm.NewF64(m.Heap, b.maxNodes)
	b.rootInfo = shm.NewF64(m.Heap, 4)
	b.bar = psync.NewBarrier(m)

	b.init = InitialBodies(b.cfg)
	for i, bd := range b.init {
		m.PokeF64(b.x.At(i), bd.X)
		m.PokeF64(b.y.At(i), bd.Y)
		m.PokeF64(b.z.At(i), bd.Z)
		m.PokeF64(b.vx.At(i), bd.VX)
		m.PokeF64(b.vy.At(i), bd.VY)
		m.PokeF64(b.vz.At(i), bd.VZ)
		m.PokeF64(b.mass.At(i), bd.M)
	}
}

// owner returns the processor owning body i at the given rotation.
func owner(i, n, np, rot int) int {
	per := (n + np - 1) / np
	return (i/per + rot) % np
}

// Body implements apps.App.
func (b *BH) Body(e *machine.Env) {
	n, np := b.cfg.NBodies, e.NumProcs()
	rot := 0
	for step := 0; step < b.cfg.Steps; step++ {
		if b.cfg.BoostEvery > 0 && step > 0 && step%b.cfg.BoostEvery == 0 {
			rot++ // the artificial boost: new body-processor assignment
		}
		// Phase 1: processor 0 builds the octree.
		if e.ID() == 0 {
			b.buildTree(e)
		}
		b.bar.Wait(e)
		// Phase 2: compute forces for owned bodies.
		rootHalf := b.rootInfo.Get(e, 3)
		rcx, rcy, rcz := b.rootInfo.Get(e, 0), b.rootInfo.Get(e, 1), b.rootInfo.Get(e, 2)
		for i := 0; i < n; i++ {
			if owner(i, n, np, rot) != e.ID() {
				continue
			}
			xi, yi, zi := b.x.Get(e, i), b.y.Get(e, i), b.z.Get(e, i)
			fx, fy, fz := b.force(e, i, xi, yi, zi, 0, rcx, rcy, rcz, 2*rootHalf)
			b.fx.Set(e, i, fx)
			b.fy.Set(e, i, fy)
			b.fz.Set(e, i, fz)
			e.Compute(apps.CostLoop)
		}
		b.bar.Wait(e)
		// Phase 3: integrate owned bodies.
		for i := 0; i < n; i++ {
			if owner(i, n, np, rot) != e.ID() {
				continue
			}
			m := b.mass.Get(e, i)
			vx := b.vx.Get(e, i) + b.fx.Get(e, i)/m*b.cfg.Dt
			vy := b.vy.Get(e, i) + b.fy.Get(e, i)/m*b.cfg.Dt
			vz := b.vz.Get(e, i) + b.fz.Get(e, i)/m*b.cfg.Dt
			b.vx.Set(e, i, vx)
			b.vy.Set(e, i, vy)
			b.vz.Set(e, i, vz)
			b.x.Set(e, i, b.x.Get(e, i)+vx*b.cfg.Dt)
			b.y.Set(e, i, b.y.Get(e, i)+vy*b.cfg.Dt)
			b.z.Set(e, i, b.z.Get(e, i)+vz*b.cfg.Dt)
			e.Compute(apps.CostLoop + 6*apps.CostFlop + 3*apps.CostDiv)
		}
		b.bar.Wait(e)
	}
}

// buildTree is phase 1, run by processor 0: bounding cube, insertion, and
// bottom-up moments, all through simulated shared accesses.
func (b *BH) buildTree(e *machine.Env) {
	n := b.cfg.NBodies
	// Bounding cube.
	minv, maxv := math.Inf(1), math.Inf(-1)
	var cx, cy, cz float64
	for i := 0; i < n; i++ {
		xi, yi, zi := b.x.Get(e, i), b.y.Get(e, i), b.z.Get(e, i)
		for _, v := range [3]float64{xi, yi, zi} {
			if v < minv {
				minv = v
			}
			if v > maxv {
				maxv = v
			}
		}
		cx += xi
		cy += yi
		cz += zi
		e.Compute(apps.CostLoop + 6*apps.CostCheck)
	}
	half := (maxv-minv)/2 + 1e-9
	ccx, ccy, ccz := (maxv+minv)/2, (maxv+minv)/2, (maxv+minv)/2
	b.rootInfo.Set(e, 0, ccx)
	b.rootInfo.Set(e, 1, ccy)
	b.rootInfo.Set(e, 2, ccz)
	b.rootInfo.Set(e, 3, half)

	// Reset the root's children; other nodes are reset on allocation.
	for c := 0; c < 8; c++ {
		b.child.Set(e, c, 0)
	}
	nextNode := int64(1)

	// Insert every body.
	for i := 0; i < n; i++ {
		xi, yi, zi := b.x.Get(e, i), b.y.Get(e, i), b.z.Get(e, i)
		node, ncx, ncy, ncz, nh := int64(0), ccx, ccy, ccz, half
		for depth := 0; ; depth++ {
			if depth > 128 {
				panic("barneshut: tree depth exceeded (coincident bodies?)")
			}
			oct, ocx, ocy, ocz := octant(xi, yi, zi, ncx, ncy, ncz, nh/2)
			e.Compute(3*apps.CostCheck + 3*apps.CostFlop)
			slot := int(node*8) + oct
			v := b.child.Get(e, slot)
			if v == 0 {
				b.child.Set(e, slot, encBody(int64(i)))
				break
			}
			if v > 0 { // internal: descend
				node, ncx, ncy, ncz, nh = v-1, ocx, ocy, ocz, nh/2
				continue
			}
			// Occupied by a leaf: split the cell.
			other := -v - 1
			if nextNode >= int64(b.maxNodes) {
				panic("barneshut: out of tree nodes")
			}
			m := nextNode
			nextNode++
			for c := 0; c < 8; c++ {
				b.child.Set(e, int(m*8)+c, 0)
			}
			ox, oy, oz := b.x.Get(e, int(other)), b.y.Get(e, int(other)), b.z.Get(e, int(other))
			ooct, _, _, _ := octant(ox, oy, oz, ocx, ocy, ocz, nh/4)
			b.child.Set(e, int(m*8)+ooct, encBody(other))
			b.child.Set(e, slot, encNode(m))
			node, ncx, ncy, ncz, nh = m, ocx, ocy, ocz, nh/2
		}
	}

	// Bottom-up moments (post-order from the root).
	b.moments(e, 0)
}

// moments computes a node's total mass and center of mass recursively.
func (b *BH) moments(e *machine.Env, node int64) (m, cx, cy, cz float64) {
	for c := 0; c < 8; c++ {
		v := b.child.Get(e, int(node*8)+c)
		switch {
		case v == 0:
		case v > 0:
			cm, ccx, ccy, ccz := b.moments(e, v-1)
			m += cm
			cx += cm * ccx
			cy += cm * ccy
			cz += cm * ccz
			e.Compute(7 * apps.CostFlop)
		default:
			bd := int(-v - 1)
			bm := b.mass.Get(e, bd)
			m += bm
			cx += bm * b.x.Get(e, bd)
			cy += bm * b.y.Get(e, bd)
			cz += bm * b.z.Get(e, bd)
			e.Compute(7 * apps.CostFlop)
		}
	}
	if m > 0 {
		cx /= m
		cy /= m
		cz /= m
		e.Compute(3 * apps.CostDiv)
	}
	b.nmass.Set(e, int(node), m)
	b.ncx.Set(e, int(node), cx)
	b.ncy.Set(e, int(node), cy)
	b.ncz.Set(e, int(node), cz)
	return m, cx, cy, cz
}

// force accumulates the force on body i from the subtree rooted at node
// (whose cell has the given center and side), using the theta opening
// criterion.
func (b *BH) force(e *machine.Env, i int, xi, yi, zi float64, node int64, ncx, ncy, ncz, size float64) (fx, fy, fz float64) {
	for c := 0; c < 8; c++ {
		v := b.child.Get(e, int(node*8)+c)
		if v == 0 {
			continue
		}
		ocx := ncx + off(int64(c&1))*size/4
		ocy := ncy + off(int64((c>>1)&1))*size/4
		ocz := ncz + off(int64((c>>2)&1))*size/4
		if v < 0 {
			bd := int(-v - 1)
			if bd == i {
				continue
			}
			gx, gy, gz := b.pair(e, xi, yi, zi, b.x.Get(e, bd), b.y.Get(e, bd), b.z.Get(e, bd), b.mass.Get(e, bd))
			fx += gx
			fy += gy
			fz += gz
			continue
		}
		k := v - 1
		km := b.nmass.Get(e, int(k))
		kx := b.ncx.Get(e, int(k))
		ky := b.ncy.Get(e, int(k))
		kz := b.ncz.Get(e, int(k))
		dx, dy, dz := kx-xi, ky-yi, kz-zi
		d2 := dx*dx + dy*dy + dz*dz + b.cfg.Eps2
		childSize := size / 2
		e.Compute(8*apps.CostFlop + apps.CostCheck)
		if b.cfg.Theta > 0 && childSize*childSize < b.cfg.Theta*b.cfg.Theta*d2 {
			// Accept the cell as a pseudo-body.
			d := math.Sqrt(d2)
			g := km / (d2 * d)
			fx += g * dx
			fy += g * dy
			fz += g * dz
			e.Compute(3*apps.CostFlop + apps.CostSqrt + apps.CostDiv)
			continue
		}
		gx, gy, gz := b.force(e, i, xi, yi, zi, k, ocx, ocy, ocz, childSize)
		fx += gx
		fy += gy
		fz += gz
	}
	return
}

// pair is the softened body-body kernel (mass of body i cancels against the
// later division, so forces here are accelerations scaled by m_i = actually
// force per unit of body i's mass times m_j; consistent with the reference).
func (b *BH) pair(e *machine.Env, xi, yi, zi, xj, yj, zj, mj float64) (fx, fy, fz float64) {
	dx, dy, dz := xj-xi, yj-yi, zj-zi
	d2 := dx*dx + dy*dy + dz*dz + b.cfg.Eps2
	d := math.Sqrt(d2)
	g := mj / (d2 * d)
	e.Compute(11*apps.CostFlop + apps.CostSqrt + apps.CostDiv)
	return g * dx, g * dy, g * dz
}

func off(bit int64) float64 {
	if bit == 0 {
		return -1
	}
	return 1
}

// octant returns the child octant index of point (x,y,z) in the cell
// centered at (cx,cy,cz), and the child cell's center (qh = quarter of the
// parent's side = half of the child's).
func octant(x, y, z, cx, cy, cz, qh float64) (oct int, ocx, ocy, ocz float64) {
	ocx, ocy, ocz = cx-qh, cy-qh, cz-qh
	if x >= cx {
		oct |= 1
		ocx = cx + qh
	}
	if y >= cy {
		oct |= 2
		ocy = cy + qh
	}
	if z >= cz {
		oct |= 4
		ocz = cz + qh
	}
	return
}

// Verify implements apps.App: the parallel run must reproduce the
// sequential reference trajectory (same algorithm, same summation order)
// within floating-point noise, and stay finite.
func (b *BH) Verify(m *machine.Machine) error {
	ref := Reference(b.cfg, b.init)
	for i := 0; i < b.cfg.NBodies; i++ {
		gx, gy, gz := m.PeekF64(b.x.At(i)), m.PeekF64(b.y.At(i)), m.PeekF64(b.z.At(i))
		for _, v := range [3]float64{gx, gy, gz} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("barneshut: body %d position not finite", i)
			}
		}
		if !close3(gx, ref[i].X) || !close3(gy, ref[i].Y) || !close3(gz, ref[i].Z) {
			return fmt.Errorf("barneshut: body %d = (%g,%g,%g), reference (%g,%g,%g)",
				i, gx, gy, gz, ref[i].X, ref[i].Y, ref[i].Z)
		}
	}
	return nil
}

func close3(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9+1e-9*math.Max(math.Abs(a), math.Abs(b))
}
