package barneshut

import (
	"math"
	"testing"

	"zsim/internal/apps"
	"zsim/internal/machine"
	"zsim/internal/memsys"
)

func runBH(t *testing.T, kind memsys.Kind, cfg Config, procs int) (*BH, *machine.Machine) {
	t.Helper()
	app := New(cfg)
	m := machine.MustNew(kind, memsys.Default(procs))
	if _, err := apps.Run(app, m); err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return app, m
}

func TestMatchesReferenceOnEverySystem(t *testing.T) {
	for _, kind := range memsys.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			runBH(t, kind, Small(), 16)
		})
	}
}

func TestNoBoost(t *testing.T) {
	cfg := Small()
	cfg.BoostEvery = 0
	runBH(t, memsys.KindRCAdapt, cfg, 16)
}

func TestSingleProc(t *testing.T) {
	cfg := Small()
	cfg.NBodies = 16
	cfg.Steps = 2
	runBH(t, memsys.KindRCInv, cfg, 1)
}

func TestFourProcs(t *testing.T) {
	runBH(t, memsys.KindRCUpd, Small(), 4)
}

func TestInitialConditionsDeterministic(t *testing.T) {
	a := InitialBodies(Small())
	b := InitialBodies(Small())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("initial conditions not deterministic")
		}
	}
}

func TestInitialMomentumNearZero(t *testing.T) {
	bodies := InitialBodies(Paper())
	var px, py, pz float64
	for _, b := range bodies {
		px += b.M * b.VX
		py += b.M * b.VY
		pz += b.M * b.VZ
	}
	for _, p := range [3]float64{px, py, pz} {
		if math.Abs(p) > 1e-12 {
			t.Fatalf("net momentum (%g,%g,%g) not cancelled", px, py, pz)
		}
	}
}

func TestInitialBodiesInUnitBall(t *testing.T) {
	for i, b := range InitialBodies(Paper()) {
		if b.X*b.X+b.Y*b.Y+b.Z*b.Z > 1+1e-12 {
			t.Fatalf("body %d outside the unit ball", i)
		}
		if b.M <= 0 {
			t.Fatalf("body %d has non-positive mass", i)
		}
	}
}

// The tree code with theta=0 opens every cell: forces must equal the O(n²)
// direct sum (up to summation-order noise).
func TestTreeExactWhenThetaZero(t *testing.T) {
	cfg := Config{NBodies: 24, Steps: 1, Theta: 0, Dt: 0, Eps2: 0.05, Seed: 3}
	init := InitialBodies(cfg)
	// One zero-dt step leaves positions unchanged; recompute the reference
	// forces directly for comparison.
	fx, fy, fz := DirectForces(init, cfg.Eps2)

	app := New(cfg)
	m := machine.MustNew(memsys.KindPRAM, memsys.Default(8))
	if _, err := apps.Run(app, m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NBodies; i++ {
		gx := m.PeekF64(app.fx.At(i))
		gy := m.PeekF64(app.fy.At(i))
		gz := m.PeekF64(app.fz.At(i))
		if !approx(gx, fx[i]) || !approx(gy, fy[i]) || !approx(gz, fz[i]) {
			t.Fatalf("body %d force (%g,%g,%g) != direct (%g,%g,%g)",
				i, gx, gy, gz, fx[i], fy[i], fz[i])
		}
	}
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9+1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// The theta approximation should be close to the direct sum.
func TestThetaApproximationBounded(t *testing.T) {
	cfg := Small()
	init := InitialBodies(cfg)
	fx, fy, fz := DirectForces(init, cfg.Eps2)
	ref := Reference(Config{NBodies: cfg.NBodies, Steps: 1, Theta: cfg.Theta, Dt: 0, Eps2: cfg.Eps2, Seed: cfg.Seed}, init)
	_ = ref // positions unchanged with dt=0; compare via a fresh force pass
	// Build one reference step with dt=0 is not enough to expose forces, so
	// bound the approximation by comparing trajectories instead: a few
	// steps with theta=0.5 vs theta=0 should stay within a few percent.
	a := Reference(cfg, init)
	exact := cfg
	exact.Theta = 0
	b := Reference(exact, init)
	var maxErr, scale float64
	for i := range a {
		maxErr = math.Max(maxErr, math.Abs(a[i].X-b[i].X))
		scale = math.Max(scale, math.Abs(b[i].X))
	}
	if maxErr > 0.05*math.Max(scale, 1) {
		t.Fatalf("theta=%.2f trajectory deviates %g (scale %g)", cfg.Theta, maxErr, scale)
	}
	_ = fx
	_ = fy
	_ = fz
}

func TestOwnerRotationCoversAllProcs(t *testing.T) {
	n, np := 128, 16
	for rot := 0; rot < 4; rot++ {
		count := make([]int, np)
		for i := 0; i < n; i++ {
			o := owner(i, n, np, rot)
			if o < 0 || o >= np {
				t.Fatalf("owner out of range: %d", o)
			}
			count[o]++
		}
		for p, c := range count {
			if c != n/np {
				t.Fatalf("rot %d: proc %d owns %d bodies, want %d", rot, p, c, n/np)
			}
		}
	}
	// Rotation must actually change ownership (the boost's purpose).
	if owner(0, n, np, 0) == owner(0, n, np, 1) {
		t.Fatal("rotation did not change ownership")
	}
}

func TestBoostChangesSharingPattern(t *testing.T) {
	// With the boost, the adaptive protocol must observe phase changes
	// (re-initializations); without it, far fewer.
	run := func(boost int) uint64 {
		cfg := Small()
		cfg.BoostEvery = boost
		app := New(cfg)
		m := machine.MustNew(memsys.KindRCAdapt, memsys.Default(16))
		if _, err := apps.Run(app, m); err != nil {
			t.Fatal(err)
		}
		return m.Mem.Counters().SelfInvalidations
	}
	withBoost := run(1)
	if withBoost == 0 {
		t.Fatal("boost produced no adaptive re-initializations")
	}
}

func TestOctant(t *testing.T) {
	oct, ox, oy, oz := octant(1, -1, 1, 0, 0, 0, 0.5)
	if oct != 1|4 {
		t.Fatalf("octant = %d, want %d", oct, 1|4)
	}
	if ox != 0.5 || oy != -0.5 || oz != 0.5 {
		t.Fatalf("child center = (%g,%g,%g)", ox, oy, oz)
	}
}

func TestEncoding(t *testing.T) {
	if encNode(0) != 1 || encBody(0) != -1 {
		t.Fatal("encoding broken")
	}
	if encNode(5)-1 != 5 || -encBody(7)-1 != 7 {
		t.Fatal("decoding broken")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{NBodies: 1, Steps: 1})
}
