package barneshut

import "math"

// Reference runs the identical Barnes-Hut algorithm sequentially on plain
// Go slices — same insertion order, same traversal order, same arithmetic —
// and returns the final body states. Because the parallel version computes
// each body's force with exactly the same summation order, the two agree to
// floating-point identity (verification uses a small tolerance regardless).
func Reference(cfg Config, init []Body) []Body {
	bodies := append([]Body(nil), init...)
	n := len(bodies)
	maxNodes := 8*n + 64
	child := make([]int64, 8*maxNodes)
	nmass := make([]float64, maxNodes)
	ncx := make([]float64, maxNodes)
	ncy := make([]float64, maxNodes)
	ncz := make([]float64, maxNodes)
	fx := make([]float64, n)
	fy := make([]float64, n)
	fz := make([]float64, n)

	for step := 0; step < cfg.Steps; step++ {
		// Bounding cube.
		minv, maxv := math.Inf(1), math.Inf(-1)
		for i := range bodies {
			for _, v := range [3]float64{bodies[i].X, bodies[i].Y, bodies[i].Z} {
				if v < minv {
					minv = v
				}
				if v > maxv {
					maxv = v
				}
			}
		}
		half := (maxv-minv)/2 + 1e-9
		ccx, ccy, ccz := (maxv+minv)/2, (maxv+minv)/2, (maxv+minv)/2

		for c := 0; c < 8; c++ {
			child[c] = 0
		}
		nextNode := int64(1)

		// Insert.
		for i := range bodies {
			xi, yi, zi := bodies[i].X, bodies[i].Y, bodies[i].Z
			node, cx, cy, cz, nh := int64(0), ccx, ccy, ccz, half
			for {
				oct, ocx, ocy, ocz := octant(xi, yi, zi, cx, cy, cz, nh/2)
				slot := int(node*8) + oct
				v := child[slot]
				if v == 0 {
					child[slot] = encBody(int64(i))
					break
				}
				if v > 0 {
					node, cx, cy, cz, nh = v-1, ocx, ocy, ocz, nh/2
					continue
				}
				other := -v - 1
				m := nextNode
				nextNode++
				for c := 0; c < 8; c++ {
					child[int(m*8)+c] = 0
				}
				ob := bodies[other]
				ooct, _, _, _ := octant(ob.X, ob.Y, ob.Z, ocx, ocy, ocz, nh/4)
				child[int(m*8)+ooct] = encBody(other)
				child[slot] = encNode(m)
				node, cx, cy, cz, nh = m, ocx, ocy, ocz, nh/2
			}
		}

		// Moments.
		var moments func(node int64) (m, cx, cy, cz float64)
		moments = func(node int64) (m, cx, cy, cz float64) {
			for c := 0; c < 8; c++ {
				v := child[int(node*8)+c]
				switch {
				case v == 0:
				case v > 0:
					cm, cxx, cyy, czz := moments(v - 1)
					m += cm
					cx += cm * cxx
					cy += cm * cyy
					cz += cm * czz
				default:
					bd := -v - 1
					bm := bodies[bd].M
					m += bm
					cx += bm * bodies[bd].X
					cy += bm * bodies[bd].Y
					cz += bm * bodies[bd].Z
				}
			}
			if m > 0 {
				cx /= m
				cy /= m
				cz /= m
			}
			nmass[node] = m
			ncx[node] = cx
			ncy[node] = cy
			ncz[node] = cz
			return
		}
		moments(0)

		// Forces.
		var force func(i int, xi, yi, zi float64, node int64, cx, cy, cz, size float64) (fx, fy, fz float64)
		force = func(i int, xi, yi, zi float64, node int64, cx, cy, cz, size float64) (gfx, gfy, gfz float64) {
			for c := 0; c < 8; c++ {
				v := child[int(node*8)+c]
				if v == 0 {
					continue
				}
				ocx := cx + off(int64(c&1))*size/4
				ocy := cy + off(int64((c>>1)&1))*size/4
				ocz := cz + off(int64((c>>2)&1))*size/4
				if v < 0 {
					bd := int(-v - 1)
					if bd == i {
						continue
					}
					dx, dy, dz := bodies[bd].X-xi, bodies[bd].Y-yi, bodies[bd].Z-zi
					d2 := dx*dx + dy*dy + dz*dz + cfg.Eps2
					d := math.Sqrt(d2)
					g := bodies[bd].M / (d2 * d)
					gfx += g * dx
					gfy += g * dy
					gfz += g * dz
					continue
				}
				k := v - 1
				dx, dy, dz := ncx[k]-xi, ncy[k]-yi, ncz[k]-zi
				d2 := dx*dx + dy*dy + dz*dz + cfg.Eps2
				childSize := size / 2
				if cfg.Theta > 0 && childSize*childSize < cfg.Theta*cfg.Theta*d2 {
					d := math.Sqrt(d2)
					g := nmass[k] / (d2 * d)
					gfx += g * dx
					gfy += g * dy
					gfz += g * dz
					continue
				}
				hx, hy, hz := force(i, xi, yi, zi, k, ocx, ocy, ocz, childSize)
				gfx += hx
				gfy += hy
				gfz += hz
			}
			return
		}
		for i := range bodies {
			fx[i], fy[i], fz[i] = force(i, bodies[i].X, bodies[i].Y, bodies[i].Z, 0, ccx, ccy, ccz, 2*half)
		}

		// Integrate.
		for i := range bodies {
			b := &bodies[i]
			b.VX += fx[i] / b.M * cfg.Dt
			b.VY += fy[i] / b.M * cfg.Dt
			b.VZ += fz[i] / b.M * cfg.Dt
			b.X += b.VX * cfg.Dt
			b.Y += b.VY * cfg.Dt
			b.Z += b.VZ * cfg.Dt
		}
	}
	return bodies
}

// DirectForces computes exact pairwise (softened) forces for the given
// bodies — the O(n²) oracle used to bound the tree code's approximation
// error in tests.
func DirectForces(bodies []Body, eps2 float64) (fx, fy, fz []float64) {
	n := len(bodies)
	fx = make([]float64, n)
	fy = make([]float64, n)
	fz = make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx, dy, dz := bodies[j].X-bodies[i].X, bodies[j].Y-bodies[i].Y, bodies[j].Z-bodies[i].Z
			d2 := dx*dx + dy*dy + dz*dz + eps2
			d := math.Sqrt(d2)
			g := bodies[j].M / (d2 * d)
			fx[i] += g * dx
			fy[i] += g * dy
			fz[i] += g * dz
		}
	}
	return
}
