package apps

import (
	"errors"
	"testing"

	"zsim/internal/machine"
	"zsim/internal/memsys"
)

// failApp deliberately fails verification.
type failApp struct{ ran bool }

func (f *failApp) Name() string           { return "fail" }
func (f *failApp) Setup(*machine.Machine) {}
func (f *failApp) Body(e *machine.Env)    { f.ran = true }
func (f *failApp) Verify(*machine.Machine) error {
	return errors.New("intentional")
}

func TestRunPropagatesVerifyError(t *testing.T) {
	m := machine.MustNew(memsys.KindPRAM, memsys.Default(4))
	app := &failApp{}
	res, err := Run(app, m)
	if err == nil || err.Error() != "intentional" {
		t.Fatalf("err = %v, want the verification error", err)
	}
	if res == nil {
		t.Fatal("statistics must be returned even when verification fails")
	}
	if !app.ran {
		t.Fatal("body did not run")
	}
}

func TestCostConstantsSane(t *testing.T) {
	// The cost model's ordering is load-bearing for every application's
	// compute/communication ratio: branches cheapest, sqrt dearest.
	if !(CostInt <= CostLoop && CostLoop <= CostFlop && CostFlop < CostDiv && CostDiv < CostSqrt) {
		t.Fatal("cost constants out of order")
	}
	if CostIdle <= CostCheck {
		t.Fatal("idle back-off should dwarf a branch")
	}
}
