package benchrec

import (
	"path/filepath"
	"strings"
	"testing"

	"zsim/internal/metrics"
)

func sampleRecord() *Record {
	// Snapshot is built literally: registry counters are globally gated and
	// this test must not flip the process-wide metrics switch.
	s := metrics.Snapshot{Counters: map[string]uint64{
		"sim.switches":      1000,
		"sim.fastpath_hits": 9000,
		"sim.yields":        10000,
		"mesh.msgs":         500,
	}}
	return &Record{
		Timestamp: "2026-08-05T00:00:00Z",
		Scale:     "small",
		Procs:     16,
		Parallel:  4,
		Experiments: []Entry{
			{ID: "E1", Title: "one", WallMS: 100},
			{ID: "E2", Title: "two", WallMS: 200},
		},
		ClaimsWallMS:      50,
		TotalWallMS:       350,
		ExperimentsPerSec: 8,
		Metrics:           &s,
	}
}

func TestParseTolerance(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"25%", 0.25, false},
		{"0.25", 0.25, false},
		{" 10 % ", 0.10, false},
		{"0", 0, false},
		{"-5%", 0, true},
		{"abc", 0, true},
	}
	for _, c := range cases {
		got, err := ParseTolerance(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParseTolerance(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseTolerance(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDiffSelfCompareIsClean(t *testing.T) {
	r := sampleRecord()
	deltas, regressed := Diff(r, r, Options{Tolerance: 0.25})
	if regressed {
		t.Fatalf("self-comparison regressed:\n%s", Format(deltas, Options{}))
	}
	for _, d := range deltas {
		if d.Pct != 0 {
			t.Fatalf("self-comparison has nonzero delta %q: %v%%", d.Name, d.Pct)
		}
	}
}

func TestDiffCatchesTimingRegression(t *testing.T) {
	old := sampleRecord()
	cur := sampleRecord()
	cur.Experiments[1].WallMS = old.Experiments[1].WallMS * 1.30 // past 25%
	deltas, regressed := Diff(old, cur, Options{Tolerance: 0.25})
	if !regressed {
		t.Fatalf("30%% slowdown not flagged:\n%s", Format(deltas, Options{}))
	}
	found := false
	for _, d := range deltas {
		if d.Name == "E2 wall_ms" && d.Regression {
			found = true
		}
	}
	if !found {
		t.Fatalf("E2 wall_ms not marked as the regression:\n%s", Format(deltas, Options{}))
	}
}

func TestDiffWithinToleranceIsClean(t *testing.T) {
	old := sampleRecord()
	cur := sampleRecord()
	cur.Experiments[1].WallMS = old.Experiments[1].WallMS * 1.20 // within 25%
	cur.TotalWallMS = old.TotalWallMS * 1.20
	if _, regressed := Diff(old, cur, Options{Tolerance: 0.25}); regressed {
		t.Fatal("20% slowdown flagged at 25% tolerance")
	}
}

func TestDiffMinWallFloor(t *testing.T) {
	old := sampleRecord()
	cur := sampleRecord()
	old.Experiments[0].WallMS = 2 // tiny: noise-dominated
	cur.Experiments[0].WallMS = 9 // 4.5x, but below floor
	deltas, regressed := Diff(old, cur, Options{Tolerance: 0.25, MinWallMS: 10})
	if regressed {
		t.Fatalf("sub-floor timing failed the gate:\n%s", Format(deltas, Options{}))
	}
	// Without the floor it must fail.
	if _, regressed := Diff(old, cur, Options{Tolerance: 0.25}); !regressed {
		t.Fatal("4.5x slowdown above floor not flagged")
	}
}

func TestDiffThroughputRegression(t *testing.T) {
	old := sampleRecord()
	cur := sampleRecord()
	cur.ExperimentsPerSec = old.ExperimentsPerSec * 0.5
	if _, regressed := Diff(old, cur, Options{Tolerance: 0.25}); !regressed {
		t.Fatal("halved throughput not flagged")
	}
}

func TestDiffMetricRegressionBothDirections(t *testing.T) {
	old := sampleRecord()

	up := sampleRecord()
	s := *up.Metrics
	s.Counters = map[string]uint64{"sim.switches": 2000, "sim.fastpath_hits": 9000, "mesh.msgs": 500}
	up.Metrics = &s
	if _, regressed := Diff(old, up, Options{Tolerance: 0.25}); !regressed {
		t.Fatal("doubled sim.switches not flagged")
	}

	down := sampleRecord()
	s2 := *down.Metrics
	s2.Counters = map[string]uint64{"sim.switches": 1000, "sim.fastpath_hits": 4000, "mesh.msgs": 500}
	down.Metrics = &s2
	if _, regressed := Diff(old, down, Options{Tolerance: 0.25}); !regressed {
		t.Fatal("halved sim.fastpath_hits not flagged")
	}
}

func TestDiffMissingMetricsSection(t *testing.T) {
	old := sampleRecord()
	old.Metrics = nil
	cur := sampleRecord()
	deltas, regressed := Diff(old, cur, Options{Tolerance: 0.25})
	if regressed {
		t.Fatal("missing baseline metrics section treated as regression")
	}
	found := false
	for _, d := range deltas {
		if strings.Contains(d.Note, "no metrics section") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing metrics section not noted:\n%s", Format(deltas, Options{}))
	}
}

func TestDiffExperimentSetDrift(t *testing.T) {
	old := sampleRecord()
	cur := sampleRecord()
	cur.Experiments = append(cur.Experiments, Entry{ID: "E9", Title: "new", WallMS: 42})
	old.Experiments = append(old.Experiments, Entry{ID: "E0", Title: "gone", WallMS: 7})
	deltas, regressed := Diff(old, cur, Options{Tolerance: 0.25})
	if regressed {
		t.Fatalf("experiment-set drift treated as regression:\n%s", Format(deltas, Options{}))
	}
	var onlyNew, onlyOld bool
	for _, d := range deltas {
		if d.Name == "E9 wall_ms" && d.Note == "only in new" {
			onlyNew = true
		}
		if d.Name == "E0 wall_ms" && d.Note == "only in old" {
			onlyOld = true
		}
	}
	if !onlyNew || !onlyOld {
		t.Fatalf("set drift not noted (onlyNew=%v onlyOld=%v):\n%s", onlyNew, onlyOld, Format(deltas, Options{}))
	}
}

func TestLoadWriteRoundTrip(t *testing.T) {
	r := sampleRecord()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalWallMS != r.TotalWallMS || len(got.Experiments) != len(r.Experiments) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Metrics == nil || got.Metrics.Counter("sim.switches") != 1000 {
		t.Fatalf("metrics section lost in round trip: %+v", got.Metrics)
	}
	if deltas, regressed := Diff(r, got, Options{Tolerance: 0}); regressed {
		t.Fatalf("round-tripped record differs:\n%s", Format(deltas, Options{}))
	}
}

func TestFormatMarksRegressions(t *testing.T) {
	old := sampleRecord()
	cur := sampleRecord()
	cur.Experiments[0].WallMS = 1000
	deltas, _ := Diff(old, cur, Options{Tolerance: 0.25})
	out := Format(deltas, Options{})
	if !strings.Contains(out, "! E1 wall_ms") {
		t.Fatalf("regression not marked with '!':\n%s", out)
	}
	if !strings.Contains(out, "quantity") {
		t.Fatalf("missing header:\n%s", out)
	}
}

// TestDiffMetricsOnly pins the identity gate: with MetricsOnly, wall-time
// and throughput deltas never regress (only the simulated metrics count),
// and any metric drift — in either direction, including an improvement —
// past MetricTolerance fails. This is the serial-vs-sharded kernel gate:
// wall times legitimately differ, simulated metrics must not.
func TestDiffMetricsOnly(t *testing.T) {
	opts := Options{MetricsOnly: true} // MetricTolerance 0 = exact identity

	// Wildly different timings, identical metrics: clean.
	slow := sampleRecord()
	for i := range slow.Experiments {
		slow.Experiments[i].WallMS *= 10
	}
	slow.TotalWallMS *= 10
	slow.ExperimentsPerSec /= 10
	deltas, regressed := Diff(sampleRecord(), slow, opts)
	if regressed {
		t.Fatalf("timing drift regressed a metrics-only diff:\n%s", Format(deltas, opts))
	}

	// A metric IMPROVEMENT (fewer switches) still fails the identity gate.
	drift := sampleRecord()
	s := *drift.Metrics
	s.Counters = map[string]uint64{"sim.switches": 999, "sim.fastpath_hits": 9000, "sim.yields": 10000, "mesh.msgs": 500}
	drift.Metrics = &s
	if _, regressed := Diff(sampleRecord(), drift, opts); !regressed {
		t.Fatal("one-count metric drift passed the exact identity gate")
	}

	// With a nonzero MetricTolerance, small drift passes, large fails.
	loose := Options{MetricsOnly: true, MetricTolerance: 0.01}
	if _, regressed := Diff(sampleRecord(), drift, loose); regressed {
		t.Fatal("0.1% drift failed a 1% metrics-only gate")
	}
}

// TestDiffCrossModeGatesYieldsNotSplit pins the serial-vs-sharded identity
// gate after scope classification: between records of DIFFERENT kernel
// shard counts the switch/fast-path split legitimately shifts (streams and
// local windows dispatch traps inline), so only their mode-invariant sum
// sim.yields is gated; between records of the SAME shard count the split
// itself stays watched.
func TestDiffCrossModeGatesYieldsNotSplit(t *testing.T) {
	ident := Options{MetricsOnly: true}

	// Same yields, shifted split, different shard counts: clean.
	sharded := sampleRecord()
	sharded.KernelShards = 4
	s := *sharded.Metrics
	s.Counters = map[string]uint64{
		"sim.switches": 400, "sim.fastpath_hits": 9600, "sim.yields": 10000, "mesh.msgs": 500,
	}
	sharded.Metrics = &s
	if deltas, regressed := Diff(sampleRecord(), sharded, ident); regressed {
		t.Fatalf("shifted switch/fast-path split regressed a cross-mode identity diff:\n%s", Format(deltas, ident))
	}

	// The same shifted split between records of the SAME shard count fails.
	same := sampleRecord()
	same.Metrics = &s
	if _, regressed := Diff(sampleRecord(), same, ident); !regressed {
		t.Fatal("shifted split passed a same-mode identity diff")
	}

	// Yield drift fails even cross-mode: the trap count is mode-invariant.
	drift := sampleRecord()
	drift.KernelShards = 4
	s2 := *drift.Metrics
	s2.Counters = map[string]uint64{
		"sim.switches": 400, "sim.fastpath_hits": 9601, "sim.yields": 10001, "mesh.msgs": 500,
	}
	drift.Metrics = &s2
	if _, regressed := Diff(sampleRecord(), drift, ident); !regressed {
		t.Fatal("sim.yields drift passed the cross-mode identity gate")
	}

	// The scope counters gate between sharded records of the same count: a
	// drop in local dispatches (classification coverage lost) regresses.
	oldSharded := sampleRecord()
	oldSharded.KernelShards = 4
	so := *oldSharded.Metrics
	so.Counters = map[string]uint64{"sim.yields": 10000, "machine.scope.local_dispatches": 7000}
	oldSharded.Metrics = &so
	newSharded := sampleRecord()
	newSharded.KernelShards = 4
	sn := *newSharded.Metrics
	sn.Counters = map[string]uint64{"sim.yields": 10000, "machine.scope.local_dispatches": 3000}
	newSharded.Metrics = &sn
	if _, regressed := Diff(oldSharded, newSharded, Options{Tolerance: 0.25}); !regressed {
		t.Fatal("halved local-dispatch coverage not flagged between sharded records")
	}
}

// TestScopeReport pins the local-dispatch-fraction artifact: per-trap rows,
// a total row with the fraction CI publishes, and emptiness for records
// without scope counters (serial runs never publish them).
func TestScopeReport(t *testing.T) {
	if got := ScopeReport(sampleRecord()); got != "" {
		t.Fatalf("record without scope counters produced a report:\n%s", got)
	}

	r := sampleRecord()
	r.KernelShards = 4
	s := *r.Metrics
	s.Counters = map[string]uint64{
		"machine.scope.local_dispatches":  75,
		"machine.scope.global_dispatches": 25,
		"machine.scope.load_local":        70,
		"machine.scope.load_global":       10,
		"machine.scope.store_local":       0,
		"machine.scope.store_global":      15,
		"machine.scope.compute_local":     5,
	}
	r.Metrics = &s
	got := ScopeReport(r)
	for _, want := range []string{
		"kernel_shards=4",
		"load", "store", "swap", "compute",
		"75.0%",  // total fraction
		"87.5%",  // load row
		"0.0%",   // store row
		"100.0%", // compute row
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "-") {
		t.Errorf("trap with no dispatches (swap) should render '-':\n%s", got)
	}
}

func curveRecord() *Record {
	r := sampleRecord()
	r.Curves = []Curve{{
		ID: "S2", App: "is", System: "rcinv",
		Points: []CurvePoint{
			{Procs: 64, ExecCycles: 1000, ReadStall: 400, WriteStall: 50, BufferFlush: 20, SyncWait: 300, OverheadPct: 40},
			{Procs: 256, ExecCycles: 5000, ReadStall: 2500, WriteStall: 300, BufferFlush: 90, SyncWait: 1800, OverheadPct: 55},
		},
	}}
	return r
}

// TestDiffCurves: curve points are simulated quantities — gated like
// watched metrics (higher is worse normally; any drift fails the identity
// gate), and set growth is informational.
func TestDiffCurves(t *testing.T) {
	opts := Options{Tolerance: 0.25, MetricTolerance: 0.1}

	// Identical curves: clean.
	if deltas, regressed := Diff(curveRecord(), curveRecord(), opts); regressed {
		t.Fatalf("self-compare regressed:\n%s", Format(deltas, opts))
	}

	// A point's exec cycles grow past metric tolerance: regression.
	worse := curveRecord()
	worse.Curves[0].Points[1].ExecCycles = 6000 // +20% > 10%
	deltas, regressed := Diff(curveRecord(), worse, opts)
	if !regressed {
		t.Fatalf("curve-point growth passed the gate:\n%s", Format(deltas, opts))
	}

	// A DROP in exec cycles is an improvement in the normal mode...
	better := curveRecord()
	better.Curves[0].Points[1].ExecCycles = 4000
	if deltas, regressed := Diff(curveRecord(), better, opts); regressed {
		t.Fatalf("curve-point improvement regressed:\n%s", Format(deltas, opts))
	}
	// ...but fails the exact identity gate (serial vs sharded must agree).
	ident := Options{MetricsOnly: true}
	if _, regressed := Diff(curveRecord(), better, ident); !regressed {
		t.Fatal("curve drift passed the exact identity gate")
	}

	// New curves and new points are informational, not regressions.
	grown := curveRecord()
	grown.Curves[0].Points = append(grown.Curves[0].Points,
		CurvePoint{Procs: 1024, ExecCycles: 30000})
	grown.Curves = append(grown.Curves, Curve{ID: "S3", App: "maxflow", System: "rcinv",
		Points: []CurvePoint{{Procs: 64, ExecCycles: 700}}})
	deltas, regressed = Diff(curveRecord(), grown, opts)
	if regressed {
		t.Fatalf("curve growth regressed:\n%s", Format(deltas, opts))
	}
	var sawPoint, sawCurve bool
	for _, d := range deltas {
		if d.Name == "curve S2 P=1024" && d.Note == "only in new" {
			sawPoint = true
		}
		if d.Name == "curve S3" && d.Note == "only in new" {
			sawCurve = true
		}
	}
	if !sawPoint || !sawCurve {
		t.Fatalf("growth notes missing (point %v, curve %v):\n%s", sawPoint, sawCurve, Format(deltas, opts))
	}
}

// TestCurveRoundTrip: curves survive the Write/Load cycle.
func TestCurveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_curves.json")
	if err := curveRecord().Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Curves) != 1 || got.Curves[0].ID != "S2" || len(got.Curves[0].Points) != 2 {
		t.Fatalf("curves lost in round trip: %+v", got.Curves)
	}
	if p := got.Curves[0].Points[1]; p.Procs != 256 || p.ExecCycles != 5000 || p.OverheadPct != 55 {
		t.Fatalf("point lost in round trip: %+v", p)
	}
}
