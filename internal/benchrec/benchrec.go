// Package benchrec defines the machine-readable BENCH_*.json record that
// cmd/paperbench emits with -bench-json, and the comparison logic behind
// cmd/benchdiff: given two records, classify every timing, throughput, and
// watched-metric delta against a tolerance and report regressions. The
// records form the repository's perf trajectory; CI's bench-gate job fails
// a build whose record regresses past tolerance against the blessed
// BENCH_baseline.json.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"zsim/internal/metrics"
)

// Record is one full-regeneration timing/throughput record plus the
// simulator's own metrics section.
type Record struct {
	Timestamp         string            `json:"timestamp"`
	Scale             string            `json:"scale"`
	Procs             int               `json:"procs"`
	Parallel          int               `json:"parallel"`
	KernelShards      int               `json:"kernel_shards,omitempty"`
	GOMAXPROCS        int               `json:"gomaxprocs"`
	NumCPU            int               `json:"num_cpu"`
	Experiments       []Entry           `json:"experiments"`
	ClaimsWallMS      float64           `json:"claims_wall_ms"`
	TotalWallMS       float64           `json:"total_wall_ms"`
	ExperimentsPerSec float64           `json:"experiments_per_sec"`
	Metrics           *metrics.Snapshot `json:"metrics,omitempty"`
	// Curves holds per-P scalability curves (the S-family experiments):
	// simulated quantities, so the gate compares them like watched metrics,
	// not like wall-clock timings.
	Curves []Curve `json:"curves,omitempty"`
}

// Entry is one experiment's wall-clock timing.
type Entry struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMS float64 `json:"wall_ms"`
}

// Curve is one scalability experiment's simulated overhead-class curve:
// one point per machine size. Every quantity is virtual (cycles), so two
// records of the same simulation must agree exactly.
type Curve struct {
	ID     string       `json:"id"` // experiment ID (S1..)
	App    string       `json:"app"`
	System string       `json:"system"`
	Points []CurvePoint `json:"points"`
}

// CurvePoint is one machine size's overhead decomposition.
type CurvePoint struct {
	Procs       int     `json:"procs"`
	ExecCycles  float64 `json:"exec_cycles"`
	ReadStall   float64 `json:"read_stall"`
	WriteStall  float64 `json:"write_stall"`
	BufferFlush float64 `json:"buffer_flush"`
	SyncWait    float64 `json:"sync_wait"`
	OverheadPct float64 `json:"overhead_pct"`
}

// Load reads a record from path.
func Load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchrec: %s: %w", path, err)
	}
	return &r, nil
}

// Write marshals the record to path with a trailing newline.
func (r *Record) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseTolerance accepts "25%", "25 %", or a bare fraction like "0.25" and
// returns the fraction.
func ParseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSpace(strings.TrimSuffix(s, "%"))
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("benchrec: bad tolerance %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("benchrec: negative tolerance %q", s)
	}
	return v, nil
}

// watchedMetric is one simulated counter the gate tracks. worse = +1 means
// an increase past tolerance is a regression (more scheduler round-trips,
// more misses); worse = -1 means a decrease is (fast-path hits). Host-side
// metrics (runner.*) are deliberately absent: they vary with the machine
// and the -parallel setting.
type watchedMetric struct {
	name  string
	worse int
}

var watchedMetrics = []watchedMetric{
	{"sim.yields", +1},                 // total scheduling points (switches + fast-path hits); trap count, mode-invariant
	{"proto.read_misses", +1},          // coherence efficiency
	{"proto.write_misses", +1},         //
	{"proto.invalidations", +1},        //
	{"mesh.msgs", +1},                  // traffic volume
	{"mesh.bytes", +1},                 //
	{"mesh.queue_cycles", +1},          // interconnect contention
	{"wbuffer.full_stall_cycles", +1},  // write-stall pressure
	{"wbuffer.flush_stall_cycles", +1}, // buffer-flush pressure
}

// sameModeMetrics are gated only between records of the same kernel shard
// count. The switch/fast-path split legitimately shifts when the sharded
// kernel dispatches traps inside streams and local windows (their sum,
// sim.yields, is watched unconditionally above), and the scope
// classification counters exist only on sharded records.
var sameModeMetrics = []watchedMetric{
	{"sim.switches", +1},                    // fast-path degradation: more channel handoffs
	{"sim.fastpath_hits", -1},               // fast-path degradation: fewer inline returns
	{"machine.scope.local_dispatches", -1},  // scope-classification coverage: fewer shard-local traps
	{"machine.scope.global_dispatches", +1}, // scope-classification coverage: more serialized traps
}

// Delta is one compared quantity.
type Delta struct {
	Name       string  // what was compared ("E3 wall_ms", "metric sim.switches", ...)
	Old, New   float64 //
	Pct        float64 // (new-old)/old * 100; 0 when old == 0
	Regression bool    // past tolerance in the bad direction
	Note       string  // "skipped: below floor", "only in old", ...
}

// Options configures a comparison.
type Options struct {
	// Tolerance is the allowed fractional slowdown for timings and
	// throughput (0.25 = 25%).
	Tolerance float64
	// MetricTolerance is the allowed fractional drift for watched
	// simulated metrics; 0 selects Tolerance.
	MetricTolerance float64
	// MinWallMS is the per-experiment floor: entries whose old wall time is
	// below it are reported but never fail the gate (sub-floor timings are
	// noise-dominated on shared CI hosts).
	MinWallMS float64
	// MetricsOnly compares only the watched simulated metrics: timings and
	// throughput are reported informationally but never regress, and metric
	// drift in EITHER direction past MetricTolerance is a regression. This
	// is the identity gate between two records of the same simulation that
	// legitimately differ in wall time — e.g. the serial vs sharded kernel,
	// whose simulated metrics must not drift at all (tolerance 0).
	MetricsOnly bool
}

// Diff compares new against old and returns every delta plus whether any
// regression crossed tolerance. Timings regress when new exceeds
// old*(1+tol); throughput regresses when new falls below old*(1-tol);
// watched metrics regress when they drift past MetricTolerance in their
// bad direction. Experiments present in only one record are noted but are
// not regressions (the experiment index legitimately grows across PRs).
func Diff(old, new *Record, opts Options) (deltas []Delta, regressed bool) {
	tol := opts.Tolerance
	mtol := opts.MetricTolerance
	if mtol == 0 && !opts.MetricsOnly {
		// Metrics-only gates take MetricTolerance literally (0 = exact);
		// otherwise 0 means "same as the timing tolerance".
		mtol = tol
	}

	timing := func(name string, o, n, floor float64) {
		d := Delta{Name: name, Old: o, New: n, Pct: pctDelta(o, n)}
		switch {
		case o <= 0:
			d.Note = "no baseline"
		case opts.MetricsOnly:
			d.Note = "metrics-only, informational"
		case o < floor:
			d.Note = fmt.Sprintf("below %gms floor, informational", floor)
		case n > o*(1+tol):
			d.Regression = true
		}
		deltas = append(deltas, d)
		regressed = regressed || d.Regression
	}

	oldByID := make(map[string]Entry, len(old.Experiments))
	for _, e := range old.Experiments {
		oldByID[e.ID] = e
	}
	seen := make(map[string]bool, len(new.Experiments))
	for _, e := range new.Experiments {
		seen[e.ID] = true
		oe, ok := oldByID[e.ID]
		if !ok {
			deltas = append(deltas, Delta{Name: e.ID + " wall_ms", New: e.WallMS, Note: "only in new"})
			continue
		}
		timing(e.ID+" wall_ms", oe.WallMS, e.WallMS, opts.MinWallMS)
	}
	for _, e := range old.Experiments {
		if !seen[e.ID] {
			deltas = append(deltas, Delta{Name: e.ID + " wall_ms", Old: e.WallMS, Note: "only in old"})
		}
	}

	timing("claims_wall_ms", old.ClaimsWallMS, new.ClaimsWallMS, opts.MinWallMS)
	timing("total_wall_ms", old.TotalWallMS, new.TotalWallMS, 0)

	// Throughput: lower is worse.
	{
		o, n := old.ExperimentsPerSec, new.ExperimentsPerSec
		d := Delta{Name: "experiments_per_sec", Old: o, New: n, Pct: pctDelta(o, n)}
		if opts.MetricsOnly {
			d.Note = "metrics-only, informational"
		} else if o > 0 && n < o*(1-tol) {
			d.Regression = true
		}
		deltas = append(deltas, d)
		regressed = regressed || d.Regression
	}

	if old.Metrics != nil && new.Metrics != nil {
		watched := watchedMetrics
		if old.KernelShards == new.KernelShards {
			watched = append(append([]watchedMetric(nil), watchedMetrics...), sameModeMetrics...)
		}
		for _, w := range watched {
			o := float64(old.Metrics.Counter(w.name))
			n := float64(new.Metrics.Counter(w.name))
			if o == 0 && n == 0 {
				continue
			}
			d := Delta{Name: "metric " + w.name, Old: o, New: n, Pct: pctDelta(o, n)}
			switch {
			case o == 0:
				d.Note = "no baseline"
			case opts.MetricsOnly && (n > o*(1+mtol) || n < o*(1-mtol)):
				// Identity gate: drift in either direction is a failure.
				d.Regression = true
			case opts.MetricsOnly:
			case w.worse > 0 && n > o*(1+mtol):
				d.Regression = true
			case w.worse < 0 && n < o*(1-mtol):
				d.Regression = true
			}
			deltas = append(deltas, d)
			regressed = regressed || d.Regression
		}
	} else if old.Metrics == nil && new.Metrics != nil {
		deltas = append(deltas, Delta{Name: "metrics", Note: "baseline has no metrics section; skipped"})
	}

	// Scalability curves: simulated quantities, gated like watched metrics.
	// Higher is worse in the normal mode; any drift fails a metrics-only
	// identity gate. Curves or points present in only one record are noted
	// but never regress (the S-family and its -scaling-procs grid grow).
	oldCurves := make(map[string]Curve, len(old.Curves))
	for _, c := range old.Curves {
		oldCurves[c.ID] = c
	}
	for _, c := range new.Curves {
		oc, ok := oldCurves[c.ID]
		if !ok {
			deltas = append(deltas, Delta{Name: "curve " + c.ID, Note: "only in new"})
			continue
		}
		oldPts := make(map[int]CurvePoint, len(oc.Points))
		for _, p := range oc.Points {
			oldPts[p.Procs] = p
		}
		for _, p := range c.Points {
			op, ok := oldPts[p.Procs]
			if !ok {
				deltas = append(deltas, Delta{Name: fmt.Sprintf("curve %s P=%d", c.ID, p.Procs), Note: "only in new"})
				continue
			}
			for _, q := range []struct {
				name string
				o, n float64
			}{
				{"exec_cycles", op.ExecCycles, p.ExecCycles},
				{"read_stall", op.ReadStall, p.ReadStall},
				{"write_stall", op.WriteStall, p.WriteStall},
				{"buffer_flush", op.BufferFlush, p.BufferFlush},
				{"sync_wait", op.SyncWait, p.SyncWait},
			} {
				if q.o == 0 && q.n == 0 {
					continue
				}
				d := Delta{
					Name: fmt.Sprintf("curve %s P=%d %s", c.ID, p.Procs, q.name),
					Old:  q.o, New: q.n, Pct: pctDelta(q.o, q.n),
				}
				switch {
				case q.o == 0:
					d.Note = "no baseline"
				case opts.MetricsOnly && (q.n > q.o*(1+mtol) || q.n < q.o*(1-mtol)):
					d.Regression = true
				case opts.MetricsOnly:
				case q.n > q.o*(1+mtol):
					d.Regression = true
				}
				deltas = append(deltas, d)
				regressed = regressed || d.Regression
			}
		}
	}

	return deltas, regressed
}

func pctDelta(o, n float64) float64 {
	if o == 0 {
		return 0
	}
	return (n - o) / o * 100
}

// Format renders deltas as a readable table, regressions marked with '!'.
func Format(deltas []Delta, opts Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %12s %9s\n", "quantity", "old", "new", "delta")
	for _, d := range deltas {
		mark := " "
		if d.Regression {
			mark = "!"
		}
		note := d.Note
		if note != "" {
			note = "  (" + note + ")"
		}
		fmt.Fprintf(&b, "%s %-32s %12s %12s %8.1f%%%s\n",
			mark, d.Name, num(d.Old), num(d.New), d.Pct, note)
	}
	return b.String()
}

// scopeTraps are the machine trap kinds the scope-classification metrics
// break down by (machine.scope.<trap>_local / _global).
var scopeTraps = []string{"load", "store", "swap", "compute"}

// ScopeReport renders a record's machine.scope.* counters — the per-trap
// local/global dispatch split of DESIGN §15 plus the total local-dispatch
// fraction — as the table CI publishes as the sharded job's
// local-dispatch-fraction artifact. It returns "" when the record carries
// no scope counters (serial records never publish them).
func ScopeReport(r *Record) string {
	if r.Metrics == nil {
		return ""
	}
	c := r.Metrics.Counters
	local := c["machine.scope.local_dispatches"]
	global := c["machine.scope.global_dispatches"]
	if local+global == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "machine-trap scope classification (kernel_shards=%d)\n", r.KernelShards)
	fmt.Fprintf(&b, "%-10s %12s %12s %8s\n", "trap", "local", "global", "local%")
	row := func(name string, l, g uint64) {
		pct := "-"
		if l+g > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(l)/float64(l+g))
		}
		fmt.Fprintf(&b, "%-10s %12d %12d %8s\n", name, l, g, pct)
	}
	for _, trap := range scopeTraps {
		row(trap, c["machine.scope."+trap+"_local"], c["machine.scope."+trap+"_global"])
	}
	row("total", local, global)
	return b.String()
}

func num(v float64) string {
	if v == float64(int64(v)) && v < 1e12 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}
