// Package wbuffer models the per-processor write machinery of the paper's
// base hardware: a finite store buffer that lets a release-consistent
// processor continue past write misses, and the merge buffer used by the
// update-based systems to combine writes to the same cache line before they
// are sent out (paper §4, after Dahlgren & Stenström).
//
// The store buffer is the source of the paper's two pure-overhead
// components: a full buffer on a write miss stalls the processor (write
// stall), and a non-empty buffer at a release point stalls it until all
// entries retire (buffer flush).
package wbuffer

import (
	"zsim/internal/memsys"
	"zsim/internal/metrics"
)

// OccupancyBuckets are the inclusive upper bounds of the
// wbuffer.occupancy histogram (in-flight entries seen at each Reserve).
var OccupancyBuckets = []uint64{0, 1, 2, 4, 8, 16} //zlint:ignore globalmut immutable bucket bounds, never written after package init

// StoreBuffer tracks the completion times of in-flight writes. An entry
// retires when the protocol-level transaction it represents (ownership
// acquisition, update fan-out) completes.
type StoreBuffer struct {
	cap int
	//zlint:confine shard a store buffer belongs to one node; only the issuing stream's own node inserts and drains
	pending []memsys.Time // completion times, unordered

	// Per-event metric handles (nil unless Instrument was called). Shared
	// across a machine's buffers: they are atomic, and per-node attribution
	// is not needed for the regression gate.
	mOccupancy  *metrics.Histogram // entries in flight at each Reserve
	mFullStall  *metrics.Counter   // cycles stalled on a full buffer
	mFlushStall *metrics.Counter   // cycles stalled draining at releases
	mFlushes    *metrics.Counter   // DrainStall calls with entries pending
}

// Instrument attaches per-event metric handles, all nil-safe; the protocol
// that owns the buffer wires every node's buffer to the same handles.
func (b *StoreBuffer) Instrument(occupancy *metrics.Histogram, fullStall, flushStall, flushes *metrics.Counter) {
	b.mOccupancy = occupancy
	b.mFullStall = fullStall
	b.mFlushStall = flushStall
	b.mFlushes = flushes
}

// NewStore returns a store buffer with the given number of entries.
func NewStore(entries int) *StoreBuffer {
	if entries <= 0 {
		panic("wbuffer: store buffer needs at least one entry")
	}
	return &StoreBuffer{cap: entries}
}

// Cap returns the buffer's capacity.
func (b *StoreBuffer) Cap() int { return b.cap }

// retire drops entries completed by now.
func (b *StoreBuffer) retire(now memsys.Time) {
	out := b.pending[:0]
	for _, c := range b.pending {
		if c > now {
			out = append(out, c)
		}
	}
	b.pending = out
}

// Pending returns the number of in-flight entries at time now.
func (b *StoreBuffer) Pending(now memsys.Time) int {
	b.retire(now)
	return len(b.pending)
}

// Reserve obtains a free entry at time now, returning the write-stall cycles
// spent waiting for the earliest in-flight entry to retire when the buffer
// is full. After Reserve returns, the caller owns one free slot and should
// Add the new entry's completion time.
func (b *StoreBuffer) Reserve(now memsys.Time) (stall memsys.Time) {
	b.retire(now)
	b.mOccupancy.Observe(uint64(len(b.pending)))
	if len(b.pending) < b.cap {
		return 0
	}
	// Wait for the earliest completion.
	min := b.pending[0]
	for _, c := range b.pending[1:] {
		if c < min {
			min = c
		}
	}
	stall = min - now
	b.retire(min)
	b.mFullStall.Add(uint64(stall))
	return stall
}

// Add records an in-flight entry completing at the given time. The caller
// must have Reserved a slot.
func (b *StoreBuffer) Add(completion memsys.Time) {
	if len(b.pending) >= b.cap {
		panic("wbuffer: Add without a free slot; call Reserve first")
	}
	b.pending = append(b.pending, completion)
}

// Watermark returns the time by which every in-flight entry has retired
// (now if the buffer is empty) without draining the buffer — the
// write-completion watermark a lazy-release system hands to consumers.
func (b *StoreBuffer) Watermark(now memsys.Time) memsys.Time {
	wm := now
	for _, c := range b.pending {
		if c > wm {
			wm = c
		}
	}
	return wm
}

// DrainStall returns the buffer-flush stall at a release point: the cycles
// until every in-flight entry has retired. The buffer is empty afterwards.
func (b *StoreBuffer) DrainStall(now memsys.Time) (stall memsys.Time) {
	var max memsys.Time
	for _, c := range b.pending {
		if c > max {
			max = c
		}
	}
	if len(b.pending) > 0 {
		b.mFlushes.Inc()
	}
	b.pending = b.pending[:0]
	if max > now {
		b.mFlushStall.Add(uint64(max - now))
		return max - now
	}
	return 0
}

// MergeBuffer combines writes to the same cache line. It holds up to cap
// lines in FIFO order; inserting a new line into a full buffer evicts the
// oldest, which the protocol must then send out as an update.
type MergeBuffer struct {
	cap int
	//zlint:confine carrier the FIFO belongs to one node (only its owner inserts and flushes) but carries line addresses, so flush-path writes mix the owner's and the lines' home partitions
	lines []memsys.Addr // FIFO, oldest first

	mMerges    *metrics.Counter // writes combined into a merging line
	mEvictions *metrics.Counter // lines displaced by a full buffer
}

// Instrument attaches per-event metric handles (nil-safe).
func (m *MergeBuffer) Instrument(merges, evictions *metrics.Counter) {
	m.mMerges = merges
	m.mEvictions = evictions
}

// NewMerge returns a merge buffer holding cap cache lines (the paper uses 1).
func NewMerge(cap int) *MergeBuffer {
	if cap <= 0 {
		panic("wbuffer: merge buffer needs at least one line")
	}
	return &MergeBuffer{cap: cap}
}

// Cap returns the merge buffer capacity in lines.
func (m *MergeBuffer) Cap() int { return m.cap }

// Len returns the number of merging lines.
func (m *MergeBuffer) Len() int { return len(m.lines) }

// Contains reports whether the line is currently merging — a write to it
// combines for free.
func (m *MergeBuffer) Contains(line memsys.Addr) bool {
	for _, l := range m.lines {
		if l == line {
			return true
		}
	}
	return false
}

// Put inserts a line. If the line is already merging nothing changes. If
// the buffer is full the oldest line is evicted and returned so the caller
// can emit its update message.
func (m *MergeBuffer) Put(line memsys.Addr) (victim memsys.Addr, evicted bool) {
	if m.Contains(line) {
		m.mMerges.Inc()
		return 0, false
	}
	if len(m.lines) == m.cap {
		victim = m.lines[0]
		copy(m.lines, m.lines[1:])
		m.lines[len(m.lines)-1] = line
		m.mEvictions.Inc()
		return victim, true
	}
	m.lines = append(m.lines, line)
	return 0, false
}

// Flush removes and returns all merging lines in FIFO order (done at
// synchronization points to guarantee protocol correctness; the resulting
// update traffic is the merge buffer's contribution to buffer-flush time).
func (m *MergeBuffer) Flush() []memsys.Addr {
	out := m.lines
	m.lines = nil
	return out
}
