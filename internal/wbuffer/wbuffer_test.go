package wbuffer

import (
	"testing"
	"testing/quick"

	"zsim/internal/memsys"
)

func TestReserveFreeWhenEmpty(t *testing.T) {
	b := NewStore(4)
	if s := b.Reserve(10); s != 0 {
		t.Fatalf("stall = %d on empty buffer, want 0", s)
	}
	b.Add(20)
	if b.Pending(10) != 1 {
		t.Fatal("entry not recorded")
	}
}

func TestReserveStallsWhenFull(t *testing.T) {
	b := NewStore(2)
	b.Add(100)
	b.Add(50)
	stall := b.Reserve(10)
	if stall != 40 { // waits for the earliest (50) from now=10
		t.Fatalf("stall = %d, want 40", stall)
	}
	// The earliest entry retired; one slot free, the 100 entry remains.
	if got := b.Pending(50); got != 1 {
		t.Fatalf("pending = %d after stall, want 1", got)
	}
}

func TestEntriesRetireWithTime(t *testing.T) {
	b := NewStore(2)
	b.Add(30)
	b.Add(40)
	if s := b.Reserve(35); s != 0 {
		t.Fatalf("stall = %d, want 0: entry at 30 already retired", s)
	}
}

func TestDrainStall(t *testing.T) {
	b := NewStore(4)
	b.Add(100)
	b.Add(70)
	if s := b.DrainStall(60); s != 40 {
		t.Fatalf("drain stall = %d, want 40", s)
	}
	if b.Pending(0) != 0 {
		t.Fatal("buffer not empty after drain")
	}
	if s := b.DrainStall(60); s != 0 {
		t.Fatalf("drain of empty buffer = %d, want 0", s)
	}
}

func TestDrainStallPastCompletion(t *testing.T) {
	b := NewStore(4)
	b.Add(10)
	if s := b.DrainStall(50); s != 0 {
		t.Fatalf("drain stall = %d, want 0 when all retired", s)
	}
}

func TestAddWithoutSlotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewStore(1)
	b.Add(10)
	b.Add(20)
}

// Property: with capacity c, after any sequence of Reserve(now)+Add the
// number pending never exceeds c, and Reserve's stall is exactly the gap to
// the earliest completion when full.
func TestStoreOccupancyProperty(t *testing.T) {
	f := func(deltas []uint8) bool {
		b := NewStore(4)
		var now memsys.Time
		for _, d := range deltas {
			now += memsys.Time(d % 16)
			stall := b.Reserve(now)
			now += stall
			b.Add(now + memsys.Time(d%32) + 1)
			if b.Pending(now) > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeCombines(t *testing.T) {
	m := NewMerge(1)
	if v, ev := m.Put(5); ev {
		t.Fatalf("first put evicted %d", v)
	}
	if !m.Contains(5) {
		t.Fatal("line not merging after Put")
	}
	if _, ev := m.Put(5); ev {
		t.Fatal("put of merging line must combine, not evict")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMergeEvictsOldestFIFO(t *testing.T) {
	m := NewMerge(2)
	m.Put(1)
	m.Put(2)
	v, ev := m.Put(3)
	if !ev || v != 1 {
		t.Fatalf("evicted=%v victim=%d, want oldest line 1", ev, v)
	}
	if m.Contains(1) || !m.Contains(2) || !m.Contains(3) {
		t.Fatal("contents wrong after eviction")
	}
}

func TestMergeFlush(t *testing.T) {
	m := NewMerge(3)
	m.Put(7)
	m.Put(8)
	lines := m.Flush()
	if len(lines) != 2 || lines[0] != 7 || lines[1] != 8 {
		t.Fatalf("flush = %v, want [7 8]", lines)
	}
	if m.Len() != 0 {
		t.Fatal("buffer not empty after flush")
	}
	if got := m.Flush(); len(got) != 0 {
		t.Fatal("second flush should be empty")
	}
}

// Property: the merge buffer never exceeds capacity and never holds
// duplicates.
func TestMergeInvariantProperty(t *testing.T) {
	f := func(lines []uint8) bool {
		m := NewMerge(3)
		for _, l := range lines {
			m.Put(memsys.Addr(l % 8))
			if m.Len() > 3 {
				return false
			}
		}
		seen := map[memsys.Addr]bool{}
		for _, l := range m.Flush() {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){func() { NewStore(0) }, func() { NewMerge(0) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWatermark(t *testing.T) {
	b := NewStore(4)
	if wm := b.Watermark(50); wm != 50 {
		t.Fatalf("empty watermark = %d, want now", wm)
	}
	b.Add(70)
	b.Add(120)
	if wm := b.Watermark(50); wm != 120 {
		t.Fatalf("watermark = %d, want 120", wm)
	}
	// Watermark must not drain.
	if b.Pending(50) != 2 {
		t.Fatal("watermark drained the buffer")
	}
	// Past the last completion it degenerates to now.
	if wm := b.Watermark(200); wm != 200 {
		t.Fatalf("late watermark = %d, want 200", wm)
	}
}
