package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func finding(file string, line int, analyzer string) Finding {
	return Finding{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer, Message: "m"}
}

// TestSuppressCoverage pins the directive's scope: a //zlint:ignore on
// line N covers findings on line N (trailing comment) and line N+1
// (comment on the line above) in the same file, for the named analyzer
// only.
func TestSuppressCoverage(t *testing.T) {
	cases := []struct {
		name string
		f    Finding
		want bool
	}{
		{"same line", finding("a.go", 10, "walltime"), true},
		{"next line", finding("a.go", 11, "walltime"), true},
		{"two lines below", finding("a.go", 12, "walltime"), false},
		{"line above", finding("a.go", 9, "walltime"), false},
		{"other analyzer", finding("a.go", 10, "maprange"), false},
		{"other file", finding("b.go", 10, "walltime"), false},
	}
	for _, tc := range cases {
		set := &suppressionSet{sups: []*suppression{{
			pos:      token.Position{Filename: "a.go", Line: 10},
			analyzer: "walltime", reason: "r",
		}}}
		if got := set.suppress(tc.f); got != tc.want {
			t.Errorf("%s: suppress = %v, want %v", tc.name, got, tc.want)
		}
		if used := set.sups[0].used; used != tc.want {
			t.Errorf("%s: directive used = %v, want %v", tc.name, used, tc.want)
		}
	}
}

// TestSuppressAdjacentDirectives: two directives for different analyzers
// on adjacent lines each cover their own analyzer's finding on the shared
// line, and neither is reported unused.
func TestSuppressAdjacentDirectives(t *testing.T) {
	set := &suppressionSet{sups: []*suppression{
		{pos: token.Position{Filename: "a.go", Line: 9}, analyzer: "walltime", reason: "r"},
		{pos: token.Position{Filename: "a.go", Line: 10}, analyzer: "maprange", reason: "r"},
	}}
	if !set.suppress(finding("a.go", 10, "walltime")) {
		t.Error("walltime finding on line 10 not covered by the line-9 directive")
	}
	if !set.suppress(finding("a.go", 10, "maprange")) {
		t.Error("maprange finding on line 10 not covered by the line-10 directive")
	}
	if probs := set.problems(); len(probs) != 0 {
		t.Errorf("problems = %v, want none", probs)
	}
}

// TestSuppressProblems parses real directive comments and pins the
// malformed/unused diagnostics: a well-formed directive matching nothing,
// an unknown analyzer, a missing reason, and a bare directive.
func TestSuppressProblems(t *testing.T) {
	src := `package s

var a = 1 //zlint:ignore walltime covers nothing here

//zlint:ignore nosuch some reason
var b = 2

//zlint:ignore maprange
var c = 3

//zlint:ignore
var d = 4
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := collectSuppressions(&Package{Fset: fset, Files: []*ast.File{f}})
	probs := set.problems()
	SortFindings(probs)
	want := []string{
		"unused //zlint:ignore walltime (no walltime finding on this or the next line)",
		`//zlint:ignore names unknown analyzer "nosuch"`,
		"//zlint:ignore maprange needs a reason",
		"//zlint:ignore needs an analyzer name and a reason",
	}
	if len(probs) != len(want) {
		t.Fatalf("got %d problems %v, want %d", len(probs), probs, len(want))
	}
	for i, w := range want {
		if probs[i].Message != w {
			t.Errorf("problem %d = %q, want %q", i, probs[i].Message, w)
		}
	}
}

// TestSortFindingsColumn: findings on the same file and line must order
// by column, then analyzer, then message — never by insertion order.
func TestSortFindingsColumn(t *testing.T) {
	fs := []Finding{
		{Pos: token.Position{Filename: "a.go", Line: 5, Column: 9}, Analyzer: "b", Message: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 5, Column: 2}, Analyzer: "b", Message: "m"},
		{Pos: token.Position{Filename: "a.go", Line: 5, Column: 2}, Analyzer: "a", Message: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 5, Column: 2}, Analyzer: "a", Message: "m"},
	}
	SortFindings(fs)
	var got []string
	for _, f := range fs {
		got = append(got, f.Analyzer+"/"+f.Message+"/"+itoa(f.Pos.Column))
	}
	want := []string{"a/m/2", "a/z/2", "b/m/2", "b/m/9"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}
