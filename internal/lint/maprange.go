package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags iteration over a map inside the deterministic zone. Go
// randomizes map iteration order on purpose, so any map range whose body
// observes keys or values in iteration order — emitting text, accumulating
// floats, appending structs — silently breaks the bit-identical goldens the
// paper's overhead decomposition depends on.
//
// The one permitted shape is the canonical fix itself: a range that does
// nothing but collect the keys into a slice,
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort/slices sort of keys...
//	for _, k := range keys { ... }
//
// because the collected set is order-insensitive. A range with no
// iteration variables at all (`for range m`) is likewise allowed: the body
// cannot observe the order.
var MapRange = &Analyzer{
	Name:     "maprange",
	Doc:      "map iteration order is randomized; deterministic-zone code must range over sorted keys",
	ZoneOnly: true,
	Run:      runMapRange,
}

func runMapRange(p *Package) []Finding {
	var out []Finding
	p.inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if rs.Key == nil && rs.Value == nil {
			return true // `for range m`: order unobservable
		}
		if isKeyCollect(p, rs) {
			return true
		}
		out = append(out, p.finding(rs, "maprange",
			"map iteration order is nondeterministic in the deterministic zone; collect and sort the keys, then range over the sorted slice"))
		return true
	})
	return out
}

// isKeyCollect recognizes the allowed key-collection idiom: key variable
// only, no value variable, and a body that is exactly `s = append(s, k)`.
func isKeyCollect(p *Package, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := p.objectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok || p.objectOf(dst) == nil || p.objectOf(dst) != p.objectOf(lhs) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && p.objectOf(arg) != nil && p.objectOf(arg) == p.objectOf(key)
}
