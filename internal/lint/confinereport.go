package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// classify merges the per-function analysis buffers into the field
// registry and emits the confinement findings: unannotated trap-mutated
// fields, annotations the analysis cannot prove, annotations wider than
// any observed sharing, and stale annotations on fields no trap path
// mutates.
func (an *confineAnalysis) classify() {
	type wkey struct {
		f   *fieldInfo
		d   dom
		pos string
	}
	seen := map[wkey]bool{}
	for _, st := range an.state {
		for _, w := range st.writes {
			k := wkey{w.f, w.d, posKey(w.pos)}
			if seen[k] {
				continue
			}
			seen[k] = true
			w.f.writes[w.d] = append(w.f.writes[w.d], w.pos)
		}
		for _, e := range st.external {
			an.boundary[e] = true
		}
	}
	for _, f := range an.fields {
		for d := range f.writes {
			ps := f.writes[d]
			sort.Slice(ps, func(i, j int) bool { return posLess(ps[i], ps[j]) })
		}
	}
	for _, f := range an.sortedFields() {
		trapWritten := len(f.writes) > 0
		inferred := f.inferredClass()
		switch {
		case trapWritten && f.ann == "":
			an.findings = append(an.findings, Finding{
				Pos: f.pos, Analyzer: "confine",
				Message: fmt.Sprintf("trap-mutated field %s.%s has no //zlint:confine annotation (inferred class %s; write provenance %s)",
					f.structName, f.fieldName, inferred, domSetString(f.writes)),
			})
		case trapWritten && f.ann != inferred:
			annDom := classDom(f.ann)
			if w, ok := witnessWrite(f, annDom); ok {
				an.findings = append(an.findings, Finding{
					Pos: f.annPos, Analyzer: "confine",
					Message: fmt.Sprintf("//zlint:confine %s on %s.%s cannot be proven: write at %s has %s provenance (inferred class %s)",
						f.ann, f.structName, f.fieldName, posKey(w.pos), w.d, inferred),
				})
			} else {
				an.findings = append(an.findings, Finding{
					Pos: f.annPos, Analyzer: "confine",
					Message: fmt.Sprintf("//zlint:confine %s on %s.%s admits more sharing than any trap path exhibits (inferred class %s); tighten the annotation",
						f.ann, f.structName, f.fieldName, inferred),
				})
			}
		case !trapWritten && f.ann != "" && !f.annOnType:
			an.findings = append(an.findings, Finding{
				Pos: f.annPos, Analyzer: "confine",
				Message: fmt.Sprintf("//zlint:confine %s on %s.%s is stale: no trap-dispatch path mutates the field",
					f.ann, f.structName, f.fieldName),
			})
		}
	}
}

// classDom maps an annotation class to the largest write domain it admits.
func classDom(class string) dom {
	switch class {
	case "shard":
		return domSelf
	case "home":
		return domHome
	case "carrier":
		return domConfined
	}
	return domGlobal
}

// witnessWrite returns the first write whose domain exceeds what the
// annotated class admits (the proof obstacle), if any.
func witnessWrite(f *fieldInfo, annDom dom) (access, bool) {
	var out []access
	for d, ps := range f.writes {
		if domJoin(annDom, d) != annDom {
			for _, p := range ps {
				out = append(out, access{f: f, d: d, pos: p})
			}
		}
	}
	if len(out) == 0 {
		return access{}, false
	}
	sort.Slice(out, func(i, j int) bool { return posLess(out[i].pos, out[j].pos) })
	return out[0], true
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// domSetString renders the set of observed write domains ("self+global").
func domSetString(writes map[dom][]token.Position) string {
	var ds []string
	for d := range writes {
		ds = append(ds, d.String())
	}
	sort.Strings(ds)
	return strings.Join(ds, "+")
}

func (an *confineAnalysis) sortedFields() []*fieldInfo {
	out := make([]*fieldInfo, 0, len(an.fields))
	for _, f := range an.fields {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// ConfineReport is the deterministic whole-program confinement report
// committed as CONFINEMENT.md and diffed by `make lint` and CI.
type ConfineReport struct {
	Roots    []string
	Packages []ConfinePkg
	Boundary []string
}

// ConfinePkg is one covered package's section.
type ConfinePkg struct {
	Dir    string
	Rows   []ConfineRow
	Frozen []string
}

// ConfineRow classifies one trap-mutated field.
type ConfineRow struct {
	Struct, Field, Type string
	Class, Status       string
	Writes              string // observed write-provenance set
}

// report assembles the classification into the committed report shape.
func (an *confineAnalysis) report() *ConfineReport {
	rep := &ConfineReport{}
	for _, r := range an.roots {
		rep.Roots = append(rep.Roots, r.key)
	}
	byPkg := map[string]*ConfinePkg{}
	for _, f := range an.sortedFields() {
		pk := byPkg[f.pkgDir]
		if pk == nil {
			pk = &ConfinePkg{Dir: f.pkgDir}
			byPkg[f.pkgDir] = pk
		}
		switch {
		case len(f.writes) > 0:
			class := f.inferredClass()
			status := "proven"
			if class == "global" {
				status = "admitted"
			}
			pk.Rows = append(pk.Rows, ConfineRow{
				Struct: f.structName, Field: f.fieldName, Type: f.typ,
				Class: class, Status: status, Writes: domSetString(f.writes),
			})
		case f.reads && !f.writtenPre:
			pk.Frozen = append(pk.Frozen, f.structName+"."+f.fieldName)
		}
	}
	var dirs []string
	for d, pk := range byPkg {
		if len(pk.Rows) > 0 || len(pk.Frozen) > 0 {
			dirs = append(dirs, d)
		}
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		rep.Packages = append(rep.Packages, *byPkg[d])
	}
	var bnd []string
	for e := range an.boundary {
		bnd = append(bnd, fmt.Sprintf("%s (%s)", e.target, e.d))
	}
	sort.Strings(bnd)
	rep.Boundary = bnd
	return rep
}

// Render emits the report as deterministic markdown. Everything in it is
// derived from sorted data; byte-identical output across runs and Go
// versions is the contract that lets CI diff it against the committed
// CONFINEMENT.md.
func (r *ConfineReport) Render() string {
	var b strings.Builder
	b.WriteString("# Confinement report\n\n")
	b.WriteString("Machine-checked by the `confine` analyzer (internal/lint). Regenerate with\n\n")
	b.WriteString("    go run ./cmd/zlint -confine-report ./... > CONFINEMENT.md\n\n")
	b.WriteString("Classes — **home**: every trap-reachable write is indexed by the accessed\n")
	b.WriteString("line's home node. **shard**: every trap-reachable write goes through state\n")
	b.WriteString("owned by the issuing processor. **carrier**: a container type written only\n")
	b.WriteString("through home- or shard-confined owning instances. **global**: admitted\n")
	b.WriteString("shared state, serialized by the trap token today and the worklist for the\n")
	b.WriteString("phase-3 deferred-remote-effects design (DESIGN §16).\n\n")
	fmt.Fprintf(&b, "## Trap roots (%d)\n\n", len(r.Roots))
	for _, root := range r.Roots {
		fmt.Fprintf(&b, "- %s\n", root)
	}
	for _, pk := range r.Packages {
		fmt.Fprintf(&b, "\n## %s\n", pk.Dir)
		if len(pk.Rows) > 0 {
			b.WriteString("\n| field | type | class | status | write provenance |\n")
			b.WriteString("|---|---|---|---|---|\n")
			for _, row := range pk.Rows {
				fmt.Fprintf(&b, "| %s.%s | `%s` | %s | %s | %s |\n",
					row.Struct, row.Field, row.Type, row.Class, row.Status, row.Writes)
			}
		}
		if len(pk.Frozen) > 0 {
			b.WriteString("\nFrozen (trap-read, never trap-written): " + strings.Join(pk.Frozen, ", ") + "\n")
		}
	}
	if len(r.Boundary) > 0 {
		b.WriteString("\n## Boundary (uncovered packages touched from trap paths)\n\n")
		for _, e := range r.Boundary {
			fmt.Fprintf(&b, "- %s\n", e)
		}
	}
	return b.String()
}
