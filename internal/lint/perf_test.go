package lint

import (
	"testing"
	"time"
)

// loadModule loads every package of the module once, outside any timed
// region, so the budget and benchmark measure analysis alone.
func loadModule(tb testing.TB) []*Package {
	tb.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		tb.Fatal(err)
	}
	pkgs, err := NewLoader().Load(root, []string{"./..."})
	if err != nil {
		tb.Fatal(err)
	}
	return pkgs
}

// TestLintTimeBudget guards the whole-module analysis wall-time: the full
// suite (legacy analyzers plus the confine whole-program fixpoint) over
// pre-loaded packages must stay within a budget an order of magnitude
// above today's cost. The fixpoint is worklist-driven and should scale
// near-linearly with reachable functions; a superlinear regression (e.g.
// losing join monotonicity and re-analyzing forever) trips this long
// before it hangs CI.
func TestLintTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program load in -short mode")
	}
	pkgs := loadModule(t)
	start := time.Now()
	findings := Run(pkgs)
	elapsed := time.Since(start)
	const budget = 30 * time.Second
	if elapsed > budget {
		t.Errorf("whole-module lint took %v, budget %v", elapsed, budget)
	}
	t.Logf("whole-module lint: %v, %d finding(s)", elapsed, len(findings))
}

// BenchmarkZlintModule measures the full analysis suite over the whole
// module (packages pre-loaded). Track it with benchdiff when touching the
// lint engine.
func BenchmarkZlintModule(b *testing.B) {
	pkgs := loadModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(pkgs)
	}
}
