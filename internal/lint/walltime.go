package lint

import (
	"go/ast"
	"go/types"
)

// WallTime flags host wall-clock and global-randomness reads inside the
// deterministic zone. Simulated time advances only through the engine's
// virtual clock; a time.Now (or a draw from math/rand's shared global
// source) inside that domain makes results depend on the host scheduler,
// which is exactly the nondeterminism the fault-injection experiments must
// not contain. Host-side packages (runner, prof, benchrec, metrics, ...)
// are outside the zone and may time themselves freely.
//
// Seeded generators are fine: rand.New(rand.NewSource(seed)) is
// deterministic and is how the litmus generator derives programs. Only the
// package-level functions that consult the process-global source (and the
// wall clock itself) are flagged.
var WallTime = &Analyzer{
	Name:     "walltime",
	Doc:      "wall-clock time and global math/rand draws are nondeterministic inside the simulated clock domain",
	ZoneOnly: true,
	Run:      runWallTime,
}

// wallTimeFuncs are the time package functions that read the host clock.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// seededRandFuncs are the math/rand functions that do NOT touch the global
// source: constructors for explicitly seeded generators.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runWallTime(p *Package) []Finding {
	var out []Finding
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil || fn.Type().(*types.Signature).Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Intn) are per-instance and fine
		}
		switch pkgPathOf(fn) {
		case "time":
			if wallTimeFuncs[fn.Name()] {
				out = append(out, p.finding(call, "walltime",
					"time.%s reads the host wall clock inside the simulated clock domain; derive time from the engine's virtual clock", fn.Name()))
			}
		case "math/rand", "math/rand/v2":
			if !seededRandFuncs[fn.Name()] {
				out = append(out, p.finding(call, "walltime",
					"rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed)) so results replay bit-identically", fn.Name()))
			}
		}
		return true
	})
	return out
}
