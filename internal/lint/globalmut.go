package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GlobalMut flags package-level mutable state in deterministic-zone
// packages. Under the parallel runner every grid cell executes the same
// zone code concurrently; a package-level var is shared across cells, so
// writing it is a data race and even reading it couples cells that the
// determinism proof treats as independent. State belongs on the Machine /
// Engine structs, one instance per cell.
//
// Two shapes are exempt:
//
//   - blank vars (`var _ Iface = (*T)(nil)`): compile-time assertions,
//     not state;
//   - vars of interface type error (`var ErrFoo = errors.New(...)`):
//     sentinel errors are assigned once and only ever compared.
//
// Everything else — including read-only lookup tables — must either move
// into a struct, become a function, or carry an explicit
// //zlint:ignore globalmut <reason> stating why it is never written after
// package initialization.
var GlobalMut = &Analyzer{
	Name:     "globalmut",
	Doc:      "package-level mutable state races across parallel runner cells in the deterministic zone",
	ZoneOnly: true,
	Run:      runGlobalMut,
}

func runGlobalMut(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := p.objectOf(name)
					if obj == nil {
						continue
					}
					if isErrorType(obj.Type()) {
						continue
					}
					out = append(out, p.finding(name, "globalmut",
						"package-level var %s is mutable state shared across parallel runner cells; move it onto a per-run struct or justify with //zlint:ignore", name.Name))
				}
			}
		}
	}
	return out
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
