package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// AtomicMix flags a struct field that is accessed both through sync/atomic
// function calls (atomic.AddUint64(&s.n, 1)) and through plain loads or
// stores (s.n++, v := s.n) in the same package. Mixing the two is the
// race-detector-class bug the metrics registry is one edit away from: the
// plain access races with concurrent atomic updates, and on weakly ordered
// hardware can observe torn or stale values. Once a field is atomic, every
// access must go through sync/atomic (or the field should become one of
// the atomic.Int64-style types, which make plain access impossible).
//
// This analyzer runs module-wide: the bug is a host-side race, not a
// determinism leak, so the host packages need it most.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must never also be accessed plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Package) []Finding {
	// Pass 1: collect every field whose address is passed to a sync/atomic
	// function, and remember those selector nodes so pass 2 does not count
	// them as plain accesses.
	atomicFields := map[*types.Var]ast.Node{} // field -> first atomic call (for the message)
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	p.inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil || pkgPathOf(fn) != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok {
				continue
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if fld := p.fieldOf(sel); fld != nil {
				if _, seen := atomicFields[fld]; !seen {
					atomicFields[fld] = call
				}
				inAtomicCall[sel] = true
			}
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other selector resolving to one of those fields is a
	// plain access.
	var out []Finding
	p.inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || inAtomicCall[sel] {
			return true
		}
		fld := p.fieldOf(sel)
		if fld == nil {
			return true
		}
		if first, ok := atomicFields[fld]; ok {
			pos := p.position(first)
			out = append(out, p.finding(sel, "atomicmix",
				"field %s is accessed with sync/atomic at %s:%d but plainly here; every access must be atomic",
				fld.Name(), filepath.Base(pos.Filename), pos.Line))
		}
		return true
	})
	return out
}

// fieldOf resolves a selector expression to the struct field it denotes,
// or nil when it names a method, package member, or unresolved symbol.
func (p *Package) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
