package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// zoneDirs names the deterministic zone: every package under
// internal/<dir> (including subpackages, e.g. internal/check/litmus) must
// behave bit-identically across runs, hosts, and -parallel settings,
// because the paper's overhead decomposition is only trustworthy if the
// golden outputs are byte-stable. Host-side packages (runner, prof,
// benchrec, metrics, workload, ...) are deliberately absent: they may read
// wall-clock time and tolerate scheduling nondeterminism, as long as they
// never feed it back into simulated state.
var zoneDirs = []string{
	"sim", "proto", "machine", "cache", "directory", "mesh",
	"wbuffer", "shm", "psync", "check", "trace", "stats",
}

// inZoneDir reports whether relDir (slash-separated, relative to the module
// root) lies inside the deterministic zone.
func inZoneDir(relDir string) bool {
	for _, z := range zoneDirs {
		prefix := "internal/" + z
		if relDir == prefix || strings.HasPrefix(relDir, prefix+"/") {
			return true
		}
	}
	return false
}

// A Loader parses and type-checks packages, sharing one FileSet and one
// source importer (so each dependency is type-checked at most once across
// the whole run).
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a Loader backed by the standard library's source
// importer — packages are type-checked from source, so the engine needs no
// compiled export data and no dependencies outside the stdlib.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir parses and type-checks the single package in dir (non-test files
// only). inZone marks it as deterministic-zone for the zone-only analyzers.
func (l *Loader) LoadDir(dir string, inZone bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable non-test Go files", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			// Mixed package clauses (e.g. an external test package leaking a
			// non-_test.go file); analyze only the dominant package.
			continue
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(dir, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", dir, err)
	}
	return &Package{
		Dir:    dir,
		Name:   pkgName,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		InZone: inZone,
	}, nil
}

// Load expands the patterns relative to root (the module root) and loads
// every matched package. Patterns follow the go tool's shape: a directory
// path loads that one package, and a trailing "/..." loads the directory
// and everything beneath it. Hidden directories, testdata, and vendor trees
// are skipped.
func (l *Loader) Load(root string, patterns []string) ([]*Package, error) {
	dirs, err := ExpandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		p, err := l.LoadDir(dir, inZoneDir(filepath.ToSlash(rel)))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExpandPatterns resolves go-tool-style package patterns to the sorted list
// of directories that contain at least one buildable non-test Go file.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		switch {
		case pat == "..." || pat == "./...":
			pat, recursive = ".", true
		case strings.HasSuffix(pat, "/..."):
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("%s: no buildable non-test Go files", pat)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// FindModuleRoot walks upward from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
