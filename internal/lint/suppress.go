package lint

import (
	"go/token"
	"strings"
)

// suppressDirective is the comment prefix that silences a finding.
const suppressDirective = "zlint:ignore"

// suppression is one parsed //zlint:ignore comment.
type suppression struct {
	pos      token.Position
	analyzer string // "" when malformed
	reason   string
	bad      string // non-empty: why the directive itself is a finding
	used     bool
}

// suppressionSet holds every directive found in one package.
type suppressionSet struct {
	sups []*suppression
}

// collectSuppressions parses every //zlint:ignore directive in the
// package's comments. The directive grammar is
//
//	//zlint:ignore <analyzer> <reason...>
//
// and both parts are mandatory: an invariant is only allowed to be waived
// on the record, with a named analyzer and a human-readable excuse.
func collectSuppressions(p *Package) *suppressionSet {
	set := &suppressionSet{}
	valid := AnalyzerNames()
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+suppressDirective)
				if !ok {
					continue
				}
				s := &suppression{pos: p.Fset.Position(c.Pos())}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					s.bad = "//zlint:ignore needs an analyzer name and a reason"
				case !valid[fields[0]]:
					s.bad = "//zlint:ignore names unknown analyzer \"" + fields[0] + "\""
				case len(fields) == 1:
					s.analyzer = fields[0]
					s.bad = "//zlint:ignore " + fields[0] + " needs a reason"
				default:
					s.analyzer = fields[0]
					s.reason = strings.Join(fields[1:], " ")
				}
				set.sups = append(set.sups, s)
			}
		}
	}
	return set
}

// suppress reports whether the finding is covered by a well-formed
// directive, marking that directive used. A directive on line N covers
// findings on line N (trailing comment) and line N+1 (comment on the line
// above), in the same file.
func (set *suppressionSet) suppress(f Finding) bool {
	for _, s := range set.sups {
		if s.bad != "" || s.analyzer != f.Analyzer || s.pos.Filename != f.Pos.Filename {
			continue
		}
		if f.Pos.Line == s.pos.Line || f.Pos.Line == s.pos.Line+1 {
			s.used = true
			return true
		}
	}
	return false
}

// problems returns a finding for every malformed directive and every
// well-formed directive that matched nothing — a stale suppression is as
// dangerous as a missing one, because it silently waives the next
// violation someone writes on that line.
func (set *suppressionSet) problems() []Finding {
	var out []Finding
	for _, s := range set.sups {
		switch {
		case s.bad != "":
			out = append(out, Finding{Pos: s.pos, Analyzer: "suppress", Message: s.bad})
		case !s.used:
			out = append(out, Finding{
				Pos: s.pos, Analyzer: "suppress",
				Message: "unused //zlint:ignore " + s.analyzer + " (no " + s.analyzer + " finding on this or the next line)",
			})
		}
	}
	return out
}
