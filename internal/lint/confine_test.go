package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// confineFixtures are the seeded-violation universes for the confine
// analyzer: each is a self-contained package under testdata/confine/ with
// its own Addr type and Env trap root, analyzed with a config scoped to
// that one package. Goldens regenerate with
//
//	go test ./internal/lint -run TestConfineFixtures -update
var confineFixtures = []string{"badanno", "crosshome", "globaltrap"}

// confineFixtureConfig scopes the analysis to one fixture package.
func confineFixtureConfig(dir string) *ConfineConfig {
	return &ConfineConfig{
		Dirs:           []string{dir},
		Roots:          []ConfineRoot{{Dir: dir, Type: "Env"}},
		SelfParamNames: []string{"p"},
		AddrTypeNames:  []string{"Addr"},
	}
}

func TestConfineFixtures(t *testing.T) {
	for _, name := range confineFixtures {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "confine", name)
			p, err := NewLoader().LoadDir(dir, true)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			res := ConfineRun([]*Package{p}, confineFixtureConfig(normPkg(p.Dir)))
			if !res.Ran {
				t.Fatal("confine did not run: fixture package not matched by its config")
			}
			lines := make([]string, 0, len(res.Findings))
			for _, f := range res.Findings {
				f.Pos.Filename = filepath.Base(f.Pos.Filename)
				lines = append(lines, f.String())
			}
			got := strings.Join(lines, "\n") + "\n"
			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("confine findings mismatch\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestConfineRealTree runs the whole-program analysis over the actual
// module and pins the acceptance-critical proofs: the directory presence
// sets and entries, the z-machine writer records, and the per-node store
// buffers must be PROVEN into their partitions, not merely annotated. A
// regression that widens any of these to global (or downgrades a proof to
// an admitted annotation) fails here even before the CONFINEMENT.md diff.
func TestConfineRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program load in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	res := ConfineRun(pkgs, DefaultConfineConfig())
	if !res.Ran {
		t.Fatal("confine did not run: a covered package is missing from ./...")
	}
	for _, f := range res.Findings {
		t.Errorf("unexpected finding: %s", f)
	}

	type want struct{ class, status string }
	wants := map[string]want{
		"internal/cache.Line.ReadyAt":           {"shard", "proven"},
		"internal/directory.Bitset.w0":          {"home", "proven"},
		"internal/directory.Directory.allocs":   {"home", "proven"},
		"internal/directory.Entry.State":        {"home", "proven"},
		"internal/directory.Entry.Version":      {"home", "proven"},
		"internal/machine.Machine.coreFree":     {"shard", "proven"},
		"internal/machine.Machine.values":       {"home", "proven"},
		"internal/memsys.Counters.PerProcReads": {"shard", "proven"},
		"internal/memsys.Counters.ReadMisses":   {"global", "admitted"},
		"internal/memsys.Paged.pages":           {"carrier", "proven"},
		"internal/mesh.Net.busy":                {"global", "admitted"},
		"internal/proto.upd.sb":                 {"shard", "proven"},
		"internal/proto.zline.writeAt":          {"home", "proven"},
		"internal/proto.zline.writer":           {"home", "proven"},
		"internal/proto.zline.written":          {"home", "proven"},
		"internal/wbuffer.MergeBuffer.lines":    {"carrier", "proven"},
		"internal/wbuffer.StoreBuffer.pending":  {"shard", "proven"},
	}
	got := map[string]want{}
	for _, pk := range res.Report.Packages {
		for _, row := range pk.Rows {
			got[pk.Dir+"."+row.Struct+"."+row.Field] = want{row.Class, row.Status}
		}
	}
	for key, w := range wants {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: not classified (expected %s/%s)", key, w.class, w.status)
			continue
		}
		if g != w {
			t.Errorf("%s: classified %s/%s, want %s/%s", key, g.class, g.status, w.class, w.status)
		}
	}
}
