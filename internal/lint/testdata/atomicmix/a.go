// Package fixture seeds atomicmix violations: a field updated through
// sync/atomic functions is also read and written plainly. The typed
// atomic.Uint64 field and the untouched plain field are fine.
package fixture

import "sync/atomic"

type counter struct {
	n    uint64
	safe atomic.Uint64
	name string
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) read() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counter) racyRead() uint64 {
	return c.n
}

func (c *counter) racyWrite() {
	c.n = 0
}

func (c *counter) typed() uint64 {
	return c.safe.Load()
}

func (c *counter) label() string {
	return c.name
}
