// Package fixture seeds globalmut violations: package-level mutable state
// is flagged; sentinel errors and blank compile-time assertions are not.
package fixture

import "errors"

// ErrBad is a sentinel: assigned once, only compared.
var ErrBad = errors.New("bad")

var _ = lookup // compile-time reference, not state

var hits int

var table = map[string]int{"a": 1}

var Buckets = []uint64{1, 2, 4}

func bump() int {
	hits++
	return hits
}

func lookup(k string) int {
	return table[k] + int(Buckets[0])
}
