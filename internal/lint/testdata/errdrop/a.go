// Package fixture seeds errdrop violations: bare, deferred, and
// goroutine-launched calls whose error result vanishes. The fmt print
// family, never-failing writers, and explicit `_ =` discards are fine.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

func write(path string, data string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(data)
	return err
}

func report() {
	fmt.Println("ok")
	var b strings.Builder
	b.WriteString("x")
	_ = os.Remove("tmp")
	os.Remove("tmp")
	go cleanup()
}

func cleanup() error {
	return os.Remove("tmp")
}
