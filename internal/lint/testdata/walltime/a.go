// Package fixture seeds walltime violations: host-clock reads and global
// math/rand draws are flagged; explicitly seeded generators and
// non-clock time functions are not.
package fixture

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano()
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}

func roll() int {
	return rand.Intn(6)
}

func shuffleInPlace(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func parse(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s)
}
