// Package fixture exercises suppression handling: well-formed directives
// (trailing and preceding-line) silence their finding; a directive with no
// reason, an unknown analyzer name, a bare directive, and an unused
// directive are each findings in their own right.
package fixture

import "time"

func trailing() int64 {
	return time.Now().UnixNano() //zlint:ignore walltime fixture exercises a trailing suppression
}

func preceding() int64 {
	//zlint:ignore walltime a directive on the preceding line also counts
	return time.Now().UnixNano()
}

func noReason() int64 {
	return time.Now().UnixNano() //zlint:ignore walltime
}

func unknownAnalyzer() int64 {
	return time.Now().UnixNano() //zlint:ignore fluxcap misfires sometimes
}

//zlint:ignore maprange nothing on the next line ranges a map
func unused() {}

//zlint:ignore
func bare() {}
