// Package globaltrap seeds an unannotated shared-global mutation: a trap
// method bumps a machine-wide tally through a shared container, and the
// mutated field carries no //zlint:confine annotation at all.
package globaltrap

// Addr is the fixture's simulated address type.
type Addr uint64

// counters is machine-wide state reached through a shared pointer.
type counters struct {
	hits uint64 // no annotation: the seeded violation
}

// Env is the fixture's trap root.
type Env struct {
	c *counters

	//zlint:confine shard only the issuing processor's own Env counts here
	n int
}

// Load bumps the issuing Env's own counter (proven shard, no finding) and
// the machine-wide tally (unannotated global write, the finding).
func (e *Env) Load(addr Addr) {
	e.n++
	e.c.hits++
}
