// Package badanno seeds annotation-hygiene violations: a stale class on a
// field no trap path writes, malformed and misplaced directives, and an
// annotation admitting more sharing than any trap path exhibits.
package badanno

// Addr is the fixture's simulated address type.
type Addr uint64

// Env is the fixture's trap root.
type Env struct {
	//zlint:confine global any processor may bump this
	wide int // only ever written self: the annotation is too wide

	//zlint:confine shard
	noReason int // directive missing its reason

	//zlint:confine sideways the class does not exist
	unknown int // directive naming an unknown class

	//zlint:confine shard never trap-written
	stale int // annotated but no trap path writes it
}

//zlint:confine shard directives cannot annotate functions
func (e *Env) Store(addr Addr) {
	e.wide++
	e.noReason++
	e.unknown++
}
