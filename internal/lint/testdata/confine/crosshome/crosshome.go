// Package crosshome seeds a cross-home write: a home-annotated entry
// table indexed by a value displaced off the accessed address's home
// partition. The displaced index launders the address's pedigree through
// arithmetic, so the analysis must refuse to prove the annotation.
package crosshome

// Addr is the fixture's simulated address type.
type Addr uint64

type entry struct {
	//zlint:confine home entries are partitioned by the line's home node
	state int

	//zlint:confine home marks are indexed by the accessed line's home
	seen bool
}

type table struct {
	n     int
	homes [][]entry
}

// good returns the entry in the partition the address actually homes to:
// writes through it are provably home-confined.
func (t *table) good(addr Addr) *entry {
	h := int(addr) % t.n
	return &t.homes[h][0]
}

// at indexes the neighbouring partition — the seeded violation. h+1 is no
// longer a pure derivation of addr, so the write below it is global.
func (t *table) at(addr Addr) *entry {
	h := int(addr) % t.n
	return &t.homes[(h+1)%t.n][0]
}

// Env is the fixture's trap root.
type Env struct {
	t *table
}

// Load writes through the correctly-homed entry (no finding).
func (e *Env) Load(addr Addr) {
	e.t.good(addr).seen = true
}

// Store writes through the displaced entry (the finding).
func (e *Env) Store(addr Addr) {
	e.t.at(addr).state = 1
}
