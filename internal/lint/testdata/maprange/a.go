// Package fixture seeds maprange violations: emitting values in map
// iteration order and folding keys in iteration order are flagged; the
// key-collect-then-sort idiom and the bodyless `for range` are not.
package fixture

import "sort"

func emit(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func sum(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s
}

func emitSorted(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func count(m map[int]string) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func overSlice(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
