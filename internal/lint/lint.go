// Package lint is a project-native static-analysis engine that enforces the
// simulator's determinism and concurrency invariants at compile time rather
// than after the fact through golden tests. It is built entirely on the
// standard library (go/parser + go/ast + go/types with the source importer),
// matching the module's zero-dependency stance.
//
// The engine ships six analyzers grounded in real invariants of this
// codebase (see the Analyzers variable). Three of them apply only to the
// "deterministic zone" — the packages whose outputs must be bit-identical
// across runs and -parallel settings — atomicmix and errdrop apply
// module-wide, and confine is a whole-program analysis that proves the
// protocol-state partition (//zlint:confine annotations, DESIGN.md "State
// confinement") whenever the full module is loaded. Findings are emitted
// as "file:line: analyzer: message" and any unsuppressed finding makes
// cmd/zlint exit nonzero.
//
// A finding can be suppressed with a same-line or preceding-line comment of
// the form
//
//	//zlint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without one is itself a finding,
// as is a suppression that matches nothing (so stale annotations cannot
// linger after the code they excused is gone).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	Dir   string // directory the package was loaded from
	Name  string // package name from the package clause
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info

	// InZone marks the package as part of the deterministic zone: the
	// packages whose behavior must be bit-identical across runs, hosts, and
	// -parallel settings. Zone-only analyzers (maprange, walltime,
	// globalmut) skip packages where this is false.
	InZone bool
}

// An Analyzer inspects one package and reports findings. Exactly one of
// Run and RunGlobal is set: Run sees each package in isolation, while
// RunGlobal sees the whole loaded package set at once (whole-program
// analyses like confine, which must trace call paths across packages).
type Analyzer struct {
	Name string
	Doc  string
	// ZoneOnly restricts the analyzer to deterministic-zone packages.
	ZoneOnly bool
	Run      func(p *Package) []Finding
	// RunGlobal, when set, is invoked once with every loaded package.
	RunGlobal func(pkgs []*Package) []Finding
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{
	MapRange,
	WallTime,
	GlobalMut,
	AtomicMix,
	ErrDrop,
	Confine,
}

// AnalyzerNames returns the set of valid analyzer names (used to validate
// suppression comments).
func AnalyzerNames() map[string]bool {
	names := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		names[a.Name] = true
	}
	return names
}

// Run executes every applicable analyzer on every package, applies
// //zlint:ignore suppressions, and returns the surviving findings plus any
// suppression problems (missing reason, unknown analyzer, unused
// suppression), sorted by file, line, column, analyzer, and message.
// Suppressions are matched across the whole run (by filename), so findings
// from whole-program analyzers are suppressible exactly like per-package
// ones.
func Run(pkgs []*Package) []Finding {
	sups := &suppressionSet{}
	var raw []Finding
	for _, p := range pkgs {
		sups.sups = append(sups.sups, collectSuppressions(p).sups...)
		for _, a := range Analyzers {
			if a.Run == nil || (a.ZoneOnly && !p.InZone) {
				continue
			}
			raw = append(raw, a.Run(p)...)
		}
	}
	for _, a := range Analyzers {
		if a.RunGlobal != nil {
			raw = append(raw, a.RunGlobal(pkgs)...)
		}
	}
	var out []Finding
	for _, f := range raw {
		if sups.suppress(f) {
			continue
		}
		out = append(out, f)
	}
	out = append(out, sups.problems()...)
	SortFindings(out)
	return out
}

// SortFindings orders findings by file, line, column, analyzer, and
// message. The column keeps two same-line findings in a stable order that
// does not depend on analyzer traversal order or the Go version's map
// iteration (the engine reports positions, and positions are the key).
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// inspect walks every non-test file in the package, calling fn for each
// node; fn returning false prunes the subtree.
func (p *Package) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// position resolves a node's position.
func (p *Package) position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// finding constructs a Finding at the node's position.
func (p *Package) finding(n ast.Node, analyzer, format string, args ...any) Finding {
	return Finding{Pos: p.position(n), Analyzer: analyzer, Message: fmt.Sprintf(format, args...)}
}

// objectOf resolves an identifier (plain or the Sel of a selector) to its
// types.Object, or nil.
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// calleeFunc resolves a call expression to the *types.Func it invokes (through
// selectors and parenthesization), or nil for builtins, conversions, and
// indirect calls through function values.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.objectOf(id).(*types.Func)
	return fn
}

// pkgPathOf returns the import path of the package an object belongs to
// ("" for builtins and universe-scope objects).
func pkgPathOf(o types.Object) string {
	if o == nil || o.Pkg() == nil {
		return ""
	}
	return o.Pkg().Path()
}
