package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pval is the provenance of one expression: a domain, plus — for pointers
// and containers — the covered field whose storage the value lives in, so
// a write through the value can be attributed to that field.
type pval struct {
	d      dom
	attrib *fieldInfo
}

func pnone() pval   { return pval{d: domNone} }
func pglobal() pval { return pval{d: domGlobal} }
func pjoin(a, b pval) pval {
	out := pval{d: domJoin(a.d, b.d), attrib: a.attrib}
	if out.attrib == nil {
		out.attrib = b.attrib
	}
	return out
}

// evalBinary folds provenance through arithmetic. Only modular/scaling
// reduction (%, /) preserves a partition index — those are exactly the
// operators the canonical derivations use (addr/lineSize, line%nodes,
// addr/WordSize, p/wordBits). Displacing arithmetic (+, -, |, ...) maps a
// partition index onto a *different* cell, so its result degrades to the
// global domain unless both operands are transparent; homes[h+1] must not
// inherit h's home pedigree. Comparisons and logic yield data, not indexes.
func (ctx *evalCtx) evalBinary(be *ast.BinaryExpr) pval {
	x := ctx.eval(be.X)
	y := ctx.eval(be.Y)
	switch be.Op {
	case token.REM, token.QUO, token.MUL, token.SHL, token.SHR:
		if y.d == domNone {
			return x
		}
		if x.d == domNone {
			return y
		}
		return pjoin(x, y)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
		token.LAND, token.LOR:
		return pnone()
	default:
		if x.d == domNone && y.d == domNone {
			return pnone()
		}
		return pglobal()
	}
}

// access is one recorded field mutation or boundary-read, owned by the
// function that performed it (recomputed whole on re-analysis, merged
// after the fixpoint).
type access struct {
	f   *fieldInfo
	d   dom
	pos token.Position
}

// fnState is the per-function analysis buffer, recomputed by each analyze
// call so a re-analysis replaces (never accumulates onto) stale results
// computed from earlier, smaller bindings.
type fnState struct {
	writes   []access
	external []extEvent
}

// evalCtx evaluates one function body under its current bindings.
type evalCtx struct {
	an      *confineAnalysis
	fn      *cfunc
	p       *Package
	locals  map[types.Object]pval
	recvObj types.Object
	record  bool // final walk: record writes, propagate to callees
	state   *fnState
	changed bool // a local binding grew this pass
	inline  int  // inline-expansion depth (identity-accessor calls)
}

// analyze runs one function: pass 1 is the syntactic pre-pass
// (reachability, written-anywhere, read-anywhere), pass 2 settles local
// bindings under the current parameter bindings and then records writes,
// boundary events, returns, and callee propagation.
func (an *confineAnalysis) analyze(fn *cfunc) {
	if fn.decl.Body == nil {
		return
	}
	if an.nowPass == 1 {
		an.syntactic(fn)
		return
	}
	ctx := &evalCtx{an: an, fn: fn, p: fn.pkg, locals: map[types.Object]pval{}}
	if fn.decl.Recv != nil && len(fn.decl.Recv.List) > 0 && len(fn.decl.Recv.List[0].Names) > 0 {
		ctx.recvObj = fn.pkg.objectOf(fn.decl.Recv.List[0].Names[0])
	}
	// Settle locals: simple chains converge in one pass, loop-carried
	// joins in a few more. The bound only caps re-walks per analyze call;
	// the outer fixpoint re-analyzes whenever inputs grow, so a late
	// convergence is corrected there.
	for i := 0; i < 4; i++ {
		ctx.changed = false
		ctx.walkStmts(fn.decl.Body)
		if !ctx.changed {
			break
		}
	}
	st := &fnState{}
	ctx.record, ctx.state = true, st
	oldRet := append([]pval(nil), fn.ret...)
	oldMut := fn.mutatesRecv
	fn.ret = make([]pval, resultCount(fn))
	ctx.walkStmts(fn.decl.Body)
	an.state[fn] = st
	if fn.mutatesRecv && !oldMut {
		for c := range fn.callers {
			an.enqueue(c)
		}
	}
	for i, r := range fn.ret {
		if i < len(oldRet) {
			fn.ret[i] = pjoin(fn.ret[i], oldRet[i]) // monotone
		}
		if i >= len(oldRet) || fn.ret[i] != oldRet[i] {
			for c := range fn.callers {
				an.enqueue(c)
			}
		}
		_ = r
	}
}

func resultCount(fn *cfunc) int {
	if fn.decl.Type.Results == nil {
		return 0
	}
	n := 0
	for _, f := range fn.decl.Type.Results.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// ---- pass 1: syntactic reachability / written / read ----

func (an *confineAnalysis) syntactic(fn *cfunc) {
	p := fn.pkg
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			for _, callee := range an.resolveCallees(p, nn) {
				callee.callers[fn] = true
				an.markReachable(callee, fn.viaRoot)
			}
		case *ast.AssignStmt:
			for _, lhs := range nn.Lhs {
				an.markWrittenSyntactic(p, lhs)
			}
		case *ast.IncDecStmt:
			an.markWrittenSyntactic(p, nn.X)
		case *ast.SelectorExpr:
			if f := an.selectionField(p, nn); f != nil {
				f.reads = true
			}
		case *ast.CompositeLit:
			an.markCompositeWritten(p, nn)
		}
		return true
	})
}

// markWrittenSyntactic marks the outermost selected field of an lvalue as
// written, and expands whole-struct stores to every field of the struct.
func (an *confineAnalysis) markWrittenSyntactic(p *Package, lhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if f := an.selectionField(p, sel); f != nil {
			f.writtenPre = true
		}
	}
	if tv, ok := p.Info.Types[lhs]; ok {
		for _, f := range an.structFieldsOf(tv.Type) {
			f.writtenPre = true
		}
	}
}

func (an *confineAnalysis) markCompositeWritten(p *Package, cl *ast.CompositeLit) {
	tv, ok := p.Info.Types[cl]
	if !ok {
		return
	}
	fields := an.structFieldsOf(tv.Type)
	if fields == nil {
		return
	}
	keyed := false
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok {
				for _, f := range fields {
					if f.fieldName == id.Name {
						f.writtenPre = true
					}
				}
			}
		}
	}
	if !keyed && len(cl.Elts) > 0 {
		for _, f := range fields {
			f.writtenPre = true
		}
	}
}

// structFieldsOf returns the registered fields of a covered struct type
// (nil for anything else).
func (an *confineAnalysis) structFieldsOf(t types.Type) []*fieldInfo {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return nil
	}
	key := normPkg(n.Obj().Pkg().Path()) + "." + n.Obj().Name()
	return an.structFields[key]
}

// resolveCallees resolves a call to its analyzable callees: the declared
// function for a direct or method call, or every CHA candidate for a call
// through an interface.
func (an *confineAnalysis) resolveCallees(p *Package, call *ast.CallExpr) []*cfunc {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
				return an.chaCandidates(sel.Sel.Name, iface)
			}
		}
	}
	tf := p.calleeFunc(call)
	if tf == nil {
		return nil
	}
	if fn := an.funcs[funcObjKey(tf)]; fn != nil {
		return []*cfunc{fn}
	}
	return nil
}

// selectionField resolves a selector to the covered fieldInfo it reads, or
// nil for methods, package-qualified names, and uncovered fields.
func (an *confineAnalysis) selectionField(p *Package, sel *ast.SelectorExpr) *fieldInfo {
	v, owner := fieldVarOf(p, sel)
	if v == nil || v.Pkg() == nil {
		return nil
	}
	return an.fields[normPkg(v.Pkg().Path())+"."+owner+"."+v.Name()]
}

// fieldVarOf resolves a selector to the field variable it denotes and the
// name of the struct type that declares it (walking through embedded
// fields to the declaring struct).
func fieldVarOf(p *Package, sel *ast.SelectorExpr) (*types.Var, string) {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, ""
	}
	t := s.Recv()
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		st, ok := derefStruct(t)
		if !ok || i >= st.NumFields() {
			return v, ""
		}
		t = st.Field(i).Type()
	}
	if n := namedOf(t); n != nil {
		return v, n.Obj().Name()
	}
	return v, ""
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// ---- pass 2: domain evaluation ----

// walkStmts walks every statement, keeping local bindings up to date and —
// in the record pass — emitting write events and callee propagation.
func (ctx *evalCtx) walkStmts(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.AssignStmt:
			ctx.assign(nn)
			return true
		case *ast.IncDecStmt:
			ctx.writeTo(nn.X, nn)
			return true
		case *ast.RangeStmt:
			ctx.rangeStmt(nn)
			return true
		case *ast.ReturnStmt:
			ctx.returnStmt(nn)
			return true
		case *ast.CallExpr:
			// Bare call statements and nested calls both land here; eval
			// handles argument propagation in the record pass.
			ctx.eval(nn)
			return true
		case *ast.TypeSwitchStmt:
			ctx.typeSwitch(nn)
			return true
		case *ast.FuncLit:
			// A closure's body runs with unknown bindings for its own
			// parameters; captured locals keep their bindings.
			ctx.bindFieldList(nn.Type.Params, pglobal())
			return true
		case *ast.SendStmt:
			ctx.eval(nn.Value)
			return true
		}
		return true
	})
}

func (ctx *evalCtx) bindFieldList(fl *ast.FieldList, v pval) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			if o := ctx.p.objectOf(name); o != nil {
				ctx.bindLocal(o, v)
			}
		}
	}
}

func (ctx *evalCtx) bindLocal(o types.Object, v pval) {
	old, ok := ctx.locals[o]
	nv := pjoin(old, v)
	if !ok || nv != old {
		ctx.locals[o] = nv
		ctx.changed = true
	}
}

func (ctx *evalCtx) assign(as *ast.AssignStmt) {
	// Multi-value forms: x, y := f() / v, ok := m[k] / v, ok := x.(T).
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		vals := ctx.evalMulti(as.Rhs[0], len(as.Lhs))
		for i, lhs := range as.Lhs {
			ctx.assignOne(lhs, vals[i], as)
		}
		return
	}
	for i, lhs := range as.Lhs {
		var v pval
		if i < len(as.Rhs) {
			v = ctx.eval(as.Rhs[i])
		}
		ctx.assignOne(lhs, v, as)
	}
}

func (ctx *evalCtx) assignOne(lhs ast.Expr, v pval, at ast.Node) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		o := ctx.p.objectOf(id)
		if o == nil {
			return
		}
		if _, isParam := ctx.fn.bind[o]; isParam {
			// Reassigning a parameter: track as a local from here on.
			ctx.bindLocal(o, pjoin(pval{d: ctx.fn.bind[o]}, v))
			return
		}
		ctx.bindLocal(o, v)
		return
	}
	ctx.writeTo(lhs, at)
}

// evalMulti evaluates a multi-value expression into n pvals.
func (ctx *evalCtx) evalMulti(e ast.Expr, n int) []pval {
	out := make([]pval, n)
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		rets := ctx.evalCallMulti(call, n)
		copy(out, rets)
		return out
	}
	// v, ok := m[k] / x.(T): first value carries the source's provenance,
	// the ok is a fresh bool.
	v := ctx.eval(e)
	out[0] = v
	for i := 1; i < n; i++ {
		out[i] = pnone()
	}
	return out
}

func (ctx *evalCtx) rangeStmt(r *ast.RangeStmt) {
	c := ctx.eval(r.X)
	var kv, vv pval
	switch {
	case c.d.isConfined():
		kv, vv = pval{d: c.d}, pval{d: c.d, attrib: c.attrib}
	case c.d == domNone:
		kv, vv = pnone(), pnone()
	default:
		kv, vv = pglobal(), pval{d: domGlobal, attrib: c.attrib}
	}
	for _, e := range []ast.Expr{r.Key, r.Value} {
		if e == nil {
			continue
		}
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := ctx.p.objectOf(id); o != nil {
				if e == r.Key {
					ctx.bindLocal(o, kv)
				} else {
					ctx.bindLocal(o, vv)
				}
			}
		}
	}
}

func (ctx *evalCtx) typeSwitch(ts *ast.TypeSwitchStmt) {
	as, ok := ts.Assign.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || len(as.Rhs) != 1 {
		return
	}
	v := ctx.eval(as.Rhs[0])
	// The per-clause variable is a distinct object per CaseClause.
	for _, cc := range ts.Body.List {
		if c, ok := cc.(*ast.CaseClause); ok {
			if o := ctx.p.Info.Implicits[c]; o != nil {
				ctx.bindLocal(o, v)
			}
		}
	}
	_ = id
}

func (ctx *evalCtx) returnStmt(r *ast.ReturnStmt) {
	if !ctx.record || len(ctx.fn.ret) == 0 {
		return
	}
	if len(r.Results) == len(ctx.fn.ret) {
		for i, e := range r.Results {
			ctx.fn.ret[i] = pjoin(ctx.fn.ret[i], ctx.eval(e))
		}
		return
	}
	if len(r.Results) == 1 { // return f() fanning out to multiple results
		vals := ctx.evalMulti(r.Results[0], len(ctx.fn.ret))
		for i := range ctx.fn.ret {
			ctx.fn.ret[i] = pjoin(ctx.fn.ret[i], vals[i])
		}
		return
	}
	// Bare return with named results: the named result locals carry it.
	if ctx.fn.decl.Type.Results != nil {
		i := 0
		for _, f := range ctx.fn.decl.Type.Results.List {
			for _, name := range f.Names {
				if o := ctx.p.objectOf(name); o != nil {
					ctx.fn.ret[i] = pjoin(ctx.fn.ret[i], ctx.locals[o])
				}
				i++
			}
		}
	}
}

// writeTo records a mutation of the place denoted by lhs.
func (ctx *evalCtx) writeTo(lhs ast.Expr, at ast.Node) {
	if !ctx.record {
		return
	}
	lhs = ast.Unparen(lhs)
	var (
		f *fieldInfo
		d dom
	)
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		f = ctx.an.selectionField(ctx.p, l)
		base := ctx.eval(l.X)
		d = directWriteDom(base.d)
		if f == nil {
			ctx.boundaryWrite(l, d)
		}
	case *ast.IndexExpr, *ast.StarExpr:
		pv := ctx.eval(lhs)
		f, d = pv.attrib, pv.d
		if d == domShared {
			d = domGlobal
		}
	default:
		return
	}
	ctx.recordWrite(f, d, at, lhs)
	// A store of a whole covered struct mutates every field of it.
	if tv, ok := ctx.p.Info.Types[lhs]; ok {
		for _, sf := range ctx.an.structFieldsOf(tv.Type) {
			ctx.recordWrite(sf, d, at, lhs)
		}
	}
}

// directWriteDom maps the provenance of a write's base object to the
// write's domain: writing a field of the machine-wide singleton is a
// global mutation no matter who holds the pointer.
func directWriteDom(d dom) dom {
	if d == domShared {
		return domGlobal
	}
	return d
}

func (ctx *evalCtx) recordWrite(f *fieldInfo, d dom, at ast.Node, root ast.Expr) {
	if f == nil || d == domNone {
		return
	}
	ctx.state.writes = append(ctx.state.writes, access{f: f, d: d, pos: ctx.p.position(at)})
	if ctx.recvObj != nil && leftmostObj(ctx.p, root) == ctx.recvObj {
		ctx.fn.mutatesRecv = true
	}
}

// leftmostObj resolves the root identifier of an lvalue chain.
func leftmostObj(p *Package, e ast.Expr) types.Object {
	for {
		switch ee := ast.Unparen(e).(type) {
		case *ast.Ident:
			return p.objectOf(ee)
		case *ast.SelectorExpr:
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		case *ast.SliceExpr:
			e = ee.X
		default:
			return nil
		}
	}
}

// boundaryWrite records a trap-reachable write into an uncovered
// module-internal package (the analysis boundary).
func (ctx *evalCtx) boundaryWrite(sel *ast.SelectorExpr, d dom) {
	v, owner := fieldVarOf(ctx.p, sel)
	if v == nil || v.Pkg() == nil {
		return
	}
	pkg := normPkg(v.Pkg().Path())
	if !strings.HasPrefix(pkg, "internal/") {
		return
	}
	ctx.state.external = append(ctx.state.external,
		extEvent{target: pkg + "." + owner + "." + v.Name() + " ← write", d: d})
}

// eval computes an expression's provenance under the current bindings.
// For scalar values the domain is the partition the value indexes (self,
// home, none for constants and frozen configuration); for pointers and
// containers it is where the object lives.
//
// A value whose static type is a configured address type is in the home
// domain by construction, wherever it traveled: the home function maps
// every address into the home partition for that address, so indexing a
// home-partitioned structure by (addr-derived) % nodes stays inside the
// partition even when the address was staged through a buffer or closure.
// Constants stay transparent — a literal address pins one partition cell,
// which is exactly what the class must not silently admit.
func (ctx *evalCtx) eval(e ast.Expr) pval {
	pv := ctx.evalCore(e)
	if pv.d != domNone && pv.d != domHome {
		if tv, ok := ctx.p.Info.Types[e]; ok && tv.IsValue() && ctx.an.isAddrType(tv.Type) {
			pv.d = domHome
		}
	}
	return pv
}

func (ctx *evalCtx) evalCore(e ast.Expr) pval {
	switch ee := e.(type) {
	case *ast.Ident:
		return ctx.evalIdent(ee)
	case *ast.BasicLit:
		return pnone()
	case *ast.ParenExpr:
		return ctx.eval(ee.X)
	case *ast.SelectorExpr:
		return ctx.evalSelector(ee)
	case *ast.IndexExpr:
		return ctx.evalIndex(ee)
	case *ast.IndexListExpr:
		return ctx.eval(ee.X)
	case *ast.StarExpr:
		return ctx.eval(ee.X)
	case *ast.UnaryExpr:
		return ctx.eval(ee.X)
	case *ast.BinaryExpr:
		return ctx.evalBinary(ee)
	case *ast.KeyValueExpr:
		return ctx.eval(ee.Value)
	case *ast.CallExpr:
		rets := ctx.evalCallMulti(ee, 1)
		return rets[0]
	case *ast.CompositeLit:
		for _, el := range ee.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				ctx.eval(kv.Value)
			} else {
				ctx.eval(el)
			}
		}
		return pnone()
	case *ast.TypeAssertExpr:
		return ctx.eval(ee.X)
	case *ast.SliceExpr:
		return ctx.eval(ee.X)
	case *ast.FuncLit:
		return pnone()
	}
	return pglobal()
}

func (ctx *evalCtx) evalIdent(id *ast.Ident) pval {
	if id.Name == "_" || id.Name == "nil" || id.Name == "true" || id.Name == "false" {
		return pnone()
	}
	o := ctx.p.objectOf(id)
	if o == nil {
		return pnone()
	}
	if v, ok := ctx.locals[o]; ok {
		return v
	}
	if d, ok := ctx.fn.bind[o]; ok {
		return pval{d: d}
	}
	switch o.(type) {
	case *types.Const, *types.TypeName, *types.Func, *types.Builtin:
		return pnone()
	case *types.Var:
		if o.Parent() != nil && o.Parent().Parent() == types.Universe {
			// Package-level variable: shared by construction (globalmut
			// already bans these in the deterministic zone).
			return pglobal()
		}
		// A local we have not seen bound yet (declared via var, or bound
		// later in a loop): fresh until proven otherwise.
		return pnone()
	}
	return pnone()
}

func (ctx *evalCtx) evalSelector(sel *ast.SelectorExpr) pval {
	s, ok := ctx.p.Info.Selections[sel]
	if !ok {
		// Package-qualified name.
		o := ctx.p.objectOf(sel.Sel)
		switch o.(type) {
		case *types.Const, *types.TypeName, *types.Func, *types.Builtin:
			return pnone()
		case *types.Var:
			return pglobal()
		}
		return pnone()
	}
	if s.Kind() != types.FieldVal {
		return pnone() // method value; dynamic calls are not followed
	}
	base := ctx.eval(sel.X)
	v, owner := fieldVarOf(ctx.p, sel)
	if v == nil {
		return pglobal()
	}
	var key string
	if v.Pkg() != nil {
		key = normPkg(v.Pkg().Path()) + "." + owner + "." + v.Name()
	}
	f := ctx.an.fields[key]
	if base.d == domNone {
		// The base object is fresh or its binding has not propagated yet
		// (the fixpoint may walk a callee before its receiver's domain
		// arrives). Stay transparent: joins are monotone, so letting an
		// early walk fall through to global would pollute every callee
		// binding permanently; none re-derives on the next walk instead.
		return pval{d: domNone, attrib: orAttrib(f, base.attrib)}
	}
	switch classifyFieldType(v.Type()) {
	case fieldPtr:
		if ctx.an.selfPtr[key] && base.d == domSelf {
			return pval{d: domSelf}
		}
		if ptrToOwnedData(v.Type()) {
			// A pointer to plain data (array/basic): an owned extension of
			// the base object (e.g. a bitset's overflow words).
			return pval{d: base.d, attrib: f}
		}
		if base.d.isConfined() || base.d == domShared {
			return pval{d: domShared}
		}
		return pglobal()
	case fieldContainer:
		// Slices, arrays, maps, structs, channels: part of the base object.
		d := base.d
		return pval{d: d, attrib: orAttrib(f, base.attrib)}
	default: // scalar
		if ctx.an.identity[key] && base.d == domSelf {
			return pval{d: domSelf}
		}
		if f != nil && !f.writtenPre {
			return pnone() // frozen configuration: transparent
		}
		if key != "" && f == nil && v.Pkg() != nil {
			// Scalar of an uncovered struct: unknown data.
			return pglobal()
		}
		return pglobal()
	}
}

func orAttrib(a, b *fieldInfo) *fieldInfo {
	if a != nil {
		return a
	}
	return b
}

type fieldTypeClass uint8

const (
	fieldScalar fieldTypeClass = iota
	fieldPtr
	fieldContainer
)

func classifyFieldType(t types.Type) fieldTypeClass {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return fieldPtr
	case *types.Slice, *types.Array, *types.Map, *types.Struct, *types.Chan:
		return fieldContainer
	case *types.Interface:
		return fieldPtr
	case *types.Signature:
		return fieldScalar
	case *types.Basic:
		_ = u
		return fieldScalar
	}
	return fieldScalar
}

// ptrToOwnedData reports whether a pointer type points at plain data — an
// array or basic value with no methods — which the analysis treats as an
// owned extension of the containing object rather than a shared singleton.
func ptrToOwnedData(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	switch ptr.Elem().Underlying().(type) {
	case *types.Array, *types.Basic:
		return true
	}
	return false
}

func (ctx *evalCtx) evalIndex(ix *ast.IndexExpr) pval {
	// Generic instantiation (F[T]) rather than an index expression.
	if tv, ok := ctx.p.Info.Types[ix.Index]; ok && tv.IsType() {
		return ctx.eval(ix.X)
	}
	base := ctx.eval(ix.X)
	switch {
	case base.d.isConfined():
		return pval{d: base.d, attrib: base.attrib}
	case base.d == domShared:
		idx := ctx.eval(ix.Index)
		if idx.d == domSelf || idx.d == domHome {
			return pval{d: idx.d, attrib: base.attrib}
		}
		return pval{d: domGlobal, attrib: base.attrib}
	case base.d == domNone:
		return pnone()
	}
	return pval{d: domGlobal, attrib: base.attrib}
}

// evalCallMulti evaluates a call and returns n result provenances,
// propagating argument bindings into every resolved callee in the record
// pass.
func (ctx *evalCtx) evalCallMulti(call *ast.CallExpr, n int) []pval {
	out := make([]pval, n)
	for i := range out {
		out[i] = pglobal()
	}
	// Conversion?
	if tv, ok := ctx.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			out[0] = ctx.eval(call.Args[0])
		}
		return out
	}
	// Builtin?
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := ctx.p.objectOf(id).(*types.Builtin); ok {
			return ctx.evalBuiltin(id.Name, call, out)
		}
	}
	// Carrier element accessor?
	if pv, ok := ctx.evalElemMethod(call); ok {
		for _, a := range call.Args {
			ctx.eval(a)
		}
		out[0] = pv
		return out
	}
	callees := ctx.an.resolveCallees(ctx.p, call)
	for _, a := range call.Args {
		ctx.eval(a) // evaluate for nested calls' side effects
	}
	if len(callees) == 0 {
		ctx.externalCall(call)
		return out
	}
	for i := range out {
		out[i] = pnone() // join of callee returns, grown below
	}
	for _, callee := range callees {
		if ctx.record {
			callee.callers[ctx.fn] = true
			ctx.propagateArgs(call, callee)
			ctx.maybeRecvMutation(call, callee)
		}
		if n == 1 && len(callees) == 1 {
			// Identity accessors (Proc.ID, base.line, memsys.Line, ...)
			// must be evaluated per call site: the joined summary of a
			// helper shared between a self trap path and the kernel
			// scheduler would degrade every caller to global.
			if pv, ok := ctx.tryInline(call, callee); ok {
				out[0] = pv
				return out
			}
		}
		for i := 0; i < n && i < len(callee.ret); i++ {
			out[i] = pjoin(out[i], callee.ret[i])
		}
	}
	return out
}

// tryInline evaluates a single-return callee's result expression with the
// call site's actual argument provenances bound, giving one level of
// context sensitivity for the pure accessor helpers the protocol code is
// written in terms of. Anything with more than one statement keeps its
// joined summary.
func (ctx *evalCtx) tryInline(call *ast.CallExpr, callee *cfunc) (pval, bool) {
	if ctx.inline >= 8 || callee.decl.Body == nil || len(callee.decl.Body.List) != 1 {
		return pval{}, false
	}
	ret, ok := callee.decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return pval{}, false
	}
	child := &evalCtx{
		an:     ctx.an,
		fn:     callee,
		p:      callee.pkg,
		locals: map[types.Object]pval{},
		inline: ctx.inline + 1,
	}
	if ro := calleeRecvObj(callee); ro != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := ctx.p.Info.Selections[sel]; isSel {
				child.locals[ro] = ctx.eval(sel.X)
			}
		}
	}
	params := callee.decl.Type.Params
	if params != nil {
		var objs []types.Object
		for _, f := range params.List {
			for _, name := range f.Names {
				objs = append(objs, callee.pkg.objectOf(name))
			}
		}
		for i, a := range call.Args {
			if i < len(objs) && objs[i] != nil {
				child.locals[objs[i]] = ctx.eval(a)
			}
		}
	}
	return child.eval(ret.Results[0]), true
}

func (ctx *evalCtx) evalBuiltin(name string, call *ast.CallExpr, out []pval) []pval {
	switch name {
	case "len", "cap", "new", "make":
		for _, a := range call.Args {
			ctx.eval(a)
		}
		out[0] = pnone()
	case "append":
		v := pnone()
		for _, a := range call.Args {
			v = pjoin(v, ctx.eval(a))
		}
		out[0] = v
		// Appending mutates the backing store of the destination.
		if len(call.Args) > 0 {
			ctx.writeTo(call.Args[0], call)
		}
	case "copy", "delete":
		for _, a := range call.Args {
			ctx.eval(a)
		}
		if len(call.Args) > 0 {
			ctx.writeTo(call.Args[0], call)
		}
		out[0] = pnone()
	default:
		for _, a := range call.Args {
			ctx.eval(a)
		}
		out[0] = pnone()
	}
	return out
}

// evalElemMethod handles the configured carrier-table accessors (Paged.At
// and friends): the receiver and result take the element's partition.
func (ctx *evalCtx) evalElemMethod(call *ast.CallExpr) (pval, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return pval{}, false
	}
	s, ok := ctx.p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return pval{}, false
	}
	rn := namedOf(s.Recv())
	if rn == nil || !ctx.an.cfg.ElemMethods[rn.Obj().Name()+"."+sel.Sel.Name] {
		return pval{}, false
	}
	recv := ctx.eval(sel.X)
	d := domGlobal
	switch {
	case recv.d.isConfined():
		d = recv.d
	case recv.d == domShared && len(call.Args) > 0:
		if idx := ctx.eval(call.Args[0]); idx.d == domSelf || idx.d == domHome {
			d = idx.d
		}
	case recv.d == domNone:
		d = domNone
	}
	pv := pval{d: d, attrib: recv.attrib}
	if ctx.record {
		// The accessor itself is covered code (it may grow the table):
		// analyze it under the resolved element domain.
		for _, callee := range ctx.an.resolveCallees(ctx.p, call) {
			callee.callers[ctx.fn] = true
			if ro := calleeRecvObj(callee); ro != nil {
				ctx.an.joinBind(callee, ro, d)
			}
			ctx.propagateParamsOnly(call, callee)
		}
	}
	return pv, true
}

func calleeRecvObj(fn *cfunc) types.Object {
	if fn.decl.Recv == nil || len(fn.decl.Recv.List) == 0 || len(fn.decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return fn.pkg.objectOf(fn.decl.Recv.List[0].Names[0])
}

// propagateArgs joins the call's argument and receiver provenances into
// the callee's bindings, enqueueing it when they grow.
func (ctx *evalCtx) propagateArgs(call *ast.CallExpr, callee *cfunc) {
	if ro := calleeRecvObj(callee); ro != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv := ctx.eval(sel.X)
			d := recv.d
			if d == domNone {
				d = domNone // fresh receiver: constructor-style, keep none
			}
			ctx.an.joinBind(callee, ro, d)
		} else {
			ctx.an.joinBind(callee, ro, domGlobal) // method expression etc.
		}
	}
	ctx.propagateParamsOnly(call, callee)
}

func (ctx *evalCtx) propagateParamsOnly(call *ast.CallExpr, callee *cfunc) {
	params := callee.decl.Type.Params
	if params == nil {
		return
	}
	var objs []types.Object
	for _, f := range params.List {
		for _, name := range f.Names {
			objs = append(objs, callee.pkg.objectOf(name))
		}
		if len(f.Names) == 0 {
			objs = append(objs, nil) // unnamed parameter absorbs nothing
		}
	}
	for i, a := range call.Args {
		d := ctx.eval(a).d
		if d == domShared {
			d = domShared // object args keep shared; joinBind handles it
		}
		j := i
		if j >= len(objs) {
			j = len(objs) - 1 // variadic tail
		}
		if j >= 0 && objs[j] != nil {
			ctx.an.joinBind(callee, objs[j], d)
		}
	}
}

// maybeRecvMutation attributes a mutating method call on a value-typed
// field (e.g. entry.Sharers.Add(p)) as a write to that field.
func (ctx *evalCtx) maybeRecvMutation(call *ast.CallExpr, callee *cfunc) {
	if !callee.mutatesRecv {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvExpr := ast.Unparen(sel.X)
	switch r := recvExpr.(type) {
	case *ast.SelectorExpr:
		if f := ctx.an.selectionField(ctx.p, r); f != nil {
			if v, _ := fieldVarOf(ctx.p, r); v != nil && classifyFieldType(v.Type()) == fieldPtr {
				// A mutating call through a pointer or interface handle
				// mutates the pointee, whose own fields are classified;
				// the handle itself is never written.
				return
			}
			base := ctx.eval(r.X)
			ctx.recordWrite(f, directWriteDom(base.d), call, recvExpr)
		} else {
			ctx.boundaryWrite(r, directWriteDom(ctx.eval(r.X).d))
		}
	case *ast.IndexExpr:
		pv := ctx.eval(r)
		ctx.recordWrite(pv.attrib, directWriteDom(pv.d), call, recvExpr)
	}
}

// externalCall records a trap-reachable call into an uncovered
// module-internal package.
func (ctx *evalCtx) externalCall(call *ast.CallExpr) {
	if !ctx.record {
		return
	}
	tf := ctx.p.calleeFunc(call)
	if tf == nil || tf.Pkg() == nil {
		return
	}
	pkg := normPkg(tf.Pkg().Path())
	if !strings.HasPrefix(pkg, "internal/") {
		return
	}
	d := domGlobal
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := ctx.p.Info.Selections[sel]; isSel {
			d = ctx.eval(sel.X).d
		}
	}
	name := funcObjKey(tf)
	ctx.state.external = append(ctx.state.external, extEvent{target: name + "() ← call", d: d})
}

// joinBind grows a callee's parameter binding, re-enqueueing the callee
// when it changes.
func (an *confineAnalysis) joinBind(fn *cfunc, o types.Object, d dom) {
	if o == nil || d == domNone {
		if _, ok := fn.bind[o]; o == nil || ok {
			return
		}
		// First sighting at none: record so later joins have a base.
		fn.bind[o] = domNone
		return
	}
	old, ok := fn.bind[o]
	nd := domJoin(old, d)
	if !ok || nd != old {
		fn.bind[o] = nd
		an.enqueue(fn)
	}
}
