package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata expected.txt goldens from current analyzer output")

// fixtureCases maps each testdata fixture to whether it is analyzed as a
// deterministic-zone package (the zone-only analyzers skip it otherwise).
var fixtureCases = []struct {
	name   string
	inZone bool
}{
	{"maprange", true},
	{"walltime", true},
	{"globalmut", true},
	{"atomicmix", false},
	{"errdrop", false},
	{"suppress", true},
}

// TestFixtures runs the full suite over each seeded-bug fixture package and
// compares the diagnostics against the fixture's expected.txt golden.
// Regenerate goldens with `go test ./internal/lint -run TestFixtures -update`.
func TestFixtures(t *testing.T) {
	loader := NewLoader()
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.name)
			p, err := loader.LoadDir(dir, tc.inZone)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			var lines []string
			for _, f := range Run([]*Package{p}) {
				f.Pos.Filename = filepath.Base(f.Pos.Filename)
				lines = append(lines, f.String())
			}
			got := strings.Join(lines, "\n")
			if got != "" {
				got += "\n"
			}
			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("diagnostics mismatch\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}

// TestZoneClassification pins the deterministic-zone membership rule: the
// zone covers internal/<pkg> and its subpackages for the enumerated
// packages, and nothing host-side.
func TestZoneClassification(t *testing.T) {
	inZone := []string{
		"internal/sim", "internal/proto", "internal/machine", "internal/cache",
		"internal/directory", "internal/mesh", "internal/wbuffer", "internal/shm",
		"internal/psync", "internal/check", "internal/check/litmus",
		"internal/trace", "internal/stats",
	}
	outOfZone := []string{
		".", "cmd/zsim", "cmd/zlint", "internal/runner", "internal/prof",
		"internal/benchrec", "internal/metrics", "internal/workload",
		"internal/lint", "internal/simulator", "internal/statsd",
	}
	for _, rel := range inZone {
		if !inZoneDir(rel) {
			t.Errorf("inZoneDir(%q) = false, want true", rel)
		}
	}
	for _, rel := range outOfZone {
		if inZoneDir(rel) {
			t.Errorf("inZoneDir(%q) = true, want false", rel)
		}
	}
}

// TestExpandPatterns checks go-tool-style pattern expansion against this
// package's own testdata layout.
func TestExpandPatterns(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var sawLint, sawTestdata bool
	for _, d := range dirs {
		rel, _ := filepath.Rel(root, d)
		rel = filepath.ToSlash(rel)
		if rel == "internal/lint" {
			sawLint = true
		}
		if strings.Contains(rel, "testdata") {
			sawTestdata = true
		}
	}
	if !sawLint {
		t.Error("./... did not include internal/lint")
	}
	if sawTestdata {
		t.Error("./... descended into a testdata directory")
	}

	one, err := ExpandPatterns(root, []string{"internal/lint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("plain-dir pattern matched %d dirs, want 1", len(one))
	}

	if _, err := ExpandPatterns(root, []string{"internal/lint/testdata"}); err == nil {
		t.Error("expected an error for a directory with no buildable Go files")
	}
}

// TestCleanTree is the gate's own gate: the current tree must produce zero
// findings, so `make lint` stays green and any new violation fails this
// test even before CI runs the CLI. Skipped in -short mode: it type-checks
// the whole module from source.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is not short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs) {
		t.Errorf("%s", f)
	}
}
