package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags call statements that silently discard an error result —
// a bare `f()` expression statement (or `defer f()` / `go f()`) where f
// returns an error nobody looks at. A dropped error in the experiment
// pipeline means a truncated BENCH record or a half-written profile that
// the benchdiff gate then compares in good faith. Assigning the error to
// the blank identifier (`_ = f()`) is allowed: it is a visible, greppable
// statement of intent, unlike a bare call that merely looks complete.
//
// Print-family calls on fmt (whose errors are write errors on stdout) and
// the never-failing writers strings.Builder and bytes.Buffer are exempt.
// Tests are outside this analyzer entirely (the engine never parses
// _test.go files).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarding an error return hides failures; handle it or assign it to _",
	Run:  runErrDrop,
}

func runErrDrop(p *Package) []Finding {
	var out []Finding
	check := func(call *ast.CallExpr) {
		if !returnsError(p, call) || errDropExempt(p, call) {
			return
		}
		out = append(out, p.finding(call, "errdrop",
			"error result of %s is discarded; handle it or assign it to _", calleeName(p, call)))
	}
	p.inspect(func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				check(call)
			}
		case *ast.DeferStmt:
			check(st.Call)
		case *ast.GoStmt:
			check(st.Call)
		}
		return true
	})
	return out
}

// returnsError reports whether any result of the call has type error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	t := p.Info.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// errDropExempt allowlists callees whose error result is conventionally
// ignored: fmt's print family, and writers that document they never fail.
func errDropExempt(p *Package, call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if pt, ok := rt.(*types.Pointer); ok {
			rt = pt.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			obj := named.Obj()
			full := pkgPathOf(obj) + "." + obj.Name()
			return full == "strings.Builder" || full == "bytes.Buffer"
		}
		return false
	}
	return pkgPathOf(fn) == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint"))
}

// calleeName renders the callee for the diagnostic message.
func calleeName(p *Package, call *ast.CallExpr) string {
	if fn := p.calleeFunc(call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "(" + types.TypeString(sig.Recv().Type(), nil) + ")." + fn.Name()
		}
		if path := pkgPathOf(fn); path != "" && path != p.Types.Path() {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "call"
}
