package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Confine is the whole-program shard-confinement analyzer: the
// machine-checked form of ROADMAP's protocol-state partition argument. It
// inventories every mutable struct field reachable from a memory-trap
// dispatch (the machine.Env trap methods plus the protocols' dispatch-time
// ScopeOf probes), traces which fields each trap path writes through a
// call graph built from go/types, infers each field's confinement class
// from the provenance of those writes, and verifies — never trusts — the
// //zlint:confine annotations on the field declarations:
//
//	//zlint:confine <class> <reason>
//
// with class one of
//
//	home    every trap-reachable write is indexed by the accessed
//	        address (line → home partition): the field's state is owned
//	        by the home node of the line it describes
//	shard   every trap-reachable write goes through state owned by the
//	        issuing processor (its Env, its node's per-node containers)
//	carrier a reusable container type written only through its owning
//	        instance, and every owning instance is home- or
//	        shard-confined (e.g. the paged tables, presence bitsets)
//	global  admitted shared state: any processor's trap path may write
//	        it (event counters, mesh links, kernel scheduler state)
//
// A missing annotation on a trap-mutated field, an annotation the analysis
// cannot prove (the inferred class differs), and a stale annotation on a
// field no trap path mutates are all findings, exactly like unused
// //zlint:ignore suppressions. The full classification is emitted as a
// deterministic report (cmd/zlint -confine-report) committed as
// CONFINEMENT.md and diffed in CI, so widening the sharing of any protocol
// field fails lint until the report is consciously re-blessed.
var Confine = &Analyzer{
	Name: "confine",
	Doc:  "protocol-state confinement: trap-reachable field mutations must match their //zlint:confine class",
	RunGlobal: func(pkgs []*Package) []Finding {
		return ConfineRun(pkgs, DefaultConfineConfig()).Findings
	},
}

// confineClasses are the legal annotation classes.
var confineClasses = map[string]bool{
	"home": true, "shard": true, "carrier": true, "global": true,
}

// confineDirective is the comment prefix of a confinement annotation.
const confineDirective = "zlint:confine"

// ConfineRoot names trap entry points: the methods of one type. An empty
// Methods list means every method of the type.
type ConfineRoot struct {
	Dir     string // module-relative package directory
	Type    string // receiver (Roots) or interface (IfaceRoots) type name
	Methods []string
}

// ConfineConfig parameterizes the analysis so the seeded-violation
// fixtures can run it over miniature universes. DefaultConfineConfig
// describes the real tree.
type ConfineConfig struct {
	// Dirs are the covered packages (module-relative). The analysis runs
	// only when every one of them is present in the loaded package set;
	// whole-program conclusions from a partial program would be wrong.
	Dirs []string
	// Roots are concrete trap entry points. Their receiver binds to the
	// issuing processor (self) except for methods listed in
	// NonSelfReceiverMethods, their memsys.Addr-typed parameters bind to
	// the address domain (home), and their int parameters named by
	// SelfParamNames bind to self.
	Roots []ConfineRoot
	// IfaceRoots are interfaces whose covered implementations are roots
	// (the dispatch-time scope probes, which the kernel reaches through a
	// closure the call graph cannot follow).
	IfaceRoots []ConfineRoot
	// NonSelfReceiverMethods are root methods whose receiver is NOT the
	// issuing processor (Env.Unblock: the waker runs it on the wakee).
	NonSelfReceiverMethods []string
	// SelfPointerFields ("dir.Type.Field") are pointer fields whose
	// pointee belongs to the issuing processor when read from a
	// self-confined base (Env.p, Env.st, Proc.shd).
	SelfPointerFields []string
	// IdentityFields ("dir.Type.Field") hold the owner's own identity
	// (Proc.id, Env.shard): read from a self base, the value indexes self.
	IdentityFields []string
	// SelfParamNames are int parameter names that denote the issuing
	// processor in root and interface-root signatures (the module-wide
	// convention is "p").
	SelfParamNames []string
	// AddrTypeNames are named types whose values carry the address domain
	// (memsys.Addr; fixtures declare their own).
	AddrTypeNames []string
	// ElemMethods ("Type.Method") are carrier-table accessors returning a
	// pointer to the element selected by their first argument (Paged.At,
	// Paged.Peek, Paged.Load): the receiver and result take the element's
	// partition — the receiver's own domain when the receiver is already
	// confined, the first argument's domain when the receiver is the
	// machine-wide singleton.
	ElemMethods map[string]bool
}

// DefaultConfineConfig covers the real protocol/state packages.
func DefaultConfineConfig() *ConfineConfig {
	return &ConfineConfig{
		Dirs: []string{
			"internal/cache", "internal/directory", "internal/machine",
			"internal/memsys", "internal/mesh", "internal/proto",
			"internal/shm", "internal/sim", "internal/wbuffer",
		},
		Roots: []ConfineRoot{{Dir: "internal/machine", Type: "Env"}},
		IfaceRoots: []ConfineRoot{
			{Dir: "internal/memsys", Type: "ScopedSystem"},
			{Dir: "internal/memsys", Type: "TokenSystem"},
		},
		NonSelfReceiverMethods: []string{"Unblock"},
		SelfPointerFields: []string{
			"internal/machine.Env.p",
			"internal/machine.Env.st",
			"internal/sim.Proc.shd",
		},
		IdentityFields: []string{
			"internal/sim.Proc.id",
			"internal/machine.Env.shard",
		},
		SelfParamNames: []string{"p"},
		AddrTypeNames:  []string{"Addr"},
		ElemMethods: map[string]bool{
			"Paged.At":   true,
			"Paged.Peek": true,
			"Paged.Load": true,
		},
	}
}

// dom is the provenance lattice. none (constants, frozen configuration,
// fresh locals) is the identity of the join; self and home are the two
// confined partitions; confined is their join (a carrier instance lives in
// one confined container or another, never in shared state); shared marks
// the machine-wide singleton objects, whose elements a confined index can
// still partition; global is the top.
type dom uint8

const (
	domNone dom = iota
	domSelf
	domHome
	domConfined
	domShared
	domGlobal
)

func (d dom) String() string {
	switch d {
	case domNone:
		return "none"
	case domSelf:
		return "self"
	case domHome:
		return "home"
	case domConfined:
		return "confined"
	case domShared:
		return "shared"
	}
	return "global"
}

func domJoin(a, b dom) dom {
	if a == b {
		return a
	}
	if a == domNone {
		return b
	}
	if b == domNone {
		return a
	}
	confined := func(d dom) bool { return d == domSelf || d == domHome || d == domConfined }
	if confined(a) && confined(b) {
		return domConfined
	}
	return domGlobal
}

// confined reports whether the domain proves a partition (self, home, or
// their carrier join).
func (d dom) isConfined() bool {
	return d == domSelf || d == domHome || d == domConfined
}

// normPkg normalizes a package path or load directory to a stable
// module-relative key: the suffix starting at "internal/" when present
// (this covers both load dirs, absolute or not, and the source importer's
// "zsim/internal/..." paths), else the suffix starting at "testdata/"
// (fixture universes), else the path unchanged.
func normPkg(path string) string {
	if i := strings.Index(path, "internal/"); i >= 0 {
		return path[i:]
	}
	if i := strings.Index(path, "testdata/"); i >= 0 {
		return path[i:]
	}
	return path
}

// fieldInfo is one struct field of a covered package: the unit of
// classification.
type fieldInfo struct {
	key        string // pkg.Struct.Field, pkg normalized
	pkgDir     string
	structName string
	fieldName  string
	typ        string
	covered    bool
	pos        token.Position

	ann       string // annotated class ("" when unannotated)
	annPos    token.Position
	annBad    string // non-empty: why the directive is malformed
	annOnType bool   // annotation inherited from the struct declaration

	// Analysis results.
	writes     map[dom][]token.Position // trap-reachable writes by domain
	reads      bool                     // read on a trap-reachable path
	writtenPre bool                     // any reachable syntactic write (pre-pass)
}

func (f *fieldInfo) writeDom() dom {
	d := domNone
	for wd := range f.writes {
		d = domJoin(d, wd)
	}
	return d
}

// inferredClass maps the joined write domain to an annotation class.
func (f *fieldInfo) inferredClass() string {
	switch f.writeDom() {
	case domSelf:
		return "shard"
	case domHome:
		return "home"
	case domConfined:
		return "carrier"
	}
	return "global"
}

// cfunc is one analyzable function: a declared function or method of a
// covered package.
type cfunc struct {
	key  string
	pkg  *Package
	decl *ast.FuncDecl

	reachable bool
	viaRoot   string // one example root that reaches it

	isRoot  bool
	recvDom dom // root receiver binding (self for trap methods, shared for protocol singletons)

	bind        map[types.Object]dom // joined parameter/receiver bindings
	ret         []pval               // per-result provenance
	mutatesRecv bool

	callers map[*cfunc]bool
}

// extEvent is one boundary crossing: a write to a field of an uncovered
// package, or a call into one, from a trap-reachable function.
type extEvent struct {
	target string // "pkg.Type.Field" or "pkg.Type.Method()"
	d      dom
}

// confineAnalysis carries the whole-program state.
type confineAnalysis struct {
	cfg  *ConfineConfig
	pkgs map[string]*Package // covered, by normalized dir

	funcs   map[string]*cfunc
	methods map[string][]*cfunc // method name -> candidates (CHA)

	fields       map[string]*fieldInfo
	structFields map[string][]*fieldInfo // "pkg.Struct" -> its fields
	state        map[*cfunc]*fnState     // per-function analysis buffers

	selfPtr  map[string]bool
	identity map[string]bool
	selfPar  map[string]bool
	addrType map[string]bool

	roots    []*cfunc
	boundary map[extEvent]bool

	work    []*cfunc
	inWork  map[*cfunc]bool
	nowPass int // 1 = syntactic pre-pass, 2 = domain fixpoint

	findings []Finding
}

// ConfineResult is the outcome of one whole-program run.
type ConfineResult struct {
	// Ran is false when the loaded package set does not contain every
	// covered package (whole-program analysis needs the whole program).
	Ran      bool
	Findings []Finding
	Report   *ConfineReport
}

// ConfineRun executes the analysis over the loaded packages with the given
// configuration.
func ConfineRun(pkgs []*Package, cfg *ConfineConfig) *ConfineResult {
	an, ok := newConfineAnalysis(pkgs, cfg)
	if !ok {
		return &ConfineResult{Ran: false}
	}
	an.run()
	rep := an.report()
	SortFindings(an.findings)
	return &ConfineResult{Ran: true, Findings: an.findings, Report: rep}
}

func newConfineAnalysis(pkgs []*Package, cfg *ConfineConfig) (*confineAnalysis, bool) {
	an := &confineAnalysis{
		cfg:          cfg,
		pkgs:         map[string]*Package{},
		funcs:        map[string]*cfunc{},
		methods:      map[string][]*cfunc{},
		fields:       map[string]*fieldInfo{},
		structFields: map[string][]*fieldInfo{},
		state:        map[*cfunc]*fnState{},
		selfPtr:      toSet(cfg.SelfPointerFields),
		identity:     toSet(cfg.IdentityFields),
		selfPar:      toSet(cfg.SelfParamNames),
		addrType:     toSet(cfg.AddrTypeNames),
		boundary:     map[extEvent]bool{},
		inWork:       map[*cfunc]bool{},
	}
	for _, p := range pkgs {
		dir := normPkg(p.Dir)
		for _, d := range cfg.Dirs {
			if dir == d {
				an.pkgs[d] = p
			}
		}
	}
	for _, d := range cfg.Dirs {
		if an.pkgs[d] == nil {
			return nil, false
		}
	}
	return an, true
}

func (an *confineAnalysis) run() {
	an.buildUniverse()
	an.collectAnnotations()
	an.resolveRoots()

	// Pass 1: syntactic reachability and the frozen-field pre-pass — which
	// fields have any trap-reachable write at all, ignoring provenance.
	// Frozenness feeds the domain evaluation (reading a never-mutated
	// configuration field is transparent), so it must be fixed first.
	an.nowPass = 1
	an.runWorklist()

	// Pass 2: domain fixpoint over the reachable functions.
	an.nowPass = 2
	for _, fn := range an.funcs {
		if fn.reachable {
			an.enqueue(fn)
		}
	}
	an.runWorklist()

	an.classify()
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// buildUniverse indexes every declared function and struct field of the
// covered packages.
func (an *confineAnalysis) buildUniverse() {
	for dir, p := range an.pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn := &cfunc{
						key:     funcDeclKey(dir, d),
						pkg:     p,
						decl:    d,
						bind:    map[types.Object]dom{},
						callers: map[*cfunc]bool{},
					}
					an.funcs[fn.key] = fn
					if d.Recv != nil {
						an.methods[d.Name.Name] = append(an.methods[d.Name.Name], fn)
					}
				case *ast.GenDecl:
					an.indexStructs(dir, p, d)
				}
			}
		}
	}
	for _, fns := range an.methods {
		sort.Slice(fns, func(i, j int) bool { return fns[i].key < fns[j].key })
	}
}

// recvTypeName extracts the receiver's base type name from a declaration.
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver Paged[T]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

func funcDeclKey(dir string, d *ast.FuncDecl) string {
	if r := recvTypeName(d); r != "" {
		return dir + "." + r + "." + d.Name.Name
	}
	return dir + "." + d.Name.Name
}

// funcObjKey derives the index key of a *types.Func, whichever copy of the
// package (loaded or source-importer) it came from.
func funcObjKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	dir := normPkg(fn.Pkg().Path())
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return dir + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return dir + "." + fn.Name()
}

// registerField adds a field to both indexes.
func (an *confineAnalysis) registerField(f *fieldInfo) {
	an.fields[f.key] = f
	sk := f.pkgDir + "." + f.structName
	an.structFields[sk] = append(an.structFields[sk], f)
}

// namedOf unwraps pointers and aliases to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// indexStructs registers every field of every struct type declared in the
// GenDecl, together with its //zlint:confine annotation when present.
func (an *confineAnalysis) indexStructs(dir string, p *Package, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		typeAnn, typeBad, typePos := "", "", token.Position{}
		for _, cg := range []*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment} {
			if c, bad, pos := an.parseConfineComment(p, cg); c != "" || bad != "" {
				typeAnn, typeBad, typePos = c, bad, pos
			}
		}
		if typeBad != "" {
			an.findings = append(an.findings, Finding{Pos: typePos, Analyzer: "confine", Message: typeBad})
		}
		for _, fl := range st.Fields.List {
			ann, bad, annPos := "", "", token.Position{}
			for _, cg := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
				if c, b, pos := an.parseConfineComment(p, cg); c != "" || b != "" {
					ann, bad, annPos = c, b, pos
				}
			}
			if bad != "" {
				an.findings = append(an.findings, Finding{Pos: annPos, Analyzer: "confine", Message: bad})
				ann = ""
			}
			onType := false
			if ann == "" && typeAnn != "" {
				ann, annPos, onType = typeAnn, typePos, true
			}
			names := fl.Names
			if len(names) == 0 {
				// Embedded field: classify under the embedded type's name.
				if n := embeddedName(fl.Type); n != "" {
					names = []*ast.Ident{{Name: n, NamePos: fl.Type.Pos()}}
				}
			}
			for _, name := range names {
				if name.Name == "_" {
					continue
				}
				key := dir + "." + ts.Name.Name + "." + name.Name
				an.registerField(&fieldInfo{
					key:        key,
					pkgDir:     dir,
					structName: ts.Name.Name,
					fieldName:  name.Name,
					typ:        types.ExprString(fl.Type),
					covered:    true,
					pos:        p.Fset.Position(name.Pos()),
					ann:        ann,
					annPos:     annPos,
					annOnType:  onType,
					writes:     map[dom][]token.Position{},
				})
			}
		}
	}
}

func embeddedName(t ast.Expr) string {
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.StarExpr:
		return embeddedName(tt.X)
	case *ast.SelectorExpr:
		return tt.Sel.Name
	case *ast.IndexExpr:
		return embeddedName(tt.X)
	}
	return ""
}

// parseConfineComment extracts a //zlint:confine directive from a comment
// group: the class, or a malformed-directive message.
func (an *confineAnalysis) parseConfineComment(p *Package, cg *ast.CommentGroup) (class, bad string, pos token.Position) {
	if cg == nil {
		return "", "", pos
	}
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//"+confineDirective)
		if !ok {
			continue
		}
		pos = p.Fset.Position(c.Pos())
		fields := strings.Fields(text)
		switch {
		case len(fields) == 0:
			return "", "//zlint:confine needs a class (home|shard|carrier|global) and a reason", pos
		case !confineClasses[fields[0]]:
			return "", "//zlint:confine names unknown class \"" + fields[0] + "\" (want home|shard|carrier|global)", pos
		case len(fields) == 1:
			return "", "//zlint:confine " + fields[0] + " needs a reason", pos
		default:
			return fields[0], "", pos
		}
	}
	return "", "", pos
}

// collectAnnotations reports //zlint:confine directives that sit anywhere
// other than a struct field or struct type declaration: a misplaced
// directive silently annotates nothing.
func (an *confineAnalysis) collectAnnotations() {
	// Recognized positions were recorded while indexing structs.
	known := map[token.Position]bool{}
	for _, f := range an.fields {
		if f.ann != "" {
			known[f.annPos] = true
		}
	}
	for _, f := range an.findings { // malformed ones are recognized too
		known[f.Pos] = true
	}
	for _, p := range an.pkgs {
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//"+confineDirective) {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					if !known[pos] {
						an.findings = append(an.findings, Finding{
							Pos: pos, Analyzer: "confine",
							Message: "//zlint:confine must annotate a struct field or struct type declaration",
						})
					}
				}
			}
		}
	}
}

// resolveRoots seeds the worklist with the configured trap entry points.
func (an *confineAnalysis) resolveRoots() {
	nonSelf := toSet(an.cfg.NonSelfReceiverMethods)
	addRoot := func(fn *cfunc, recvDom dom) {
		fn.isRoot = true
		fn.recvDom = recvDom
		fn.viaRoot = fn.key
		an.roots = append(an.roots, fn)
		an.bindRoot(fn)
		an.markReachable(fn, fn.key)
	}
	for _, r := range an.cfg.Roots {
		want := toSet(r.Methods)
		for key, fn := range an.funcs {
			if fn.decl.Recv == nil || !strings.HasPrefix(key, r.Dir+"."+r.Type+".") {
				continue
			}
			if len(want) > 0 && !want[fn.decl.Name.Name] {
				continue
			}
			d := domSelf
			if nonSelf[fn.decl.Name.Name] {
				d = domGlobal
			}
			addRoot(fn, d)
		}
	}
	for _, r := range an.cfg.IfaceRoots {
		p := an.pkgs[r.Dir]
		if p == nil {
			continue
		}
		obj := p.Types.Scope().Lookup(r.Type)
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		want := toSet(r.Methods)
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			if len(want) > 0 && !want[m.Name()] {
				continue
			}
			for _, fn := range an.chaCandidates(m.Name(), iface) {
				if !fn.isRoot {
					// The implementing object is the protocol singleton,
					// not per-processor state: its receiver binds shared,
					// so per-processor containers inside it still refine
					// through self-indexed element access.
					addRoot(fn, domShared)
				}
			}
		}
	}
	sort.Slice(an.roots, func(i, j int) bool { return an.roots[i].key < an.roots[j].key })
}

// bindRoot applies the root binding convention: receiver self (unless
// NonSelf), Addr-typed parameters home, self-named int parameters self,
// everything else global.
func (an *confineAnalysis) bindRoot(fn *cfunc) {
	p := fn.pkg
	if fn.decl.Recv != nil {
		for _, f := range fn.decl.Recv.List {
			for _, n := range f.Names {
				if o := p.objectOf(n); o != nil {
					fn.bind[o] = domJoin(fn.bind[o], fn.recvDom)
				}
			}
		}
	}
	if fn.decl.Type.Params == nil {
		return
	}
	for _, f := range fn.decl.Type.Params.List {
		for _, n := range f.Names {
			o := p.objectOf(n)
			if o == nil {
				continue
			}
			d := domGlobal
			if an.isAddrType(o.Type()) {
				d = domHome
			} else if an.selfPar[n.Name] && isIntType(o.Type()) {
				d = domSelf
			}
			fn.bind[o] = domJoin(fn.bind[o], d)
		}
	}
}

func (an *confineAnalysis) isAddrType(t types.Type) bool {
	if n := namedOf(t); n != nil {
		return an.addrType[n.Obj().Name()]
	}
	return false
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// chaCandidates lists the covered methods that can implement the named
// interface method: every method with that name whose receiver type
// declares (by name) the interface's full method set. Matching is by name,
// not types.Implements, because the engine type-checks each package
// independently and the importer's copy of a type is not identical to the
// loaded one.
func (an *confineAnalysis) chaCandidates(name string, iface *types.Interface) []*cfunc {
	var need []string
	for i := 0; i < iface.NumMethods(); i++ {
		need = append(need, iface.Method(i).Name())
	}
	var out []*cfunc
	for _, fn := range an.methods[name] {
		rt := fn.recvNamed()
		if rt == nil {
			continue
		}
		ms := map[string]bool{}
		mset := types.NewMethodSet(types.NewPointer(rt))
		for i := 0; i < mset.Len(); i++ {
			ms[mset.At(i).Obj().Name()] = true
		}
		ok := true
		for _, n := range need {
			if !ms[n] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, fn)
		}
	}
	return out
}

// recvNamed resolves the method's receiver to its named type.
func (fn *cfunc) recvNamed() *types.Named {
	if fn.decl.Recv == nil || len(fn.decl.Recv.List) == 0 {
		return nil
	}
	var id *ast.Ident
	t := fn.decl.Recv.List[0].Type
	for id == nil {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			id = tt
		default:
			return nil
		}
	}
	obj := fn.pkg.objectOf(id)
	if obj == nil {
		return nil
	}
	if n, ok := obj.Type().(*types.Named); ok {
		return n
	}
	return nil
}

func (an *confineAnalysis) markReachable(fn *cfunc, via string) {
	if fn.reachable {
		return
	}
	fn.reachable = true
	if fn.viaRoot == "" {
		fn.viaRoot = via
	}
	an.enqueue(fn)
}

func (an *confineAnalysis) enqueue(fn *cfunc) {
	if !an.inWork[fn] {
		an.inWork[fn] = true
		an.work = append(an.work, fn)
	}
}

func (an *confineAnalysis) runWorklist() {
	for len(an.work) > 0 {
		fn := an.work[0]
		an.work = an.work[1:]
		an.inWork[fn] = false
		an.analyze(fn)
	}
}
