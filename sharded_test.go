package zsim

import (
	"fmt"
	"reflect"
	"testing"
)

// shardCounts are the kernel shard settings the identity fence exercises:
// 1 runs the full window protocol with every processor in one shard, 2 and
// 4 split the mesh into row bands.
var shardCounts = []int{1, 2, 4}

// TestShardedMatchesSerialApps is the bit-identity fence for the sharded
// kernel (ISSUE 7's hard constraint): every figure application on every
// memory system must produce the same Result and the same trace stream —
// event totals and the full event window — under -kernel-shards 1, 2, and 4
// as under the serial engine. Machine-layer operations are all global-scope,
// so the sharded schedule must collapse to exactly the serial one.
func TestShardedMatchesSerialApps(t *testing.T) {
	for _, name := range Benchmarks() {
		for _, kind := range Kinds() {
			name, kind := name, kind
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				t.Parallel()
				serial := DefaultParams(8)
				r0, total0, ev0, err := runTraced(name, kind, serial)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range shardCounts {
					sharded := serial
					sharded.KernelShards = shards
					r1, total1, ev1, err := runTraced(name, kind, sharded)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if !reflect.DeepEqual(r0, r1) {
						t.Errorf("shards=%d: Result diverged from serial:\n%s\nvs\n%s", shards, r0, r1)
					}
					if total0 != total1 {
						t.Errorf("shards=%d: event totals diverged: serial %d vs sharded %d", shards, total0, total1)
					}
					if !reflect.DeepEqual(ev0, ev1) {
						t.Errorf("shards=%d: trace streams diverged (window of last %d events)", shards, traceCap)
					}
				}
			})
		}
	}
}

// TestShardedLitmusMatchesSerial runs the full hand-written litmus suite on
// every memory system with the kernel sharded four ways and demands the
// exact serial outcomes: same final-state strings, same allowed verdicts,
// same checker event counts, no violations introduced or masked.
func TestShardedLitmusMatchesSerial(t *testing.T) {
	serial := DefaultParams(8)
	sharded := serial
	sharded.KernelShards = 4

	rs0, err := RunLitmusSuite(Kinds(), serial)
	if err != nil {
		t.Fatal(err)
	}
	rs1, err := RunLitmusSuite(Kinds(), sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs0, rs1) {
		t.Errorf("litmus suite diverged under -kernel-shards 4:\nserial:\n%s\nsharded:\n%s",
			LitmusReport(rs0), LitmusReport(rs1))
	}
	if !LitmusOk(rs1) {
		t.Errorf("sharded litmus suite not conformant:\n%s", LitmusReport(rs1))
	}
}

// TestShardedGridComposition pins the composition of the two concurrency
// layers (ISSUE 7 satellite): the runner's inter-run worker pool
// (SetParallelism) and the kernel's intra-run shards are independent knobs,
// and results stay byte-identical when both are on. Each grid cell runs one
// app × system pair; the cell Results with parallelism 2 × shards 2 must
// equal the fully serial (parallelism 1, shards 0) baseline.
func TestShardedGridComposition(t *testing.T) {
	type cellSpec struct {
		name string
		kind Kind
	}
	var cells []cellSpec
	for _, name := range Benchmarks() {
		for _, kind := range []Kind{ZMachine, RCInv} {
			cells = append(cells, cellSpec{name, kind})
		}
	}
	run := func(parallel int, params Params) []*Result {
		defer SetParallelism(SetParallelism(parallel))
		rs, err := RunGrid(len(cells), func(i int) (*Result, error) {
			app, err := NewBenchmark(cells[i].name, ScaleSmall)
			if err != nil {
				return nil, err
			}
			return RunApp(app, cells[i].kind, params)
		})
		if err != nil {
			t.Fatalf("parallel=%d shards=%d: %v", parallel, params.KernelShards, err)
		}
		return rs
	}

	serial := DefaultParams(8)
	sharded := serial
	sharded.KernelShards = 2

	base := run(1, serial)
	both := run(2, sharded)
	for i := range cells {
		if !reflect.DeepEqual(base[i], both[i]) {
			t.Errorf("cell %s/%s diverged with parallelism 2 x shards 2:\n%s\nvs\n%s",
				cells[i].name, cells[i].kind, base[i], both[i])
		}
	}
}
