package zsim

import (
	"fmt"
	"reflect"
	"testing"
)

// shardCounts are the kernel shard settings the identity fence exercises:
// 1 runs the full window protocol with every processor in one shard, 2 and
// 4 split the mesh into row bands.
var shardCounts = []int{1, 2, 4}

// TestShardedMatchesSerialApps is the bit-identity fence for the sharded
// kernel (ISSUE 7's hard constraint): every figure application on every
// memory system must produce the same Result and the same trace stream —
// event totals and the full event window — under -kernel-shards 1, 2, and 4
// as under the serial engine. Machine-layer operations are all global-scope,
// so the sharded schedule must collapse to exactly the serial one.
func TestShardedMatchesSerialApps(t *testing.T) {
	for _, name := range Benchmarks() {
		for _, kind := range Kinds() {
			name, kind := name, kind
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				t.Parallel()
				serial := DefaultParams(8)
				r0, total0, ev0, err := runTraced(name, kind, serial)
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range shardCounts {
					sharded := serial
					sharded.KernelShards = shards
					r1, total1, ev1, err := runTraced(name, kind, sharded)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if !reflect.DeepEqual(r0, r1) {
						t.Errorf("shards=%d: Result diverged from serial:\n%s\nvs\n%s", shards, r0, r1)
					}
					if total0 != total1 {
						t.Errorf("shards=%d: event totals diverged: serial %d vs sharded %d", shards, total0, total1)
					}
					if !reflect.DeepEqual(ev0, ev1) {
						t.Errorf("shards=%d: trace streams diverged (window of last %d events)", shards, traceCap)
					}
				}
			})
		}
	}
}

// TestShardedLitmusMatchesSerial runs the full hand-written litmus suite on
// every memory system with the kernel sharded four ways and demands the
// exact serial outcomes: same final-state strings, same allowed verdicts,
// same checker event counts, no violations introduced or masked.
func TestShardedLitmusMatchesSerial(t *testing.T) {
	serial := DefaultParams(8)
	sharded := serial
	sharded.KernelShards = 4

	rs0, err := RunLitmusSuite(Kinds(), serial)
	if err != nil {
		t.Fatal(err)
	}
	rs1, err := RunLitmusSuite(Kinds(), sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs0, rs1) {
		t.Errorf("litmus suite diverged under -kernel-shards 4:\nserial:\n%s\nsharded:\n%s",
			LitmusReport(rs0), LitmusReport(rs1))
	}
	if !LitmusOk(rs1) {
		t.Errorf("sharded litmus suite not conformant:\n%s", LitmusReport(rs1))
	}
}

// TestShardedScopeClassification pins the scope-classification seam end to
// end (DESIGN §15): on a full machine run the per-trap local/global split
// published as machine.scope.* must be a pure function of the serial
// schedule — identical at shards 1, 2, and 4 — the trap total must equal
// the app's dynamic machine-trap count in every mode, and on the
// hit-dominated paper workload (cholesky × RCinv) at least half of all
// dynamic trap dispatches must classify shard-local, which is the fraction
// that actually parallelizes under KernelShards.
func TestShardedScopeClassification(t *testing.T) {
	run := func(shards int) (r *Result, snap MetricsSnapshot) {
		withMetrics(true, func() {
			params := DefaultParams(8)
			params.KernelShards = shards
			app, err := NewBenchmark("cholesky", ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			r, err = RunApp(app, RCInv, params)
			if err != nil {
				t.Fatal(err)
			}
			snap = GlobalMetrics()
		})
		return r, snap
	}

	rSerial, sSerial := run(0)
	if got := sSerial.Counters["machine.scope.local_dispatches"]; got != 0 {
		t.Errorf("serial run published machine.scope.local_dispatches = %d, want none (metric is sharded-only)", got)
	}

	var local, global uint64
	for i, shards := range []int{1, 2, 4} {
		r, s := run(shards)
		if !reflect.DeepEqual(r, rSerial) {
			t.Errorf("shards=%d: Result diverged from serial with classification active", shards)
		}
		if y0, y := sSerial.Counters["sim.yields"], s.Counters["sim.yields"]; y != y0 {
			t.Errorf("shards=%d: sim.yields = %d, want the serial run's %d (one per trap in any mode)", shards, y, y0)
		}
		l := s.Counters["machine.scope.local_dispatches"]
		g := s.Counters["machine.scope.global_dispatches"]
		if i == 0 {
			local, global = l, g
		} else if l != local || g != global {
			t.Errorf("shards=%d: classification local=%d global=%d, want %d/%d from shards=1 (must be a pure function of the serial schedule)",
				shards, l, g, local, global)
		}
		// The per-trap breakdown must tile the totals.
		var bl, bg uint64
		for _, trap := range []string{"load", "store", "swap", "compute"} {
			bl += s.Counters["machine.scope."+trap+"_local"]
			bg += s.Counters["machine.scope."+trap+"_global"]
		}
		if bl != l || bg != g {
			t.Errorf("shards=%d: per-trap breakdown %d/%d does not tile totals %d/%d", shards, bl, bg, l, g)
		}
	}
	if local+global == 0 {
		t.Fatal("no machine traps classified at all")
	}
	if frac := float64(local) / float64(local+global); frac < 0.5 {
		t.Errorf("local-dispatch fraction = %.1f%% (%d/%d), want >= 50%% on cholesky x RCinv",
			100*frac, local, local+global)
	}
}

// TestShardedComputeCoreWait pins the Env.Compute reclassification
// satellite: with hardware multithreading the Compute trap reserves the
// node's core through coreFree[node], which is shard-confined (a node's
// threads share its shard), so it dispatches shard-local — and the CoreWait
// accounting that reservation produces must stay bit-identical to the
// serial engine's at shards 1, 2, and 4. The multithreaded configuration is
// what actually exercises the SyncLocal path and the local-only windows it
// opens.
func TestShardedComputeCoreWait(t *testing.T) {
	run := func(shards int) *Result {
		params := DefaultMTParams(16, 2) // 8 nodes x 2 hardware threads
		params.KernelShards = shards
		app, err := NewBenchmark("sor", ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunApp(app, RCInv, params)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want := run(0)
	if want.TotalCoreWait() == 0 {
		t.Fatal("serial multithreaded run shows no core contention; the fence is vacuous")
	}
	for _, shards := range []int{1, 2, 4} {
		if got := run(shards); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: multithreaded Result diverged from serial (CoreWait %d vs %d)",
				shards, got.TotalCoreWait(), want.TotalCoreWait())
		}
	}
}

// TestShardedGridComposition pins the composition of the two concurrency
// layers (ISSUE 7 satellite): the runner's inter-run worker pool
// (SetParallelism) and the kernel's intra-run shards are independent knobs,
// and results stay byte-identical when both are on. Each grid cell runs one
// app × system pair; the cell Results with parallelism 2 × shards 2 must
// equal the fully serial (parallelism 1, shards 0) baseline.
func TestShardedGridComposition(t *testing.T) {
	type cellSpec struct {
		name string
		kind Kind
	}
	var cells []cellSpec
	for _, name := range Benchmarks() {
		for _, kind := range []Kind{ZMachine, RCInv} {
			cells = append(cells, cellSpec{name, kind})
		}
	}
	run := func(parallel int, params Params) []*Result {
		defer SetParallelism(SetParallelism(parallel))
		rs, err := RunGrid(len(cells), func(i int) (*Result, error) {
			app, err := NewBenchmark(cells[i].name, ScaleSmall)
			if err != nil {
				return nil, err
			}
			return RunApp(app, cells[i].kind, params)
		})
		if err != nil {
			t.Fatalf("parallel=%d shards=%d: %v", parallel, params.KernelShards, err)
		}
		return rs
	}

	serial := DefaultParams(8)
	sharded := serial
	sharded.KernelShards = 2

	base := run(1, serial)
	both := run(2, sharded)
	for i := range cells {
		if !reflect.DeepEqual(base[i], both[i]) {
			t.Errorf("cell %s/%s diverged with parallelism 2 x shards 2:\n%s\nvs\n%s",
				cells[i].name, cells[i].kind, base[i], both[i])
		}
	}
}
