module zsim

go 1.22
