package zsim

import (
	"fmt"
	"strings"
	"testing"
)

func TestRunBenchmarkPublicAPI(t *testing.T) {
	res, err := RunBenchmark("is", ScaleSmall, RCInv, DefaultParams(16))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime == 0 || res.System != RCInv || res.App != "is" {
		t.Fatalf("unexpected result: %s", res)
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	if _, err := RunBenchmark("nope", ScaleSmall, RCInv, DefaultParams(16)); err == nil {
		t.Fatal("expected error")
	}
	if _, err := RunBenchmark("is", ScaleSmall, Kind("nope"), DefaultParams(16)); err == nil {
		t.Fatal("expected error for unknown system")
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 4 {
		t.Fatalf("benchmarks = %v", bs)
	}
	for _, name := range bs {
		if _, err := NewBenchmark(name, ScaleSmall); err != nil {
			t.Errorf("NewBenchmark(%s): %v", name, err)
		}
	}
}

// A complete custom application through the public API: a parallel
// tree-sum with a barrier, exercising machine construction, shared arrays,
// and the overhead decomposition.
type treeSum struct {
	data F64
	out  F64
	bar  *Barrier
	n    int
}

func (a *treeSum) Name() string { return "treesum" }

func (a *treeSum) Setup(m *Machine) {
	a.n = 256
	a.data = NewF64(m, a.n)
	a.out = NewF64(m, m.NumProcs())
	a.bar = NewBarrier(m)
	for i := 0; i < a.n; i++ {
		m.PokeF64(a.data.At(i), float64(i))
	}
}

func (a *treeSum) Body(e *Env) {
	per := a.n / e.NumProcs()
	lo := e.ID() * per
	var sum float64
	for i := lo; i < lo+per; i++ {
		sum += a.data.Get(e, i)
		e.Compute(4)
	}
	a.out.Set(e, e.ID(), sum)
	a.bar.Wait(e)
	if e.ID() == 0 {
		var total float64
		for p := 0; p < e.NumProcs(); p++ {
			total += a.out.Get(e, p)
			e.Compute(4)
		}
		a.out.Set(e, 0, total)
	}
}

func (a *treeSum) Verify(m *Machine) error {
	want := float64(a.n*(a.n-1)) / 2
	if got := m.PeekF64(a.out.At(0)); got != want {
		return fmt.Errorf("treesum: got %g, want %g", got, want)
	}
	return nil
}

func TestCustomAppThroughPublicAPI(t *testing.T) {
	for _, kind := range Kinds() {
		res, err := RunApp(&treeSum{}, kind, DefaultParams(16))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if kind == ZMachine && (res.TotalWriteStall() != 0 || res.TotalBufferFlush() != 0) {
			t.Fatalf("z-machine run has write-side overheads: %s", res)
		}
	}
}

func TestPaperFigurePublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("figure in -short mode")
	}
	fig, err := PaperFigure(3, ScaleSmall, DefaultParams(16))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.Render(), "Figure 3") {
		t.Fatal("render missing title")
	}
}

func TestPaperTable1PublicAPI(t *testing.T) {
	tbl, results, err := PaperTable1(ScaleSmall, DefaultParams(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(tbl.CSV(), "app,") {
		t.Fatal("CSV export broken")
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams(16)
	if p.LineSize != 32 || p.ZLineSize != 4 || p.StoreBufEntries != 4 {
		t.Fatalf("defaults deviate from the paper: %+v", p)
	}
}

func TestSweepAliasesWired(t *testing.T) {
	if StoreBufferSweep == nil || NetworkSweep == nil || ThresholdSweep == nil ||
		FiniteCacheSweep == nil || PrefetchSweep == nil || SCvsRC == nil {
		t.Fatal("sweep aliases not wired")
	}
}

func TestNewAPISurface(t *testing.T) {
	p := DefaultMTParams(8, 2)
	if p.Nodes() != 4 {
		t.Fatalf("DefaultMTParams nodes = %d", p.Nodes())
	}
	m, err := NewMachine(RCSync, DefaultParams(16))
	if err != nil {
		t.Fatal(err)
	}
	sl := NewSpinLock(m, 8)
	tb := NewTreeBarrier(m)
	fl := NewFlag(m)
	cell := NewU64(m, 1)
	res := m.Run("surface", func(e *Env) {
		if e.ID() == 0 {
			sl.Acquire(e)
			cell.Set(e, 0, 1)
			sl.Release(e)
			fl.Set(e)
		} else {
			fl.Wait(e)
		}
		tb.Wait(e)
	})
	if res.TotalBufferFlush() != 0 {
		t.Fatalf("rcsync flushed: %s", res)
	}
	if m.PeekU64(cell.At(0)) != 1 {
		t.Fatal("value lost")
	}
}

func TestSweepAliasesAllWired(t *testing.T) {
	if MultithreadSweep == nil || ScalabilitySweep == nil || TopologySweep == nil ||
		RCSyncComparison == nil || OrderingSweep == nil || DirPointerSweep == nil || LineSizeSweep == nil {
		t.Fatal("a sweep alias is nil")
	}
}

func TestEvaluateClaimsPublic(t *testing.T) {
	if testing.Short() {
		t.Skip("claims in -short mode")
	}
	tbl, ok, err := EvaluateClaims(ScaleSmall, DefaultParams(16))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("claims failed:\n%s", tbl.Render())
	}
}
