package zsim

import (
	"zsim/internal/apps"
	"zsim/internal/check"
	"zsim/internal/check/litmus"
	"zsim/internal/machine"
	"zsim/internal/memsys"
	"zsim/internal/metrics"
	"zsim/internal/psync"
	"zsim/internal/runner"
	"zsim/internal/shm"
	"zsim/internal/stats"
	"zsim/internal/trace"
	"zsim/internal/workload"
)

// Re-exported core types. Aliases keep the implementation in internal
// packages while giving external users one import.
type (
	// Params is the architectural parameter block (line sizes, buffer
	// depths, mesh link bandwidth, ...). See DefaultParams.
	Params = memsys.Params
	// Kind names a memory system.
	Kind = memsys.Kind
	// Time is virtual time in CPU cycles.
	Time = memsys.Time
	// Addr is a simulated shared-memory address.
	Addr = memsys.Addr
	// Machine is a simulated shared-memory multiprocessor.
	Machine = machine.Machine
	// Env is the per-processor trap interface applications program against.
	Env = machine.Env
	// Result is one run's statistics: execution time and the per-processor
	// overhead decomposition (read stall / write stall / buffer flush).
	Result = stats.Result
	// ProcStats is one processor's time decomposition.
	ProcStats = stats.Proc
	// Figure is a rendered per-application comparison (paper Figures 2-5).
	Figure = stats.Figure
	// Table is a rendered table (paper Table 1, sweeps).
	Table = stats.Table
	// App is a runnable benchmark application.
	App = apps.App
	// Scale selects paper-size or reduced problem instances.
	Scale = workload.Scale

	// Lock is a simulated FIFO queue lock.
	Lock = psync.Lock
	// Barrier is a simulated centralized barrier.
	Barrier = psync.Barrier
	// Flag is a simulated producer-consumer event.
	Flag = psync.Flag
	// SpinLock is a software test-and-test-and-set lock built from shared
	// accesses (its traffic is visible to the coherence protocol).
	SpinLock = psync.SpinLock
	// TreeBarrier is a combining-tree barrier (O(log P) critical path).
	TreeBarrier = psync.TreeBarrier
	// Counter is a simulated lock-protected shared counter.
	Counter = psync.Counter
	// Queue is a simulated lock-protected shared work queue.
	Queue = psync.Queue

	// Checker is the runtime memory-consistency conformance checker (see
	// Machine.EnableCheck).
	Checker = check.Checker
	// LitmusTest is one litmus program plus its expected-outcome tables.
	LitmusTest = litmus.Test
	// LitmusResult is one judged (litmus test, memory system) execution.
	LitmusResult = litmus.Result

	// MetricsSnapshot is a frozen view of a metrics registry: the
	// simulator's own overhead accounting (see Machine.Metrics and
	// GlobalMetrics). Counters and histograms of simulated events are
	// deterministic; runner.* metrics are host-side and vary.
	MetricsSnapshot = metrics.Snapshot
	// GaugeSnapshot is one gauge's frozen (value, max) pair.
	GaugeSnapshot = metrics.GaugeSnapshot
	// HistogramSnapshot is one histogram's frozen bucket counts.
	HistogramSnapshot = metrics.HistogramSnapshot

	// Trace is the machine's event recorder (see Machine.EnableTrace).
	Trace = trace.Recorder
	// TraceEvent is one recorded simulation event.
	TraceEvent = trace.Event
	// HotLine is a per-cache-line access/stall aggregate from a trace.
	HotLine = trace.HotLine

	// F64 is a shared float64 array.
	F64 = shm.F64
	// I64 is a shared int64 array.
	I64 = shm.I64
	// U64 is a shared uint64 array.
	U64 = shm.U64
)

// The memory systems of the paper's evaluation plus the two extra
// baselines of this reproduction.
const (
	// ZMachine is the paper's zero-overhead reference model.
	ZMachine = memsys.KindZMachine
	// PRAM is the unit-cost memory model.
	PRAM = memsys.KindPRAM
	// SCInv is sequentially consistent write-invalidate.
	SCInv = memsys.KindSCInv
	// RCInv is release consistency + Berkeley-style write-invalidate.
	RCInv = memsys.KindRCInv
	// RCUpd is release consistency + Firefly-style write-update.
	RCUpd = memsys.KindRCUpd
	// RCComp is RCUpd + competitive self-invalidation.
	RCComp = memsys.KindRCComp
	// RCAdapt is release consistency + the adaptive selective-write protocol.
	RCAdapt = memsys.KindRCAdapt
	// RCSync decouples data flow from synchronization (the paper's §6
	// proposal): releases never stall; synchronization grants carry the
	// producer's write-completion watermark.
	RCSync = memsys.KindRCSync

	// ScalePaper runs the paper's exact problem sizes.
	ScalePaper = workload.ScalePaper
	// ScaleSmall runs reduced instances with the same structure.
	ScaleSmall = workload.ScaleSmall
)

// Kinds returns every memory system kind.
func Kinds() []Kind { return memsys.Kinds() }

// FigureKinds returns the five systems of the paper's figures, in figure
// order.
func FigureKinds() []Kind { return memsys.FigureKinds() }

// Benchmarks returns the paper's four application names in figure order:
// cholesky, is, maxflow, nbody.
func Benchmarks() []string { return workload.AppNames() }

// DefaultParams returns the paper's machine configuration for p processors
// (32-byte lines, 4-byte z-machine lines, 1.6 cycles/byte mesh links,
// 4-entry store buffers, 1-line merge buffers, infinite caches).
//
// Set Params.KernelShards to run the simulation kernel sharded by home node
// with a conservative mesh-latency lookahead (intra-run parallelism); 0,
// the default, runs the serial engine. Simulated results — Results, traces,
// litmus outcomes, and every simulated metric — are bit-identical at any
// shard count; only host wall time changes. See DESIGN.md §13.
func DefaultParams(p int) Params { return memsys.Default(p) }

// NewMachine builds a simulated multiprocessor with the given memory
// system.
func NewMachine(kind Kind, p Params) (*Machine, error) { return machine.New(kind, p) }

// NewLock allocates a simulated lock on m.
func NewLock(m *Machine) *Lock { return psync.NewLock(m) }

// NewBarrier allocates a simulated barrier over all of m's processors.
func NewBarrier(m *Machine) *Barrier { return psync.NewBarrier(m) }

// NewFlag allocates a simulated producer-consumer flag.
func NewFlag(m *Machine) *Flag { return psync.NewFlag(m) }

// NewSpinLock allocates a software test-and-set lock with the given probe
// back-off (0 picks a default).
func NewSpinLock(m *Machine, backoff Time) *SpinLock { return psync.NewSpinLock(m, backoff) }

// NewTreeBarrier allocates a combining-tree barrier over all processors.
func NewTreeBarrier(m *Machine) *TreeBarrier { return psync.NewTreeBarrier(m) }

// NewCounter allocates a simulated shared counter initialized to v.
func NewCounter(m *Machine, v int64) *Counter { return psync.NewCounter(m, v) }

// NewQueue allocates a simulated shared FIFO queue.
func NewQueue(m *Machine, capacity int) *Queue { return psync.NewQueue(m, capacity) }

// NewF64 allocates a shared float64 array on m.
func NewF64(m *Machine, n int) F64 { return shm.NewF64(m.Heap, n) }

// NewI64 allocates a shared int64 array on m.
func NewI64(m *Machine, n int) I64 { return shm.NewI64(m.Heap, n) }

// NewU64 allocates a shared uint64 array on m.
func NewU64(m *Machine, n int) U64 { return shm.NewU64(m.Heap, n) }

// NewBenchmark constructs one of the paper's applications ("cholesky",
// "is", "maxflow", "nbody") at the given scale.
func NewBenchmark(name string, scale Scale) (App, error) { return workload.NewApp(name, scale) }

// RunApp executes a custom application on a fresh machine (Setup, the
// parallel Body, Verify) and returns its statistics.
func RunApp(app App, kind Kind, p Params) (*Result, error) {
	m, err := machine.New(kind, p)
	if err != nil {
		return nil, err
	}
	return apps.Run(app, m)
}

// RunBenchmark executes one of the paper's applications.
func RunBenchmark(name string, scale Scale, kind Kind, p Params) (*Result, error) {
	return workload.Run(name, scale, kind, p)
}

// PaperFigure regenerates Figure n of the paper (2: Cholesky, 3: IS,
// 4: Maxflow, 5: Barnes-Hut).
func PaperFigure(n int, scale Scale, p Params) (*Figure, error) {
	return workload.Figure(n, scale, p)
}

// PaperFigureNumbers returns the paper's figure numbers: 2, 3, 4, 5.
func PaperFigureNumbers() []int { return workload.FigureNumbers() }

// PaperTable1 regenerates Table 1 (inherent communication and observed
// costs on the z-machine).
func PaperTable1(scale Scale, p Params) (*Table, []*Result, error) {
	return workload.Table1(scale, p)
}

// ZvsPRAM regenerates the §5 z-machine-vs-PRAM comparison.
func ZvsPRAM(scale Scale, p Params) (*Table, error) { return workload.ZvsPRAM(scale, p) }

// Ablation sweeps (the paper's §6 architectural implications and §7 open
// issues). See the corresponding workload functions for details.
var (
	StoreBufferSweep = workload.StoreBufferSweep
	NetworkSweep     = workload.NetworkSweep
	ThresholdSweep   = workload.ThresholdSweep
	FiniteCacheSweep = workload.FiniteCacheSweep
	PrefetchSweep    = workload.PrefetchSweep
	SCvsRC           = workload.SCvsRC
)

// ParamsFromJSON decodes a parameter block from a configuration file
// (missing fields keep the paper defaults).
func ParamsFromJSON(data []byte) (Params, error) { return memsys.ParamsFromJSON(data) }

// DefaultMTParams returns the paper's configuration with `streams`
// execution streams multiplexed `threads` per node — the §7 multithreading
// open issue as a runnable extension.
func DefaultMTParams(streams, threads int) Params { return memsys.DefaultMT(streams, threads) }

// MultithreadSweep is the multithreading ablation (extension E13).
var MultithreadSweep = workload.MultithreadSweep

// ScalabilitySweep runs an application across machine sizes on one memory
// system (speedup view, after the authors' scalability-study framework).
var ScalabilitySweep = workload.ScalabilitySweep

// TopologySweep runs an application across interconnect topologies
// (mesh, torus, hypercube, xbar, bus).
var TopologySweep = workload.TopologySweep

// RCSyncComparison regenerates experiment E15: RCinv vs the §6 decoupling
// proposal (RCsync).
var RCSyncComparison = workload.RCSyncComparison

// OrderingSweep contrasts Cholesky elimination orderings (natural band vs
// nested dissection).
var OrderingSweep = workload.OrderingSweep

// DirPointerSweep varies the directory's sharer-pointer budget (Dir-i vs
// the paper's full-map directories).
var DirPointerSweep = workload.DirPointerSweep

// LineSizeSweep varies the real systems' coherence unit (false sharing vs
// spatial locality).
var LineSizeSweep = workload.LineSizeSweep

// OracleSweep contrasts the z-machine's broadcast-counter simulation with
// its perfect per-consumer oracle definition.
var OracleSweep = workload.OracleSweep

// SummaryMatrix tabulates overhead %% for every (application, system) pair.
var SummaryMatrix = workload.SummaryMatrix

// Experiment is one entry of the regeneration index (DESIGN.md E1..E20).
type Experiment = workload.Experiment

// Experiments returns the full regeneration index in DESIGN.md order.
func Experiments() []Experiment { return workload.Experiments() }

// EvaluateClaims machine-checks the paper's qualitative claims and returns
// the verdict table plus an overall pass flag.
func EvaluateClaims(scale Scale, p Params) (*Table, bool, error) {
	return workload.EvaluateClaims(scale, p)
}

// FindExperiment looks an experiment up by ID ("E1".."E20", "S1".."S4").
func FindExperiment(id string) (Experiment, error) { return workload.FindExperiment(id) }

// FindExperimentScaled looks an experiment up by ID across both indexes,
// building the scalability family over the given machine sizes (nil selects
// DefaultScalingProcs).
func FindExperimentScaled(id string, procs []int) (Experiment, error) {
	return workload.FindExperimentScaled(id, procs)
}

// ScalingCurve is a scalability experiment's artifact: the rendered
// overhead-classes-vs-P table plus the machine-readable per-P curve
// (ScalingCurve.CurveData) that paperbench emits into BENCH_*.json.
type ScalingCurve = workload.ScalingCurve

// OverheadScaling runs one application on one memory system across machine
// sizes and decomposes execution time into the paper's overhead classes.
var OverheadScaling = workload.OverheadScaling

// ScalingExperiments returns the scalability family S1..S4 (overhead
// classes vs P for each paper application on RCinv) over the given machine
// sizes; nil selects DefaultScalingProcs. The family is indexed separately
// from Experiments() so the default regeneration's metric totals stay
// comparable across records.
func ScalingExperiments(procs []int) []Experiment { return workload.ScalingExperiments(procs) }

// DefaultScalingProcs returns the scalability family's default machine
// sizes: 64, 256, 1024.
func DefaultScalingProcs() []int { return workload.DefaultScalingProcs() }

// LitmusTests returns the hand-written litmus programs in suite order.
func LitmusTests() []LitmusTest { return litmus.Tests() }

// RandomLitmus generates a seeded random litmus program (deterministic per
// seed; the conformance checker is its oracle).
func RandomLitmus(seed int64) LitmusTest { return litmus.RandomTest(seed) }

// RunLitmus executes one litmus test on one memory system with the
// conformance checker attached.
func RunLitmus(t LitmusTest, kind Kind, p Params) (LitmusResult, error) {
	return litmus.RunTest(t, kind, p)
}

// RunLitmusSuite runs every litmus test on every given memory system.
func RunLitmusSuite(kinds []Kind, p Params) ([]LitmusResult, error) {
	return litmus.RunSuite(kinds, p)
}

// LitmusReport renders litmus results as a test × system outcome table,
// marking model violations with '!' and checker violations with 'X'.
func LitmusReport(rs []LitmusResult) string { return litmus.Report(rs) }

// LitmusOk reports whether every litmus result is conformant.
func LitmusOk(rs []LitmusResult) bool { return litmus.Ok(rs) }

// ConformanceSweep runs every application on every memory system with the
// conformance checker attached and tabulates the verdicts.
var ConformanceSweep = workload.ConformanceSweep

// RunAppOn executes a custom application on a caller-constructed machine
// (use this instead of RunApp when you need machine-level features such as
// event tracing via Machine.EnableTrace).
func RunAppOn(app App, m *Machine) (*Result, error) {
	return apps.Run(app, m)
}

// SetParallelism bounds how many simulations the evaluation harness runs
// concurrently (figures, tables, sweeps, the conformance sweep, and the
// litmus suite all fan their independent cells onto a shared worker-pool
// policy). It returns the previous bound; n < 1 selects GOMAXPROCS, 1 is
// fully serial. Every cell builds its own Machine and results are collected
// by cell index, so all rendered output is byte-identical at any setting.
func SetParallelism(n int) int { return runner.SetParallelism(n) }

// Parallelism returns the harness's current concurrency bound.
func Parallelism() int { return runner.Parallelism() }

// RunGrid executes n independent simulation cells on the harness's worker
// pool and returns the results indexed by cell. The error (and any panic)
// surfaced is the smallest-index one, and every cell runs even if another
// fails, so the outcome is independent of the parallelism setting. Cells
// must build their own machines.
func RunGrid(n int, cell func(i int) (*Result, error)) ([]*Result, error) {
	return runner.Grid(n, cell)
}

// EnableMetrics turns the simulator's own overhead accounting on or off
// and returns the previous state. Enable it before building machines.
// Metrics never touch virtual time: simulated results are byte-identical
// with metrics on or off and at any -parallel setting; only host-side
// metrics (runner.cell_wall_ms, runner.workers_busy) vary between hosts.
func EnableMetrics(on bool) bool { return metrics.Enable(on) }

// MetricsEnabled reports whether metric recording is on.
func MetricsEnabled() bool { return metrics.Enabled() }

// GlobalMetrics returns a snapshot of the process-global metrics registry:
// the aggregate over every machine run and grid executed since the last
// ResetGlobalMetrics. This is the `metrics` section of a BENCH_*.json
// record and the input to cmd/benchdiff's regression gate.
func GlobalMetrics() MetricsSnapshot { return metrics.Default.Snapshot() }

// ResetGlobalMetrics clears the process-global metrics registry.
func ResetGlobalMetrics() { metrics.Default.Reset() }
