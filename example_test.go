package zsim_test

import (
	"fmt"
	"log"

	"zsim"
)

// Running one of the paper's benchmarks on the z-machine: the ideal
// machine never write-stalls and never flushes, by construction.
func ExampleRunBenchmark() {
	res, err := zsim.RunBenchmark("is", zsim.ScaleSmall, zsim.ZMachine, zsim.DefaultParams(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("write stall:", res.TotalWriteStall())
	fmt.Println("buffer flush:", res.TotalBufferFlush())
	// Output:
	// write stall: 0
	// buffer flush: 0
}

// sum is a minimal custom application: every processor adds its share into
// a lock-protected accumulator.
type sum struct {
	cell zsim.I64
	lock *zsim.Lock
}

func (a *sum) Name() string { return "sum" }

func (a *sum) Setup(m *zsim.Machine) {
	a.cell = zsim.NewI64(m, 1)
	a.lock = zsim.NewLock(m)
}

func (a *sum) Body(e *zsim.Env) {
	e.Compute(10)
	a.lock.Acquire(e)
	a.cell.Add(e, 0, int64(e.ID()))
	a.lock.Release(e)
}

func (a *sum) Verify(m *zsim.Machine) error {
	if got := int64(m.PeekU64(a.cell.At(0))); got != 120 { // 0+1+...+15
		return fmt.Errorf("sum = %d", got)
	}
	return nil
}

// Writing and running a custom application through the public API.
func ExampleRunApp() {
	res, err := zsim.RunApp(&sum{}, zsim.RCInv, zsim.DefaultParams(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified on", res.System)
	// Output:
	// verified on rcinv
}

// Loading a machine configuration from JSON: unspecified fields keep the
// paper's defaults.
func ExampleParamsFromJSON() {
	p, err := zsim.ParamsFromJSON([]byte(`{"Procs": 8, "Topology": "torus"}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p.Procs, p.Topology, p.LineSize)
	// Output:
	// 8 torus 32
}

// The regeneration index ties DESIGN.md's experiments to runnable code.
func ExampleFindExperiment() {
	e, err := zsim.FindExperiment("E5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(e.Title)
	// Output:
	// Table 1: inherent communication on the z-machine
}
