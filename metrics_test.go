package zsim

// Tests for the metrics subsystem's two load-bearing guarantees:
//
//  1. Observation does not perturb the simulation. Simulated-time results
//     and trace streams are bit-identical with metrics enabled or disabled.
//  2. Simulated metrics are themselves deterministic: per-machine registries
//     merge into the global registry with commutative operations, so every
//     simulated counter is identical at -parallel 1 and -parallel 8. Only
//     host-side metrics (the runner.* family) may vary.

import (
	"reflect"
	"strings"
	"testing"
)

// withMetrics runs f with the global metrics gate set to v, restoring the
// previous state (gate and accumulated registry) afterwards.
func withMetrics(v bool, f func()) {
	prev := EnableMetrics(v)
	ResetGlobalMetrics()
	defer func() {
		EnableMetrics(prev)
		ResetGlobalMetrics()
	}()
	f()
}

// simOnly strips the host-side runner.* family, leaving only metrics that
// are functions of (app, system, params) and must be deterministic.
func simOnly(s MetricsSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	host := func(name string) bool { return strings.HasPrefix(name, "runner.") }
	for k, v := range s.Counters {
		if !host(k) {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if !host(k) {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		if !host(k) {
			out.Histograms[k] = v
		}
	}
	return out
}

// TestMetricsDoNotPerturbSimulation reruns the determinism fence with the
// metrics gate flipped: Result and trace stream must be bit-identical with
// metrics on and off.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	params := DefaultParams(8)
	for _, kind := range []Kind{RCInv, RCUpd, ZMachine} {
		t.Run(string(kind), func(t *testing.T) {
			var rOff, rOn *Result
			var evOff, evOn []TraceEvent
			var totalOff, totalOn uint64
			withMetrics(false, func() {
				var err error
				rOff, totalOff, evOff, err = runTraced("is", kind, params)
				if err != nil {
					t.Fatal(err)
				}
			})
			withMetrics(true, func() {
				var err error
				rOn, totalOn, evOn, err = runTraced("is", kind, params)
				if err != nil {
					t.Fatal(err)
				}
			})
			if !reflect.DeepEqual(rOff, rOn) {
				t.Errorf("results diverged with metrics enabled:\n%s\nvs\n%s", rOff, rOn)
			}
			if totalOff != totalOn {
				t.Errorf("event totals diverged with metrics enabled: %d vs %d", totalOff, totalOn)
			}
			if !reflect.DeepEqual(evOff, evOn) {
				t.Errorf("trace streams diverged with metrics enabled")
			}
		})
	}
}

// TestMetricsDeterministicAcrossParallel runs the full figure grid at
// -parallel 1 and -parallel 8: the simulated results AND every simulated
// metric must be identical; only runner.* host metrics may differ.
func TestMetricsDeterministicAcrossParallel(t *testing.T) {
	params := DefaultParams(8)
	apps := Benchmarks()
	kinds := FigureKinds()
	n := len(apps) * len(kinds)

	grid := func(par int) ([]*Result, MetricsSnapshot) {
		var results []*Result
		var snap MetricsSnapshot
		withMetrics(true, func() {
			withParallelism(par, func() {
				var err error
				results, err = RunGrid(n, func(c int) (*Result, error) {
					return RunBenchmark(apps[c/len(kinds)], ScaleSmall, kinds[c%len(kinds)], params)
				})
				if err != nil {
					t.Fatal(err)
				}
				snap = GlobalMetrics()
			})
		})
		return results, snap
	}

	r1, s1 := grid(1)
	r8, s8 := grid(8)

	for i := range r1 {
		if !reflect.DeepEqual(r1[i], r8[i]) {
			t.Errorf("cell %d result diverged between -parallel 1 and 8", i)
		}
	}
	sim1, sim8 := simOnly(s1), simOnly(s8)
	if !reflect.DeepEqual(sim1, sim8) {
		t.Errorf("simulated metrics diverged between -parallel 1 and 8:\n--- parallel 1 ---\n%s--- parallel 8 ---\n%s",
			sim1.String(), sim8.String())
	}
	if len(sim1.Counters) == 0 {
		t.Error("no simulated counters collected — instrumentation is dead")
	}
	for _, name := range []string{"sim.switches", "proto.reads", "mesh.msgs", "machine.runs"} {
		if sim1.Counter(name) == 0 {
			t.Errorf("expected counter %q to be nonzero after a full grid", name)
		}
	}
}

// TestMetricsSnapshotJSONDeterministic: marshalling the same snapshot twice
// must give identical bytes (benchdiff and the BENCH_*.json record rely on
// it).
func TestMetricsSnapshotJSONDeterministic(t *testing.T) {
	params := DefaultParams(8)
	withMetrics(true, func() {
		if _, err := RunBenchmark("is", ScaleSmall, RCInv, params); err != nil {
			t.Fatal(err)
		}
		s := GlobalMetrics()
		a, b := s.String(), GlobalMetrics().String()
		if a != b {
			t.Errorf("snapshot rendering not repeatable:\n%s\nvs\n%s", a, b)
		}
	})
}

// TestMachineMetricsAccessor checks the per-machine registry surface: a
// machine run with metrics enabled exposes its own counters via
// Machine.Metrics(), independent of the global registry.
func TestMachineMetricsAccessor(t *testing.T) {
	params := DefaultParams(8)
	withMetrics(true, func() {
		app, err := NewBenchmark("is", ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(RCInv, params)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunAppOn(app, m); err != nil {
			t.Fatal(err)
		}
		s := m.Metrics()
		if s.Counter("proto.reads") == 0 || s.Counter("machine.runs") != 1 {
			t.Errorf("per-machine snapshot missing expected counters:\n%s", s.String())
		}
		if got := GlobalMetrics().Counter("machine.runs"); got != 1 {
			t.Errorf("global machine.runs = %d, want 1", got)
		}
	})
}

// TestMetricsDisabledIsInert: with the gate off, machines publish nothing
// and the facade reports disabled.
func TestMetricsDisabledIsInert(t *testing.T) {
	params := DefaultParams(8)
	withMetrics(false, func() {
		if MetricsEnabled() {
			t.Fatal("MetricsEnabled() = true inside withMetrics(false, ...)")
		}
		if _, err := RunBenchmark("is", ScaleSmall, RCInv, params); err != nil {
			t.Fatal(err)
		}
		if s := GlobalMetrics(); len(s.Counters) != 0 {
			t.Errorf("disabled run leaked counters into the global registry:\n%s", s.String())
		}
	})
}

// TestMetricsGridRepeatable: two identical grids accumulate exactly 2x the
// simulated counters of one (merge is additive and deterministic).
func TestMetricsGridRepeatable(t *testing.T) {
	params := DefaultParams(8)
	one := func(times int) MetricsSnapshot {
		var snap MetricsSnapshot
		withMetrics(true, func() {
			for i := 0; i < times; i++ {
				if _, err := RunBenchmark("sor", ScaleSmall, RCInv, params); err != nil {
					t.Fatal(err)
				}
			}
			snap = GlobalMetrics()
		})
		return simOnly(snap)
	}
	s1, s2 := one(1), one(2)
	for name, v := range s1.Counters {
		if got := s2.Counters[name]; got != 2*v {
			t.Errorf("counter %s: two runs accumulated %d, want 2x%d", name, got, v)
		}
	}
}
