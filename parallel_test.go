package zsim

import (
	"strings"
	"testing"
)

// regenerate renders the paperbench artifacts the determinism fence pins:
// every figure, Table 1, the z-vs-PRAM table, the overhead matrix, and the
// litmus report — the text a `paperbench`/`zsim -litmus` user sees.
func regenerate(t *testing.T) string {
	t.Helper()
	params := DefaultParams(8)
	var b strings.Builder
	for _, n := range PaperFigureNumbers() {
		f, err := PaperFigure(n, ScaleSmall, params)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(f.Render())
	}
	t1, _, err := PaperTable1(ScaleSmall, params)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(t1.Render())
	zp, err := ZvsPRAM(ScaleSmall, params)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(zp.Render())
	m, err := SummaryMatrix(ScaleSmall, params)
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(m.Render())
	rs, err := RunLitmusSuite(Kinds(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(LitmusReport(rs))
	return b.String()
}

// TestParallelOutputMatchesSerial is the runner's determinism fence: the
// rendered table/figure/litmus output at -parallel 8 must be byte-identical
// to -parallel 1. Cells build independent machines and results are
// collected by cell index, so the worker count must be unobservable.
func TestParallelOutputMatchesSerial(t *testing.T) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	serial := regenerate(t)
	SetParallelism(8)
	parallel := regenerate(t)
	if serial != parallel {
		t.Fatal("parallel=8 output differs from parallel=1 output")
	}
	if !strings.Contains(serial, "Figure 2") || !strings.Contains(serial, "litmus") {
		t.Fatalf("regeneration looks truncated:\n%.400s", serial)
	}
}

// TestGridErrorIndependentOfParallelism: the error surfaced by a failing
// grid is the smallest-index cell's at any worker bound (serial
// left-to-right semantics), and a failing cell never wedges the pool.
func TestGridErrorIndependentOfParallelism(t *testing.T) {
	params := DefaultParams(8)
	run := func(par int) string {
		prev := SetParallelism(par)
		defer SetParallelism(prev)
		// Cell 2 and cell 5 both fail (unknown benchmark name); the cell-2
		// error must win at every parallelism.
		_, err := RunGrid(8, func(i int) (*Result, error) {
			if i == 2 || i == 5 {
				return RunBenchmark("no-such-app", ScaleSmall, RCInv, params)
			}
			return RunBenchmark("is", ScaleSmall, RCInv, params)
		})
		if err == nil {
			t.Fatal("expected the injected cell error to surface")
		}
		return err.Error()
	}
	serial := run(1)
	for _, par := range []int{4, 8} {
		if got := run(par); got != serial {
			t.Fatalf("parallel=%d surfaced %q, serial surfaced %q", par, got, serial)
		}
	}
}
