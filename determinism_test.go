package zsim

import (
	"fmt"
	"reflect"
	"testing"
)

// traceCap bounds the per-run event window compared by the determinism
// tests: the full Result, the total event count, and the last traceCap
// events must all be bit-identical across repeated runs.
const traceCap = 4096

// runTraced executes one app on one system with tracing enabled.
func runTraced(name string, kind Kind, params Params) (*Result, uint64, []TraceEvent, error) {
	app, err := NewBenchmark(name, ScaleSmall)
	if err != nil {
		return nil, 0, nil, err
	}
	m, err := NewMachine(kind, params)
	if err != nil {
		return nil, 0, nil, err
	}
	rec := m.EnableTrace(traceCap)
	res, err := RunAppOn(app, m)
	if err != nil {
		return nil, 0, nil, err
	}
	return res, rec.Total(), rec.Events(), nil
}

// TestDeterminism runs every figure application twice on every memory
// system: the simulator must be a deterministic function of (app, system,
// params), so the Results and the trace streams must be identical. This is
// the regression fence that makes the litmus golden outcomes meaningful.
func TestDeterminism(t *testing.T) {
	params := DefaultParams(8)
	for _, name := range Benchmarks() {
		for _, kind := range Kinds() {
			name, kind := name, kind
			t.Run(fmt.Sprintf("%s/%s", name, kind), func(t *testing.T) {
				t.Parallel()
				r1, total1, ev1, err := runTraced(name, kind, params)
				if err != nil {
					t.Fatal(err)
				}
				r2, total2, ev2, err := runTraced(name, kind, params)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(r1, r2) {
					t.Errorf("results diverged between identical runs:\n%s\nvs\n%s", r1, r2)
				}
				if total1 != total2 {
					t.Errorf("event totals diverged: %d vs %d", total1, total2)
				}
				if !reflect.DeepEqual(ev1, ev2) {
					t.Errorf("trace streams diverged (window of last %d events)", traceCap)
				}
			})
		}
	}
}
