package zsim

import (
	"strings"
	"testing"
)

// TestConformanceSweep runs every application on every memory system at
// small scale with the runtime conformance checker attached: shadow-memory
// read validation, directory/cache audits, and synchronization invariants
// must all hold on every execution.
func TestConformanceSweep(t *testing.T) {
	table, pass, err := ConformanceSweep(ScaleSmall, DefaultParams(8))
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatalf("conformance sweep found violations:\n%s", table.Render())
	}
	if len(table.Rows) != len(Benchmarks()) {
		t.Fatalf("sweep covered %d apps, want %d", len(table.Rows), len(Benchmarks()))
	}
}

// TestCheckedRunMatchesUnchecked verifies the checker is an observer: the
// simulated result with the checker attached is identical to the result
// without it.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	params := DefaultParams(8)
	plain, err := RunBenchmark("is", ScaleSmall, RCInv, params)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewBenchmark("is", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(RCInv, params)
	if err != nil {
		t.Fatal(err)
	}
	chk := m.EnableCheck()
	checked, err := RunAppOn(app, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if plain.ExecTime != checked.ExecTime {
		t.Fatalf("checker perturbed the simulation: exec %d with checker vs %d without", checked.ExecTime, plain.ExecTime)
	}
}

// TestLitmusSuitePublicAPI runs the full litmus suite through the public
// API: every (test, system) pair must be conformant and the report must say
// so.
func TestLitmusSuitePublicAPI(t *testing.T) {
	rs, err := RunLitmusSuite(Kinds(), DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if !LitmusOk(rs) {
		t.Fatalf("litmus suite not conformant:\n%s", LitmusReport(rs))
	}
	if want := len(LitmusTests()) * len(Kinds()); len(rs) != want {
		t.Fatalf("suite ran %d executions, want %d", len(rs), want)
	}
	if rep := LitmusReport(rs); !strings.Contains(rep, "0 non-conformant") {
		t.Fatalf("report does not state conformance:\n%s", rep)
	}
}

// TestRandomLitmusPublicAPI exercises the generator through the public API.
func TestRandomLitmusPublicAPI(t *testing.T) {
	rt := RandomLitmus(2026)
	r, err := RunLitmus(rt, RCSync, DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ok() {
		t.Fatalf("%s/%s: outcome %q, violations %v", r.Test, r.Kind, r.Outcome, r.Violations)
	}
}
